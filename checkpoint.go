package ssrank

import (
	"fmt"
	"math"

	"ssrank/internal/ckpt"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
)

// This file implements the facade checkpoint format: a complete,
// versioned, canonical binary serialization of a running in-place
// Simulation. A checkpoint captures everything the trajectory depends
// on — the identity of the run (protocol, init, n, seed, ε, shard
// count), the fault-injection stream, the engine's scheduler position
// (step counter plus every pair stream, prefetch position included),
// the recorded exact hitting time, and the protocol's full mutable
// state (agent slab plus instrumentation counters). Restoring it via
// ResumeSimulation reproduces the interrupted run exactly: the resumed
// simulation executes precisely the interactions the captured one
// would have executed next, so checkpoint/resume at any cut point is
// invisible in the final configuration, step count and Result
// (split-run equivalence; DESIGN.md §8 gives the argument layer by
// layer).
//
// The encoding is canonical — one logical state, one byte string — so
// two checkpoints are equal exactly when the states they capture are.
// The format is versioned by ckptVersion; fields are identified by
// position, never by tag, so evolving the format means bumping the
// version, not reordering fields under the existing one.
//
// Layout (all integers varint unless noted):
//
//	"sscp" magic, version uvarint
//	protocol string, init string, n uvarint,
//	seed u64, epsilon f64 (IEEE bit pattern), shards uvarint
//	fault stream: 4×u64 (xoshiro256** words)
//	engine kind uvarint (0 serial, 2 sharded; 1 is the retired
//	  pre-alias sharded layout and is rejected)
//	hit varint (-1 = no exact hit recorded), steps varint
//	engine streams:
//	  serial (kind 0): one pair stream — n uvarint, 4×u64 source
//	    state, consumed uvarint, filled bool
//	  sharded (kind 2): master class-label stream 4×u64, shard count
//	    uvarint + one pair stream per shard (layout as above), cross
//	    class count uvarint + 4×u64 per class in compact class order
//	protocol payload: the descriptor's MarshalState section
//
// The engine section is versioned by its kind, not by ckptVersion:
// retiring a scheduler layout mints a new kind and rejects the old one
// with a targeted error, while blobs of the other engines — and the
// serial golden fixture in particular — stay byte-stable.
//
// Message-network simulations are not checkpointable (their in-flight
// mailboxes and fault streams are not serializable state); Checkpoint
// returns an error for them.
const (
	ckptMagic   = "sscp"
	ckptVersion = 1

	ckptKindSerial = 0
	// ckptKindShardV1 is the retired pre-alias sharded engine section
	// (master PairBatch + shard streams, no class streams). The
	// scheduler that consumed it no longer exists, so these blobs name
	// trajectories this build cannot reproduce: resume rejects them
	// with a clear error instead of silently diverging.
	ckptKindShardV1 = 1
	// ckptKindShard is the alias-classification sharded engine section
	// (bare master state + shard pair streams + cross-class streams).
	ckptKindShard = 2
)

// Checkpoint serializes the simulation's complete state into the
// versioned binary checkpoint format. The returned bytes, together
// with the simulation's Config, reconstruct the run exactly via
// ResumeSimulation: resuming and running to completion yields the
// byte-identical final configuration, hitting time and Result an
// uninterrupted run produces — provided sharded simulations are cut at
// a multiple of the engine's batch period (serial simulations may be
// cut anywhere; see Simulation for why sharded trajectories care about
// barrier placement).
//
// Message-network simulations return an error.
func (s *Simulation) Checkpoint() ([]byte, error) {
	var w ckpt.Writer
	w.Raw([]byte(ckptMagic))
	w.Uvarint(ckptVersion)
	w.String(string(s.cfg.Protocol))
	w.String(string(s.cfg.Init))
	w.Uvarint(uint64(s.cfg.N))
	w.U64(s.cfg.Seed)
	w.F64(s.cfg.Epsilon)
	w.Uvarint(uint64(s.cfg.Shards))
	for _, word := range s.fault.State() {
		w.U64(word)
	}
	if err := s.h.marshal(&w); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// ResumeSimulation reconstructs a Simulation from a Checkpoint. cfg
// must normalize to the identity the checkpoint was taken under —
// same protocol, init, population size, seed, ε and resolved shard
// count; a mismatch is an error, because the trajectory is a pure
// function of those fields and resuming under different ones would
// silently change the run. MaxInteractions and ShardWorkers are free
// to differ: budgets are per-call and the worker count never affects
// the trajectory.
//
// Note the shard count comparison uses the *resolved* count: a
// checkpoint taken under Shards: AutoShards records the count that
// machine resolved to, and resuming with AutoShards on a machine that
// resolves differently is rejected. Pass the recorded count (it is in
// the checkpointed Result.Config and the error message) to resume
// across machines.
func ResumeSimulation(cfg Config, data []byte) (*Simulation, error) {
	d, cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.messageNetwork() {
		return nil, fmt.Errorf("ssrank: message-network simulations are not checkpointable")
	}
	r := ckpt.NewReader(data)
	r.Expect([]byte(ckptMagic))
	if v := r.Uvarint(); r.Err() == nil && v != ckptVersion {
		return nil, fmt.Errorf("ssrank: checkpoint version %d, this build reads version %d", v, ckptVersion)
	}
	protocol := Protocol(r.String())
	init := Init(r.String())
	n := r.Count(math.MaxInt32)
	seed := r.U64()
	epsilon := r.F64()
	shards := r.Count(math.MaxInt32)
	var fs [4]uint64
	for i := range fs {
		fs[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ssrank: malformed checkpoint header: %w", err)
	}
	switch {
	case protocol != cfg.Protocol:
		return nil, fmt.Errorf("ssrank: checkpoint is for protocol %q, config names %q", protocol, cfg.Protocol)
	case init != cfg.Init:
		return nil, fmt.Errorf("ssrank: checkpoint is for init %q, config names %q", init, cfg.Init)
	case n != cfg.N:
		return nil, fmt.Errorf("ssrank: checkpoint holds %d agents, config names %d", n, cfg.N)
	case seed != cfg.Seed:
		return nil, fmt.Errorf("ssrank: checkpoint is for seed %d, config names %d", seed, cfg.Seed)
	case math.Float64bits(epsilon) != math.Float64bits(cfg.Epsilon):
		return nil, fmt.Errorf("ssrank: checkpoint is for epsilon %v, config names %v", epsilon, cfg.Epsilon)
	case shards != cfg.Shards:
		return nil, fmt.Errorf("ssrank: checkpoint is for %d shards, config resolves to %d", shards, cfg.Shards)
	}
	fault := rng.New(cfg.Seed ^ 0xfa017)
	if err := fault.SetState(fs); err != nil {
		return nil, fmt.Errorf("ssrank: checkpoint fault stream: %w", err)
	}
	h, err := d.resume(cfg, r)
	if err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("ssrank: malformed checkpoint: %w", err)
	}
	return &Simulation{desc: d, cfg: cfg, h: h, fault: fault}, nil
}

// resumeDriver reconstructs the generic stepwise driver from a
// checkpoint's engine section — the per-protocol half of
// ResumeSimulation, reached through the descriptor's type-erased
// resume hook. It rebuilds the runner over the deserialized slab and
// restores the scheduler position on top; the constructor-seeded
// streams are fully overwritten by SetEngineState, so the runner is
// indistinguishable from the captured one.
func resumeDriver[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P], r *ckpt.Reader) (simHandle, error) {
	if d.UnmarshalState == nil {
		return nil, fmt.Errorf("ssrank: protocol %q does not register state serialization", d.Name)
	}
	kind := r.Uvarint()
	hit := r.Varint()
	steps := r.Varint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ssrank: malformed checkpoint engine section: %w", err)
	}
	switch kind {
	case ckptKindSerial:
		if cfg.Shards != 1 {
			return nil, fmt.Errorf("ssrank: serial checkpoint, config resolves to %d shards", cfg.Shards)
		}
		pairs := ckpt.ReadPairState(r)
		p := d.New(cfg.N)
		states, err := d.UnmarshalState(p, r)
		if err != nil {
			return nil, err
		}
		run := sim.New[S](p, states, cfg.Seed)
		if err := run.SetEngineState(sim.EngineState{Steps: steps, Pairs: pairs}); err != nil {
			return nil, fmt.Errorf("ssrank: checkpoint pair stream: %w", err)
		}
		return &simDriver[S, P]{d: d, p: p, r: run, hit: hit}, nil
	case ckptKindShardV1:
		return nil, fmt.Errorf("ssrank: checkpoint uses the retired v1 sharded engine layout (pre-alias-classification); its trajectory cannot be resumed by this build — re-run the simulation or resume with a build that predates the alias-table scheduler")
	case ckptKindShard:
		if cfg.Shards < 2 {
			return nil, fmt.Errorf("ssrank: sharded checkpoint, config resolves to %d shard(s)", cfg.Shards)
		}
		st := shard.EngineState{Steps: steps, Master: ckpt.ReadRNGState(r)}
		count := r.Count(cfg.N)
		if r.Err() == nil && count != cfg.Shards {
			return nil, fmt.Errorf("ssrank: checkpoint holds %d shard streams, config resolves to %d shards", count, cfg.Shards)
		}
		st.Shards = make([]rng.PairBatchState, count)
		for i := range st.Shards {
			st.Shards[i] = ckpt.ReadPairState(r)
		}
		nclasses := r.Count(cfg.N)
		if want := cfg.Shards * (cfg.Shards - 1) / 2; r.Err() == nil && nclasses != want {
			return nil, fmt.Errorf("ssrank: checkpoint holds %d cross-class streams, %d shards need %d", nclasses, cfg.Shards, want)
		}
		st.Classes = make([][4]uint64, nclasses)
		for i := range st.Classes {
			st.Classes[i] = ckpt.ReadRNGState(r)
		}
		p := d.New(cfg.N)
		states, err := d.UnmarshalState(p, r)
		if err != nil {
			return nil, err
		}
		run := shard.New[S](p, states, cfg.Seed, cfg.Shards, cfg.ShardWorkers)
		if err := run.SetEngineState(st); err != nil {
			return nil, fmt.Errorf("ssrank: checkpoint pair streams: %w", err)
		}
		return &shardSimDriver[S, P]{d: d, p: p, r: run, hit: hit}, nil
	default:
		return nil, fmt.Errorf("ssrank: unknown checkpoint engine kind %d", kind)
	}
}

// The stream-state section codecs (pair-stream and bare rng-state
// layouts) live in internal/ckpt (WritePairState and friends): the
// distributed runtime serializes the same sections into its wire
// frames, so the encodings are shared, not duplicated.

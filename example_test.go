package ssrank_test

import (
	"fmt"
	"log"

	"ssrank"
)

// ExampleRun ranks a small population and prints verifiable facts
// about the outcome (the ranks themselves depend on the seed).
func ExampleRun() {
	res, err := ssrank.Run(ssrank.Config{N: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	seen := make([]bool, 17)
	for _, r := range res.Ranks {
		seen[r] = true
	}
	complete := true
	for r := 1; r <= 16; r++ {
		complete = complete && seen[r]
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("stopped at the exact hitting time:", res.Exact)
	fmt.Println("ranks form a permutation of 1..16:", complete)
	fmt.Println("leader holds rank:", res.Ranks[res.Leader])
	// Output:
	// converged: true
	// stopped at the exact hitting time: true
	// ranks form a permutation of 1..16: true
	// leader holds rank: 1
}

// ExampleRun_worstCase starts from the paper's Fig. 2 adversarial
// initialization; the protocol must detect the dead configuration,
// reset, and re-rank.
func ExampleRun_worstCase() {
	res, err := ssrank.Run(ssrank.Config{N: 32, Seed: 2, Init: ssrank.InitWorstCase})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("needed at least one reset:", res.Resets >= 1)
	// Output:
	// converged: true
	// needed at least one reset: true
}

// ExampleSimulation demonstrates stepwise control with transient-fault
// injection: self-stabilization means corruption is always survivable.
func ExampleSimulation() {
	sim, err := ssrank.NewSimulation(ssrank.Config{N: 32, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stabilized:", sim.RunUntilStable(0))

	if err := sim.Corrupt(8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered:", sim.RunUntilStable(0))
	// Output:
	// stabilized: true
	// recovered: true
}

// ExampleSimulation_observe watches a non-default protocol converge
// from an adversarial random configuration, sampling snapshots at a
// fixed interaction cadence.
func ExampleSimulation_observe() {
	sim, err := ssrank.NewSimulation(ssrank.Config{
		N: 24, Protocol: ssrank.Cai, Init: ssrank.InitRandom, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples := 0
	stable := sim.Observe(0, 0, func(ssrank.Snapshot) { samples++ })
	fmt.Println("stabilized:", stable)
	fmt.Println("observed more than one snapshot:", samples > 1)
	// Output:
	// stabilized: true
	// observed more than one snapshot: true
}

// ExampleReplicate fans one configuration out across the deterministic
// parallel replication engine and reads aggregate statistics; the
// outcome is bit-identical at every worker count.
func ExampleReplicate() {
	rep, err := ssrank.Replicate(
		ssrank.Config{N: 24, Seed: 7},
		ssrank.ReplicateOptions{Trials: 8},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %d/%d\n", rep.Converged, rep.Trials)
	fmt.Println("mean within observed bounds:",
		rep.Interactions.Min <= rep.Interactions.Mean && rep.Interactions.Mean <= rep.Interactions.Max)
	// Output:
	// converged: 8/8
	// mean within observed bounds: true
}

// ExampleDescriptors walks the protocol registry — the one table
// behind Run, NewSimulation and Replicate.
func ExampleDescriptors() {
	for _, d := range ssrank.Descriptors() {
		fmt.Printf("%s self-stabilizing=%t inits=%d\n",
			d.Protocol, d.SelfStabilizing, len(d.Inits))
	}
	// Output:
	// stable self-stabilizing=true inits=4
	// space-efficient self-stabilizing=false inits=1
	// cai self-stabilizing=true inits=2
	// aware self-stabilizing=true inits=2
	// interval self-stabilizing=false inits=1
	// loose self-stabilizing=true inits=2
}

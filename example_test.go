package ssrank_test

import (
	"fmt"
	"log"

	"ssrank"
)

// ExampleRun ranks a small population and prints verifiable facts
// about the outcome (the ranks themselves depend on the seed).
func ExampleRun() {
	res, err := ssrank.Run(ssrank.Config{N: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	seen := make([]bool, 17)
	for _, r := range res.Ranks {
		seen[r] = true
	}
	complete := true
	for r := 1; r <= 16; r++ {
		complete = complete && seen[r]
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("ranks form a permutation of 1..16:", complete)
	fmt.Println("leader holds rank:", res.Ranks[res.Leader])
	// Output:
	// converged: true
	// ranks form a permutation of 1..16: true
	// leader holds rank: 1
}

// ExampleRun_worstCase starts from the paper's Fig. 2 adversarial
// initialization; the protocol must detect the dead configuration,
// reset, and re-rank.
func ExampleRun_worstCase() {
	res, err := ssrank.Run(ssrank.Config{N: 32, Seed: 2, Init: ssrank.InitWorstCase})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("needed at least one reset:", res.Resets >= 1)
	// Output:
	// converged: true
	// needed at least one reset: true
}

// ExampleSimulation demonstrates stepwise control with transient-fault
// injection: self-stabilization means corruption is always survivable.
func ExampleSimulation() {
	sim, err := ssrank.NewSimulation(32, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stabilized:", sim.RunUntilStable(0))

	if err := sim.Corrupt(8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered:", sim.RunUntilStable(0))
	// Output:
	// stabilized: true
	// recovered: true
}

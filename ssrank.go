// Package ssrank is a Go implementation of silent self-stabilizing
// ranking for population protocols, reproducing Berenbrink, Elsässer,
// Götte, Hintze and Kaaser, "Silent Self-Stabilizing Ranking: Time
// Optimal and Space Efficient" (ICDCS 2025, arXiv:2504.10417).
//
// n anonymous agents interact in uniformly random pairs; the protocols
// assign every agent a unique rank in {1..n}. The flagship protocol
// StableRanking self-stabilizes from any initial configuration in
// O(n² log n) interactions w.h.p. using n + O(log² n) states, and
// yields self-stabilizing leader election by declaring the rank-1
// agent the leader.
//
// This package is the stable public facade: Run executes any of the
// implemented protocols to completion, and Simulation offers stepwise
// control (inspection, fault injection) of the self-stabilizing
// protocol. The full machinery — engine, substrates, baselines,
// experiment harness — lives under internal/; see DESIGN.md.
package ssrank

import (
	"errors"
	"fmt"
	"math"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/faults"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stable"
)

// Protocol selects a ranking protocol.
type Protocol string

const (
	// StableRanking is the paper's self-stabilizing protocol
	// (Theorem 2): n + O(log² n) states, O(n² log n) interactions
	// w.h.p., silent.
	StableRanking Protocol = "stable"
	// SpaceEfficient is the paper's non-self-stabilizing protocol
	// (Theorem 1): n + Θ(log n) states, O(n² log n) interactions
	// w.h.p.; correct w.h.p. only.
	SpaceEfficient Protocol = "space-efficient"
	// Cai is the n-state self-stabilizing baseline (Cai–Izumi–Wada):
	// zero overhead states, Θ(n³) expected interactions.
	Cai Protocol = "cai"
	// Aware is the aware-leader baseline in the style of Burman et
	// al.: n + Ω(n) states, O(n² log n) interactions.
	Aware Protocol = "aware"
	// Interval is the relaxed-range baseline (Gąsieniec et al.): ranks
	// from [1, (1+ε)n], O(n log n/ε) interactions, not
	// self-stabilizing.
	Interval Protocol = "interval"
)

// Protocols lists every selectable protocol.
func Protocols() []Protocol {
	return []Protocol{StableRanking, SpaceEfficient, Cai, Aware, Interval}
}

// Init selects the initial configuration for protocols that support
// several (currently StableRanking).
type Init string

const (
	// InitFresh starts every agent in the leader-election start state.
	InitFresh Init = "fresh"
	// InitWorstCase is the paper's Fig. 2 adversarial initialization.
	InitWorstCase Init = "worst-case"
	// InitRandom draws an arbitrary configuration uniformly from the
	// state space.
	InitRandom Init = "random"
	// InitFig3 is the paper's Fig. 3 initialization (one unaware
	// leader, everyone else decided in leader election).
	InitFig3 Init = "fig3"
)

// Config parameterizes Run.
type Config struct {
	// N is the population size (≥ 2). Required.
	N int
	// Protocol selects the algorithm; default StableRanking.
	Protocol Protocol
	// Seed drives the scheduler; runs are deterministic in (Config).
	Seed uint64
	// Init selects the initial configuration (StableRanking only);
	// default InitFresh.
	Init Init
	// MaxInteractions caps the run; 0 means a generous default of
	// 3000·n²·log₂ n (several times the expected stabilization time).
	MaxInteractions int64
	// Epsilon is the range slack for Interval (default 1.0).
	Epsilon float64
	// Shards, when > 1, executes the run on the sharded population
	// engine (internal/sim/shard): agents are partitioned into Shards
	// contiguous ranges whose interactions apply concurrently between
	// deterministic batch barriers. The result is a pure function of
	// (Config incl. Shards) — it differs from the serial engine's
	// trajectory but follows the same law, and does not depend on
	// ShardWorkers. Worth it for very large populations (n ≥ ~10⁵) on
	// multi-core machines; below that the serial engine is typically
	// faster outright (DESIGN.md §3.2). The sentinel AutoShards (-1)
	// derives the count from N and the machine's core count, staying
	// serial for small populations — note the resolved count, and
	// hence the trajectory, then depends on the machine.
	Shards int
	// ShardWorkers bounds the shard worker pool when Shards > 1:
	// < 1 means one worker per CPU. It trades wall clock for cores
	// only; the Result is identical at every setting.
	ShardWorkers int
}

// Result reports a completed run.
type Result struct {
	// Ranks holds each agent's final rank (1-based). For Interval the
	// ranks live in [1, (1+ε)n].
	Ranks []int
	// Interactions is the number of pairwise interactions executed.
	Interactions int64
	// Converged reports whether a valid silent ranking was reached
	// within the budget.
	Converged bool
	// Leader is the index of the rank-1 agent (-1 if none) — the
	// elected leader under the paper's output function.
	Leader int
	// Resets counts the self-healing resets (self-stabilizing
	// protocols only).
	Resets int64
	// ResetBreakdown classifies the resets by cause (StableRanking
	// only).
	ResetBreakdown map[string]int64
}

// ErrNotConverged is wrapped into Run's error when the budget is
// exhausted first. The partial Result is still returned.
var ErrNotConverged = errors.New("ssrank: ranking did not converge within the interaction budget")

// AutoShards is the Config.Shards sentinel that picks the shard count
// automatically from N and the machine's core count
// (shard.AutoShards): serial below the population size where sharding
// pays for its coordination, one shard per core (with a minimum slab
// per shard) above.
const AutoShards = shard.Auto

// Run executes the configured protocol until it reaches a valid silent
// ranking (or the budget runs out).
func Run(cfg Config) (Result, error) {
	if cfg.N < 2 {
		return Result{}, fmt.Errorf("ssrank: N must be >= 2, got %d", cfg.N)
	}
	if cfg.Protocol == "" {
		cfg.Protocol = StableRanking
	}
	if cfg.Init == "" {
		cfg.Init = InitFresh
	}
	if cfg.MaxInteractions == 0 {
		cfg.MaxInteractions = defaultBudget(cfg.N, cfg.Protocol)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1.0
	}

	switch cfg.Protocol {
	case StableRanking:
		return runStable(cfg)
	case SpaceEfficient:
		return runCore(cfg)
	case Cai:
		return runCai(cfg)
	case Aware:
		return runAware(cfg)
	case Interval:
		return runInterval(cfg)
	default:
		return Result{}, fmt.Errorf("ssrank: unknown protocol %q", cfg.Protocol)
	}
}

// runRanking executes protocol p from init until valid holds (polled
// on the engine's default cadence) on the engine cfg selects: the
// serial sim.Runner, or the sharded runner when cfg.Shards > 1. It
// returns the final configuration and the interaction count alongside
// any budget-exhaustion error.
func runRanking[S any, P sim.Protocol[S]](cfg Config, p P, init []S, valid func([]S) bool) ([]S, int64, error) {
	shards := cfg.Shards
	if shards == AutoShards {
		shards = shard.AutoShards(cfg.N, 0)
	}
	if shards > 1 {
		r := shard.New[S](p, init, cfg.Seed, shards, cfg.ShardWorkers)
		_, err := r.RunUntil(valid, 0, cfg.MaxInteractions)
		return r.States(), r.Steps(), err
	}
	r := sim.New[S](p, init, cfg.Seed)
	_, err := r.RunUntil(valid, 0, cfg.MaxInteractions)
	return r.States(), r.Steps(), err
}

func defaultBudget(n int, p Protocol) int64 {
	lg := math.Log2(float64(n))
	switch p {
	case Cai:
		return int64(2000 * float64(n) * float64(n) * float64(n))
	case Interval:
		return int64(5000 * float64(n) * float64(n))
	default:
		return int64(3000 * float64(n) * float64(n) * lg)
	}
}

func runStable(cfg Config) (Result, error) {
	p := stable.New(cfg.N, stable.DefaultParams())
	var init []stable.State
	switch cfg.Init {
	case InitFresh:
		init = p.InitialStates()
	case InitWorstCase:
		init = p.WorstCaseInit()
	case InitRandom:
		init = p.RandomConfig(rng.New(cfg.Seed ^ 0xc0ffee))
	case InitFig3:
		init = p.Fig3Init()
	default:
		return Result{}, fmt.Errorf("ssrank: unknown init %q", cfg.Init)
	}
	states, steps, err := runRanking(cfg, p, init, stable.Valid)
	res := Result{
		Ranks:          stableRanks(states),
		Interactions:   steps,
		Converged:      err == nil,
		Leader:         stable.LeaderRank1(states),
		Resets:         p.Resets(),
		ResetBreakdown: p.ResetBreakdown(),
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

func stableRanks(states []stable.State) []int {
	out := make([]int, len(states))
	for i, s := range states {
		if s.Mode == stable.ModeRanked {
			out[i] = int(s.Rank)
		}
	}
	return out
}

func runCore(cfg Config) (Result, error) {
	if cfg.Init != InitFresh {
		return Result{}, fmt.Errorf("ssrank: protocol %q supports only the fresh init (it is not self-stabilizing)", cfg.Protocol)
	}
	p := core.New(cfg.N, core.DefaultParams())
	states, steps, err := runRanking(cfg, p, p.InitialStates(), core.Valid)
	res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
	res.Ranks = make([]int, cfg.N)
	for i, s := range states {
		if s.Kind == core.KindRanked {
			res.Ranks[i] = int(s.Rank)
			if s.Rank == 1 {
				res.Leader = i
			}
		}
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

func runCai(cfg Config) (Result, error) {
	p := cai.New(cfg.N)
	var init []cai.State
	switch cfg.Init {
	case InitFresh:
		init = p.InitialStates()
	case InitRandom:
		rr := rng.New(cfg.Seed ^ 0xc0ffee)
		init = make([]cai.State, cfg.N)
		for i := range init {
			init[i] = cai.State(1 + rr.Intn(cfg.N))
		}
	default:
		return Result{}, fmt.Errorf("ssrank: protocol %q supports inits %q and %q", cfg.Protocol, InitFresh, InitRandom)
	}
	states, steps, err := runRanking(cfg, p, init, cai.Valid)
	res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
	res.Ranks = make([]int, cfg.N)
	for i, s := range states {
		res.Ranks[i] = int(s)
		if s == 1 {
			res.Leader = i
		}
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

func runAware(cfg Config) (Result, error) {
	p := aware.New(cfg.N, aware.DefaultParams())
	if cfg.Init != InitFresh {
		return Result{}, fmt.Errorf("ssrank: protocol %q currently supports only the fresh init", cfg.Protocol)
	}
	states, steps, err := runRanking(cfg, p, p.InitialStates(), aware.Valid)
	res := Result{Interactions: steps, Converged: err == nil, Leader: -1, Resets: p.Resets()}
	res.Ranks = make([]int, cfg.N)
	for i, s := range states {
		if s.Mode == aware.ModeRanked {
			res.Ranks[i] = int(s.Rank)
			if s.Rank == 1 {
				res.Leader = i
			}
		}
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

func runInterval(cfg Config) (Result, error) {
	if cfg.Init != InitFresh {
		return Result{}, fmt.Errorf("ssrank: protocol %q supports only the fresh init (it is not self-stabilizing)", cfg.Protocol)
	}
	p := interval.New(cfg.N, cfg.Epsilon)
	states, steps, err := runRanking(cfg, p, p.InitialStates(), interval.Valid)
	res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
	res.Ranks = make([]int, cfg.N)
	for i, rk := range interval.Ranks(states) {
		res.Ranks[i] = int(rk)
		if rk == 1 {
			res.Leader = i
		}
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

// Simulation is a stepwise handle on the self-stabilizing protocol:
// run a while, inspect, corrupt, keep running — the API for fault
// injection demos and live exploration.
type Simulation struct {
	p     *stable.Protocol
	r     *sim.Runner[stable.State, *stable.Protocol]
	fault *rng.RNG
}

// NewSimulation starts a StableRanking population of n agents in the
// fresh initial configuration.
func NewSimulation(n int, seed uint64) (*Simulation, error) {
	if n < 2 {
		return nil, fmt.Errorf("ssrank: N must be >= 2, got %d", n)
	}
	p := stable.New(n, stable.DefaultParams())
	return &Simulation{
		p:     p,
		r:     sim.New[stable.State](p, p.InitialStates(), seed),
		fault: rng.New(seed ^ 0xfa017),
	}, nil
}

// N returns the population size.
func (s *Simulation) N() int { return s.r.N() }

// Step executes k interactions.
func (s *Simulation) Step(k int64) { s.r.Run(k) }

// RunUntilStable executes interactions until the ranking is valid, up
// to maxInteractions (0 = the default budget). It reports whether the
// population stabilized.
func (s *Simulation) RunUntilStable(maxInteractions int64) bool {
	if maxInteractions == 0 {
		maxInteractions = s.r.Steps() + defaultBudget(s.r.N(), StableRanking)
	}
	_, err := s.r.RunUntil(stable.Valid, 0, maxInteractions)
	return err == nil
}

// Interactions returns the number of interactions executed so far.
func (s *Simulation) Interactions() int64 { return s.r.Steps() }

// Stable reports whether the current configuration is a valid silent
// ranking.
func (s *Simulation) Stable() bool { return stable.Valid(s.r.States()) }

// Ranks returns each agent's current rank, 0 for unranked agents.
func (s *Simulation) Ranks() []int { return stableRanks(s.r.States()) }

// RankedCount returns the number of currently ranked agents.
func (s *Simulation) RankedCount() int { return stable.RankedCount(s.r.States()) }

// Leader returns the index of the rank-1 agent, or -1.
func (s *Simulation) Leader() int { return stable.LeaderRank1(s.r.States()) }

// Resets returns the number of self-healing resets triggered so far.
func (s *Simulation) Resets() int64 { return s.p.Resets() }

// ResetBreakdown classifies the resets by cause.
func (s *Simulation) ResetBreakdown() map[string]int64 { return s.p.ResetBreakdown() }

// Corrupt overwrites k uniformly chosen agents with arbitrary states
// from the protocol's state space — a transient fault burst. The
// protocol will re-stabilize (Theorem 2).
func (s *Simulation) Corrupt(k int) error {
	if k < 0 || k > s.r.N() {
		return fmt.Errorf("ssrank: cannot corrupt %d of %d agents", k, s.r.N())
	}
	faults.Corrupt(s.r.States(), k, s.fault, s.p.RandomState)
	return nil
}

// Package ssrank is a Go implementation of silent self-stabilizing
// ranking for population protocols, reproducing Berenbrink, Elsässer,
// Götte, Hintze and Kaaser, "Silent Self-Stabilizing Ranking: Time
// Optimal and Space Efficient" (ICDCS 2025, arXiv:2504.10417).
//
// n anonymous agents interact in uniformly random pairs; the protocols
// assign every agent a unique rank in {1..n}. The flagship protocol
// StableRanking self-stabilizes from any initial configuration in
// O(n² log n) interactions w.h.p. using n + O(log² n) states, and
// yields self-stabilizing leader election by declaring the rank-1
// agent the leader.
//
// This package is the stable public facade, organized around a
// protocol descriptor registry: every implemented protocol registers
// one Descriptor bundling its constructor, supported initial
// configurations, validity predicate, exact-stop tracker, and output
// projections. On top of the registry,
//
//   - Run executes any registered protocol to completion, stopping at
//     the exact hitting time of its stop condition on the serial
//     engine (Result.Exact);
//   - Simulation offers stepwise control (inspection, snapshots,
//     fault injection) of any registered protocol;
//   - Replicate fans a configuration out across the deterministic
//     parallel replication engine and reports aggregate statistics.
//
// The full machinery — engine, substrates, baselines, experiment
// harness — lives under internal/; see DESIGN.md.
package ssrank

import (
	"errors"
	"fmt"

	"ssrank/internal/sim/shard"
)

// Protocol selects a ranking (or leader-election) protocol.
type Protocol string

const (
	// StableRanking is the paper's self-stabilizing protocol
	// (Theorem 2): n + O(log² n) states, O(n² log n) interactions
	// w.h.p., silent.
	StableRanking Protocol = "stable"
	// SpaceEfficient is the paper's non-self-stabilizing protocol
	// (Theorem 1): n + Θ(log n) states, O(n² log n) interactions
	// w.h.p.; correct w.h.p. only.
	SpaceEfficient Protocol = "space-efficient"
	// Cai is the n-state self-stabilizing baseline (Cai–Izumi–Wada):
	// zero overhead states, Θ(n³) expected interactions.
	Cai Protocol = "cai"
	// Aware is the aware-leader baseline in the style of Burman et
	// al.: n + Ω(n) states, O(n² log n) interactions.
	Aware Protocol = "aware"
	// Interval is the relaxed-range baseline (Gąsieniec et al.): ranks
	// from [1, (1+ε)n], O(n log n/ε) interactions, not
	// self-stabilizing.
	Interval Protocol = "interval"
	// Loose is the loosely-stabilizing leader-election baseline in
	// the style of Sudo et al.: from any configuration a unique
	// leader emerges far faster than any silent protocol allows, but
	// holds only w.h.p. for a long (tunable) holding time. It elects
	// rather than ranks: Result.Ranks carries the leader bit (1 for
	// the leader, 0 otherwise). Uniqueness is transient, so the
	// reported configuration can postdate the hitting time by a few
	// interactions (Result.Interactions is still exact). Both in-place
	// engines measure that hitting time exactly — the serial and
	// sharded trackers evaluate uniqueness after every interaction, so
	// Loose honors Config.Shards like every other protocol.
	Loose Protocol = "loose"
)

// Protocols lists every registered protocol, in registry order.
func Protocols() []Protocol {
	out := make([]Protocol, len(registry))
	for i, d := range registry {
		out[i] = d.Protocol
	}
	return out
}

// Init selects the initial configuration for protocols that register
// several (Descriptor.Inits; the first entry is the default).
type Init string

const (
	// InitFresh starts every agent in the protocol's designated start
	// state.
	InitFresh Init = "fresh"
	// InitWorstCase is the protocol's adversarial initialization: the
	// paper's Fig. 2 configuration for StableRanking, the
	// everyone-a-leader start for Loose.
	InitWorstCase Init = "worst-case"
	// InitRandom draws an arbitrary configuration uniformly from the
	// state space — the adversary of the self-stabilization claims.
	InitRandom Init = "random"
	// InitFig3 is the paper's Fig. 3 initialization (one unaware
	// leader, everyone else decided in leader election;
	// StableRanking only).
	InitFig3 Init = "fig3"
)

// Config parameterizes Run, NewSimulation and Replicate.
type Config struct {
	// N is the population size (≥ 2). Required.
	N int
	// Protocol selects the algorithm; default StableRanking.
	Protocol Protocol
	// Seed drives the scheduler (and, salted, the initialization
	// randomness); runs are deterministic in (Config).
	Seed uint64
	// Init selects the initial configuration; default is the
	// protocol's first registered init (InitFresh for all current
	// protocols). Descriptor.Inits lists what a protocol supports.
	Init Init
	// MaxInteractions caps the run; 0 means the protocol's registered
	// default budget — several times the expected stabilization time,
	// saturating at MaxInt64 for very large n.
	MaxInteractions int64
	// Epsilon is the range slack for Interval (default 1.0).
	Epsilon float64
	// Shards, when > 1, executes the run on the sharded population
	// engine (internal/sim/shard): agents are partitioned into Shards
	// contiguous ranges whose interactions apply concurrently between
	// deterministic batch barriers. The result is a pure function of
	// (Config incl. Shards) — it differs from the serial engine's
	// trajectory but follows the same law, and does not depend on
	// ShardWorkers. Worth it for very large populations (n ≥ ~10⁵) on
	// multi-core machines; below that the serial engine is typically
	// faster outright (DESIGN.md §3.2). The sentinel AutoShards (-1)
	// derives the count from N and the machine's core count, staying
	// serial for small populations — note the resolved count, and
	// hence the trajectory, then depends on the machine; Result.Shards
	// reports what was resolved. Sharded runs stop at the exact
	// hitting time like serial runs (Result.Exact = true on
	// convergence): per-shard touch records are folded into the stop
	// tracker at each batch barrier, pinning the first satisfying
	// interaction of the batch (DESIGN.md §3.3). The count requested
	// here is clamped to [1, N/2] (every shard needs at least two
	// agents).
	Shards int
	// ShardWorkers bounds the shard worker pool when Shards > 1 —
	// and the message network's delivery worker pool when the run
	// routes through it: < 1 means one worker per CPU. It trades wall
	// clock for cores only; the Result is identical at every setting.
	ShardWorkers int
	// Workers, when > 1, asks a job service (ssrankd with a registered
	// worker pool) to execute the run across that many worker
	// processes via the distributed shard runtime — see RunDistributed
	// for direct use. Like ShardWorkers it is execution-only: the
	// trajectory is a pure function of the rest of the canonical
	// Config, so Workers is cleared from Result.Config, excluded from
	// job cache keys, and ignored entirely by the in-process entry
	// points (Run, NewSimulation, Replicate). Services without workers
	// fall back to in-process execution with an identical Result.
	Workers int
	// Scheduler selects the communication model. The zero value is
	// the paper's uniform scheduler on the fast in-place engines; any
	// named scheduler (an explicit SchedulerUniform included) routes
	// the run through the round-based message network. See the
	// Scheduler type for the model and its caveats (Shards is ignored
	// there, stops are round-polled, Result.Exact is false, sparse
	// topologies generally never converge).
	Scheduler Scheduler
	// Faults injects message-network faults (drop, duplicate, delay,
	// reorder). Any non-zero field routes the run through the message
	// network, under Scheduler's topology (uniform by default).
	Faults Faults
}

// Result reports a completed run.
type Result struct {
	// Ranks holds each agent's final rank (1-based; 0 = unranked).
	// For Interval the ranks live in [1, (1+ε)n]; for Loose the rank
	// is the leader bit (1 = leader).
	Ranks []int
	// Interactions is the number of pairwise interactions executed.
	// When Exact, it is the exact hitting time of the protocol's stop
	// condition. On the message network it counts delivered requests —
	// interactions that actually happened, not messages sent.
	Interactions int64
	// Rounds is the number of communication rounds executed —
	// message-network runs only (0 on the in-place engines, which have
	// no round structure).
	Rounds int64
	// Converged reports whether the protocol's stop condition (a
	// valid silent ranking; a unique leader for Loose) was reached
	// within the budget.
	Converged bool
	// Exact reports whether Interactions is the exact hitting time —
	// the first interaction after which the stop condition held. True
	// on every converged in-place run, serial or sharded: both engines
	// evaluate the condition through the protocol's incremental
	// tracker after every interaction (the sharded engine by folding
	// per-shard touch records at each batch barrier). False only when
	// the budget ran out or the run routed through the round-based
	// message network (whose stops are polled per round).
	Exact bool
	// Shards is the resolved shard count the run executed with: the
	// clamped Config.Shards (or the machine-resolved AutoShards
	// count) on the sharded engine, 1 for serial in-place runs, 0 on
	// the message network (which has no shard structure). Together
	// with the rest of the Config it makes any sharded trajectory
	// reproducible from the Result alone.
	Shards int
	// Leader is the index of the rank-1 agent (-1 if none) — the
	// elected leader under the paper's output function.
	Leader int
	// Resets counts the self-healing resets (self-stabilizing
	// protocols only).
	Resets int64
	// ResetBreakdown classifies the resets by cause (StableRanking
	// only).
	ResetBreakdown map[string]int64
	// Config is the canonical configuration the run executed: the
	// submitted Config with defaults filled and the shard count
	// resolved (Config.Normalized), with the execution-only knobs
	// (ShardWorkers, Workers) cleared — worker counts, in-process or
	// distributed, never affect the trajectory, so they are not part
	// of the reproduction recipe and Result stays byte-identical
	// across them. Re-running this Config reproduces the Result
	// exactly: every row of a replication, every cached job result,
	// carries its own reproduction recipe.
	Config Config
}

// resultConfig is the form of a normalized Config stamped onto Result:
// the execution-only knobs (ShardWorkers, Workers) cleared, everything
// else the canonical form the engines executed.
func resultConfig(cfg Config) Config {
	cfg.ShardWorkers = 0
	cfg.Workers = 0
	return cfg
}

// ErrNotConverged is wrapped into Run's error when the budget is
// exhausted first. The partial Result is still returned.
var ErrNotConverged = errors.New("ssrank: ranking did not converge within the interaction budget")

// AutoShards is the Config.Shards sentinel that picks the shard count
// automatically from N and the machine's core count
// (shard.AutoShards): serial below the population size where sharding
// pays for its coordination, one shard per core (with a minimum slab
// per shard) above.
const AutoShards = shard.Auto

// Run executes the configured protocol until it reaches its stop
// condition — a valid silent ranking, a unique leader for Loose — or
// the budget runs out. Serial and sharded runs both stop at the exact
// hitting time via the protocol's registered incremental tracker
// (Result.Exact); only message-network runs poll.
func Run(cfg Config) (Result, error) {
	d, cfg, err := normalize(cfg)
	if err != nil {
		return Result{}, err
	}
	return d.run(cfg)
}

// Normalized returns the canonical form of cfg: defaults filled
// (protocol, init, ε, budget), the shard count resolved (AutoShards
// expanded against this machine, clamped to [1, N/2]; 0 when the
// configuration routes through the message network) — exactly the
// configuration the engines execute. Two Configs with equal canonical
// forms modulo ShardWorkers produce byte-identical Results, which is
// what makes the canonical form a cache key: ShardWorkers trades wall
// clock for cores only and is excluded from that equivalence.
//
// Every entry point (Run, NewSimulation, Replicate) normalizes through
// this one path, and Result.Config reports the canonical form a run
// actually executed.
func (cfg Config) Normalized() (Config, error) {
	_, c, err := normalize(cfg)
	return c, err
}

// normalize validates cfg against the registry and canonicalizes it:
// defaults filled (protocol, init, ε, budget) and the shard count
// resolved. It is the single vetting path shared by Run, NewSimulation,
// ResumeSimulation and Replicate; the returned Config is what the
// engine layers execute and what Result.Config reports.
func normalize(cfg Config) (*Descriptor, Config, error) {
	if cfg.N < 2 {
		return nil, cfg, fmt.Errorf("ssrank: N must be >= 2, got %d", cfg.N)
	}
	if cfg.Protocol == "" {
		cfg.Protocol = StableRanking
	}
	d, ok := lookup(cfg.Protocol)
	if !ok {
		return nil, cfg, fmt.Errorf("ssrank: unknown protocol %q", cfg.Protocol)
	}
	if cfg.Init == "" {
		cfg.Init = d.Inits[0]
	}
	if !d.Supports(cfg.Init) {
		return nil, cfg, fmt.Errorf("ssrank: protocol %q supports inits %v, got %q", cfg.Protocol, d.Inits, cfg.Init)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1.0
	}
	if err := checkNetwork(cfg); err != nil {
		return nil, cfg, err
	}
	if cfg.MaxInteractions == 0 {
		cfg.MaxInteractions = d.DefaultBudget(cfg.N)
	}
	cfg.Shards = resolveShards(cfg)
	return d, cfg, nil
}

// resolveShards canonicalizes Config.Shards: 0 on the message-network
// path (which has no shard structure), otherwise the AutoShards
// sentinel expanded against N and this machine's core count and the
// result clamped to [1, N/2] — the clamp the sharded engine applies,
// hoisted into the canonical form so Config.Shards, Result.Shards and
// the engine's effective count all agree.
func resolveShards(cfg Config) int {
	if cfg.messageNetwork() {
		return 0
	}
	s := cfg.Shards
	if s == AutoShards {
		s = shard.AutoShards(cfg.N, 0)
	}
	if s > cfg.N/2 {
		s = cfg.N / 2
	}
	if s < 1 {
		s = 1
	}
	return s
}

// defaultBudget returns the registered default interaction budget for
// protocol p at population size n (0 for unknown protocols). Budgets
// are computed in float64 and saturate at MaxInt64, so very large n
// cannot overflow into a negative or tiny cap.
func defaultBudget(n int, p Protocol) int64 {
	if d, ok := lookup(p); ok {
		return d.DefaultBudget(n)
	}
	return 0
}

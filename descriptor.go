package ssrank

import (
	"fmt"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/baseline/sudo"
	"ssrank/internal/ckpt"
	"ssrank/internal/core"
	"ssrank/internal/dist"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stable"
)

// initSeedSalt derives the initialization randomness (random inits,
// adversarial draws) from Config.Seed without correlating it with the
// scheduler stream. Fixed forever: changing it would change every
// seeded run with a random init.
const initSeedSalt = 0xc0ffee

// Descriptor is the public view of a registered protocol: what it is
// called, which initial configurations it accepts, whether it
// self-stabilizes, and its default interaction budget. Underneath, it
// carries the type-erased engine paths Run, NewSimulation and
// Replicate dispatch through — one generic implementation for all
// protocols instead of one hand-written runner each.
//
// A protocol registers by constructing a proto.Descriptor in its own
// package (the descriptor contract is documented there and in
// DESIGN.md "Public API") and wiring it into this package's registry.
type Descriptor struct {
	// Protocol is the registered selector.
	Protocol Protocol
	// Inits lists the supported initial configurations; the first
	// entry is the default.
	Inits []Init
	// SelfStabilizing reports whether the protocol converges from
	// arbitrary configurations (and supports Simulation.Corrupt).
	SelfStabilizing bool
	// DefaultBudget returns the interaction budget a zero
	// Config.MaxInteractions resolves to — several times the expected
	// stabilization time, saturating at MaxInt64.
	DefaultBudget func(n int) int64

	run         func(cfg Config) (Result, error)
	newSim      func(cfg Config) (simHandle, error)
	resume      func(cfg Config, r *ckpt.Reader) (simHandle, error)
	runDist     func(cfg Config, opts DistRun) (Result, error)
	distRuntime func(cfg Config) dist.Runtime
}

// Supports reports whether the protocol registered the named init.
func (d *Descriptor) Supports(init Init) bool {
	for _, i := range d.Inits {
		if i == init {
			return true
		}
	}
	return false
}

// Describe returns the descriptor registered for p. The returned
// value is the caller's own copy: mutating it (or its Inits) cannot
// affect how the registry dispatches.
func Describe(p Protocol) (*Descriptor, bool) {
	if d, ok := lookup(p); ok {
		return d.clone(), true
	}
	return nil, false
}

// Descriptors lists every registered protocol's descriptor, in
// registry order. Each entry is the caller's own copy (see Describe).
func Descriptors() []*Descriptor {
	out := make([]*Descriptor, len(registry))
	for i, d := range registry {
		out[i] = d.clone()
	}
	return out
}

// lookup resolves a protocol to its live registry entry — internal
// dispatch only; public accessors hand out clones.
func lookup(p Protocol) (*Descriptor, bool) {
	for _, d := range registry {
		if d.Protocol == p {
			return d, true
		}
	}
	return nil, false
}

// clone returns a defensive copy sharing only the immutable engine
// closures.
func (d *Descriptor) clone() *Descriptor {
	c := *d
	c.Inits = append([]Init(nil), d.Inits...)
	return &c
}

// registry holds one descriptor per implemented protocol. Protocol
// packages construct the generic descriptors (their desc.go);
// describe erases the state type so they can share one table.
var registry = []*Descriptor{
	describe(func(Config) proto.Descriptor[stable.State, *stable.Protocol] {
		return stable.Describe()
	}),
	describe(func(Config) proto.Descriptor[core.State, *core.Protocol] {
		return core.Describe()
	}),
	describe(func(Config) proto.Descriptor[cai.State, *cai.Protocol] {
		return cai.Describe()
	}),
	describe(func(Config) proto.Descriptor[aware.State, *aware.Protocol] {
		return aware.Describe()
	}),
	describe(func(cfg Config) proto.Descriptor[interval.State, *interval.Protocol] {
		return interval.Describe(cfg.Epsilon)
	}),
	describe(func(Config) proto.Descriptor[sudo.State, *sudo.Protocol] {
		return sudo.Describe(sudo.DefaultTimeoutFactor)
	}),
}

// describe erases a protocol package's generic descriptor into the
// public registry entry, binding the one generic engine-selection path
// (runDesc) and the one generic stepwise driver (simDriver) to it. mk
// rebuilds the descriptor per call so per-run parameters (Interval's ε)
// come from the Config.
func describe[S any, P sim.TouchReporter[S]](mk func(Config) proto.Descriptor[S, P]) *Descriptor {
	meta := mk(Config{Epsilon: 1})
	inits := make([]Init, len(meta.Inits))
	for i, name := range meta.Inits {
		inits[i] = Init(name)
	}
	return &Descriptor{
		Protocol:        Protocol(meta.Name),
		Inits:           inits,
		SelfStabilizing: meta.SelfStabilizing,
		DefaultBudget:   meta.Budget,
		run: func(cfg Config) (Result, error) {
			if cfg.messageNetwork() {
				return runMsgNetDesc(cfg, mk(cfg))
			}
			return runDesc(cfg, mk(cfg))
		},
		newSim: func(cfg Config) (simHandle, error) {
			if cfg.messageNetwork() {
				return newMsgSimDriver(cfg, mk(cfg))
			}
			if cfg.Shards > 1 {
				return newShardSimDriver(cfg, mk(cfg))
			}
			return newSimDriver(cfg, mk(cfg))
		},
		resume: func(cfg Config, r *ckpt.Reader) (simHandle, error) {
			return resumeDriver(cfg, mk(cfg), r)
		},
		runDist: func(cfg Config, opts DistRun) (Result, error) {
			return runDistDesc(cfg, mk(cfg), opts)
		},
		distRuntime: func(cfg Config) dist.Runtime {
			return dist.NewRuntime(mk(cfg))
		},
	}
}

// descInit builds the configured initial configuration, deriving the
// initialization randomness from the seed under the fixed salt.
func descInit[S any, P any](cfg Config, d proto.Descriptor[S, P], p P) ([]S, error) {
	init := d.Init(p, string(cfg.Init), rng.New(cfg.Seed^initSeedSalt))
	if init == nil {
		return nil, fmt.Errorf("ssrank: protocol %q supports inits %v, got %q", cfg.Protocol, d.Inits, cfg.Init)
	}
	return init, nil
}

// runDesc is the single engine-selection path behind Run: the sharded
// runner when the config resolves to more than one shard, else the
// serial runner. Both stop at the exact hitting time via the
// descriptor's incremental tracker and the protocol's touch reporting
// (sim.RunUntilCondT serially; the barrier fold of
// shard.Runner.RunUntilExact sharded), so Result.Exact is true on
// every converged in-place run — transient stop conditions (Loose)
// included, since the tracker catches mid-batch satisfying windows a
// polled scan would miss.
func runDesc[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P]) (Result, error) {
	p := d.New(cfg.N)
	init, ierr := descInit(cfg, d, p)
	if ierr != nil {
		return Result{}, ierr
	}
	var (
		states []S
		steps  int64
		err    error
	)
	if cfg.Shards > 1 {
		r := shard.New[S](p, init, cfg.Seed, cfg.Shards, cfg.ShardWorkers)
		steps, err = r.RunUntilExact(sim.DescCond(d, p), cfg.MaxInteractions)
		states = r.States()
	} else {
		r := sim.New[S](p, init, cfg.Seed)
		steps, err = sim.RunUntilCondT(r, sim.DescCond(d, p), cfg.MaxInteractions)
		states = r.States()
	}
	res := Result{
		Ranks:        d.Ranks(states),
		Interactions: steps,
		Converged:    err == nil,
		Exact:        err == nil,
		Shards:       cfg.Shards,
		Leader:       d.LeaderOf(states),
		Config:       resultConfig(cfg),
	}
	if d.Resets != nil {
		res.Resets = d.Resets(p)
	}
	if d.ResetBreakdown != nil {
		res.ResetBreakdown = d.ResetBreakdown(p)
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

package ssrank

import (
	"fmt"
	"math"

	"ssrank/internal/ckpt"
	"ssrank/internal/faults"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/msgnet"
)

// Scheduler selects the communication model a run executes under.
// The zero value is the paper's model: uniformly random ordered pairs
// applied atomically on the fast in-place engines. Naming any
// scheduler — even SchedulerUniform — or setting any non-zero Faults
// routes the run through the round-based message network
// (internal/sim/msgnet): agents become message machines exchanging
// request/reply state snapshots, contacts are drawn from the selected
// topology, and the configured faults perturb the messages in flight.
//
// Message-network runs are exactly reproducible — the trajectory is a
// pure function of (Config) at any ShardWorkers setting — but they
// follow a different law than the in-place engines (rounds, rendezvous
// blocking, two-phase interactions), so their interaction counts are
// comparable between message-network runs, not with the uniform
// in-place numbers. Stops are polled per round (Result.Exact = false)
// and Config.Shards is ignored on this path.
//
// A caveat that is itself a finding: the paper's ranking protocols
// resolve rank conflicts by direct meetings, so they converge on the
// complete contact graph (SchedulerUniform) but generally never on
// the sparse topologies — two agents holding the same rank on
// opposite sides of a ring cannot meet to notice. Expect
// ErrNotConverged there; the fault-regime experiment (cmd/figures
// E19) measures exactly this.
type Scheduler string

const (
	// SchedulerUniform draws each contact as a uniformly random
	// ordered pair — the paper's scheduler, chopped into rounds when
	// routed through the message network.
	SchedulerUniform Scheduler = Scheduler(msgnet.Uniform)
	// SchedulerRing restricts contacts to the cycle 0–1–…–(n-1)–0.
	SchedulerRing Scheduler = Scheduler(msgnet.Ring)
	// SchedulerStar funnels every contact through center agent 0.
	SchedulerStar Scheduler = Scheduler(msgnet.Star)
	// SchedulerPingPong deterministically alternates (0,1), (1,0), …;
	// agents ≥ 2 never communicate — the minimal adversarial schedule.
	SchedulerPingPong Scheduler = Scheduler(msgnet.PingPong)
	// SchedulerExpander draws contacts from a fixed seed-derived
	// near-4-regular expander (union of two random Hamiltonian
	// cycles).
	SchedulerExpander Scheduler = Scheduler(msgnet.Expander)
	// SchedulerPowerLaw draws contacts from a fixed seed-derived
	// Barabási–Albert preferential-attachment graph (hub-dominated
	// degrees).
	SchedulerPowerLaw Scheduler = Scheduler(msgnet.PowerLaw)
)

// Schedulers lists every available communication topology, in
// registry order.
func Schedulers() []Scheduler {
	names := msgnet.Schedulers()
	out := make([]Scheduler, len(names))
	for i, n := range names {
		out[i] = Scheduler(n)
	}
	return out
}

// Faults configures message-network fault injection. Any non-zero
// field routes the run through the message network even under
// SchedulerUniform. Fault fates are drawn per message from a
// seed-derived stream, so fault outcomes are a pure function of
// (Config) — see internal/sim/msgnet for the hazard taxonomy (lost,
// half-applied, replayed, and stale-overwritten interactions).
type Faults struct {
	// DropProb is the probability a message is lost in flight.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayMax, when > 0, delays each message by a uniform number of
	// rounds in [0, DelayMax].
	DelayMax int
	// ReorderProb is the probability a round's delivery queue is
	// shuffled.
	ReorderProb float64
}

// toMsgnet converts the public fault knobs to the engine's fault
// model.
func (f Faults) toMsgnet() msgnet.Faults {
	return msgnet.Faults{Drop: f.DropProb, Dup: f.DupProb, DelayMax: f.DelayMax, Reorder: f.ReorderProb}
}

// messageNetwork reports whether the configuration routes through the
// message-network engine: any named scheduler (an explicit
// SchedulerUniform included — it is the fault-free message-network
// reference) or any fault injection. A zero Scheduler with zero
// Faults keeps the fast in-place engines.
func (cfg Config) messageNetwork() bool {
	return cfg.Scheduler != "" || cfg.Faults != Faults{}
}

// checkNetwork validates the communication-model knobs (normalize
// calls it for every entry point).
func checkNetwork(cfg Config) error {
	if cfg.Scheduler != "" {
		ok := false
		for _, s := range Schedulers() {
			if cfg.Scheduler == s {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("ssrank: unknown scheduler %q (have %v)", cfg.Scheduler, Schedulers())
		}
	}
	return cfg.Faults.toMsgnet().Validate()
}

// newMsgNet builds the message network for a vetted Config.
func newMsgNet[S any, P sim.Protocol[S]](cfg Config, p P, init []S) (*msgnet.Network[S, P], error) {
	sched, err := msgnet.NewScheduler(string(cfg.Scheduler), cfg.N, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return msgnet.New[S](p, init, msgnet.Config{
		Sched:   sched,
		Faults:  cfg.Faults.toMsgnet(),
		Workers: cfg.ShardWorkers,
		Seed:    cfg.Seed,
	}), nil
}

// runMsgNetDesc is the message-network analogue of runDesc: one
// generic run path for every registered protocol, driven entirely by
// the descriptor (stop predicate, projections, instrumentation) with
// zero per-protocol scheduling code.
func runMsgNetDesc[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P]) (Result, error) {
	p := d.New(cfg.N)
	init, err := descInit(cfg, d, p)
	if err != nil {
		return Result{}, err
	}
	nw, err := newMsgNet[S](cfg, p, init)
	if err != nil {
		return Result{}, err
	}
	steps, rerr := nw.RunUntil(d.Valid, cfg.MaxInteractions)
	res := Result{
		Ranks:        d.Ranks(nw.States()),
		Interactions: steps,
		Rounds:       nw.Rounds(),
		Converged:    rerr == nil,
		Exact:        false,
		Leader:       d.LeaderOf(nw.States()),
		Config:       resultConfig(cfg),
	}
	if d.Resets != nil {
		res.Resets = d.Resets(p)
	}
	if d.ResetBreakdown != nil {
		res.ResetBreakdown = d.ResetBreakdown(p)
	}
	if rerr != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

// msgSimDriver is the message-network counterpart of simDriver: the
// generic stepwise driver behind Simulation when the Config routes
// through the message network. Control is round-granular — Step(k)
// and the stop checks advance whole communication rounds — so
// interaction counts overshoot their targets by up to one round.
type msgSimDriver[S any, P sim.TouchReporter[S]] struct {
	d  proto.Descriptor[S, P]
	p  P
	nw *msgnet.Network[S, P]
}

func newMsgSimDriver[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P]) (simHandle, error) {
	p := d.New(cfg.N)
	init, err := descInit(cfg, d, p)
	if err != nil {
		return nil, err
	}
	nw, err := newMsgNet[S](cfg, p, init)
	if err != nil {
		return nil, err
	}
	return &msgSimDriver[S, P]{d: d, p: p, nw: nw}, nil
}

func (s *msgSimDriver[S, P]) n() int { return s.nw.N() }

// step advances rounds until k more interactions were delivered — or
// k rounds have passed, the backstop for regimes that deliver almost
// nothing (e.g. DropProb 1).
func (s *msgSimDriver[S, P]) step(k int64) {
	target := s.nw.Steps() + k
	for rounds := int64(0); rounds < k && s.nw.Steps() < target; rounds++ {
		s.nw.Round()
	}
}

func (s *msgSimDriver[S, P]) runUntilStable(maxSteps int64) bool {
	_, err := s.nw.RunUntil(s.d.Valid, maxSteps)
	return err == nil
}

func (s *msgSimDriver[S, P]) observe(every, maxSteps int64, obs func(Snapshot)) {
	if every < 1 {
		every = int64(s.nw.N())
	}
	obs(s.snapshot())
	// The round backstop is derived from the *remaining* interaction
	// budget, like step does per call — never from the absolute budget:
	// a simulation that already executed ≥ maxSteps rounds under a
	// lossy regime (DropProb near 1 delivers almost nothing per round)
	// must still get its budget's worth of rounds here, and the
	// absolute counters can both saturate near MaxInt64.
	roundCap := s.nw.Rounds() + remainingRounds(s.nw.Rounds(), maxSteps-s.nw.Steps())
	for s.nw.Steps() < maxSteps && s.nw.Rounds() < roundCap {
		next := s.nw.Steps() + every
		for s.nw.Steps() < next && s.nw.Steps() < maxSteps && s.nw.Rounds() < roundCap {
			s.nw.Round()
		}
		obs(s.snapshot())
		if s.d.Valid(s.nw.States()) {
			break
		}
	}
}

// remainingRounds clamps a remaining-interaction budget to what can be
// added to the current round counter without overflowing int64.
func remainingRounds(rounds, remaining int64) int64 {
	if remaining < 0 {
		return 0
	}
	if remaining > math.MaxInt64-rounds {
		return math.MaxInt64 - rounds
	}
	return remaining
}

func (s *msgSimDriver[S, P]) snapshot() Snapshot {
	snap := descSnapshot(s.d, s.p, s.nw.Steps(), s.nw.States())
	snap.Rounds = s.nw.Rounds()
	return snap
}

func (s *msgSimDriver[S, P]) interactions() int64 { return s.nw.Steps() }
func (s *msgSimDriver[S, P]) stable() bool        { return s.d.Valid(s.nw.States()) }
func (s *msgSimDriver[S, P]) ranks() []int        { return s.d.Ranks(s.nw.States()) }
func (s *msgSimDriver[S, P]) rankedCount() int    { return s.d.RankedCount(s.nw.States()) }
func (s *msgSimDriver[S, P]) leader() int         { return s.d.LeaderOf(s.nw.States()) }

func (s *msgSimDriver[S, P]) resets() int64 {
	if s.d.Resets == nil {
		return 0
	}
	return s.d.Resets(s.p)
}

func (s *msgSimDriver[S, P]) resetBreakdown() map[string]int64 {
	if s.d.ResetBreakdown == nil {
		return nil
	}
	return s.d.ResetBreakdown(s.p)
}

func (s *msgSimDriver[S, P]) corrupt(k int, r *rng.RNG) error {
	return descCorrupt(s.d, s.p, s.nw.States(), k, r)
}

func (s *msgSimDriver[S, P]) swap(k int, r *rng.RNG) {
	faults.Swap(s.nw.States(), k, r)
}

func (s *msgSimDriver[S, P]) duplicate(r *rng.RNG) (int, int, error) {
	return descDuplicate(s.d, s.nw.States(), r)
}

func (s *msgSimDriver[S, P]) result() Result {
	res := descResult(s.d, s.p, s.nw.States(), s.nw.Steps(), -1, 0)
	res.Rounds = s.nw.Rounds()
	return res
}

// marshal rejects checkpointing: the message network's in-flight
// mailboxes, per-agent protocol phases and fault stream positions are
// not serializable state, and Result.Exact is never true on this path
// anyway — see DESIGN.md §8.
func (s *msgSimDriver[S, P]) marshal(*ckpt.Writer) error {
	return fmt.Errorf("ssrank: message-network simulations are not checkpointable")
}

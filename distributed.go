package ssrank

import (
	"errors"
	"fmt"
	"net"
	"time"

	"ssrank/internal/dist"
	"ssrank/internal/proto"
	"ssrank/internal/sim"
)

// DistRun configures RunDistributed.
type DistRun struct {
	// Workers are live connections to ssrank worker processes (each
	// serving ServeWorker on its end). The run adopts up to
	// min(len(Workers), resolved shard count) of them; connections
	// beyond that are left untouched. Connections a run rejects at
	// handshake, or drops after a heartbeat timeout, are closed.
	Workers []net.Conn
	// Timeout is the heartbeat bound: how long the coordinator waits
	// on any single worker frame before declaring the worker dead and
	// migrating its shard group. Zero picks a default (30s).
	Timeout time.Duration
	// OnBatch, when set, is called after every committed batch barrier
	// with the total interactions committed so far — the progress feed
	// of a distributed run.
	OnBatch func(steps int64)
}

// RunDistributed executes one sharded run across worker processes: the
// same trajectory, hitting time and Result bytes as Run with the same
// Config — distribution, like Config.ShardWorkers, trades wall clock
// for hardware without touching the outcome. The config must resolve
// to at least two shards and must not route through the message
// network. Worker deaths are survived as long as one worker remains:
// the dead worker's shard group is re-materialized on a survivor from
// the last batch barrier and the batch replays byte-identically.
//
// The error is ErrNotConverged (wrapped, with the partial Result) when
// the interaction budget runs out, or an infrastructure error when
// every worker died.
func RunDistributed(cfg Config, opts DistRun) (Result, error) {
	d, cfg, err := normalize(cfg)
	if err != nil {
		return Result{}, err
	}
	if cfg.messageNetwork() {
		return Result{}, errors.New("ssrank: message-network runs cannot be distributed")
	}
	if cfg.Shards < 2 {
		return Result{}, fmt.Errorf("ssrank: distributed execution needs a config resolving to at least 2 shards, got %d", cfg.Shards)
	}
	if len(opts.Workers) == 0 {
		return Result{}, errors.New("ssrank: no worker connections")
	}
	return d.runDist(cfg, opts)
}

// ServeWorker serves the worker side of distributed runs on one
// coordinator connection, blocking until the connection closes (nil on
// clean shutdown — redialing is the caller's loop; see
// cmd/ssrank-worker). One connection serves many runs: each run's
// coordinator installs a shard group, drives batches, and releases the
// worker back to idle.
func ServeWorker(conn net.Conn) error {
	return dist.Serve(conn, func(h *dist.AssignHeader) (dist.Runtime, error) {
		d, ok := lookup(Protocol(h.Protocol))
		if !ok {
			return nil, fmt.Errorf("ssrank: assignment names unknown protocol %q", h.Protocol)
		}
		return d.distRuntime(Config{
			N:        h.N,
			Protocol: Protocol(h.Protocol),
			Seed:     h.Seed,
			Init:     Init(h.Init),
			Epsilon:  h.Epsilon,
			Shards:   h.Shards,
		}), nil
	})
}

// runDistID is the wire identity of a normalized config — the fields
// the sharded trajectory depends on, nothing more.
func runDistID(cfg Config) dist.RunID {
	return dist.RunID{
		Protocol: string(cfg.Protocol),
		Init:     string(cfg.Init),
		N:        cfg.N,
		Seed:     cfg.Seed,
		Epsilon:  cfg.Epsilon,
		Shards:   cfg.Shards,
	}
}

// runDistDesc is the distributed twin of runDesc: identical Result
// construction from the coordinator's committed mirror, so a
// distributed run and an in-process sharded run of the same canonical
// Config produce byte-identical Results.
func runDistDesc[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P], opts DistRun) (Result, error) {
	if d.EncodeAgent == nil || d.DecodeAgent == nil {
		return Result{}, fmt.Errorf("ssrank: protocol %q does not support distributed execution (no per-agent codecs)", cfg.Protocol)
	}
	p := d.New(cfg.N)
	init, ierr := descInit(cfg, d, p)
	if ierr != nil {
		return Result{}, ierr
	}
	co, err := dist.NewCoordinator[S](d, p, init, runDistID(cfg), opts.Workers, dist.Options{
		Timeout: opts.Timeout,
		OnBatch: opts.OnBatch,
	})
	if err != nil {
		return Result{}, err
	}
	defer co.Stop()
	steps, err := co.RunUntilExact(sim.DescCond(d, p), cfg.MaxInteractions)
	if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
		return Result{}, fmt.Errorf("ssrank: distributed run failed: %w", err)
	}
	// The workers' counters land back on the coordinator's protocol
	// instance so the Result's instrumentation projections read the
	// whole-run totals, exactly as in-process execution accumulates
	// them.
	if d.SetInstr != nil {
		d.SetInstr(p, co.InstrTotal())
	}
	states := co.States()
	res := Result{
		Ranks:        d.Ranks(states),
		Interactions: steps,
		Converged:    err == nil,
		Exact:        err == nil,
		Shards:       cfg.Shards,
		Leader:       d.LeaderOf(states),
		Config:       resultConfig(cfg),
	}
	if d.Resets != nil {
		res.Resets = d.Resets(p)
	}
	if d.ResetBreakdown != nil {
		res.ResetBreakdown = d.ResetBreakdown(p)
	}
	if err != nil {
		return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, steps, ErrNotConverged)
	}
	return res, nil
}

// Faultrecovery demonstrates what "self-stabilizing" buys: a sensor
// fleet whose nodes are struck by repeated transient fault bursts
// (arbitrary memory corruption) and heal on their own — the scenario
// that motivates the paper's adversarial initial configurations.
//
//	go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"

	"ssrank"
)

func main() {
	const n = 128

	sim, err := ssrank.NewSimulation(ssrank.Config{N: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	if !sim.RunUntilStable(0) {
		log.Fatal("initial stabilization failed")
	}
	fmt.Printf("fleet of %d nodes ranked after %.1f n² interactions\n",
		n, norm(sim.Interactions(), n))

	for burst, k := range []int{1, n / 8, n / 2} {
		before := sim.Interactions()
		if err := sim.Corrupt(k); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nburst %d: corrupted %d node(s) with arbitrary states\n", burst+1, k)
		fmt.Printf("  ranking valid right after the burst: %t\n", sim.Stable())

		if !sim.RunUntilStable(0) {
			log.Fatalf("burst %d: fleet did not recover", burst+1)
		}
		fmt.Printf("  recovered in %.1f n² interactions (resets so far: %d %v)\n",
			norm(sim.Interactions()-before, n), sim.Resets(), sim.ResetBreakdown())
		fmt.Printf("  leader is node %d again holding rank 1\n", sim.Leader())
	}
}

func norm(steps int64, n int) float64 {
	return float64(steps) / float64(n) / float64(n)
}

// Quickstart: rank 64 anonymous agents with the self-stabilizing
// protocol and elect the rank-1 agent as leader.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssrank"
)

func main() {
	const n = 64

	res, err := ssrank.Run(ssrank.Config{N: n, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Interactions is the exact hitting time of the first valid silent
	// ranking (Exact): the serial engine tracks validity incrementally
	// instead of polling it.
	fmt.Printf("ranked %d agents in exactly %d interactions (%.1f n², exact=%t)\n",
		n, res.Interactions, float64(res.Interactions)/(n*n), res.Exact)
	fmt.Printf("agent %d holds rank 1 and is therefore the leader\n", res.Leader)

	// Every agent ended with a unique rank in 1..n:
	fmt.Print("ranks: ")
	for _, r := range res.Ranks {
		fmt.Printf("%d ", r)
	}
	fmt.Println()
}

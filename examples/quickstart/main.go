// Quickstart: rank 64 anonymous agents with the self-stabilizing
// protocol and elect the rank-1 agent as leader.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssrank"
)

func main() {
	const n = 64

	res, err := ssrank.Run(ssrank.Config{N: n, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ranked %d agents in %d interactions (%.1f n²)\n",
		n, res.Interactions, float64(res.Interactions)/(n*n))
	fmt.Printf("agent %d holds rank 1 and is therefore the leader\n", res.Leader)

	// Every agent ended with a unique rank in 1..n:
	fmt.Print("ranks: ")
	for _, r := range res.Ranks {
		fmt.Printf("%d ", r)
	}
	fmt.Println()
}

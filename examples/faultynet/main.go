// Faultynet runs the flagship protocol over the adversarial message
// network: agents exchange request/reply messages in rounds while the
// channel drops, duplicates, delays and reorders them — the deployment
// reality (radio loss, retransmissions, jitter) that the population
// model's atomic interactions abstract away. The same Config, minus
// the faults, is the clean baseline, so the printed comparison is the
// price of the channel.
//
//	go run ./examples/faultynet
package main

import (
	"errors"
	"fmt"
	"log"

	"ssrank"
)

func main() {
	const n = 48

	// Baseline: the message network with a perfect channel.
	clean := run(ssrank.Config{N: n, Seed: 3, Scheduler: ssrank.SchedulerUniform})
	fmt.Printf("perfect channel:  ranked in %d rounds (%d interactions)\n",
		clean.Rounds, clean.Interactions)

	// The same population behind a lossy channel: 5% of messages
	// vanish, 5% arrive twice, any message may lag up to 3 rounds,
	// and delivery order within a round is scrambled.
	faulty := run(ssrank.Config{
		N: n, Seed: 3,
		Faults: ssrank.Faults{DropProb: 0.05, DupProb: 0.05, DelayMax: 3, ReorderProb: 0.5},
	})
	fmt.Printf("lossy channel:    ranked in %d rounds (%d interactions)\n",
		faulty.Rounds, faulty.Interactions)
	fmt.Printf("slowdown: %.1fx rounds — faults cost time, not correctness\n",
		float64(faulty.Rounds)/float64(clean.Rounds))

	// The protocol is not fault-tolerant under every communication
	// model: on a sparse contact graph agents holding conflicting
	// ranks may never meet, and the run exhausts its budget. That is
	// a model-level finding, not a bug — the paper's protocols need
	// the complete contact graph.
	_, err := ssrank.Run(ssrank.Config{
		N: n, Seed: 3,
		Scheduler:       ssrank.SchedulerRing,
		MaxInteractions: 500_000,
	})
	if errors.Is(err, ssrank.ErrNotConverged) {
		fmt.Println("ring topology:    never converges — rank conflicts need direct meetings")
	}
}

func run(cfg ssrank.Config) ssrank.Result {
	res, err := ssrank.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

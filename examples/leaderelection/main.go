// Leaderelection shows the paper's §I reduction live: unique ranks
// make leader election trivial (rank 1 = leader), and the resulting
// leader election is itself silent and self-stabilizing. The example
// traces the population's composition while it converges, then kills
// the leader's state and watches a new (well — the same rank, possibly
// a different node) leader emerge.
//
//	go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"

	"ssrank"
)

func main() {
	const n = 96

	sim, err := ssrank.NewSimulation(ssrank.Config{N: n, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s  %8s  %s\n", "n²-units", "ranked", "leader")
	for !sim.Stable() {
		sim.Step(int64(4 * n * n))
		leader := "none yet"
		if l := sim.Leader(); l >= 0 {
			leader = fmt.Sprintf("node %d", l)
		}
		fmt.Printf("%10.1f  %8d  %s\n",
			float64(sim.Interactions())/float64(n*n), sim.RankedCount(), leader)
		if sim.Interactions() > int64(5000*n*n) {
			log.Fatal("did not converge")
		}
	}
	fmt.Printf("\nelected: node %d (rank 1 of %d)\n\n", sim.Leader(), n)

	// Depose the leader by corrupting one agent repeatedly until the
	// rank-1 holder was hit (small populations: just corrupt a chunk).
	if err := sim.Corrupt(n / 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrupted a quarter of the population (leader may be gone)\n")
	if !sim.RunUntilStable(0) {
		log.Fatal("did not re-stabilize")
	}
	fmt.Printf("re-stabilized; leader is node %d\n", sim.Leader())
}

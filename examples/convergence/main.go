// Convergence renders a live terminal version of the paper's Fig. 2:
// start the self-stabilizing protocol from the worst-case
// initialization, trace the number of ranked agents and the mean phase
// counter, and draw both as an ASCII chart once the population
// stabilizes.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/trace"
)

func main() {
	const (
		n    = 128
		seed = 2026
	)

	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.WorstCaseInit(), seed)

	rec := trace.NewRecorder[stable.State](
		trace.Probe[stable.State]{Name: "ranked", Fn: func(ss []stable.State) float64 {
			return float64(stable.RankedCount(ss))
		}},
		trace.Probe[stable.State]{Name: "mean_phase", Fn: func(ss []stable.State) float64 {
			return stable.MeanPhase(ss)
		}},
	)

	r.Observe(rec.Observe, int64(n)*int64(n)/4, int64(500)*int64(n)*int64(n),
		func(ss []stable.State) bool { return stable.Valid(ss) })

	if !stable.Valid(r.States()) {
		log.Fatal("did not stabilize within the plotting budget")
	}

	ranked, _ := rec.Series("ranked")
	phase, _ := rec.Series("mean_phase")
	x := make([]float64, rec.Len())
	scaledPhase := make([]float64, rec.Len())
	kMax := float64(p.Phases().KMax())
	for i := range x {
		x[i] = float64(rec.Steps(i)) / float64(n) / float64(n)
		// Scale the phase (1..kMax) onto the ranked axis, like the
		// paper's twin y-axis.
		scaledPhase[i] = phase[i] / kMax * float64(n)
	}

	fmt.Print(plot.Lines(
		fmt.Sprintf("worst-case recovery, n=%d (x: interactions/n²)", n),
		76, 20,
		plot.Series{Name: "ranked agents", X: x, Y: ranked},
		plot.Series{Name: fmt.Sprintf("mean phase (×%d/%d)", n, int(kMax)), X: x, Y: scaledPhase},
	))
	fmt.Printf("\nstabilized after %.1f n² interactions, %d resets %v\n",
		float64(r.Steps())/float64(n)/float64(n), p.Resets(), p.ResetBreakdown())
}

// Convergence renders a live terminal version of the paper's Fig. 2:
// start the self-stabilizing protocol from the worst-case
// initialization, sample cadenced snapshots of the ranked-agent count,
// the mean phase-clock value (the protocol's named "mean_phase" probe,
// surfaced through Snapshot.Probes), and the cumulative reset count
// through the public Observe API, and draw them as an ASCII chart once
// the population stabilizes.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"ssrank"
	"ssrank/internal/plot"
)

func main() {
	const (
		n    = 128
		seed = 2026
	)

	sim, err := ssrank.NewSimulation(ssrank.Config{N: n, Seed: seed, Init: ssrank.InitWorstCase})
	if err != nil {
		log.Fatal(err)
	}

	var x, ranked, phase, resets []float64
	stable := sim.Observe(int64(n)*int64(n)/4, int64(500)*int64(n)*int64(n),
		func(s ssrank.Snapshot) {
			x = append(x, float64(s.Interactions)/float64(n)/float64(n))
			ranked = append(ranked, float64(s.RankedCount))
			phase = append(phase, s.Probes["mean_phase"])
			resets = append(resets, float64(s.Resets))
		})
	if !stable {
		log.Fatal("did not stabilize within the plotting budget")
	}

	// Scale the cumulative resets and the mean phase onto the ranked
	// axis, like the paper's twin y-axis.
	maxResets := resets[len(resets)-1]
	scaled := make([]float64, len(resets))
	if maxResets > 0 {
		for i, r := range resets {
			scaled[i] = r / maxResets * n
		}
	}
	maxPhase := 0.0
	for _, p := range phase {
		if p > maxPhase {
			maxPhase = p
		}
	}
	phaseScaled := make([]float64, len(phase))
	if maxPhase > 0 {
		for i, p := range phase {
			phaseScaled[i] = p / maxPhase * n
		}
	}

	fmt.Print(plot.Lines(
		fmt.Sprintf("worst-case recovery, n=%d (x: interactions/n²)", n),
		76, 20,
		plot.Series{Name: "ranked agents", X: x, Y: ranked},
		plot.Series{Name: fmt.Sprintf("mean phase (×%d/%.1f)", n, maxPhase), X: x, Y: phaseScaled},
		plot.Series{Name: fmt.Sprintf("resets (×%d/%d)", n, int(maxResets)), X: x, Y: scaled},
	))
	fmt.Printf("\nstabilized after %.1f n² interactions, %d resets %v\n",
		float64(sim.Interactions())/float64(n)/float64(n), sim.Resets(), sim.ResetBreakdown())
}

// Convergence renders a live terminal version of the paper's Fig. 2:
// start the self-stabilizing protocol from the worst-case
// initialization, sample cadenced snapshots of the ranked-agent count
// and the cumulative reset count through the public Observe API, and
// draw both as an ASCII chart once the population stabilizes.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"ssrank"
	"ssrank/internal/plot"
)

func main() {
	const (
		n    = 128
		seed = 2026
	)

	sim, err := ssrank.NewSimulation(ssrank.Config{N: n, Seed: seed, Init: ssrank.InitWorstCase})
	if err != nil {
		log.Fatal(err)
	}

	var x, ranked, resets []float64
	stable := sim.Observe(int64(n)*int64(n)/4, int64(500)*int64(n)*int64(n),
		func(s ssrank.Snapshot) {
			x = append(x, float64(s.Interactions)/float64(n)/float64(n))
			ranked = append(ranked, float64(s.RankedCount))
			resets = append(resets, float64(s.Resets))
		})
	if !stable {
		log.Fatal("did not stabilize within the plotting budget")
	}

	// Scale the cumulative resets onto the ranked axis, like the
	// paper's twin y-axis.
	maxResets := resets[len(resets)-1]
	scaled := make([]float64, len(resets))
	if maxResets > 0 {
		for i, r := range resets {
			scaled[i] = r / maxResets * n
		}
	}

	fmt.Print(plot.Lines(
		fmt.Sprintf("worst-case recovery, n=%d (x: interactions/n²)", n),
		76, 20,
		plot.Series{Name: "ranked agents", X: x, Y: ranked},
		plot.Series{Name: fmt.Sprintf("resets (×%d/%d)", n, int(maxResets)), X: x, Y: scaled},
	))
	fmt.Printf("\nstabilized after %.1f n² interactions, %d resets %v\n",
		float64(sim.Interactions())/float64(n)/float64(n), sim.Resets(), sim.ResetBreakdown())
}

// Netsim runs the self-stabilizing ranking protocol on the
// goroutine-per-agent runtime: every agent is a Go routine owning its
// state, interactions are channel rendezvous — the "population of
// independent processes" reading of the model. The run is bit-identical
// to the sequential engine under the same seed; the example checks
// that, live.
//
//	go run ./examples/netsim
package main

import (
	"fmt"
	"log"

	"ssrank/internal/netsim"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func main() {
	const (
		n    = 48
		seed = 99
	)

	// Concurrent runtime: n goroutines + a matchmaker.
	pNet := stable.New(n, stable.DefaultParams())
	net := netsim.New[stable.State](pNet, pNet.InitialStates(), seed)
	defer net.Close()

	// Reference: the sequential engine with the same seed.
	pSeq := stable.New(n, stable.DefaultParams())
	seq := sim.New[stable.State](pSeq, pSeq.InitialStates(), seed)

	fmt.Printf("running %d agent goroutines...\n", n)
	steps, err := net.RunUntil(stable.Valid, 0, int64(5000*n*n))
	if err != nil {
		log.Fatal("netsim did not stabilize: ", err)
	}
	fmt.Printf("goroutine population stabilized after %d interactions (%.1f n²)\n",
		steps, float64(steps)/float64(n*n))

	seq.Run(steps)
	snap := net.Snapshot()
	for i, want := range seq.States() {
		if snap[i] != want {
			log.Fatalf("agent %d diverged from the sequential reference", i)
		}
	}
	fmt.Println("bit-identical to the sequential engine under the same seed ✓")

	leader := stable.LeaderRank1(snap)
	fmt.Printf("leader: goroutine %d (rank 1)\n", leader)
}

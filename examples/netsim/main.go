// Netsim runs the self-stabilizing ranking protocol on the
// goroutine-per-agent runtime: every agent is a Go routine owning its
// state, interactions are channel rendezvous — the "population of
// independent processes" reading of the model. The run is bit-identical
// to the sequential engine under the same seed; the example checks
// that, live.
//
//	go run ./examples/netsim
package main

import (
	"fmt"
	"log"

	"ssrank/internal/netsim"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func main() {
	const (
		n    = 48
		seed = 99
	)

	// The protocol descriptor is the same table the public facade
	// dispatches through — here it feeds a different runtime.
	d := stable.Describe()

	// Concurrent runtime: n goroutines + a matchmaker.
	pNet := d.New(n)
	net := netsim.New[stable.State](pNet, d.Init(pNet, "fresh", nil), seed)
	defer net.Close()

	// Reference: the sequential engine with the same seed.
	pSeq := d.New(n)
	seq := sim.New[stable.State](pSeq, d.Init(pSeq, "fresh", nil), seed)

	fmt.Printf("running %d agent goroutines...\n", n)
	steps, err := net.RunUntil(d.Valid, 0, int64(5000*n*n))
	if err != nil {
		log.Fatal("netsim did not stabilize: ", err)
	}
	fmt.Printf("goroutine population stabilized after %d interactions (%.1f n²)\n",
		steps, float64(steps)/float64(n*n))

	seq.Run(steps)
	snap := net.Snapshot()
	for i, want := range seq.States() {
		if snap[i] != want {
			log.Fatalf("agent %d diverged from the sequential reference", i)
		}
	}
	fmt.Println("bit-identical to the sequential engine under the same seed ✓")

	leader := d.LeaderOf(snap)
	fmt.Printf("leader: goroutine %d (rank 1)\n", leader)
}

package ssrank

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func isPermutation(ranks []int, max int) bool {
	seen := make([]bool, max+1)
	for _, r := range ranks {
		if r < 1 || r > max || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res, err := Run(Config{N: 64, Protocol: proto, Seed: 3})
			if err != nil {
				if proto == SpaceEfficient && errors.Is(err, ErrNotConverged) {
					t.Skip("space-efficient is correct w.h.p. only; this seed lost the leader lottery")
				}
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("Converged false without error")
			}
			if !res.Exact {
				t.Fatalf("serial run of %s did not report an exact hitting time", proto)
			}
			switch proto {
			case Loose:
				// Loose elects, it does not rank: the leader bit is the
				// only projection, and uniqueness is transient (the
				// configuration may postdate the hitting time).
				ones := 0
				for _, r := range res.Ranks {
					if r == 1 {
						ones++
					} else if r != 0 {
						t.Fatalf("loose rank outside {0, 1}: %v", res.Ranks)
					}
				}
				if ones < 1 {
					t.Fatalf("no leader flagged: %v", res.Ranks)
				}
				return
			case Interval:
				if !isPermutation(res.Ranks, 128) { // ε = 1 ⇒ range [1, 2n]
					t.Fatalf("ranks not distinct in [1, 128]: %v", res.Ranks)
				}
			default:
				if !isPermutation(res.Ranks, 64) {
					t.Fatalf("ranks not a permutation of 1..64: %v", res.Ranks)
				}
				if res.Leader < 0 || res.Ranks[res.Leader] != 1 {
					t.Fatalf("leader = %d, ranks = %v", res.Leader, res.Ranks)
				}
			}
			if res.Interactions <= 0 {
				t.Fatal("no interactions recorded")
			}
		})
	}
}

// TestRunAllInits drives every registered protocol × init combination
// through Run — the registry is the test matrix, so a protocol that
// registers a new init is covered automatically.
func TestRunAllInits(t *testing.T) {
	for _, d := range Descriptors() {
		for _, init := range d.Inits {
			d, init := d, init
			t.Run(string(d.Protocol)+"/"+string(init), func(t *testing.T) {
				res, err := Run(Config{N: 48, Protocol: d.Protocol, Init: init, Seed: 4})
				if err != nil {
					if d.Protocol == SpaceEfficient && errors.Is(err, ErrNotConverged) {
						t.Skip("w.h.p. protocol lost the leader lottery at this seed")
					}
					t.Fatal(err)
				}
				if !res.Converged || !res.Exact {
					t.Fatalf("converged=%t exact=%t", res.Converged, res.Exact)
				}
			})
		}
	}
}

func TestRunDefaultsToStable(t *testing.T) {
	res, err := Run(Config{N: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(res.Ranks, 32) {
		t.Fatalf("ranks: %v", res.Ranks)
	}
}

func TestRunStableInits(t *testing.T) {
	for _, init := range []Init{InitFresh, InitWorstCase, InitRandom, InitFig3} {
		res, err := Run(Config{N: 48, Seed: 9, Init: init})
		if err != nil {
			t.Fatalf("init %s: %v", init, err)
		}
		if !isPermutation(res.Ranks, 48) {
			t.Fatalf("init %s: ranks %v", init, res.Ranks)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interactions != b.Interactions || a.Resets != b.Resets {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank of agent %d differs", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Run(Config{N: 8, Protocol: "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(Config{N: 8, Protocol: SpaceEfficient, Init: InitRandom}); err == nil {
		t.Fatal("non-self-stabilizing protocol accepted a random init")
	}
	if _, err := Run(Config{N: 8, Init: "nope"}); err == nil {
		t.Fatal("unknown init accepted")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	res, err := Run(Config{N: 64, Seed: 1, MaxInteractions: 10})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if res.Exact {
		t.Fatal("a budget-exhausted run has no hitting time to be exact about")
	}
}

func TestDescriptors(t *testing.T) {
	ds := Descriptors()
	if len(ds) != 6 {
		t.Fatalf("registered %d protocols, want 6", len(ds))
	}
	for _, d := range ds {
		if len(d.Inits) == 0 {
			t.Fatalf("%s: empty init table", d.Protocol)
		}
		if d.Inits[0] != InitFresh {
			t.Fatalf("%s: default init %q, want fresh first", d.Protocol, d.Inits[0])
		}
		if !d.Supports(d.Inits[0]) || d.Supports("nope") {
			t.Fatalf("%s: Supports is inconsistent with Inits %v", d.Protocol, d.Inits)
		}
		if b := d.DefaultBudget(64); b <= 0 {
			t.Fatalf("%s: default budget %d at n=64", d.Protocol, b)
		}
		lookedUp, ok := Describe(d.Protocol)
		if !ok || lookedUp.Protocol != d.Protocol || len(lookedUp.Inits) != len(d.Inits) ||
			lookedUp.SelfStabilizing != d.SelfStabilizing {
			t.Fatalf("Describe(%s) does not round-trip", d.Protocol)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Fatal("Describe accepted an unknown protocol")
	}
	if got := len(Protocols()); got != len(ds) {
		t.Fatalf("Protocols() lists %d, Descriptors() %d", got, len(ds))
	}
	// Returned descriptors are the caller's own copies: mutating one
	// must not corrupt registry dispatch.
	d, _ := Describe(StableRanking)
	d.Inits[0] = "corrupted"
	d.DefaultBudget = nil
	if res, err := Run(Config{N: 16, Seed: 1}); err != nil || !res.Converged {
		t.Fatalf("mutating a Describe copy corrupted the registry: %v", err)
	}
	if fresh, _ := Describe(StableRanking); fresh.Inits[0] != InitFresh {
		t.Fatalf("registry init table corrupted: %v", fresh.Inits)
	}
}

// TestLooseRunsSharded pins the transient-stop gap closure: Loose now
// honors Config.Shards because the sharded engine evaluates the
// uniqueness tracker after every interaction of the canonical batch
// order (the barrier fold) instead of polling — a transient window
// can no longer be sailed through. The worst-case (everyone-a-leader)
// init keeps the hitting time well past the first interaction, so the
// test cannot pass vacuously, and the sharded trajectory legitimately
// differs from the serial one (different engine, same law).
func TestLooseRunsSharded(t *testing.T) {
	sharded, err := Run(Config{N: 64, Protocol: Loose, Init: InitWorstCase, Seed: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Converged || !sharded.Exact {
		t.Fatalf("loose with Shards=4: Converged=%t Exact=%t, want both true", sharded.Converged, sharded.Exact)
	}
	if sharded.Shards != 4 {
		t.Fatalf("resolved shard count %d, want 4", sharded.Shards)
	}
	if sharded.Interactions < 2 {
		t.Fatalf("worst-case loose init converged after %d interactions; the check is vacuous", sharded.Interactions)
	}
	leaders := 0
	for _, rk := range sharded.Ranks {
		if rk == 1 {
			leaders++
		}
	}
	// The engine may sit up to one batch past the (transient) hitting
	// time, so the final configuration need not have a unique leader —
	// but the everyone-a-leader start must at least have been culled.
	if leaders == len(sharded.Ranks) {
		t.Fatal("everyone still a leader after a converged sharded run")
	}
}

// TestShardedExactAllProtocols closes the exact-stopping gap at the
// facade level: with Shards set, every registered protocol must
// converge with Exact = true, report the resolved shard count, and —
// because the sharded trajectory is a pure function of (seed, shards)
// alone — return byte-identical Results at 1 and 8 workers.
func TestShardedExactAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := Config{N: 64, Protocol: proto, Seed: 3, Shards: 4, ShardWorkers: 1}
			res, err := Run(cfg)
			if err != nil {
				if proto == SpaceEfficient && errors.Is(err, ErrNotConverged) {
					t.Skip("space-efficient is correct w.h.p. only; this seed lost the leader lottery")
				}
				t.Fatal(err)
			}
			if !res.Converged || !res.Exact {
				t.Fatalf("sharded %s: Converged=%t Exact=%t, want both true", proto, res.Converged, res.Exact)
			}
			if res.Shards != 4 {
				t.Fatalf("resolved shard count %d, want 4", res.Shards)
			}
			if res.Rounds != 0 {
				t.Fatalf("in-place engine reported Rounds=%d, want 0", res.Rounds)
			}
			wide := cfg
			wide.ShardWorkers = 8
			res8, err := Run(wide)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, res8) {
				t.Fatalf("worker count changed the sharded trajectory:\n1 worker  %+v\n8 workers %+v", res, res8)
			}
		})
	}
}

// TestShardedSeedDeterminism pins that the sharded exact run is a pure
// function of the seed: same seed ⇒ byte-identical Result, different
// seed ⇒ a different trajectory (step count or ranks).
func TestShardedSeedDeterminism(t *testing.T) {
	run := func(seed uint64) Result {
		t.Helper()
		res, err := Run(Config{N: 64, Seed: seed, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different Results:\n%+v\n%+v", a, b)
	}
	c := run(8)
	if a.Interactions == c.Interactions && reflect.DeepEqual(a.Ranks, c.Ranks) {
		t.Fatal("different seeds produced an identical trajectory")
	}
}

// TestDefaultBudgetNoOverflow pins the satellite fix: budgets are
// computed in float64 and saturate at MaxInt64 instead of overflowing
// int64 arithmetic (Cai's 2000·n³ exceeds MaxInt64 near n ≈ 1.7×10⁶).
func TestDefaultBudgetNoOverflow(t *testing.T) {
	for _, p := range Protocols() {
		for _, n := range []int{2, 64, 1_700_000, 2_000_000, 1 << 31} {
			b := defaultBudget(n, p)
			if b <= 0 {
				t.Fatalf("%s: budget %d at n=%d", p, b, n)
			}
		}
		if small, large := defaultBudget(64, p), defaultBudget(1<<31, p); large < small {
			t.Fatalf("%s: budget not monotone (%d at n=64 vs %d at n=2³¹)", p, small, large)
		}
	}
	if got := defaultBudget(2_000_000, Cai); got != math.MaxInt64 {
		t.Fatalf("cai budget at n=2×10⁶ = %d, want MaxInt64 saturation", got)
	}
	// Below the saturation point the float64 product is exact.
	if got, want := defaultBudget(1000, Cai), int64(2000)*1000*1000*1000; got != want {
		t.Fatalf("cai budget at n=10³ = %d, want %d", got, want)
	}
}

func TestSimulationLifecycle(t *testing.T) {
	s, err := NewSimulation(Config{N: 48, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol() != StableRanking {
		t.Fatalf("default protocol = %s", s.Protocol())
	}
	if s.N() != 48 || s.Stable() {
		t.Fatal("fresh simulation misreports")
	}
	if !s.RunUntilStable(0) {
		t.Fatal("did not stabilize")
	}
	if !s.Stable() || !isPermutation(s.Ranks(), 48) {
		t.Fatalf("ranks: %v", s.Ranks())
	}
	if s.RankedCount() != 48 {
		t.Fatalf("RankedCount = %d", s.RankedCount())
	}
	leader := s.Leader()
	if leader < 0 || s.Ranks()[leader] != 1 {
		t.Fatalf("leader = %d", leader)
	}
	if s.Interactions() <= 0 {
		t.Fatal("no interactions recorded")
	}
	snap := s.Snapshot()
	if !snap.Stable || snap.Leader != leader || snap.RankedCount != 48 ||
		snap.Interactions != s.Interactions() {
		t.Fatalf("snapshot disagrees with the live accessors: %+v", snap)
	}
}

func TestSimulationFaultRecovery(t *testing.T) {
	s, err := NewSimulation(Config{N: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(0) {
		t.Fatal("did not stabilize")
	}
	if err := s.Corrupt(12); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(0) {
		t.Fatalf("did not recover; resets: %v", s.ResetBreakdown())
	}
	if !isPermutation(s.Ranks(), 48) {
		t.Fatalf("ranks after recovery: %v", s.Ranks())
	}
}

// TestSimulationGeneric exercises the protocol-generic surface the
// redesign added: a non-default protocol with a non-default init,
// fault injection through its descriptor, and cadenced observation.
func TestSimulationGeneric(t *testing.T) {
	s, err := NewSimulation(Config{N: 32, Protocol: Cai, Init: InitRandom, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if !s.Observe(0, 0, func(sn Snapshot) { snaps = append(snaps, sn) }) {
		t.Fatal("cai did not stabilize under observation")
	}
	if len(snaps) < 2 || snaps[0].Interactions != 0 {
		t.Fatalf("observation cadence broken: %d snapshots", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Stable || !isPermutation(last.Ranks, 32) {
		t.Fatalf("final snapshot not a valid ranking: %+v", last)
	}
	if err := s.Corrupt(8); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(0) {
		t.Fatal("cai did not recover from corruption")
	}
}

func TestSimulationErrors(t *testing.T) {
	if _, err := NewSimulation(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewSimulation(Config{N: 8, Protocol: "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	s, _ := NewSimulation(Config{N: 8})
	if err := s.Corrupt(9); err == nil {
		t.Fatal("overlong corruption accepted")
	}
	if err := s.Corrupt(-1); err == nil {
		t.Fatal("negative corruption accepted")
	}
	// Protocols without a fault-injection primitive refuse Corrupt.
	iv, err := NewSimulation(Config{N: 8, Protocol: Interval})
	if err != nil {
		t.Fatal(err)
	}
	if err := iv.Corrupt(2); err == nil {
		t.Fatal("interval accepted corruption without a RandomState primitive")
	}
}

func TestReplicate(t *testing.T) {
	cfg := Config{N: 32, Seed: 21}
	var order []int
	rep, err := Replicate(cfg, ReplicateOptions{
		Trials:  6,
		OnTrial: func(trial, committed int, _ Result) { order = append(order, trial) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 6 || len(rep.Results) != 6 {
		t.Fatalf("committed %d/%d trials", rep.Trials, len(rep.Results))
	}
	if rep.Converged != 6 {
		t.Fatalf("converged %d/6", rep.Converged)
	}
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if order[i] != want {
			t.Fatalf("commits out of trial order: %v", order)
		}
	}
	if rep.Interactions.N != 6 || rep.Interactions.Mean <= 0 ||
		rep.Interactions.Min > rep.Interactions.Mean || rep.Interactions.Max < rep.Interactions.Mean {
		t.Fatalf("interactions summary inconsistent: %+v", rep.Interactions)
	}
	// Workers must not change anything: the summary is a pure
	// function of (cfg, options minus Workers).
	serial, err := Replicate(cfg, ReplicateOptions{Trials: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Interactions != rep.Interactions || serial.Converged != rep.Converged {
		t.Fatalf("worker pool changed the outcome: %+v vs %+v", serial.Interactions, rep.Interactions)
	}
	for i := range serial.Results {
		if serial.Results[i].Interactions != rep.Results[i].Interactions {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestReplicatePrecision(t *testing.T) {
	rep, err := Replicate(Config{N: 24, Seed: 5}, ReplicateOptions{Trials: 64, Precision: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials >= 64 && rep.Interactions.CI95 > 0.5*rep.Interactions.Mean {
		t.Fatalf("precision stop neither met nor hit the ceiling: %+v", rep)
	}
	if rep.Trials < 1 {
		t.Fatal("no trials committed")
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(Config{N: 1}, ReplicateOptions{Trials: 3}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Replicate(Config{N: 8}, ReplicateOptions{Trials: 0}); err == nil {
		t.Fatal("Trials=0 accepted")
	}
	if _, err := Replicate(Config{N: 8}, ReplicateOptions{Trials: 3, Precision: -1}); err == nil {
		t.Fatal("negative precision accepted")
	}
}

package ssrank

import (
	"errors"
	"testing"
)

func isPermutation(ranks []int, max int) bool {
	seen := make([]bool, max+1)
	for _, r := range ranks {
		if r < 1 || r > max || seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res, err := Run(Config{N: 64, Protocol: proto, Seed: 3})
			if err != nil {
				if proto == SpaceEfficient && errors.Is(err, ErrNotConverged) {
					t.Skip("space-efficient is correct w.h.p. only; this seed lost the leader lottery")
				}
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("Converged false without error")
			}
			max := 64
			if proto == Interval {
				max = 128 // ε = 1 ⇒ range [1, 2n]
			}
			if !isPermutation(res.Ranks, max) {
				t.Fatalf("ranks not distinct in [1, %d]: %v", max, res.Ranks)
			}
			if proto != Interval {
				if res.Leader < 0 || res.Ranks[res.Leader] != 1 {
					t.Fatalf("leader = %d, ranks = %v", res.Leader, res.Ranks)
				}
			}
			if res.Interactions <= 0 {
				t.Fatal("no interactions recorded")
			}
		})
	}
}

func TestRunDefaultsToStable(t *testing.T) {
	res, err := Run(Config{N: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(res.Ranks, 32) {
		t.Fatalf("ranks: %v", res.Ranks)
	}
}

func TestRunStableInits(t *testing.T) {
	for _, init := range []Init{InitFresh, InitWorstCase, InitRandom, InitFig3} {
		res, err := Run(Config{N: 48, Seed: 9, Init: init})
		if err != nil {
			t.Fatalf("init %s: %v", init, err)
		}
		if !isPermutation(res.Ranks, 48) {
			t.Fatalf("init %s: ranks %v", init, res.Ranks)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Interactions != b.Interactions || a.Resets != b.Resets {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("rank of agent %d differs", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Run(Config{N: 8, Protocol: "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := Run(Config{N: 8, Protocol: SpaceEfficient, Init: InitRandom}); err == nil {
		t.Fatal("non-self-stabilizing protocol accepted a random init")
	}
	if _, err := Run(Config{N: 8, Init: "nope"}); err == nil {
		t.Fatal("unknown init accepted")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	_, err := Run(Config{N: 64, Seed: 1, MaxInteractions: 10})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestSimulationLifecycle(t *testing.T) {
	s, err := NewSimulation(48, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 48 || s.Stable() {
		t.Fatal("fresh simulation misreports")
	}
	if !s.RunUntilStable(0) {
		t.Fatal("did not stabilize")
	}
	if !s.Stable() || !isPermutation(s.Ranks(), 48) {
		t.Fatalf("ranks: %v", s.Ranks())
	}
	if s.RankedCount() != 48 {
		t.Fatalf("RankedCount = %d", s.RankedCount())
	}
	leader := s.Leader()
	if leader < 0 || s.Ranks()[leader] != 1 {
		t.Fatalf("leader = %d", leader)
	}
	if s.Interactions() <= 0 {
		t.Fatal("no interactions recorded")
	}
}

func TestSimulationFaultRecovery(t *testing.T) {
	s, err := NewSimulation(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(0) {
		t.Fatal("did not stabilize")
	}
	if err := s.Corrupt(12); err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(0) {
		t.Fatalf("did not recover; resets: %v", s.ResetBreakdown())
	}
	if !isPermutation(s.Ranks(), 48) {
		t.Fatalf("ranks after recovery: %v", s.Ranks())
	}
}

func TestSimulationErrors(t *testing.T) {
	if _, err := NewSimulation(1, 0); err == nil {
		t.Fatal("N=1 accepted")
	}
	s, _ := NewSimulation(8, 0)
	if err := s.Corrupt(9); err == nil {
		t.Fatal("overlong corruption accepted")
	}
	if err := s.Corrupt(-1); err == nil {
		t.Fatal("negative corruption accepted")
	}
}

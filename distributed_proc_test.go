package ssrank

import (
	"net"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestDistWorkerProcessKill is the end-to-end crash drill with real
// worker processes: build cmd/ssrank-worker, point three of them at a
// coordinator listener, SIGKILL one mid-run, and require the recovered
// Result byte-identical to the undisturbed in-process run. The
// in-process recovery tests pin the protocol logic; this one pins the
// actual binary, dial loop and OS-level death signal.
func TestDistWorkerProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real worker processes")
	}
	bin := filepath.Join(t.TempDir(), "ssrank-worker")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/ssrank-worker").CombinedOutput(); err != nil {
		t.Fatalf("build worker: %v\n%s", err, out)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	procs := make([]*exec.Cmd, 3)
	conns := make([]net.Conn, 3)
	for i := range procs {
		procs[i] = exec.Command(bin, "-coordinator", ln.Addr().String(), "-retry", "0")
		if err := procs[i].Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		if conns[i], err = ln.Accept(); err != nil {
			t.Fatalf("accept worker %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
		for _, c := range conns {
			c.Close()
		}
	})

	cfg := Config{N: 96, Seed: 31, Shards: 4}
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	batches := 0
	got, err := RunDistributed(cfg, DistRun{
		Workers: conns,
		Timeout: 10 * time.Second,
		OnBatch: func(int64) {
			batches++
			if batches == 2 {
				procs[0].Process.Kill()
			}
		},
	})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("result after worker SIGKILL differs from undisturbed run\n got: %+v\nwant: %+v", got, want)
	}
}

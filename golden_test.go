package ssrank

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ssrank/internal/ckpt"
)

// goldenConfig is the configuration the committed fixture was taken
// from: the stable-ranking protocol, N=16, seed 1, interrupted after
// exactly 1037 interactions.
func goldenConfig() Config { return Config{N: 16, Seed: 1} }

const goldenSteps = 1037

// TestGoldenCheckpointBytes pins the on-disk checkpoint format against
// a committed fixture. A checkpoint produced today from the fixture's
// configuration must be byte-identical to the committed one: any codec
// or layout change — even one that still round-trips — breaks this
// test, forcing a deliberate version bump instead of a silent format
// drift that would orphan previously saved checkpoints.
func TestGoldenCheckpointBytes(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "stable_n16_seed1_step1037.sscp"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(goldenSteps)
	got, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint bytes drifted from the golden fixture (%d bytes, fixture %d); if the format change is intentional, bump the checkpoint version and regenerate the fixture", len(got), len(want))
	}
}

// TestGoldenCheckpointDecodes walks the fixture's header field by
// field with the ckpt reader, asserting the documented layout: magic,
// version, identity fields, fault-stream state, engine kind and
// progress counters. This is the one test that reads the format
// directly rather than through ResumeSimulation, so a decoder written
// against DESIGN.md alone can be checked against it.
func TestGoldenCheckpointDecodes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "stable_n16_seed1_step1037.sscp"))
	if err != nil {
		t.Fatal(err)
	}
	r := ckpt.NewReader(data)
	r.Expect([]byte(ckptMagic))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if v := r.Uvarint(); v != ckptVersion {
		t.Fatalf("version %d, want %d", v, ckptVersion)
	}
	if p := r.String(); p != string(StableRanking) {
		t.Fatalf("protocol %q", p)
	}
	if init := r.String(); init != "fresh" {
		t.Fatalf("init %q", init)
	}
	if n := r.Uvarint(); n != 16 {
		t.Fatalf("n %d", n)
	}
	if seed := r.U64(); seed != 1 {
		t.Fatalf("seed %d", seed)
	}
	if eps := r.U64(); eps != math.Float64bits(1.0) {
		t.Fatalf("epsilon bits %#x", eps)
	}
	if shards := r.Uvarint(); shards != 1 {
		t.Fatalf("shards %d", shards)
	}
	for i := 0; i < 4; i++ {
		r.U64() // fault rng words: opaque, but must be present
	}
	if kind := r.Uvarint(); kind != ckptKindSerial {
		t.Fatalf("kind %d, want serial (%d)", kind, ckptKindSerial)
	}
	if hit := r.Varint(); hit != -1 {
		t.Fatalf("hit %d, want -1 (Step invalidates the exact hit)", hit)
	}
	if steps := r.Varint(); steps != goldenSteps {
		t.Fatalf("steps %d, want %d", steps, goldenSteps)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() == 0 {
		t.Fatal("no pair-stream or protocol payload after the header")
	}
}

// TestGoldenCheckpointResumes proves the committed bytes are live, not
// just well-formed: resuming the fixture and running to stability
// yields exactly the Result of an uninterrupted Run.
func TestGoldenCheckpointResumes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "stable_n16_seed1_step1037.sscp"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ResumeSimulation(goldenConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interactions() != goldenSteps {
		t.Fatalf("resumed at %d interactions, want %d", s.Interactions(), goldenSteps)
	}
	want, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !s.RunUntilStable(want.Config.MaxInteractions) {
		t.Fatal("resumed run did not stabilize")
	}
	got := s.Result()
	if got.Interactions != want.Interactions {
		t.Fatalf("resumed hit %d, uninterrupted run hit %d", got.Interactions, want.Interactions)
	}
	if !equalRanks(got.Ranks, want.Ranks) {
		t.Fatalf("resumed ranks %v, want %v", got.Ranks, want.Ranks)
	}
}

func equalRanks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package ssrank

// This file is the benchmark harness required by the reproduction: one
// testing.B benchmark per paper artifact / experiment (the E-index of
// DESIGN.md §4), each delegating to the generator in internal/expt at
// quick scale, plus micro- and macro-benchmarks of the protocols
// themselves. Full-scale figures are produced by cmd/figures; the
// benchmarks here keep `go test -bench=.` in the minutes range on one
// core while still executing every experiment end to end.

import (
	"math"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/expt"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stable"
)

// benchFigure runs one experiment generator per iteration and keeps
// the result alive.
func benchFigure(b *testing.B, gen func(expt.Options) expt.Figure) {
	b.Helper()
	opts := expt.QuickOptions()
	var rows int
	for i := 0; i < b.N; i++ {
		opts.Seed = 0x5eed + uint64(i) // vary, stay deterministic
		fig := gen(opts)
		rows += len(fig.Rows)
	}
	if rows == 0 {
		b.Fatal("experiment produced no data")
	}
}

// One benchmark per experiment (paper figures first).

func BenchmarkFigure2(b *testing.B)           { benchFigure(b, expt.Figure2) }            // E1: Fig. 2
func BenchmarkFigure3(b *testing.B)           { benchFigure(b, expt.Figure3) }            // E2: Fig. 3
func BenchmarkCensus(b *testing.B)            { benchFigure(b, expt.CensusTable) }        // E3
func BenchmarkTheorem1Shape(b *testing.B)     { benchFigure(b, expt.Theorem1Shape) }      // E4
func BenchmarkTheorem2Shape(b *testing.B)     { benchFigure(b, expt.Theorem2Shape) }      // E5
func BenchmarkBaselines(b *testing.B)         { benchFigure(b, expt.BaselineComparison) } // E6
func BenchmarkTradeoff(b *testing.B)          { benchFigure(b, expt.TradeoffEpsilon) }    // E7
func BenchmarkAblationCWait(b *testing.B)     { benchFigure(b, expt.AblationCWait) }      // E8
func BenchmarkCoinBalance(b *testing.B)       { benchFigure(b, expt.CoinBalance) }        // E9
func BenchmarkFaultRecovery(b *testing.B)     { benchFigure(b, expt.FaultRecovery) }      // E10
func BenchmarkLeaderElect(b *testing.B)       { benchFigure(b, expt.LEShape) }            // E11
func BenchmarkFastLE(b *testing.B)            { benchFigure(b, expt.FastLESuccess) }      // E12
func BenchmarkEpidemic(b *testing.B)          { benchFigure(b, expt.EpidemicTail) }       // E13
func BenchmarkDeadConfig(b *testing.B)        { benchFigure(b, expt.DeadConfigReset) }    // E14
func BenchmarkAblationResetWave(b *testing.B) { benchFigure(b, expt.AblationResetWave) }  // E15
func BenchmarkAblationLEBudget(b *testing.B)  { benchFigure(b, expt.AblationLEBudget) }   // E16
func BenchmarkPhaseStructure(b *testing.B)    { benchFigure(b, expt.PhaseStructure) }     // E17

// Macro-benchmarks: full stabilization per protocol, reporting the
// interaction count alongside wall time.

func benchStabilize(b *testing.B, n int, run func(seed uint64) (int64, bool)) {
	b.Helper()
	var total int64
	converged := 0
	for i := 0; i < b.N; i++ {
		steps, ok := run(uint64(i + 1))
		total += steps
		if ok {
			converged++
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "interactions/op")
	b.ReportMetric(float64(total)/float64(b.N)/float64(n)/float64(n), "n²-units/op")
	if converged == 0 {
		b.Fatal("no iteration converged")
	}
}

func BenchmarkStableStabilize256(b *testing.B) {
	const n = 256
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := stable.New(n, stable.DefaultParams())
		r := sim.New[stable.State](p, p.InitialStates(), seed)
		steps, err := r.RunUntil(stable.Valid, 0, int64(3000*float64(n)*float64(n)*math.Log2(n)))
		return steps, err == nil
	})
}

func BenchmarkStableWorstCase256(b *testing.B) {
	const n = 256
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := stable.New(n, stable.DefaultParams())
		r := sim.New[stable.State](p, p.WorstCaseInit(), seed)
		steps, err := r.RunUntil(stable.Valid, 0, int64(3000*float64(n)*float64(n)*math.Log2(n)))
		return steps, err == nil
	})
}

func BenchmarkSpaceEfficient256(b *testing.B) {
	const n = 256
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := core.New(n, core.DefaultParams())
		r := sim.New[core.State](p, p.InitialStates(), seed)
		steps, err := r.RunUntil(core.Valid, 0, int64(300*float64(n)*float64(n)*math.Log2(n)))
		return steps, err == nil
	})
}

func BenchmarkAware256(b *testing.B) {
	const n = 256
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := aware.New(n, aware.DefaultParams())
		r := sim.New[aware.State](p, p.InitialStates(), seed)
		steps, err := r.RunUntil(aware.Valid, 0, int64(3000*float64(n)*float64(n)*math.Log2(n)))
		return steps, err == nil
	})
}

func BenchmarkCai64(b *testing.B) {
	const n = 64 // Θ(n³): keep n modest
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := cai.New(n)
		r := sim.New[cai.State](p, p.InitialStates(), seed)
		steps, err := r.RunUntil(cai.Valid, 0, int64(2000*n*n*n))
		return steps, err == nil
	})
}

func BenchmarkInterval256(b *testing.B) {
	const n = 256
	benchStabilize(b, n, func(seed uint64) (int64, bool) {
		p := interval.New(n, 1.0)
		r := sim.New[interval.State](p, p.InitialStates(), seed)
		steps, err := r.RunUntil(interval.Valid, 0, int64(5000*n*n))
		return steps, err == nil
	})
}

// Large-n engine benchmarks: raw interaction throughput at n = 10⁵,
// where the working set (~1.6 MB of agent state under uniform random
// access) blows past L2 and the serial engine goes memory-bound. The
// sharded runner's per-shard slabs restore locality and spread the
// transition work across cores; comparing the two ns/op numbers on the
// same machine gives the sharded speedup directly (both run one
// interaction per op). CI tracks both against BENCH_base.json.

const bigN = 100_000

func BenchmarkUnshardedRun(b *testing.B) {
	p := stable.New(bigN, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkShardedRun(b *testing.B) {
	p := stable.New(bigN, stable.DefaultParams())
	r := shard.New[stable.State](p, p.InitialStates(), 1, 4, 0)
	b.ResetTimer()
	r.Run(int64(b.N))
}

// Scale benchmarks: the n = 10⁶ and n = 10⁷ regimes the sharded
// engine exists for (ROADMAP "single-run scale"). Shard counts are
// fixed (8) rather than auto-derived so ns/op is comparable across
// machines; workers default to one per CPU. The n = 10⁷ benchmark is
// the CI scale gate — a regression here means the coordinator stopped
// being O(S²)-cheap per batch and the large-n experiments quietly
// lost their headroom.

func BenchmarkUnshardedRun1e6(b *testing.B) {
	const n = 1_000_000
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkShardedRun1e6(b *testing.B) {
	const n = 1_000_000
	p := stable.New(n, stable.DefaultParams())
	r := shard.New[stable.State](p, p.InitialStates(), 1, 8, 0)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkShardedRun1e7(b *testing.B) {
	const n = 10_000_000
	p := stable.New(n, stable.DefaultParams())
	r := shard.New[stable.State](p, p.InitialStates(), 1, 8, 0)
	b.ResetTimer()
	r.Run(int64(b.N))
}

// BenchmarkShardedRunUntilExact1e5 measures the sharded exact-stop
// path at n = 10⁵: TransitionT touch recording in every batch unit
// plus the coordinator's barrier fold. b.N interactions from the fresh
// start stay far short of convergence under the CI benchtime, so the
// budget ends the run and ns/op is the pure per-interaction cost;
// comparing against BenchmarkShardedRun gives the tracking overhead
// directly. CI tracks it against BENCH_base.json.
func BenchmarkShardedRunUntilExact1e5(b *testing.B) {
	p := stable.New(bigN, stable.DefaultParams())
	r := shard.New[stable.State](p, p.InitialStates(), 1, 4, 0)
	cond := sim.NewRankCond(0, stable.RankOf)
	b.ResetTimer()
	if _, err := r.RunUntilExact(cond, int64(b.N)); err == nil {
		b.Fatal("converged inside the benchmark window; ns/op no longer measures stopping overhead")
	}
}

// Exact-stop vs polled stopping overhead: both benchmarks execute b.N
// StableRanking interactions from the fresh start — far short of
// convergence at either population size under the CI benchtime, so the
// budget, not the stop condition, ends the run and ns/op measures the
// pure per-interaction cost of each stopping discipline. The polled
// path pays an amortized O(n)/n early-exit scan; the exact path pays
// the touch-reporting TransitionT plus the tracker folding of
// sim.RunUntilCondT. The acceptance claim (DESIGN.md §2.1) is that the
// exact path stays within 5% of the polled one at both sizes; CI
// tracks all four against BENCH_base.json and reports the ratio.

func benchRunUntilPolled(b *testing.B, n int) {
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	if _, err := r.RunUntil(stable.Valid, 0, int64(b.N)); err == nil {
		b.Fatal("converged inside the benchmark window; ns/op no longer measures stopping overhead")
	}
}

func benchRunUntilCond(b *testing.B, n int) {
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	if _, err := sim.RunUntilCondT(r, sim.NewRankCond(0, stable.RankOf), int64(b.N)); err == nil {
		b.Fatal("converged inside the benchmark window; ns/op no longer measures stopping overhead")
	}
}

func BenchmarkRunUntilPolled1e3(b *testing.B) { benchRunUntilPolled(b, 1_000) }
func BenchmarkRunUntilCond1e3(b *testing.B)   { benchRunUntilCond(b, 1_000) }
func BenchmarkRunUntilPolled1e5(b *testing.B) { benchRunUntilPolled(b, bigN) }
func BenchmarkRunUntilCond1e5(b *testing.B)   { benchRunUntilCond(b, bigN) }

// Micro-benchmarks: raw transition throughput per protocol.

func BenchmarkTransitionStable(b *testing.B) {
	p := stable.New(1024, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkTransitionCore(b *testing.B) {
	p := core.New(1024, core.DefaultParams())
	r := sim.New[core.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkTransitionCai(b *testing.B) {
	p := cai.New(1024)
	r := sim.New[cai.State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{N: 64, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// Command benchdiff compares `go test -bench` output against a
// recorded baseline (BENCH_base.json) and fails on ns/op and allocs/op
// regressions — the CI guard for the simulator's hot path:
//
//	go test -run '^$' -bench BenchmarkTransition -benchtime=100000x -count=3 -benchmem . |
//	    benchdiff -baseline BENCH_base.json -match '^BenchmarkTransition' -threshold 0.35
//
// Benchmark output is read from stdin (or -in). With -count > 1 the
// minimum per benchmark is compared — the minimum is the least-noisy
// estimator of the true cost on a shared CI runner.
// Benchmarks present in only one of the two sides are reported and
// skipped; a regression beyond the threshold exits 1.
//
// Allocation gating needs -benchmem in the benchmark invocation and an
// allocs_per_op field in the baseline entry; either side missing means
// the benchmark is gated on ns/op alone. Because the engines' hot
// paths are allocation-free by design, the allocs gate carries a small
// absolute slack (2 allocs/op) on top of the relative threshold, so a
// 0 → 1 fluke from the runtime does not fail the build while a real
// allocation regression — the failure mode slab/stream refactors
// introduce — does.
//
// With -warn the diff is reported but never fails the build (exit 0
// even on regressions; usage and parse errors still exit 2) — the soft
// gate for figure-level benchmarks, whose end-to-end wall clock is too
// noisy on shared runners for a hard threshold but worth tracking as a
// trajectory.
//
// In both modes the report ends with a one-line summary — the
// geometric mean of the per-benchmark ns/op ratios versus the baseline
// — so the uploaded CI artifact characterizes a run at a glance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}

// baseline mirrors the BENCH_seed.json schema (extra fields ignored).
// AllocsPerOp is a pointer so recorded-as-zero and not-recorded are
// distinguishable: only recorded entries arm the allocation gate.
type baseline struct {
	Description string `json:"description"`
	Benchmarks  []struct {
		Name        string   `json:"name"`
		NsPerOp     float64  `json:"ns_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// benchResult is one benchmark's measured cost: ns/op always, allocs/op
// only when the input was produced under -benchmem.
type benchResult struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// allocSlack is the absolute allocs/op headroom on top of the relative
// threshold (see the package comment).
const allocSlack = 2

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "BENCH_base.json", "baseline JSON with {benchmarks: [{name, ns_per_op, allocs_per_op}]}")
		in        = fs.String("in", "", "benchmark output file (default: stdin)")
		match     = fs.String("match", "^BenchmarkTransition", "regexp of benchmark names to compare")
		threshold = fs.Float64("threshold", 0.20, "fail when ns/op or allocs/op exceeds baseline by more than this fraction")
		warn      = fs.Bool("warn", false, "report regressions without failing (exit 0): the soft-gate mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: bad -match:", err)
		return 2
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *basePath, err)
		return 2
	}
	baseNs := map[string]float64{}
	baseAllocs := map[string]float64{}
	for _, b := range base.Benchmarks {
		if re.MatchString(b.Name) {
			baseNs[b.Name] = b.NsPerOp
			if b.AllocsPerOp != nil {
				baseAllocs[b.Name] = *b.AllocsPerOp
			}
		}
	}

	input := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		input = f
	}
	text, err := io.ReadAll(input)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	current, err := parseBench(string(text))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	names := make([]string, 0, len(current))
	for name := range current {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmarks in the input match", *match)
		return 2
	}

	failed := false
	logSum, compared := 0.0, 0
	for _, name := range names {
		cur := current[name]
		ref, ok := baseNs[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %-28s %10.1f ns/op (no baseline entry)\n", name, cur.ns)
			continue
		}
		delete(baseNs, name)
		change := cur.ns/ref - 1
		logSum += math.Log(cur.ns / ref)
		compared++
		status := "ok  "
		if change > *threshold {
			status = "FAIL"
			failed = true
		}
		note := ""
		if refAllocs, ok := baseAllocs[name]; ok && cur.hasAllocs {
			note = fmt.Sprintf(", %.0f allocs/op vs %.0f", cur.allocs, refAllocs)
			if cur.allocs > refAllocs*(1+*threshold) && cur.allocs > refAllocs+allocSlack {
				status = "FAIL"
				failed = true
				note += " [allocs regression]"
			}
		}
		if status == "FAIL" && *warn {
			status = "WARN"
		}
		fmt.Fprintf(stdout, "%s %-28s %10.1f ns/op vs baseline %10.1f (%+.1f%%, limit +%.0f%%%s)\n",
			status, name, cur.ns, ref, 100*change, 100**threshold, note)
	}
	for name := range baseNs {
		fmt.Fprintf(stdout, "SKIP %-28s not present in the benchmark output\n", name)
	}
	if compared > 0 {
		// One-line summary for the CI artifact: the geometric mean of
		// the per-benchmark ns/op ratios, the scale-free average that
		// treats a 7 ns and a 30 ns benchmark symmetrically.
		fmt.Fprintf(stdout, "geomean ns/op delta %+.1f%% across %d benchmarks\n",
			100*(math.Exp(logSum/float64(compared))-1), compared)
	}
	if failed {
		if *warn {
			fmt.Fprintln(stdout, "benchdiff: regression beyond threshold (warn mode: not failing)")
			return 0
		}
		fmt.Fprintln(stdout, "benchdiff: regression beyond threshold")
		return 1
	}
	return 0
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkTransitionStable-8   1000   675.2 ns/op   16 B/op   2 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so names line up with the
// baseline's plain benchmark names. The -benchmem columns are optional;
// without them the line contributes ns/op only.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// parseBench extracts ns/op (and allocs/op under -benchmem) per
// benchmark name; repeated runs (from -count > 1) keep the minimum of
// each metric independently — each minimum is the least-noisy estimate
// of its own cost.
func parseBench(out string) (map[string]benchResult, error) {
	res := map[string]benchResult{}
	for _, m := range benchLine.FindAllStringSubmatch(out, -1) {
		name := m[1]
		var ns float64
		if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
			return nil, fmt.Errorf("unparseable ns/op %q for %s", m[2], name)
		}
		cur, seen := res[name]
		if !seen || ns < cur.ns {
			cur.ns = ns
		}
		if m[3] != "" {
			var allocs float64
			if _, err := fmt.Sscanf(m[3], "%g", &allocs); err != nil {
				return nil, fmt.Errorf("unparseable allocs/op %q for %s", m[3], name)
			}
			if !cur.hasAllocs || allocs < cur.allocs {
				cur.allocs = allocs
				cur.hasAllocs = true
			}
		}
		res[name] = cur
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return res, nil
}

// Command benchdiff compares `go test -bench` output against a
// recorded baseline (BENCH_base.json) and fails on ns/op regressions —
// the CI guard for the simulator's hot path:
//
//	go test -run '^$' -bench BenchmarkTransition -benchtime=100000x -count=3 . |
//	    benchdiff -baseline BENCH_base.json -match '^BenchmarkTransition' -threshold 0.35
//
// Benchmark output is read from stdin (or -in). With -count > 1 the
// minimum ns/op per benchmark is compared — the minimum is the
// least-noisy estimator of the true cost on a shared CI runner.
// Benchmarks present in only one of the two sides are reported and
// skipped; a regression beyond the threshold exits 1.
//
// With -warn the diff is reported but never fails the build (exit 0
// even on regressions; usage and parse errors still exit 2) — the soft
// gate for figure-level benchmarks, whose end-to-end wall clock is too
// noisy on shared runners for a hard threshold but worth tracking as a
// trajectory.
//
// In both modes the report ends with a one-line summary — the
// geometric mean of the per-benchmark ns/op ratios versus the baseline
// — so the uploaded CI artifact characterizes a run at a glance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]))
}

// baseline mirrors the BENCH_seed.json schema (extra fields ignored).
type baseline struct {
	Description string `json:"description"`
	Benchmarks  []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "BENCH_base.json", "baseline JSON with {benchmarks: [{name, ns_per_op}]}")
		in        = fs.String("in", "", "benchmark output file (default: stdin)")
		match     = fs.String("match", "^BenchmarkTransition", "regexp of benchmark names to compare")
		threshold = fs.Float64("threshold", 0.20, "fail when ns/op exceeds baseline by more than this fraction")
		warn      = fs.Bool("warn", false, "report regressions without failing (exit 0): the soft-gate mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: bad -match:", err)
		return 2
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *basePath, err)
		return 2
	}
	baseNs := map[string]float64{}
	for _, b := range base.Benchmarks {
		if re.MatchString(b.Name) {
			baseNs[b.Name] = b.NsPerOp
		}
	}

	input := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		input = f
	}
	text, err := io.ReadAll(input)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	current, err := parseBench(string(text))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	names := make([]string, 0, len(current))
	for name := range current {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmarks in the input match", *match)
		return 2
	}

	failed := false
	logSum, compared := 0.0, 0
	for _, name := range names {
		cur := current[name]
		ref, ok := baseNs[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %-28s %10.1f ns/op (no baseline entry)\n", name, cur)
			continue
		}
		delete(baseNs, name)
		change := cur/ref - 1
		logSum += math.Log(cur / ref)
		compared++
		status := "ok  "
		if change > *threshold {
			status = "FAIL"
			if *warn {
				status = "WARN"
			}
			failed = true
		}
		fmt.Fprintf(stdout, "%s %-28s %10.1f ns/op vs baseline %10.1f (%+.1f%%, limit +%.0f%%)\n",
			status, name, cur, ref, 100*change, 100**threshold)
	}
	for name := range baseNs {
		fmt.Fprintf(stdout, "SKIP %-28s not present in the benchmark output\n", name)
	}
	if compared > 0 {
		// One-line summary for the CI artifact: the geometric mean of
		// the per-benchmark ns/op ratios, the scale-free average that
		// treats a 7 ns and a 30 ns benchmark symmetrically.
		fmt.Fprintf(stdout, "geomean ns/op delta %+.1f%% across %d benchmarks\n",
			100*(math.Exp(logSum/float64(compared))-1), compared)
	}
	if failed {
		if *warn {
			fmt.Fprintln(stdout, "benchdiff: ns/op regression beyond threshold (warn mode: not failing)")
			return 0
		}
		fmt.Fprintln(stdout, "benchdiff: ns/op regression beyond threshold")
		return 1
	}
	return 0
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkTransitionStable-8   1000   675.2 ns/op   0 B/op
//
// The -8 GOMAXPROCS suffix is stripped so names line up with the
// baseline's plain benchmark names.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench extracts ns/op per benchmark name; repeated runs (from
// -count > 1) keep the minimum.
func parseBench(out string) (map[string]float64, error) {
	res := map[string]float64{}
	for _, m := range benchLine.FindAllStringSubmatch(out, -1) {
		name := m[1]
		var ns float64
		if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
			return nil, fmt.Errorf("unparseable ns/op %q for %s", m[2], name)
		}
		if old, ok := res[name]; !ok || ns < old {
			res[name] = ns
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return res, nil
}

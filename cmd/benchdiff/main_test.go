package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ssrank
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTransitionStable-8   	    1000	       700.0 ns/op	      16 B/op	       3 allocs/op
BenchmarkTransitionStable-8   	    1000	       650.5 ns/op	      16 B/op	       2 allocs/op
BenchmarkTransitionCore-8     	    1000	       710 ns/op	       0 B/op	       0 allocs/op
BenchmarkTransitionCai-8      	    1000	       380 ns/op
BenchmarkPublicAPI-8          	       1	   3107962 ns/op
PASS
ok  	ssrank	2.153s
`

func TestParseBenchKeepsMinimum(t *testing.T) {
	got, err := parseBench(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]benchResult{
		"BenchmarkTransitionStable": {ns: 650.5, allocs: 2, hasAllocs: true},
		"BenchmarkTransitionCore":   {ns: 710, allocs: 0, hasAllocs: true},
		"BenchmarkTransitionCai":    {ns: 380},
		"BenchmarkPublicAPI":        {ns: 3107962},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, res := range want {
		if got[name] != res {
			t.Errorf("%s = %+v, want %+v (min across -count runs, -N suffix stripped)", name, got[name], res)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench("PASS\nok ssrank 1s\n"); err == nil {
		t.Fatal("expected an error for output without benchmark lines")
	}
}

// writeBaseline drops a minimal baseline file and returns its path.
func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleBaseline = `{
  "description": "test baseline",
  "benchmarks": [
    {"name": "BenchmarkTransitionStable", "ns_per_op": 673.0},
    {"name": "BenchmarkTransitionCore", "ns_per_op": 709.0},
    {"name": "BenchmarkTransitionCai", "ns_per_op": 391.0},
    {"name": "BenchmarkFigure2", "ns_per_op": 12718406}
  ]
}`

func TestRunPassesWithinThreshold(t *testing.T) {
	base := writeBaseline(t, sampleBaseline)
	var out, errb strings.Builder
	code := run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-threshold", "0.20"})
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	// Core is 710 vs 709 (+0.1%): within threshold; Cai improved.
	if !strings.Contains(out.String(), "ok   BenchmarkTransitionCore") {
		t.Fatalf("missing ok line for Core:\n%s", out.String())
	}
	// The non-Transition baseline entry must not leak into the diff.
	if strings.Contains(out.String(), "BenchmarkFigure2") {
		t.Fatalf("unmatched benchmark compared:\n%s", out.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": [{"name": "BenchmarkTransitionCai", "ns_per_op": 100}]}`)
	var out, errb strings.Builder
	code := run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkTransitionCai$", "-threshold", "0.20"})
	if code != 1 {
		t.Fatalf("exit %d, want 1 (380 ns/op vs 100 baseline is a 280%% regression)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkTransitionCai") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
}

// TestRunGatesAllocs pins the allocation gate: a benchmark whose ns/op
// is fine but whose allocs/op regressed beyond threshold + slack fails
// the build; within the absolute slack it passes (the 0 → small-noise
// case must never be a CI flake).
func TestRunGatesAllocs(t *testing.T) {
	// Stable measures 2 allocs/op in sampleOutput; baseline says 0.
	// 2 > 0·(1.20) but not > 0+2, so the slack holds it at ok.
	base := writeBaseline(t, `{"benchmarks": [{"name": "BenchmarkTransitionStable", "ns_per_op": 700.0, "allocs_per_op": 0}]}`)
	var out, errb strings.Builder
	code := run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkTransitionStable$", "-threshold", "0.20"})
	if code != 0 {
		t.Fatalf("exit %d, want 0 (2 allocs/op is within the absolute slack)\n%s", code, out.String())
	}

	// A 3-alloc regression from 0 clears both the relative threshold
	// and the absolute slack: fail, even though ns/op improved.
	withAllocs := "BenchmarkTransitionStable-8 1000 650.5 ns/op 48 B/op 3 allocs/op\n"
	out.Reset()
	code = run(strings.NewReader(withAllocs), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkTransitionStable$", "-threshold", "0.20"})
	if code != 1 {
		t.Fatalf("exit %d, want 1 (3 allocs/op vs 0 baseline)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "allocs regression") {
		t.Fatalf("missing allocs-regression marker:\n%s", out.String())
	}

	// Without allocs_per_op in the baseline the gate is ns/op only.
	noGate := writeBaseline(t, `{"benchmarks": [{"name": "BenchmarkTransitionStable", "ns_per_op": 700.0}]}`)
	out.Reset()
	code = run(strings.NewReader(withAllocs), &out, &errb,
		[]string{"-baseline", noGate, "-match", "^BenchmarkTransitionStable$", "-threshold", "0.20"})
	if code != 0 {
		t.Fatalf("exit %d, want 0 without a recorded allocs baseline\n%s", code, out.String())
	}
}

func TestRunWarnReportsWithoutFailing(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": [{"name": "BenchmarkTransitionCai", "ns_per_op": 100}]}`)
	var out, errb strings.Builder
	code := run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkTransitionCai$", "-threshold", "0.20", "-warn"})
	if code != 0 {
		t.Fatalf("exit %d, want 0 in -warn mode despite the regression\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "WARN BenchmarkTransitionCai") {
		t.Fatalf("missing WARN line:\n%s", out.String())
	}
	// Usage errors must still be loud in warn mode.
	code = run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkNoSuchThing$", "-warn"})
	if code != 2 {
		t.Fatalf("exit %d, want 2 for an empty selection even with -warn", code)
	}
}

// TestGeomeanLine pins the one-line summary: present and correct in
// the hard mode, and still printed in -warn mode (the artifact's
// at-a-glance characterization must never depend on the gate flavor).
func TestGeomeanLine(t *testing.T) {
	// Two compared benchmarks with ratios 1.3 and 1.0/1.3: the geomean
	// is exactly 1 (+0.0%), while the arithmetic mean would not be —
	// which is the property the summary is chosen for.
	base := writeBaseline(t, `{"benchmarks": [
		{"name": "BenchmarkTransitionCore", "ns_per_op": 923.0},
		{"name": "BenchmarkTransitionCai", "ns_per_op": 294.0}
	]}`)
	out := `BenchmarkTransitionCore-8 1000 1199.9 ns/op
BenchmarkTransitionCai-8 1000 226.2 ns/op
`
	var stdout, stderr strings.Builder
	code := run(strings.NewReader(out), &stdout, &stderr,
		[]string{"-baseline", base, "-match", "^BenchmarkTransition", "-threshold", "0.5"})
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "geomean ns/op delta +0.0% across 2 benchmarks") {
		t.Fatalf("missing or wrong geomean line:\n%s", stdout.String())
	}

	stdout.Reset()
	code = run(strings.NewReader(out), &stdout, &stderr,
		[]string{"-baseline", base, "-match", "^BenchmarkTransition", "-threshold", "0.1", "-warn"})
	if code != 0 {
		t.Fatalf("exit %d in -warn mode\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "geomean ns/op delta") {
		t.Fatalf("geomean line missing in -warn mode:\n%s", stdout.String())
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	base := writeBaseline(t, sampleBaseline)
	var out, errb strings.Builder
	code := run(strings.NewReader(sampleOutput), &out, &errb,
		[]string{"-baseline", base, "-match", "^BenchmarkNoSuchThing$"})
	if code != 2 {
		t.Fatalf("exit %d, want 2 when nothing matches", code)
	}
}

// TestRunAgainstRepoBaselines keeps the tool honest against the real
// checked-in baselines: both the historical BENCH_seed.json and the
// current BENCH_base.json CI diffs against must parse and contain the
// BenchmarkTransition* entries.
func TestRunAgainstRepoBaselines(t *testing.T) {
	for _, baseline := range []string{"../../BENCH_seed.json", "../../BENCH_base.json"} {
		var out, errb strings.Builder
		code := run(strings.NewReader(sampleOutput), &out, &errb,
			[]string{"-baseline", baseline, "-threshold", "1e9"})
		if code != 0 {
			t.Fatalf("exit %d against %s\nstdout:\n%s\nstderr:\n%s", code, baseline, out.String(), errb.String())
		}
		for _, name := range []string{"BenchmarkTransitionStable", "BenchmarkTransitionCore", "BenchmarkTransitionCai"} {
			if !strings.Contains(out.String(), name) {
				t.Fatalf("%s diff missing %s:\n%s", baseline, name, out.String())
			}
		}
	}
}

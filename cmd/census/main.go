// Command census prints the state-space census (experiment E3) for a
// range of population sizes — the paper's central space comparison in
// table form:
//
//	census -ns 64,256,1024,4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/census"
	"ssrank/internal/core"
	"ssrank/internal/plot"
	"ssrank/internal/stable"
)

func main() {
	os.Exit(run())
}

func run() int {
	nsFlag := flag.String("ns", "64,256,1024,4096,16384", "comma-separated population sizes")
	flag.Parse()

	var ns []int
	for _, f := range strings.Split(*nsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "census: bad population size %q\n", f)
			return 2
		}
		ns = append(ns, n)
	}

	header := []string{"n", "stable(total)", "stable(overhead)", "aware(overhead)", "cai(overhead)", "interval(total,eps=1)", "core(paper-accounted)"}
	var rows [][]string
	for _, n := range ns {
		sp := stable.New(n, stable.DefaultParams())
		ap := aware.New(n, aware.DefaultParams())
		_, corePaper := census.DeclaredCore(core.New(n, core.DefaultParams()))
		rows = append(rows, []string{
			strconv.Itoa(n),
			strconv.Itoa(census.DeclaredStable(sp)),
			strconv.Itoa(census.OverheadStable(sp)),
			strconv.Itoa(census.DeclaredAware(ap) - n),
			strconv.Itoa(census.DeclaredCai(cai.New(n)) - n),
			strconv.Itoa(census.DeclaredInterval(interval.New(n, 1.0))),
			strconv.Itoa(corePaper),
		})
	}
	fmt.Print(plot.Table(header, rows))
	fmt.Println("\noverhead = states beyond the n needed to store the ranks (paper §I);")
	fmt.Println("stable's overhead is Θ(log² n) — exponentially below aware's Ω(n).")
	return 0
}

// Command ssrank-worker is the worker half of distributed runs: it
// dials a coordinator's worker listener (ssrankd -workeraddr, or any
// process driving ssrank.RunDistributed) and executes the shard
// groups assigned to it. Workers hold no configuration of their own —
// protocol, population, seed and shard layout all arrive in the
// assignment frame — so a fleet is just N copies of this binary
// pointed at one address:
//
//	ssrank-worker -coordinator host:8081
//	ssrank-worker -coordinator /run/ssrank/workers.sock
//
// One connection serves many runs; when the coordinator goes away the
// worker redials until it comes back (-retry), so a fleet survives
// daemon restarts. Worker crashes are the coordinator's problem, and
// a survivable one: the dead worker's shards migrate to the remaining
// fleet and the run's Result bytes do not change.
package main

import (
	"flag"
	"log"
	"net"
	"strings"
	"time"

	"ssrank"
)

func main() {
	coord := flag.String("coordinator", "", "coordinator worker-listener address (host:port, or a unix socket path containing '/')")
	retry := flag.Duration("retry", 2*time.Second, "redial delay after a lost coordinator connection (<= 0: exit on disconnect)")
	flag.Parse()
	if *coord == "" {
		log.Fatal("ssrank-worker: -coordinator is required")
	}
	network := "tcp"
	if strings.Contains(*coord, "/") {
		network = "unix"
	}
	for {
		conn, err := net.Dial(network, *coord)
		if err != nil {
			log.Printf("ssrank-worker: dial %s: %v", *coord, err)
		} else {
			log.Printf("ssrank-worker: serving %s", *coord)
			if err := ssrank.ServeWorker(conn); err != nil {
				log.Printf("ssrank-worker: connection lost: %v", err)
			} else {
				log.Print("ssrank-worker: coordinator closed the connection")
			}
			conn.Close()
		}
		if *retry <= 0 {
			return
		}
		time.Sleep(*retry)
	}
}

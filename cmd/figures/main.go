// Command figures regenerates every table and figure of the paper's
// evaluation (plus the shape experiments of DESIGN.md §4), writing one
// CSV per experiment and printing ASCII renderings:
//
//	figures -out results/            # full scale, all CPUs
//	figures -quick -only E1,E2       # scaled down, selected experiments
//	figures -parallel 1              # serial replications (same output)
//	figures -e E1 -shards 4          # sharded engine inside each trial
//	                                 # (same CSV at every -parallel)
//	figures -e E4 -shards auto       # shard count derived per n from
//	                                 # the population and core count
//	figures -e E2 -precision 0.05 -maxtrials 200 -progress
//	                                 # CI-adaptive: replicate each loop
//	                                 # until its 95% CI half-width is
//	                                 # within 5% of the mean
//	figures -quick -e E2 -shards 4 -cpuprofile cpu.pb.gz
//	                                 # profile the sharded engine
//	                                 # (go tool pprof cpu.pb.gz)
//
// Replications stream through the deterministic engine
// (internal/sim/replicate.ReplicateStream): results commit in trial
// order, so the CSVs are byte-identical for any -parallel value — with
// or without -precision stopping — and the flags only trade wall-clock
// for cores (and trials for certified precision).
//
// EXPERIMENTS.md records a full run's output next to the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ssrank/internal/expt"
	"ssrank/internal/prof"
	"ssrank/internal/sim/shard"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out       = flag.String("out", "results", "directory for CSV output (created if missing)")
		quick     = flag.Bool("quick", false, "scaled-down experiments (seconds instead of minutes)")
		only      = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E3); empty = all")
		e         = flag.String("e", "", "alias of -only")
		seed      = flag.Uint64("seed", 0x5eed, "experiment seed")
		parallel  = flag.Int("parallel", 0, "replication workers: 0 = one per CPU, 1 = serial (output is identical either way)")
		shards    = flag.String("shards", "0", "run single trials of the stabilization experiments (E1, E2, E4-E7, E18) on this many population shards, or 'auto' to derive the count from n and the core count; output depends on the resolved shard count but not on -parallel")
		precision = flag.Float64("precision", 0, "stop each replication loop once the 95% CI half-width of its statistic falls below this fraction of the mean (0 = fixed trial counts)")
		maxtrials = flag.Int("maxtrials", 0, "override per-loop replication trial ceilings (0 = generator defaults); raise it to give -precision room")
		progress  = flag.Bool("progress", false, "stream per-trial replication progress to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (pprof format)")
		memprof   = flag.String("memprofile", "", "write an allocation profile to this file after the experiments (pprof format)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}()

	if *precision < 0 {
		fmt.Fprintln(os.Stderr, "figures: -precision must be >= 0")
		return 2
	}
	shardCount, err := shard.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}
	opts := expt.Options{
		Seed: *seed, Quick: *quick, Workers: *parallel, Shards: shardCount,
		Precision: *precision, MaxTrials: *maxtrials,
	}
	if *progress {
		opts.Progress = func(p expt.Progress) {
			fmt.Fprintf(os.Stderr, "%-24s %4d/%-4d mean=%-12.6g ±%.4g\n",
				p.Label, p.Committed, p.Max, p.Mean, p.CI95)
		}
	}

	sel := *only
	if *e != "" {
		if sel != "" {
			sel += ","
		}
		sel += *e
	}
	ids := make([]string, 0, len(expt.Registry))
	if sel != "" {
		for _, id := range strings.Split(sel, ",") {
			id = strings.TrimSpace(id)
			if expt.Registry[id] == nil {
				fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	} else {
		for i := 1; i <= len(expt.Registry); i++ {
			ids = append(ids, fmt.Sprintf("E%d", i))
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}

	for _, id := range ids {
		fig := expt.Registry[id](opts)
		fmt.Println(fig.String())
		path := filepath.Join(*out, strings.ToLower(id)+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 2
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	return 0
}

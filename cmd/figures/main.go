// Command figures regenerates every table and figure of the paper's
// evaluation (plus the shape experiments of DESIGN.md §3), writing one
// CSV per experiment and printing ASCII renderings:
//
//	figures -out results/            # full scale, all CPUs
//	figures -quick -only E1,E2       # scaled down, selected experiments
//	figures -parallel 1              # serial replications (same output)
//
// Replications fan out over the deterministic parallel engine
// (internal/sim/replicate): the CSVs are byte-identical for any
// -parallel value, so the flag only trades wall-clock for cores.
//
// EXPERIMENTS.md records a full run's output next to the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ssrank/internal/expt"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("out", "results", "directory for CSV output (created if missing)")
		quick    = flag.Bool("quick", false, "scaled-down experiments (seconds instead of minutes)")
		only     = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E3); empty = all")
		seed     = flag.Uint64("seed", 0x5eed, "experiment seed")
		parallel = flag.Int("parallel", 0, "replication workers: 0 = one per CPU, 1 = serial (output is identical either way)")
	)
	flag.Parse()

	opts := expt.Options{Seed: *seed, Quick: *quick, Workers: *parallel}

	ids := make([]string, 0, len(expt.Registry))
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if expt.Registry[id] == nil {
				fmt.Fprintf(os.Stderr, "figures: unknown experiment %q\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	} else {
		for i := 1; i <= len(expt.Registry); i++ {
			ids = append(ids, fmt.Sprintf("E%d", i))
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 2
	}

	for _, id := range ids {
		fig := expt.Registry[id](opts)
		fmt.Println(fig.String())
		path := filepath.Join(*out, strings.ToLower(id)+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 2
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	return 0
}

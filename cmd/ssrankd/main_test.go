package main

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ssrank"
	"ssrank/internal/jobs"
)

// postJob submits cfg as JSON and decodes the response view.
func postJob(t *testing.T, srv *httptest.Server, body string) jobJSON {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var v jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServerLifecycle drives the full HTTP surface: submit, stream the
// SSE event log to the terminal event, confirm the status endpoint
// carries the exact Run result, and confirm an identical re-submission
// is served from the cache without re-execution.
func TestServerLifecycle(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(newMux(m))
	defer srv.Close()

	v := postJob(t, srv, `{"N":48,"Seed":9}`)
	if v.State != jobs.Queued {
		t.Fatalf("submitted job state %s, want %s", v.State, jobs.Queued)
	}

	// The SSE stream must replay the log from seq 0, stay gapless, and
	// end by itself after a terminal event.
	resp, err := http.Get(srv.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if typ, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			types = append(types, typ)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[len(types)-1] != jobs.EventDone {
		t.Fatalf("event stream %v, want it to end with %s", types, jobs.EventDone)
	}

	var status jobJSON
	getJSON(t, srv, "/jobs/"+v.ID, &status)
	if status.State != jobs.Done || status.Result == nil {
		t.Fatalf("terminal status %+v", status)
	}
	want, err := ssrank.Run(ssrank.Config{N: 48, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*status.Result, want) {
		t.Fatalf("served result diverged from Run:\njob %+v\nrun %+v", *status.Result, want)
	}

	// Identical re-submit: cached, terminal without waiting.
	again := postJob(t, srv, `{"N":48,"Seed":9,"ShardWorkers":6}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, srv, "/jobs/"+again.ID, &status)
		if status.State == jobs.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cached job stuck in %s", status.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !reflect.DeepEqual(*status.Result, want) {
		t.Fatal("cached result diverged from the computed one")
	}
	if n := m.Started(); n != 1 {
		t.Fatalf("%d executions started, want 1", n)
	}

	var all []jobJSON
	getJSON(t, srv, "/jobs", &all)
	if len(all) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(all))
	}
}

// TestServerRejects pins the error paths: malformed JSON, unknown
// fields, invalid configs, and missing job ids.
func TestServerRejects(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	srv := httptest.NewServer(newMux(m))
	defer srv.Close()

	for name, body := range map[string]string{
		"malformed":     `{"N":`,
		"unknown field": `{"N":64,"Sede":3}`,
		"invalid N":     `{"N":1}`,
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	for _, path := range []string{"/jobs/job-99", "/jobs/job-99/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestServerDistributed drives a Workers>1 job through a connected
// worker fleet (the -workeraddr accept loop feeding distPool) and
// requires the exact in-process Result on the status endpoint, plus
// the progress fraction reaching 1 at the terminal state.
func TestServerDistributed(t *testing.T) {
	pool := &distPool{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			pool.add(c)
		}
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for i := 0; i < 2; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ssrank.ServeWorker(wc)
		}()
	}

	m := jobs.NewManager(jobs.Config{Workers: 1, Dist: pool})
	defer m.Close()
	srv := httptest.NewServer(newMux(m))
	defer srv.Close()

	v := postJob(t, srv, `{"N":64,"Seed":13,"Shards":4,"Workers":2}`)
	var status jobJSON
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, srv, "/jobs/"+v.ID, &status)
		if status.State == jobs.Done || status.State == jobs.Failed {
			break
		}
		if status.Progress < 0 || status.Progress > 1 {
			t.Fatalf("progress %v out of range", status.Progress)
		}
		if time.Now().After(deadline) {
			t.Fatalf("distributed job stuck in %s", status.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status.State != jobs.Done || status.Result == nil {
		t.Fatalf("terminal status %+v (%s)", status, status.Error)
	}
	if status.Progress != 1 {
		t.Fatalf("terminal progress %v, want 1", status.Progress)
	}
	want, err := ssrank.Run(ssrank.Config{N: 64, Seed: 13, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*status.Result, want) {
		t.Fatalf("distributed job result diverged from Run:\njob %+v\nrun %+v", *status.Result, want)
	}
}

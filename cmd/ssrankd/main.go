// Command ssrankd serves ranking-protocol runs as jobs over HTTP: a
// bounded worker pool drains a FIFO queue of submitted Configs, long
// runs are checkpointed and preempted when the queue backs up, and
// completed results are cached by the content address of their
// canonical configuration — an identical re-submission is answered
// instantly without re-execution (runs are deterministic, so the
// cached result is exactly what a re-run would produce).
//
//	ssrankd -addr :8080 -workers 4
//
// With -workeraddr the daemon additionally listens for ssrank-worker
// processes and routes jobs whose Config sets Workers > 1 through the
// connected fleet (ssrank.RunDistributed) — same Result bytes, remote
// hardware. With -cachedir completed results spill to disk and
// survive restarts; -cachemax caps the in-memory result cache.
//
// API:
//
//	POST /jobs            submit a Config (JSON) → {"id": "job-0", ...}
//	GET  /jobs            list all jobs
//	GET  /jobs/{id}       job status with a progress fraction; result
//	                      and error once terminal
//	GET  /jobs/{id}/events  Server-Sent Events: the job's ordered
//	                      event log (queued, started, progress,
//	                      preempted, cached, done/failed), replayed
//	                      from the start and streamed to completion —
//	                      progress fires at slice boundaries, for
//	                      distributed jobs at committed batch barriers
//	GET  /healthz         liveness probe
//
// See the README quickstart for a curl walkthrough.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"ssrank"
	"ssrank/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "worker pool size")
	slice := flag.Int64("slice", 0, "interactions per scheduling slice (0 = default); long jobs are checkpointed and preempted at slice boundaries when other jobs wait")
	workerAddr := flag.String("workeraddr", "", "listen address for ssrank-worker processes (host:port, or a unix socket path containing '/'); empty disables distributed execution")
	cacheDir := flag.String("cachedir", "", "directory for the disk-spill result cache; empty keeps the cache memory-only")
	cacheMax := flag.Int("cachemax", 0, "in-memory result cache capacity in entries (0 = default)")
	flag.Parse()

	jcfg := jobs.Config{Workers: *workers, SliceInteractions: *slice, CacheDir: *cacheDir, CacheMax: *cacheMax}
	if *workerAddr != "" {
		pool := &distPool{}
		ln, err := listen(*workerAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssrankd:", err)
			os.Exit(1)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				log.Printf("ssrankd: worker connected from %s", c.RemoteAddr())
				pool.add(c)
			}
		}()
		jcfg.Dist = pool
		log.Printf("ssrankd accepting workers on %s", *workerAddr)
	}
	m := jobs.NewManager(jcfg)
	defer m.Close()

	log.Printf("ssrankd listening on %s (%d workers)", *addr, *workers)
	if err := http.ListenAndServe(*addr, newMux(m)); err != nil {
		fmt.Fprintln(os.Stderr, "ssrankd:", err)
		os.Exit(1)
	}
}

// listen opens the worker listener: a unix socket when the address
// contains a path separator (removing a stale socket file first),
// TCP otherwise.
func listen(addr string) (net.Listener, error) {
	if strings.Contains(addr, "/") {
		os.Remove(addr)
		return net.Listen("unix", addr)
	}
	return net.Listen("tcp", addr)
}

// newMux wires the API routes onto a fresh ServeMux (split from main
// so tests can drive the handlers through httptest).
func newMux(m *jobs.Manager) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(m, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		list(m, w)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, jobView(j))
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		stream(j, w, r)
	})
	return mux
}

// jobJSON is the wire form of a job.
type jobJSON struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	Steps int64      `json:"steps"`
	// Progress is the fraction of the interaction budget consumed so
	// far, in [0, 1]; 1 on every Done job (convergence ends the run
	// early, but ends it). A coarse dashboard number: convergence is a
	// hitting time, not a linear process, so most runs finish well
	// before Progress reaches 1.
	Progress float64        `json:"progress"`
	Config   ssrank.Config  `json:"config"`
	Key      string         `json:"key"`
	Result   *ssrank.Result `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
}

func jobView(j *jobs.Job) jobJSON {
	state, steps, result, err := j.Status()
	v := jobJSON{ID: j.ID, State: state, Steps: steps, Config: j.Config, Key: j.Key, Result: result}
	if budget := j.Config.MaxInteractions; budget > 0 {
		v.Progress = min(float64(steps)/float64(budget), 1)
	}
	if state == jobs.Done {
		v.Progress = 1
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// submit decodes a Config and enqueues it. Unknown fields are
// rejected: a typoed field name silently meaning "default" would make
// the submitted run differ from the intended one.
func submit(m *jobs.Manager, w http.ResponseWriter, r *http.Request) {
	var cfg ssrank.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		http.Error(w, "bad config: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := m.Submit(cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusAccepted, jobView(j))
}

func list(m *jobs.Manager, w http.ResponseWriter) {
	all := m.Jobs()
	views := make([]jobJSON, len(all))
	for i, j := range all {
		views[i] = jobView(j)
	}
	writeJSON(w, http.StatusOK, views)
}

// stream serves a job's event log as Server-Sent Events: the full log
// replayed from sequence 0, then live events as the job emits them,
// closing after the terminal event. The jobs package guarantees a
// gapless ordered log (Watch notifications coalesce; EventsSince
// re-reads never drop), so the SSE ids are exactly the event
// sequence numbers.
func stream(j *jobs.Job, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	notify, cancel := j.Watch()
	defer cancel()

	next := 0
	send := func() bool {
		for _, ev := range j.EventsSince(next) {
			next = ev.Seq + 1
			data, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return false
			}
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case _, open := <-notify:
			if !send() {
				return
			}
			if !open {
				return
			}
		}
	}
}

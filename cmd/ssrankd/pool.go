package main

import (
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"ssrank"
)

// pooledConn tracks liveness for the worker pool. A distributed run
// closes connections it rejects at handshake or drops after a
// heartbeat timeout; the overridden Close records that so the pool
// skips dead entries on the next run.
type pooledConn struct {
	net.Conn
	closed atomic.Bool
}

func (c *pooledConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// distPool is the daemon's worker fleet — every connection accepted on
// the -workeraddr listener — and the jobs.DistRunner the manager
// dispatches eligible jobs through. Runs are serialized under the pool
// lock: the wire protocol dedicates a connection to one coordinator at
// a time, and one run at full fleet parallelism finishes sooner than
// interleaved runs contending for workers.
type distPool struct {
	mu    sync.Mutex
	conns []*pooledConn
}

func (p *distPool) add(c net.Conn) {
	pc := &pooledConn{Conn: c}
	p.mu.Lock()
	p.conns = append(p.conns, pc)
	p.mu.Unlock()
}

// Run implements jobs.DistRunner: hand the live fleet (capped at the
// job's Workers knob) to RunDistributed. Declines — no live workers,
// a config the distributed engine does not cover, or an
// infrastructure failure — return ok = false and the manager runs the
// job in-process instead; determinism makes the substitution
// invisible in the Result.
func (p *distPool) Run(cfg ssrank.Config, onBatch func(int64)) (ssrank.Result, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := p.conns[:0]
	for _, c := range p.conns {
		if !c.closed.Load() {
			live = append(live, c)
		}
	}
	p.conns = live
	// Message-network configs resolve to zero shards, so the shard
	// check also filters runs the distributed engine does not cover.
	if cfg.Shards < 2 || len(live) == 0 {
		return ssrank.Result{}, false, nil
	}
	n := len(live)
	if cfg.Workers > 0 && n > cfg.Workers {
		n = cfg.Workers
	}
	conns := make([]net.Conn, n)
	for i := range conns {
		conns[i] = live[i]
	}
	res, err := ssrank.RunDistributed(cfg, ssrank.DistRun{Workers: conns, OnBatch: onBatch})
	if err != nil && !errors.Is(err, ssrank.ErrNotConverged) {
		log.Printf("ssrankd: distributed run failed, falling back in-process: %v", err)
		return ssrank.Result{}, false, nil
	}
	return res, true, err
}

// Command ssrank runs a ranking protocol once and reports the outcome:
//
//	ssrank -n 256 -protocol stable -init worst-case -seed 7 -v
//
// With -trials it replicates the run across the deterministic parallel
// engine and reports aggregate statistics instead:
//
//	ssrank -n 256 -trials 32 -parallel 0   # 32 replications, all CPUs
//	ssrank -n 256 -trials 500 -precision 0.05 -progress
//	    # stream replications until the 95% CI on the convergence time
//	    # is within ±5% of its mean (at most 500 trials)
//
// Naming a -scheduler (or setting any fault flag) routes the run
// through the round-based message network instead of the in-place
// engines:
//
//	ssrank -n 64 -drop 0.05 -delaymax 3    # faulty uniform network
//	ssrank -n 64 -scheduler expander       # sparse contact graph
//	                                       # (expect non-convergence)
//
// -cpuprofile/-memprofile write pprof profiles of exactly the work the
// invocation performs (the DESIGN.md §3 measurements cite these):
//
//	ssrank -n 10000000 -shards 8 -cpuprofile cpu.pb.gz
//
// -list prints the protocol registry: every registered protocol with
// its supported inits and default budget at the configured -n.
//
// It exercises exactly the public API a library user would call.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ssrank"
	"ssrank/internal/prof"
	"ssrank/internal/sim/shard"
)

func main() {
	os.Exit(run())
}

// protocolNames renders the registry for the -protocol flag help, so
// the CLI cannot drift from the registered set.
func protocolNames() string {
	names := make([]string, 0, 8)
	for _, p := range ssrank.Protocols() {
		names = append(names, string(p))
	}
	return strings.Join(names, " | ")
}

// schedulerNames renders the topology registry for the -scheduler
// flag help.
func schedulerNames() string {
	names := make([]string, 0, 8)
	for _, s := range ssrank.Schedulers() {
		names = append(names, string(s))
	}
	return strings.Join(names, " | ")
}

func run() int {
	var (
		n         = flag.Int("n", 256, "population size (>= 2)")
		protocol  = flag.String("protocol", "stable", "protocol: "+protocolNames())
		init      = flag.String("init", "", "initial configuration (default: the protocol's first registered init; see -list)")
		seed      = flag.Uint64("seed", 1, "scheduler seed (runs are deterministic per seed)")
		budget    = flag.Int64("budget", 0, "interaction budget (0 = the protocol's registered default)")
		shards    = flag.String("shards", "0", "run the population on this many shards, or 'auto' to derive the count from -n and the core count (intra-run parallelism; results depend on the resolved shard count, not on the worker pool; sharded runs stop at the exact hitting time, like serial runs)")
		epsilon   = flag.Float64("epsilon", 1.0, "range slack for the interval protocol")
		verbose   = flag.Bool("v", false, "print the full rank assignment")
		list      = flag.Bool("list", false, "print the protocol registry (protocols, inits, default budgets at -n) and exit")
		traceOut  = flag.String("trace", "", "write a per-n-interactions CSV time series to this file (stable protocol only)")
		trials    = flag.Int("trials", 0, "replicate the run this many times and report aggregate statistics")
		parallel  = flag.Int("parallel", 0, "replication workers for -trials: 0 = one per CPU, 1 = serial (results are identical either way)")
		precision = flag.Float64("precision", 0, "with -trials: stop replicating once the 95% CI half-width of the convergence time falls below this fraction of the mean")
		maxtrials = flag.Int("maxtrials", 0, "with -precision: trial ceiling (defaults to -trials)")
		progress  = flag.Bool("progress", false, "with -trials: stream per-trial progress to stderr")
		scheduler = flag.String("scheduler", "", "communication topology, routing the run through the round-based message network: "+schedulerNames()+" (empty = the in-place engines)")
		drop      = flag.Float64("drop", 0, "message-network fault: probability a message is lost in flight")
		dup       = flag.Float64("dup", 0, "message-network fault: probability a message is delivered twice")
		delaymax  = flag.Int("delaymax", 0, "message-network fault: delay each message by up to this many rounds")
		reorder   = flag.Float64("reorder", 0, "message-network fault: probability a round's delivery queue is shuffled")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
		memprof   = flag.String("memprofile", "", "write an allocation profile to this file after the run (pprof format)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprof, *memprof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ssrank:", err)
		}
	}()

	sched := ssrank.Scheduler(*scheduler)
	netFaults := ssrank.Faults{DropProb: *drop, DupProb: *dup, DelayMax: *delaymax, ReorderProb: *reorder}

	if *list {
		return listProtocols(*n)
	}
	if *parallel != 0 && *trials <= 0 {
		fmt.Fprintln(os.Stderr, "ssrank: -parallel only applies to -trials replication sweeps")
		return 2
	}
	shardCount, err := shard.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}
	if (*precision != 0 || *maxtrials != 0 || *progress) && *trials <= 0 {
		fmt.Fprintln(os.Stderr, "ssrank: -precision/-maxtrials/-progress apply to -trials replication sweeps")
		return 2
	}
	if *precision < 0 {
		fmt.Fprintln(os.Stderr, "ssrank: -precision must be >= 0")
		return 2
	}
	if *maxtrials != 0 && *precision == 0 {
		fmt.Fprintln(os.Stderr, "ssrank: -maxtrials is the -precision trial ceiling; without -precision, set -trials directly")
		return 2
	}
	if *trials > 0 {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "ssrank: -trace and -trials are mutually exclusive")
			return 2
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "ssrank: -v applies to single runs only, not -trials aggregates")
			return 2
		}
		ceiling := *trials
		if *maxtrials > 0 {
			ceiling = *maxtrials
		}
		return runReplicated(ssrank.Config{
			N:               *n,
			Protocol:        ssrank.Protocol(*protocol),
			Init:            ssrank.Init(*init),
			Seed:            *seed,
			MaxInteractions: *budget,
			Epsilon:         *epsilon,
			Shards:          shardCount,
			Scheduler:       sched,
			Faults:          netFaults,
			// Within a replication sweep the trial pool owns the
			// cores; sharded trials (and message-network deliveries)
			// run their phases serially.
			ShardWorkers: 1,
		}, ceiling, *parallel, *precision, *progress)
	}

	if *traceOut != "" {
		if *protocol != string(ssrank.StableRanking) {
			fmt.Fprintln(os.Stderr, "ssrank: -trace supports only -protocol stable")
			return 2
		}
		if shardCount != 0 && shardCount != 1 {
			fmt.Fprintln(os.Stderr, "ssrank: -trace and -shards are mutually exclusive")
			return 2
		}
		if sched != "" || netFaults != (ssrank.Faults{}) {
			fmt.Fprintln(os.Stderr, "ssrank: -trace probes the in-place engine; it cannot combine with -scheduler or the fault flags")
			return 2
		}
		return runTraced(*n, *init, *seed, *budget, *traceOut)
	}

	res, err := ssrank.Run(ssrank.Config{
		N:               *n,
		Protocol:        ssrank.Protocol(*protocol),
		Init:            ssrank.Init(*init),
		Seed:            *seed,
		MaxInteractions: *budget,
		Epsilon:         *epsilon,
		Shards:          shardCount,
		Scheduler:       sched,
		Faults:          netFaults,
	})
	if err != nil && !errors.Is(err, ssrank.ErrNotConverged) {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}

	norm := float64(res.Interactions) / float64(*n) / float64(*n)
	fmt.Printf("protocol=%s n=%d seed=%d\n", *protocol, *n, *seed)
	fmt.Printf("converged=%t interactions=%d (%.2f n²) exact=%t\n",
		res.Converged, res.Interactions, norm, res.Exact)
	if res.Shards > 1 {
		fmt.Printf("shards=%d (resolved)\n", res.Shards)
	}
	if res.Rounds > 0 {
		fmt.Printf("rounds=%d (message network)\n", res.Rounds)
	}
	if res.Leader >= 0 {
		fmt.Printf("leader=agent %d (rank 1)\n", res.Leader)
	}
	if res.Resets > 0 {
		fmt.Printf("resets=%d %v\n", res.Resets, res.ResetBreakdown)
	}
	if *verbose {
		type pair struct{ agent, rank int }
		pairs := make([]pair, 0, len(res.Ranks))
		for a, r := range res.Ranks {
			pairs = append(pairs, pair{a, r})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].rank < pairs[j].rank })
		for _, p := range pairs {
			fmt.Printf("  rank %4d -> agent %d\n", p.rank, p.agent)
		}
	}
	if !res.Converged {
		fmt.Println("warning: budget exhausted before a valid ranking")
		return 1
	}
	return 0
}

// listProtocols prints the registry — the same descriptors the
// library dispatches through.
func listProtocols(n int) int {
	fmt.Printf("%-16s %-6s %-12s %-28s %s\n", "protocol", "self-", "default", "inits", "")
	fmt.Printf("%-16s %-6s %-12s %-28s %s\n", "", "stab.", "budget", "", "")
	for _, d := range ssrank.Descriptors() {
		inits := make([]string, len(d.Inits))
		for i, in := range d.Inits {
			inits[i] = string(in)
		}
		fmt.Printf("%-16s %-6t %-12d %-28s\n",
			d.Protocol, d.SelfStabilizing, d.DefaultBudget(n), strings.Join(inits, ","))
	}
	fmt.Printf("(default budgets at n=%d)\n", n)
	return 0
}

// runReplicated fans the configured run out through the public
// replication API: per-trial seeds derive from (seed, trial) only and
// commits happen in trial order, so the summary is identical at every
// -parallel setting; precision > 0 stops the stream once the 95% CI
// on the convergence time of converged trials is within ±precision of
// its mean.
func runReplicated(cfg ssrank.Config, trials, workers int, precision float64, progress bool) int {
	opt := ssrank.ReplicateOptions{Trials: trials, Workers: workers, Precision: precision}
	if progress {
		opt.OnTrial = func(_, committed int, res ssrank.Result) {
			fmt.Fprintf(os.Stderr, "trial %4d/%-4d converged=%-5t interactions=%d\n",
				committed, trials, res.Converged, res.Interactions)
		}
	}
	rep, err := ssrank.Replicate(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}

	fmt.Printf("protocol=%s n=%d seed=%d trials=%d/%d\n",
		cfg.Protocol, cfg.N, cfg.Seed, rep.Trials, trials)
	fmt.Printf("converged=%d/%d\n", rep.Converged, rep.Trials)
	if rep.Converged > 0 {
		ints := rep.Interactions
		fmt.Printf("interactions mean=%.0f ±%.0f (%.2f n²) min=%.0f max=%.0f\n",
			ints.Mean, ints.CI95, ints.Mean/float64(cfg.N)/float64(cfg.N), ints.Min, ints.Max)
		if rep.Resets.Mean > 0 {
			fmt.Printf("mean resets=%.2f\n", rep.Resets.Mean)
		}
	}
	if rep.Converged < rep.Trials {
		fmt.Println("warning: some replications exhausted their budget")
		return 1
	}
	return 0
}

// runTraced streams a StableRanking run through the public stepwise
// API and writes the time series (ranked count, mean phase, resets) as
// CSV — the raw material of Fig. 2-style plots for any registered
// init. The mean-phase probe arrives through the descriptor's named
// probes (Snapshot.Probes), so the path needs no protocol internals.
// Sampling is touch-aware and the stop exact: windows in which no
// tracked projection moved produce no row, and the series ends at the
// hitting time rather than the next poll.
func runTraced(n int, initName string, seed uint64, budget int64, path string) int {
	s, err := ssrank.NewSimulation(ssrank.Config{
		N:        n,
		Protocol: ssrank.StableRanking,
		Init:     ssrank.Init(initName),
		Seed:     seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}

	var b strings.Builder
	b.WriteString("interactions,ranked,mean_phase,resets\n")
	samples := 0
	s.Observe(int64(n)*int64(n)/8, budget, func(snap ssrank.Snapshot) {
		fmt.Fprintf(&b, "%d,%g,%g,%g\n",
			snap.Interactions, float64(snap.RankedCount), snap.Probes["mean_phase"], float64(snap.Resets))
		samples++
	})

	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ssrank:", err)
		return 2
	}
	fmt.Printf("traced %d samples over %d interactions -> %s (converged=%t, resets=%d)\n",
		samples, s.Interactions(), path, s.Stable(), s.Resets())
	return 0
}

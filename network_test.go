package ssrank

import (
	"errors"
	"reflect"
	"testing"
)

// TestRunMessageNetworkAllProtocols drives every registered protocol
// through the message-network path on the uniform topology, fault
// free. Rendezvous semantics make the fault-free network a
// sequentially consistent execution of the standard model, so every
// protocol — including the non-self-stabilizing ones — must converge,
// with zero per-protocol scheduling code.
func TestRunMessageNetworkAllProtocols(t *testing.T) {
	for _, p := range Protocols() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(Config{N: 16, Protocol: p, Seed: 5, Scheduler: SchedulerUniform})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("Converged false without error")
			}
			if res.Exact {
				t.Fatal("message-network run reported an exact hitting time (stops are round-polled)")
			}
			if res.Rounds <= 0 {
				t.Fatal("message-network run reported no rounds")
			}
			if res.Interactions <= 0 {
				t.Fatal("no interactions recorded")
			}
		})
	}
}

// TestRunSparseTopologyNoConvergence pins the model-level finding the
// sparse schedulers exist to expose: the paper's ranking protocols
// resolve rank conflicts by direct meetings, so on a ring two
// conflicting agents that are not neighbors can never notice each
// other — the run must exhaust its budget, deterministically.
func TestRunSparseTopologyNoConvergence(t *testing.T) {
	cfg := Config{
		N: 16, Protocol: StableRanking, Seed: 3,
		Scheduler: SchedulerRing, MaxInteractions: 100_000,
	}
	ref, err := Run(cfg)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("stable converged on a ring? err = %v", err)
	}
	if ref.Converged || ref.Rounds <= 0 {
		t.Fatalf("unexpected result on the ring: %+v", ref)
	}
	c := cfg
	c.ShardWorkers = 8
	got, _ := Run(c)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("ring run depends on ShardWorkers")
	}
}

// TestRunMessageNetworkFaulty locks a faulty-run contract end to end:
// the flagship protocol converges under drops, duplicates, delays and
// reordering, the result is a valid ranking, and Rounds is populated.
func TestRunMessageNetworkFaulty(t *testing.T) {
	res, err := Run(Config{
		N: 24, Protocol: StableRanking, Seed: 11,
		Faults: Faults{DropProb: 0.05, DupProb: 0.05, DelayMax: 3, ReorderProb: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(res.Ranks, 24) {
		t.Fatalf("ranks not a permutation under faults: %v", res.Ranks)
	}
	if res.Rounds <= 0 || res.Exact {
		t.Fatalf("Rounds = %d, Exact = %v on a faulty run", res.Rounds, res.Exact)
	}
}

// TestRunMessageNetworkDeterministic locks the facade-level
// determinism contract: identical Configs produce identical Results
// at any ShardWorkers setting.
func TestRunMessageNetworkDeterministic(t *testing.T) {
	cfg := Config{
		N: 48, Protocol: StableRanking, Seed: 7,
		Faults: Faults{DropProb: 0.1, DelayMax: 2},
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		c := cfg
		c.ShardWorkers = workers
		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("message-network Result depends on ShardWorkers=%d:\n%+v\nvs\n%+v", workers, got, ref)
		}
	}
}

// TestRunSchedulerValidation covers the new Config knobs' vetting.
func TestRunSchedulerValidation(t *testing.T) {
	if _, err := Run(Config{N: 8, Scheduler: "torus"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := Run(Config{N: 8, Faults: Faults{DropProb: 1.5}}); err == nil {
		t.Fatal("out-of-range DropProb accepted")
	}
	if _, err := Run(Config{N: 8, Faults: Faults{DelayMax: -1}}); err == nil {
		t.Fatal("negative DelayMax accepted")
	}
	if got := Schedulers(); len(got) != 6 {
		t.Fatalf("Schedulers() = %v, want 6 topologies", got)
	}
}

// TestSimulationMessageNetwork exercises the stepwise driver on the
// message network: stepping advances interactions, snapshots project
// through the descriptor, and the run stabilizes.
func TestSimulationMessageNetwork(t *testing.T) {
	sim, err := NewSimulation(Config{
		N: 16, Protocol: StableRanking, Seed: 3,
		Faults: Faults{DropProb: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(50)
	if sim.Interactions() == 0 {
		t.Fatal("Step delivered no interactions through the message network")
	}
	snap := sim.Snapshot()
	if snap.Interactions != sim.Interactions() || len(snap.Ranks) != 16 {
		t.Fatalf("inconsistent snapshot: %+v", snap)
	}
	if !sim.RunUntilStable(0) {
		t.Fatal("did not stabilize within the default budget")
	}
	if !isPermutation(sim.Ranks(), 16) {
		t.Fatalf("ranks not a permutation: %v", sim.Ranks())
	}

	calls := 0
	sim2, err := NewSimulation(Config{N: 16, Protocol: StableRanking, Seed: 4, Scheduler: SchedulerUniform})
	if err != nil {
		t.Fatal(err)
	}
	if !sim2.Observe(0, 0, func(Snapshot) { calls++ }) {
		t.Fatal("Observe did not stabilize")
	}
	if calls < 2 {
		t.Fatalf("Observe invoked the callback %d times, want at least start and end", calls)
	}
}

// TestSimulationSwapDuplicate covers the two promoted transient-fault
// primitives on both engine paths.
func TestSimulationSwapDuplicate(t *testing.T) {
	for _, cfg := range []Config{
		{N: 32, Protocol: StableRanking, Seed: 9},
		{N: 32, Protocol: StableRanking, Seed: 9, Scheduler: SchedulerUniform},
	} {
		name := "serial"
		if cfg.messageNetwork() {
			name = "msgnet"
		}
		t.Run(name, func(t *testing.T) {
			sim, err := NewSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !sim.RunUntilStable(0) {
				t.Fatal("did not stabilize")
			}

			// Swap preserves the multiset: the ranking stays valid.
			before := append([]int(nil), sim.Ranks()...)
			if err := sim.Swap(8); err != nil {
				t.Fatal(err)
			}
			if !sim.Stable() {
				t.Fatal("swap broke stability — it must preserve the state multiset")
			}
			if reflect.DeepEqual(sim.Ranks(), before) {
				t.Fatal("swapping 8 pairs left every rank in place")
			}
			if err := sim.Swap(17); err == nil {
				t.Fatal("swapping 17 pairs among 32 agents accepted")
			}
			if err := sim.Swap(-1); err == nil {
				t.Fatal("negative swap count accepted")
			}

			// Duplicate creates a duplicate rank; the protocol recovers.
			src, dst, err := sim.Duplicate()
			if err != nil {
				t.Fatal(err)
			}
			if src == dst || sim.Ranks()[src] != sim.Ranks()[dst] {
				t.Fatalf("Duplicate(%d → %d) did not copy the state", src, dst)
			}
			if !sim.RunUntilStable(0) {
				t.Fatal("did not re-stabilize after Duplicate")
			}
			if !isPermutation(sim.Ranks(), 32) {
				t.Fatalf("ranks not a permutation after recovery: %v", sim.Ranks())
			}
		})
	}
}

// TestDuplicateGated asserts Duplicate refuses non-self-stabilizing
// protocols, mirroring Corrupt.
func TestDuplicateGated(t *testing.T) {
	sim, err := NewSimulation(Config{N: 16, Protocol: SpaceEfficient, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Duplicate(); err == nil {
		t.Fatal("Duplicate accepted a non-self-stabilizing protocol")
	}
	// Swap is multiset-preserving and allowed everywhere.
	if err := sim.Swap(4); err != nil {
		t.Fatal(err)
	}
}

// TestMessageNetworkObserveRoundBackstop pins the Observe round-cap
// fix: the backstop must be derived from the *remaining* interaction
// budget, not the absolute one. Under DropProb 1 a round delivers
// nothing, so a simulation can burn far more rounds than maxSteps
// before Observe is called — the buggy absolute cap then returned
// immediately, observing nothing. It also pins Snapshot.Rounds: the
// round counter on the message network, 0 on the in-place engines.
func TestMessageNetworkObserveRoundBackstop(t *testing.T) {
	s, err := NewSimulation(Config{
		N: 16, Protocol: StableRanking, Seed: 2,
		Faults: Faults{DropProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step(500) // 500 rounds, zero interactions delivered
	if s.Interactions() != 0 {
		t.Fatalf("Drop=1 network delivered %d interactions", s.Interactions())
	}
	start := s.Snapshot().Rounds
	if start < 500 {
		t.Fatalf("Snapshot.Rounds = %d after 500 starved rounds", start)
	}
	var last Snapshot
	s.Observe(0, 200, func(snap Snapshot) { last = snap })
	if got := s.Snapshot().Rounds - start; got != 200 {
		t.Fatalf("Observe ran %d rounds, want 200 (the remaining interaction budget)", got)
	}
	if last.Rounds != start+200 {
		t.Fatalf("final observation carries Rounds=%d, want %d", last.Rounds, start+200)
	}

	serial, err := NewSimulation(Config{N: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	serial.Step(100)
	if r := serial.Snapshot().Rounds; r != 0 {
		t.Fatalf("in-place engine reported Snapshot.Rounds = %d, want 0", r)
	}
}

// TestMessageNetworkBudget asserts a starved network reports
// ErrNotConverged instead of spinning (the round backstop).
func TestMessageNetworkBudget(t *testing.T) {
	res, err := Run(Config{
		N: 16, Protocol: StableRanking, Seed: 1,
		Faults: Faults{DropProb: 1}, MaxInteractions: 200,
	})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if res.Converged || res.Interactions != 0 {
		t.Fatalf("a Drop=1 network converged? %+v", res)
	}
}

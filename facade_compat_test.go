package ssrank

// This file pins the descriptor redesign against the pre-redesign
// facade: oldFacadeRun is a faithful copy of the retired per-protocol
// run functions (runStable / runCore / runCai / runAware /
// runInterval and their shared polled runRanking path), and the suite
// checks that the redesigned Run returns the same Results across
// every protocol × init × engine combination the old facade
// supported.
//
// The one sanctioned difference is the stopping discipline on the
// serial engine: the old facade polled validity every n interactions,
// the redesign stops at the exact hitting time via the descriptor's
// incremental tracker. For silent stop conditions the configuration
// cannot change after the hitting time, so ranks, leader and resets
// must still be byte-identical, and the two step counts must agree up
// to poll rounding: exact ≤ polled < exact + cadence. On the sharded
// engine the redesign keeps the polled scan, so there everything —
// including Interactions — must be byte-identical.

import (
	"fmt"
	"reflect"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stable"
)

// oldRunRanking is the pre-redesign shared engine path: polled
// validity on the serial or sharded runner.
func oldRunRanking[S any, P sim.Protocol[S]](cfg Config, p P, init []S, valid func([]S) bool) ([]S, int64, error) {
	shards := cfg.Shards
	if shards == AutoShards {
		shards = shard.AutoShards(cfg.N, 0)
	}
	if shards > 1 {
		r := shard.New[S](p, init, cfg.Seed, shards, cfg.ShardWorkers)
		_, err := r.RunUntil(valid, 0, cfg.MaxInteractions)
		return r.States(), r.Steps(), err
	}
	r := sim.New[S](p, init, cfg.Seed)
	_, err := r.RunUntil(valid, 0, cfg.MaxInteractions)
	return r.States(), r.Steps(), err
}

func oldStableRanks(states []stable.State) []int {
	out := make([]int, len(states))
	for i, s := range states {
		if s.Mode == stable.ModeRanked {
			out[i] = int(s.Rank)
		}
	}
	return out
}

// oldFacadeRun reproduces the pre-redesign Run byte for byte
// (normalization included) for the protocols the old facade knew.
func oldFacadeRun(cfg Config) (Result, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = StableRanking
	}
	if cfg.Init == "" {
		cfg.Init = InitFresh
	}
	if cfg.MaxInteractions == 0 {
		cfg.MaxInteractions = defaultBudget(cfg.N, cfg.Protocol)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1.0
	}
	wrap := func(res Result, err error) (Result, error) {
		if err != nil {
			return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, res.Interactions, ErrNotConverged)
		}
		return res, nil
	}
	switch cfg.Protocol {
	case StableRanking:
		p := stable.New(cfg.N, stable.DefaultParams())
		var init []stable.State
		switch cfg.Init {
		case InitFresh:
			init = p.InitialStates()
		case InitWorstCase:
			init = p.WorstCaseInit()
		case InitRandom:
			init = p.RandomConfig(rng.New(cfg.Seed ^ 0xc0ffee))
		case InitFig3:
			init = p.Fig3Init()
		}
		states, steps, err := oldRunRanking(cfg, p, init, stable.Valid)
		return wrap(Result{
			Ranks:          oldStableRanks(states),
			Interactions:   steps,
			Converged:      err == nil,
			Leader:         stable.LeaderRank1(states),
			Resets:         p.Resets(),
			ResetBreakdown: p.ResetBreakdown(),
		}, err)
	case SpaceEfficient:
		p := core.New(cfg.N, core.DefaultParams())
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), core.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			if s.Kind == core.KindRanked {
				res.Ranks[i] = int(s.Rank)
				if s.Rank == 1 {
					res.Leader = i
				}
			}
		}
		return wrap(res, err)
	case Cai:
		p := cai.New(cfg.N)
		var init []cai.State
		switch cfg.Init {
		case InitFresh:
			init = p.InitialStates()
		case InitRandom:
			rr := rng.New(cfg.Seed ^ 0xc0ffee)
			init = make([]cai.State, cfg.N)
			for i := range init {
				init[i] = cai.State(1 + rr.Intn(cfg.N))
			}
		}
		states, steps, err := oldRunRanking(cfg, p, init, cai.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			res.Ranks[i] = int(s)
			if s == 1 {
				res.Leader = i
			}
		}
		return wrap(res, err)
	case Aware:
		p := aware.New(cfg.N, aware.DefaultParams())
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), aware.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1, Resets: p.Resets()}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			if s.Mode == aware.ModeRanked {
				res.Ranks[i] = int(s.Rank)
				if s.Rank == 1 {
					res.Leader = i
				}
			}
		}
		return wrap(res, err)
	case Interval:
		p := interval.New(cfg.N, cfg.Epsilon)
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), interval.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, rk := range interval.Ranks(states) {
			res.Ranks[i] = int(rk)
			if rk == 1 {
				res.Leader = i
			}
		}
		return wrap(res, err)
	}
	panic("unknown protocol " + cfg.Protocol)
}

func TestFacadeCompat(t *testing.T) {
	combos := []struct {
		p    Protocol
		init Init
	}{
		{StableRanking, InitFresh},
		{StableRanking, InitWorstCase},
		{StableRanking, InitRandom},
		{StableRanking, InitFig3},
		{SpaceEfficient, InitFresh},
		{Cai, InitFresh},
		{Cai, InitRandom},
		{Aware, InitFresh},
		{Interval, InitFresh},
	}
	const n = 48
	for _, c := range combos {
		for _, shards := range []int{0, 4} {
			for _, seed := range []uint64{1, 5} {
				c, shards, seed := c, shards, seed
				t.Run(fmt.Sprintf("%s/%s/shards=%d/seed=%d", c.p, c.init, shards, seed), func(t *testing.T) {
					cfg := Config{N: n, Protocol: c.p, Init: c.init, Seed: seed, Shards: shards}
					oldRes, oldErr := oldFacadeRun(cfg)
					newRes, newErr := Run(cfg)
					if (oldErr == nil) != (newErr == nil) {
						t.Fatalf("convergence disagrees: old err %v, new err %v", oldErr, newErr)
					}
					if oldErr != nil {
						if c.p == SpaceEfficient {
							t.Skip("w.h.p. protocol lost the leader lottery at this seed under both facades")
						}
						t.Fatalf("combination no longer converges: %v", oldErr)
					}
					if !reflect.DeepEqual(newRes.Ranks, oldRes.Ranks) {
						t.Fatalf("ranks differ:\nold %v\nnew %v", oldRes.Ranks, newRes.Ranks)
					}
					if newRes.Leader != oldRes.Leader {
						t.Fatalf("leader differs: old %d, new %d", oldRes.Leader, newRes.Leader)
					}
					if newRes.Resets != oldRes.Resets || !reflect.DeepEqual(newRes.ResetBreakdown, oldRes.ResetBreakdown) {
						t.Fatalf("resets differ: old %d %v, new %d %v",
							oldRes.Resets, oldRes.ResetBreakdown, newRes.Resets, newRes.ResetBreakdown)
					}
					if shards > 1 {
						// Same polled engine path: everything must match.
						if newRes.Interactions != oldRes.Interactions {
							t.Fatalf("sharded interactions differ: old %d, new %d", oldRes.Interactions, newRes.Interactions)
						}
						if newRes.Exact {
							t.Fatal("sharded run claims an exact hitting time")
						}
						return
					}
					// Serial: the redesign stops at the exact hitting
					// time, the old facade at the next poll (cadence n).
					if !newRes.Exact {
						t.Fatal("serial run did not report an exact hitting time")
					}
					if newRes.Interactions > oldRes.Interactions {
						t.Fatalf("exact stop %d after polled stop %d", newRes.Interactions, oldRes.Interactions)
					}
					if oldRes.Interactions-newRes.Interactions >= n {
						t.Fatalf("polled stop %d more than one cadence past exact stop %d", oldRes.Interactions, newRes.Interactions)
					}
				})
			}
		}
	}
}

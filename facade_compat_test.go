package ssrank

// This file pins the descriptor redesign against the pre-redesign
// facade: oldFacadeRun is a faithful copy of the retired per-protocol
// run functions (runStable / runCore / runCai / runAware /
// runInterval and their shared polled runRanking path), and the suite
// checks that the redesigned Run returns the same Results across
// every protocol × init × engine combination the old facade
// supported.
//
// The sanctioned difference on the serial engine is the stopping
// discipline: the old facade polled validity every n interactions,
// the redesign stops at the exact hitting time via the descriptor's
// incremental tracker. For silent stop conditions the configuration
// cannot change after the hitting time, so ranks, leader and resets
// must still be byte-identical, and the two step counts must agree up
// to poll rounding: exact ≤ polled < exact + cadence.
//
// Sharded runs are no longer comparable against the old facade at
// all: the old sharded path polled at cadence n, which chopped the
// run into cadence-sized partial batches, while RunUntilExact runs
// the engine's native full batches — a different (equally lawful)
// barrier placement, hence a different trajectory. Sharded combos are
// therefore checked structurally instead: exact convergence, a valid
// rank assignment, a consistent leader, the resolved shard count, and
// byte-identical repeatability.

import (
	"fmt"
	"reflect"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

// oldRunRanking is the pre-redesign serial engine path: polled
// validity on the serial runner.
func oldRunRanking[S any, P sim.Protocol[S]](cfg Config, p P, init []S, valid func([]S) bool) ([]S, int64, error) {
	r := sim.New[S](p, init, cfg.Seed)
	_, err := r.RunUntil(valid, 0, cfg.MaxInteractions)
	return r.States(), r.Steps(), err
}

func oldStableRanks(states []stable.State) []int {
	out := make([]int, len(states))
	for i, s := range states {
		if s.Mode == stable.ModeRanked {
			out[i] = int(s.Rank)
		}
	}
	return out
}

// oldFacadeRun reproduces the pre-redesign Run byte for byte
// (normalization included) for the protocols the old facade knew.
func oldFacadeRun(cfg Config) (Result, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = StableRanking
	}
	if cfg.Init == "" {
		cfg.Init = InitFresh
	}
	if cfg.MaxInteractions == 0 {
		cfg.MaxInteractions = defaultBudget(cfg.N, cfg.Protocol)
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1.0
	}
	wrap := func(res Result, err error) (Result, error) {
		if err != nil {
			return res, fmt.Errorf("ssrank: %s after %d interactions: %w", cfg.Protocol, res.Interactions, ErrNotConverged)
		}
		return res, nil
	}
	switch cfg.Protocol {
	case StableRanking:
		p := stable.New(cfg.N, stable.DefaultParams())
		var init []stable.State
		switch cfg.Init {
		case InitFresh:
			init = p.InitialStates()
		case InitWorstCase:
			init = p.WorstCaseInit()
		case InitRandom:
			init = p.RandomConfig(rng.New(cfg.Seed ^ 0xc0ffee))
		case InitFig3:
			init = p.Fig3Init()
		}
		states, steps, err := oldRunRanking(cfg, p, init, stable.Valid)
		return wrap(Result{
			Ranks:          oldStableRanks(states),
			Interactions:   steps,
			Converged:      err == nil,
			Leader:         stable.LeaderRank1(states),
			Resets:         p.Resets(),
			ResetBreakdown: p.ResetBreakdown(),
		}, err)
	case SpaceEfficient:
		p := core.New(cfg.N, core.DefaultParams())
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), core.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			if s.Kind == core.KindRanked {
				res.Ranks[i] = int(s.Rank)
				if s.Rank == 1 {
					res.Leader = i
				}
			}
		}
		return wrap(res, err)
	case Cai:
		p := cai.New(cfg.N)
		var init []cai.State
		switch cfg.Init {
		case InitFresh:
			init = p.InitialStates()
		case InitRandom:
			rr := rng.New(cfg.Seed ^ 0xc0ffee)
			init = make([]cai.State, cfg.N)
			for i := range init {
				init[i] = cai.State(1 + rr.Intn(cfg.N))
			}
		}
		states, steps, err := oldRunRanking(cfg, p, init, cai.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			res.Ranks[i] = int(s)
			if s == 1 {
				res.Leader = i
			}
		}
		return wrap(res, err)
	case Aware:
		p := aware.New(cfg.N, aware.DefaultParams())
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), aware.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1, Resets: p.Resets()}
		res.Ranks = make([]int, cfg.N)
		for i, s := range states {
			if s.Mode == aware.ModeRanked {
				res.Ranks[i] = int(s.Rank)
				if s.Rank == 1 {
					res.Leader = i
				}
			}
		}
		return wrap(res, err)
	case Interval:
		p := interval.New(cfg.N, cfg.Epsilon)
		states, steps, err := oldRunRanking(cfg, p, p.InitialStates(), interval.Valid)
		res := Result{Interactions: steps, Converged: err == nil, Leader: -1}
		res.Ranks = make([]int, cfg.N)
		for i, rk := range interval.Ranks(states) {
			res.Ranks[i] = int(rk)
			if rk == 1 {
				res.Leader = i
			}
		}
		return wrap(res, err)
	}
	panic("unknown protocol " + cfg.Protocol)
}

func TestFacadeCompat(t *testing.T) {
	combos := []struct {
		p    Protocol
		init Init
	}{
		{StableRanking, InitFresh},
		{StableRanking, InitWorstCase},
		{StableRanking, InitRandom},
		{StableRanking, InitFig3},
		{SpaceEfficient, InitFresh},
		{Cai, InitFresh},
		{Cai, InitRandom},
		{Aware, InitFresh},
		{Interval, InitFresh},
	}
	const n = 48
	for _, c := range combos {
		for _, seed := range []uint64{1, 5} {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/%s/serial/seed=%d", c.p, c.init, seed), func(t *testing.T) {
				cfg := Config{N: n, Protocol: c.p, Init: c.init, Seed: seed}
				oldRes, oldErr := oldFacadeRun(cfg)
				newRes, newErr := Run(cfg)
				if (oldErr == nil) != (newErr == nil) {
					t.Fatalf("convergence disagrees: old err %v, new err %v", oldErr, newErr)
				}
				if oldErr != nil {
					if c.p == SpaceEfficient {
						t.Skip("w.h.p. protocol lost the leader lottery at this seed under both facades")
					}
					t.Fatalf("combination no longer converges: %v", oldErr)
				}
				if !reflect.DeepEqual(newRes.Ranks, oldRes.Ranks) {
					t.Fatalf("ranks differ:\nold %v\nnew %v", oldRes.Ranks, newRes.Ranks)
				}
				if newRes.Leader != oldRes.Leader {
					t.Fatalf("leader differs: old %d, new %d", oldRes.Leader, newRes.Leader)
				}
				if newRes.Resets != oldRes.Resets || !reflect.DeepEqual(newRes.ResetBreakdown, oldRes.ResetBreakdown) {
					t.Fatalf("resets differ: old %d %v, new %d %v",
						oldRes.Resets, oldRes.ResetBreakdown, newRes.Resets, newRes.ResetBreakdown)
				}
				// The redesign stops at the exact hitting time, the old
				// facade at the next poll (cadence n).
				if !newRes.Exact {
					t.Fatal("serial run did not report an exact hitting time")
				}
				if newRes.Shards != 1 {
					t.Fatalf("serial run resolved Shards=%d, want 1", newRes.Shards)
				}
				if newRes.Interactions > oldRes.Interactions {
					t.Fatalf("exact stop %d after polled stop %d", newRes.Interactions, oldRes.Interactions)
				}
				if oldRes.Interactions-newRes.Interactions >= n {
					t.Fatalf("polled stop %d more than one cadence past exact stop %d", oldRes.Interactions, newRes.Interactions)
				}
			})
			t.Run(fmt.Sprintf("%s/%s/shards=4/seed=%d", c.p, c.init, seed), func(t *testing.T) {
				cfg := Config{N: n, Protocol: c.p, Init: c.init, Seed: seed, Shards: 4}
				res, err := Run(cfg)
				if err != nil {
					if c.p == SpaceEfficient {
						t.Skip("w.h.p. protocol lost the leader lottery at this seed")
					}
					t.Fatalf("sharded run did not converge: %v", err)
				}
				if !res.Converged || !res.Exact {
					t.Fatalf("sharded run: Converged=%t Exact=%t, want both true", res.Converged, res.Exact)
				}
				if res.Shards != 4 {
					t.Fatalf("resolved shard count %d, want 4", res.Shards)
				}
				checkConvergedRanks(t, c.p, res)
				again, err := Run(cfg)
				if err != nil || !reflect.DeepEqual(again, res) {
					t.Fatalf("sharded rerun is not byte-identical (err %v):\nfirst  %+v\nsecond %+v", err, res, again)
				}
			})
		}
	}
}

// checkConvergedRanks asserts the structural contract of a converged
// ranking Result: distinct positive ranks within the protocol's rank
// space ([1, n] normally; for Interval the identifier space is
// (1+ε)n rounded up to a power of two) and Leader pointing at the
// rank-1 agent (or -1 when the relaxed range left rank 1 unused).
func checkConvergedRanks(t *testing.T, p Protocol, res Result) {
	t.Helper()
	space := len(res.Ranks)
	if p == Interval {
		for space = 1; space < 2*len(res.Ranks); space *= 2 {
		}
	}
	seen := make(map[int]bool, len(res.Ranks))
	for i, rk := range res.Ranks {
		if rk < 1 || rk > space || seen[rk] {
			t.Fatalf("agent %d holds invalid or duplicate rank %d (space [1, %d])", i, rk, space)
		}
		seen[rk] = true
	}
	wantLeader := -1
	for i, rk := range res.Ranks {
		if rk == 1 {
			wantLeader = i
			break
		}
	}
	if res.Leader != wantLeader {
		t.Fatalf("leader %d inconsistent with ranks (want %d)", res.Leader, wantLeader)
	}
}

package ssrank

import (
	"fmt"

	"ssrank/internal/sim/replicate"
	"ssrank/internal/stats"
)

// ReplicateOptions parameterize Replicate.
type ReplicateOptions struct {
	// Trials is the replication count — the ceiling when Precision is
	// set, the exact count otherwise. Required (≥ 1).
	Trials int
	// Workers bounds the replication worker pool: 0 means one worker
	// per CPU, 1 forces serial execution. Results are bit-identical
	// at every setting (the engine commits trials in index order).
	Workers int
	// Precision, when > 0, stops replicating early: as soon as the
	// 95% CI half-width of the convergence time (over the committed
	// converged trials) falls below Precision·|mean|. The stop
	// decision is a pure function of the committed prefix, so the
	// outcome stays independent of Workers.
	Precision float64
	// OnTrial, when non-nil, receives every trial as it commits — in
	// trial order, on the caller's goroutine. committed is the number
	// of trials committed so far (trial+1). Observational only.
	OnTrial func(trial, committed int, res Result)
}

// Summary aggregates one statistic over the converged trials of a
// replication (Welford accumulation via stats.Running). N = 0 leaves
// the moments NaN.
type Summary struct {
	// N is the number of trials the statistic aggregates.
	N int
	// Mean, StdDev and CI95 are the sample mean, the sample standard
	// deviation, and the 95% confidence half-width of the mean.
	Mean, StdDev, CI95 float64
	// Min and Max bound the observed values.
	Min, Max float64
}

// Replication reports a completed replication sweep.
type Replication struct {
	// Results holds every committed trial's Result, in trial order.
	// Trial i ran cfg with its seed derived deterministically from
	// (cfg.Seed, i), so any row can be re-run in isolation.
	Results []Result
	// Trials is the number of committed trials (< Options.Trials when
	// Precision stopped the stream early).
	Trials int
	// Converged counts the trials that reached the stop condition.
	Converged int
	// Interactions summarizes the convergence times of the converged
	// trials.
	Interactions Summary
	// Resets summarizes the self-healing reset counts of the
	// converged trials.
	Resets Summary
}

// Replicate runs cfg Trials times across the deterministic parallel
// replication engine (internal/sim/replicate): per-trial seeds derive
// from (cfg.Seed, trial) only and results commit in trial order, so
// the Replication is bit-identical at every Workers setting. Budget
// exhaustion in a trial is not an error — the trial commits with
// Converged = false and is excluded from the summaries.
func Replicate(cfg Config, opt ReplicateOptions) (Replication, error) {
	d, cfg, err := normalize(cfg)
	if err != nil {
		return Replication{}, err
	}
	if opt.Trials < 1 {
		return Replication{}, fmt.Errorf("ssrank: ReplicateOptions.Trials must be >= 1, got %d", opt.Trials)
	}
	if opt.Precision < 0 {
		return Replication{}, fmt.Errorf("ssrank: ReplicateOptions.Precision must be >= 0, got %v", opt.Precision)
	}

	// One Welford accumulator shared between the precision stop rule
	// and the final summary: both read the same committed prefix.
	var acc stats.Running
	var lo, hi float64
	stream := replicate.Stream[Result]{Workers: opt.Workers, Trials: opt.Trials, Root: cfg.Seed}
	stream.OnCommit = func(c replicate.Commit[Result]) {
		if c.Result.Converged {
			v := float64(c.Result.Interactions)
			if acc.N() == 0 || v < lo {
				lo = v
			}
			if acc.N() == 0 || v > hi {
				hi = v
			}
			acc.Add(v)
		}
		if opt.OnTrial != nil {
			opt.OnTrial(c.Trial, c.Committed, c.Result)
		}
	}
	if opt.Precision > 0 {
		policy := replicate.Precision{Rel: opt.Precision}
		stream.Stop = func(replicate.Commit[Result]) bool { return policy.Met(&acc) }
	}

	results := replicate.ReplicateStream(stream, func(_ int, seed uint64) Result {
		c := cfg
		c.Seed = seed
		// cfg is vetted, so the only error left is budget exhaustion,
		// which the Result itself reports (Converged = false).
		res, _ := d.run(c)
		return res
	})

	rep := Replication{Results: results, Trials: len(results)}
	var resets stats.Running
	var rlo, rhi float64
	for _, r := range results {
		if !r.Converged {
			continue
		}
		rep.Converged++
		v := float64(r.Resets)
		if resets.N() == 0 || v < rlo {
			rlo = v
		}
		if resets.N() == 0 || v > rhi {
			rhi = v
		}
		resets.Add(v)
	}
	rep.Interactions = summarize(&acc, lo, hi)
	rep.Resets = summarize(&resets, rlo, rhi)
	return rep, nil
}

// summarize reads a Welford accumulator out into a Summary.
func summarize(acc *stats.Running, lo, hi float64) Summary {
	s := Summary{N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), CI95: acc.CI95Half()}
	if s.N > 0 {
		s.Min, s.Max = lo, hi
	} else {
		s.Min, s.Max = s.Mean, s.Mean // NaN
	}
	return s
}

package ssrank

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ssrank/internal/ckpt"
	"ssrank/internal/sim/shard"
)

// checkpointCut returns a mid-run cut point for the given config:
// arbitrary on the serial engine (any interaction boundary is a valid
// cut), batch-aligned on the sharded engine (the trajectory depends on
// where barriers fall, so only barrier-aligned cuts preserve
// Run-equivalence — see shard.BatchPeriod).
func checkpointCut(cfg Config) int64 {
	if cfg.Shards > 1 {
		return 3 * int64(shard.BatchPeriod(cfg.N))
	}
	return 1037
}

// TestCheckpointSplitRunEquivalence is the tentpole guarantee: for
// every registered protocol, on both in-place engines, a run
// interrupted at step k, checkpointed, resumed in a fresh Simulation
// and driven to completion is byte-identical — final ranks, exact
// hitting time, reset counters, full Result — to the uninterrupted
// run, which in turn matches Run(cfg).
func TestCheckpointSplitRunEquivalence(t *testing.T) {
	for _, engine := range []struct {
		name   string
		shards int
	}{{"serial", 1}, {"sharded", 4}} {
		for _, proto := range Protocols() {
			engine, proto := engine, proto
			t.Run(engine.name+"/"+string(proto), func(t *testing.T) {
				cfg := Config{N: 64, Protocol: proto, Seed: 3, Shards: engine.shards}
				base, err := Run(cfg)
				if err != nil {
					if errors.Is(err, ErrNotConverged) {
						t.Skipf("%s did not converge on this seed", proto)
					}
					t.Fatal(err)
				}
				budget := base.Config.MaxInteractions

				// The uninterrupted Simulation must match Run exactly.
				whole, err := NewSimulation(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !whole.RunUntilStable(budget) {
					t.Fatal("uninterrupted simulation did not stabilize")
				}
				if got := whole.Result(); !reflect.DeepEqual(got, base) {
					t.Fatalf("uninterrupted Simulation diverged from Run:\nsim %+v\nrun %+v", got, base)
				}

				// Interrupt at k, checkpoint, resume, finish.
				split, err := NewSimulation(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if k := checkpointCut(split.Config()); !split.RunUntilStable(k) {
					data, err := split.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					resumed, err := ResumeSimulation(cfg, data)
					if err != nil {
						t.Fatal(err)
					}
					split = resumed
					if !split.RunUntilStable(budget) {
						t.Fatal("resumed simulation did not stabilize")
					}
				}
				if got := split.Result(); !reflect.DeepEqual(got, base) {
					t.Fatalf("split run diverged from uninterrupted run:\nsplit %+v\nrun   %+v", got, base)
				}

				// Checkpointing the terminal state round-trips too: the
				// recorded exact hitting time survives serialization.
				data, err := split.Checkpoint()
				if err != nil {
					t.Fatal(err)
				}
				reloaded, err := ResumeSimulation(cfg, data)
				if err != nil {
					t.Fatal(err)
				}
				if got := reloaded.Result(); !reflect.DeepEqual(got, base) {
					t.Fatalf("terminal checkpoint diverged:\nreloaded %+v\nrun      %+v", got, base)
				}
			})
		}
	}
}

// TestCheckpointCanonicalBytes pins that the encoding is canonical:
// resuming a checkpoint and immediately checkpointing again reproduces
// the identical byte string, for every protocol on both engines.
func TestCheckpointCanonicalBytes(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, proto := range Protocols() {
			cfg := Config{N: 64, Protocol: proto, Seed: 9, Shards: shards}
			s, err := NewSimulation(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Step(checkpointCut(s.Config()))
			data, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := ResumeSimulation(cfg, data)
			if err != nil {
				t.Fatalf("%s/%d: %v", proto, shards, err)
			}
			again, err := resumed.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("%s/%d shards: resume+checkpoint changed the bytes (%d vs %d)", proto, shards, len(data), len(again))
			}
		}
	}
}

// TestCheckpointStateRoundTrip verifies the restored simulation holds
// exactly the captured configuration before any further execution —
// snapshot, interaction count, instrumentation counters.
func TestCheckpointStateRoundTrip(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := Config{N: 48, Protocol: proto, Seed: 5}
		s, err := NewSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Step(2500)
		data, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		r, err := ResumeSimulation(cfg, data)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := r.Interactions(), s.Interactions(); got != want {
			t.Fatalf("%s: restored %d interactions, want %d", proto, got, want)
		}
		if got, want := r.Snapshot(), s.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: restored snapshot diverged:\ngot  %+v\nwant %+v", proto, got, want)
		}
		if got, want := r.ResetBreakdown(), s.ResetBreakdown(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: restored reset breakdown %v, want %v", proto, got, want)
		}
	}
}

// TestCheckpointFaultStreamSurvives pins that the fault-injection
// stream position is part of the checkpoint: the same sequence of
// fault calls after a resume draws the same agents an uninterrupted
// handle would draw.
func TestCheckpointFaultStreamSurvives(t *testing.T) {
	cfg := Config{N: 64, Seed: 11}
	a, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Step(1000)
	if err := a.Corrupt(5); err != nil { // advance the fault stream
		t.Fatal(err)
	}
	data, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResumeSimulation(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	as, ad, err := a.Duplicate()
	if err != nil {
		t.Fatal(err)
	}
	bs, bd, err := b.Duplicate()
	if err != nil {
		t.Fatal(err)
	}
	if as != bs || ad != bd {
		t.Fatalf("fault stream diverged after resume: (%d,%d) vs (%d,%d)", as, ad, bs, bd)
	}
}

// TestResumeSimulationRejects covers the identity and integrity
// checks: a checkpoint only resumes under the configuration it was
// taken from, and malformed bytes fail loudly instead of decoding into
// a plausible state.
func TestResumeSimulationRejects(t *testing.T) {
	cfg := Config{N: 64, Seed: 3}
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1000)
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		cfg  Config
	}{
		{"wrong seed", Config{N: 64, Seed: 4}},
		{"wrong n", Config{N: 32, Seed: 3}},
		{"wrong protocol", Config{N: 64, Seed: 3, Protocol: Cai}},
		{"wrong shards", Config{N: 64, Seed: 3, Shards: 4}},
		{"message network", Config{N: 64, Seed: 3, Scheduler: SchedulerUniform}},
	}
	for _, tc := range bad {
		if _, err := ResumeSimulation(tc.cfg, data); err == nil {
			t.Errorf("%s: resume accepted a mismatched checkpoint", tc.name)
		}
	}

	if _, err := ResumeSimulation(cfg, data[:len(data)-3]); err == nil {
		t.Error("truncated checkpoint resumed without error")
	}
	if _, err := ResumeSimulation(cfg, append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("checkpoint with trailing garbage resumed without error")
	}
	mangled := append([]byte(nil), data...)
	mangled[1] ^= 0xff
	if _, err := ResumeSimulation(cfg, mangled); err == nil {
		t.Error("mangled magic resumed without error")
	}

	// Message-network simulations refuse to checkpoint in the first
	// place.
	ms, err := NewSimulation(Config{N: 64, Seed: 3, Scheduler: SchedulerRing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Checkpoint(); err == nil {
		t.Error("message-network simulation produced a checkpoint")
	}
}

// TestResumeRejectsRetiredShardV1 pins the engine-kind versioning: a
// blob carrying the retired pre-alias sharded layout (kind 1) names a
// trajectory this build's scheduler cannot reproduce, so resume must
// refuse it with a targeted message — not decode it into a plausible
// but different run. The blob is forged from a current sharded
// checkpoint by locating the engine-kind byte through a header re-parse
// (position, not guesswork) and rewriting it to the retired kind.
func TestResumeRejectsRetiredShardV1(t *testing.T) {
	cfg := Config{N: 64, Seed: 3, Shards: 4}
	s, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1024)
	data, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Walk the header exactly as ResumeSimulation does; what remains
	// starts at the engine-kind uvarint.
	r := ckpt.NewReader(data)
	r.Expect([]byte("sscp"))
	r.Uvarint()    // version
	_ = r.String() // protocol
	_ = r.String() // init
	r.Uvarint()    // n
	r.U64()        // seed
	r.F64()        // epsilon
	r.Uvarint()    // shards
	for i := 0; i < 4; i++ {
		r.U64() // fault stream
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	kindOff := len(data) - r.Remaining()
	if data[kindOff] != ckptKindShard {
		t.Fatalf("engine kind byte is %d, want %d", data[kindOff], ckptKindShard)
	}

	forged := append([]byte(nil), data...)
	forged[kindOff] = ckptKindShardV1
	_, err = ResumeSimulation(cfg, forged)
	if err == nil {
		t.Fatal("resume accepted a retired v1 sharded checkpoint")
	}
	if !strings.Contains(err.Error(), "retired v1 sharded engine layout") {
		t.Fatalf("v1 reject error does not identify the retired layout: %v", err)
	}

	// The unforged blob still resumes: the reject is the kind, not the
	// surgery.
	if _, err := ResumeSimulation(cfg, data); err != nil {
		t.Fatalf("current-kind checkpoint failed to resume: %v", err)
	}
}

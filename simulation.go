package ssrank

import (
	"fmt"
	"math"

	"ssrank/internal/ckpt"
	"ssrank/internal/faults"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
)

// Snapshot is one observation of a Simulation: the derived quantities
// a probe or dashboard wants, extracted through the protocol's
// descriptor at a point in time.
type Snapshot struct {
	// Interactions is the number of interactions executed when the
	// snapshot was taken.
	Interactions int64
	// Ranks holds each agent's current rank (0 = unranked; leader bit
	// for Loose).
	Ranks []int
	// RankedCount is the number of agents currently holding a rank.
	RankedCount int
	// Stable reports whether the configuration currently satisfies
	// the protocol's stop condition.
	Stable bool
	// Leader is the index of the rank-1 agent, or -1.
	Leader int
	// Resets is the protocol's cumulative self-healing reset count.
	Resets int64
	// Rounds is the number of communication rounds executed when the
	// snapshot was taken — message-network simulations only (0 on the
	// in-place engines, mirroring Result.Rounds).
	Rounds int64
	// Probes holds the protocol's registered named observables
	// (StableRanking's "mean_phase"), nil for protocols that register
	// none.
	Probes map[string]float64
}

// Simulation is a stepwise handle on any registered protocol: run a
// while, inspect, corrupt, keep running — the API for fault-injection
// demos, live exploration, and checkpointable long runs. The engine
// follows the normalized Config exactly as Run does: the serial engine
// when the config resolves to one shard, the sharded engine above that
// (stepping is then applied in barrier-synchronized batches, so the
// trajectory additionally depends on where Step calls cut batches —
// stepping in multiples of the engine's batch period keeps it on
// Run's trajectory), or the round-based message network when the
// Config selects a Scheduler or non-zero Faults, in which case
// stepping is round-granular (interaction counts overshoot targets by
// up to one round), RunUntilStable stops are polled, not exact, and
// the simulation is not checkpointable.
type Simulation struct {
	desc  *Descriptor
	cfg   Config
	h     simHandle
	fault *rng.RNG
}

// NewSimulation starts a population described by cfg (protocol, init,
// seed, ε, shard count — MaxInteractions is ignored; budgets are per
// RunUntilStable call).
func NewSimulation(cfg Config) (*Simulation, error) {
	d, cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	h, err := d.newSim(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{desc: d, cfg: cfg, h: h, fault: rng.New(cfg.Seed ^ 0xfa017)}, nil
}

// Protocol returns the protocol this simulation runs.
func (s *Simulation) Protocol() Protocol { return s.desc.Protocol }

// Config returns the canonical configuration the simulation executes
// (Config.Normalized of the Config it was built from).
func (s *Simulation) Config() Config { return s.cfg }

// Result assembles the run's current outcome in Run's terms: ranks,
// interaction count, convergence, and the canonical Config that
// reproduces the run. After a RunUntilStable or Observe call that hit
// the stop condition on an in-place engine, Interactions is the exact
// hitting time and Exact is true, matching Run byte for byte; after
// manual stepping or fault injection the count is the engine position
// and Exact is false even if the configuration happens to be stable.
func (s *Simulation) Result() Result {
	res := s.h.result()
	res.Config = resultConfig(s.cfg)
	return res
}

// Descriptor returns the registered descriptor of the protocol this
// simulation runs (the caller's own copy, see Describe).
func (s *Simulation) Descriptor() *Descriptor { return s.desc.clone() }

// N returns the population size.
func (s *Simulation) N() int { return s.h.n() }

// Step executes k interactions.
func (s *Simulation) Step(k int64) { s.h.step(k) }

// RunUntilStable executes interactions until the protocol's stop
// condition holds, up to maxInteractions (0 = the protocol's default
// budget on top of the interactions already executed). It evaluates
// the condition through the protocol's incremental tracker, so it
// stops at the exact hitting time. It reports whether the population
// stabilized.
func (s *Simulation) RunUntilStable(maxInteractions int64) bool {
	if maxInteractions == 0 {
		maxInteractions = s.defaultCap()
	}
	return s.h.runUntilStable(maxInteractions)
}

// defaultCap is the protocol's default budget on top of the
// interactions already executed, saturating instead of overflowing
// when the registered budget is already clamped to MaxInt64.
func (s *Simulation) defaultCap() int64 {
	done := s.h.interactions()
	budget := s.desc.DefaultBudget(s.h.n())
	if budget > math.MaxInt64-done {
		return math.MaxInt64
	}
	return done + budget
}

// Observe executes interactions until the stop condition holds or
// maxInteractions is reached (0 = the default budget on top of the
// interactions already executed), invoking obs every `every`
// interactions (< 1 = every n), plus once at the start and once at the
// final step. On the serial in-place engine the stop is exact (the
// incremental tracker catches the hitting time mid-window) and
// observation is touch-aware: windows in which no interaction moved a
// tracked projection are skipped, since every projection-derived
// snapshot field would repeat the previous sample. Message-network
// simulations poll per round and sample every window. It reports
// whether the population stabilized.
func (s *Simulation) Observe(every, maxInteractions int64, obs func(Snapshot)) bool {
	if maxInteractions == 0 {
		maxInteractions = s.defaultCap()
	}
	s.h.observe(every, maxInteractions, obs)
	return s.h.stable()
}

// Snapshot captures the current configuration's derived quantities.
func (s *Simulation) Snapshot() Snapshot { return s.h.snapshot() }

// Interactions returns the number of interactions executed so far.
func (s *Simulation) Interactions() int64 { return s.h.interactions() }

// Stable reports whether the current configuration satisfies the
// protocol's stop condition.
func (s *Simulation) Stable() bool { return s.h.stable() }

// Ranks returns each agent's current rank, 0 for unranked agents.
func (s *Simulation) Ranks() []int { return s.h.ranks() }

// RankedCount returns the number of currently ranked agents.
func (s *Simulation) RankedCount() int { return s.h.rankedCount() }

// Leader returns the index of the rank-1 agent, or -1.
func (s *Simulation) Leader() int { return s.h.leader() }

// Resets returns the number of self-healing resets triggered so far
// (0 for protocols without reset instrumentation).
func (s *Simulation) Resets() int64 { return s.h.resets() }

// ResetBreakdown classifies the resets by cause (nil for protocols
// without a breakdown).
func (s *Simulation) ResetBreakdown() map[string]int64 { return s.h.resetBreakdown() }

// Corrupt overwrites k uniformly chosen agents with arbitrary states
// from the protocol's state space — a transient fault burst.
// Self-stabilizing protocols re-stabilize from it (that is their
// defining property); protocols without a registered fault-injection
// primitive return an error.
func (s *Simulation) Corrupt(k int) error {
	if k < 0 || k > s.h.n() {
		return fmt.Errorf("ssrank: cannot corrupt %d of %d agents", k, s.h.n())
	}
	return s.h.corrupt(k, s.fault)
}

// Swap exchanges the states of k uniformly chosen disjoint agent
// pairs — a transient fault that preserves the multiset of states
// (a valid ranking stays a valid ranking, merely re-homed), useful as
// a control against Corrupt. Every protocol supports it: population
// protocols are anonymous, so a state exchange keeps the
// configuration reachable. It errors if 2k exceeds the population.
func (s *Simulation) Swap(k int) error {
	if k < 0 || 2*k > s.h.n() {
		return fmt.Errorf("ssrank: cannot swap %d pairs among %d agents", k, s.h.n())
	}
	s.h.swap(k, s.fault)
	return nil
}

// Duplicate copies the state of one uniformly chosen agent over
// another — the canonical transient fault for ranking protocols (it
// creates a duplicate rank when both agents are ranked) — and returns
// the (source, target) indices. Like Corrupt it is only offered for
// self-stabilizing protocols: the others give no recovery guarantee,
// so a duplicated state can wedge them permanently.
func (s *Simulation) Duplicate() (src, dst int, err error) {
	return s.h.duplicate(s.fault)
}

// simHandle is the type-erased surface of the generic stepwise driver.
type simHandle interface {
	n() int
	step(k int64)
	runUntilStable(maxSteps int64) bool
	observe(every, maxSteps int64, obs func(Snapshot))
	snapshot() Snapshot
	interactions() int64
	stable() bool
	ranks() []int
	rankedCount() int
	leader() int
	resets() int64
	resetBreakdown() map[string]int64
	corrupt(k int, r *rng.RNG) error
	swap(k int, r *rng.RNG)
	duplicate(r *rng.RNG) (src, dst int, err error)
	result() Result
	marshal(w *ckpt.Writer) error
}

// descResult assembles a Result from a driver's current state — the
// one projection path shared by the serial and sharded stepwise
// drivers (Result.Config is stamped by Simulation.Result, which owns
// the canonical Config). hit is the exact hitting time recorded by the
// last uninterrupted stop-condition run, or -1.
func descResult[S any, P any](d proto.Descriptor[S, P], p P, states []S, steps, hit int64, shards int) Result {
	res := Result{
		Ranks:        d.Ranks(states),
		Interactions: steps,
		Converged:    hit >= 0 || d.Valid(states),
		Exact:        hit >= 0,
		Shards:       shards,
		Leader:       d.LeaderOf(states),
	}
	if hit >= 0 {
		res.Interactions = hit
	}
	if d.Resets != nil {
		res.Resets = d.Resets(p)
	}
	if d.ResetBreakdown != nil {
		res.ResetBreakdown = d.ResetBreakdown(p)
	}
	return res
}

// descSnapshot extracts a Snapshot through a protocol's descriptor —
// the one projection path shared by the serial and message-network
// stepwise drivers.
func descSnapshot[S any, P any](d proto.Descriptor[S, P], p P, steps int64, states []S) Snapshot {
	snap := Snapshot{
		Interactions: steps,
		Ranks:        d.Ranks(states),
		RankedCount:  d.RankedCount(states),
		Stable:       d.Valid(states),
		Leader:       d.LeaderOf(states),
	}
	if d.Resets != nil {
		snap.Resets = d.Resets(p)
	}
	if len(d.Probes) > 0 {
		snap.Probes = make(map[string]float64, len(d.Probes))
		for _, pr := range d.Probes {
			snap.Probes[pr.Name] = pr.Fn(p, states)
		}
	}
	return snap
}

// descCorrupt overwrites k uniformly chosen agents with random states
// via the descriptor's fault-injection primitive, erroring for
// protocols that register none.
func descCorrupt[S any, P any](d proto.Descriptor[S, P], p P, states []S, k int, r *rng.RNG) error {
	if d.RandomState == nil {
		return fmt.Errorf("ssrank: protocol %q has no fault-injection primitive (it is not self-stabilizing)", d.Name)
	}
	faults.Corrupt(states, k, r, func(rr *rng.RNG) S { return d.RandomState(p, rr) })
	return nil
}

// descDuplicate copies one uniformly chosen agent's state over
// another, gated — like Corrupt — on the protocol being
// self-stabilizing, since only those guarantee recovery.
func descDuplicate[S any, P any](d proto.Descriptor[S, P], states []S, r *rng.RNG) (int, int, error) {
	if !d.SelfStabilizing {
		return 0, 0, fmt.Errorf("ssrank: protocol %q is not self-stabilizing, duplicating a state can wedge it permanently", d.Name)
	}
	src, dst := faults.Duplicate(states, r)
	return src, dst, nil
}

// simDriver is the generic stepwise driver behind Simulation on the
// serial engine, instantiated per protocol from its descriptor. hit
// remembers the exact hitting time of the last uninterrupted
// stop-condition run (-1 otherwise): manual stepping and fault
// injection invalidate it, since they change the trajectory the hit
// was exact for.
type simDriver[S any, P sim.TouchReporter[S]] struct {
	d   proto.Descriptor[S, P]
	p   P
	r   *sim.Runner[S, P]
	hit int64
}

func newSimDriver[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P]) (simHandle, error) {
	p := d.New(cfg.N)
	init, err := descInit(cfg, d, p)
	if err != nil {
		return nil, err
	}
	return &simDriver[S, P]{d: d, p: p, r: sim.New[S](p, init, cfg.Seed), hit: -1}, nil
}

func (s *simDriver[S, P]) n() int { return s.r.N() }

func (s *simDriver[S, P]) step(k int64) {
	s.hit = -1
	s.r.Run(k)
}

func (s *simDriver[S, P]) runUntilStable(maxSteps int64) bool {
	hit, err := sim.RunUntilCondT(s.r, sim.DescCond(s.d, s.p), maxSteps)
	if err == nil {
		s.hit = hit
	}
	return err == nil
}

func (s *simDriver[S, P]) observe(every, maxSteps int64, obs func(Snapshot)) {
	hit, done := sim.ObserveCondT(s.r, sim.DescCond(s.d, s.p), func(steps int64, states []S) {
		obs(descSnapshot(s.d, s.p, steps, states))
	}, every, maxSteps)
	if done {
		s.hit = hit
	}
}

func (s *simDriver[S, P]) snapshot() Snapshot {
	return descSnapshot(s.d, s.p, s.r.Steps(), s.r.States())
}

func (s *simDriver[S, P]) interactions() int64 { return s.r.Steps() }
func (s *simDriver[S, P]) stable() bool        { return s.d.Valid(s.r.States()) }
func (s *simDriver[S, P]) ranks() []int        { return s.d.Ranks(s.r.States()) }
func (s *simDriver[S, P]) rankedCount() int    { return s.d.RankedCount(s.r.States()) }
func (s *simDriver[S, P]) leader() int         { return s.d.LeaderOf(s.r.States()) }

func (s *simDriver[S, P]) resets() int64 {
	if s.d.Resets == nil {
		return 0
	}
	return s.d.Resets(s.p)
}

func (s *simDriver[S, P]) resetBreakdown() map[string]int64 {
	if s.d.ResetBreakdown == nil {
		return nil
	}
	return s.d.ResetBreakdown(s.p)
}

func (s *simDriver[S, P]) corrupt(k int, r *rng.RNG) error {
	s.hit = -1
	return descCorrupt(s.d, s.p, s.r.States(), k, r)
}

func (s *simDriver[S, P]) swap(k int, r *rng.RNG) {
	s.hit = -1
	faults.Swap(s.r.States(), k, r)
}

func (s *simDriver[S, P]) duplicate(r *rng.RNG) (int, int, error) {
	s.hit = -1
	return descDuplicate(s.d, s.r.States(), r)
}

func (s *simDriver[S, P]) result() Result {
	return descResult(s.d, s.p, s.r.States(), s.r.Steps(), s.hit, 1)
}

func (s *simDriver[S, P]) marshal(w *ckpt.Writer) error {
	if s.d.MarshalState == nil {
		return fmt.Errorf("ssrank: protocol %q does not register state serialization", s.d.Name)
	}
	st := s.r.EngineState()
	w.Uvarint(ckptKindSerial)
	w.Varint(s.hit)
	w.Varint(st.Steps)
	ckpt.WritePairState(w, st.Pairs)
	s.d.MarshalState(s.p, s.r.States(), w)
	return nil
}

// shardSimDriver is the sharded counterpart of simDriver: the generic
// stepwise driver behind Simulation when the normalized Config
// resolves to more than one shard. Control is batch-granular — Step
// and the stop-condition runs advance the engine in
// barrier-synchronized batches, with the final batch of every call
// truncated to the call's budget — so the trajectory is a pure
// function of (seed, shard count, sequence of cut points). Stepping in
// multiples of the engine's batch period keeps the barrier schedule
// identical to an uninterrupted Run, which is what the checkpoint
// layer relies on for split-run equivalence.
type shardSimDriver[S any, P sim.TouchReporter[S]] struct {
	d   proto.Descriptor[S, P]
	p   P
	r   *shard.Runner[S, P]
	hit int64
}

func newShardSimDriver[S any, P sim.TouchReporter[S]](cfg Config, d proto.Descriptor[S, P]) (simHandle, error) {
	p := d.New(cfg.N)
	init, err := descInit(cfg, d, p)
	if err != nil {
		return nil, err
	}
	r := shard.New[S](p, init, cfg.Seed, cfg.Shards, cfg.ShardWorkers)
	return &shardSimDriver[S, P]{d: d, p: p, r: r, hit: -1}, nil
}

func (s *shardSimDriver[S, P]) n() int { return s.r.N() }

func (s *shardSimDriver[S, P]) step(k int64) {
	s.hit = -1
	s.r.Run(k)
}

func (s *shardSimDriver[S, P]) runUntilStable(maxSteps int64) bool {
	hit, err := s.r.RunUntilExact(sim.DescCond(s.d, s.p), maxSteps)
	if err == nil {
		s.hit = hit
	}
	return err == nil
}

// observe samples in windows of `every` interactions, each window
// executed exactly (RunUntilExact re-arms the tracker per window, so a
// mid-window hit stops at the hitting time). Window boundaries cut
// batches, so — as with Step — an observed sharded trajectory matches
// Run's only when `every` is a multiple of the batch period.
func (s *shardSimDriver[S, P]) observe(every, maxSteps int64, obs func(Snapshot)) {
	if every < 1 {
		every = int64(s.r.N())
	}
	obs(s.snapshot())
	for s.r.Steps() < maxSteps {
		next := s.r.Steps() + every
		if next > maxSteps {
			next = maxSteps
		}
		hit, err := s.r.RunUntilExact(sim.DescCond(s.d, s.p), next)
		if err == nil {
			s.hit = hit
			obs(descSnapshot(s.d, s.p, hit, s.r.States()))
			return
		}
		obs(s.snapshot())
	}
}

func (s *shardSimDriver[S, P]) snapshot() Snapshot {
	return descSnapshot(s.d, s.p, s.r.Steps(), s.r.States())
}

func (s *shardSimDriver[S, P]) interactions() int64 { return s.r.Steps() }
func (s *shardSimDriver[S, P]) stable() bool        { return s.d.Valid(s.r.States()) }
func (s *shardSimDriver[S, P]) ranks() []int        { return s.d.Ranks(s.r.States()) }
func (s *shardSimDriver[S, P]) rankedCount() int    { return s.d.RankedCount(s.r.States()) }
func (s *shardSimDriver[S, P]) leader() int         { return s.d.LeaderOf(s.r.States()) }

func (s *shardSimDriver[S, P]) resets() int64 {
	if s.d.Resets == nil {
		return 0
	}
	return s.d.Resets(s.p)
}

func (s *shardSimDriver[S, P]) resetBreakdown() map[string]int64 {
	if s.d.ResetBreakdown == nil {
		return nil
	}
	return s.d.ResetBreakdown(s.p)
}

func (s *shardSimDriver[S, P]) corrupt(k int, r *rng.RNG) error {
	s.hit = -1
	return descCorrupt(s.d, s.p, s.r.States(), k, r)
}

func (s *shardSimDriver[S, P]) swap(k int, r *rng.RNG) {
	s.hit = -1
	faults.Swap(s.r.States(), k, r)
}

func (s *shardSimDriver[S, P]) duplicate(r *rng.RNG) (int, int, error) {
	s.hit = -1
	return descDuplicate(s.d, s.r.States(), r)
}

func (s *shardSimDriver[S, P]) result() Result {
	return descResult(s.d, s.p, s.r.States(), s.r.Steps(), s.hit, s.r.Shards())
}

func (s *shardSimDriver[S, P]) marshal(w *ckpt.Writer) error {
	if s.d.MarshalState == nil {
		return fmt.Errorf("ssrank: protocol %q does not register state serialization", s.d.Name)
	}
	st := s.r.EngineState()
	w.Uvarint(ckptKindShard)
	w.Varint(s.hit)
	w.Varint(st.Steps)
	ckpt.WriteRNGState(w, st.Master)
	w.Uvarint(uint64(len(st.Shards)))
	for i := range st.Shards {
		ckpt.WritePairState(w, st.Shards[i])
	}
	w.Uvarint(uint64(len(st.Classes)))
	for i := range st.Classes {
		ckpt.WriteRNGState(w, st.Classes[i])
	}
	s.d.MarshalState(s.p, s.r.States(), w)
	return nil
}

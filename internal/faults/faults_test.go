package faults

import (
	"math"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/baseline/sudo"
	"ssrank/internal/core"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func TestCorruptCountAndIndices(t *testing.T) {
	r := rng.New(1)
	states := make([]int, 100)
	idx := Corrupt(states, 10, r, func(r *rng.RNG) int { return 1 })
	if len(idx) != 10 {
		t.Fatalf("corrupted %d indices", len(idx))
	}
	seen := map[int]bool{}
	changed := 0
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("index %d corrupted twice", i)
		}
		seen[i] = true
	}
	for _, s := range states {
		changed += s
	}
	if changed != 10 {
		t.Fatalf("%d agents changed, want 10", changed)
	}
}

func TestCorruptZeroIsNoop(t *testing.T) {
	r := rng.New(1)
	states := []int{1, 2, 3}
	Corrupt(states, 0, r, func(r *rng.RNG) int { return 99 })
	if states[0] != 1 || states[1] != 2 || states[2] != 3 {
		t.Fatal("Corrupt(0) changed states")
	}
}

func TestCorruptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Corrupt(make([]int, 3), 4, rng.New(1), func(r *rng.RNG) int { return 0 })
}

func TestSwapPreservesMultiset(t *testing.T) {
	r := rng.New(2)
	states := []int{1, 2, 3, 4, 5, 6}
	sum := 21
	Swap(states, 3, r)
	got := 0
	for _, s := range states {
		got += s
	}
	if got != sum {
		t.Fatalf("multiset changed: sum %d -> %d", sum, got)
	}
}

func TestSwapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Swap(make([]int, 3), 2, rng.New(1))
}

func TestDuplicateCreatesEqualStates(t *testing.T) {
	r := rng.New(3)
	states := []int{10, 20, 30, 40}
	src, dst := Duplicate(states, r)
	if src == dst {
		t.Fatal("src == dst")
	}
	if states[dst] != states[src] {
		t.Fatalf("states[%d]=%d != states[%d]=%d", dst, states[dst], src, states[src])
	}
}

// checkDescRecovery is the recovery property, stated once against the
// descriptor contract: stabilize from the default init, corrupt k
// agents with protocol-drawn random states, and re-stabilize within
// the registered budget. Protocols that are not self-stabilizing (or
// register no RandomState) make no such promise and are skipped — the
// skip itself documents the contract.
func checkDescRecovery[S any, P sim.Protocol[S]](t *testing.T, d proto.Descriptor[S, P], n, k int) {
	t.Helper()
	if !d.SelfStabilizing || d.RandomState == nil {
		t.Skipf("%s does not support corruption (self-stabilizing=%v)", d.Name, d.SelfStabilizing)
	}
	p := d.New(n)
	r := sim.New[S](p, d.Init(p, d.Inits[0], rng.New(11)), 5)
	budget := d.Budget(n)
	if _, err := r.RunUntil(d.Valid, 0, budget); err != nil {
		t.Fatalf("%s: initial stabilization failed: %v", d.Name, err)
	}

	rr := rng.New(42)
	Corrupt(r.States(), k, rr, func(r *rng.RNG) S { return d.RandomState(p, r) })
	if d.Valid(r.States()) {
		t.Skip("corruption happened to preserve validity; nothing to recover")
	}
	if _, err := r.RunUntil(d.Valid, 0, r.Steps()+budget); err != nil {
		t.Fatalf("%s: did not recover from corruption: %v", d.Name, err)
	}
}

// TestRecoveryAfterCorruption is the end-to-end fault-injection
// experiment in miniature (E10), run for every registered protocol
// through its descriptor: stabilize, corrupt a quarter of the
// population, verify re-stabilization within the registered budget.
// The loose protocol's stop is transient (leader uniqueness holds
// w.h.p., not forever), so its polled re-stabilization check bounds
// rather than pins the recovery — which is exactly its contract.
func TestRecoveryAfterCorruption(t *testing.T) {
	const n, k = 32, 8
	t.Run("stable", func(t *testing.T) { checkDescRecovery(t, stable.Describe(), n, k) })
	t.Run("space-efficient", func(t *testing.T) { checkDescRecovery(t, core.Describe(), n, k) })
	t.Run("cai", func(t *testing.T) { checkDescRecovery(t, cai.Describe(), n, k) })
	t.Run("aware", func(t *testing.T) { checkDescRecovery(t, aware.Describe(), n, k) })
	t.Run("interval", func(t *testing.T) { checkDescRecovery(t, interval.Describe(1.0), n, k) })
	t.Run("loose", func(t *testing.T) { checkDescRecovery(t, sudo.Describe(sudo.DefaultTimeoutFactor), n, k) })
}

// TestRecoveryAtScale keeps the original stable-only check at n = 64
// with a generous explicit budget — the flagship protocol's recovery
// is the paper's headline claim and deserves the larger population.
func TestRecoveryAtScale(t *testing.T) {
	const n = 64
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 5)
	budget := int64(2000 * float64(n) * float64(n) * math.Log2(float64(n)))
	if _, err := r.RunUntil(stable.Valid, 0, budget); err != nil {
		t.Fatal("initial stabilization failed")
	}

	rr := rng.New(42)
	Corrupt(r.States(), n/4, rr, p.RandomState)
	if stable.Valid(r.States()) {
		t.Skip("corruption happened to preserve validity; nothing to recover")
	}
	if _, err := r.RunUntil(stable.Valid, 0, r.Steps()+budget); err != nil {
		t.Fatalf("did not recover from corruption: %v", p.ResetBreakdown())
	}
}

func TestSwapKeepsRankingLegal(t *testing.T) {
	// The control experiment: swapping states preserves the permutation,
	// so the protocol must stay silent afterwards.
	const n = 32
	p := stable.New(n, stable.DefaultParams())
	states := make([]stable.State, n)
	for i := range states {
		states[i] = stable.Ranked(int32(i + 1))
	}
	Swap(states, 8, rng.New(7))
	if !stable.Valid(states) {
		t.Fatal("swap broke validity")
	}
	r := sim.New[stable.State](p, states, 8)
	r.Run(int64(10 * n * n))
	if !stable.Valid(r.States()) || p.Resets() != 0 {
		t.Fatalf("protocol disturbed a legal swapped configuration (resets=%d)", p.Resets())
	}
}

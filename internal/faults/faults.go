// Package faults provides transient-fault injection for
// self-stabilization experiments: corrupting a subset of agents of a
// (typically stabilized) population with arbitrary states from the
// protocol's state space — the adversary model of the paper's
// self-stabilization guarantee.
//
// The injectors are generic over the protocol state type; the caller
// supplies a state generator (e.g. stable.(*Protocol).RandomState), so
// the package works for every protocol in this repository.
package faults

import (
	"fmt"

	"ssrank/internal/rng"
)

// Corrupt overwrites k distinct, uniformly chosen agents of states with
// values drawn from random. It mutates states in place and returns the
// corrupted indices (sorted by position in the sampled permutation,
// i.e. unordered). It panics if k is outside [0, len(states)].
func Corrupt[S any](states []S, k int, r *rng.RNG, random func(*rng.RNG) S) []int {
	if k < 0 || k > len(states) {
		panic(fmt.Sprintf("faults: cannot corrupt %d of %d agents", k, len(states)))
	}
	idx := r.Perm(len(states))[:k]
	for _, i := range idx {
		states[i] = random(r)
	}
	return idx
}

// Swap exchanges the states of k uniformly chosen disjoint agent pairs
// — a fault that preserves the multiset of states (e.g. keeps a ranking
// valid), useful as a control: self-stabilizing ranking must remain
// legal under it. It panics if 2k exceeds the population.
func Swap[S any](states []S, k int, r *rng.RNG) {
	if 2*k > len(states) {
		panic(fmt.Sprintf("faults: cannot swap %d pairs among %d agents", k, len(states)))
	}
	idx := r.Perm(len(states))
	for i := 0; i < k; i++ {
		a, b := idx[2*i], idx[2*i+1]
		states[a], states[b] = states[b], states[a]
	}
}

// Duplicate copies the state of one uniformly chosen agent over another
// — the canonical transient fault for ranking protocols (it creates a
// duplicate rank when both are ranked). It returns the (source, target)
// indices.
func Duplicate[S any](states []S, r *rng.RNG) (src, dst int) {
	src, dst = r.Pair(len(states))
	states[dst] = states[src]
	return src, dst
}

package core

import (
	"math"
	"testing"

	"ssrank/internal/leaderelect"
	"ssrank/internal/sim"
)

// budget returns a generous stabilization budget c·n²·log₂ n.
func budget(n int, c float64) int64 {
	return int64(c * float64(n) * float64(n) * math.Log2(float64(n)))
}

func runToValid(t *testing.T, n int, seed uint64) (int64, []State) {
	t.Helper()
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), seed)
	steps, err := r.RunUntil(Valid, 0, budget(n, 40))
	if err != nil {
		le, wait, phase, ranked := CountKinds(r.States())
		t.Fatalf("n=%d seed=%d: no valid ranking after %d steps (le=%d wait=%d phase=%d ranked=%d, contenders=%d)",
			n, seed, steps, le, wait, phase, ranked, contenders(r.States()))
	}
	return steps, r.States()
}

func contenders(states []State) int {
	c := 0
	for i := range states {
		if states[i].Kind == KindLE && states[i].LE.Contender {
			c++
		}
	}
	return c
}

func TestStabilizesToValidRanking(t *testing.T) {
	// The protocol is correct only w.h.p.; at small n the failure
	// probability is a non-negligible constant (the LE substrate can
	// elect two leaders). We therefore require a success majority per
	// n and full validity + silence whenever a run converges.
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		const seeds = 5
		fails := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			p := New(n, DefaultParams())
			r := sim.New[State](p, p.InitialStates(), seed)
			if _, err := r.RunUntil(Valid, 0, budget(n, 40)); err != nil {
				fails++
				continue
			}
			if !Valid(r.States()) {
				t.Fatalf("n=%d seed=%d: RunUntil returned but configuration not valid", n, seed)
			}
			if !Silent(r.States()) {
				t.Fatalf("n=%d seed=%d: valid configuration not silent", n, seed)
			}
		}
		allowed := 2 // small-n slack
		if n >= 32 {
			allowed = 1
		}
		if fails > allowed {
			t.Fatalf("n=%d: %d/%d seeds failed to reach a valid ranking", n, fails, seeds)
		}
	}
}

func TestValidConfigurationIsStable(t *testing.T) {
	// Closure + silence: running further never changes a valid config.
	n := 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 7)
	if _, err := r.RunUntil(Valid, 0, budget(n, 40)); err != nil {
		t.Fatal(err)
	}
	before := r.Snapshot()
	r.Run(int64(n) * int64(n))
	after := r.States()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("agent %d changed state after validity: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestConvergenceRateAcrossSeeds(t *testing.T) {
	// The protocol is correct w.h.p.; for moderate n nearly all seeds
	// must converge within the budget.
	if testing.Short() {
		t.Skip("multi-seed convergence is slow")
	}
	const n, seeds = 64, 30
	fail := 0
	for seed := uint64(100); seed < 100+seeds; seed++ {
		p := New(n, DefaultParams())
		r := sim.New[State](p, p.InitialStates(), seed)
		if _, err := r.RunUntil(Valid, 0, budget(n, 40)); err != nil {
			fail++
		}
	}
	if fail > 2 {
		t.Fatalf("%d/%d seeds failed to reach a valid ranking", fail, seeds)
	}
}

func TestStabilizationTimeOrder(t *testing.T) {
	// Theorem 1 shape: interactions/(n² log₂ n) should not grow with n.
	if testing.Short() {
		t.Skip("shape check is slow")
	}
	norm := func(n int) float64 {
		steps, _ := runToValid(t, n, 1)
		return float64(steps) / (float64(n) * float64(n) * math.Log2(float64(n)))
	}
	small, large := norm(32), norm(256)
	// Allow generous noise for single runs; catching Θ(n³)-like behavior
	// is the point.
	if large > 10*small+5 {
		t.Fatalf("normalized time grew from %.3f (n=32) to %.3f (n=256); not O(n² log n)", small, large)
	}
}

func TestInvariantHoldsThroughoutRun(t *testing.T) {
	n := 48
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 3)
	for i := 0; i < 200; i++ {
		r.Run(int64(n))
		if err := p.CheckInvariant(r.States()); err != nil {
			t.Fatalf("after %d steps: %v", r.Steps(), err)
		}
	}
}

func TestUnawareLeaderUniqueness(t *testing.T) {
	// Throughout a converging run there is at most one waiting agent and
	// at most one ranked agent with rank ≤ width(k) for the minimum
	// phase k present (the unaware leader), barring LE failure.
	n := 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 11)
	for r.Steps() < budget(n, 40) {
		r.Run(int64(n))
		states := r.States()
		_, wait, phase, _ := CountKinds(states)
		if wait > 1 {
			t.Fatalf("step %d: %d waiting agents", r.Steps(), wait)
		}
		if phase == 0 && wait == 0 {
			break
		}
	}
	if !Valid(r.States()) {
		t.Skip("run did not converge for this seed; uniqueness vacuous")
	}
}

func TestRankedAgentsNeverChangeRank(t *testing.T) {
	// Safety: once an agent is ranked, its rank never changes (the
	// protocol is "safe" in the sense of Gąsieniec et al.) — except the
	// leader cycling through 1..width(k), which re-enters waiting.
	// We check the weaker, exact property: ranks > width(1) are final.
	n := 32
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 5)
	final := make(map[int]int32)
	threshold := p.Phases().Width(1) // leader's ranks are ≤ this
	for r.Steps() < budget(n, 40) {
		r.Run(1)
		for i, s := range r.States() {
			if s.Kind != KindRanked || s.Rank <= threshold {
				continue
			}
			if prev, ok := final[i]; ok && prev != s.Rank {
				t.Fatalf("agent %d changed assigned rank %d -> %d", i, prev, s.Rank)
			}
			final[i] = s.Rank
		}
		if Valid(r.States()) {
			break
		}
	}
}

func TestWaitInitMatchesFormula(t *testing.T) {
	for _, tc := range []struct {
		n     int
		cWait float64
		want  int32
	}{
		{256, 2, 16},
		{100, 2, 14},
		{2, 2, 2},
		{1024, 0.5, 5},
	} {
		p := New(tc.n, Params{CWait: tc.cWait})
		if got := p.WaitInit(); got != tc.want {
			t.Errorf("WaitInit(n=%d, c=%v) = %d, want %d", tc.n, tc.cWait, got, tc.want)
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with CWait=0 did not panic")
		}
	}()
	New(8, Params{CWait: 0})
}

func TestInitialStatesAllLeaderElecting(t *testing.T) {
	p := New(17, DefaultParams())
	states := p.InitialStates()
	if len(states) != 17 {
		t.Fatalf("got %d states, want 17", len(states))
	}
	for i, s := range states {
		if s.Kind != KindLE {
			t.Fatalf("agent %d starts as %v, want leader-electing", i, s.Kind)
		}
		if !s.LE.Contender || !s.LE.InLottery {
			t.Fatalf("agent %d LE state not initial: %+v", i, s.LE)
		}
	}
}

func TestLeaderDoneTransitionsToWaiting(t *testing.T) {
	// A done leader interacting with anyone becomes the waiting agent
	// with the full wait counter (Protocol 1 lines 3–6).
	p := New(16, DefaultParams())
	u := State{Kind: KindLE, LE: leaderelect.State{Contender: true, Done: true}}
	v := PhaseState(1)
	p.Transition(&u, &v)
	if u.Kind != KindWait || u.Wait != p.WaitInit() {
		t.Fatalf("done leader became %v, want wait(%d)", u, p.WaitInit())
	}
	if v.Kind != KindPhase || v.Phase != 1 {
		t.Fatalf("partner changed unexpectedly: %v", v)
	}
}

func TestStartRankingEpidemic(t *testing.T) {
	// A non-done LE agent meeting a non-LE agent becomes a phase-1
	// agent (Protocol 1 lines 7–9), in either role.
	p := New(16, DefaultParams())
	le := p.LE()

	u := State{Kind: KindLE, LE: le.InitialState(0)}
	v := WaitState(3)
	p.Transition(&u, &v)
	if u.Kind != KindPhase || u.Phase != 1 {
		t.Fatalf("initiator LE agent became %v, want phase(1)", u)
	}

	u2 := RankedState(7)
	v2 := State{Kind: KindLE, LE: le.InitialState(1)}
	p.Transition(&u2, &v2)
	if v2.Kind != KindPhase || v2.Phase != 1 {
		t.Fatalf("responder LE agent became %v, want phase(1)", v2)
	}
	if u2.Kind != KindRanked || u2.Rank != 7 {
		t.Fatalf("ranked initiator changed: %v", u2)
	}
}

package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestRankingPhaseScript drives Protocol 2 by hand through a complete
// phase for n = 8 and checks every assignment against the paper's
// description of phase 1 (ranks n/2+1..n).
func TestRankingPhaseScript(t *testing.T) {
	const n = 8
	p := New(n, DefaultParams())

	// Start of phase 1: unaware leader with rank 1, everyone else in
	// phase 1 (the C_{1,rank} configuration of Definition 5).
	leader := RankedState(1)
	agents := make([]State, n-1)
	for i := range agents {
		agents[i] = PhaseState(1)
	}

	width := p.Phases().Width(1) // 8 - 4 = 4
	if width != 4 {
		t.Fatalf("width(1) = %d, want 4", width)
	}
	for i := int32(0); i < width; i++ {
		wantRank := p.Phases().F(2) + 1 + i // 5, 6, 7, 8
		becameWaiting := p.Ranking(&leader, &agents[i])
		if agents[i].Kind != KindRanked || agents[i].Rank != wantRank {
			t.Fatalf("assignment %d: agent got %v, want rank(%d)", i, agents[i], wantRank)
		}
		if i < width-1 {
			if becameWaiting || leader.Kind != KindRanked || leader.Rank != i+2 {
				t.Fatalf("assignment %d: leader is %v, want rank(%d)", i, leader, i+2)
			}
		} else {
			// Last rank of a non-final phase: leader enters waiting.
			if !becameWaiting || leader.Kind != KindWait || leader.Wait != p.WaitInit() {
				t.Fatalf("after final assignment leader is %v, want wait(%d)", leader, p.WaitInit())
			}
		}
	}
}

func TestRankingLastPhaseLeaderKeepsRankOne(t *testing.T) {
	const n = 8
	p := New(n, DefaultParams())
	kMax := p.Phases().KMax() // 3
	leader := RankedState(1)
	v := PhaseState(kMax)
	became := p.Ranking(&leader, &v)
	if became {
		t.Fatal("leader entered waiting in the final phase")
	}
	if v.Kind != KindRanked || v.Rank != 2 {
		t.Fatalf("final-phase agent got %v, want rank(2)", v)
	}
	if leader.Kind != KindRanked || leader.Rank != 1 {
		t.Fatalf("leader is %v, want rank(1)", leader)
	}
}

func TestRankingDoesNothingWhenResponderNotPhase(t *testing.T) {
	p := New(16, DefaultParams())
	cases := []struct{ u, v State }{
		{RankedState(3), RankedState(5)},
		{RankedState(3), WaitState(4)},
		{PhaseState(1), RankedState(5)},
		{WaitState(2), RankedState(5)},
		{WaitState(2), WaitState(3)},
	}
	for _, tc := range cases {
		u, v := tc.u, tc.v
		if p.Ranking(&u, &v) {
			t.Errorf("Ranking(%v, %v) reported uBecameWaiting", tc.u, tc.v)
		}
		if u != tc.u || v != tc.v {
			t.Errorf("Ranking(%v, %v) mutated states to (%v, %v)", tc.u, tc.v, u, v)
		}
	}
}

func TestRankingLastRankAdvancesPhase(t *testing.T) {
	// The agent holding rank f_k tells phase-k agents the phase is done
	// (Protocol 2 lines 10–11).
	const n = 16
	p := New(n, DefaultParams())
	fk := p.Phases().F(1) // 16
	u := RankedState(fk)
	v := PhaseState(1)
	p.Ranking(&u, &v)
	if v.Kind != KindPhase || v.Phase != 2 {
		t.Fatalf("phase agent became %v, want phase(2)", v)
	}
	if u.Kind != KindRanked || u.Rank != fk {
		t.Fatalf("rank-f_k agent changed: %v", u)
	}
}

func TestRankingPhaseSaturatesAtKMax(t *testing.T) {
	// DESIGN.md note 3: the increment saturates at ⌈log₂ n⌉ because the
	// state space ends there.
	const n = 16
	p := New(n, DefaultParams())
	kMax := p.Phases().KMax()
	u := RankedState(p.Phases().F(kMax))
	v := PhaseState(kMax)
	p.Ranking(&u, &v)
	if v.Kind != KindPhase || v.Phase != kMax {
		t.Fatalf("phase agent became %v, want saturated phase(%d)", v, kMax)
	}
}

func TestRankingPhaseEpidemicTakesMax(t *testing.T) {
	p := New(64, DefaultParams())
	u, v := PhaseState(3), PhaseState(5)
	p.Ranking(&u, &v)
	if u.Phase != 5 || v.Phase != 5 {
		t.Fatalf("phase epidemic gave (%v, %v), want both phase(5)", u, v)
	}
	u, v = PhaseState(4), PhaseState(2)
	p.Ranking(&u, &v)
	if u.Phase != 4 || v.Phase != 4 {
		t.Fatalf("phase epidemic gave (%v, %v), want both phase(4)", u, v)
	}
}

func TestRankingWaitCountdown(t *testing.T) {
	p := New(16, DefaultParams())
	u := WaitState(2)
	v := PhaseState(1)
	p.Ranking(&u, &v)
	if u.Kind != KindWait || u.Wait != 1 {
		t.Fatalf("after one meeting: %v, want wait(1)", u)
	}
	p.Ranking(&u, &v)
	if u.Kind != KindRanked || u.Rank != 1 {
		t.Fatalf("after countdown: %v, want rank(1)", u)
	}
	if v.Kind != KindPhase {
		t.Fatalf("phase agent changed: %v", v)
	}
}

func TestRankingNonLeaderRankedAgentsInert(t *testing.T) {
	// A ranked agent that is neither the unaware leader (rank ≤ width)
	// nor the last rank of the phase does nothing to a phase agent.
	const n = 16
	p := New(n, DefaultParams())
	width := p.Phases().Width(1) // 8
	fk := p.Phases().F(1)        // 16
	for r := width + 1; r < fk; r++ {
		u := RankedState(r)
		v := PhaseState(1)
		p.Ranking(&u, &v)
		if u != RankedState(r) || v != PhaseState(1) {
			t.Fatalf("rank %d mutated (%v, %v)", r, u, v)
		}
	}
}

// TestPhasesProperties checks the phase-geometry invariants for all n in
// [2, 2048] plus random larger n via testing/quick.
func TestPhasesProperties(t *testing.T) {
	check := func(n int) error {
		p := NewPhases(n)
		kMax := p.KMax()
		if int(kMax) != ceilLog2(n) {
			return errf("n=%d: kMax=%d, want ⌈log₂n⌉=%d", n, kMax, ceilLog2(n))
		}
		if p.F(1) != int32(n) || p.F(kMax+1) != 1 || p.F(kMax) != 2 {
			return errf("n=%d: f₁=%d f_kmax=%d f_{kmax+1}=%d", n, p.F(1), p.F(kMax), p.F(kMax+1))
		}
		total := int32(1) // leader's rank 1
		for k := int32(1); k <= kMax; k++ {
			lo, hi := p.AssignRange(k)
			if hi-lo+1 != p.Width(k) {
				return errf("n=%d k=%d: range [%d,%d] vs width %d", n, k, lo, hi, p.Width(k))
			}
			if p.Width(k) < 1 {
				return errf("n=%d k=%d: empty phase", n, k)
			}
			// The unaware-leader rank range never collides with ranks
			// already assigned: width(k) < f_{k+1}+1.
			if p.Width(k) > p.F(k+1) {
				return errf("n=%d k=%d: width %d exceeds f_{k+1}=%d", n, k, p.Width(k), p.F(k+1))
			}
			total += p.Width(k)
		}
		if total != int32(n) {
			return errf("n=%d: phases assign %d ranks, want %d", n, total, n)
		}
		// Ranges tile [2, n] in descending order.
		expectHi := int32(n)
		for k := int32(1); k <= kMax; k++ {
			lo, hi := p.AssignRange(k)
			if hi != expectHi {
				return errf("n=%d k=%d: hi=%d, want %d", n, k, hi, expectHi)
			}
			expectHi = lo - 1
		}
		if expectHi != 1 {
			return errf("n=%d: ranges do not tile down to 2 (stopped at %d)", n, expectHi+1)
		}
		return nil
	}
	for n := 2; n <= 2048; n++ {
		if err := check(n); err != nil {
			t.Fatal(err)
		}
	}
	f := func(m uint16) bool {
		n := int(m)%1_000_000 + 2
		return check(n) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseOfRank(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 100, 257} {
		p := NewPhases(n)
		for r := int32(2); r <= int32(n); r++ {
			k := p.PhaseOfRank(r)
			lo, hi := p.AssignRange(k)
			if r < lo || r > hi {
				t.Fatalf("n=%d: PhaseOfRank(%d)=%d but range is [%d,%d]", n, r, k, lo, hi)
			}
		}
	}
}

func TestPhasesPanics(t *testing.T) {
	p := NewPhases(8)
	for _, fn := range []func(){
		func() { NewPhases(1) },
		func() { p.F(0) },
		func() { p.F(p.KMax() + 2) },
		func() { p.PhaseOfRank(1) },
		func() { p.PhaseOfRank(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func ceilLog2(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

package core

import "fmt"

// Valid reports whether the configuration is in C_L: every agent is
// ranked and the ranks form a permutation of 1..n.
func Valid(states []State) bool {
	seen := make([]bool, len(states)+1)
	for i := range states {
		s := &states[i]
		if s.Kind != KindRanked || s.Rank < 1 || int(s.Rank) > len(states) || seen[s.Rank] {
			return false
		}
		seen[s.Rank] = true
	}
	return true
}

// RankOf returns the agent's rank, or 0 while unranked — the extractor
// behind the engine's incremental validity condition.
func RankOf(s *State) int {
	if s.Kind != KindRanked {
		return 0
	}
	return int(s.Rank)
}

// Silent reports whether no interaction can change any agent's state.
// For SpaceEfficientRanking this holds exactly when no agent is
// leader-electing and no agent is a phase agent: every rule of
// Protocols 1–2 requires one of those roles. Note that a silent
// configuration is not necessarily valid (the protocol is correct only
// w.h.p.); tests distinguish the two.
func Silent(states []State) bool {
	for i := range states {
		switch states[i].Kind {
		case KindLE, KindPhase:
			return false
		}
	}
	return true
}

// RankedCount returns the number of ranked agents.
func RankedCount(states []State) int {
	c := 0
	for i := range states {
		if states[i].Kind == KindRanked {
			c++
		}
	}
	return c
}

// MeanPhase returns the average of the phase counters over phase agents
// (the red series of Fig. 2). It returns 0 when there are no phase
// agents.
func MeanPhase(states []State) float64 {
	sum, c := 0.0, 0
	for i := range states {
		if states[i].Kind == KindPhase {
			sum += float64(states[i].Phase)
			c++
		}
	}
	if c == 0 {
		return 0
	}
	return sum / float64(c)
}

// CheckInvariant verifies structural well-formedness of a configuration
// with respect to the protocol parameters: every field is inside its
// declared range (the paper's state space is finite; a value outside it
// would mean the implementation left the state space). It returns a
// descriptive error for the first violation found.
func (p *Protocol) CheckInvariant(states []State) error {
	n := int32(p.phases.n)
	for i := range states {
		s := &states[i]
		switch s.Kind {
		case KindRanked:
			if s.Rank < 1 || s.Rank > n {
				return fmt.Errorf("agent %d: rank %d outside [1, %d]", i, s.Rank, n)
			}
		case KindPhase:
			if s.Phase < 1 || s.Phase > p.phases.kMax {
				return fmt.Errorf("agent %d: phase %d outside [1, %d]", i, s.Phase, p.phases.kMax)
			}
		case KindWait:
			if s.Wait < 1 || s.Wait > p.waitInit {
				return fmt.Errorf("agent %d: wait %d outside [1, %d]", i, s.Wait, p.waitInit)
			}
		case KindLE:
			if s.LE.Level < 0 || int(s.LE.Level) > p.le.LevelCap() {
				return fmt.Errorf("agent %d: LE level %d outside [0, %d]", i, s.LE.Level, p.le.LevelCap())
			}
		default:
			return fmt.Errorf("agent %d: invalid kind %d", i, s.Kind)
		}
	}
	return nil
}

// CountKinds tallies the number of agents per role; useful in tests and
// traces.
func CountKinds(states []State) (le, wait, phase, ranked int) {
	for i := range states {
		switch states[i].Kind {
		case KindLE:
			le++
		case KindWait:
			wait++
		case KindPhase:
			phase++
		case KindRanked:
			ranked++
		}
	}
	return le, wait, phase, ranked
}

// DuplicateRanks returns the indices of the first pair of distinct
// agents sharing a rank, or (-1, -1) if ranks are duplicate-free.
func DuplicateRanks(states []State) (int, int) {
	byRank := make(map[int32]int, len(states))
	for i := range states {
		if states[i].Kind != KindRanked {
			continue
		}
		if j, ok := byRank[states[i].Rank]; ok {
			return j, i
		}
		byRank[states[i].Rank] = i
	}
	return -1, -1
}

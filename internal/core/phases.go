// Package core implements the paper's non-self-stabilizing protocols
// SpaceEfficientRanking and Ranking (Protocols 1 and 2, §IV) together
// with the phase geometry f_k shared by all ranking protocols in this
// repository.
//
// SpaceEfficientRanking is a silent population protocol with
// n + Θ(log n) states that reaches a valid ranking in O(n² log n)
// interactions w.h.p. (Theorem 1).
package core

import "fmt"

// Phases captures the rank intervals assigned per phase:
// f₁ = n and f_k = ⌈f_{k-1}/2⌉ for k > 1. Phase k assigns the ranks
// f_{k+1}+1, …, f_k; the unaware leader keeps rank 1 after the final
// phase KMax = ⌈log₂ n⌉.
type Phases struct {
	n int
	// f[k] = f_k for k in 1..KMax+1; f[0] is unused. f[KMax+1] = 1.
	f    []int32
	kMax int32
}

// NewPhases computes the phase geometry for a population of n ≥ 2.
func NewPhases(n int) Phases {
	if n < 2 {
		panic(fmt.Sprintf("core: phases need n >= 2, got %d", n))
	}
	f := []int32{0, int32(n)}
	for f[len(f)-1] > 1 {
		prev := f[len(f)-1]
		f = append(f, (prev+1)/2)
	}
	return Phases{n: n, f: f, kMax: int32(len(f) - 2)}
}

// N returns the population size.
func (p Phases) N() int { return p.n }

// KMax returns the number of phases, ⌈log₂ n⌉.
func (p Phases) KMax() int32 { return p.kMax }

// F returns f_k for 1 ≤ k ≤ KMax+1.
func (p Phases) F(k int32) int32 {
	if k < 1 || int(k) >= len(p.f) {
		panic(fmt.Sprintf("core: F(%d) out of range for n=%d (kMax=%d)", k, p.n, p.kMax))
	}
	return p.f[k]
}

// Width returns the number of ranks assigned in phase k,
// f_k − f_{k+1}. The unaware leader holds ranks 1..Width(k) during
// phase k.
func (p Phases) Width(k int32) int32 { return p.F(k) - p.F(k+1) }

// AssignRange returns the inclusive interval [lo, hi] of ranks assigned
// during phase k: lo = f_{k+1}+1, hi = f_k.
func (p Phases) AssignRange(k int32) (lo, hi int32) {
	return p.F(k+1) + 1, p.F(k)
}

// PhaseOfRank returns the phase during which rank r (2 ≤ r ≤ n) is
// assigned. Rank 1 is never assigned; the leader takes it by waiting
// out the very first phase transition.
func (p Phases) PhaseOfRank(r int32) int32 {
	if r < 2 || int(r) > p.n {
		panic(fmt.Sprintf("core: PhaseOfRank(%d) out of range for n=%d", r, p.n))
	}
	for k := int32(1); k <= p.kMax; k++ {
		if lo, hi := p.AssignRange(k); r >= lo && r <= hi {
			return k
		}
	}
	panic("core: unreachable — rank ranges partition [2, n]")
}

package core

package core

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// Describe returns the protocol's descriptor. SpaceEfficientRanking is
// not self-stabilizing (correct w.h.p. from the fresh start only), so
// the init table is a single entry and there is no fault-injection
// primitive.
func Describe() proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name:  "space-efficient",
		Inits: []string{"fresh"},
		New:   func(n int) *Protocol { return New(n, DefaultParams()) },
		Init: func(p *Protocol, init string, _ *rng.RNG) []State {
			if init == "fresh" {
				return p.InitialStates()
			}
			return nil
		},
		Valid:          Valid,
		Rank:           RankOf,
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Budget:         proto.BudgetN2LogN(3000),
	}
}

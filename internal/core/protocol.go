package core

import (
	"fmt"
	"math"

	"ssrank/internal/leaderelect"
)

// Params are the tunable constants of SpaceEfficientRanking.
type Params struct {
	// CWait is the paper's c_wait: the wait counter starts at
	// ⌈c_wait·log₂ n⌉. The analysis requires a sufficiently large
	// constant (Lemma 4 uses c_wait ≥ 24+48γ); the paper's own
	// simulations use 2, which is also our default.
	CWait float64
}

// DefaultParams mirror the constants of the paper's simulations (§VI).
func DefaultParams() Params { return Params{CWait: 2} }

// Protocol is the non-self-stabilizing protocol SpaceEfficientRanking
// (Protocol 1), delegating to Ranking (Protocol 2) once leader election
// is over. It is immutable and safe to share across runners.
type Protocol struct {
	phases   Phases
	le       *leaderelect.Protocol
	waitInit int32
}

// New builds the protocol for n ≥ 2 agents.
func New(n int, params Params) *Protocol {
	if params.CWait <= 0 {
		panic(fmt.Sprintf("core: CWait must be positive, got %v", params.CWait))
	}
	return &Protocol{
		phases:   NewPhases(n),
		le:       leaderelect.New(n),
		waitInit: waitInit(n, params.CWait),
	}
}

func waitInit(n int, cWait float64) int32 {
	w := int32(math.Ceil(cWait * float64(leaderelect.CeilLog2(n))))
	if w < 1 {
		w = 1
	}
	return w
}

// N returns the population size.
func (p *Protocol) N() int { return p.phases.n }

// Phases exposes the phase geometry.
func (p *Protocol) Phases() Phases { return p.phases }

// WaitInit returns ⌈c_wait·log₂ n⌉, the initial wait counter.
func (p *Protocol) WaitInit() int32 { return p.waitInit }

// LE exposes the leader-election substrate.
func (p *Protocol) LE() *leaderelect.Protocol { return p.le }

// InitialStates returns the paper's initial configuration: every agent
// in the leader-election start state.
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.phases.n)
	for i := range states {
		states[i] = State{Kind: KindLE, LE: p.le.InitialState(i)}
	}
	return states
}

// Transition implements Protocol 1 (SpaceEfficientRanking) with
// initiator u and responder v. It delegates to TransitionT (the body
// is small enough to inline, so callers pay no extra call layer).
func (p *Protocol) Transition(u, v *State) {
	p.TransitionT(u, v)
}

// TransitionT is the Protocol 1 dispatcher, additionally reporting
// which agents' rank projection (RankOf: the rank while KindRanked, 0
// otherwise) changed — the TouchReporter capability behind the
// engine's touch-aware exact stopping. The leader-election and
// epidemic branches move agents between KindLE, KindWait and KindPhase
// only (no ranks exist there), so the report falls out of the ranking
// rules' mutation sites and the no-op majority pays nothing.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	// Lines 1–2: two leader-electing agents run the LE substrate.
	if u.Kind == KindLE && v.Kind == KindLE {
		p.le.Transition(&u.LE, &v.LE)
		// Lines 3–6: a finished leader forgets its LE state and becomes
		// the (unique, w.h.p.) waiting agent.
		if leaderelect.IsDoneLeader(&u.LE) {
			*u = WaitState(p.waitInit)
			return false, false
		}
		if leaderelect.IsDoneLeader(&v.LE) {
			*v = WaitState(p.waitInit)
		}
		return false, false
	}

	// Lines 3–6 also cover a done leader meeting a non-LE agent; the
	// check precedes the start-of-ranking epidemic so the leader is
	// never demoted to a phase agent.
	if u.Kind == KindLE && leaderelect.IsDoneLeader(&u.LE) {
		*u = WaitState(p.waitInit)
		return false, false
	}
	if v.Kind == KindLE && leaderelect.IsDoneLeader(&v.LE) {
		*v = WaitState(p.waitInit)
		return false, false
	}

	// Lines 7–9: one-way epidemic — a leader-electing agent meeting a
	// non-leader-electing agent forgets its LE state and enters phase 1.
	if u.Kind == KindLE {
		*u = PhaseState(1)
		return false, false
	}
	if v.Kind == KindLE {
		*v = PhaseState(1)
		return false, false
	}

	// Lines 10–11: both agents are past leader election.
	_, uTouched, vTouched = p.rankingT(u, v)
	return uTouched, vTouched
}

// Ranking implements Protocol 2 with initiator u and responder v. It is
// exported because Ranking+ (internal/stable) mirrors it as its "base
// protocol" and cross-validation tests drive it directly.
//
// It reports whether u became a waiting agent during the interaction
// (Protocol 4 line 17 needs this).
func (p *Protocol) Ranking(u, v *State) (uBecameWaiting bool) {
	uBecameWaiting, _, _ = p.rankingT(u, v)
	return uBecameWaiting
}

// rankingT is the Protocol 2 transition, reporting rank-projection
// changes from its mutation sites (a rank assigned, the unaware
// leader's rank advancing or being traded for waiting, the waiting
// agent re-entering with rank 1) so the no-op majority reports at zero
// cost.
func (p *Protocol) rankingT(u, v *State) (uBecameWaiting, uTouched, vTouched bool) {
	// Line 1: if v is not a phase agent, do nothing.
	if v.Kind != KindPhase {
		return false, false, false
	}
	switch u.Kind {
	case KindRanked:
		k := v.Phase
		width := p.phases.Width(k)
		switch {
		case u.Rank >= 1 && u.Rank <= width:
			// Lines 4–9: u is the unaware leader for phase k and
			// assigns the next rank of the phase to v.
			*v = RankedState(p.phases.F(k+1) + u.Rank)
			vTouched = true
			if u.Rank < width {
				u.Rank++ // line 7: phase not done; the rank value moved
				uTouched = true
			} else if k < p.phases.kMax {
				// Lines 8–9: end of a non-final phase — the leader
				// forgets its rank and waits out the phase transition.
				*u = WaitState(p.waitInit)
				return true, true, true
			}
			// k = kMax: the leader keeps rank 1 (width(kMax) may exceed
			// 1 only for k < kMax); the protocol is silent hereafter.
		case u.Rank == p.phases.F(k):
			// Lines 10–11: u holds the last rank of v's phase, so phase
			// k is finished; v advances. The phase saturates at kMax
			// because the state space ends there (DESIGN.md note 3).
			if k < p.phases.kMax {
				v.Phase = k + 1
			}
		}
	case KindPhase:
		// Lines 12–14: two phase agents adopt the more advanced phase.
		if u.Phase > v.Phase {
			v.Phase = u.Phase
		} else {
			u.Phase = v.Phase
		}
	case KindWait:
		// Lines 15–19: the waiting agent counts down against phase
		// agents and ultimately re-enters with rank 1.
		u.Wait--
		if u.Wait <= 0 {
			*u = RankedState(1)
			uTouched = true
		}
	}
	return false, uTouched, vTouched
}

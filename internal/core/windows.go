package core

import (
	"ssrank/internal/sim"
)

// WindowKind distinguishes the two alternating regimes the analysis of
// §IV-A tracks: waiting configurations (the leader counts down its
// wait counter, Lemma 6) and ranking configurations (the unaware
// leader assigns the ranks of one phase, Lemma 7).
type WindowKind uint8

const (
	// WindowWaiting is a maximal time span with a waiting agent
	// present.
	WindowWaiting WindowKind = iota + 1
	// WindowRanking is a maximal span between waiting spans in which
	// ranks are being assigned.
	WindowRanking
)

// String implements fmt.Stringer.
func (k WindowKind) String() string {
	if k == WindowWaiting {
		return "waiting"
	}
	return "ranking"
}

// Window is one maximal span of a regime. Phase is 1-based: the j-th
// waiting window precedes phase j's ranking window (Definition 5's
// C_{j,wait} → C_{j,rank} alternation).
type Window struct {
	Kind  WindowKind
	Phase int32
	// Start and End are interaction counts (End exclusive, sampled on
	// the tracking cadence).
	Start, End int64
}

// Duration returns the window length in interactions.
func (w Window) Duration() int64 { return w.End - w.Start }

// TrackWindows runs SpaceEfficientRanking from its initial
// configuration and segments the run into waiting/ranking windows by
// sampling every `every` interactions (< 1 defaults to n). It returns
// the windows and whether the run reached a valid ranking within
// maxSteps. The first window starts when the leader-election phase
// ends (the first sample with a waiting agent).
func TrackWindows(p *Protocol, seed uint64, every, maxSteps int64) ([]Window, bool) {
	r := sim.New[State](p, p.InitialStates(), seed)
	if every < 1 {
		every = int64(p.N())
	}

	var windows []Window
	var cur *Window
	phase := int32(0)

	flush := func(at int64) {
		if cur != nil {
			cur.End = at
			windows = append(windows, *cur)
			cur = nil
		}
	}

	r.Observe(func(steps int64, states []State) {
		_, wait, _, _ := CountKinds(states)
		waiting := wait > 0
		switch {
		case cur == nil && waiting:
			// Leader elected: first waiting window (phase 1).
			phase++
			cur = &Window{Kind: WindowWaiting, Phase: phase, Start: steps}
		case cur == nil:
			// Still in leader election.
		case cur.Kind == WindowWaiting && !waiting:
			flush(steps)
			cur = &Window{Kind: WindowRanking, Phase: phase, Start: steps}
		case cur.Kind == WindowRanking && waiting:
			flush(steps)
			phase++
			cur = &Window{Kind: WindowWaiting, Phase: phase, Start: steps}
		}
	}, every, maxSteps, func(states []State) bool {
		return Valid(states)
	})

	flush(r.Steps())
	return windows, Valid(r.States())
}

// PredictedWaitMean returns the Lemma 6 expectation of the phase-k
// waiting window: the wait counter ⌈c_wait·log₂ n⌉ is decremented on
// meetings with the f_k − 1 phase agents, so
// T_wait ~ NegBin(⌈c_wait log n⌉, (f_k−1)/(n(n−1))) with mean
// ⌈c_wait log n⌉ · n(n−1)/(f_k−1).
func (p *Protocol) PredictedWaitMean(k int32) float64 {
	n := float64(p.phases.n)
	fk := float64(p.phases.F(k))
	return float64(p.waitInit) * n * (n - 1) / (fk - 1)
}

// PredictedRankMean returns the Lemma 7 expectation of the phase-k
// ranking window: the i-th assignment waits Geom((f_k−i)/(n(n−1))), so
// the mean is Σ_{i=1..width(k)} n(n−1)/(f_k−i).
func (p *Protocol) PredictedRankMean(k int32) float64 {
	n := float64(p.phases.n)
	fk := p.phases.F(k)
	width := p.phases.Width(k)
	sum := 0.0
	for i := int32(1); i <= width; i++ {
		sum += n * (n - 1) / float64(fk-i)
	}
	return sum
}

package core

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// EncodeAgent appends one agent's state field-by-field, the
// leader-election sub-state inlined — the per-agent unit of
// MarshalState's slab section, shared with the distributed wire layer
// so the two encodings cannot drift (proto.Descriptor.EncodeAgent).
func EncodeAgent(p *Protocol, s *State, w *ckpt.Writer) {
	w.Uvarint(uint64(s.Kind))
	w.Varint(int64(s.Rank))
	w.Varint(int64(s.Phase))
	w.Varint(int64(s.Wait))
	w.Uvarint(uint64(s.LE.Coin))
	w.Bool(s.LE.Contender)
	w.Bool(s.LE.InLottery)
	w.Varint(int64(s.LE.Level))
	w.Varint(int64(s.LE.SigBits))
	w.Varint(int64(s.LE.Sig))
	w.Varint(int64(s.LE.MaxLevel))
	w.Varint(int64(s.LE.MaxSig))
	w.Bool(s.LE.Done)
	w.Varint(int64(s.LE.DoneCtr))
}

// DecodeAgent decodes one agent written by EncodeAgent; errors stick
// in r.
func DecodeAgent(p *Protocol, r *ckpt.Reader) State {
	var s State
	s.Kind = Kind(r.Uvarint())
	s.Rank = int32(r.Int())
	s.Phase = int32(r.Int())
	s.Wait = int32(r.Int())
	s.LE.Coin = uint8(r.Uvarint())
	s.LE.Contender = r.Bool()
	s.LE.InLottery = r.Bool()
	s.LE.Level = int16(r.Int())
	s.LE.SigBits = int16(r.Int())
	s.LE.Sig = int32(r.Int())
	s.LE.MaxLevel = int16(r.Int())
	s.LE.MaxSig = int32(r.Int())
	s.LE.Done = r.Bool()
	s.LE.DoneCtr = int32(r.Int())
	return s
}

// MarshalState appends the agent slab to w (EncodeAgent per agent in
// agent order). The protocol itself is immutable, so the slab is the
// whole mutable run state. Field order is the schema
// (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		EncodeAgent(p, &states[i], w)
	}
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.N())
	if r.Err() == nil && n != p.N() {
		return nil, fmt.Errorf("core: checkpoint holds %d agents, protocol expects %d", n, p.N())
	}
	states := make([]State, n)
	for i := range states {
		states[i] = DecodeAgent(p, r)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return states, nil
}

package core

import (
	"fmt"

	"ssrank/internal/leaderelect"
)

// Kind identifies which of the four mutually exclusive roles an agent is
// in. The paper's state space is the disjoint union of the four roles'
// variables (§IV): each agent has exactly one of qLE, waitCount, phase,
// or rank defined at any time.
type Kind uint8

const (
	// KindLE marks a leader-electing agent (qLE ≠ ⊥).
	KindLE Kind = iota + 1
	// KindWait marks a waiting agent (waitCount ≠ ⊥).
	KindWait
	// KindPhase marks a phase agent (phase ≠ ⊥).
	KindPhase
	// KindRanked marks a ranked agent (rank ≠ ⊥).
	KindRanked
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindLE:
		return "leader-electing"
	case KindWait:
		return "waiting"
	case KindPhase:
		return "phase"
	case KindRanked:
		return "ranked"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// State is the per-agent state of SpaceEfficientRanking. Exactly one of
// the role-specific fields is meaningful, selected by Kind.
type State struct {
	Kind Kind
	// Rank is the agent's rank in 1..n (KindRanked).
	Rank int32
	// Phase is the agent's saved phase in 1..⌈log₂ n⌉ (KindPhase).
	Phase int32
	// Wait is the remaining wait counter in 1..⌈c_wait·log₂ n⌉
	// (KindWait).
	Wait int32
	// LE is the leader-election sub-state (KindLE).
	LE leaderelect.State
}

// RankedState returns a ranked-agent state.
func RankedState(rank int32) State { return State{Kind: KindRanked, Rank: rank} }

// PhaseState returns a phase-agent state.
func PhaseState(phase int32) State { return State{Kind: KindPhase, Phase: phase} }

// WaitState returns a waiting-agent state.
func WaitState(wait int32) State { return State{Kind: KindWait, Wait: wait} }

// String renders the state compactly for traces and test failures.
func (s State) String() string {
	switch s.Kind {
	case KindLE:
		return fmt.Sprintf("LE{contender=%t done=%t lvl=%d}", s.LE.Contender, s.LE.Done, s.LE.Level)
	case KindWait:
		return fmt.Sprintf("wait(%d)", s.Wait)
	case KindPhase:
		return fmt.Sprintf("phase(%d)", s.Phase)
	case KindRanked:
		return fmt.Sprintf("rank(%d)", s.Rank)
	default:
		return fmt.Sprintf("invalid(%d)", uint8(s.Kind))
	}
}

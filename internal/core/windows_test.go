package core

import (
	"math"
	"testing"
)

func TestTrackWindowsAlternation(t *testing.T) {
	const n = 128
	p := New(n, DefaultParams())
	budget := int64(200 * float64(n) * float64(n) * math.Log2(float64(n)))
	windows, ok := TrackWindows(p, 3, int64(n), budget)
	if !ok {
		t.Skip("run did not converge for this seed (w.h.p. caveat)")
	}
	if len(windows) < 2 {
		t.Fatalf("only %d windows", len(windows))
	}
	// Windows alternate waiting, ranking, waiting, ... and phases are
	// 1, 1, 2, 2, 3, 3, ...
	for i, w := range windows {
		wantKind := WindowWaiting
		if i%2 == 1 {
			wantKind = WindowRanking
		}
		if w.Kind != wantKind {
			t.Fatalf("window %d kind = %v, want %v", i, w.Kind, wantKind)
		}
		if wantPhase := int32(i/2 + 1); w.Phase != wantPhase {
			t.Fatalf("window %d phase = %d, want %d", i, w.Phase, wantPhase)
		}
		if w.Duration() < 0 {
			t.Fatalf("window %d has negative duration", i)
		}
		if i > 0 && w.Start != windows[i-1].End {
			t.Fatalf("window %d not contiguous: start %d, previous end %d", i, w.Start, windows[i-1].End)
		}
	}
	// A clean run has exactly kMax waiting windows and kMax ranking
	// windows (the final phase's ranking window ends at validity).
	kMax := int(p.Phases().KMax())
	if len(windows) != 2*kMax {
		t.Fatalf("got %d windows, want %d (2·kMax)", len(windows), 2*kMax)
	}
}

func TestWaitingWindowsGrowGeometrically(t *testing.T) {
	// Lemma 6: the phase-k waiting window scales like 2^k·n·log n. The
	// last window must dwarf the first.
	const n = 256
	p := New(n, DefaultParams())
	budget := int64(200 * float64(n) * float64(n) * math.Log2(float64(n)))
	windows, ok := TrackWindows(p, 9, int64(n), budget)
	if !ok {
		t.Skip("run did not converge for this seed")
	}
	var first, last int64 = -1, -1
	for _, w := range windows {
		if w.Kind != WindowWaiting {
			continue
		}
		if first < 0 {
			first = w.Duration()
		}
		last = w.Duration()
	}
	if first <= 0 || last <= 0 {
		t.Fatal("missing waiting windows")
	}
	if last < 8*first {
		t.Fatalf("waiting windows did not grow: first %d, last %d", first, last)
	}
}

func TestPredictedMeansShape(t *testing.T) {
	p := New(1024, DefaultParams())
	kMax := p.Phases().KMax()
	// Wait means double per phase (up to ceil effects).
	for k := int32(1); k < kMax; k++ {
		a, b := p.PredictedWaitMean(k), p.PredictedWaitMean(k+1)
		if b < 1.5*a {
			t.Fatalf("wait mean did not grow at k=%d: %.0f -> %.0f", k, a, b)
		}
	}
	// Ranking means stay within a small constant factor of 2n² ln 2.
	n2 := float64(1024) * 1024
	for k := int32(1); k <= kMax; k++ {
		m := p.PredictedRankMean(k)
		if m < 0.5*n2 || m > 4*n2 {
			t.Fatalf("rank mean at k=%d out of band: %.3g (n² = %.3g)", k, m, n2)
		}
	}
}

func TestWindowKindString(t *testing.T) {
	if WindowWaiting.String() != "waiting" || WindowRanking.String() != "ranking" {
		t.Fatal("WindowKind strings wrong")
	}
}

package rng

import (
	"fmt"
	"math/bits"
)

// AliasTable samples from a fixed discrete distribution in O(1) per
// draw via the Walker/Vose alias method. It is built once from integer
// weights and is immutable afterwards, so one table may be shared by
// any number of goroutines drawing from their own generators.
//
// Construction and sampling are integer-exact: the table stores, per
// column, a 64-bit acceptance threshold derived from the weights by
// exact 128-bit division — no floating point enters at any stage, so a
// table built from the same weights samples identically on every
// platform. One 64-bit draw yields one sample: the high bits select a
// column, the low bits accept it or fall through to its alias. The
// only departures from the ideal law are the ~K/2⁶⁴ column-selection
// and 2⁻⁶⁴ threshold granularity, far below anything a statistical
// test can resolve.
//
// The sharded scheduler builds its table over the shard-pair classes
// of the interaction multinomial (internal/sim/shard); the weights are
// ordered-pair counts, so the table is exactly the classification the
// two-draw scheduler performed per slot, at a fraction of the cost.
type AliasTable struct {
	k     uint64
	thr   []uint64 // accept column i when the draw's low bits are < thr[i]
	alias []int32
}

// NewAliasTable builds a sampler over classes 0..len(weights)-1 with
// probabilities proportional to the weights. Zero weights are legal
// (the class is never sampled); the total must be positive. It panics
// if any weight·len(weights) overflows uint64 — callers with weights
// near 2⁶⁴ must rescale first (the shard classifier's pair-count
// weights are ≤ n², so n ≤ 10⁹ populations clear the bound with room).
func NewAliasTable(weights []uint64) *AliasTable {
	k := uint64(len(weights))
	if k == 0 {
		panic("rng: NewAliasTable needs at least one class")
	}
	var total uint64
	for _, w := range weights {
		if w > 0 && w > (^uint64(0))/k {
			panic("rng: NewAliasTable weight*K overflows uint64")
		}
		s := total + w
		if s < total {
			panic("rng: NewAliasTable total weight overflows uint64")
		}
		total = s
	}
	if total == 0 {
		panic("rng: NewAliasTable needs a positive total weight")
	}

	t := &AliasTable{k: k, thr: make([]uint64, k), alias: make([]int32, k)}

	// Vose's method on the scaled residuals w_i·K measured against the
	// total T: "small" columns (residual < T) take an alias from
	// "large" ones, transferring exactly the deficit. All arithmetic
	// stays in uint64 — exact by the overflow guard above.
	residual := make([]uint64, k)
	small := make([]int32, 0, k)
	large := make([]int32, 0, k)
	for i, w := range weights {
		residual[i] = w * k
		if residual[i] < total {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.alias[s] = l
		// Column l donates T - residual[s] of its mass to s's slot.
		residual[l] -= total - residual[s]
		if residual[l] < total {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers hold residual == T up to rounding: they accept always.
	// Self-alias makes the threshold value irrelevant, so saturation
	// introduces no bias at all.
	for _, i := range small {
		t.alias[i] = i
		t.thr[i] = ^uint64(0)
	}
	for _, i := range large {
		t.alias[i] = i
		t.thr[i] = ^uint64(0)
	}
	// Exact thresholds for the aliased columns: ⌊residual·2⁶⁴/T⌋.
	for i := range t.thr {
		if t.alias[i] != int32(i) {
			q, _ := bits.Div64(residual[i], 0, total)
			t.thr[i] = q
		}
	}
	return t
}

// K returns the number of classes.
func (t *AliasTable) K() int { return int(t.k) }

// Sample maps 64 uniformly random bits to a class: the high bits pick
// a column, the low bits accept it or take its alias.
func (t *AliasTable) Sample(u uint64) int {
	hi, lo := bits.Mul64(u, t.k)
	if lo >= t.thr[hi] {
		return int(t.alias[hi])
	}
	return int(hi)
}

// Draw samples one class using the next value of r.
func (t *AliasTable) Draw(r *RNG) int { return t.Sample(r.Uint64()) }

// CountsInto draws b iid class labels from r and accumulates them into
// counts (which must have exactly K entries) — the count vector is one
// Multinomial(b, p) sample. The xoshiro state stays in registers for
// the whole histogram, so a slot costs one generator step, one 128-bit
// multiply, and a counter increment: this is the coordinator's entire
// per-batch classification work in the sharded engine.
func (t *AliasTable) CountsInto(r *RNG, b int, counts []int32) {
	if uint64(len(counts)) != t.k {
		panic(fmt.Sprintf("rng: CountsInto over %d counts, table has %d classes", len(counts), t.k))
	}
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	thr, alias, k := t.thr, t.alias, t.k
	for ; b > 0; b-- {
		v := bits.RotateLeft64(s1*5, 7) * 9
		tt := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= tt
		s3 = bits.RotateLeft64(s3, 45)
		hi, lo := bits.Mul64(v, k)
		if lo >= thr[hi] {
			hi = uint64(alias[hi])
		}
		counts[hi]++
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Uniform is a sampler over [0, n) with the Lemire rejection threshold
// precomputed at construction — the draw-for-draw equivalent of
// RNG.Intn without the per-call modulo. Batch units that draw many
// indices over a fixed range (the cross-class endpoint draws of the
// sharded engine) pay the division once instead of per draw. The zero
// value is not usable; construct with NewUniform.
type Uniform struct {
	n, thresh uint64
}

// NewUniform returns a sampler over [0, n). It panics if n <= 0.
func NewUniform(n int) Uniform {
	if n <= 0 {
		panic("rng: NewUniform called with n <= 0")
	}
	un := uint64(n)
	return Uniform{n: un, thresh: -un % un}
}

// N returns the range size.
func (u Uniform) N() int { return int(u.n) }

// Draw returns a uniformly random int in [0, n), consuming values from
// r. It accepts and rejects exactly the draws RNG.Intn(n) would, so
// the two are stream-interchangeable.
func (u Uniform) Draw(r *RNG) int {
	for {
		hi, lo := bits.Mul64(r.Uint64(), u.n)
		if lo >= u.thresh {
			return int(hi)
		}
	}
}

// FillInto fills dst with iid uniform indices over [0, n), consuming
// values from r in Draw order (element i's draws precede element
// i+1's, so a FillInto is stream-equivalent to len(dst) Draws). The
// xoshiro state stays in registers for the whole fill — the batch
// counterpart of Draw for units that consume many indices per call,
// such as the sharded engine's cross-class endpoint draws.
func (u Uniform) FillInto(r *RNG, dst []int32) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	n, thresh := u.n, u.thresh
	for i := range dst {
		for {
			v := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi, lo := bits.Mul64(v, n)
			if lo >= thresh {
				dst[i] = int32(hi)
				break
			}
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

package rng

import "fmt"

// State returns the generator's full internal state: the four 64-bit
// xoshiro256** words. Together with SetState it makes a stream
// position exportable — a restored generator emits exactly the draws
// the original would have emitted next, Jump-derived block positions
// included (Jump only rewrites the state words, so capturing them
// captures the block).
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState restores a state captured by State. It rejects the all-zero
// state, which is the one fixed point of the generator and cannot have
// been produced by State on a valid generator.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("rng: all-zero state is not a valid xoshiro256** state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
	return nil
}

// PairBatchState is the exportable position of a PairBatch stream. The
// sampler prefetches pairBatchCap pairs per refill, so its position is
// not the source generator's current state alone: the state captured
// here is the generator as it stood *before* the current batch was
// drawn, plus how many of the batch's pairs were consumed. Restoring
// replays the refill — the rejection sampling in refill is
// deterministic, so the replay reproduces both the buffered pairs and
// the post-refill generator state exactly.
type PairBatchState struct {
	// N is the population size the stream samples over; restoration
	// into a sampler of a different size is rejected.
	N int
	// Src is the source generator state at the last refill (the
	// current state if no batch has been drawn yet).
	Src [4]uint64
	// Consumed is the number of pairs consumed from the current batch.
	Consumed int
	// Filled reports whether a batch has been drawn at all.
	Filled bool
}

// State captures the sampler's position for later restoration.
func (pb *PairBatch) State() PairBatchState {
	if pb.m == 0 {
		return PairBatchState{N: int(pb.n), Src: pb.src.State()}
	}
	return PairBatchState{N: int(pb.n), Src: pb.snap, Consumed: pb.i, Filled: true}
}

// SetState restores a position captured by State. The sampler resumes
// emitting exactly the pairs the captured sampler would have emitted
// next.
func (pb *PairBatch) SetState(st PairBatchState) error {
	if st.N != int(pb.n) {
		return fmt.Errorf("rng: PairBatch state is for population %d, sampler has %d", st.N, pb.n)
	}
	if st.Consumed < 0 || st.Consumed > pairBatchCap || (!st.Filled && st.Consumed != 0) {
		return fmt.Errorf("rng: PairBatch state consumed %d of %d is inconsistent", st.Consumed, pairBatchCap)
	}
	if err := pb.src.SetState(st.Src); err != nil {
		return err
	}
	pb.i, pb.m = 0, 0
	if st.Filled {
		pb.refill()
		pb.i = st.Consumed
	}
	return nil
}

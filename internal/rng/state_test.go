package rng

import "testing"

// TestStateKnownAnswer is the known-answer restoration test: a
// generator restored from a captured state emits exactly the next 10⁴
// draws the original emits, from a plain position, a Jump-derived
// block position, and a Clone.
func TestStateKnownAnswer(t *testing.T) {
	const draws = 10_000

	check := func(name string, r *RNG) {
		t.Helper()
		restored := New(0xdead) // unrelated seed, fully overwritten
		if err := restored.SetState(r.State()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < draws; i++ {
			if a, b := r.Uint64(), restored.Uint64(); a != b {
				t.Fatalf("%s: draw %d diverged: %#x vs %#x", name, i, a, b)
			}
		}
	}

	r := New(42)
	for i := 0; i < 123; i++ {
		r.Uint64()
	}
	check("mid-stream", r)

	r.Jump()
	check("post-jump", r) // Jump positions live in the state words

	check("clone", r.Clone()) // Clone and State/SetState must agree
}

// TestPairBatchStateKnownAnswer restores a prefetching pair sampler at
// every interesting position — unfilled, mid-batch, refill boundary,
// fully consumed batch — and requires the next 10⁴ pairs to match the
// original stream exactly.
func TestPairBatchStateKnownAnswer(t *testing.T) {
	const draws = 10_000
	positions := []struct {
		name    string
		consume int
	}{
		{"unfilled", 0},
		{"mid-batch", 137},
		{"refill-boundary", pairBatchCap},
		{"second-batch", pairBatchCap + 313},
	}
	for _, pos := range positions {
		pb := NewPairBatch(New(7), 1000)
		for i := 0; i < pos.consume; i++ {
			pb.Next()
		}
		restored := NewPairBatch(New(0xbeef), 1000)
		if err := restored.SetState(pb.State()); err != nil {
			t.Fatalf("%s: %v", pos.name, err)
		}
		for i := 0; i < draws; i++ {
			a1, b1 := pb.Next()
			a2, b2 := restored.Next()
			if a1 != a2 || b1 != b2 {
				t.Fatalf("%s: pair %d diverged: (%d,%d) vs (%d,%d)", pos.name, i, a1, b1, a2, b2)
			}
		}
	}
}

// TestPairBatchStateWindowAdvance pins that capture composes with the
// Window/Advance batch interface (the engines' path), not just Next:
// restoring mid-window resumes on the identical pair sequence.
func TestPairBatchStateWindowAdvance(t *testing.T) {
	pb := NewPairBatch(New(11), 64)
	as, _ := pb.Window()
	pb.Advance(len(as) - 17) // leave a partial window
	restored := NewPairBatch(New(5), 64)
	if err := restored.SetState(pb.State()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3_000; i++ {
		a1, b1 := pb.Next()
		a2, b2 := restored.Next()
		if a1 != a2 || b1 != b2 {
			t.Fatalf("pair %d diverged after Window/Advance capture: (%d,%d) vs (%d,%d)", i, a1, b1, a2, b2)
		}
	}
}

// TestStateRejects covers the validity checks: the all-zero generator
// state, population mismatches, and out-of-range consumed counts must
// all be rejected.
func TestStateRejects(t *testing.T) {
	if err := New(1).SetState([4]uint64{}); err == nil {
		t.Error("all-zero generator state accepted")
	}
	pb := NewPairBatch(New(1), 100)
	if err := pb.SetState(PairBatchState{N: 99, Src: New(1).State()}); err == nil {
		t.Error("population mismatch accepted")
	}
	if err := pb.SetState(PairBatchState{N: 100, Src: New(1).State(), Consumed: pairBatchCap + 1, Filled: true}); err == nil {
		t.Error("consumed beyond batch capacity accepted")
	}
	if err := pb.SetState(PairBatchState{N: 100, Src: New(1).State(), Consumed: 5, Filled: false}); err == nil {
		t.Error("consumed pairs on an unfilled batch accepted")
	}
}

package rng

import (
	"math"
	"testing"
)

// Known-answer vectors, locked against the implementation (and, for
// the zero seed, against the reference xoshiro256** + splitmix64
// chain: 0x99ec5f36cb75f2b4 is the canonical first output). Any change
// to the generator silently invalidates every recorded experiment, so
// these fail loudly instead.

func TestUint64KnownAnswers(t *testing.T) {
	cases := []struct {
		seed uint64
		want []uint64
	}{
		{0, []uint64{0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c, 0xbba5ad4a1f842e59, 0xffef8375d9ebcaca}},
		{0x5eed, []uint64{0xef33f17055244b74, 0xe1f591112fb5051b, 0xd8ab05640214863a, 0xf985e1f2fb897b03, 0xaf87a5f7e6ce1408, 0x86f28e3a0746ff9e}},
	}
	for _, c := range cases {
		r := New(c.seed)
		for i, want := range c.want {
			if got := r.Uint64(); got != want {
				t.Fatalf("seed %#x draw %d: got %#x want %#x", c.seed, i, got, want)
			}
		}
	}
}

func TestIntnKnownAnswers(t *testing.T) {
	r := New(0x5eed)
	want := []int{934, 882, 846, 974, 685, 527, 305, 422}
	for i, w := range want {
		if got := r.Intn(1000); got != w {
			t.Fatalf("Intn(1000) draw %d: got %d want %d", i, got, w)
		}
	}
}

func TestPairKnownAnswers(t *testing.T) {
	r := New(0x5eed)
	want := [][2]int{{239, 225}, {216, 249}, {175, 134}, {78, 108}, {198, 187}, {44, 173}, {138, 79}, {155, 63}}
	for i, w := range want {
		a, b := r.Pair(256)
		if a != w[0] || b != w[1] {
			t.Fatalf("Pair(256) draw %d: got (%d, %d) want %v", i, a, b, w)
		}
	}
}

func TestJumpKnownAnswers(t *testing.T) {
	r := New(1)
	r.Jump()
	want := []uint64{0x332802f81eaae9d0, 0x02d18d7749b84f96, 0xc3729a527851f63d, 0x4e6d496401657f6d}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("post-Jump draw %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestJumpStreamsDisjointPrefix(t *testing.T) {
	// The jumped stream is the same stream 2¹²⁸ draws later: its
	// prefix must not collide with a long prefix of the original.
	base := New(77)
	jumped := New(77)
	jumped.Jump()
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		seen[base.Uint64()] = true
	}
	for i := 0; i < 4096; i++ {
		if seen[jumped.Uint64()] {
			t.Fatalf("jumped stream repeated a base draw at offset %d", i)
		}
	}
}

func TestJumpBalanced(t *testing.T) {
	// Statistical smoke: the jumped stream is still a healthy
	// generator (bit balance over a large sample).
	r := New(123)
	r.Jump()
	ones := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := r.Uint64()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	mean := float64(ones) / draws
	if math.Abs(mean-32) > 0.5 {
		t.Fatalf("jumped stream mean popcount %.2f, want ≈32", mean)
	}
}

func TestSplitBalanced(t *testing.T) {
	r := New(321)
	s := r.Split()
	ones := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := s.Uint64()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	mean := float64(ones) / draws
	if math.Abs(mean-32) > 0.5 {
		t.Fatalf("split stream mean popcount %.2f, want ≈32", mean)
	}
}

func TestPairBatchMatchesSequentialPair(t *testing.T) {
	// The batch must emit the exact pair sequence of unbatched
	// Pair(n) calls on an identically seeded generator — the property
	// that makes batching invisible to recorded trajectories.
	for _, n := range []int{2, 3, 17, 256, 1000} {
		seq := New(9)
		pb := NewPairBatch(New(9), n)
		for i := 0; i < 3*pairBatchCap; i++ {
			wa, wb := seq.Pair(n)
			ga, gb := pb.Next()
			if ga != wa || gb != wb {
				t.Fatalf("n=%d draw %d: batch (%d, %d) != sequential (%d, %d)", n, i, ga, gb, wa, wb)
			}
		}
	}
}

func TestPairBatchWindowAdvance(t *testing.T) {
	seq := New(4)
	pb := NewPairBatch(New(4), 64)
	consumed := 0
	for consumed < 2*pairBatchCap {
		as, bs := pb.Window()
		if len(as) == 0 || len(as) != len(bs) {
			t.Fatalf("window sizes: %d, %d", len(as), len(bs))
		}
		// Consume a ragged prefix to exercise partial Advance.
		k := len(as)/3 + 1
		for i := 0; i < k; i++ {
			wa, wb := seq.Pair(64)
			if int(as[i]) != wa || int(bs[i]) != wb {
				t.Fatalf("draw %d: window (%d, %d) != sequential (%d, %d)", consumed+i, as[i], bs[i], wa, wb)
			}
		}
		pb.Advance(k)
		consumed += k
	}
}

func TestPairBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPairBatch(n=1) did not panic")
		}
	}()
	NewPairBatch(New(1), 1)
}

func TestPairBatchAdvancePanicsBeyondWindow(t *testing.T) {
	pb := NewPairBatch(New(1), 8)
	pb.Window()
	defer func() {
		if recover() == nil {
			t.Fatal("Advance beyond window did not panic")
		}
	}()
	pb.Advance(pairBatchCap + 1)
}

// BenchmarkRNGPair locks in the batching win: Next amortizes state
// loads and Lemire threshold setup across a 512-pair refill.
func BenchmarkRNGPair(b *testing.B) {
	pb := NewPairBatch(New(1), 1024)
	var sink int
	for i := 0; i < b.N; i++ {
		a, c := pb.Next()
		sink += a + c
	}
	_ = sink
}

// BenchmarkRNGPairUnbatched is the before-side of the comparison.
func BenchmarkRNGPairUnbatched(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		a, c := r.Pair(1024)
		sink += a + c
	}
	_ = sink
}

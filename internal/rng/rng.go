// Package rng provides a small, fast, deterministic random number
// generator used by the population-protocol scheduler.
//
// The generator is xoshiro256** seeded via splitmix64. It is not
// cryptographically secure; it is chosen for speed (the scheduler draws
// two random agent indices per interaction, and experiments run billions
// of interactions) and for reproducibility: a simulation run is a pure
// function of (initial configuration, seed).
package rng

import "math/bits"

// RNG is a xoshiro256** pseudo-random number generator.
//
// The zero value is not a valid generator; use New. RNG is not safe for
// concurrent use; give each goroutine its own instance (see Split).
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded deterministically from seed.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state as if freshly created with New(seed).
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// Guard against the all-zero state, which is a fixed point.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids the
// modulo bias without a division in the common case.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Pair returns a uniformly random ordered pair (a, b) of distinct
// integers in [0, n). It panics if n < 2.
func (r *RNG) Pair(n int) (a, b int) {
	if n < 2 {
		panic("rng: Pair called with n < 2")
	}
	a = r.Intn(n)
	b = r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Bool returns a fair random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, as in
// math/rand.Shuffle (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new generator derived from, but statistically
// independent of, r. Use it to hand independent streams to worker
// goroutines while keeping the whole experiment a function of one seed.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Clone returns an independent copy of r that will emit exactly the
// same stream from the current state onward. Combined with Jump it
// carves one seed into guaranteed-disjoint streams without disturbing
// the original generator:
//
//	base := rng.New(seed)
//	base.Jump()
//	stream0 := base.Clone() // block [2¹²⁸, 2·2¹²⁸)
//	base.Jump()
//	stream1 := base.Clone() // block [2·2¹²⁸, 3·2¹²⁸)
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Jump advances the generator by 2¹²⁸ steps, equivalent to 2¹²⁸ calls
// to Uint64. It partitions one stream into non-overlapping
// subsequences of length 2¹²⁸: repeated Jumps yield generators whose
// streams are guaranteed disjoint (unlike Split, which is disjoint
// only statistically).
func (r *RNG) Jump() {
	// Jump polynomial for xoshiro256** (Blackman & Vigna).
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

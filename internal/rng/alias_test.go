package rng

import (
	"math"
	"testing"
)

// TestAliasMatchesTwoDrawMultinomial is the law test behind the sharded
// engine's classification rewrite: per-class counts drawn through the
// alias table must follow the same multinomial the retired two-draw
// scheme induced — draw a uniform ordered pair of distinct agents, then
// classify it by the shard partition. The expected class probabilities
// are derived here by brute-force enumeration over all ordered pairs
// under the floor partition (an independent derivation from the weight
// formulas the table is built from), and the alias histogram is tested
// against them with a chi-square statistic at a ~6σ critical value, so
// a law break fails loudly while random flake stays out of CI.
func TestAliasMatchesTwoDrawMultinomial(t *testing.T) {
	const (
		n = 60
		S = 4
		b = 200_000
	)
	shardOf := func(i int) int { return ((i+1)*S - 1) / n }

	// Enumerate the two-draw law: every ordered pair of distinct agents
	// is equally likely; classify each by its endpoints' shards. Class
	// ids: intra s → s; cross s→t (s<t forward) → S + idx; reverse →
	// S + C + idx, matching the engine's counts layout.
	idx := func(s, u int) int { return s*(2*S-s-1)/2 + (u - s - 1) }
	const C = S * (S - 1) / 2
	pairs := make([]int64, S+2*C)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			si, sj := shardOf(i), shardOf(j)
			switch {
			case si == sj:
				pairs[si]++
			case si < sj:
				pairs[S+idx(si, sj)]++
			default:
				pairs[S+C+idx(sj, si)]++
			}
		}
	}

	// The engine's weights for the same partition.
	weights := make([]uint64, S+2*C)
	for s := 0; s < S; s++ {
		lo, hi := s*n/S, (s+1)*n/S
		ns := uint64(hi - lo)
		weights[s] = ns * (ns - 1)
		for u := s + 1; u < S; u++ {
			nt := uint64((u+1)*n/S - u*n/S)
			weights[S+idx(s, u)] = ns * nt
			weights[S+C+idx(s, u)] = ns * nt
		}
	}
	var total int64
	for k, w := range weights {
		if int64(w) != pairs[k] {
			t.Fatalf("class %d: weight %d, two-draw enumeration counts %d pairs", k, w, pairs[k])
		}
		total += pairs[k]
	}
	if total != int64(n)*int64(n-1) {
		t.Fatalf("enumerated %d ordered pairs, want %d", total, int64(n)*int64(n-1))
	}

	counts := make([]int32, len(weights))
	NewAliasTable(weights).CountsInto(New(0xa11a5), b, counts)

	// Chi-square against the enumerated probabilities. Critical value
	// via the Wilson–Hilferty cube approximation at z = 6 (~1e-9 one
	// sided): flake-free for CI, tight enough that swapping any two
	// class weights fails by orders of magnitude.
	chi2 := 0.0
	for k := range counts {
		exp := float64(b) * float64(pairs[k]) / float64(total)
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
	}
	df := float64(len(weights) - 1)
	crit := df * math.Pow(1-2/(9*df)+6*math.Sqrt(2/(9*df)), 3)
	if chi2 > crit {
		t.Fatalf("chi-square %.1f exceeds the %.1f critical value (df=%v): alias counts do not follow the two-draw multinomial", chi2, crit, df)
	}
}

// TestCountsIntoMatchesDraw pins CountsInto as a pure histogram of
// Draw: same seed, same number of draws, identical counts and an
// identical generator state afterwards — the property that lets the
// engine checkpoint a bare generator state across batches.
func TestCountsIntoMatchesDraw(t *testing.T) {
	weights := []uint64{3, 0, 41, 7, 1, 22}
	tab := NewAliasTable(weights)
	const b = 4096

	r1, r2 := New(99), New(99)
	want := make([]int32, len(weights))
	for i := 0; i < b; i++ {
		want[tab.Draw(r1)]++
	}
	got := make([]int32, len(weights))
	tab.CountsInto(r2, b, got)

	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("class %d: CountsInto %d, Draw loop %d", k, got[k], want[k])
		}
	}
	if r1.State() != r2.State() {
		t.Fatalf("generator states diverged: %v vs %v", r1.State(), r2.State())
	}
	if got[1] != 0 {
		t.Fatalf("zero-weight class sampled %d times", got[1])
	}
}

// TestAliasDegenerate covers the edge shapes Vose construction must
// survive: a single class, all-equal weights (every column saturates),
// and an extreme skew.
func TestAliasDegenerate(t *testing.T) {
	one := NewAliasTable([]uint64{5})
	for u := uint64(0); u < 10; u++ {
		if got := one.Sample(u * 0x1111111111111111); got != 0 {
			t.Fatalf("single-class table sampled %d", got)
		}
	}

	eq := NewAliasTable([]uint64{7, 7, 7, 7})
	counts := make([]int32, 4)
	eq.CountsInto(New(3), 40_000, counts)
	for k, c := range counts {
		if c < 9_000 || c > 11_000 {
			t.Fatalf("equal-weight class %d drew %d of 40000", k, c)
		}
	}

	skew := NewAliasTable([]uint64{1, 1 << 40})
	counts = make([]int32, 2)
	skew.CountsInto(New(4), 100_000, counts)
	if counts[0] > 3 {
		t.Fatalf("2⁻⁴⁰-probability class drew %d of 100000", counts[0])
	}
}

// TestUniformDrawMatchesIntn pins the stream interchangeability Uniform
// documents: Draw consumes and maps generator values exactly as
// RNG.Intn, and FillInto is a batch of Draws.
func TestUniformDrawMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 1000, 1 << 20} {
		u := NewUniform(n)
		r1, r2 := New(uint64(n)), New(uint64(n))
		for i := 0; i < 200; i++ {
			if a, b := u.Draw(r1), r2.Intn(n); a != b {
				t.Fatalf("n=%d draw %d: Uniform %d, Intn %d", n, i, a, b)
			}
		}

		r3 := New(uint64(n))
		dst := make([]int32, 200)
		u.FillInto(r3, dst)
		r4 := New(uint64(n))
		for i, v := range dst {
			if want := u.Draw(r4); int32(want) != v {
				t.Fatalf("n=%d fill slot %d: FillInto %d, Draw %d", n, i, v, want)
			}
		}
		if r3.State() != r4.State() {
			t.Fatalf("n=%d: FillInto and Draw loop left different generator states", n)
		}
	}
}

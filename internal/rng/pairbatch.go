package rng

import (
	"math"
	"math/bits"
)

// pairBatchCap is the number of pairs produced per refill. Large
// enough to amortize the state load/store and threshold setup, small
// enough to stay in L1 (two 512-entry int32 arrays = 4 KiB).
const pairBatchCap = 512

// PairBatch draws uniformly random ordered pairs of distinct agents
// over a fixed population size n, in batches. It produces exactly the
// same sequence of pairs as repeated calls to RNG.Pair(n) on the same
// generator, but much faster: each refill keeps the xoshiro state in
// registers for the whole batch and reuses the Lemire rejection
// thresholds for n and n−1 instead of recomputing them per draw
// (cf. the batched-share generation in package brng, SNIPPETS.md).
//
// The batch draws ahead of consumption, so the underlying RNG must not
// be shared with other consumers while a PairBatch is attached to it.
// PairBatch is not safe for concurrent use.
type PairBatch struct {
	src              *RNG
	n                uint64
	threshN, threshM uint64 // Lemire rejection thresholds for n and n−1
	i, m             int
	// snap is the source generator state just before the current batch
	// was drawn — what State exports so a restored sampler can replay
	// the refill deterministically (see PairBatchState).
	snap [4]uint64
	a, b [pairBatchCap]int32
}

// NewPairBatch returns a batched pair sampler over [0, n) drawing from
// src. It panics if n < 2 or n exceeds the int32 agent-index range.
func NewPairBatch(src *RNG, n int) *PairBatch {
	if n < 2 {
		panic("rng: NewPairBatch called with n < 2")
	}
	if n > math.MaxInt32 {
		panic("rng: NewPairBatch population exceeds int32 index range")
	}
	un, um := uint64(n), uint64(n-1)
	return &PairBatch{
		src:     src,
		n:       un,
		threshN: -un % un,
		threshM: -um % um,
	}
}

// N returns the population size the batch samples over.
func (pb *PairBatch) N() int { return int(pb.n) }

// Next returns the next uniformly random ordered pair (a, b), a ≠ b.
func (pb *PairBatch) Next() (a, b int) {
	if pb.i == pb.m {
		pb.refill()
	}
	a, b = int(pb.a[pb.i]), int(pb.b[pb.i])
	pb.i++
	return a, b
}

// Window returns the unconsumed remainder of the current batch as
// parallel initiator/responder index slices (refilling first if the
// batch is exhausted), always at least one pair. The caller must
// report how many pairs it consumed via Advance before the next
// Window or Next call.
func (pb *PairBatch) Window() (a, b []int32) {
	if pb.i == pb.m {
		pb.refill()
	}
	return pb.a[pb.i:pb.m], pb.b[pb.i:pb.m]
}

// Advance consumes k pairs of the window returned by Window.
func (pb *PairBatch) Advance(k int) {
	if k < 0 || pb.i+k > pb.m {
		panic("rng: PairBatch.Advance beyond window")
	}
	pb.i += k
}

// refill generates pairBatchCap pairs in one pass, holding the xoshiro
// state in locals. Draw-for-draw it performs the identical rejection
// procedure as Pair → Intn, so the emitted pair sequence matches the
// unbatched API exactly.
func (pb *PairBatch) refill() {
	r := pb.src
	pb.snap = [4]uint64{r.s0, r.s1, r.s2, r.s3}
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	un, um := pb.n, pb.n-1
	tn, tm := pb.threshN, pb.threshM
	for k := 0; k < pairBatchCap; k++ {
		var hi, lo uint64
		for {
			v := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi, lo = bits.Mul64(v, un)
			if lo >= tn {
				break
			}
		}
		a := int32(hi)
		for {
			v := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi, lo = bits.Mul64(v, um)
			if lo >= tm {
				break
			}
		}
		b := int32(hi)
		if b >= a {
			b++
		}
		pb.a[k], pb.b[k] = a, b
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
	pb.i, pb.m = 0, pairBatchCap
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-squared goodness of fit over 10 buckets.
	const n, draws = 10, 100000
	r := New(99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi2 = %.2f, distribution not uniform: %v", chi2, counts)
	}
}

func TestPairDistinctAndUniform(t *testing.T) {
	const n, draws = 5, 200000
	r := New(5)
	counts := make(map[[2]int]int)
	for i := 0; i < draws; i++ {
		a, b := r.Pair(n)
		if a == b {
			t.Fatalf("Pair returned equal elements %d", a)
		}
		if a < 0 || a >= n || b < 0 || b >= n {
			t.Fatalf("Pair out of range: (%d, %d)", a, b)
		}
		counts[[2]int{a, b}]++
	}
	pairs := n * (n - 1)
	expected := float64(draws) / float64(pairs)
	for p, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Errorf("pair %v count %d deviates from expected %.1f", p, c, expected)
		}
	}
	if len(counts) != pairs {
		t.Fatalf("observed %d distinct ordered pairs, want %d", len(counts), pairs)
	}
}

func TestPairPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pair(1) did not panic")
		}
	}()
	New(1).Pair(1)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBoolBalanced(t *testing.T) {
	r := New(13)
	heads := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-draws/2) > 4*math.Sqrt(draws/4) {
		t.Fatalf("Bool heads = %d of %d, not balanced", heads, draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(21)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("Split stream matched parent %d/100 draws", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPair(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		a, c := r.Pair(1024)
		sink += a + c
	}
	_ = sink
}

func TestCloneEmitsSameStreamWithoutCoupling(t *testing.T) {
	r := New(42)
	r.Uint64() // advance off the seed state
	c := r.Clone()
	for i := 0; i < 64; i++ {
		if a, b := r.Uint64(), c.Uint64(); a != b {
			t.Fatalf("draw %d: clone diverged (%x vs %x)", i, a, b)
		}
	}
	// Advancing the clone further must not disturb the original:
	// both generators own independent state.
	c2 := r.Clone()
	for i := 0; i < 16; i++ {
		c2.Uint64()
	}
	want := New(42)
	want.Uint64()
	for i := 0; i < 64; i++ {
		want.Uint64()
	}
	if r.Uint64() != want.Uint64() {
		t.Fatal("advancing a clone perturbed the original generator")
	}
}

func TestCloneJumpDerivedStreamsDisjointPrefix(t *testing.T) {
	// The shard engine hands block s+1 of a seed to shard s via
	// Jump+Clone; the blocks must at least look disjoint (no collision
	// within a prefix — a full-overlap bug would collide immediately).
	base := New(7)
	seen := map[uint64]int{}
	for s := 0; s < 4; s++ {
		base.Jump()
		c := base.Clone()
		for i := 0; i < 1024; i++ {
			v := c.Uint64()
			if prev, ok := seen[v]; ok {
				t.Fatalf("streams %d and %d share value %x", prev, s, v)
			}
			seen[v] = s
		}
	}
}

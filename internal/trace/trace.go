// Package trace records time series of configuration-level metrics
// during a run — the machinery behind the paper's Fig. 2-style plots
// and the cmd/ssrank -trace flag.
//
// A Recorder is generic over the protocol state type; the caller
// registers named probes (functions from configuration to float64) and
// samples them on a fixed interaction cadence via the engine's
// Observe hook.
package trace

import (
	"fmt"
	"strings"
)

// Probe measures one scalar of a configuration.
type Probe[S any] struct {
	// Name labels the CSV column.
	Name string
	// Fn computes the metric.
	Fn func(states []S) float64
}

// Recorder accumulates probe samples.
type Recorder[S any] struct {
	probes  []Probe[S]
	steps   []int64
	samples [][]float64 // samples[i][j] = probe j at sample i
}

// NewRecorder returns a recorder over the given probes. It panics on
// an empty or duplicate-named probe set.
func NewRecorder[S any](probes ...Probe[S]) *Recorder[S] {
	if len(probes) == 0 {
		panic("trace: need at least one probe")
	}
	seen := map[string]bool{}
	for _, p := range probes {
		if p.Name == "" || p.Fn == nil {
			panic("trace: probe needs a name and a function")
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("trace: duplicate probe %q", p.Name))
		}
		seen[p.Name] = true
	}
	return &Recorder[S]{probes: probes}
}

// Observe samples every probe; pass it to sim.Runner.Observe.
func (r *Recorder[S]) Observe(steps int64, states []S) {
	row := make([]float64, len(r.probes))
	for j, p := range r.probes {
		row[j] = p.Fn(states)
	}
	r.steps = append(r.steps, steps)
	r.samples = append(r.samples, row)
}

// Len returns the number of samples taken.
func (r *Recorder[S]) Len() int { return len(r.steps) }

// Steps returns the interaction count of sample i.
func (r *Recorder[S]) Steps(i int) int64 { return r.steps[i] }

// Value returns probe j's value at sample i.
func (r *Recorder[S]) Value(i, j int) float64 { return r.samples[i][j] }

// Series extracts one probe's full series by name. The second return
// is false if no probe has that name.
func (r *Recorder[S]) Series(name string) ([]float64, bool) {
	for j, p := range r.probes {
		if p.Name == name {
			out := make([]float64, len(r.samples))
			for i := range r.samples {
				out[i] = r.samples[i][j]
			}
			return out, true
		}
	}
	return nil, false
}

// CSV renders the recording with an `interactions` column first.
func (r *Recorder[S]) CSV() string {
	var b strings.Builder
	b.WriteString("interactions")
	for _, p := range r.probes {
		b.WriteByte(',')
		b.WriteString(p.Name)
	}
	b.WriteByte('\n')
	for i, row := range r.samples {
		fmt.Fprintf(&b, "%d", r.steps[i])
		for _, v := range row {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"

	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func TestRecorderCollectsSeries(t *testing.T) {
	rec := NewRecorder[int](
		Probe[int]{Name: "sum", Fn: func(ss []int) float64 {
			s := 0
			for _, v := range ss {
				s += v
			}
			return float64(s)
		}},
		Probe[int]{Name: "first", Fn: func(ss []int) float64 { return float64(ss[0]) }},
	)
	rec.Observe(0, []int{1, 2})
	rec.Observe(10, []int{3, 4})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d", rec.Len())
	}
	if rec.Steps(1) != 10 || rec.Value(1, 0) != 7 || rec.Value(0, 1) != 1 {
		t.Fatalf("samples wrong: %v %v", rec.Value(1, 0), rec.Value(0, 1))
	}
	sum, ok := rec.Series("sum")
	if !ok || len(sum) != 2 || sum[0] != 3 || sum[1] != 7 {
		t.Fatalf("Series(sum) = %v, %t", sum, ok)
	}
	if _, ok := rec.Series("nope"); ok {
		t.Fatal("unknown series found")
	}
}

func TestRecorderCSV(t *testing.T) {
	rec := NewRecorder[int](Probe[int]{Name: "x", Fn: func(ss []int) float64 { return 1.5 }})
	rec.Observe(0, []int{0})
	rec.Observe(5, []int{0})
	want := "interactions,x\n0,1.5\n5,1.5\n"
	if got := rec.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRecorderPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRecorder[int]() },
		func() { NewRecorder[int](Probe[int]{Name: ""}) },
		func() {
			p := Probe[int]{Name: "a", Fn: func([]int) float64 { return 0 }}
			NewRecorder[int](p, p)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRecorderWithEngine(t *testing.T) {
	// End to end: trace a StableRanking run's ranked count; the series
	// must be non-decreasing between resets and end at n.
	const n = 48
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 3)
	rec := NewRecorder[stable.State](
		Probe[stable.State]{Name: "ranked", Fn: func(ss []stable.State) float64 {
			return float64(stable.RankedCount(ss))
		}},
	)
	r.Observe(rec.Observe, int64(n), int64(5000*n*n), func(ss []stable.State) bool {
		return stable.Valid(ss)
	})
	if rec.Len() < 2 {
		t.Fatal("too few samples")
	}
	series, _ := rec.Series("ranked")
	if series[len(series)-1] != n {
		t.Fatalf("final ranked = %v, want %d", series[len(series)-1], n)
	}
	if !strings.HasPrefix(rec.CSV(), "interactions,ranked\n") {
		t.Fatal("CSV header wrong")
	}
}

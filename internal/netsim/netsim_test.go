package netsim

import (
	"testing"

	"ssrank/internal/baseline/cai"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func TestEquivalenceWithSequentialEngine(t *testing.T) {
	// The defining property: same protocol, same seed ⇒ bit-identical
	// trajectory to sim.Runner.
	const n, steps, seed = 32, 5000, 42

	ps := stable.New(n, stable.DefaultParams())
	seq := sim.New[stable.State](ps, ps.InitialStates(), seed)
	seq.Run(steps)

	pn := stable.New(n, stable.DefaultParams())
	nw := New[stable.State](pn, pn.InitialStates(), seed)
	defer nw.Close()
	nw.Run(steps)

	got := nw.Snapshot()
	want := seq.States()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("agent %d diverged: netsim %v vs sim %v", i, got[i], want[i])
		}
	}
	if ps.Resets() != pn.Resets() {
		t.Fatalf("reset counts diverged: %d vs %d", ps.Resets(), pn.Resets())
	}
}

func TestRunUntilStabilizes(t *testing.T) {
	const n = 16
	p := cai.New(n)
	nw := New[cai.State](p, p.InitialStates(), 7)
	defer nw.Close()
	steps, err := nw.RunUntil(cai.Valid, 0, int64(500*n*n*n))
	if err != nil {
		t.Fatalf("cai did not stabilize on netsim: %v", err)
	}
	if steps != nw.Steps() {
		t.Fatalf("steps bookkeeping: %d vs %d", steps, nw.Steps())
	}
	if !cai.Valid(nw.Snapshot()) {
		t.Fatal("final snapshot not a permutation")
	}
}

func TestRunUntilBudget(t *testing.T) {
	p := cai.New(8)
	nw := New[cai.State](p, p.InitialStates(), 1)
	defer nw.Close()
	never := func([]cai.State) bool { return false }
	if _, err := nw.RunUntil(never, 10, 100); err != ErrBudgetExhausted {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

func TestRunUntilImmediate(t *testing.T) {
	p := cai.New(8)
	nw := New[cai.State](p, p.InitialStates(), 1)
	defer nw.Close()
	steps, err := nw.RunUntil(func([]cai.State) bool { return true }, 0, 100)
	if err != nil || steps != 0 {
		t.Fatalf("steps=%d err=%v", steps, err)
	}
}

func TestSnapshotOrderAndLiveness(t *testing.T) {
	p := cai.New(4)
	states := []cai.State{1, 2, 3, 4}
	nw := New[cai.State](p, states, 3)
	defer nw.Close()
	snap := nw.Snapshot()
	for i, s := range snap {
		if s != cai.State(i+1) {
			t.Fatalf("snapshot[%d] = %d", i, s)
		}
	}
	// Snapshots do not consume interactions.
	if nw.Steps() != 0 {
		t.Fatalf("snapshot advanced steps: %d", nw.Steps())
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := cai.New(4)
	nw := New[cai.State](p, p.InitialStates(), 1)
	nw.Close()
	nw.Close() // must not panic or deadlock
}

// TestUseAfterClosePanics pins the shutdown contract: once Close has
// released the agent goroutines, any operation that would message
// them must panic with a clear diagnosis instead of deadlocking on a
// channel nobody reads.
func TestUseAfterClosePanics(t *testing.T) {
	for _, tc := range []struct {
		op   string
		call func(nw *Network[cai.State])
	}{
		{"Step", func(nw *Network[cai.State]) { nw.Step() }},
		{"Run", func(nw *Network[cai.State]) { nw.Run(1) }},
		{"Snapshot", func(nw *Network[cai.State]) { nw.Snapshot() }},
		{"RunUntil", func(nw *Network[cai.State]) {
			nw.RunUntil(func([]cai.State) bool { return true }, 0, 1)
		}},
	} {
		t.Run(tc.op, func(t *testing.T) {
			p := cai.New(4)
			nw := New[cai.State](p, p.InitialStates(), 1)
			nw.Close()
			defer func() {
				want := "netsim: " + tc.op + " after Close"
				if got := recover(); got != want {
					t.Fatalf("panic = %v, want %q", got, want)
				}
			}()
			tc.call(nw)
			t.Fatalf("%s after Close did not panic", tc.op)
		})
	}
}

func TestNewPanicsOnTinyPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[cai.State](cai.New(2), make([]cai.State, 1), 1)
}

func BenchmarkNetsimStep(b *testing.B) {
	p := cai.New(64)
	nw := New[cai.State](p, p.InitialStates(), 1)
	defer nw.Close()
	b.ResetTimer()
	nw.Run(int64(b.N))
}

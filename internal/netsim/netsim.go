// Package netsim executes population protocols with one goroutine per
// agent, exchanging states over channels — the "agents as processes"
// runtime the population model abstracts (sensor nodes, molecules,
// …). A central matchmaker draws the same uniform random ordered pairs
// as the sequential engine; agent state is owned exclusively by its
// goroutine and crosses only through rendezvous channels, so the
// runtime is data-race-free by construction.
//
// Because the matchmaker draws pairs from the same generator as
// sim.Runner and transitions are deterministic, a netsim run is
// bit-identical to a sim run with the same seed — checked by the
// equivalence test. The package exists for fidelity to the distributed
// reading of the model (and as an example of a concurrent deployment),
// not for speed: channel rendezvous costs roughly two orders of
// magnitude more than an in-place array update.
package netsim

import (
	"errors"
	"fmt"
	"sync"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// ErrBudgetExhausted mirrors sim.ErrBudgetExhausted.
var ErrBudgetExhausted = errors.New("netsim: interaction budget exhausted before stop condition held")

type msgKind uint8

const (
	msgInitiate msgKind = iota + 1
	msgRespond
	msgReport
	msgStop
)

type message[S any] struct {
	kind msgKind
	// peer carries the responder's state to the initiator and the
	// updated state back (msgInitiate / msgRespond).
	peer chan S
	// report receives the agent's current state (msgReport).
	report chan S
}

// Network runs a protocol over goroutine agents. It is not safe for
// concurrent use by multiple goroutines; Close must be called to
// release the agents.
type Network[S any] struct {
	proto  sim.Protocol[S]
	inbox  []chan message[S]
	rng    *rng.RNG
	steps  int64
	wg     sync.WaitGroup
	closed bool
}

// New starts one goroutine per initial state. The caller must Close
// the network when done.
func New[S any](p sim.Protocol[S], states []S, seed uint64) *Network[S] {
	if len(states) < 2 {
		panic(fmt.Sprintf("netsim: population needs at least 2 agents, got %d", len(states)))
	}
	nw := &Network[S]{
		proto: p,
		inbox: make([]chan message[S], len(states)),
		rng:   rng.New(seed),
	}
	for i := range states {
		nw.inbox[i] = make(chan message[S])
		nw.wg.Add(1)
		go nw.agent(states[i], nw.inbox[i])
	}
	return nw
}

// agent is the per-agent event loop: it owns its state and reacts to
// matchmaker messages until stopped.
func (nw *Network[S]) agent(state S, inbox chan message[S]) {
	defer nw.wg.Done()
	for m := range inbox {
		switch m.kind {
		case msgInitiate:
			// Receive the responder's state, apply the joint
			// transition, return the responder's updated state.
			vState := <-m.peer
			nw.proto.Transition(&state, &vState)
			m.peer <- vState
		case msgRespond:
			m.peer <- state
			state = <-m.peer
		case msgReport:
			m.report <- state
		case msgStop:
			return
		}
	}
}

// N returns the population size.
func (nw *Network[S]) N() int { return len(nw.inbox) }

// Steps returns the number of interactions executed.
func (nw *Network[S]) Steps() int64 { return nw.steps }

// checkOpen guards every operation that messages the agents: after
// Close the goroutines are gone and a channel send would deadlock
// forever, so misuse fails fast with a clear message instead.
func (nw *Network[S]) checkOpen(op string) {
	if nw.closed {
		panic("netsim: " + op + " after Close")
	}
}

// Step executes one interaction between a uniformly random ordered
// pair of agents. It panics if the network is closed.
func (nw *Network[S]) Step() {
	nw.checkOpen("Step")
	a, b := nw.rng.Pair(len(nw.inbox))
	peer := make(chan S)
	nw.inbox[a] <- message[S]{kind: msgInitiate, peer: peer}
	nw.inbox[b] <- message[S]{kind: msgRespond, peer: peer}
	nw.steps++
}

// Run executes k interactions. It panics if the network is closed.
func (nw *Network[S]) Run(k int64) {
	nw.checkOpen("Run")
	for i := int64(0); i < k; i++ {
		nw.Step()
	}
}

// Snapshot collects every agent's current state, in agent order. It
// panics if the network is closed.
func (nw *Network[S]) Snapshot() []S {
	nw.checkOpen("Snapshot")
	out := make([]S, len(nw.inbox))
	report := make(chan S)
	for i, ch := range nw.inbox {
		ch <- message[S]{kind: msgReport, report: report}
		out[i] = <-report
	}
	return out
}

// RunUntil executes interactions until stop holds over a snapshot,
// polling every checkEvery interactions (< 1 defaults to n). It
// returns ErrBudgetExhausted when maxSteps is reached first. It
// panics if the network is closed.
func (nw *Network[S]) RunUntil(stop func([]S) bool, checkEvery, maxSteps int64) (int64, error) {
	nw.checkOpen("RunUntil")
	if checkEvery < 1 {
		checkEvery = int64(len(nw.inbox))
	}
	if stop(nw.Snapshot()) {
		return nw.steps, nil
	}
	for nw.steps < maxSteps {
		chunk := checkEvery
		if remaining := maxSteps - nw.steps; chunk > remaining {
			chunk = remaining
		}
		nw.Run(chunk)
		if stop(nw.Snapshot()) {
			return nw.steps, nil
		}
	}
	return nw.steps, ErrBudgetExhausted
}

// Close stops all agent goroutines and waits for them to exit. It is
// idempotent.
func (nw *Network[S]) Close() {
	if nw.closed {
		return
	}
	nw.closed = true
	for _, ch := range nw.inbox {
		ch <- message[S]{kind: msgStop}
	}
	nw.wg.Wait()
}

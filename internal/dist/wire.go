// Package dist is the distributed shard runtime: one sharded
// population-protocol run executed across worker processes. A
// coordinator owns the run — the master classification stream, the
// committed engine state, and the exact-stop fold — while each worker
// holds a full population mirror and executes only the shard group it
// is assigned. Per batch the coordinator broadcasts the alias-table
// class counts, the processes advance in lockstep through the intra
// phase and the tournament rounds (exchanging modified agents after
// every phase so all mirrors agree at phase boundaries), and at the
// batch barrier workers report their touch records, stream positions
// and instrumentation counters. The coordinator folds the records in
// the engine's canonical unit order, so the trajectory — and the exact
// hitting time — is a pure function of (seed, shard count), not of the
// worker count or of shard placement: the same bytes as the in-process
// sharded engine.
//
// Crash recovery reuses the checkpoint codec as the wire format: an
// Assign frame is a per-shard-group checkpoint sub-blob (streams plus
// agent slab at the last committed barrier), so when a worker dies —
// detected by a read/write deadline standing in for a heartbeat — the
// coordinator rolls the batch back to the committed barrier,
// repartitions the shards over the survivors, re-materializes them via
// fresh Assign frames, and replays the batch deterministically.
// DESIGN.md §9 develops the cost model and the determinism argument.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"ssrank/internal/ckpt"
)

// Frame types, coordinator ↔ worker. Every frame is
// [u32 LE length][type byte][payload], length counting the type byte.
const (
	// frameHello is sent by a worker on connect and again after every
	// Stop, so a pooled connection presents a fresh handshake to each
	// run. Payload: "ssdw" magic + wire version.
	frameHello = 1
	// frameAssign (coordinator → worker) installs a shard group: run
	// identity, group bounds, instrumentation baseline, the committed
	// stream table and the full agent slab — a checkpoint sub-blob
	// doubling as the migration wire format.
	frameAssign = 2
	// frameCounts (coordinator → worker) opens a batch: sequence
	// number, batch size, tracking flag, per-class interaction counts.
	frameCounts = 3
	// frameDeltas flows both ways once per phase: workers report the
	// post-states of the agents their units touched; the coordinator
	// broadcasts the merged set back so every mirror agrees at the
	// phase boundary.
	frameDeltas = 4
	// frameBarrier (worker → coordinator) closes a batch: per-owned-unit
	// touch records, owned stream positions, instrumentation vector.
	frameBarrier = 5
	// frameStop (coordinator → worker) releases the worker back to
	// idle; the worker answers with a fresh Hello.
	frameStop = 6
)

const (
	helloMagic  = "ssdw"
	wireVersion = 1

	// maxFrame bounds a frame payload; anything larger is a protocol
	// violation, not a legitimate run.
	maxFrame = 1 << 30

	// Decode bounds: a malformed or hostile frame must fail fast, not
	// allocate unboundedly.
	maxBatch  = 1 << 30
	maxShards = 1 << 20
	maxInstr  = 1 << 12
)

// DefaultTimeout is the heartbeat bound when Options.Timeout is zero:
// how long the coordinator waits on any single worker frame (or frame
// write) before declaring the worker dead.
const DefaultTimeout = 30 * time.Second

// Options configures a Coordinator.
type Options struct {
	// Timeout bounds every per-worker wire operation — the crash
	// detector. A worker that produces no frame within it is dropped
	// and its shard group migrated. Zero means DefaultTimeout.
	Timeout time.Duration
	// OnBatch, when set, is called after every committed batch barrier
	// with the total interactions committed so far.
	OnBatch func(steps int64)
}

// writeFrame sends one frame as a single write. A positive timeout
// arms a write deadline (the coordinator side); zero trusts the peer
// (the worker side, which blocks on the coordinator by design).
func writeFrame(c net.Conn, timeout time.Duration, typ byte, payload []byte) error {
	if len(payload) >= maxFrame {
		return fmt.Errorf("dist: frame payload %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	if timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(timeout))
		defer c.SetWriteDeadline(time.Time{})
	}
	_, err := c.Write(buf)
	return err
}

// readFrame reads one frame. A positive timeout arms a read deadline;
// its expiry is how the coordinator detects a dead worker.
func readFrame(c net.Conn, timeout time.Duration) (typ byte, payload []byte, err error) {
	if timeout > 0 {
		c.SetReadDeadline(time.Now().Add(timeout))
		defer c.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// sendHello greets the coordinator. Workers send one on connect and
// after every Stop, so the coordinator of each run finds exactly one
// pending Hello on a pooled connection.
func sendHello(c net.Conn) error {
	var w ckpt.Writer
	w.Raw([]byte(helloMagic))
	w.Uvarint(wireVersion)
	return writeFrame(c, 0, frameHello, w.Bytes())
}

// handshake consumes and validates the worker's pending Hello.
func handshake(c net.Conn, timeout time.Duration) error {
	typ, payload, err := readFrame(c, timeout)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fmt.Errorf("dist: expected hello frame, got type %d", typ)
	}
	r := ckpt.NewReader(payload)
	r.Expect([]byte(helloMagic))
	v := r.Uvarint()
	if err := r.Close(); err != nil {
		return fmt.Errorf("dist: malformed hello: %w", err)
	}
	if v != wireVersion {
		return fmt.Errorf("dist: worker speaks wire version %d, want %d", v, wireVersion)
	}
	return nil
}

var errNoWorkers = errors.New("dist: no live workers")

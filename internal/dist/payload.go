package dist

import (
	"fmt"
	"math"

	"ssrank/internal/ckpt"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
)

// RunID is the identity of one distributed run: exactly the Config
// fields the sharded trajectory depends on. Every process of a run
// derives its descriptor, engine and schedule from these six values,
// which is what makes the result independent of worker count and
// placement.
type RunID struct {
	Protocol string
	Init     string
	N        int
	Seed     uint64
	Epsilon  float64
	Shards   int
}

// AssignHeader heads an Assign frame: the run identity, the receiving
// worker's contiguous shard group [GroupLo, GroupHi), and the committed
// interaction count the enclosed checkpoint sub-blob resumes from.
type AssignHeader struct {
	RunID
	GroupLo, GroupHi int
	Steps            int64
}

// appendAssignHeader writes the header fields in wire order.
func appendAssignHeader(w *ckpt.Writer, h AssignHeader) {
	w.String(h.Protocol)
	w.String(h.Init)
	w.Uvarint(uint64(h.N))
	w.U64(h.Seed)
	w.F64(h.Epsilon)
	w.Uvarint(uint64(h.Shards))
	w.Uvarint(uint64(h.GroupLo))
	w.Uvarint(uint64(h.GroupHi))
	w.Varint(h.Steps)
}

// decodeAssignHeader reads and validates an Assign header, leaving r
// positioned at the instrumentation baseline.
func decodeAssignHeader(r *ckpt.Reader) (AssignHeader, error) {
	var h AssignHeader
	h.Protocol = r.String()
	h.Init = r.String()
	h.N = r.Count(math.MaxInt32)
	h.Seed = r.U64()
	h.Epsilon = r.F64()
	h.Shards = r.Count(maxShards)
	h.GroupLo = r.Count(maxShards)
	h.GroupHi = r.Count(maxShards)
	h.Steps = r.Varint()
	if err := r.Err(); err != nil {
		return h, fmt.Errorf("dist: malformed assign header: %w", err)
	}
	if h.N < 2 || h.Shards < 1 || h.GroupHi > h.Shards || h.GroupLo < 0 || h.GroupLo >= h.GroupHi || h.Steps < 0 {
		return h, fmt.Errorf("dist: invalid assignment: n=%d shards=%d group=[%d,%d) steps=%d",
			h.N, h.Shards, h.GroupLo, h.GroupHi, h.Steps)
	}
	return h, nil
}

// crossOwned lists the cross units owned by shard group [glo, ghi), in
// ascending compact id order. Ownership follows a unit's lower shard,
// so the contiguous group partition induces a cross-unit partition —
// coordinator and worker derive the same list independently, and the
// barrier frame never needs to carry unit ids.
func crossOwned[S any, P sim.TouchReporter[S]](r *shard.Runner[S, P], glo, ghi int) []int {
	var out []int
	for c := 0; c < r.NumCrossUnits(); c++ {
		if s, _ := r.CrossUnitShards(c); s >= glo && s < ghi {
			out = append(out, c)
		}
	}
	return out
}

// deltaEntry is one modified agent: population index and post-state.
type deltaEntry[S any] struct {
	idx int32
	s   S
}

// appendDeltaIndexed writes a delta section from a sorted, deduped
// index list against the live state slab (the worker's send path).
func appendDeltaIndexed[S any, P any](d proto.Descriptor[S, P], p P, w *ckpt.Writer, states []S, idxs []int32) {
	w.Uvarint(uint64(len(idxs)))
	for _, i := range idxs {
		w.Uvarint(uint64(i))
		d.EncodeAgent(p, &states[i], w)
	}
}

// appendDeltaEntries writes a delta section from decoded entries (the
// coordinator's merge-and-rebroadcast path).
func appendDeltaEntries[S any, P any](d proto.Descriptor[S, P], p P, w *ckpt.Writer, entries []deltaEntry[S]) {
	w.Uvarint(uint64(len(entries)))
	for i := range entries {
		w.Uvarint(uint64(entries[i].idx))
		d.EncodeAgent(p, &entries[i].s, w)
	}
}

// readDeltaSection appends a delta section's entries to into. Indices
// are bounded by the population size.
func readDeltaSection[S any, P any](d proto.Descriptor[S, P], p P, n int, r *ckpt.Reader, into []deltaEntry[S]) ([]deltaEntry[S], error) {
	cnt := r.Count(n)
	for i := 0; i < cnt; i++ {
		idx := r.Count(n - 1)
		s := d.DecodeAgent(p, r)
		if r.Err() != nil {
			break
		}
		into = append(into, deltaEntry[S]{idx: int32(idx), s: s})
	}
	if err := r.Err(); err != nil {
		return into, fmt.Errorf("dist: malformed delta section: %w", err)
	}
	return into, nil
}

// appendRecSection writes one unit's touch records: canonical batch
// position, touch mask, endpoint indices, post-states.
func appendRecSection[S any, P any](d proto.Descriptor[S, P], p P, w *ckpt.Writer, recs []shard.TouchRec[S]) {
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		rec := &recs[i]
		w.Uvarint(uint64(rec.Pos))
		w.Uvarint(uint64(rec.Mask))
		w.Uvarint(uint64(rec.A))
		w.Uvarint(uint64(rec.B))
		d.EncodeAgent(p, &rec.SA, w)
		d.EncodeAgent(p, &rec.SB, w)
	}
}

// readRecSection appends one unit's touch records to into. Positions
// are bounded by the batch size, indices by the population size.
func readRecSection[S any, P any](d proto.Descriptor[S, P], p P, b, n int, r *ckpt.Reader, into []shard.TouchRec[S]) ([]shard.TouchRec[S], error) {
	cnt := r.Count(b)
	for i := 0; i < cnt; i++ {
		pos := r.Count(b - 1)
		mask := r.Uvarint()
		a := r.Count(n - 1)
		bi := r.Count(n - 1)
		sa := d.DecodeAgent(p, r)
		sb := d.DecodeAgent(p, r)
		if r.Err() != nil {
			break
		}
		if mask > 3 {
			return into, fmt.Errorf("dist: touch record mask %d out of range", mask)
		}
		into = append(into, shard.TouchRec[S]{
			Pos: int32(pos), Mask: uint8(mask),
			A: int32(a), B: int32(bi),
			SA: sa, SB: sb,
		})
	}
	if err := r.Err(); err != nil {
		return into, fmt.Errorf("dist: malformed record section: %w", err)
	}
	return into, nil
}

// appendInstr writes an instrumentation vector (empty when the
// protocol registers none).
func appendInstr(w *ckpt.Writer, v []int64) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.Varint(x)
	}
}

// readInstr reads an instrumentation vector.
func readInstr(r *ckpt.Reader) []int64 {
	cnt := r.Count(maxInstr)
	v := make([]int64, cnt)
	for i := range v {
		v[i] = r.Varint()
	}
	return v
}

// sumInstr element-wise sums instrumentation vectors. Vectors counted
// over disjoint interaction sets sum to the whole-run vector — the
// reconciliation contract of proto.Descriptor.Instr.
func sumInstr(vs ...[]int64) []int64 {
	n := 0
	for _, v := range vs {
		if len(v) > n {
			n = len(v)
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for _, v := range vs {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

// readEngineStreams reads the stream table of an Assign frame: master
// position, per-shard pair streams, per-class endpoint streams.
func readEngineStreams(r *ckpt.Reader, shards int) shard.EngineState {
	var st shard.EngineState
	st.Master = ckpt.ReadRNGState(r)
	nsh := r.Count(shards)
	st.Shards = make([]rng.PairBatchState, nsh)
	for i := range st.Shards {
		st.Shards[i] = ckpt.ReadPairState(r)
	}
	ncl := r.Count(shards * (shards - 1) / 2)
	st.Classes = make([][4]uint64, ncl)
	for i := range st.Classes {
		st.Classes[i] = ckpt.ReadRNGState(r)
	}
	return st
}

// writeEngineStreams writes the stream table of an Assign frame.
func writeEngineStreams(w *ckpt.Writer, st shard.EngineState) {
	ckpt.WriteRNGState(w, st.Master)
	w.Uvarint(uint64(len(st.Shards)))
	for i := range st.Shards {
		ckpt.WritePairState(w, st.Shards[i])
	}
	w.Uvarint(uint64(len(st.Classes)))
	for i := range st.Classes {
		ckpt.WriteRNGState(w, st.Classes[i])
	}
}

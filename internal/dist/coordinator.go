package dist

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"time"

	"ssrank/internal/ckpt"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
)

// session is one live worker: its connection, its contiguous shard
// group, and per-batch bookkeeping for the quiescence drain.
type session struct {
	conn     net.Conn
	glo, ghi int
	instr    []int64 // last barrier-reported instrumentation vector

	// Per-batch wire bookkeeping: which frames of the current batch the
	// worker has provably received (countsOK, merged) and how many it
	// has sent that we consumed. Together these bound the worker's
	// in-flight frames exactly, which is what lets an abandoned batch
	// drain to quiescence before the recovery Assign (drain).
	countsOK bool
	merged   int
	consumed int
}

// Coordinator owns one distributed run: the only master-stream
// classifier, the committed engine state the run can always roll back
// to, and a full population mirror that never executes units — it is
// advanced at batch commits from the merged phase deltas, and is what
// Assign frames and the final Result read. Coordinator implements
// shard.BarrierExchange, so the exact-stopping driver shared with the
// in-process engine (shard.RunExactBatches) runs unchanged on top of
// the wire.
type Coordinator[S any, P sim.TouchReporter[S]] struct {
	d        proto.Descriptor[S, P]
	p        P
	id       RunID
	r        *shard.Runner[S, P]
	batch    int
	timeout  time.Duration
	onBatch  func(int64)
	sessions []*session

	committed shard.EngineState
	total     []int64 // committed whole-run instrumentation vector
	seq       uint64

	// Per-batch buffers. recs is indexed by unit id (intra shard s → s,
	// cross unit c → Shards+c); pending holds the batch's merged deltas,
	// applied to the mirror only at commit so an abandoned batch leaves
	// the mirror on the committed barrier; reportShards/reportClasses
	// stage the barrier-reported stream positions the same way.
	recs          [][]shard.TouchRec[S]
	pending       []deltaEntry[S]
	reportShards  []rng.PairBatchState
	reportClasses [][4]uint64
}

// NewCoordinator builds the coordinator for one run, adopts up to
// min(len(conns), id.Shards) workers (consuming their pending Hello
// frames; connections beyond that are left untouched for other runs),
// and sends the initial assignments. The caller supplies the protocol
// instance and the initial configuration — exactly what the in-process
// engine would have been built from — and keeps ownership of any
// connection the coordinator rejects at handshake (those are closed).
func NewCoordinator[S any, P sim.TouchReporter[S]](d proto.Descriptor[S, P], p P, states []S, id RunID, conns []net.Conn, opts Options) (*Coordinator[S, P], error) {
	if d.EncodeAgent == nil || d.DecodeAgent == nil {
		return nil, fmt.Errorf("dist: protocol %q does not register per-agent codecs", d.Name)
	}
	if id.Shards < 2 {
		return nil, fmt.Errorf("dist: distributed runs need at least 2 shards, got %d", id.Shards)
	}
	if id.N != len(states) {
		return nil, fmt.Errorf("dist: run declares n=%d but has %d initial states", id.N, len(states))
	}
	eng := shard.New[S](p, states, id.Seed, id.Shards, 1)
	if eng.Shards() != id.Shards {
		return nil, fmt.Errorf("dist: %d shards not realizable for n=%d", id.Shards, id.N)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Coordinator[S, P]{
		d: d, p: p, id: id, r: eng,
		batch:   shard.BatchPeriod(id.N),
		timeout: timeout,
		onBatch: opts.OnBatch,
	}
	c.committed = eng.EngineState()
	if d.Instr != nil {
		c.total = append([]int64(nil), d.Instr(p)...)
	}
	c.recs = make([][]shard.TouchRec[S], id.Shards+eng.NumCrossUnits())
	c.reportShards = make([]rng.PairBatchState, id.Shards)
	c.reportClasses = make([][4]uint64, eng.NumCrossUnits())

	want := id.Shards
	if want > len(conns) {
		want = len(conns)
	}
	for _, conn := range conns {
		if len(c.sessions) == want {
			break
		}
		if err := handshake(conn, timeout); err != nil {
			conn.Close()
			continue
		}
		c.sessions = append(c.sessions, &session{conn: conn})
	}
	if len(c.sessions) == 0 {
		return nil, errors.New("dist: no worker completed the handshake")
	}
	if err := c.assignAll(); err != nil {
		return nil, err
	}
	return c, nil
}

// Workers reports the number of live worker sessions.
func (c *Coordinator[S, P]) Workers() int { return len(c.sessions) }

// Steps reports the committed interaction count.
func (c *Coordinator[S, P]) Steps() int64 { return c.committed.Steps }

// States returns the mirror's agent slab at the committed barrier.
func (c *Coordinator[S, P]) States() []S { return c.r.States() }

// InstrTotal returns the committed whole-run instrumentation vector
// (the element-wise sum of every worker's counters).
func (c *Coordinator[S, P]) InstrTotal() []int64 {
	return append([]int64(nil), c.total...)
}

// Stop releases the workers back to idle: each gets a Stop frame and
// re-greets on the same connection, leaving it ready for the next
// run's handshake. Best-effort; connections that refuse the frame are
// closed.
func (c *Coordinator[S, P]) Stop() {
	for _, s := range c.sessions {
		if err := writeFrame(s.conn, c.timeout, frameStop, nil); err != nil {
			s.conn.Close()
		}
	}
	c.sessions = nil
}

// RunUntilExact drives the run to the exact hitting time of cond via
// the shared barrier driver, mirroring shard.Runner.RunUntilExact: it
// returns the hitting step on convergence, or the committed step count
// with sim.ErrBudgetExhausted when maxSteps ran out first. Any other
// error is infrastructural — every worker died.
func (c *Coordinator[S, P]) RunUntilExact(cond sim.Condition[S], maxSteps int64) (int64, error) {
	cond.Init(c.r.States())
	if cond.Done() {
		return c.committed.Steps, nil
	}
	f := shard.NewFolder[S](len(c.r.States()))
	f.Reset(c.r.States())
	_, hit, err := shard.RunExactBatches[S](c, f, cond, c.committed.Steps, maxSteps, c.batch)
	if err != nil {
		return c.committed.Steps, err
	}
	if hit < 0 {
		return c.committed.Steps, sim.ErrBudgetExhausted
	}
	return hit, nil
}

// ExecBatch runs one batch across the workers (shard.BarrierExchange).
// On a worker failure the batch is abandoned: survivors are drained to
// wire quiescence, the mirror rolls back to the committed barrier, the
// dead worker's shard group migrates to the survivors via fresh Assign
// frames, and the batch replays — the restored master stream
// re-classifies identical counts, so the retry is byte-identical and
// the failure is invisible in the trajectory.
func (c *Coordinator[S, P]) ExecBatch(b int, track bool, emit func(recs []shard.TouchRec[S])) error {
	var lastErr error
	for {
		if len(c.sessions) == 0 {
			if lastErr != nil {
				return fmt.Errorf("%w (last failure: %v)", errNoWorkers, lastErr)
			}
			return errNoWorkers
		}
		err := c.tryBatch(b, track)
		if err == nil {
			break
		}
		lastErr = err
		c.drain()
		if rerr := c.r.SetEngineState(c.committed); rerr != nil {
			return rerr
		}
		if len(c.sessions) == 0 {
			continue
		}
		if aerr := c.assignAll(); aerr != nil {
			return fmt.Errorf("%w (last failure: %v)", aerr, lastErr)
		}
	}
	for s := 0; s < c.id.Shards; s++ {
		emit(c.recs[s])
		c.recs[s] = c.recs[s][:0]
	}
	for _, round := range c.r.RoundSchedule() {
		for _, cid := range round {
			emit(c.recs[c.id.Shards+cid])
			c.recs[c.id.Shards+cid] = c.recs[c.id.Shards+cid][:0]
		}
	}
	return nil
}

// assignAll partitions the shards contiguously over the live sessions
// and sends each its Assign sub-blob, retrying with fewer sessions if
// a write fails. The committed instrumentation total rides with the
// first session as its baseline (the others start at zero): counters
// conserve under migration without attributing interactions to
// workers.
func (c *Coordinator[S, P]) assignAll() error {
	for {
		n := len(c.sessions)
		if n == 0 {
			return errNoWorkers
		}
		ok := true
		states := c.r.States()
		for w, s := range c.sessions {
			s.glo = w * c.id.Shards / n
			s.ghi = (w + 1) * c.id.Shards / n
			base := make([]int64, len(c.total))
			if w == 0 {
				copy(base, c.total)
			}
			s.instr = base
			var buf ckpt.Writer
			appendAssignHeader(&buf, AssignHeader{
				RunID: c.id, GroupLo: s.glo, GroupHi: s.ghi, Steps: c.committed.Steps,
			})
			appendInstr(&buf, base)
			writeEngineStreams(&buf, c.committed)
			buf.Uvarint(uint64(len(states)))
			for i := range states {
				c.d.EncodeAgent(c.p, &states[i], &buf)
			}
			if err := writeFrame(s.conn, c.timeout, frameAssign, buf.Bytes()); err != nil {
				c.drop(s)
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
	}
}

// tryBatch runs one batch attempt over the current sessions. Any
// error already dropped the offending session; the caller rolls back
// and retries.
func (c *Coordinator[S, P]) tryBatch(b int, track bool) error {
	for _, s := range c.sessions {
		s.countsOK, s.merged, s.consumed = false, 0, 0
	}
	counts := c.r.ClassifyBatch(b)
	c.seq++
	var cw ckpt.Writer
	cw.Uvarint(c.seq)
	cw.Uvarint(uint64(b))
	cw.Bool(track)
	cw.Uvarint(uint64(len(counts)))
	for _, v := range counts {
		cw.Varint(int64(v))
	}
	payload := cw.Bytes()
	for _, s := range c.sessions {
		if err := writeFrame(s.conn, c.timeout, frameCounts, payload); err != nil {
			c.drop(s)
			return fmt.Errorf("dist: counts broadcast: %w", err)
		}
		s.countsOK = true
	}

	phases := 1 + len(c.r.RoundSchedule())
	c.pending = c.pending[:0]
	n := len(c.r.States())
	for k := 0; k < phases; k++ {
		var all []deltaEntry[S]
		for _, s := range c.sessions {
			r, err := c.gather(s, frameDeltas)
			if err != nil {
				c.drop(s)
				return fmt.Errorf("dist: phase %d gather: %w", k, err)
			}
			if ph := r.Uvarint(); r.Err() != nil || ph != uint64(k) {
				c.drop(s)
				return fmt.Errorf("dist: worker reported phase %d, want %d", ph, k)
			}
			all, err = readDeltaSection(c.d, c.p, n, r, all)
			if err == nil {
				err = r.Close()
			}
			if err != nil {
				c.drop(s)
				return err
			}
			s.consumed++
		}
		// Phase units touch disjoint shards, so the per-worker sections
		// interleave into one globally sorted, duplicate-free section.
		slices.SortFunc(all, func(a, b deltaEntry[S]) int { return int(a.idx - b.idx) })
		var mw ckpt.Writer
		mw.Uvarint(c.seq)
		mw.Uvarint(uint64(k))
		appendDeltaEntries(c.d, c.p, &mw, all)
		merged := mw.Bytes()
		for _, s := range c.sessions {
			if err := writeFrame(s.conn, c.timeout, frameDeltas, merged); err != nil {
				c.drop(s)
				return fmt.Errorf("dist: phase %d broadcast: %w", k, err)
			}
			s.merged++
		}
		c.pending = append(c.pending, all...)
	}

	instrs := make([][]int64, 0, len(c.sessions))
	for _, s := range c.sessions {
		r, err := c.gather(s, frameBarrier)
		if err != nil {
			c.drop(s)
			return fmt.Errorf("dist: barrier gather: %w", err)
		}
		if err := c.decodeBarrier(s, r, b); err != nil {
			c.drop(s)
			return err
		}
		s.consumed++
		instrs = append(instrs, s.instr)
	}
	c.commit(b, instrs)
	return nil
}

// gather reads the next worker→coordinator frame of the current batch
// from s, skipping bounded stale frames (re-greetings; frames of an
// abandoned batch that slipped past the drain) and returning the
// payload reader positioned after the sequence number.
func (c *Coordinator[S, P]) gather(s *session, wantType byte) (*ckpt.Reader, error) {
	for skips := 0; skips < 64; skips++ {
		typ, payload, err := readFrame(s.conn, c.timeout)
		if err != nil {
			return nil, err
		}
		switch typ {
		case frameHello:
			continue
		case frameDeltas, frameBarrier:
			r := ckpt.NewReader(payload)
			seq := r.Uvarint()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if seq != c.seq {
				continue // abandoned-batch leftover
			}
			if typ != wantType {
				return nil, fmt.Errorf("dist: frame type %d, want %d", typ, wantType)
			}
			return r, nil
		default:
			return nil, fmt.Errorf("dist: unexpected frame type %d", typ)
		}
	}
	return nil, errors.New("dist: too many stale frames")
}

// decodeBarrier installs one worker's barrier frame: touch records per
// owned unit (into the canonical per-unit buffers), owned stream
// positions (staged for commit), and the instrumentation vector.
func (c *Coordinator[S, P]) decodeBarrier(s *session, r *ckpt.Reader, b int) error {
	n := len(c.r.States())
	var err error
	for sh := s.glo; sh < s.ghi; sh++ {
		if c.recs[sh], err = readRecSection(c.d, c.p, b, n, r, c.recs[sh][:0]); err != nil {
			return err
		}
	}
	owned := crossOwned(c.r, s.glo, s.ghi)
	for _, cid := range owned {
		u := c.id.Shards + cid
		if c.recs[u], err = readRecSection(c.d, c.p, b, n, r, c.recs[u][:0]); err != nil {
			return err
		}
	}
	for sh := s.glo; sh < s.ghi; sh++ {
		c.reportShards[sh] = ckpt.ReadPairState(r)
	}
	for _, cid := range owned {
		c.reportClasses[cid] = ckpt.ReadRNGState(r)
	}
	s.instr = readInstr(r)
	if err := r.Close(); err != nil {
		return fmt.Errorf("dist: malformed barrier frame: %w", err)
	}
	return nil
}

// commit makes the batch durable: the merged deltas land on the
// mirror, the committed state takes the advanced master stream, the
// barrier-reported shard and class streams, and the batch's steps, and
// the instrumentation total is re-summed from the workers' reports.
func (c *Coordinator[S, P]) commit(b int, instrs [][]int64) {
	states := c.r.States()
	for i := range c.pending {
		states[c.pending[i].idx] = c.pending[i].s
	}
	c.pending = c.pending[:0]
	c.committed.Master = c.r.EngineState().Master
	copy(c.committed.Shards, c.reportShards)
	copy(c.committed.Classes, c.reportClasses)
	c.committed.Steps += int64(b)
	if c.d.Instr != nil {
		c.total = sumInstr(instrs...)
	}
	if c.onBatch != nil {
		c.onBatch(c.committed.Steps)
	}
}

// drain brings every surviving session to wire quiescence after an
// abandoned batch. The lockstep protocol bounds each worker's
// in-flight frames exactly: it sends nothing before Counts reaches it,
// then one frame per merged broadcast it has received (plus the
// initial phase), so expected − consumed frames remain to read. Once
// drained, every survivor is blocked reading — the recovery Assign
// cannot deadlock against an in-flight worker write, and no stale
// frame survives into the retried batch.
func (c *Coordinator[S, P]) drain() {
	phases := 1 + len(c.r.RoundSchedule())
	for _, s := range append([]*session(nil), c.sessions...) {
		expected := 0
		if s.countsOK {
			expected = s.merged + 1
			if expected > phases+1 {
				expected = phases + 1
			}
		}
		for s.consumed < expected {
			typ, _, err := readFrame(s.conn, c.timeout)
			if err != nil {
				c.drop(s)
				break
			}
			switch typ {
			case frameDeltas, frameBarrier:
				s.consumed++
			case frameHello:
			default:
				c.drop(s)
			}
			if !c.live(s) {
				break
			}
		}
	}
}

// live reports whether s is still in the session table.
func (c *Coordinator[S, P]) live(s *session) bool {
	for _, t := range c.sessions {
		if t == s {
			return true
		}
	}
	return false
}

// drop closes a session's connection and removes it from the table.
// Closing is what lets a connection pool on the other side of the
// facade notice the death and stop handing the connection out.
func (c *Coordinator[S, P]) drop(s *session) {
	s.conn.Close()
	for i, t := range c.sessions {
		if t == s {
			c.sessions = append(c.sessions[:i], c.sessions[i+1:]...)
			return
		}
	}
}

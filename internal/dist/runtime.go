package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"slices"

	"ssrank/internal/ckpt"
	"ssrank/internal/proto"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
)

// Runtime is the type-erased worker side of one assignment: a full
// population mirror that executes only its owned units. Serve drives
// it through the frame protocol; NewRuntime builds the generic
// implementation for a concrete protocol descriptor.
type Runtime interface {
	// Install materializes the assignment: decode the instrumentation
	// baseline, stream table and agent slab following the header, build
	// the engine, and restore the committed position.
	Install(h *AssignHeader, r *ckpt.Reader) error
	// BeginBatch installs the coordinator's class counts and arms
	// recording.
	BeginBatch(counts []int32, track bool) error
	// Phases returns the number of lockstep phases per batch: the intra
	// phase plus one per tournament round.
	Phases() int
	// ExecPhase executes the owned units of phase k and appends the
	// delta section (sorted modified agents) to w.
	ExecPhase(k int, w *ckpt.Writer) error
	// ApplyDeltas applies a merged delta section to the mirror.
	ApplyDeltas(r *ckpt.Reader) error
	// Barrier appends the barrier sections: per-owned-unit touch
	// records, owned stream positions, instrumentation vector.
	Barrier(w *ckpt.Writer)
	// FinishBatch commits the batch's step count locally.
	FinishBatch(b int)
}

// RuntimeFactory builds a Runtime for an assignment's run identity —
// the worker-side registry hook (the facade resolves the protocol name
// to a descriptor and returns NewRuntime of it).
type RuntimeFactory func(h *AssignHeader) (Runtime, error)

// runtime is the generic Runtime: a full shard.Runner mirror of which
// only the owned unit range executes.
type runtime[S any, P sim.TouchReporter[S]] struct {
	d     proto.Descriptor[S, P]
	p     P
	r     *shard.Runner[S, P]
	h     AssignHeader
	owned []int // owned cross units, ascending compact id
	track bool
	dirty []int32
}

// NewRuntime wraps a protocol descriptor as a distributed worker
// runtime. The descriptor must register the per-agent codecs.
func NewRuntime[S any, P sim.TouchReporter[S]](d proto.Descriptor[S, P]) Runtime {
	return &runtime[S, P]{d: d}
}

func (rt *runtime[S, P]) Install(h *AssignHeader, r *ckpt.Reader) error {
	if rt.d.EncodeAgent == nil || rt.d.DecodeAgent == nil {
		return fmt.Errorf("dist: protocol %q does not register per-agent codecs", rt.d.Name)
	}
	instr := readInstr(r)
	st := readEngineStreams(r, h.Shards)
	st.Steps = h.Steps
	p := rt.d.New(h.N)
	n := r.Count(h.N)
	if r.Err() == nil && n != h.N {
		return fmt.Errorf("dist: assignment slab holds %d agents, want %d", n, h.N)
	}
	states := make([]S, n)
	for i := range states {
		states[i] = rt.d.DecodeAgent(p, r)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("dist: malformed assignment: %w", err)
	}
	if len(st.Shards) != h.Shards {
		return fmt.Errorf("dist: assignment has %d shard streams, want %d", len(st.Shards), h.Shards)
	}
	if rt.d.SetInstr != nil {
		rt.d.SetInstr(p, instr)
	}
	eng := shard.New[S](p, states, h.Seed, h.Shards, 1)
	if eng.Shards() != h.Shards {
		return fmt.Errorf("dist: %d shards not realizable for n=%d", h.Shards, h.N)
	}
	if err := eng.SetEngineState(st); err != nil {
		return fmt.Errorf("dist: assignment state: %w", err)
	}
	rt.p, rt.r, rt.h = p, eng, *h
	rt.owned = crossOwned(eng, h.GroupLo, h.GroupHi)
	return nil
}

func (rt *runtime[S, P]) BeginBatch(counts []int32, track bool) error {
	rt.track = track
	return rt.r.BeginBatch(counts, track, true)
}

func (rt *runtime[S, P]) Phases() int { return 1 + len(rt.r.RoundSchedule()) }

func (rt *runtime[S, P]) ExecPhase(k int, w *ckpt.Writer) error {
	dirty := rt.dirty[:0]
	switch {
	case k == 0:
		for s := rt.h.GroupLo; s < rt.h.GroupHi; s++ {
			rt.r.ExecIntra(s)
			dirty = append(dirty, rt.r.DirtyIntra(s)...)
		}
	case k-1 < len(rt.r.RoundSchedule()):
		for _, c := range rt.r.RoundSchedule()[k-1] {
			if s, _ := rt.r.CrossUnitShards(c); s < rt.h.GroupLo || s >= rt.h.GroupHi {
				continue
			}
			rt.r.ExecCross(c)
			dirty = append(dirty, rt.r.DirtyCross(c)...)
		}
	default:
		return fmt.Errorf("dist: phase %d out of range", k)
	}
	// Phase units touch disjoint agents, so a sort+dedup of the raw
	// endpoint log is the exact modified set.
	slices.Sort(dirty)
	dirty = slices.Compact(dirty)
	rt.dirty = dirty
	appendDeltaIndexed(rt.d, rt.p, w, rt.r.States(), dirty)
	return nil
}

func (rt *runtime[S, P]) ApplyDeltas(r *ckpt.Reader) error {
	entries, err := readDeltaSection[S](rt.d, rt.p, len(rt.r.States()), r, nil)
	if err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("dist: malformed merged deltas: %w", err)
	}
	states := rt.r.States()
	for i := range entries {
		states[entries[i].idx] = entries[i].s
	}
	return nil
}

func (rt *runtime[S, P]) Barrier(w *ckpt.Writer) {
	for s := rt.h.GroupLo; s < rt.h.GroupHi; s++ {
		var recs []shard.TouchRec[S]
		if rt.track {
			recs = rt.r.IntraRecs(s)
		}
		appendRecSection(rt.d, rt.p, w, recs)
	}
	for _, c := range rt.owned {
		var recs []shard.TouchRec[S]
		if rt.track {
			recs = rt.r.CrossRecs(c)
		}
		appendRecSection(rt.d, rt.p, w, recs)
	}
	for s := rt.h.GroupLo; s < rt.h.GroupHi; s++ {
		ckpt.WritePairState(w, rt.r.ShardStream(s))
	}
	for _, c := range rt.owned {
		ckpt.WriteRNGState(w, rt.r.ClassStream(c))
	}
	var instr []int64
	if rt.d.Instr != nil {
		instr = rt.d.Instr(rt.p)
	}
	appendInstr(w, instr)
}

func (rt *runtime[S, P]) FinishBatch(b int) { rt.r.FinishBatch(b) }

// Serve runs the worker side of the protocol on one coordinator
// connection: greet, then loop over assignments and batches until the
// connection closes (clean EOF returns nil — the coordinator or its
// process went away and the caller may redial). A Stop frame returns
// the worker to idle on the same connection with a fresh greeting, so
// pooled connections serve many runs.
func Serve(conn net.Conn, factory RuntimeFactory) error {
	if err := sendHello(conn); err != nil {
		return err
	}
	var rt Runtime
	for {
		typ, payload, err := readFrame(conn, 0)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch typ {
		case frameAssign:
			if rt, err = installAssign(factory, payload); err != nil {
				return err
			}
		case frameCounts:
			if rt == nil {
				return errors.New("dist: counts frame before assignment")
			}
			var cont bool
			if rt, cont, err = serveBatch(conn, rt, factory, payload); err != nil {
				return err
			}
			if !cont {
				rt = nil
				if err := sendHello(conn); err != nil {
					return err
				}
			}
		case frameStop:
			rt = nil
			if err := sendHello(conn); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected frame type %d", typ)
		}
	}
}

// installAssign decodes an Assign frame and builds + installs the
// runtime for it.
func installAssign(factory RuntimeFactory, payload []byte) (Runtime, error) {
	r := ckpt.NewReader(payload)
	h, err := decodeAssignHeader(r)
	if err != nil {
		return nil, err
	}
	rt, err := factory(&h)
	if err != nil {
		return nil, err
	}
	if err := rt.Install(&h, r); err != nil {
		return nil, err
	}
	return rt, nil
}

// serveBatch executes one batch in lockstep with the coordinator:
// per phase, run the owned units, report the delta section, and apply
// the merged broadcast; then report the barrier frame and commit. A
// mid-batch Assign means the coordinator abandoned the batch after a
// peer died — the partial batch state is discarded wholesale by
// reinstalling from the committed sub-blob. Returns the (possibly
// reinstalled) runtime and whether the assignment is still live
// (false after a mid-batch Stop).
func serveBatch(conn net.Conn, rt Runtime, factory RuntimeFactory, payload []byte) (Runtime, bool, error) {
	r := ckpt.NewReader(payload)
	seq := r.Uvarint()
	b := r.Count(maxBatch)
	track := r.Bool()
	cnt := r.Count(maxShards * maxShards)
	counts := make([]int32, cnt)
	for i := range counts {
		counts[i] = int32(r.Varint())
	}
	if err := r.Close(); err != nil {
		return rt, false, fmt.Errorf("dist: malformed counts frame: %w", err)
	}
	if err := rt.BeginBatch(counts, track); err != nil {
		return rt, false, err
	}
	for k := 0; k < rt.Phases(); k++ {
		var w ckpt.Writer
		w.Uvarint(seq)
		w.Uvarint(uint64(k))
		if err := rt.ExecPhase(k, &w); err != nil {
			return rt, false, err
		}
		if err := writeFrame(conn, 0, frameDeltas, w.Bytes()); err != nil {
			return rt, false, err
		}
		typ, p2, err := readFrame(conn, 0)
		if err != nil {
			return rt, false, err
		}
		switch typ {
		case frameDeltas:
			mr := ckpt.NewReader(p2)
			mseq, mk := mr.Uvarint(), mr.Uvarint()
			if err := mr.Err(); err != nil {
				return rt, false, fmt.Errorf("dist: malformed merged deltas: %w", err)
			}
			if mseq != seq || mk != uint64(k) {
				return rt, false, fmt.Errorf("dist: merged deltas for batch %d phase %d, want %d/%d", mseq, mk, seq, k)
			}
			if err := rt.ApplyDeltas(mr); err != nil {
				return rt, false, err
			}
		case frameAssign:
			nrt, err := installAssign(factory, p2)
			if err != nil {
				return rt, false, err
			}
			return nrt, true, nil
		case frameStop:
			return nil, false, nil
		default:
			return rt, false, fmt.Errorf("dist: unexpected frame type %d mid-batch", typ)
		}
	}
	var w ckpt.Writer
	w.Uvarint(seq)
	rt.Barrier(&w)
	if err := writeFrame(conn, 0, frameBarrier, w.Bytes()); err != nil {
		return rt, false, err
	}
	rt.FinishBatch(b)
	return rt, true, nil
}

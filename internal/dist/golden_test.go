package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

var update = flag.Bool("update", false, "rewrite wire golden fixtures")

// recorder captures the coordinator's view of the byte stream,
// coalescing consecutive same-direction chunks so the transcript is
// independent of TCP segmentation. At one worker the frame protocol is
// fully sequential, so direction flips — and hence the transcript —
// are deterministic.
type recorder struct {
	mu      sync.Mutex
	dirs    []byte
	streams [][]byte
}

func (r *recorder) add(dir byte, b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.dirs); n > 0 && r.dirs[n-1] == dir {
		r.streams[n-1] = append(r.streams[n-1], b...)
		return
	}
	r.dirs = append(r.dirs, dir)
	r.streams = append(r.streams, append([]byte(nil), b...))
}

// encode serializes the transcript: per entry a direction byte
// ('C' coordinator→worker, 'W' worker→coordinator), a u32 LE length,
// and the bytes.
func (r *recorder) encode() []byte {
	var out []byte
	for i, dir := range r.dirs {
		out = append(out, dir)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(r.streams[i])))
		out = append(out, r.streams[i]...)
	}
	return out
}

type recConn struct {
	net.Conn
	rec *recorder
}

func (c *recConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.rec.add('W', b[:n])
	}
	return n, err
}

func (c *recConn) Write(b []byte) (int, error) {
	n, err := c.Conn.Write(b)
	if n > 0 {
		c.rec.add('C', b[:n])
	}
	return n, err
}

// TestWireGolden pins the framed coordinator↔worker byte stream of a
// small two-batch run — greeting, assignment sub-blob, class counts,
// per-phase delta exchange, barrier fold frames — against a committed
// fixture. Any codec or protocol change shows up as a fixture diff:
// deliberate changes re-record with -update (and must bump the wire
// version when frames change shape).
func TestWireGolden(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cc, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer cc.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(wc, func(h *AssignHeader) (Runtime, error) {
			if h.Protocol != "stable" {
				return nil, fmt.Errorf("unexpected protocol %q", h.Protocol)
			}
			return NewRuntime(stable.Describe()), nil
		})
		wc.Close()
	}()

	rec := &recorder{}
	d := stable.Describe()
	p := d.New(16)
	init := d.Init(p, "fresh", rng.New(42))
	id := RunID{Protocol: "stable", Init: "fresh", N: 16, Seed: 42, Epsilon: 1, Shards: 2}
	co, err := NewCoordinator(d, p, init, id, []net.Conn{&recConn{Conn: cc, rec: rec}}, Options{})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	// 200 interactions = two clamped batches of 100 — enough to cover
	// every frame type twice while keeping the fixture small. The
	// budget exhausts (stable needs far more), which also pins the
	// clean Stop.
	if _, err := co.RunUntilExact(sim.DescCond(d, p), 200); !errors.Is(err, sim.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhausted", err)
	}
	co.Stop()

	got := rec.encode()
	path := filepath.Join("testdata", "wire_stable_n16_s2.bin")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, %d segments)", path, len(got), len(rec.dirs))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("wire transcript diverged from fixture at byte %d (got %d bytes, want %d)", i, len(got), len(want))
	}
	cc.Close()
	<-done
}

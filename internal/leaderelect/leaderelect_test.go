package leaderelect

import (
	"math"
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1023: 10, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCeilLog2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilLog2(0) did not panic")
		}
	}()
	CeilLog2(0)
}

func TestNewPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

func TestInitialStateShape(t *testing.T) {
	p := New(64)
	for i := 0; i < 4; i++ {
		s := p.InitialState(i)
		if !s.Contender || !s.InLottery || s.Level != 0 || s.Done {
			t.Fatalf("agent %d initial state malformed: %+v", i, s)
		}
		if s.Coin != uint8(i&1) {
			t.Fatalf("agent %d coin = %d, want index parity", i, s.Coin)
		}
		if s.DoneCtr != p.DoneInit() {
			t.Fatalf("agent %d DoneCtr = %d, want %d", i, s.DoneCtr, p.DoneInit())
		}
		if int(s.SigBits) != p.SigLen() {
			t.Fatalf("agent %d SigBits = %d, want %d", i, s.SigBits, p.SigLen())
		}
	}
}

// runLE runs the protocol until every agent is Done and returns the
// final states.
func runLE(t *testing.T, n int, seed uint64) []State {
	t.Helper()
	p := New(n)
	r := sim.New[State](p, p.InitialStates(), seed)
	allDone := func(states []State) bool {
		for i := range states {
			if !states[i].Done {
				return false
			}
		}
		return true
	}
	budget := int64(100 * n * (CeilLog2(n) + 1) * (CeilLog2(n) + 1))
	if _, err := r.RunUntil(allDone, 0, budget); err != nil {
		t.Fatalf("n=%d seed=%d: agents not all Done within %d interactions", n, seed, budget)
	}
	return r.States()
}

func TestAtLeastOneContenderAlways(t *testing.T) {
	// Invariant: the holder of the maximum achieved key is never
	// eliminated, so the population always has a contender.
	for _, n := range []int{2, 3, 8, 64, 256} {
		p := New(n)
		r := sim.New[State](p, p.InitialStates(), uint64(n))
		for i := 0; i < 200; i++ {
			r.Run(int64(n))
			if c := Contenders(r.States()); c < 1 {
				t.Fatalf("n=%d after %d steps: zero contenders", n, r.Steps())
			}
		}
	}
}

func TestUniqueLeaderMostSeeds(t *testing.T) {
	// Lemma 15 interface: w.h.p. exactly one leader. At these sizes we
	// demand at most 1 failure in 10 seeds.
	for _, n := range []int{32, 128} {
		fails := 0
		for seed := uint64(1); seed <= 10; seed++ {
			states := runLE(t, n, seed)
			if Contenders(states) != 1 {
				fails++
			}
		}
		if fails > 1 {
			t.Fatalf("n=%d: %d/10 seeds ended with != 1 contender", n, fails)
		}
	}
}

func TestElectionTimeScaling(t *testing.T) {
	// Lemma 15 shape: unique leader within O(n log² n) interactions.
	if testing.Short() {
		t.Skip("scaling check is slow")
	}
	timeFor := func(n int) float64 {
		p := New(n)
		r := sim.New[State](p, p.InitialStates(), 9)
		steps, err := r.RunUntil(UniqueLeaderElected, 0, int64(200*n*CeilLog2(n)*CeilLog2(n)))
		if err != nil {
			t.Skipf("n=%d did not elect a unique leader for this seed", n)
		}
		lg := float64(CeilLog2(n))
		return float64(steps) / (float64(n) * lg * lg)
	}
	small, large := timeFor(64), timeFor(512)
	if large > 20*small+20 {
		t.Fatalf("normalized LE time grew from %.2f to %.2f; not O(n log² n)", small, large)
	}
}

func TestDoneCountdownExact(t *testing.T) {
	p := New(16)
	u, v := p.InitialState(0), p.InitialState(1)
	for i := int32(0); i < p.DoneInit()-1; i++ {
		p.Transition(&u, &v)
		if u.Done || v.Done {
			t.Fatalf("Done fired early at participation %d of %d", i+1, p.DoneInit())
		}
	}
	p.Transition(&u, &v)
	if !u.Done || !v.Done {
		t.Fatalf("Done did not fire after %d participations: u=%+v v=%+v", p.DoneInit(), u, v)
	}
}

func TestCoinToggledOnResponder(t *testing.T) {
	p := New(16)
	u, v := p.InitialState(0), p.InitialState(1)
	c := v.Coin
	p.Transition(&u, &v)
	if v.Coin != c^1 {
		t.Fatalf("responder coin not toggled: %d -> %d", c, v.Coin)
	}
}

func TestLotteryCountsHeads(t *testing.T) {
	p := New(64)
	u := p.InitialState(0)
	heads := State{Coin: 1}
	tails := State{Coin: 0}
	p.Transition(&u, &heads) // reads 1
	heads.Coin = 1
	p.Transition(&u, &heads) // reads 1
	if u.Level != 2 || !u.InLottery {
		t.Fatalf("after two heads: level=%d inLottery=%t", u.Level, u.InLottery)
	}
	p.Transition(&u, &tails) // reads 0 -> lottery over
	if u.Level != 2 || u.InLottery {
		t.Fatalf("after tail: level=%d inLottery=%t", u.Level, u.InLottery)
	}
}

func TestLotteryLevelCap(t *testing.T) {
	p := New(4) // levelCap = 6
	u := p.InitialState(0)
	src := State{Coin: 1}
	for i := 0; i < p.LevelCap()+5; i++ {
		src.Coin = 1
		p.Transition(&u, &src)
	}
	if int(u.Level) != p.LevelCap() || u.InLottery {
		t.Fatalf("level = %d (cap %d), inLottery=%t", u.Level, p.LevelCap(), u.InLottery)
	}
}

func TestSignatureCollectsBits(t *testing.T) {
	p := New(4) // sigLen = 4
	u := p.InitialState(0)
	u.InLottery = false // lottery over, start collecting
	bits := []uint8{1, 0, 1, 1}
	for _, b := range bits {
		src := State{Coin: b}
		p.Transition(&u, &src)
	}
	if u.SigBits != 0 {
		t.Fatalf("signature incomplete: %d bits left", u.SigBits)
	}
	if u.Sig != 0b1011 {
		t.Fatalf("Sig = %b, want 1011", u.Sig)
	}
}

func TestEliminationByLevel(t *testing.T) {
	p := New(64)
	low := State{Contender: true, Level: 2, MaxLevel: 2}
	high := State{Contender: true, Level: 5, MaxLevel: 5}
	p.Transition(&high, &low)
	if !high.Contender {
		t.Fatal("high-level contender eliminated")
	}
	if low.Contender {
		t.Fatal("low-level contender survived meeting a higher level")
	}
	if low.MaxLevel != 5 {
		t.Fatalf("epidemic did not spread max level: %d", low.MaxLevel)
	}
}

func TestEliminationBySignature(t *testing.T) {
	p := New(64)
	a := State{Contender: true, Level: 5, Sig: 9, MaxLevel: 5, MaxSig: 9}
	b := State{Contender: true, Level: 5, Sig: 4, MaxLevel: 5, MaxSig: 4}
	p.Transition(&a, &b)
	if !a.Contender || b.Contender {
		t.Fatalf("signature elimination wrong: a=%t b=%t", a.Contender, b.Contender)
	}
}

func TestDuelOnEqualKeys(t *testing.T) {
	p := New(64)
	a := State{Contender: true, Level: 5, Sig: 9, MaxLevel: 5, MaxSig: 9}
	b := State{Contender: true, Level: 5, Sig: 9, MaxLevel: 5, MaxSig: 9}
	p.Transition(&a, &b)
	if !a.Contender {
		t.Fatal("initiator lost the duel")
	}
	if b.Contender {
		t.Fatal("responder survived the duel")
	}
}

func TestFollowerNeverRevives(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := New(32)
		states := p.InitialStates()
		wasFollower := make([]bool, len(states))
		for i := 0; i < 5000; i++ {
			a, b := r.Pair(len(states))
			p.Transition(&states[a], &states[b])
			for j := range states {
				if wasFollower[j] && states[j].Contender {
					return false
				}
				if !states[j].Contender {
					wasFollower[j] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelDistributionGeometric(t *testing.T) {
	// Contender levels after the lottery should look geometric(1/2):
	// mean ≈ 1 for fair coins.
	const n = 1024
	p := New(n)
	r := sim.New[State](p, p.InitialStates(), 5)
	r.Run(int64(50 * n))
	sum, cnt := 0.0, 0
	for _, s := range r.States() {
		if !s.InLottery {
			sum += float64(s.Level)
			cnt++
		}
	}
	if cnt < n/2 {
		t.Fatalf("only %d agents finished the lottery", cnt)
	}
	mean := sum / float64(cnt)
	if math.Abs(mean-1) > 0.5 {
		t.Fatalf("mean lottery level %.2f, want ≈ 1 (geometric with p=1/2)", mean)
	}
}

// Package leaderelect implements the leader-election substrate required
// by the paper's non-self-stabilizing protocol SpaceEfficientRanking.
//
// The paper (Protocol 1, Lemma 15) uses the protocol of Gąsieniec &
// Stachowiak [SODA'18] strictly as a black box with the following
// interface: after O(n log² n) interactions there is, w.h.p., exactly one
// agent ℓ with isLeader(ℓ) = 1 that also sets leaderDone(ℓ) = 1, and at
// that time every other agent v has isLeader(v) = 0.
//
// This package provides a protocol satisfying that interface, built from
// primitives the paper itself uses elsewhere:
//
//  1. Lottery: every agent starts as a contender and, driven by the
//     synthetic coin of its interaction partners, counts consecutive
//     heads until the first tail. The count is the contender's Level —
//     a geometric random variable, so the maximum over n agents
//     concentrates around log₂ n.
//  2. Signature: after the lottery, a contender collects SigLen(n) =
//     2⌈log₂ n⌉ further coin bits into a Signature, breaking Level ties
//     with collision probability ≈ 1/n² per pair. A contender with a
//     complete signature is "armed"; its key is the pair
//     (Level, Signature), ordered lexicographically.
//  3. Elimination: the maximum known key spreads by one-way epidemic;
//     an armed contender whose key is below the known maximum becomes a
//     follower. Contenders with strictly smaller Level are eliminated
//     even before arming. Two armed contenders with equal keys resolve
//     by direct duel (the responder yields).
//  4. Completion: each agent decrements a done-counter on every
//     interaction it takes part in; when it reaches zero the agent sets
//     leaderDone = 1. The counter is Θ(log² n), so completion happens
//     after Θ(n log² n) interactions — after elimination has w.h.p.
//     finished.
//
// An invariant of the construction (tested) is that at least one
// contender always survives: the holder of the maximum achieved key is
// never eliminated by the epidemic, and duels remove only one of two
// equal contenders.
//
// State accounting: this substrate uses O(n·log² n) states (the
// signature dominates), more than the O(log log n) of [SODA'18]. The
// paper treats Q_LE as an opaque additive term in Theorem 1's
// n + Θ(log n) bound; the census in internal/census reports both the
// paper-analytic and the as-implemented counts. See DESIGN.md §1.
package leaderelect

import "fmt"

// State is the per-agent leader-election state.
type State struct {
	// Coin is the synthetic coin bit, toggled on every interaction in
	// which the agent is the responder.
	Coin uint8
	// Contender reports whether the agent is still in the running.
	Contender bool
	// InLottery reports whether the agent is still counting its initial
	// streak of heads.
	InLottery bool
	// Level is the contender's lottery level: the number of consecutive
	// heads observed before the first tail (capped). For followers it is
	// meaningless.
	Level int16
	// SigBits is the number of signature bits still to collect; the
	// contender is "armed" when it reaches zero.
	SigBits int16
	// Sig is the signature collected so far (MSB first).
	Sig int32
	// MaxLevel and MaxSig together form the maximum armed key observed
	// in the population, spread by one-way epidemic. MaxLevel alone also
	// tracks the maximum (possibly unarmed) level achieved.
	MaxLevel int16
	MaxSig   int32
	// Done is the leaderDone flag of Lemma 15.
	Done bool
	// DoneCtr counts down to Done on every participation.
	DoneCtr int32
}

// Protocol is the population protocol; it is immutable and safe to share
// across runners.
type Protocol struct {
	n        int
	levelCap int16
	sigLen   int16
	doneInit int32
}

// DoneFactor scales the done-counter: DoneCtr starts at
// DoneFactor·⌈log₂ n⌉². The default is tuned so that elimination has
// w.h.p. finished before the first leaderDone fires (experiment E11).
const DoneFactor = 8

// New returns the protocol for a population of n ≥ 2 agents.
func New(n int) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("leaderelect: n must be >= 2, got %d", n))
	}
	lg := CeilLog2(n)
	sigLen := 2 * lg // tie collision probability 2^{-sigLen} ≈ 1/n²
	if sigLen > 30 {
		sigLen = 30 // Sig is an int32
	}
	return &Protocol{
		n:        n,
		levelCap: int16(3 * lg),
		sigLen:   int16(sigLen),
		doneInit: int32(DoneFactor * lg * lg),
	}
}

// N returns the population size the protocol was built for.
func (p *Protocol) N() int { return p.n }

// SigLen returns the number of signature bits a contender collects.
func (p *Protocol) SigLen() int { return int(p.sigLen) }

// LevelCap returns the maximum lottery level.
func (p *Protocol) LevelCap() int { return int(p.levelCap) }

// DoneInit returns the initial value of the done-counter.
func (p *Protocol) DoneInit() int32 { return p.doneInit }

// InitialState returns the start state q₀ for agent index i. The coin is
// initialized to the index parity so that the population starts with a
// balanced synthetic coin (the non-self-stabilizing setting controls its
// own initial configuration; the self-stabilizing wrapper in
// internal/stable warms the coin up instead).
func (p *Protocol) InitialState(i int) State {
	return State{
		Coin:      uint8(i & 1),
		Contender: true,
		InLottery: true,
		SigBits:   p.sigLen,
		DoneCtr:   p.doneInit,
	}
}

// InitialStates returns the initial configuration for the whole
// population.
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.InitialState(i)
	}
	return states
}

// armed reports whether s is a contender with a complete key.
func armed(s *State) bool { return s.Contender && !s.InLottery && s.SigBits == 0 }

// keyLess reports whether key (l1, s1) is lexicographically smaller than
// (l2, s2).
func keyLess(l1 int16, s1 int32, l2 int16, s2 int32) bool {
	return l1 < l2 || (l1 == l2 && s1 < s2)
}

// Transition applies one interaction with initiator u and responder v.
func (p *Protocol) Transition(u, v *State) {
	coin := v.Coin
	v.Coin ^= 1

	// 1. Lottery / signature collection for the initiator.
	switch {
	case u.Contender && u.InLottery:
		if coin == 1 {
			u.Level++
			if u.Level >= p.levelCap {
				u.InLottery = false
			}
		} else {
			u.InLottery = false
		}
	case u.Contender && u.SigBits > 0:
		u.Sig = u.Sig<<1 | int32(coin)
		u.SigBits--
	}

	// 2. Epidemic of the maximum key. Levels of still-climbing or
	// unarmed contenders participate with signature -1 so that any armed
	// key at the same level beats them (an unarmed contender cannot be
	// declared winner, but its level already eliminates lower levels).
	mergeMax(u, v)
	mergeMax(v, u)
	ownIntoMax(u)
	ownIntoMax(v)

	// 3. Elimination by key comparison.
	eliminate(u)
	eliminate(v)

	// 4. Direct duel: two armed contenders with equal keys — the
	// responder yields.
	if armed(u) && armed(v) && u.Level == v.Level && u.Sig == v.Sig {
		v.Contender = false
	}

	// 5. Done counters.
	tickDone(u)
	tickDone(v)
}

// mergeMax folds b's known maximum into a's.
func mergeMax(a, b *State) {
	if keyLess(a.MaxLevel, a.MaxSig, b.MaxLevel, b.MaxSig) {
		a.MaxLevel, a.MaxSig = b.MaxLevel, b.MaxSig
	}
}

// ownIntoMax folds an agent's own key into its known maximum. Unarmed
// contenders contribute (Level, -1).
func ownIntoMax(s *State) {
	if !s.Contender {
		return
	}
	sig := int32(-1)
	if armed(s) {
		sig = s.Sig
	}
	if keyLess(s.MaxLevel, s.MaxSig, s.Level, sig) {
		s.MaxLevel, s.MaxSig = s.Level, sig
	}
}

// eliminate demotes a contender whose key is strictly below the known
// maximum. Unarmed contenders are demoted only on strictly smaller
// level (their signature is not yet comparable).
func eliminate(s *State) {
	if !s.Contender {
		return
	}
	if s.Level < s.MaxLevel {
		s.Contender = false
		return
	}
	if armed(s) && s.Level == s.MaxLevel && s.Sig < s.MaxSig {
		s.Contender = false
	}
}

func tickDone(s *State) {
	if s.Done {
		return
	}
	s.DoneCtr--
	if s.DoneCtr <= 0 {
		s.Done = true
	}
}

// IsLeader reports whether s currently considers itself a leader.
func IsLeader(s *State) bool { return s.Contender }

// IsDoneLeader reports the Protocol 1 line 3 condition:
// isLeader(s) = leaderDone(s) = 1.
func IsDoneLeader(s *State) bool { return s.Contender && s.Done }

// Contenders counts the agents still in the running.
func Contenders(states []State) int {
	c := 0
	for i := range states {
		if states[i].Contender {
			c++
		}
	}
	return c
}

// UniqueLeaderElected reports whether exactly one contender remains and
// it has finished (Done).
func UniqueLeaderElected(states []State) bool {
	leader := -1
	for i := range states {
		if states[i].Contender {
			if leader >= 0 {
				return false
			}
			leader = i
		}
	}
	return leader >= 0 && states[leader].Done
}

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1, the quantity the paper writes as
// ⌈log n⌉ throughout.
func CeilLog2(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("leaderelect: CeilLog2 of %d", n))
	}
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}

package modelcheck

import (
	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/stable"
)

// This file enumerates the per-agent state spaces of the protocols the
// test suite model-checks. Each enumeration mirrors the protocol's
// CheckInvariant exactly; a state the enumeration misses would weaken
// the check, one it over-includes shows up as an Apply error or an
// unreachable-legal counterexample.

// StableStates enumerates the full declared state space of
// StableRanking for the given protocol instance.
func StableStates(p *stable.Protocol) []stable.State {
	var out []stable.State
	n := int32(p.N())

	// Ranked agents (no coin).
	for r := int32(1); r <= n; r++ {
		out = append(out, stable.Ranked(r))
	}
	for coin := uint8(0); coin <= 1; coin++ {
		// PropagateReset, excluding the instantly-awakening (0, 0).
		for rc := int32(0); rc <= p.RMax(); rc++ {
			for dc := int32(0); dc <= p.DMax(); dc++ {
				if rc == 0 && dc == 0 {
					continue
				}
				out = append(out, stable.State{Mode: stable.ModeReset, Coin: coin, ResetCount: rc, DelayCount: dc})
			}
		}
		// FastLeaderElection: undecided (any coinCount), done loser,
		// done leader.
		for lec := int32(1); lec <= p.LEBudget(); lec++ {
			for cc := int32(0); cc <= p.CoinInit(); cc++ {
				out = append(out, stable.State{Mode: stable.ModeLE, Coin: coin, LECount: lec, CoinCount: cc})
			}
			out = append(out, stable.State{Mode: stable.ModeLE, Coin: coin, LECount: lec, LeaderDone: true})
			out = append(out, stable.State{Mode: stable.ModeLE, Coin: coin, LECount: lec, LeaderDone: true, IsLeader: true})
		}
		// Main protocol: waiting and phase agents.
		for alive := int32(1); alive <= p.LMax(); alive++ {
			for w := int32(1); w <= p.WaitInit(); w++ {
				out = append(out, stable.State{Mode: stable.ModeWait, Coin: coin, Wait: w, Alive: alive})
			}
			for ph := int32(1); ph <= p.Phases().KMax(); ph++ {
				out = append(out, stable.State{Mode: stable.ModePhase, Coin: coin, Phase: ph, Alive: alive})
			}
		}
	}
	return out
}

// CaiStates enumerates the n labels of the Cai–Izumi–Wada protocol.
func CaiStates(p *cai.Protocol) []cai.State {
	out := make([]cai.State, p.N())
	for i := range out {
		out[i] = cai.State(i + 1)
	}
	return out
}

// IntervalStates enumerates the binary-tree blocks of the identifier
// space [1, m].
func IntervalStates(p *interval.Protocol) []interval.State {
	var out []interval.State
	for length := int32(1); length <= p.M(); length <<= 1 {
		for lo := int32(1); lo+length-1 <= p.M(); lo += length {
			out = append(out, interval.State{Lo: lo, Hi: lo + length - 1})
		}
	}
	return out
}

// AwareStates enumerates the full declared state space of the
// aware-leader baseline.
func AwareStates(p *aware.Protocol) []aware.State {
	var out []aware.State
	n := int32(p.N())
	for r := int32(1); r <= n; r++ {
		out = append(out, aware.Ranked(r))
	}
	// Parameter bounds mirror stable's (same factors).
	sp := stable.New(p.N(), stable.DefaultParams())
	for coin := uint8(0); coin <= 1; coin++ {
		for next := int32(2); next <= n; next++ {
			for alive := int32(1); alive <= p.LMax(); alive++ {
				out = append(out, aware.State{Mode: aware.ModeLeader, Coin: coin, Next: next, Alive: alive})
			}
		}
		for alive := int32(1); alive <= p.LMax(); alive++ {
			out = append(out, aware.State{Mode: aware.ModeBlank, Coin: coin, Alive: alive})
		}
		for rc := int32(0); rc <= sp.RMax(); rc++ {
			for dc := int32(0); dc <= sp.DMax(); dc++ {
				if rc == 0 && dc == 0 {
					continue
				}
				out = append(out, aware.State{Mode: aware.ModeReset, Coin: coin, ResetCount: rc, DelayCount: dc})
			}
		}
		for lec := int32(1); lec <= sp.LEBudget(); lec++ {
			for cc := int32(0); cc <= sp.CoinInit(); cc++ {
				out = append(out, aware.State{Mode: aware.ModeLE, Coin: coin, LECount: lec, CoinCount: cc})
			}
			out = append(out, aware.State{Mode: aware.ModeLE, Coin: coin, LECount: lec, LeaderDone: true})
			out = append(out, aware.State{Mode: aware.ModeLE, Coin: coin, LECount: lec, LeaderDone: true, IsLeader: true})
		}
	}
	return out
}

// Package modelcheck exhaustively verifies population protocols for
// tiny populations by exploring the full configuration space.
//
// Self-stabilization (paper §III) demands two properties:
//
//   - Closure: legal configurations never change (silent protocols:
//     no interaction changes any state).
//   - Probabilistic stabilization: from every configuration, the legal
//     set is reached with probability 1 in the limit.
//
// For a finite protocol under the uniform random scheduler, the second
// property is equivalent to plain reachability: if from every
// configuration *some* schedule reaches a legal configuration, and the
// legal set is closed, then the random schedule is absorbed in it
// almost surely (standard finite-Markov-chain argument). Both
// reachability over the full |S|^n configuration graph and closure of
// the legal set are therefore checkable exactly — which is what this
// package does, for n small enough that |S|^n fits in memory.
package modelcheck

import (
	"fmt"
)

// Checker verifies one protocol instance over the full configuration
// space States^N.
type Checker[S comparable] struct {
	// States is the per-agent state space (every value an agent may
	// hold under the protocol's invariant).
	States []S
	// N is the population size.
	N int
	// Apply is the pure transition function: given (initiator,
	// responder) it returns their successor states.
	Apply func(u, v S) (S, S)
	// Legal reports whether a configuration is in C_L.
	Legal func(cfg []S) bool
}

// Result reports the outcome of an exhaustive check.
type Result[S comparable] struct {
	// TotalConfigs is |States|^N, the number of configurations checked.
	TotalConfigs int
	// LegalConfigs is the number of legal configurations.
	LegalConfigs int
	// SilentLegal reports that no interaction changes any legal
	// configuration (closure + silence).
	SilentLegal bool
	// AllReachLegal reports that every configuration can reach the
	// legal set.
	AllReachLegal bool
	// Unreachable holds an example configuration that cannot reach the
	// legal set (nil when AllReachLegal).
	Unreachable []S
	// NotSilent holds a legal configuration with a state-changing
	// interaction (nil when SilentLegal).
	NotSilent []S
}

// MaxConfigs caps the configuration space a Run will enumerate.
const MaxConfigs = 64 << 20

// Run performs the exhaustive check. It returns an error if the
// configuration space exceeds MaxConfigs or the checker is malformed.
func (c *Checker[S]) Run() (Result[S], error) {
	k := len(c.States)
	if k == 0 || c.N < 2 || c.Apply == nil || c.Legal == nil {
		return Result[S]{}, fmt.Errorf("modelcheck: malformed checker (states=%d, n=%d)", k, c.N)
	}
	total := 1
	for i := 0; i < c.N; i++ {
		if total > MaxConfigs/k {
			return Result[S]{}, fmt.Errorf("modelcheck: %d^%d configurations exceed the %d cap", k, c.N, MaxConfigs)
		}
		total *= k
	}

	index := make(map[S]int, k)
	for i, s := range c.States {
		if _, dup := index[s]; dup {
			return Result[S]{}, fmt.Errorf("modelcheck: duplicate state %v in state space", s)
		}
		index[s] = i
	}

	// succ computes the successor configuration id for initiator a,
	// responder b of configuration id.
	cfg := make([]S, c.N)
	decode := func(id int) {
		for i := 0; i < c.N; i++ {
			cfg[i] = c.States[id%k]
			id /= k
		}
	}
	encode := func() (int, error) {
		id, mul := 0, 1
		for i := 0; i < c.N; i++ {
			si, ok := index[cfg[i]]
			if !ok {
				return 0, fmt.Errorf("modelcheck: transition left the state space: %v", cfg[i])
			}
			id += si * mul
			mul *= k
		}
		return id, nil
	}

	res := Result[S]{TotalConfigs: total, SilentLegal: true}

	// Pass 1: classify legality, silence of legal configs, and build
	// the forward edges (as flat successor lists).
	legal := make([]bool, total)
	succs := make([][]int32, total)
	for id := 0; id < total; id++ {
		decode(id)
		isLegal := c.Legal(cfg)
		legal[id] = isLegal
		if isLegal {
			res.LegalConfigs++
		}
		var out []int32
		for a := 0; a < c.N; a++ {
			for b := 0; b < c.N; b++ {
				if a == b {
					continue
				}
				decode(id)
				nu, nv := c.Apply(cfg[a], cfg[b])
				if nu == cfg[a] && nv == cfg[b] {
					continue // self-loop
				}
				cfg[a], cfg[b] = nu, nv
				nid, err := encode()
				if err != nil {
					return Result[S]{}, err
				}
				out = append(out, int32(nid))
				if isLegal && res.SilentLegal {
					res.SilentLegal = false
					res.NotSilent = snapshotConfig(c, id, k)
				}
			}
		}
		succs[id] = out
	}

	// Pass 2: reverse reachability from the legal set. Build reverse
	// adjacency implicitly by scanning forward edges once.
	canReach := make([]bool, total)
	queue := make([]int32, 0, total/4)
	for id := 0; id < total; id++ {
		if legal[id] {
			canReach[id] = true
			queue = append(queue, int32(id))
		}
	}
	preds := make([][]int32, total)
	for id := 0; id < total; id++ {
		for _, nid := range succs[id] {
			preds[nid] = append(preds[nid], int32(id))
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, pid := range preds[id] {
			if !canReach[pid] {
				canReach[pid] = true
				queue = append(queue, pid)
			}
		}
	}

	res.AllReachLegal = true
	for id := 0; id < total; id++ {
		if !canReach[id] {
			res.AllReachLegal = false
			res.Unreachable = snapshotConfig(c, id, k)
			break
		}
	}
	return res, nil
}

// snapshotConfig decodes configuration id into a fresh slice.
func snapshotConfig[S comparable](c *Checker[S], id, k int) []S {
	out := make([]S, c.N)
	for i := 0; i < c.N; i++ {
		out[i] = c.States[id%k]
		id /= k
	}
	return out
}

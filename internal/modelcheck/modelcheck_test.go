package modelcheck

import (
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/stable"
)

// TestStableN2Exhaustive verifies, over the FULL configuration space of
// StableRanking for n = 2 (every pair of declared states):
//  1. legal configurations are silent (closure), and
//  2. every configuration can reach a legal one (with the uniform
//     scheduler this implies probabilistic stabilization — Theorem 2's
//     statement, exactly, for n = 2).
func TestStableN2Exhaustive(t *testing.T) {
	p := stable.New(2, stable.DefaultParams())
	states := StableStates(p)
	c := &Checker[stable.State]{
		States: states,
		N:      2,
		Apply: func(u, v stable.State) (stable.State, stable.State) {
			p.Transition(&u, &v)
			return u, v
		},
		Legal: func(cfg []stable.State) bool { return stable.Valid(cfg) },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LegalConfigs != 2 { // (1,2) and (2,1)
		t.Fatalf("legal configs = %d, want 2", res.LegalConfigs)
	}
	if !res.SilentLegal {
		t.Fatalf("legal configuration not silent: %v", res.NotSilent)
	}
	if !res.AllReachLegal {
		t.Fatalf("configuration cannot reach the legal set: %v (of %d configs)",
			res.Unreachable, res.TotalConfigs)
	}
	t.Logf("verified %d configurations (%d states per agent)", res.TotalConfigs, len(states))
}

func TestCaiExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		p := cai.New(n)
		c := &Checker[cai.State]{
			States: CaiStates(p),
			N:      n,
			Apply: func(u, v cai.State) (cai.State, cai.State) {
				p.Transition(&u, &v)
				return u, v
			},
			Legal: func(cfg []cai.State) bool { return cai.Valid(cfg) },
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.SilentLegal || !res.AllReachLegal {
			t.Fatalf("n=%d: silent=%t reach=%t (unreachable: %v)",
				n, res.SilentLegal, res.AllReachLegal, res.Unreachable)
		}
		// Legal configs are the n! permutations.
		fact := 1
		for i := 2; i <= n; i++ {
			fact *= i
		}
		if res.LegalConfigs != fact {
			t.Fatalf("n=%d: %d legal configs, want %d", n, res.LegalConfigs, fact)
		}
	}
}

func TestIntervalExhaustiveFromRoot(t *testing.T) {
	// interval is NOT self-stabilizing: some configurations (e.g. all
	// agents on the same singleton) deadlock... except that the restart
	// rule makes equal singletons escape. Exhaustively check the space
	// for small n and document what holds: legal configs are silent; and
	// with slack (m = 2n) every configuration reaches a legal one.
	p := interval.New(2, 1.0) // n=2, m=4
	c := &Checker[interval.State]{
		States: IntervalStates(p),
		N:      2,
		Apply: func(u, v interval.State) (interval.State, interval.State) {
			p.Transition(&u, &v)
			return u, v
		},
		Legal: func(cfg []interval.State) bool { return interval.Valid(cfg) },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.SilentLegal {
		t.Fatalf("legal interval config not silent: %v", res.NotSilent)
	}
	if !res.AllReachLegal {
		t.Fatalf("interval n=2 m=4: unreachable example %v", res.Unreachable)
	}
}

func TestIntervalN3Exhaustive(t *testing.T) {
	p := interval.New(3, 1.0) // m = 8, 15 tree blocks
	c := &Checker[interval.State]{
		States: IntervalStates(p),
		N:      3,
		Apply: func(u, v interval.State) (interval.State, interval.State) {
			p.Transition(&u, &v)
			return u, v
		},
		Legal: func(cfg []interval.State) bool { return interval.Valid(cfg) },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.SilentLegal || !res.AllReachLegal {
		t.Fatalf("silent=%t reach=%t unreachable=%v", res.SilentLegal, res.AllReachLegal, res.Unreachable)
	}
}

func TestCheckerErrors(t *testing.T) {
	// Malformed checkers.
	if _, err := (&Checker[int]{}).Run(); err == nil {
		t.Fatal("empty checker accepted")
	}
	// Duplicate states.
	c := &Checker[int]{
		States: []int{1, 1},
		N:      2,
		Apply:  func(u, v int) (int, int) { return u, v },
		Legal:  func([]int) bool { return true },
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("duplicate state space accepted")
	}
	// Transition leaving the state space.
	c = &Checker[int]{
		States: []int{0, 1},
		N:      2,
		Apply:  func(u, v int) (int, int) { return u + 5, v },
		Legal:  func([]int) bool { return false },
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("escaping transition accepted")
	}
	// Space too large.
	big := make([]int, 5000)
	for i := range big {
		big[i] = i
	}
	c = &Checker[int]{
		States: big,
		N:      3,
		Apply:  func(u, v int) (int, int) { return u, v },
		Legal:  func([]int) bool { return true },
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("oversized space accepted")
	}
}

func TestCheckerDetectsNonSilence(t *testing.T) {
	// A protocol whose "legal" configs still move: everything legal,
	// all states cycle.
	c := &Checker[int]{
		States: []int{0, 1},
		N:      2,
		Apply:  func(u, v int) (int, int) { return 1 - u, v },
		Legal:  func([]int) bool { return true },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SilentLegal {
		t.Fatal("non-silent protocol declared silent")
	}
	if res.NotSilent == nil {
		t.Fatal("no counterexample reported")
	}
}

func TestCheckerDetectsUnreachable(t *testing.T) {
	// State 2 is absorbing and illegal: configs containing it cannot
	// reach the legal all-zero config.
	c := &Checker[int]{
		States: []int{0, 1, 2},
		N:      2,
		Apply: func(u, v int) (int, int) {
			if u == 1 {
				u = 0
			}
			return u, v
		},
		Legal: func(cfg []int) bool { return cfg[0] == 0 && cfg[1] == 0 },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AllReachLegal {
		t.Fatal("unreachability not detected")
	}
	if res.Unreachable == nil {
		t.Fatal("no counterexample reported")
	}
}

func TestEnumerationsMatchInvariants(t *testing.T) {
	p := stable.New(2, stable.DefaultParams())
	for _, s := range StableStates(p) {
		if err := p.CheckInvariant([]stable.State{s, s}); err != nil {
			t.Fatalf("enumerated state violates invariant: %v (%v)", err, s)
		}
	}
	ip := interval.New(4, 0)
	if err := ip.CheckInvariant(IntervalStates(ip)); err != nil {
		t.Fatal(err)
	}
	if got := len(IntervalStates(ip)); got != 7 { // 4 + 2 + 1 blocks
		t.Fatalf("interval states = %d, want 7", got)
	}
}

// TestAwareN2Exhaustive verifies closure and reachability-of-legality
// over the full n = 2 configuration space of the aware-leader
// baseline, the same guarantee TestStableN2Exhaustive gives the
// paper's protocol.
func TestAwareN2Exhaustive(t *testing.T) {
	p := aware.New(2, aware.DefaultParams())
	states := AwareStates(p)
	for _, s := range states {
		if err := p.CheckInvariant([]aware.State{s, s}); err != nil {
			t.Fatalf("enumerated state violates invariant: %v", err)
		}
	}
	c := &Checker[aware.State]{
		States: states,
		N:      2,
		Apply: func(u, v aware.State) (aware.State, aware.State) {
			p.Transition(&u, &v)
			return u, v
		},
		Legal: func(cfg []aware.State) bool { return aware.Valid(cfg) },
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LegalConfigs != 2 {
		t.Fatalf("legal configs = %d, want 2", res.LegalConfigs)
	}
	if !res.SilentLegal {
		t.Fatalf("legal configuration not silent: %v", res.NotSilent)
	}
	if !res.AllReachLegal {
		t.Fatalf("configuration cannot reach the legal set: %v", res.Unreachable)
	}
	t.Logf("verified %d configurations (%d states per agent)", res.TotalConfigs, len(states))
}

package stable

import (
	"fmt"
	"math"
	"sync/atomic"

	"ssrank/internal/core"
	"ssrank/internal/leaderelect"
)

// Params are the tunable constants of StableRanking. All counters scale
// with log₂ n, as in the paper's state space (Protocol 3).
type Params struct {
	// CWait is c_wait: waitCount starts at ⌈CWait·log₂ n⌉. The paper's
	// simulations use 2.
	CWait float64
	// CLive is c_live: L_max = ⌈CLive·log₂ n⌉ bounds both the liveness
	// counter of Ranking+ and the interaction budget of
	// FastLeaderElection. The paper's simulations use 4.
	CLive float64
	// RMaxFactor scales R_max = ⌈RMaxFactor·log₂ n⌉, the reset-epidemic
	// hop budget of PropagateReset.
	RMaxFactor float64
	// DMaxFactor scales D_max = ⌈DMaxFactor·log₂ n⌉, the dormancy
	// duration of PropagateReset. The paper fixes D_max = c_live·log₂ n.
	DMaxFactor float64
	// LEBudgetFactor scales FastLeaderElection's interaction budget:
	// LECount starts at ⌈LEBudgetFactor·log₂ n⌉. The paper uses L_max
	// for this too, with the proviso that the constant is "large
	// enough" (Lemma 32 wants > 100γ·log n); a budget of only
	// c_live·log₂ n loses races against the start-of-ranking epidemic
	// and causes spurious le-expired resets, so the default is 8.
	LEBudgetFactor float64
	// PaperLiteralProductive switches the unaware-leader test of
	// Ranking+ line 13 to the paper-literal ⌊n·2^{−phase}⌋ bound instead
	// of the exact f_k − f_{k+1} (DESIGN.md note 2). Ablation E8 uses
	// it; the default (false) is the exact form.
	PaperLiteralProductive bool
}

// DefaultParams mirror the constants of the paper's simulations (§VI):
// c_wait = 2 and c_live = D_max/log₂ n = 4.
func DefaultParams() Params {
	return Params{CWait: 2, CLive: 4, RMaxFactor: 4, DMaxFactor: 4, LEBudgetFactor: 8}
}

// Protocol is the self-stabilizing protocol StableRanking (Protocol 3).
//
// All per-interaction logic reads only the immutable parameters, and
// the reset counters are atomic, so Transition is safe to invoke
// concurrently on disjoint state pairs — the contract the sharded
// engine (internal/sim/shard) relies on. A Protocol instance still
// counts the resets *it* triggers, so construct one per trial
// (construction is cheap) rather than sharing across trials.
type Protocol struct {
	n        int
	phases   core.Phases
	waitInit int32 // ⌈c_wait·log₂ n⌉
	lMax     int32 // ⌈c_live·log₂ n⌉
	leBudget int32 // FastLeaderElection interaction budget
	rMax     int32
	dMax     int32
	coinInit int32 // ⌈log₂ n⌉ heads required by FastLeaderElection
	literal  bool

	resets         atomic.Int64
	resetsByReason [numResetReasons]atomic.Int64
}

// ResetReason classifies why a reset was triggered; the protocol keeps
// per-reason counters for diagnostics and experiments.
type ResetReason uint8

const (
	// ReasonDuplicateRank: two agents with equal ranks met
	// (Protocol 4 line 1).
	ReasonDuplicateRank ResetReason = iota
	// ReasonTwoWaiting: two waiting agents met (Protocol 4 line 2).
	ReasonTwoWaiting
	// ReasonAliveExpired: a liveness counter reached zero
	// (Protocol 4 lines 5–11).
	ReasonAliveExpired
	// ReasonLEExpired: an agent's FastLeaderElection budget ran out
	// (Protocol 5 lines 13–15).
	ReasonLEExpired
	// ReasonExternal: a reset triggered from outside the protocol
	// (fault injection, tests).
	ReasonExternal

	numResetReasons
)

// String implements fmt.Stringer.
func (r ResetReason) String() string {
	switch r {
	case ReasonDuplicateRank:
		return "duplicate-rank"
	case ReasonTwoWaiting:
		return "two-waiting"
	case ReasonAliveExpired:
		return "alive-expired"
	case ReasonLEExpired:
		return "le-expired"
	case ReasonExternal:
		return "external"
	default:
		return fmt.Sprintf("ResetReason(%d)", uint8(r))
	}
}

// New builds the protocol for n ≥ 2 agents.
func New(n int, params Params) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("stable: n must be >= 2, got %d", n))
	}
	if params.CWait <= 0 || params.CLive <= 0 || params.RMaxFactor <= 0 ||
		params.DMaxFactor <= 0 || params.LEBudgetFactor <= 0 {
		panic(fmt.Sprintf("stable: all parameter factors must be positive: %+v", params))
	}
	lg := float64(leaderelect.CeilLog2(n))
	ceil := func(f float64) int32 {
		v := int32(math.Ceil(f))
		if v < 1 {
			v = 1
		}
		return v
	}
	return &Protocol{
		n:        n,
		phases:   core.NewPhases(n),
		waitInit: ceil(params.CWait * lg),
		lMax:     ceil(params.CLive * lg),
		leBudget: ceil(params.LEBudgetFactor * lg),
		rMax:     ceil(params.RMaxFactor * lg),
		dMax:     ceil(params.DMaxFactor * lg),
		coinInit: ceil(lg),
		literal:  params.PaperLiteralProductive,
	}
}

// N returns the population size.
func (p *Protocol) N() int { return p.n }

// Phases exposes the phase geometry.
func (p *Protocol) Phases() core.Phases { return p.phases }

// WaitInit returns ⌈c_wait·log₂ n⌉.
func (p *Protocol) WaitInit() int32 { return p.waitInit }

// LMax returns ⌈c_live·log₂ n⌉.
func (p *Protocol) LMax() int32 { return p.lMax }

// LEBudget returns FastLeaderElection's initial interaction budget.
func (p *Protocol) LEBudget() int32 { return p.leBudget }

// RMax returns the reset-epidemic hop budget.
func (p *Protocol) RMax() int32 { return p.rMax }

// DMax returns the dormancy duration.
func (p *Protocol) DMax() int32 { return p.dMax }

// CoinInit returns ⌈log₂ n⌉, the consecutive heads FastLeaderElection
// requires.
func (p *Protocol) CoinInit() int32 { return p.coinInit }

// Resets returns the number of resets this instance has triggered.
func (p *Protocol) Resets() int64 { return p.resets.Load() }

// ResetsFor returns the number of resets triggered for the given
// reason.
func (p *Protocol) ResetsFor(reason ResetReason) int64 {
	if reason >= numResetReasons {
		return 0
	}
	return p.resetsByReason[reason].Load()
}

// ResetBreakdown returns a human-readable reason → count map of all
// resets triggered so far.
func (p *Protocol) ResetBreakdown() map[string]int64 {
	out := make(map[string]int64, int(numResetReasons))
	for r := ResetReason(0); r < numResetReasons; r++ {
		if c := p.resetsByReason[r].Load(); c > 0 {
			out[r.String()] = c
		}
	}
	return out
}

// LEInitial returns the FastLeaderElection start state q_{0,coin}
// (Appendix C), preserving the given coin value.
func (p *Protocol) LEInitial(coin uint8) State {
	return State{
		Mode:      ModeLE,
		Coin:      coin,
		LECount:   p.leBudget,
		CoinCount: p.coinInit,
	}
}

// InitialStates returns the canonical fresh start: every agent in the
// FastLeaderElection initial state with index-parity coins. Being
// self-stabilizing, the protocol converges from *any* configuration;
// this is merely the natural one (and the one C_LE describes).
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.LEInitial(uint8(i & 1))
	}
	return states
}

// TriggerReset puts s into the triggered PropagateReset state: all
// variables except the coin are forgotten, and the coin is initialized
// to 0 if the agent had none (§V-A). It is exported for fault-injection
// experiments; the protocol's own rules use triggerReset with a
// specific reason.
func (p *Protocol) TriggerReset(s *State) { p.triggerReset(s, ReasonExternal) }

func (p *Protocol) triggerReset(s *State, reason ResetReason) {
	coin := uint8(0)
	if s.HasCoin() {
		coin = s.Coin
	}
	*s = State{Mode: ModeReset, Coin: coin, ResetCount: p.rMax, DelayCount: p.dMax}
	// Atomic so concurrent shard workers may share the instance; resets
	// are rare, so the hot path never pays for the synchronization. The
	// totals are order-independent sums, hence still deterministic.
	p.resets.Add(1)
	p.resetsByReason[reason].Add(1)
}

// Transition implements the dispatcher of Protocol 3 with initiator u
// and responder v. It delegates to TransitionT (the body is small
// enough to inline, so callers pay no extra call layer).
func (p *Protocol) Transition(u, v *State) {
	p.TransitionT(u, v)
}

// TransitionT is the dispatcher of Protocol 3, additionally reporting
// which agents' rank projection (RankOf: the rank while ModeRanked, 0
// otherwise) changed. It is the TouchReporter capability the engine's
// touch-aware exact stopping consumes: the rank extractor is evaluated
// here, devirtualized and per dispatch branch, instead of through an
// indirect tracker call per interaction — the LE branches never touch
// ranks, the reset branch can only recruit (never mint) a rank, and
// only the main–main branch pays the full before/after comparison.
// Interactions that leave both projections unchanged — every
// interaction of a silent configuration, and the vast majority late in
// a run — report (false, false) so the tracker is never consulted.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	switch {
	// Line 1: PropagateReset, when either agent participates in it.
	// PropagateReset recruits computing agents (a ranked one loses its
	// rank) and awakens reset agents into leader election; it never
	// creates a ranked agent, so the projection comparison reduces to
	// "left ModeRanked".
	case u.Mode == ModeReset || v.Mode == ModeReset:
		ru, rv := u.Mode == ModeRanked, v.Mode == ModeRanked
		p.propagateReset(u, v)
		uTouched = ru && u.Mode != ModeRanked
		vTouched = rv && v.Mode != ModeRanked

	// Lines 2–3: two leader-electing agents. FastLeaderElection moves
	// agents between ModeLE, ModeWait and ModeReset only — no ranks.
	case u.Mode == ModeLE && v.Mode == ModeLE:
		p.fastLE(u, v)

	// Lines 4–6: a leader-electing agent meeting a main-protocol agent
	// forgets its LE state and joins as a phase-1 agent (no ranks).
	case u.Mode == ModeLE && v.IsMain():
		*u = State{Mode: ModePhase, Coin: u.Coin, Phase: 1, Alive: p.lMax}
	case v.Mode == ModeLE && u.IsMain():
		*v = State{Mode: ModePhase, Coin: v.Coin, Phase: 1, Alive: p.lMax}

	// Lines 7–8: both agents execute the main protocol, where ranks
	// are assigned, advanced and (on detected errors) dropped;
	// rankingPlus reports the changes from its mutation sites, so the
	// no-op majority (e.g. two compatible ranked agents) pays nothing.
	case u.IsMain() && v.IsMain():
		uTouched, vTouched = p.rankingPlus(u, v)
	}

	// Lines 9–10: the responder's coin is toggled if it has one.
	if v.HasCoin() {
		v.Coin ^= 1
	}
	return uTouched, vTouched
}

package stable

import (
	"testing"
	"testing/quick"

	"ssrank/internal/core"
	"ssrank/internal/rng"
)

func mainPhase(coin uint8, phase, alive int32) State {
	return State{Mode: ModePhase, Coin: coin, Phase: phase, Alive: alive}
}

func mainWait(coin uint8, wait, alive int32) State {
	return State{Mode: ModeWait, Coin: coin, Wait: wait, Alive: alive}
}

func TestDuplicateRankTriggersReset(t *testing.T) {
	p := New(64, DefaultParams())
	u, v := Ranked(5), Ranked(5)
	p.Transition(&u, &v)
	if u.Mode != ModeReset {
		t.Fatalf("initiator after duplicate meeting: %+v", u)
	}
	if v != Ranked(5) {
		t.Fatalf("responder should be untouched: %+v", v)
	}
	if p.ResetsFor(ReasonDuplicateRank) != 1 {
		t.Fatalf("duplicate-rank resets = %d", p.ResetsFor(ReasonDuplicateRank))
	}
}

func TestDistinctRanksAreSilent(t *testing.T) {
	p := New(64, DefaultParams())
	u, v := Ranked(5), Ranked(6)
	p.Transition(&u, &v)
	if u != Ranked(5) || v != Ranked(6) {
		t.Fatalf("distinct ranked agents changed: %+v, %+v", u, v)
	}
}

func TestTwoWaitingTriggersReset(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainWait(0, 3, 5)
	v := mainWait(1, 2, 5)
	p.Transition(&u, &v)
	if u.Mode != ModeReset {
		t.Fatalf("initiator after two-waiting meeting: %+v", u)
	}
	if p.ResetsFor(ReasonTwoWaiting) != 1 {
		t.Fatalf("two-waiting resets = %d", p.ResetsFor(ReasonTwoWaiting))
	}
}

func TestLivenessMaxMinusOne(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainPhase(0, 1, 7)
	v := mainPhase(0, 1, 3)
	p.Transition(&u, &v)
	if u.Alive != 6 || v.Alive != 6 {
		t.Fatalf("alive = (%d, %d), want (6, 6)", u.Alive, v.Alive)
	}
}

func TestLivenessMaxMinusOneExpiryResets(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainPhase(0, 1, 1)
	v := mainPhase(0, 1, 1)
	p.Transition(&u, &v)
	if u.Mode != ModeReset || v.Mode != ModeReset {
		t.Fatalf("agents after joint expiry: %+v, %+v — both must reset", u, v)
	}
	if p.ResetsFor(ReasonAliveExpired) != 2 {
		t.Fatalf("alive-expired resets = %d, want 2 (both witnesses)", p.ResetsFor(ReasonAliveExpired))
	}
}

func TestTopRankedDrainLiveness(t *testing.T) {
	p := New(64, DefaultParams())
	for _, rank := range []int32{63, 64} {
		u := Ranked(rank)
		v := mainPhase(1, 3, 5)
		p.Transition(&u, &v)
		if v.Alive != 4 {
			t.Fatalf("rank %d: alive = %d, want 4", rank, v.Alive)
		}
		if u != Ranked(rank) {
			t.Fatalf("rank %d initiator changed: %+v", rank, u)
		}
	}
	// Lower ranks do not drain.
	u := Ranked(62)
	v := mainPhase(1, 3, 5)
	p.Transition(&u, &v)
	if v.Alive != 5 {
		t.Fatalf("rank 62 drained: alive = %d", v.Alive)
	}
}

func TestTopRankedDrainExpiryResets(t *testing.T) {
	p := New(64, DefaultParams())
	u := Ranked(64)
	v := mainPhase(1, 3, 1)
	p.Transition(&u, &v)
	if u.Mode != ModeReset || v.Mode != ModeReset {
		t.Fatalf("agents after draining to zero: %+v, %+v — both must reset", u, v)
	}
	if p.ResetsFor(ReasonAliveExpired) != 2 {
		t.Fatalf("alive-expired resets = %d, want 2 (both witnesses)", p.ResetsFor(ReasonAliveExpired))
	}
}

func TestCoinZeroRefreshesLivenessForProductivePairs(t *testing.T) {
	p := New(64, DefaultParams())

	// Waiting initiator refreshes a tails responder.
	u := mainWait(0, 3, 5)
	v := mainPhase(0, 2, 3)
	p.Transition(&u, &v)
	if v.Alive != p.LMax() {
		t.Fatalf("alive = %d, want refreshed to %d", v.Alive, p.LMax())
	}
	if u.Wait != 3 {
		t.Fatalf("wait counter must not move on tails: %d", u.Wait)
	}
	if v.Coin != 1 {
		t.Fatalf("responder coin not toggled: %d", v.Coin)
	}

	// Unaware leader refreshes a tails responder.
	k := int32(2)
	leader := Ranked(1)
	v2 := mainPhase(0, k, 3)
	p.Transition(&leader, &v2)
	if v2.Alive != p.LMax() {
		t.Fatalf("unaware leader did not refresh: alive = %d", v2.Alive)
	}
	if v2.Mode != ModePhase {
		t.Fatalf("tails responder must not be ranked: %+v", v2)
	}

	// A non-leader ranked agent does not refresh.
	other := Ranked(40)
	v3 := mainPhase(0, k, 3)
	p.Transition(&other, &v3)
	if v3.Alive != 3 {
		t.Fatalf("non-leader refreshed: alive = %d", v3.Alive)
	}
}

func TestCoinOneRunsBaseProtocol(t *testing.T) {
	p := New(64, DefaultParams())
	leader := Ranked(1)
	v := mainPhase(1, 1, 5)
	p.Transition(&leader, &v)
	wantRank := p.Phases().F(2) + 1
	if v.Mode != ModeRanked || v.Rank != wantRank {
		t.Fatalf("heads responder got %+v, want rank(%d)", v, wantRank)
	}
	if v.Coin != 0 || v.Alive != 0 {
		t.Fatalf("ranked agent retained coin/alive: %+v", v)
	}
	if leader != Ranked(2) {
		t.Fatalf("leader = %+v, want rank(2)", leader)
	}
}

func TestLeaderBecomingWaitingGetsCoinAndAlive(t *testing.T) {
	// Protocol 4 lines 17–18.
	p := New(64, DefaultParams())
	width := p.Phases().Width(1)
	leader := Ranked(width) // last leader rank of phase 1
	v := mainPhase(1, 1, 5)
	p.Transition(&leader, &v)
	if leader.Mode != ModeWait {
		t.Fatalf("leader = %+v, want waiting", leader)
	}
	if leader.Coin != 0 || leader.Alive != p.LMax() || leader.Wait != p.WaitInit() {
		t.Fatalf("waiting leader counters wrong: %+v", leader)
	}
	if v.Mode != ModeRanked || v.Rank != p.Phases().F(1) {
		t.Fatalf("last assignment of phase 1: %+v, want rank(%d)", v, p.Phases().F(1))
	}
}

func TestWaitingCountdownOnHeadsOnly(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainWait(0, 2, 5)

	tails := mainPhase(0, 1, 5)
	p.Transition(&u, &tails)
	if u.Wait != 2 {
		t.Fatalf("wait moved on tails: %d", u.Wait)
	}

	heads := mainPhase(1, 1, 5)
	p.Transition(&u, &heads)
	if u.Wait != 1 {
		t.Fatalf("wait = %d after heads, want 1", u.Wait)
	}
	heads2 := mainPhase(1, 1, 5)
	p.Transition(&u, &heads2)
	if u != Ranked(1) {
		t.Fatalf("leader after countdown: %+v, want rank(1)", u)
	}
}

func TestPhaseEpidemicUnderCoin(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainPhase(0, 4, 5)
	v := mainPhase(1, 2, 5) // heads: base protocol runs
	p.Transition(&u, &v)
	if u.Phase != 4 || v.Phase != 4 {
		t.Fatalf("phases = (%d, %d), want (4, 4)", u.Phase, v.Phase)
	}

	// Tails: base protocol does not run, phases unchanged.
	u2 := mainPhase(0, 4, 5)
	v2 := mainPhase(0, 2, 5)
	p.Transition(&u2, &v2)
	if u2.Phase != 4 || v2.Phase != 2 {
		t.Fatalf("tails interaction moved phases: (%d, %d)", u2.Phase, v2.Phase)
	}
}

func TestRankedResponderInert(t *testing.T) {
	p := New(64, DefaultParams())
	u := mainPhase(1, 2, 5)
	v := Ranked(30)
	p.Transition(&u, &v)
	if u != mainPhase(1, 2, 5) || v != Ranked(30) {
		t.Fatalf("interaction with ranked responder changed states: %+v, %+v", u, v)
	}
}

func TestPaperLiteralProductiveCondition(t *testing.T) {
	params := DefaultParams()
	params.PaperLiteralProductive = true
	p := New(5, params) // n=5: f = [5,3,2,1], phase 3 width = 1 but ⌊5/8⌋ = 0
	u := Ranked(1)
	v := mainPhase(0, 3, 2)
	p.Transition(&u, &v)
	if v.Alive != 2 {
		t.Fatalf("literal condition refreshed at phase 3 for n=5: alive=%d", v.Alive)
	}

	pExact := New(5, DefaultParams())
	v2 := mainPhase(0, 3, 2)
	u2 := Ranked(1)
	pExact.Transition(&u2, &v2)
	if v2.Alive != pExact.LMax() {
		t.Fatalf("exact condition did not refresh at phase 3 for n=5: alive=%d", v2.Alive)
	}
}

// TestBaseRankingMatchesCore cross-validates the Ranking reimplementation
// inside Ranking+ against core.Ranking on random main-state pairs.
func TestBaseRankingMatchesCore(t *testing.T) {
	const n = 97 // deliberately not a power of two
	ps := New(n, DefaultParams())
	pc := core.New(n, core.DefaultParams())

	toCore := func(s State) core.State {
		switch s.Mode {
		case ModeRanked:
			return core.RankedState(s.Rank)
		case ModeWait:
			return core.WaitState(s.Wait)
		case ModePhase:
			return core.PhaseState(s.Phase)
		}
		panic("not a main state")
	}
	fromCore := func(c core.State, orig State) State {
		switch c.Kind {
		case core.KindRanked:
			return Ranked(c.Rank)
		case core.KindWait:
			return State{Mode: ModeWait, Coin: orig.Coin, Wait: c.Wait, Alive: orig.Alive}
		case core.KindPhase:
			return State{Mode: ModePhase, Coin: orig.Coin, Phase: c.Phase, Alive: orig.Alive}
		}
		panic("unexpected core kind")
	}

	randMain := func(r *rng.RNG) State {
		switch r.Intn(3) {
		case 0:
			return Ranked(int32(1 + r.Intn(n)))
		case 1:
			return mainWait(uint8(r.Intn(2)), int32(1+r.Intn(int(ps.WaitInit()))), int32(1+r.Intn(int(ps.LMax()))))
		default:
			return mainPhase(uint8(r.Intn(2)), int32(1+r.Intn(int(ps.Phases().KMax()))), int32(1+r.Intn(int(ps.LMax()))))
		}
	}

	f := func(seed uint64) bool {
		r := rng.New(seed)
		for i := 0; i < 200; i++ {
			u, v := randMain(r), randMain(r)
			cu, cv := toCore(u), toCore(v)

			su, sv := u, v
			becameS, _, _ := ps.baseRanking(&su, &sv)
			becameC := pc.Ranking(&cu, &cv)
			if becameS != becameC {
				t.Logf("became mismatch on (%v, %v)", u, v)
				return false
			}
			// Compare resulting role/rank/phase/wait, ignoring
			// coin/alive bookkeeping that only stable carries.
			wu, wv := fromCore(cu, u), fromCore(cv, v)
			if becameS {
				// stable sets the fresh waiting agent's alive to 0 here
				// (rankingPlus fills it in); align for comparison.
				wu.Alive = su.Alive
				wu.Coin = su.Coin
			}
			if sv.Mode == ModeRanked {
				// stable clears coin/alive on ranking; fromCore
				// preserves orig's — align.
				wv = Ranked(sv.Rank)
				if cv.Kind != core.KindRanked || cv.Rank != sv.Rank {
					t.Logf("rank mismatch on (%v, %v): stable %v core %v", u, v, sv, cv)
					return false
				}
			}
			if su.Mode == ModeRanked && su.Rank == 1 && u.Mode == ModeWait {
				wu = Ranked(1)
			}
			if su != wu || sv != wv {
				t.Logf("state mismatch on (%v, %v): stable (%v, %v) vs core-mapped (%v, %v)", u, v, su, sv, wu, wv)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package stable

// propagateReset implements the PropagateReset subprotocol (§V-A,
// following Burman et al. PODC'21). It is invoked whenever at least one
// of the two agents is in ModeReset.
//
// Classes: an agent is *propagating* while resetCount > 0, *dormant*
// when resetCount = 0 and delayCount > 0, and *computing* otherwise
// (i.e. in any non-reset mode). The rules are role-agnostic: the reset
// epidemic spreads regardless of which agent initiated the interaction.
//
//   - propagating p meets computing c: p.resetCount--; c becomes
//     propagating with (p.resetCount, D_max), keeping only its coin
//     (initialized to 0 if it had none).
//   - propagating p meets propagating q: both adopt
//     max(resetCounts) − 1.
//   - propagating p meets dormant d: p.resetCount--; d.delayCount--.
//   - dormant d meets anything: d.delayCount--.
//
// When delayCount reaches 0 the agent forgets its reset state and
// (re-)enters FastLeaderElection, keeping its coin.
func (p *Protocol) propagateReset(u, v *State) {
	uProp, vProp := u.IsPropagating(), v.IsPropagating()
	uDorm, vDorm := u.IsDormant(), v.IsDormant()

	switch {
	case uProp && vProp:
		m := u.ResetCount
		if v.ResetCount > m {
			m = v.ResetCount
		}
		m--
		u.ResetCount, v.ResetCount = m, m

	case uProp:
		u.ResetCount--
		if vDorm {
			v.DelayCount--
		} else {
			// v is computing: it becomes propagating.
			coin := uint8(0)
			if v.HasCoin() {
				coin = v.Coin
			}
			*v = State{Mode: ModeReset, Coin: coin, ResetCount: u.ResetCount, DelayCount: p.dMax}
		}

	case vProp:
		v.ResetCount--
		if uDorm {
			u.DelayCount--
		} else {
			coin := uint8(0)
			if u.HasCoin() {
				coin = u.Coin
			}
			*u = State{Mode: ModeReset, Coin: coin, ResetCount: v.ResetCount, DelayCount: p.dMax}
		}

	default:
		// At least one dormant agent, no propagating ones.
		if uDorm {
			u.DelayCount--
		}
		if vDorm {
			v.DelayCount--
		}
	}

	p.awaken(u)
	p.awaken(v)
}

// awaken moves a reset agent whose dormancy has run out into the
// FastLeaderElection initial state, preserving its coin (§V-A).
func (p *Protocol) awaken(s *State) {
	if s.Mode == ModeReset && s.ResetCount <= 0 && s.DelayCount <= 0 {
		*s = p.LEInitial(s.Coin)
	}
}

package stable

import "fmt"

// Valid reports whether the configuration is in C_L: all agents ranked
// with ranks forming a permutation of 1..n.
func Valid(states []State) bool {
	seen := make([]bool, len(states)+1)
	for i := range states {
		s := &states[i]
		if s.Mode != ModeRanked || s.Rank < 1 || int(s.Rank) > len(states) || seen[s.Rank] {
			return false
		}
		seen[s.Rank] = true
	}
	return true
}

// RankOf returns the agent's rank, or 0 while unranked — the extractor
// behind the engine's incremental validity condition
// (sim.NewRankCond(0, stable.RankOf) tracks Valid in O(1) per
// interaction).
func RankOf(s *State) int {
	if s.Mode != ModeRanked {
		return 0
	}
	return int(s.Rank)
}

// RankedCount returns the number of ranked agents (the blue series of
// Fig. 2).
func RankedCount(states []State) int {
	c := 0
	for i := range states {
		if states[i].Mode == ModeRanked {
			c++
		}
	}
	return c
}

// MeanPhase returns the average phase counter over phase agents (the
// red series of Fig. 2), or 0 when there are none.
func MeanPhase(states []State) float64 {
	sum, c := 0.0, 0
	for i := range states {
		if states[i].Mode == ModePhase {
			sum += float64(states[i].Phase)
			c++
		}
	}
	if c == 0 {
		return 0
	}
	return sum / float64(c)
}

// CountModes tallies agents per mode.
func CountModes(states []State) map[Mode]int {
	m := make(map[Mode]int, 5)
	for i := range states {
		m[states[i].Mode]++
	}
	return m
}

// LeaderRank1 returns the index of the agent holding rank 1, or -1.
// With the paper's output function this is the elected leader.
func LeaderRank1(states []State) int {
	for i := range states {
		if states[i].Mode == ModeRanked && states[i].Rank == 1 {
			return i
		}
	}
	return -1
}

// CheckInvariant verifies that every agent's variables lie inside the
// declared state space of Protocol 3 / Protocol 4. A violation means
// the implementation left the finite state space and would invalidate
// the paper's state-counting.
func (p *Protocol) CheckInvariant(states []State) error {
	n := int32(p.n)
	for i := range states {
		s := &states[i]
		if s.HasCoin() && s.Coin > 1 {
			return fmt.Errorf("agent %d: coin %d not a bit", i, s.Coin)
		}
		switch s.Mode {
		case ModeRanked:
			if s.Rank < 1 || s.Rank > n {
				return fmt.Errorf("agent %d: rank %d outside [1, %d]", i, s.Rank, n)
			}
		case ModeReset:
			if s.ResetCount < 0 || s.ResetCount > p.rMax {
				return fmt.Errorf("agent %d: resetCount %d outside [0, %d]", i, s.ResetCount, p.rMax)
			}
			if s.DelayCount < 0 || s.DelayCount > p.dMax {
				return fmt.Errorf("agent %d: delayCount %d outside [0, %d]", i, s.DelayCount, p.dMax)
			}
			if s.ResetCount == 0 && s.DelayCount == 0 {
				return fmt.Errorf("agent %d: reset agent with both counters zero (should have awakened)", i)
			}
		case ModeLE:
			if s.LECount < 1 || s.LECount > p.leBudget {
				return fmt.Errorf("agent %d: LECount %d outside [1, %d]", i, s.LECount, p.leBudget)
			}
			if s.CoinCount < 0 || s.CoinCount > p.coinInit {
				return fmt.Errorf("agent %d: coinCount %d outside [0, %d]", i, s.CoinCount, p.coinInit)
			}
		case ModeWait:
			if s.Wait < 1 || s.Wait > p.waitInit {
				return fmt.Errorf("agent %d: wait %d outside [1, %d]", i, s.Wait, p.waitInit)
			}
			if s.Alive < 1 || s.Alive > p.lMax {
				return fmt.Errorf("agent %d: alive %d outside [1, %d]", i, s.Alive, p.lMax)
			}
		case ModePhase:
			if s.Phase < 1 || s.Phase > p.phases.KMax() {
				return fmt.Errorf("agent %d: phase %d outside [1, %d]", i, s.Phase, p.phases.KMax())
			}
			if s.Alive < 1 || s.Alive > p.lMax {
				return fmt.Errorf("agent %d: alive %d outside [1, %d]", i, s.Alive, p.lMax)
			}
		default:
			return fmt.Errorf("agent %d: invalid mode %d", i, s.Mode)
		}
	}
	return nil
}

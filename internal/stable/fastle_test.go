package stable

import (
	"testing"

	"ssrank/internal/sim"
)

func TestFastLETailMakesNonLeader(t *testing.T) {
	p := New(256, DefaultParams())
	u := p.LEInitial(0)
	v := p.LEInitial(0) // coin 0: a tail
	p.Transition(&u, &v)
	if !u.LeaderDone || u.IsLeader {
		t.Fatalf("after a tail: done=%t leader=%t, want done non-leader", u.LeaderDone, u.IsLeader)
	}
	if u.LECount != p.LEBudget()-1 {
		t.Fatalf("LECount = %d, want %d", u.LECount, p.LEBudget()-1)
	}
	// Responder's coin toggled by the dispatcher.
	if v.Coin != 1 {
		t.Fatalf("responder coin = %d, want toggled to 1", v.Coin)
	}
}

func TestFastLEConsecutiveHeadsElectAndTransition(t *testing.T) {
	p := New(256, DefaultParams())
	u := p.LEInitial(0)
	need := int(p.CoinInit()) // ⌈log₂ 256⌉ = 8 heads
	for i := 0; i < need; i++ {
		v := p.LEInitial(1) // fresh heads partner each time
		p.Transition(&u, &v)
		if i < need-1 && u.Mode != ModeLE {
			t.Fatalf("u left LE after %d heads: %+v", i+1, u)
		}
	}
	// On the final head u becomes leader and, having plenty of budget,
	// transitions straight to the waiting state of the main protocol.
	if u.Mode != ModeWait {
		t.Fatalf("after %d heads u = %+v, want waiting", need, u)
	}
	if u.Wait != p.WaitInit() || u.Alive != p.LMax() {
		t.Fatalf("waiting leader counters: wait=%d alive=%d, want (%d, %d)",
			u.Wait, u.Alive, p.WaitInit(), p.LMax())
	}
}

func TestFastLEDoneAgentIgnoresCoins(t *testing.T) {
	p := New(256, DefaultParams())
	u := p.LEInitial(0)
	u.LeaderDone = true
	cc := u.CoinCount
	v := p.LEInitial(1)
	p.Transition(&u, &v)
	if u.CoinCount != cc {
		t.Fatalf("done agent's coinCount changed: %d -> %d", cc, u.CoinCount)
	}
	if u.LECount != p.LEBudget()-1 {
		t.Fatalf("done agent must still pay budget: LECount = %d", u.LECount)
	}
}

func TestFastLEBudgetExpiryTriggersReset(t *testing.T) {
	p := New(256, DefaultParams())
	u := p.LEInitial(0)
	u.LeaderDone = true // a loser waiting for someone else
	u.LECount = 1
	v := p.LEInitial(1)
	p.Transition(&u, &v)
	if u.Mode != ModeReset || u.ResetCount != p.RMax() {
		t.Fatalf("expired agent = %+v, want triggered reset", u)
	}
	if p.ResetsFor(ReasonLEExpired) != 1 {
		t.Fatalf("le-expired resets = %d, want 1", p.ResetsFor(ReasonLEExpired))
	}
}

func TestFastLESlowLeaderDoesNotTransition(t *testing.T) {
	// A leader elected after LECount dropped below budget/2 must not
	// start the main phase (Protocol 5 line 9); it eventually expires.
	p := New(256, DefaultParams())
	u := p.LEInitial(0)
	u.LECount = p.LEBudget()/2 - 1
	u.CoinCount = 1
	v := p.LEInitial(1) // heads
	p.Transition(&u, &v)
	if u.Mode != ModeLE {
		t.Fatalf("slow leader transitioned: %+v", u)
	}
	if !u.IsLeader || !u.LeaderDone {
		t.Fatalf("slow leader flags: %+v", u)
	}
}

func TestFastLEOnlyInitiatorUpdates(t *testing.T) {
	p := New(256, DefaultParams())
	u, v := p.LEInitial(0), p.LEInitial(1)
	lc, cc := v.LECount, v.CoinCount
	p.Transition(&u, &v)
	if v.LECount != lc || v.CoinCount != cc {
		t.Fatalf("responder LE variables changed: %+v", v)
	}
}

func TestLEAgentJoinsMainAsPhaseOne(t *testing.T) {
	// Protocol 3 lines 4–6: an LE agent meeting a main agent becomes a
	// phase-1 agent with a full liveness counter, keeping its coin.
	p := New(256, DefaultParams())
	le := p.LEInitial(1)
	main := Ranked(42)
	p.Transition(&le, &main)
	if le.Mode != ModePhase || le.Phase != 1 || le.Alive != p.LMax() || le.Coin != 1 {
		t.Fatalf("LE initiator joined as %+v", le)
	}

	le2 := p.LEInitial(1)
	main2 := Ranked(42)
	p.Transition(&main2, &le2)
	// le2 is the responder: it joins and then its coin is toggled.
	if le2.Mode != ModePhase || le2.Phase != 1 || le2.Coin != 0 {
		t.Fatalf("LE responder joined as %+v", le2)
	}
}

func TestFastLEUniqueWinnerProbability(t *testing.T) {
	// Lemma 30: from a balanced-coin start, exactly one agent wins the
	// lottery with probability > 1/(8e) ≈ 0.046. Measure the one-shot
	// success rate over independent populations; it is typically ≈ 1/e.
	if testing.Short() {
		t.Skip("statistical test is slow")
	}
	const n, trials = 128, 200
	wins := 0
	for trial := 0; trial < trials; trial++ {
		p := New(n, DefaultParams())
		r := sim.New[State](p, p.InitialStates(), uint64(1000+trial))
		// Run until every agent has decided (done, transitioned, or
		// reset).
		decided := func(ss []State) bool {
			for i := range ss {
				if ss[i].Mode == ModeLE && !ss[i].LeaderDone {
					return false
				}
			}
			return true
		}
		if _, err := r.RunUntil(decided, 0, int64(50*n*17)); err != nil {
			continue
		}
		leaders := 0
		for _, s := range r.States() {
			if (s.Mode == ModeLE && s.IsLeader) || s.Mode == ModeWait || s.Mode == ModeRanked || s.Mode == ModePhase {
				// Any agent already in the main protocol counts as an
				// elected leader (it transitioned via line 9–12) —
				// phase agents arise only from a leader's epidemic.
				if s.Mode == ModeWait || (s.Mode == ModeLE && s.IsLeader) {
					leaders++
				}
			}
		}
		if leaders == 1 {
			wins++
		}
	}
	rate := float64(wins) / trials
	if rate < 1.0/(8*2.7182818) {
		t.Fatalf("unique-leader rate %.3f below the 1/(8e) bound", rate)
	}
}

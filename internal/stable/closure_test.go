package stable

import (
	"testing"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// TestClosureUnderEverySchedule verifies the closure property against
// an adversarial scheduler: in a legal configuration, applying EVERY
// ordered pair (not just random ones) changes nothing. The uniform
// scheduler only matters for the time bound; closure is schedule-free.
func TestClosureUnderEverySchedule(t *testing.T) {
	const n = 64
	p := New(n, DefaultParams())
	perm := rng.New(5).Perm(n)
	states := make([]State, n)
	for i, rk := range perm {
		states[i] = Ranked(int32(rk + 1))
	}
	r := sim.New[State](p, states, 1)
	for round := 0; round < 3; round++ {
		r.RunPairs(sim.AllOrderedPairs(n))
	}
	for i, s := range r.States() {
		if s != Ranked(int32(perm[i]+1)) {
			t.Fatalf("agent %d changed under exhaustive schedule: %v", i, s)
		}
	}
	if p.Resets() != 0 {
		t.Fatalf("%d resets under exhaustive schedule of a legal config", p.Resets())
	}
}

// TestNonLegalConfigsMoveUnderSomeSchedule is the complement: any
// all-ranked configuration with a duplicate must change under the
// exhaustive schedule (the duplicate pair is part of it).
func TestNonLegalConfigsMoveUnderSomeSchedule(t *testing.T) {
	const n = 16
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := range states {
		states[i] = Ranked(int32(i + 1))
	}
	states[3] = Ranked(9) // duplicate of agent 8's rank
	r := sim.New[State](p, states, 1)
	r.RunPairs(sim.AllOrderedPairs(n))
	if p.Resets() == 0 {
		t.Fatal("duplicate rank not detected by the exhaustive schedule")
	}
}

func TestRunPairsPanicsOnBadPair(t *testing.T) {
	p := New(4, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 1)
	for _, bad := range [][2]int{{0, 0}, {-1, 2}, {0, 4}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("pair %v accepted", bad)
				}
			}()
			r.RunPairs([][2]int{bad})
		}()
	}
}

func TestAllOrderedPairsComplete(t *testing.T) {
	pairs := sim.AllOrderedPairs(5)
	if len(pairs) != 20 {
		t.Fatalf("got %d pairs, want 20", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, pr := range pairs {
		if pr[0] == pr[1] || seen[pr] {
			t.Fatalf("bad or duplicate pair %v", pr)
		}
		seen[pr] = true
	}
}

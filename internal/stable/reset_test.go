package stable

import (
	"testing"

	"ssrank/internal/sim"
)

func TestTriggerResetClearsAllButCoin(t *testing.T) {
	p := New(64, DefaultParams())

	s := State{Mode: ModePhase, Coin: 1, Phase: 3, Alive: 5}
	p.TriggerReset(&s)
	want := State{Mode: ModeReset, Coin: 1, ResetCount: p.RMax(), DelayCount: p.DMax()}
	if s != want {
		t.Fatalf("after trigger: %+v, want %+v", s, want)
	}

	// A ranked agent has no coin; it is initialized to 0.
	s = Ranked(17)
	s.Coin = 0
	p.TriggerReset(&s)
	if s.Coin != 0 || s.Mode != ModeReset {
		t.Fatalf("ranked agent after trigger: %+v", s)
	}

	if p.Resets() != 2 || p.ResetsFor(ReasonExternal) != 2 {
		t.Fatalf("reset counters: total=%d external=%d", p.Resets(), p.ResetsFor(ReasonExternal))
	}
}

func TestPropagatingInfectsComputing(t *testing.T) {
	p := New(64, DefaultParams())
	prop := State{Mode: ModeReset, Coin: 0, ResetCount: 5, DelayCount: p.DMax()}
	comp := State{Mode: ModePhase, Coin: 1, Phase: 2, Alive: 3}

	p.Transition(&prop, &comp)
	if prop.ResetCount != 4 {
		t.Fatalf("propagating agent resetCount = %d, want 4", prop.ResetCount)
	}
	if comp.Mode != ModeReset || comp.ResetCount != 4 || comp.DelayCount != p.DMax() {
		t.Fatalf("computing agent became %+v, want propagating (4, Dmax)", comp)
	}
	// The dispatcher toggles the responder's coin after the subprotocol.
	if comp.Coin != 0 {
		t.Fatalf("infected agent's coin = %d, want original 1 toggled to 0", comp.Coin)
	}
}

func TestPropagatingInfectsComputingAsResponder(t *testing.T) {
	// The epidemic is role-agnostic.
	p := New(64, DefaultParams())
	comp := Ranked(9)
	prop := State{Mode: ModeReset, Coin: 0, ResetCount: 3, DelayCount: p.DMax()}
	p.Transition(&comp, &prop)
	if comp.Mode != ModeReset || comp.ResetCount != 2 {
		t.Fatalf("initiator computing agent became %+v, want propagating with 2", comp)
	}
	if prop.ResetCount != 2 {
		t.Fatalf("responder propagating resetCount = %d, want 2", prop.ResetCount)
	}
}

func TestTwoPropagatingTakeMaxMinusOne(t *testing.T) {
	p := New(64, DefaultParams())
	a := State{Mode: ModeReset, Coin: 0, ResetCount: 7, DelayCount: p.DMax()}
	b := State{Mode: ModeReset, Coin: 0, ResetCount: 3, DelayCount: p.DMax()}
	p.Transition(&a, &b)
	if a.ResetCount != 6 || b.ResetCount != 6 {
		t.Fatalf("resetCounts = (%d, %d), want (6, 6)", a.ResetCount, b.ResetCount)
	}
}

func TestPropagatingMeetsDormant(t *testing.T) {
	p := New(64, DefaultParams())
	prop := State{Mode: ModeReset, Coin: 0, ResetCount: 2, DelayCount: p.DMax()}
	dorm := State{Mode: ModeReset, Coin: 0, ResetCount: 0, DelayCount: 5}
	p.Transition(&prop, &dorm)
	if prop.ResetCount != 1 {
		t.Fatalf("propagating resetCount = %d, want 1", prop.ResetCount)
	}
	if dorm.DelayCount != 4 {
		t.Fatalf("dormant delayCount = %d, want 4", dorm.DelayCount)
	}
}

func TestDormantDecrementsAgainstAnyone(t *testing.T) {
	p := New(64, DefaultParams())
	dorm := State{Mode: ModeReset, Coin: 0, ResetCount: 0, DelayCount: 3}
	other := Ranked(5)
	p.Transition(&dorm, &other)
	if dorm.DelayCount != 2 {
		t.Fatalf("delayCount = %d, want 2", dorm.DelayCount)
	}
	if other != Ranked(5) {
		t.Fatalf("computing partner changed: %+v", other)
	}

	// Two dormant agents both decrement.
	a := State{Mode: ModeReset, Coin: 0, ResetCount: 0, DelayCount: 3}
	b := State{Mode: ModeReset, Coin: 1, ResetCount: 0, DelayCount: 2}
	p.Transition(&a, &b)
	if a.DelayCount != 2 || b.DelayCount != 1 {
		t.Fatalf("delayCounts = (%d, %d), want (2, 1)", a.DelayCount, b.DelayCount)
	}
}

func TestDormantAwakensIntoLeaderElection(t *testing.T) {
	p := New(64, DefaultParams())
	dorm := State{Mode: ModeReset, Coin: 1, ResetCount: 0, DelayCount: 1}
	other := Ranked(5)
	p.Transition(&dorm, &other)
	want := p.LEInitial(1)
	if dorm != want {
		t.Fatalf("awakened agent = %+v, want %+v", dorm, want)
	}
}

func TestExpiredPropagatorBecomesDormantNotAwake(t *testing.T) {
	p := New(64, DefaultParams())
	a := State{Mode: ModeReset, Coin: 0, ResetCount: 1, DelayCount: p.DMax()}
	b := State{Mode: ModeReset, Coin: 0, ResetCount: 1, DelayCount: p.DMax()}
	p.Transition(&a, &b)
	if !a.IsDormant() || !b.IsDormant() {
		t.Fatalf("agents after max-1 from (1,1): %+v, %+v — want dormant", a, b)
	}
}

func TestResetWaveCoversPopulation(t *testing.T) {
	// A single triggered agent must drive the entire population through
	// dormancy and back into leader election (Lemma 9: O(n log n)
	// interactions to C_LE).
	const n = 256
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := 0; i < n; i++ {
		states[i] = Ranked(int32(i + 1))
	}
	p.TriggerReset(&states[0])
	r := sim.New[State](p, states, 3)

	noMain := func(ss []State) bool {
		for i := range ss {
			if ss[i].IsMain() {
				return false
			}
		}
		return true
	}
	steps, err := r.RunUntil(noMain, 0, int64(100*n*17))
	if err != nil {
		left := 0
		for _, s := range r.States() {
			if s.IsMain() {
				left++
			}
		}
		t.Fatalf("reset wave left %d main agents after %d steps", left, steps)
	}
}

func TestResetCountNeverExceedsRMax(t *testing.T) {
	const n = 64
	p := New(n, DefaultParams())
	states := p.InitialStates()
	p.TriggerReset(&states[0])
	p.TriggerReset(&states[1])
	r := sim.New[State](p, states, 9)
	for i := 0; i < 200; i++ {
		r.Run(int64(n))
		if err := p.CheckInvariant(r.States()); err != nil {
			t.Fatalf("after %d steps: %v", r.Steps(), err)
		}
	}
}

// Package stable implements the paper's headline result: the silent,
// self-stabilizing ranking protocol StableRanking (§V), consisting of
// the subprotocols PropagateReset (§V-A), FastLeaderElection (§V-B,
// Protocol 5) and Ranking+ (§V-C, Protocol 4), glued together by the
// dispatcher of Protocol 3.
//
// Starting from an arbitrary configuration, the protocol reaches a
// configuration in which all agents hold distinct ranks from {1..n}
// within O(n² log n) interactions w.h.p., using n + O(log² n) states
// (Theorem 2). Declaring the agent with rank 1 the leader turns it into
// a silent self-stabilizing leader-election protocol.
package stable

import "fmt"

// Mode identifies which subprotocol an agent is currently executing.
// The paper's state space is a disjoint union; Mode selects the branch.
type Mode uint8

const (
	// ModeRanked is a ranked agent. Crucially it stores nothing beyond
	// its rank — no coin, no liveness counter — which is what keeps the
	// overhead at O(log² n) states (§I).
	ModeRanked Mode = iota + 1
	// ModeReset is an agent executing PropagateReset: propagating when
	// ResetCount > 0, dormant when ResetCount == 0 and DelayCount > 0.
	ModeReset
	// ModeLE is an agent executing FastLeaderElection.
	ModeLE
	// ModeWait is a main-protocol waiting agent (the leader waiting out
	// a phase transition).
	ModeWait
	// ModePhase is a main-protocol unranked phase agent.
	ModePhase
)

// String implements fmt.Stringer for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeRanked:
		return "ranked"
	case ModeReset:
		return "reset"
	case ModeLE:
		return "leader-electing"
	case ModeWait:
		return "waiting"
	case ModePhase:
		return "phase"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// State is the per-agent state of StableRanking. Only the fields
// relevant to the current Mode are meaningful; constructors zero the
// rest so that states are comparable with == in tests.
type State struct {
	Mode Mode

	// Coin is the synthetic coin, present for every mode except
	// ModeRanked; it is toggled whenever the agent is the responder.
	Coin uint8

	// Rank ∈ [1, n] — ModeRanked.
	Rank int32

	// ResetCount ∈ [0, Rmax], DelayCount ∈ [0, Dmax] — ModeReset.
	ResetCount int32
	DelayCount int32

	// LECount ∈ [0, Lmax], CoinCount ∈ [0, ⌈log₂ n⌉], LeaderDone,
	// IsLeader — ModeLE (Protocol 5).
	LECount    int32
	CoinCount  int32
	LeaderDone bool
	IsLeader   bool

	// Wait ∈ [1, ⌈c_wait·log₂ n⌉] — ModeWait;
	// Phase ∈ [1, ⌈log₂ n⌉] — ModePhase;
	// Alive ∈ [1, Lmax] — both unranked main modes.
	Wait  int32
	Phase int32
	Alive int32
}

// Ranked returns a ranked-agent state.
func Ranked(rank int32) State { return State{Mode: ModeRanked, Rank: rank} }

// IsUnrankedMain reports whether the agent is a main-protocol agent
// without a rank (waiting or phase), i.e. carries coin and aliveCount.
func (s *State) IsUnrankedMain() bool { return s.Mode == ModeWait || s.Mode == ModePhase }

// IsMain reports whether the agent executes the main protocol Ranking+
// (X(v) ∈ Q_Main in the paper's notation).
func (s *State) IsMain() bool {
	return s.Mode == ModeRanked || s.Mode == ModeWait || s.Mode == ModePhase
}

// IsPropagating reports whether the agent is a propagating reset agent.
func (s *State) IsPropagating() bool { return s.Mode == ModeReset && s.ResetCount > 0 }

// IsDormant reports whether the agent is a dormant reset agent.
func (s *State) IsDormant() bool { return s.Mode == ModeReset && s.ResetCount == 0 }

// HasCoin reports whether the state carries a synthetic coin.
func (s *State) HasCoin() bool { return s.Mode != ModeRanked }

// String renders the state compactly for traces and test failures.
func (s State) String() string {
	switch s.Mode {
	case ModeRanked:
		return fmt.Sprintf("rank(%d)", s.Rank)
	case ModeReset:
		return fmt.Sprintf("reset(r=%d,d=%d,c=%d)", s.ResetCount, s.DelayCount, s.Coin)
	case ModeLE:
		return fmt.Sprintf("le(cnt=%d,cc=%d,done=%t,ldr=%t,c=%d)", s.LECount, s.CoinCount, s.LeaderDone, s.IsLeader, s.Coin)
	case ModeWait:
		return fmt.Sprintf("wait(%d,a=%d,c=%d)", s.Wait, s.Alive, s.Coin)
	case ModePhase:
		return fmt.Sprintf("phase(%d,a=%d,c=%d)", s.Phase, s.Alive, s.Coin)
	default:
		return fmt.Sprintf("invalid(%d)", uint8(s.Mode))
	}
}

package stable

import (
	"testing"

	"ssrank/internal/sim"
)

func TestWorstCaseInitShape(t *testing.T) {
	p := New(256, DefaultParams())
	states := p.WorstCaseInit()
	if len(states) != 256 {
		t.Fatalf("got %d states", len(states))
	}
	seen := make(map[int32]bool)
	phaseAgents := 0
	for _, s := range states {
		switch s.Mode {
		case ModeRanked:
			if s.Rank < 2 || s.Rank > 256 || seen[s.Rank] {
				t.Fatalf("bad rank %d", s.Rank)
			}
			seen[s.Rank] = true
		case ModePhase:
			phaseAgents++
			if s.Phase != p.Phases().KMax() || s.Alive != p.LMax() {
				t.Fatalf("phase agent = %+v, want (kMax, LMax)", s)
			}
		default:
			t.Fatalf("unexpected mode %v", s.Mode)
		}
	}
	if phaseAgents != 1 || len(seen) != 255 {
		t.Fatalf("phaseAgents=%d ranked=%d", phaseAgents, len(seen))
	}
	if err := p.CheckInvariant(states); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseInitIsDeadUntilReset(t *testing.T) {
	// No productive pair exists: the number of ranked agents must not
	// change until a reset occurs (the only escape is alive expiry).
	const n = 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.WorstCaseInit(), 2)
	for p.Resets() == 0 {
		r.Run(int64(n))
		if c := RankedCount(r.States()); c != n-1 && p.Resets() == 0 {
			t.Fatalf("ranked count changed to %d before any reset", c)
		}
		if r.Steps() > stabilizationBudget(n, 3000) {
			t.Fatal("no reset within budget")
		}
	}
	if p.ResetsFor(ReasonAliveExpired) == 0 {
		t.Fatalf("worst-case escape was not alive-expired: %v", p.ResetBreakdown())
	}
}

func TestDuplicateRanksInitDetectedByMeeting(t *testing.T) {
	const n = 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.DuplicateRanksInit(), 3)
	for p.Resets() == 0 {
		r.Run(int64(n))
		if r.Steps() > stabilizationBudget(n, 3000) {
			t.Fatal("duplicate ranks never detected")
		}
	}
	if p.ResetsFor(ReasonDuplicateRank) == 0 {
		t.Fatalf("first reset not duplicate-rank: %v", p.ResetBreakdown())
	}
	mustStabilize(t, p, r.States(), 4, 3000)
}

func TestManyUnrankedInitResets(t *testing.T) {
	const n = 64
	for _, k := range []int{2, 8, 32} {
		p := New(n, DefaultParams())
		states := p.ManyUnrankedInit(k)
		if err := p.CheckInvariant(states); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		unranked := n - RankedCount(states)
		if unranked != k {
			t.Fatalf("k=%d: %d unranked agents", k, unranked)
		}
		mustStabilize(t, p, states, uint64(k), 3000)
	}
}

func TestManyUnrankedInitClamps(t *testing.T) {
	p := New(8, DefaultParams())
	if got := 8 - RankedCount(p.ManyUnrankedInit(0)); got != 2 {
		t.Fatalf("k=0 clamped to %d unranked, want 2", got)
	}
	if got := 8 - RankedCount(p.ManyUnrankedInit(100)); got != 7 {
		t.Fatalf("k=100 clamped to %d unranked, want 7", got)
	}
}

func TestFig3InitShape(t *testing.T) {
	p := New(128, DefaultParams())
	states := p.Fig3Init()
	if states[0] != Ranked(1) {
		t.Fatalf("agent 0 = %+v, want rank(1)", states[0])
	}
	for i := 1; i < 128; i++ {
		if states[i].Mode != ModeLE {
			t.Fatalf("agent %d = %+v, want LE", i, states[i])
		}
	}
	mustStabilize(t, p, states, 5, 3000)
}

func TestSingleUnrankedAliasesWorstCase(t *testing.T) {
	p := New(32, DefaultParams())
	a, b := p.SingleUnrankedInit(), p.WorstCaseInit()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

package stable

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// Describe returns the protocol's descriptor: the single table the
// engine-facing layers (facade, experiment harness, CLIs) read instead
// of re-tabulating StableRanking's constructor, inits, validity, stop
// tracker, and instrumentation each for themselves.
func Describe() proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name:            "stable",
		Inits:           []string{"fresh", "worst-case", "random", "fig3"},
		SelfStabilizing: true,
		New:             func(n int) *Protocol { return New(n, DefaultParams()) },
		Init: func(p *Protocol, init string, r *rng.RNG) []State {
			switch init {
			case "fresh":
				return p.InitialStates()
			case "worst-case":
				return p.WorstCaseInit()
			case "random":
				return p.RandomConfig(r)
			case "fig3":
				return p.Fig3Init()
			}
			return nil
		},
		Valid:          Valid,
		Rank:           RankOf,
		Resets:         (*Protocol).Resets,
		ResetBreakdown: (*Protocol).ResetBreakdown,
		RandomState:    (*Protocol).RandomState,
		Probes: []proto.Probe[State, *Protocol]{
			// The mean phase counter over phase agents — the protocol's
			// clock observable, the third column of the paper's Fig. 2
			// trace. Registered here so observation layers (the facade's
			// Snapshot, the -trace CSV) read it through the descriptor
			// instead of importing this package.
			{Name: "mean_phase", Fn: func(_ *Protocol, states []State) float64 { return MeanPhase(states) }},
		},
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Instr:          Instr,
		SetInstr:       SetInstr,
		Budget:         proto.BudgetN2LogN(3000),
	}
}

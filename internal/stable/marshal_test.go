package stable

import (
	"bytes"
	"reflect"
	"testing"

	"ssrank/internal/ckpt"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// TestMarshalStateRoundTrip drives the protocol from a random
// configuration far enough to accumulate reset instrumentation (the
// self-stabilization path fires on duplicate ranks), then requires a
// marshal/unmarshal round trip to restore the slab and every atomic
// reset counter exactly — total, per-reason breakdown and all — and to
// re-encode to the identical bytes (the encoding is canonical).
func TestMarshalStateRoundTrip(t *testing.T) {
	const n = 48
	p := New(n, DefaultParams())
	init := Describe().Init(p, "random", rng.New(5))
	if init == nil {
		t.Fatal("random init unsupported")
	}
	r := sim.New[State](p, init, 5)
	r.Run(int64(n) * int64(n) * 40)
	if p.Resets() == 0 {
		t.Fatal("run accumulated no resets; the counter round trip is untested")
	}

	var w ckpt.Writer
	MarshalState(p, r.States(), &w)

	q := New(n, DefaultParams())
	states, err := UnmarshalState(q, ckpt.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(states, r.States()) {
		t.Fatal("restored slab differs from the marshaled one")
	}
	if got, want := q.Resets(), p.Resets(); got != want {
		t.Fatalf("restored %d resets, want %d", got, want)
	}
	if got, want := q.ResetBreakdown(), p.ResetBreakdown(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored reset breakdown %v, want %v", got, want)
	}

	var w2 ckpt.Writer
	MarshalState(q, states, &w2)
	if !bytes.Equal(w.Bytes(), w2.Bytes()) {
		t.Fatal("re-encoding a restored state changed the bytes")
	}
}

// TestUnmarshalStateRejects pins the decode-side validation: a slab
// for a different population size and truncated input both fail
// instead of yielding a plausible partial state.
func TestUnmarshalStateRejects(t *testing.T) {
	p := New(8, DefaultParams())
	init := Describe().Init(p, "fresh", rng.New(1))
	var w ckpt.Writer
	MarshalState(p, init, &w)

	if _, err := UnmarshalState(New(9, DefaultParams()), ckpt.NewReader(w.Bytes())); err == nil {
		t.Error("population mismatch accepted")
	}
	if _, err := UnmarshalState(New(8, DefaultParams()), ckpt.NewReader(w.Bytes()[:w.Len()-2])); err == nil {
		t.Error("truncated slab accepted")
	}
}

package stable

import (
	"math"
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// stabilizationBudget returns c·n²·log₂ n interactions.
func stabilizationBudget(n int, c float64) int64 {
	return int64(c * float64(n) * float64(n) * math.Log2(float64(n)))
}

// mustStabilize runs the protocol from the given configuration until
// C_L and fails the test on budget exhaustion.
func mustStabilize(t *testing.T, p *Protocol, states []State, seed uint64, c float64) int64 {
	t.Helper()
	r := sim.New[State](p, states, seed)
	steps, err := r.RunUntil(Valid, 0, stabilizationBudget(p.N(), c))
	if err != nil {
		t.Fatalf("n=%d seed=%d: not stabilized after %d interactions (modes=%v, resets=%v)",
			p.N(), seed, steps, CountModes(r.States()), p.ResetBreakdown())
	}
	if err := p.CheckInvariant(r.States()); err != nil {
		t.Fatalf("n=%d seed=%d: invariant violated at stabilization: %v", p.N(), seed, err)
	}
	return steps
}

func TestStabilizesFromFreshStart(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 128} {
		for seed := uint64(1); seed <= 3; seed++ {
			p := New(n, DefaultParams())
			mustStabilize(t, p, p.InitialStates(), seed, 2000)
		}
	}
}

func TestStabilizesFromWorstCase(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		p := New(n, DefaultParams())
		mustStabilize(t, p, p.WorstCaseInit(), 1, 2000)
	}
}

func TestStabilizesFromArbitraryConfigurations(t *testing.T) {
	// The self-stabilization theorem: any initial configuration leads to
	// C_L. Random configurations drawn from the full state space are the
	// natural adversary.
	const n = 64
	for seed := uint64(1); seed <= 10; seed++ {
		p := New(n, DefaultParams())
		states := p.RandomConfig(rng.New(seed * 13))
		mustStabilize(t, p, states, seed, 2000)
	}
}

func TestStabilizesFromAllRankedSame(t *testing.T) {
	// Pathological: every agent claims rank 1.
	const n = 32
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := range states {
		states[i] = Ranked(1)
	}
	mustStabilize(t, p, states, 4, 2000)
}

func TestStabilizesFromAllWaiting(t *testing.T) {
	const n = 32
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := range states {
		states[i] = State{Mode: ModeWait, Coin: uint8(i & 1), Wait: p.WaitInit(), Alive: p.LMax()}
	}
	mustStabilize(t, p, states, 5, 2000)
}

func TestStabilizesFromAllPhaseMax(t *testing.T) {
	const n = 32
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := range states {
		states[i] = State{Mode: ModePhase, Coin: uint8(i & 1), Phase: p.Phases().KMax(), Alive: 1}
	}
	mustStabilize(t, p, states, 6, 2000)
}

func TestClosureAndSilence(t *testing.T) {
	// Theorem 2's closure: a legal configuration never changes — the
	// protocol is silent. Run n² further interactions and diff.
	const n = 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 7)
	if _, err := r.RunUntil(Valid, 0, stabilizationBudget(n, 2000)); err != nil {
		t.Fatal(err)
	}
	before := r.Snapshot()
	resetsBefore := p.Resets()
	r.Run(int64(n) * int64(n))
	for i, s := range r.States() {
		if s != before[i] {
			t.Fatalf("agent %d changed in a legal configuration: %v -> %v", i, before[i], s)
		}
	}
	if p.Resets() != resetsBefore {
		t.Fatalf("resets triggered in a legal configuration: %d new", p.Resets()-resetsBefore)
	}
}

func TestClosureFromSyntheticLegalConfig(t *testing.T) {
	// Closure must hold for *every* legal configuration, not only
	// reached ones: build permutations directly and check silence.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(60)
		p := New(n, DefaultParams())
		perm := r.Perm(n)
		states := make([]State, n)
		for i, rk := range perm {
			states[i] = Ranked(int32(rk + 1))
		}
		run := sim.New[State](p, states, seed^0xabc)
		run.Run(int64(4 * n * n))
		for i, s := range run.States() {
			if s != Ranked(int32(perm[i]+1)) {
				return false
			}
		}
		return p.Resets() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantPreservedFromRandomConfigs(t *testing.T) {
	// Property: from any configuration in the declared state space, the
	// transition function never leaves the state space.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(60)
		p := New(n, DefaultParams())
		states := p.RandomConfig(r)
		if err := p.CheckInvariant(states); err != nil {
			t.Logf("random config already invalid: %v", err)
			return false
		}
		run := sim.New[State](p, states, seed^0x5ca1ab1e)
		for i := 0; i < 50; i++ {
			run.Run(int64(n))
			if err := p.CheckInvariant(run.States()); err != nil {
				t.Logf("n=%d seed=%d: %v", n, seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2Shape(t *testing.T) {
	// Stabilization interactions normalized by n² log₂ n must not grow
	// with n (Theorem 2). Medians over a few seeds to damp the reset
	// lottery's variance.
	if testing.Short() {
		t.Skip("shape check is slow")
	}
	median := func(n int) float64 {
		var times []float64
		for seed := uint64(1); seed <= 5; seed++ {
			p := New(n, DefaultParams())
			steps := mustStabilize(t, p, p.InitialStates(), seed, 3000)
			times = append(times, float64(steps)/(float64(n)*float64(n)*math.Log2(float64(n))))
		}
		for i := range times {
			for j := i + 1; j < len(times); j++ {
				if times[j] < times[i] {
					times[i], times[j] = times[j], times[i]
				}
			}
		}
		return times[len(times)/2]
	}
	small, large := median(32), median(256)
	if large > 10*small+10 {
		t.Fatalf("normalized stabilization grew from %.2f (n=32) to %.2f (n=256); not O(n² log n)", small, large)
	}
}

func TestSelfStabilizingLeaderElection(t *testing.T) {
	// §I: rank 1 designates the leader. After stabilization exactly one
	// agent holds rank 1 forever.
	const n = 64
	p := New(n, DefaultParams())
	r := sim.New[State](p, p.InitialStates(), 11)
	if _, err := r.RunUntil(Valid, 0, stabilizationBudget(n, 2000)); err != nil {
		t.Fatal(err)
	}
	leader := LeaderRank1(r.States())
	if leader < 0 {
		t.Fatal("no rank-1 agent in a legal configuration")
	}
	r.Run(int64(10 * n * n))
	if again := LeaderRank1(r.States()); again != leader {
		t.Fatalf("leader changed from %d to %d in a legal configuration", leader, again)
	}
}

func TestRandomStateStaysInStateSpace(t *testing.T) {
	p := New(100, DefaultParams())
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		s := p.RandomState(r)
		states := []State{s, s}
		if err := p.CheckInvariant(states[:1]); err != nil {
			t.Fatalf("RandomState produced invalid state: %v (%v)", err, s)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, DefaultParams()) },
		func() { New(8, Params{}) },
		func() { New(8, Params{CWait: 1, CLive: 1, RMaxFactor: 1, DMaxFactor: -1, LEBudgetFactor: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestModeAndReasonStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeRanked: "ranked", ModeReset: "reset", ModeLE: "leader-electing",
		ModeWait: "waiting", ModePhase: "phase", Mode(99): "Mode(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
	for r, want := range map[ResetReason]string{
		ReasonDuplicateRank: "duplicate-rank", ReasonTwoWaiting: "two-waiting",
		ReasonAliveExpired: "alive-expired", ReasonLEExpired: "le-expired",
		ReasonExternal: "external", ResetReason(99): "ResetReason(99)",
	} {
		if got := r.String(); got != want {
			t.Errorf("ResetReason(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[string]State{
		"rank(3)":            Ranked(3),
		"reset(r=2,d=4,c=1)": {Mode: ModeReset, ResetCount: 2, DelayCount: 4, Coin: 1},
		"wait(2,a=7,c=0)":    {Mode: ModeWait, Wait: 2, Alive: 7},
		"phase(5,a=1,c=1)":   {Mode: ModePhase, Phase: 5, Alive: 1, Coin: 1},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

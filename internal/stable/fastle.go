package stable

// fastLE implements FastLeaderElection (Protocol 5, Appendix C) for an
// interaction of two leader-electing agents. Only the initiator u
// updates its LE variables; the responder contributes its coin (and is
// toggled by the dispatcher afterwards).
//
// An agent declares itself leader after observing ⌈log₂ n⌉ heads on its
// partners in a row; a single tail before that makes it a permanent
// non-leader (leaderDone without isLeader). The leader transitions to
// the main protocol as the waiting agent provided it was elected fast
// enough (LECount ≥ L_max/2); an agent whose LECount expires without a
// transition triggers a reset — this covers the constant-probability
// event that no leader emerges (Lemma 30 gives success probability
// ≥ 1/(8e) per attempt, so O(log n) resets suffice w.h.p., Lemma 32).
func (p *Protocol) fastLE(u, v *State) {
	// Line 1: every initiator interaction costs budget.
	u.LECount--

	// Lines 13–15: out of budget without having started ranking.
	if u.LECount <= 0 {
		p.triggerReset(u, ReasonLEExpired)
		return
	}

	if !u.LeaderDone {
		if v.Coin == 0 {
			// Line 2: a tail — u will not be leader. The residual
			// coinCount is dropped so that "done" agents occupy a
			// single state per LECount value (state accounting).
			u.LeaderDone = true
			u.CoinCount = 0
		} else {
			// Lines 4–8: count consecutive heads.
			u.CoinCount--
			if u.CoinCount <= 0 {
				u.CoinCount = 0
				u.IsLeader = true
				u.LeaderDone = true
			}
		}
	}

	// Lines 9–12: a leader elected fast enough starts the main phase as
	// the waiting agent.
	if u.IsLeader && u.LECount >= p.leBudget/2 {
		*u = State{Mode: ModeWait, Coin: u.Coin, Wait: p.waitInit, Alive: p.lMax}
	}
}

package stable

import "ssrank/internal/rng"

// This file provides the initial configurations used by the paper's
// evaluation (§VI) and by the self-stabilization experiments. Being
// self-stabilizing, the protocol accepts any of them — these builders
// exist so experiments are reproducible.

// WorstCaseInit is the initialization of Fig. 2: agents 1..n-1 hold
// ranks 2..n, and one agent is a phase agent with the maximum phase and
// a full liveness counter. No productive pair exists (rank 1 is
// missing), so the only way out is the liveness counter draining
// through meetings with the agents ranked n−1 and n — which takes
// Θ(n² log n) interactions in expectation, the protocol's worst case
// (DESIGN.md note 7).
func (p *Protocol) WorstCaseInit() []State {
	states := make([]State, p.n)
	for i := 0; i < p.n-1; i++ {
		states[i] = Ranked(int32(i + 2))
	}
	states[p.n-1] = State{Mode: ModePhase, Coin: 0, Phase: p.phases.KMax(), Alive: p.lMax}
	return states
}

// Fig3Init is the initialization of Fig. 3: one agent holds rank 1 (the
// unaware leader) and all other agents are "still in a leader election
// state". The LE agents are decided non-leaders (leaderDone = 1,
// isLeader = 0): a fresh lottery would elect a second leader with
// constant probability and contaminate the measured ranking curve with
// resets, which is clearly not what the figure shows (EXPERIMENTS.md,
// E2 inference note).
func (p *Protocol) Fig3Init() []State {
	states := make([]State, p.n)
	states[0] = Ranked(1)
	for i := 1; i < p.n; i++ {
		s := p.LEInitial(uint8(i & 1))
		s.LeaderDone = true
		s.CoinCount = 0
		states[i] = s
	}
	return states
}

// DuplicateRanksInit yields a dead configuration with duplicate ranks
// (Lemma 24): all agents ranked, but rank 1 appears twice and rank n is
// missing, so no productive pair exists until the duplicates meet.
func (p *Protocol) DuplicateRanksInit() []State {
	states := make([]State, p.n)
	states[0] = Ranked(1)
	states[1] = Ranked(1)
	for i := 2; i < p.n; i++ {
		states[i] = Ranked(int32(i))
	}
	return states
}

// SingleUnrankedInit yields the dead configuration of Lemma 25: a
// single unranked phase agent with maximal phase, all ranks but rank 1
// assigned (so ranks n−1 and n are present and drain its counter).
func (p *Protocol) SingleUnrankedInit() []State {
	return p.WorstCaseInit()
}

// ManyUnrankedInit yields the dead configuration of Lemma 26: k ≥ 2
// unranked phase agents at maximal phase with staggered liveness
// counters, and the remaining agents ranked with the top ranks present
// but rank 1 absent (no productive pairs).
func (p *Protocol) ManyUnrankedInit(k int) []State {
	if k < 2 {
		k = 2
	}
	if k > p.n-1 {
		k = p.n - 1
	}
	states := make([]State, p.n)
	for i := 0; i < k; i++ {
		alive := p.lMax - int32(i)%p.lMax
		if alive < 1 {
			alive = 1
		}
		states[i] = State{Mode: ModePhase, Coin: uint8(i & 1), Phase: p.phases.KMax(), Alive: alive}
	}
	// Ranks n, n−1, ..., down, skipping rank 1 so no unaware leader
	// exists.
	r := int32(p.n)
	for i := k; i < p.n; i++ {
		states[i] = Ranked(r)
		r--
	}
	return states
}

// RandomConfig returns an arbitrary configuration drawn uniformly from
// the protocol's full state space — the adversary of the
// self-stabilization theorem. Every variable is drawn independently
// from its declared range.
func (p *Protocol) RandomConfig(r *rng.RNG) []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.RandomState(r)
	}
	return states
}

// RandomState draws a single uniformly random state from the declared
// state space (used by RandomConfig and by property tests).
func (p *Protocol) RandomState(r *rng.RNG) State {
	coin := uint8(r.Intn(2))
	switch Mode(1 + r.Intn(5)) {
	case ModeRanked:
		return Ranked(int32(1 + r.Intn(p.n)))
	case ModeReset:
		// Exclude the (0, 0) combination, which instantly awakens and
		// is therefore not a persistent state.
		for {
			rc, dc := int32(r.Intn(int(p.rMax)+1)), int32(r.Intn(int(p.dMax)+1))
			if rc != 0 || dc != 0 {
				return State{Mode: ModeReset, Coin: coin, ResetCount: rc, DelayCount: dc}
			}
		}
	case ModeLE:
		done := r.Bool()
		isLeader := done && r.Bool()
		return State{
			Mode:       ModeLE,
			Coin:       coin,
			LECount:    int32(1 + r.Intn(int(p.leBudget))),
			CoinCount:  int32(r.Intn(int(p.coinInit) + 1)),
			LeaderDone: done,
			IsLeader:   isLeader,
		}
	case ModeWait:
		return State{
			Mode:  ModeWait,
			Coin:  coin,
			Wait:  int32(1 + r.Intn(int(p.waitInit))),
			Alive: int32(1 + r.Intn(int(p.lMax))),
		}
	default:
		return State{
			Mode:  ModePhase,
			Coin:  coin,
			Phase: int32(1 + r.Intn(int(p.phases.KMax()))),
			Alive: int32(1 + r.Intn(int(p.lMax))),
		}
	}
}

package stable

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// EncodeAgent appends one agent's state field-by-field — the per-agent
// unit of MarshalState's slab section, shared with the distributed
// wire layer so the two encodings cannot drift
// (proto.Descriptor.EncodeAgent).
func EncodeAgent(p *Protocol, s *State, w *ckpt.Writer) {
	w.Uvarint(uint64(s.Mode))
	w.Uvarint(uint64(s.Coin))
	w.Varint(int64(s.Rank))
	w.Varint(int64(s.ResetCount))
	w.Varint(int64(s.DelayCount))
	w.Varint(int64(s.LECount))
	w.Varint(int64(s.CoinCount))
	w.Bool(s.LeaderDone)
	w.Bool(s.IsLeader)
	w.Varint(int64(s.Wait))
	w.Varint(int64(s.Phase))
	w.Varint(int64(s.Alive))
}

// DecodeAgent decodes one agent written by EncodeAgent; errors stick
// in r.
func DecodeAgent(p *Protocol, r *ckpt.Reader) State {
	var s State
	s.Mode = Mode(r.Uvarint())
	s.Coin = uint8(r.Uvarint())
	s.Rank = int32(r.Int())
	s.ResetCount = int32(r.Int())
	s.DelayCount = int32(r.Int())
	s.LECount = int32(r.Int())
	s.CoinCount = int32(r.Int())
	s.LeaderDone = r.Bool()
	s.IsLeader = r.Bool()
	s.Wait = int32(r.Int())
	s.Phase = int32(r.Int())
	s.Alive = int32(r.Int())
	return s
}

// Instr captures the reset instrumentation as a flat vector: total,
// then per reason in ResetReason order. Vectors accumulated over
// disjoint interaction sets sum element-wise, which is what lets the
// distributed runtime reconcile counters that incremented on whichever
// worker executed the interaction (proto.Descriptor.Instr).
func Instr(p *Protocol) []int64 {
	v := make([]int64, 1+int(numResetReasons))
	v[0] = p.resets.Load()
	for reason := ResetReason(0); reason < numResetReasons; reason++ {
		v[1+int(reason)] = p.resetsByReason[reason].Load()
	}
	return v
}

// SetInstr restores a vector captured by Instr; short vectors leave
// the remaining counters untouched.
func SetInstr(p *Protocol, v []int64) {
	if len(v) > 0 {
		p.resets.Store(v[0])
	}
	for reason := ResetReason(0); reason < numResetReasons; reason++ {
		if 1+int(reason) < len(v) {
			p.resetsByReason[reason].Store(v[1+int(reason)])
		}
	}
}

// MarshalState appends the protocol's full mutable run state to w: the
// agent slab field-by-field in agent order (EncodeAgent per agent),
// then the reset counters (total, then per reason in ResetReason
// order). The encoding is canonical and versioned by the enclosing
// checkpoint format — field order here is the schema
// (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		EncodeAgent(p, &states[i], w)
	}
	w.Varint(p.resets.Load())
	for reason := ResetReason(0); reason < numResetReasons; reason++ {
		w.Varint(p.resetsByReason[reason].Load())
	}
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size, restoring the reset counters into p.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.n)
	if r.Err() == nil && n != p.n {
		return nil, fmt.Errorf("stable: checkpoint holds %d agents, protocol expects %d", n, p.n)
	}
	states := make([]State, n)
	for i := range states {
		states[i] = DecodeAgent(p, r)
	}
	p.resets.Store(r.Varint())
	for reason := ResetReason(0); reason < numResetReasons; reason++ {
		p.resetsByReason[reason].Store(r.Varint())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("stable: %w", err)
	}
	return states, nil
}

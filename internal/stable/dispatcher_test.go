package stable

import (
	"testing"

	"ssrank/internal/rng"
)

// TestDispatcherPrecedence pins the rule order of Protocol 3: a reset
// participant always routes to PropagateReset, two LE agents to
// FastLeaderElection, mixed LE/main to the conversion epidemic, and
// main pairs to Ranking+ — for every combination of modes.
func TestDispatcherPrecedence(t *testing.T) {
	p := New(64, DefaultParams())
	mk := map[string]func() State{
		"ranked": func() State { return Ranked(7) },
		"reset":  func() State { return State{Mode: ModeReset, Coin: 1, ResetCount: 3, DelayCount: p.DMax()} },
		"le":     func() State { return p.LEInitial(1) },
		"wait":   func() State { return State{Mode: ModeWait, Coin: 1, Wait: 3, Alive: 5} },
		"phase":  func() State { return State{Mode: ModePhase, Coin: 1, Phase: 2, Alive: 5} },
	}
	isReset := func(s State) bool { return s.Mode == ModeReset }

	for uName, mu := range mk {
		for vName, mv := range mk {
			u, v := mu(), mv()
			uBefore, vBefore := u, v
			p.Transition(&u, &v)

			switch {
			case isReset(uBefore) || isReset(vBefore):
				// PropagateReset: a computing partner of a propagating
				// agent must have been infected; two non-propagating
				// cases (dormant) just decrement.
				prop := uBefore.IsPropagating() || vBefore.IsPropagating()
				if prop {
					if !isReset(u) || !isReset(v) {
						t.Errorf("(%s, %s): propagating pair left non-reset states %v, %v", uName, vName, u, v)
					}
				}
			case uBefore.Mode == ModeLE && vBefore.Mode == ModeLE:
				// FastLE: the initiator pays budget.
				if u.Mode == ModeLE && u.LECount != uBefore.LECount-1 {
					t.Errorf("(%s, %s): initiator did not pay LE budget", uName, vName)
				}
			case uBefore.Mode == ModeLE && vBefore.IsMain():
				if u.Mode != ModePhase || u.Phase != 1 {
					t.Errorf("(%s, %s): LE initiator not converted: %v", uName, vName, u)
				}
			case vBefore.Mode == ModeLE && uBefore.IsMain():
				if v.Mode != ModePhase || v.Phase != 1 {
					t.Errorf("(%s, %s): LE responder not converted: %v", uName, vName, v)
				}
			}

			// Universal rule (Protocol 3 line 9): the responder's coin
			// toggles whenever it still has one and kept its mode-class
			// (conversions and resets set their own coin).
			if v.Mode == vBefore.Mode && v.HasCoin() && vBefore.HasCoin() &&
				v.Mode != ModePhase && v.Mode != ModeWait {
				if v.Coin != vBefore.Coin^1 {
					t.Errorf("(%s, %s): responder coin not toggled (%d -> %d)", uName, vName, vBefore.Coin, v.Coin)
				}
			}
		}
	}
}

// TestCoinToggleExactness pins the coin rule precisely on interactions
// that change nothing else.
func TestCoinToggleExactness(t *testing.T) {
	p := New(64, DefaultParams())

	// Ranked responder: no coin, nothing to toggle.
	u, v := Ranked(1), Ranked(2)
	p.Transition(&u, &v)
	if v != Ranked(2) {
		t.Fatalf("ranked responder changed: %v", v)
	}

	// Phase responder of an inert ranked initiator (not leader, not
	// top-ranked, coin 1 so no refresh either): only the coin moves.
	u = Ranked(30)
	v = State{Mode: ModePhase, Coin: 1, Phase: 2, Alive: 5}
	p.Transition(&u, &v)
	want := State{Mode: ModePhase, Coin: 0, Phase: 2, Alive: 5}
	if v != want {
		t.Fatalf("phase responder = %v, want only the coin toggled (%v)", v, want)
	}

	// Same but coin 0: the initiator is not productive, so no refresh,
	// and the coin toggles to 1.
	v = State{Mode: ModePhase, Coin: 0, Phase: 2, Alive: 5}
	p.Transition(&u, &v)
	want = State{Mode: ModePhase, Coin: 1, Phase: 2, Alive: 5}
	if v != want {
		t.Fatalf("phase responder = %v, want %v", v, want)
	}
}

// TestTransitionTotality drives the dispatcher over random state pairs
// drawn from the full space and checks it never panics and never
// leaves the declared state space — the totality property the model
// checker proves exhaustively for n = 2, here probed at n = 97.
func TestTransitionTotality(t *testing.T) {
	const n = 97
	p := New(n, DefaultParams())
	r := rng.New(123)
	for i := 0; i < 100000; i++ {
		u, v := p.RandomState(r), p.RandomState(r)
		p.Transition(&u, &v)
		pair := []State{u, v}
		if err := p.CheckInvariant(pair); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

package stable

// rankingPlus implements Ranking+ (Protocol 4) for an interaction of
// two main-protocol agents (initiator u, responder v). It extends the
// base protocol Ranking (Protocol 2, reimplemented over stable.State in
// baseRanking) with error detection and liveness checking; detected
// errors trigger PropagateReset.
//
// It reports which agents' rank projection (RankOf) changed, with the
// flags set at the mutation sites themselves: rank events are rare, so
// the no-op majority (two compatible ranked agents meeting, liveness
// refreshes, phase adoption) reports at zero cost — the measurement
// the engine's touch-aware exact stopping relies on.
func (p *Protocol) rankingPlus(u, v *State) (uTouched, vTouched bool) {
	// Lines 1–4, error detection: duplicate ranks or two waiting agents.
	if u.Mode == ModeRanked && v.Mode == ModeRanked && u.Rank == v.Rank {
		p.triggerReset(u, ReasonDuplicateRank)
		return true, false // u lost its rank; v keeps its (duplicate) one
	}
	if u.Mode == ModeWait && v.Mode == ModeWait {
		p.triggerReset(u, ReasonTwoWaiting)
		return false, false // waiting agents hold no rank
	}

	// Lines 5–11, liveness checking.
	if u.IsUnrankedMain() && v.IsUnrankedMain() {
		// Lines 5–6: both check liveness — adopt the maximum minus one.
		m := u.Alive
		if v.Alive > m {
			m = v.Alive
		}
		m--
		if m <= 0 {
			// The counter hit zero (DESIGN.md note 4). Both witnesses
			// reset: aliveCount = 0 is outside the declared state
			// space {1..Lmax}, so neither agent may keep it.
			p.triggerReset(u, ReasonAliveExpired)
			p.triggerReset(v, ReasonAliveExpired)
			return false, false // both were unranked
		}
		u.Alive, v.Alive = m, m
	}
	if u.Mode == ModeRanked && u.Rank >= int32(p.n)-1 && v.IsUnrankedMain() {
		// Lines 7–11: meeting an agent ranked n−1 or n drains the
		// responder's counter; expiry triggers a reset — on both
		// agents, as above (the paper's pseudocode resets u; v's
		// counter would otherwise sit at 0, outside its domain).
		if v.Alive <= 1 {
			p.triggerReset(u, ReasonAliveExpired)
			p.triggerReset(v, ReasonAliveExpired)
			return true, false // u was ranked, v was not
		}
		v.Alive--
	}

	if !v.IsUnrankedMain() {
		// v carries no coin (it is ranked); neither the liveness-refresh
		// branch nor the base protocol applies (Protocol 2 line 1 would
		// return immediately as well).
		return false, false
	}

	if v.Coin == 0 {
		// Lines 12–14: v's coin shows tails — refresh its liveness
		// counter if the pair could have made progress (a "productive
		// pair"): u is waiting, or u is the unaware leader for v's
		// phase.
		if u.Mode == ModeWait || p.isUnawareLeaderFor(u, v) {
			v.Alive = p.lMax
		}
		return false, false
	}

	// Lines 15–18: v's coin shows heads — execute the base protocol.
	became, ut, vt := p.baseRanking(u, v)
	if became {
		// Line 17–18: u became waiting — it regains a coin and a full
		// liveness counter.
		u.Coin = 0
		u.Alive = p.lMax
	}
	return ut, vt
}

// isUnawareLeaderFor reports the productive-pair condition of Protocol 4
// line 13: u is ranked, v is a phase agent, and u's rank lies in the
// leader range for v's phase. The default uses the exact width
// f_k − f_{k+1}; Params.PaperLiteralProductive selects the paper-literal
// ⌊n·2^{−phase(v)}⌋ (DESIGN.md note 2).
func (p *Protocol) isUnawareLeaderFor(u, v *State) bool {
	if u.Mode != ModeRanked || v.Mode != ModePhase {
		return false
	}
	if p.literal {
		bound := int32(p.n) >> uint(v.Phase)
		return u.Rank >= 1 && u.Rank <= bound
	}
	return u.Rank >= 1 && u.Rank <= p.phases.Width(v.Phase)
}

// baseRanking reimplements Ranking (Protocol 2) over stable.State,
// including the bookkeeping Ranking+ needs: agents becoming ranked drop
// their coin and liveness counter; the leader entering waiting is
// reported to the caller (Protocol 4 line 17). Like rankingPlus it
// reports rank-projection changes from the mutation sites: a rank
// assigned (vTouched), the unaware leader's rank advancing or being
// given up for waiting, and the waiting agent re-entering with rank 1
// (uTouched).
//
// The transition logic mirrors core.(*Protocol).Ranking exactly; the
// equivalence is checked by a cross-validation property test.
func (p *Protocol) baseRanking(u, v *State) (uBecameWaiting, uTouched, vTouched bool) {
	// Line 1: if v is not a phase agent, do nothing.
	if v.Mode != ModePhase {
		return false, false, false
	}
	switch u.Mode {
	case ModeRanked:
		k := v.Phase
		width := p.phases.Width(k)
		switch {
		case u.Rank >= 1 && u.Rank <= width:
			// u is the unaware leader: assign the next rank of phase k.
			*v = Ranked(p.phases.F(k+1) + u.Rank)
			vTouched = true
			if u.Rank < width {
				u.Rank++ // the leader's rank value moved
				uTouched = true
			} else if k < p.phases.KMax() {
				// End of a non-final phase: forget the rank, wait out
				// the phase transition.
				*u = State{Mode: ModeWait, Coin: 0, Wait: p.waitInit, Alive: 0}
				return true, true, true
			}
			// k = kMax: the leader keeps rank 1 unchanged.
		case u.Rank == p.phases.F(k):
			// u holds the last rank of v's phase: v advances
			// (saturating at ⌈log₂ n⌉, DESIGN.md note 3).
			if k < p.phases.KMax() {
				v.Phase = k + 1
			}
		}
	case ModePhase:
		// Two phase agents adopt the more advanced phase.
		if u.Phase > v.Phase {
			v.Phase = u.Phase
		} else {
			u.Phase = v.Phase
		}
	case ModeWait:
		// The waiting agent counts down against phase agents and
		// ultimately re-enters with rank 1.
		u.Wait--
		if u.Wait <= 0 {
			*u = Ranked(1)
			uTouched = true
		}
	}
	return false, uTouched, vTouched
}

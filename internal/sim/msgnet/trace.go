package msgnet

import (
	"encoding/binary"
	"fmt"
)

// Trace is the recorded message history of a run: per round, the
// scheduled contacts and the IDs delivered, in delivery order. That
// is every nondeterministic choice the network makes — message IDs
// are assigned deterministically from the contacts (requests at round
// start in contact order, replies by delivery slot), so drops (ID
// never delivered), duplicates (ID delivered twice), delays (ID
// delivered in a later round) and reorderings (queue position) are
// all implied by the delivery lists. Replaying a trace over the same
// protocol and initial configuration reproduces the recorded
// trajectory exactly.
type Trace struct {
	// N is the population size the trace was recorded over.
	N int
	// Rounds holds one entry per executed round.
	Rounds []TraceRound
}

// TraceRound records one round.
type TraceRound struct {
	// Contacts are the round's scheduled (initiator, responder) pairs,
	// in schedule order.
	Contacts [][2]int32
	// Deliveries are the message IDs delivered this round, in
	// delivery order.
	Deliveries []int64
}

const traceMagic = "ssmt1" // ssrank msgnet trace, format version 1

// MarshalBinary encodes the trace in a compact varint format. The
// encoding is canonical: equal traces encode to equal bytes, which is
// what the record/replay byte-identity tests compare.
func (t *Trace) MarshalBinary() ([]byte, error) {
	buf := append([]byte(nil), traceMagic...)
	buf = binary.AppendUvarint(buf, uint64(t.N))
	buf = binary.AppendUvarint(buf, uint64(len(t.Rounds)))
	for _, rd := range t.Rounds {
		buf = binary.AppendUvarint(buf, uint64(len(rd.Contacts)))
		for _, c := range rd.Contacts {
			buf = binary.AppendUvarint(buf, uint64(c[0]))
			buf = binary.AppendUvarint(buf, uint64(c[1]))
		}
		buf = binary.AppendUvarint(buf, uint64(len(rd.Deliveries)))
		for _, id := range rd.Deliveries {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a trace encoded by MarshalBinary.
func (t *Trace) UnmarshalBinary(data []byte) error {
	if len(data) < len(traceMagic) || string(data[:len(traceMagic)]) != traceMagic {
		return fmt.Errorf("msgnet: not a trace (missing %q header)", traceMagic)
	}
	data = data[len(traceMagic):]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("msgnet: truncated trace")
		}
		data = data[n:]
		return v, nil
	}
	n, err := next()
	if err != nil {
		return err
	}
	rounds, err := next()
	if err != nil {
		return err
	}
	out := Trace{N: int(n), Rounds: make([]TraceRound, 0, rounds)}
	for r := uint64(0); r < rounds; r++ {
		var rd TraceRound
		nc, err := next()
		if err != nil {
			return err
		}
		rd.Contacts = make([][2]int32, nc)
		for i := range rd.Contacts {
			a, err := next()
			if err != nil {
				return err
			}
			b, err := next()
			if err != nil {
				return err
			}
			rd.Contacts[i] = [2]int32{int32(a), int32(b)}
		}
		nd, err := next()
		if err != nil {
			return err
		}
		rd.Deliveries = make([]int64, nd)
		for i := range rd.Deliveries {
			id, err := next()
			if err != nil {
				return err
			}
			rd.Deliveries[i] = int64(id)
		}
		out.Rounds = append(out.Rounds, rd)
	}
	if len(data) != 0 {
		return fmt.Errorf("msgnet: %d trailing bytes after trace", len(data))
	}
	*t = out
	return nil
}

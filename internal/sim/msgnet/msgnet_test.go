package msgnet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/baseline/sudo"
	"ssrank/internal/core"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

const testSeed = 0x5eed

// descInit builds a descriptor's named initial configuration the way
// the facade does (seed salted for init randomness).
func descInit[S any, P any](d proto.Descriptor[S, P], p P, init string, seed uint64) []S {
	return d.Init(p, init, rng.New(seed^0xc0ffee))
}

// checkStabilizes drives one descriptor through the message network
// and asserts its stop condition is reached within the registered
// budget — with zero per-protocol scheduling code, which is the point.
func checkStabilizes[S any, P sim.Protocol[S]](t *testing.T, d proto.Descriptor[S, P], n int, cfg Config) {
	t.Helper()
	p := d.New(n)
	states := descInit(d, p, d.Inits[0], testSeed)
	nw := New[S](p, states, cfg)
	steps, err := nw.RunUntil(d.Valid, d.Budget(n))
	if err != nil {
		t.Fatalf("%s: did not stabilize through msgnet within %d interactions (did %d over %d rounds)",
			d.Name, d.Budget(n), steps, nw.Rounds())
	}
	if !d.Valid(nw.States()) {
		t.Fatalf("%s: RunUntil returned nil but Valid is false", d.Name)
	}
}

// TestAllProtocolsStabilize runs every registered protocol through a
// fault-free message network: rendezvous locking makes the fault-free
// network a sequentially consistent execution of the standard model,
// so even the non-self-stabilizing protocols must converge.
func TestAllProtocolsStabilize(t *testing.T) {
	const n = 16
	cfg := Config{Seed: testSeed}
	t.Run("stable", func(t *testing.T) { checkStabilizes(t, stable.Describe(), n, cfg) })
	t.Run("space-efficient", func(t *testing.T) { checkStabilizes(t, core.Describe(), n, cfg) })
	t.Run("cai", func(t *testing.T) { checkStabilizes(t, cai.Describe(), n, cfg) })
	t.Run("aware", func(t *testing.T) { checkStabilizes(t, aware.Describe(), n, cfg) })
	t.Run("interval", func(t *testing.T) { checkStabilizes(t, interval.Describe(1.0), n, cfg) })
	t.Run("loose", func(t *testing.T) { checkStabilizes(t, sudo.Describe(sudo.DefaultTimeoutFactor), n, cfg) })
}

// TestStabilizesUnderFaults asserts the flagship self-stabilizing
// protocol still converges under a lossy, duplicating, delaying,
// reordering network — the property the whole package exists to
// measure.
func TestStabilizesUnderFaults(t *testing.T) {
	d := stable.Describe()
	const n = 16
	cfg := Config{
		Seed:   testSeed,
		Faults: Faults{Drop: 0.05, Dup: 0.05, DelayMax: 3, Reorder: 0.5},
	}
	checkStabilizes(t, d, n, cfg)
}

// lossyConfig is the heavy-fault configuration the determinism tests
// exercise: every fault axis on at once.
func lossyConfig(seed uint64, workers int, record bool) Config {
	return Config{
		Seed:    seed,
		Workers: workers,
		Record:  record,
		Faults:  Faults{Drop: 0.1, Dup: 0.1, DelayMax: 3, Reorder: 0.5},
	}
}

// runLossy runs the stable protocol for `rounds` rounds under the
// heavy-fault configuration and returns the network.
func runLossy(t *testing.T, n int, rounds int64, cfg Config) *Network[stable.State, *stable.Protocol] {
	t.Helper()
	d := stable.Describe()
	p := d.New(n)
	nw := New[stable.State](p, descInit(d, p, "fresh", cfg.Seed), cfg)
	nw.Run(rounds)
	return nw
}

// TestWorkerInvariance locks the core determinism contract: the
// trajectory, step count and fault counters are identical at every
// worker count.
func TestWorkerInvariance(t *testing.T) {
	const n, rounds = 200, 60
	ref := runLossy(t, n, rounds, lossyConfig(testSeed, 1, false))
	for _, workers := range []int{2, 4, 8} {
		got := runLossy(t, n, rounds, lossyConfig(testSeed, workers, false))
		if !reflect.DeepEqual(got.Snapshot(), ref.Snapshot()) {
			t.Fatalf("states diverge between 1 and %d workers", workers)
		}
		if got.Steps() != ref.Steps() || got.Stats() != ref.Stats() {
			t.Fatalf("counters diverge between 1 and %d workers: %+v vs %+v", workers, got.Stats(), ref.Stats())
		}
	}
}

// TestSeedDeterminism asserts fault outcomes are a pure function of
// (seed, config): same seed twice is identical, a different seed
// diverges.
func TestSeedDeterminism(t *testing.T) {
	const n, rounds = 100, 40
	a := runLossy(t, n, rounds, lossyConfig(testSeed, 0, false))
	b := runLossy(t, n, rounds, lossyConfig(testSeed, 0, false))
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) || a.Stats() != b.Stats() {
		t.Fatal("same (seed, config) produced different runs")
	}
	c := runLossy(t, n, rounds, lossyConfig(testSeed+1, 0, false))
	if a.Stats() == c.Stats() && reflect.DeepEqual(a.Snapshot(), c.Snapshot()) {
		t.Fatal("different seeds produced identical runs — fault stream is not seeded")
	}
}

// TestRecordReplayByteIdentity locks capture/replay: the trace
// recorded at 1 worker and at 8 workers marshals to identical bytes,
// and replaying it (at 8 workers) reproduces the recorded final
// configuration and step count exactly.
func TestRecordReplayByteIdentity(t *testing.T) {
	const n, rounds = 200, 50
	rec1 := runLossy(t, n, rounds, lossyConfig(testSeed, 1, true))
	rec8 := runLossy(t, n, rounds, lossyConfig(testSeed, 8, true))
	b1, err := rec1.Trace().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := rec8.Trace().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatal("recorded traces differ between 1 and 8 workers")
	}

	var tr Trace
	if err := tr.UnmarshalBinary(b1); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&tr, rec1.Trace()) {
		t.Fatal("trace does not survive a marshal/unmarshal round trip")
	}

	d := stable.Describe()
	p := d.New(n)
	rep := Replay[stable.State](p, descInit(d, p, "fresh", testSeed), &tr, 8)
	rep.Run(rounds)
	if !reflect.DeepEqual(rep.Snapshot(), rec1.Snapshot()) {
		t.Fatal("replayed trajectory diverges from the recorded run")
	}
	if rep.Steps() != rec1.Steps() {
		t.Fatalf("replayed %d interactions, recorded %d", rep.Steps(), rec1.Steps())
	}
}

// TestFaultCounters sanity-checks that every enabled fault axis
// actually fires and is counted.
func TestFaultCounters(t *testing.T) {
	nw := runLossy(t, 300, 40, lossyConfig(testSeed, 0, false))
	st := nw.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 || st.ReorderedRounds == 0 {
		t.Fatalf("enabled fault axes did not all fire: %+v", st)
	}
	if st.Blocked == 0 {
		t.Fatalf("rendezvous filtering never blocked a contact: %+v", st)
	}
	if st.Interactions == 0 {
		t.Fatalf("no interactions delivered: %+v", st)
	}
}

// TestDropEverythingTerminates asserts the round backstop: a network
// that delivers nothing still returns from RunUntil.
func TestDropEverythingTerminates(t *testing.T) {
	d := stable.Describe()
	const n = 16
	p := d.New(n)
	nw := New[stable.State](p, descInit(d, p, "fresh", testSeed), Config{
		Seed:   testSeed,
		Faults: Faults{Drop: 1},
	})
	steps, err := nw.RunUntil(d.Valid, 500)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	if steps != 0 {
		t.Fatalf("a Drop=1 network delivered %d interactions", steps)
	}
	if nw.Rounds() != 500 {
		t.Fatalf("round backstop did not bound the run: %d rounds", nw.Rounds())
	}
}

// TestSchedulers checks every registered scheduler: valid in-range
// distinct ordered pairs, topology-specific shape, and seed
// determinism.
func TestSchedulers(t *testing.T) {
	const n = 20
	for _, name := range Schedulers() {
		t.Run(name, func(t *testing.T) {
			s, err := NewScheduler(name, n, 0, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name() != name {
				t.Fatalf("Name() = %q, want %q", s.Name(), name)
			}
			uf := newUnionFind(n)
			for round := 0; round < 200; round++ {
				contacts := s.Contacts(nil)
				if len(contacts) != DefaultContacts(n) {
					t.Fatalf("round %d emitted %d contacts, want %d", round, len(contacts), DefaultContacts(n))
				}
				for _, c := range contacts {
					a, b := int(c[0]), int(c[1])
					if a == b || a < 0 || b < 0 || a >= n || b >= n {
						t.Fatalf("invalid contact (%d, %d)", a, b)
					}
					uf.union(a, b)
					switch name {
					case Ring:
						if d := (a - b + n) % n; d != 1 && d != n-1 {
							t.Fatalf("ring contact (%d, %d) is not a cycle edge", a, b)
						}
					case Star:
						if a != 0 && b != 0 {
							t.Fatalf("star contact (%d, %d) misses the center", a, b)
						}
					case PingPong:
						if a > 1 || b > 1 {
							t.Fatalf("ping-pong contact (%d, %d) involves agents beyond {0, 1}", a, b)
						}
					}
				}
			}
			// Every topology except ping-pong must connect the whole
			// population (ping-pong deliberately isolates agents >= 2).
			if name != PingPong && uf.components() != 1 {
				t.Fatalf("%s contact graph has %d components after 200 rounds", name, uf.components())
			}

			a, _ := NewScheduler(name, n, 0, testSeed)
			b, _ := NewScheduler(name, n, 0, testSeed)
			for round := 0; round < 5; round++ {
				if ca, cb := a.Contacts(nil), b.Contacts(nil); !reflect.DeepEqual(ca, cb) {
					t.Fatalf("same seed produced different schedules in round %d", round)
				}
			}
		})
	}

	if _, err := NewScheduler("no-such-topology", n, 0, testSeed); err == nil {
		t.Fatal("unknown scheduler name did not error")
	}
}

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

func (u *unionFind) components() int {
	c := 0
	for i := range u.parent {
		if u.find(i) == i {
			c++
		}
	}
	return c
}

// TestFaultsValidate covers the fault-model input validation.
func TestFaultsValidate(t *testing.T) {
	for _, bad := range []Faults{
		{Drop: -0.1}, {Drop: 1.1}, {Dup: 2}, {Reorder: -1}, {DelayMax: -3},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Faults %+v validated", bad)
		}
	}
	if err := (Faults{Drop: 1, Dup: 1, DelayMax: 10, Reorder: 1}).Validate(); err != nil {
		t.Fatalf("extreme but legal Faults rejected: %v", err)
	}
	if !(Faults{}).None() {
		t.Fatal("zero Faults is not None")
	}
}

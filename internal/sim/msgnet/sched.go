package msgnet

import (
	"fmt"
	"sort"

	"ssrank/internal/rng"
)

// Scheduler emits each round's ordered (initiator, responder) contact
// pairs. Implementations own their randomness (seeded at
// construction), so a schedule is a pure function of (name, n,
// contacts-per-round, seed) — the network's fault stream never
// interleaves with it.
type Scheduler interface {
	// Name returns the scheduler's registered name.
	Name() string
	// Contacts appends this round's contacts to dst and returns it.
	// Pairs must be ordered (initiator, responder), distinct, and in
	// range; the same pair may repeat within a round.
	Contacts(dst [][2]int32) [][2]int32
}

// Scheduler names accepted by NewScheduler.
const (
	// Uniform draws each contact as a uniformly random ordered pair —
	// the paper's scheduler, chopped into rounds.
	Uniform = "uniform"
	// Ring draws each contact as a uniformly random directed edge of
	// the cycle 0–1–…–(n-1)–0: every agent talks only to its two
	// neighbors.
	Ring = "ring"
	// Star draws each contact as a uniformly random directed edge
	// between center 0 and a leaf: all communication funnels through
	// one hub.
	Star = "star"
	// PingPong deterministically alternates (0,1), (1,0), … — the
	// minimal two-agent adversarial schedule from the closure tests;
	// agents ≥ 2 never communicate.
	PingPong = "ping-pong"
	// Expander draws contacts from a fixed random 4-regular-ish graph
	// (the union of two seed-derived Hamiltonian cycles): sparse but
	// well-connected.
	Expander = "expander"
	// PowerLaw draws contacts from a fixed seed-derived
	// Barabási–Albert preferential-attachment graph (m = 2): sparse
	// with hub-dominated degrees.
	PowerLaw = "power-law"
)

// Schedulers lists the registered scheduler names, in registry order.
func Schedulers() []string {
	return []string{Uniform, Ring, Star, PingPong, Expander, PowerLaw}
}

// DefaultContacts is the default number of contacts per round for a
// population of n agents: n/2 (at least 1) — in expectation every
// agent participates in about one interaction per round, so rounds
// track parallel time.
func DefaultContacts(n int) int {
	if n < 2 {
		return 1
	}
	return n / 2
}

// NewScheduler constructs the named scheduler for a population of n
// agents emitting `contacts` pairs per round (< 1 = DefaultContacts).
// It errors on an unknown name and on populations too small for the
// topology.
func NewScheduler(name string, n, contacts int, seed uint64) (Scheduler, error) {
	if n < 2 {
		return nil, fmt.Errorf("msgnet: scheduler %q needs n >= 2, got %d", name, n)
	}
	if contacts < 1 {
		contacts = DefaultContacts(n)
	}
	switch name {
	case Uniform, "":
		return NewUniform(n, contacts, seed), nil
	case Ring:
		return &edgeSched{name: Ring, edges: ringEdges(n), contacts: contacts, r: rng.New(seed)}, nil
	case Star:
		return &edgeSched{name: Star, edges: starEdges(n), contacts: contacts, r: rng.New(seed)}, nil
	case PingPong:
		return &pingPong{contacts: contacts}, nil
	case Expander:
		return &edgeSched{name: Expander, edges: expanderEdges(n, seed), contacts: contacts, r: rng.New(seed)}, nil
	case PowerLaw:
		return &edgeSched{name: PowerLaw, edges: powerLawEdges(n, seed), contacts: contacts, r: rng.New(seed)}, nil
	default:
		return nil, fmt.Errorf("msgnet: unknown scheduler %q (have %v)", name, Schedulers())
	}
}

// uniform is the paper's scheduler chopped into rounds.
type uniform struct {
	n, contacts int
	r           *rng.RNG
}

// NewUniform returns the uniform scheduler over n agents with the
// given contacts per round (< 1 = DefaultContacts).
func NewUniform(n, contacts int, seed uint64) Scheduler {
	if contacts < 1 {
		contacts = DefaultContacts(n)
	}
	return &uniform{n: n, contacts: contacts, r: rng.New(seed)}
}

func (u *uniform) Name() string { return Uniform }

func (u *uniform) Contacts(dst [][2]int32) [][2]int32 {
	for i := 0; i < u.contacts; i++ {
		a, b := u.r.Pair(u.n)
		dst = append(dst, [2]int32{int32(a), int32(b)})
	}
	return dst
}

// edgeSched draws each contact as a uniformly random undirected edge
// of a fixed graph, with a coin flip for direction — the standard
// restriction of the uniform scheduler to a contact graph.
type edgeSched struct {
	name     string
	edges    [][2]int32
	contacts int
	r        *rng.RNG
}

func (e *edgeSched) Name() string { return e.name }

func (e *edgeSched) Contacts(dst [][2]int32) [][2]int32 {
	for i := 0; i < e.contacts; i++ {
		edge := e.edges[e.r.Intn(len(e.edges))]
		if e.r.Bool() {
			edge[0], edge[1] = edge[1], edge[0]
		}
		dst = append(dst, edge)
	}
	return dst
}

// pingPong alternates (0,1), (1,0) deterministically.
type pingPong struct {
	contacts int
	flip     bool
}

func (p *pingPong) Name() string { return PingPong }

func (p *pingPong) Contacts(dst [][2]int32) [][2]int32 {
	for i := 0; i < p.contacts; i++ {
		if p.flip {
			dst = append(dst, [2]int32{1, 0})
		} else {
			dst = append(dst, [2]int32{0, 1})
		}
		p.flip = !p.flip
	}
	return dst
}

// ringEdges returns the undirected edges of the n-cycle.
func ringEdges(n int) [][2]int32 {
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	if n == 2 {
		return edges[:1]
	}
	return edges
}

// starEdges returns the undirected edges of the n-star centered at 0.
func starEdges(n int) [][2]int32 {
	edges := make([][2]int32, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = [2]int32{0, int32(i)}
	}
	return edges
}

// expanderEdges returns the union of two seed-derived random
// Hamiltonian cycles — a standard near-4-regular expander
// construction — deduplicated.
func expanderEdges(n int, seed uint64) [][2]int32 {
	r := rng.New(seed ^ 0x657870) // "exp": decorrelate from edge draws
	seen := map[[2]int32]bool{}
	var edges [][2]int32
	add := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		if e := ([2]int32{a, b}); !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for c := 0; c < 2; c++ {
		p := r.Perm(n)
		for i := 0; i < n; i++ {
			add(int32(p[i]), int32(p[(i+1)%n]))
		}
	}
	// Canonical order: the map tracked membership, the slice preserved
	// insertion order; sort so the edge list is a pure function of
	// (n, seed) with no dependence on construction incidentals.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// powerLawEdges returns a seed-derived Barabási–Albert
// preferential-attachment graph with m = 2: each new vertex attaches
// to two earlier vertices chosen proportionally to their current
// degree (via the repeated-endpoint list), yielding a power-law
// degree distribution with hubs.
func powerLawEdges(n int, seed uint64) [][2]int32 {
	r := rng.New(seed ^ 0x706c) // "pl"
	edges := [][2]int32{{0, 1}}
	// endpoints lists every edge endpoint; sampling it uniformly is
	// degree-proportional sampling.
	endpoints := []int32{0, 1}
	for v := int32(2); v < int32(n); v++ {
		t0 := endpoints[r.Intn(len(endpoints))]
		t1 := t0
		for tries := 0; t1 == t0 && tries < 32; tries++ {
			t1 = endpoints[r.Intn(len(endpoints))]
		}
		if t1 == t0 {
			// Degenerate draw after bounded retries (possible only for
			// tiny v): fall back to a uniform distinct earlier vertex
			// to keep the graph simple.
			for t1 == t0 {
				t1 = int32(r.Intn(int(v)))
			}
		}
		edges = append(edges, [2]int32{t0, v}, [2]int32{t1, v})
		endpoints = append(endpoints, t0, v, t1, v)
	}
	return edges
}

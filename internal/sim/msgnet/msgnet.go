// Package msgnet executes population protocols on a round-based
// message network — the adversarial communication model the in-place
// engines idealize away. Agents are message machines: an interaction
// is a *request* message carrying the initiator's state snapshot to
// the responder, which applies the joint transition on delivery and
// answers with a *reply* carrying the initiator's updated state back;
// the initiator adopts it when (and if) the reply arrives. While a
// reply is outstanding the initiator is engaged (rendezvous
// semantics) and the scheduler's contacts involving it are blocked,
// and each round's surviving contacts form a matching — so on a
// perfect network every interaction is atomic from both endpoints'
// view and a run is a sequentially consistent execution of the
// standard model (some interaction sequence), which is why all six
// protocols — including the non-self-stabilizing ones — stabilize
// through msgnet exactly as they do on the in-place engines.
//
// A per-round fault stage then breaks exactly that guarantee: it can
// drop, duplicate, delay, and reorder in-flight messages, producing
// the communication hazards a self-stabilizing protocol claims to
// survive — lost interactions (dropped request), half-applied
// interactions (request delivered, reply dropped: the responder
// updated, the initiator did not), replayed interactions (duplicated
// request applying a stale snapshot again), and stale-state
// overwrites (a duplicated or delayed reply landing after the
// initiator has moved on).
//
// Determinism. Every nondeterministic choice — contact pairs,
// rendezvous filtering, fault fates, delivery order — is made
// serially by the coordinator from two seed-derived streams
// (scheduler and fault), before and after the round's delivery phase.
// The delivery phase itself only applies choices already made:
// messages due in a round are partitioned by recipient, each
// recipient's messages apply in queue order, and deliveries to
// distinct recipients touch disjoint state (a message's payload was
// snapshotted at send time), so they commute. Workers therefore trade
// wall clock for cores only; the trajectory is a pure function of
// (initial configuration, Config) at any worker count — locked by the
// worker-invariance and record/replay tests.
//
// Like netsim, the package exists for fidelity, not speed: the
// message store costs two orders of magnitude more per interaction
// than the in-place hot loop. Use it to measure what imperfect
// communication does to stabilization, not to measure stabilization
// fast.
package msgnet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// faultSalt decorrelates the fault stream from the scheduler stream
// (which consumes the raw seed). Fixed forever: changing it would
// change every seeded faulty run.
const faultSalt = 0x6d73676e // "msgn"

// ErrBudgetExhausted is returned by RunUntil when the stop condition
// did not hold within the interaction budget (or, for regimes that
// deliver nothing, within the round backstop).
var ErrBudgetExhausted = errors.New("msgnet: interaction budget exhausted before stop condition held")

type msgKind uint8

const (
	kindRequest msgKind = iota + 1
	kindReply
)

// msg is one in-flight message. payload is the state snapshot taken
// at send time; copies counts the outstanding deliveries (2 for a
// duplicated message), so the store can free the message after its
// last delivery.
type msg[S any] struct {
	kind     msgKind
	src, dst int32
	copies   int32
	payload  S
}

// Faults configures the per-message fault model. Every fate is drawn
// from the dedicated fault stream at send time, in creation order, so
// fault outcomes are a pure function of (seed, Faults) — independent
// of workers and of wall clock. The zero value injects nothing.
type Faults struct {
	// Drop is the probability a sent message is lost. A dropped
	// request is an interaction that never happens; a dropped reply
	// leaves the responder updated but not the initiator — a
	// half-applied interaction. The network releases the initiator's
	// rendezvous lock one round after a drop (a timeout, in effect).
	Drop float64
	// Dup is the probability a sent message is delivered twice. A
	// duplicated request applies the (stale-snapshot) interaction
	// again; a duplicated reply overwrites the initiator a second
	// time, possibly after it has moved on.
	Dup float64
	// DelayMax, when > 0, delays each surviving message copy by a
	// uniform number of rounds in [0, DelayMax]. Delayed messages
	// carry their send-time snapshot, so late deliveries act with —
	// and write back — stale state.
	DelayMax int
	// Reorder is the probability that a round's delivery queue is
	// shuffled instead of processed in creation order. Only the
	// per-recipient order is observable (deliveries to distinct
	// recipients commute), which is exactly the order a real
	// network's interleaving perturbs.
	Reorder float64
}

// None reports whether the configuration injects no faults.
func (f Faults) None() bool { return f == Faults{} }

// Validate rejects probabilities outside [0, 1] and negative delays.
func (f Faults) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", f.Drop}, {"Dup", f.Dup}, {"Reorder", f.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("msgnet: fault probability %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if f.DelayMax < 0 {
		return fmt.Errorf("msgnet: DelayMax = %d must be >= 0", f.DelayMax)
	}
	return nil
}

// Config parameterizes New.
type Config struct {
	// Sched supplies each round's contact pairs; nil defaults to
	// NewUniform(n, 0, Seed) — uniform random pairs at the default
	// contact count.
	Sched Scheduler
	// Faults is the fault model (zero value = perfect network).
	Faults Faults
	// Workers bounds the delivery worker pool; < 1 means one per CPU.
	// The trajectory never depends on it.
	Workers int
	// Seed drives the fault stream (salted; the scheduler carries its
	// own stream).
	Seed uint64
	// Record captures the run's trace (contacts and delivery order
	// per round) for Replay; retrieve it with Trace.
	Record bool
}

// Stats reports a network's cumulative fault and traffic counters.
type Stats struct {
	// Rounds and Interactions mirror Rounds() and Steps().
	Rounds, Interactions int64
	// Blocked counts scheduled contacts that did not happen because an
	// endpoint was engaged in an outstanding interaction or already
	// taken this round (rendezvous semantics).
	Blocked int64
	// Deferred counts request deliveries the network held back a round
	// because the addressee was engaged in its own outstanding
	// interaction (it cannot respond mid-rendezvous); the message is
	// redelivered once the addressee is free.
	Deferred int64
	// Dropped, Duplicated and Delayed count messages by fate (a
	// message can be both duplicated and delayed).
	Dropped, Duplicated, Delayed int64
	// ReorderedRounds counts rounds whose delivery queue was shuffled.
	ReorderedRounds int64
	// InFlight is the number of outstanding message deliveries.
	InFlight int64
}

// Network runs a protocol over a round-based message network. It is
// not safe for concurrent use by multiple goroutines (the worker pool
// is internal to a round).
type Network[S any, P sim.Protocol[S]] struct {
	proto   P
	states  []S
	sched   Scheduler
	faults  Faults
	faultR  *rng.RNG
	workers int

	round    int64
	steps    int64
	nextID   int64
	msgs     map[int64]*msg[S]
	due      map[int64][]int64
	inflight int64

	// busy marks agents with an outstanding reply (engaged in an
	// interaction); releases schedules lock releases for agents whose
	// reply was dropped at send (the timeout path — normally the reply
	// delivery itself releases the lock). Both are coordinator-only
	// state: the parallel delivery phase never touches them.
	busy     []bool
	releases map[int64][]int32

	blocked, deferred, dropped, duplicated, delayed, reordered int64

	rec          *Trace
	replay       *Trace
	replayCopies map[int64]int32

	// Per-round scratch, reused across rounds.
	rawContacts [][2]int32
	contactBuf  [][2]int32
	taken       []bool
	order       []int32
	replies     []pendingReply[S]
}

// pendingReply is a reply produced during the delivery phase, staged
// by delivery slot so workers write disjoint entries; the coordinator
// turns them into messages (and draws their fates) serially afterward.
type pendingReply[S any] struct {
	ok       bool
	src, dst int32
	payload  S
}

// New starts a network over the given initial configuration. The
// states slice is owned by the network afterwards.
func New[S any, P sim.Protocol[S]](p P, states []S, cfg Config) *Network[S, P] {
	if len(states) < 2 {
		panic(fmt.Sprintf("msgnet: population needs at least 2 agents, got %d", len(states)))
	}
	if err := cfg.Faults.Validate(); err != nil {
		panic(err)
	}
	sched := cfg.Sched
	if sched == nil {
		sched = NewUniform(len(states), 0, cfg.Seed)
	}
	nw := &Network[S, P]{
		proto:    p,
		states:   states,
		sched:    sched,
		faults:   cfg.Faults,
		faultR:   rng.New(cfg.Seed ^ faultSalt),
		workers:  resolveWorkers(cfg.Workers),
		msgs:     map[int64]*msg[S]{},
		due:      map[int64][]int64{},
		busy:     make([]bool, len(states)),
		releases: map[int64][]int32{},
		taken:    make([]bool, len(states)),
	}
	if cfg.Record {
		nw.rec = &Trace{N: len(states)}
	}
	return nw
}

// Replay reconstructs a recorded run: the trace supplies every
// nondeterministic choice (contacts after rendezvous filtering, fault
// fates, delivery order), so neither a scheduler nor a fault stream
// is consulted and the trajectory is identical to the recorded one —
// at any worker count, from the same initial configuration and
// protocol. Running past the end of the trace panics.
func Replay[S any, P sim.Protocol[S]](p P, states []S, tr *Trace, workers int) *Network[S, P] {
	if len(states) != tr.N {
		panic(fmt.Sprintf("msgnet: replaying a trace of %d agents over %d states", tr.N, len(states)))
	}
	counts := make(map[int64]int32)
	for _, rd := range tr.Rounds {
		for _, id := range rd.Deliveries {
			counts[id]++
		}
	}
	return &Network[S, P]{
		proto:        p,
		states:       states,
		workers:      resolveWorkers(workers),
		msgs:         map[int64]*msg[S]{},
		due:          map[int64][]int64{},
		busy:         make([]bool, len(states)),
		replay:       tr,
		replayCopies: counts,
	}
}

func resolveWorkers(w int) int {
	if w < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// N returns the population size.
func (nw *Network[S, P]) N() int { return len(nw.states) }

// States returns the live configuration. The caller must treat it as
// read-only; use Snapshot for a mutable copy.
func (nw *Network[S, P]) States() []S { return nw.states }

// Snapshot returns a copy of the current configuration.
func (nw *Network[S, P]) Snapshot() []S {
	out := make([]S, len(nw.states))
	copy(out, nw.states)
	return out
}

// Steps returns the number of interactions applied so far — delivered
// requests; replies adjust initiator state but do not count.
func (nw *Network[S, P]) Steps() int64 { return nw.steps }

// Rounds returns the number of communication rounds executed.
func (nw *Network[S, P]) Rounds() int64 { return nw.round }

// Stats returns the cumulative fault and traffic counters.
func (nw *Network[S, P]) Stats() Stats {
	return Stats{
		Rounds: nw.round, Interactions: nw.steps,
		Blocked: nw.blocked, Deferred: nw.deferred,
		Dropped: nw.dropped, Duplicated: nw.duplicated, Delayed: nw.delayed,
		ReorderedRounds: nw.reordered, InFlight: nw.inflight,
	}
}

// Trace returns the recorded trace (nil unless Config.Record). The
// trace grows as the network runs; marshal or replay it only after
// the run segment of interest is complete.
func (nw *Network[S, P]) Trace() *Trace { return nw.rec }

// Round executes one communication round:
//
//  1. rendezvous locks whose reply was dropped time out; the
//     scheduler emits this round's contact pairs, filtered to a
//     matching over agents that are neither engaged nor already taken
//     this round; each surviving contact becomes a request message
//     carrying the initiator's current state (the initiator engages),
//     with fault fates (drop, duplicate, per-copy delay) drawn at
//     send;
//  2. the delivery queue for this round — replies sent last round
//     with delay 0, requests sent now with delay 0, plus earlier
//     messages whose delay expires — is optionally shuffled
//     (Reorder); a serial lock pass then releases the rendezvous lock
//     of each reply's recipient and defers requests addressed to
//     still-engaged agents to the next round, and the surviving queue
//     is recorded;
//  3. messages are delivered, partitioned by recipient across the
//     worker pool: a request applies Transition(snapshot, responder)
//     and stages a reply carrying the updated snapshot; a reply
//     overwrites the initiator's state;
//  4. staged replies become messages due no earlier than the next
//     round, their fates drawn serially in delivery-slot order.
func (nw *Network[S, P]) Round() {
	r := nw.round

	// 1. Contacts and request creation. IDs are assigned to every
	// surviving contact so replay allocates the same ID sequence from
	// the recorded (post-filter) contacts.
	var contacts [][2]int32
	if nw.replay != nil {
		if r >= int64(len(nw.replay.Rounds)) {
			panic("msgnet: Round past the end of the replayed trace")
		}
		contacts = nw.replay.Rounds[r].Contacts
	} else {
		if rel := nw.releases[r]; rel != nil {
			for _, a := range rel {
				nw.busy[a] = false
			}
			delete(nw.releases, r)
		}
		nw.rawContacts = nw.sched.Contacts(nw.rawContacts[:0])
		nw.contactBuf = nw.contactBuf[:0]
		for _, c := range nw.rawContacts {
			a, b := c[0], c[1]
			if nw.busy[a] || nw.busy[b] || nw.taken[a] || nw.taken[b] {
				nw.blocked++
				continue
			}
			nw.taken[a], nw.taken[b] = true, true
			nw.contactBuf = append(nw.contactBuf, c)
		}
		for _, c := range nw.contactBuf {
			nw.taken[c[0]], nw.taken[c[1]] = false, false
		}
		contacts = nw.contactBuf
	}
	reqBase := nw.nextID
	for i, c := range contacts {
		id := reqBase + int64(i)
		if nw.replay != nil {
			if k := nw.replayCopies[id]; k > 0 {
				nw.msgs[id] = &msg[S]{kind: kindRequest, src: c[0], dst: c[1], copies: k, payload: nw.states[c[0]]}
			}
		} else {
			nw.busy[c[0]] = true
			nw.send(id, kindRequest, c[0], c[1], nw.states[c[0]], r)
		}
	}
	nw.nextID = reqBase + int64(len(contacts))

	// 2. Delivery queue. Occurrences were appended in creation order
	// (IDs are monotonic), so without Reorder the queue is the
	// deterministic send order — last round's replies before this
	// round's requests, which is what keeps a fault-free round
	// sequentially consistent at each recipient.
	var dueIDs []int64
	if nw.replay != nil {
		dueIDs = nw.replay.Rounds[r].Deliveries
	} else {
		dueIDs = nw.due[r]
		delete(nw.due, r)
		if nw.faults.Reorder > 0 && len(dueIDs) > 1 && nw.faultR.Float64() < nw.faults.Reorder {
			nw.faultR.Shuffle(len(dueIDs), func(i, j int) { dueIDs[i], dueIDs[j] = dueIDs[j], dueIDs[i] })
			nw.reordered++
		}
		// Serial lock pass, in queue order: a reply releases its
		// recipient's rendezvous lock; a request addressed to an agent
		// still engaged in its own interaction is deferred to the next
		// round (it cannot respond mid-rendezvous — delivering anyway
		// would let the engaged agent's inbound reply overwrite the
		// interaction, corrupting even a fault-free run). The recorded
		// trace holds the post-deferral queue, so replay needs no lock
		// bookkeeping at all.
		kept := dueIDs[:0]
		for _, id := range dueIDs {
			m := nw.msgs[id]
			if m.kind == kindRequest && nw.busy[m.dst] {
				nw.due[r+1] = append(nw.due[r+1], id)
				nw.deferred++
				continue
			}
			if m.kind == kindReply {
				nw.busy[m.dst] = false
			}
			kept = append(kept, id)
		}
		dueIDs = kept
		if nw.rec != nil {
			nw.rec.Rounds = append(nw.rec.Rounds, TraceRound{
				Contacts:   append([][2]int32(nil), contacts...),
				Deliveries: append([]int64(nil), dueIDs...),
			})
		}
	}

	// 3. Delivery (the only phase that may run on workers).
	nw.deliver(dueIDs)

	// 4. Staged replies become messages, fates drawn serially in slot
	// order; due no earlier than round r+1 (no intra-round cascades —
	// that is what keeps deliveries commutative within a round).
	replyBase := nw.nextID
	for i := range nw.replies {
		pr := &nw.replies[i]
		if !pr.ok {
			continue
		}
		id := replyBase + int64(i)
		if nw.replay != nil {
			if k := nw.replayCopies[id]; k > 0 {
				nw.msgs[id] = &msg[S]{kind: kindReply, src: pr.src, dst: pr.dst, copies: k, payload: pr.payload}
			}
		} else {
			nw.send(id, kindReply, pr.src, pr.dst, pr.payload, r+1)
		}
	}
	nw.nextID = replyBase + int64(len(dueIDs))

	// Free fully delivered messages.
	for _, id := range dueIDs {
		m := nw.msgs[id]
		if m.copies--; m.copies == 0 {
			delete(nw.msgs, id)
		}
	}
	nw.inflight -= int64(len(dueIDs))
	nw.round++
}

// send assigns fault fates to a freshly created message and schedules
// its delivery occurrences. earliest is the first round the message
// may be delivered in (the current round for requests, the next for
// replies). Fate draws happen only for enabled fault axes, so a
// zero-fault configuration consumes no fault randomness. A dropped
// message schedules the initiator's rendezvous release (the agent
// times out instead of waiting forever for a reply that cannot come).
func (nw *Network[S, P]) send(id int64, kind msgKind, src, dst int32, payload S, earliest int64) {
	f := nw.faults
	if f.Drop > 0 && nw.faultR.Float64() < f.Drop {
		nw.dropped++
		initiator := src
		if kind == kindReply {
			initiator = dst
		}
		nw.releases[earliest+1] = append(nw.releases[earliest+1], initiator)
		return
	}
	copies := int32(1)
	if f.Dup > 0 && nw.faultR.Float64() < f.Dup {
		copies = 2
		nw.duplicated++
	}
	nw.msgs[id] = &msg[S]{kind: kind, src: src, dst: dst, copies: copies, payload: payload}
	for c := int32(0); c < copies; c++ {
		delay := int64(0)
		if f.DelayMax > 0 {
			delay = int64(nw.faultR.Intn(f.DelayMax + 1))
			if delay > 0 {
				nw.delayed++
			}
		}
		dueRound := earliest + delay
		nw.due[dueRound] = append(nw.due[dueRound], id)
		nw.inflight++
	}
}

// deliver applies one round's delivery queue. Slots are grouped by
// recipient (stable in queue order within a group) and groups are
// split across the worker pool; deliveries to distinct recipients
// commute — payloads were snapshotted at send time and a delivery
// mutates only its recipient's state and its own staged-reply slot
// (lock bookkeeping already happened in the coordinator's serial lock
// pass) — so the result is identical at every worker count.
func (nw *Network[S, P]) deliver(ids []int64) {
	n := len(ids)
	if cap(nw.replies) < n {
		nw.replies = make([]pendingReply[S], n)
	}
	nw.replies = nw.replies[:n]
	for i := range nw.replies {
		nw.replies[i] = pendingReply[S]{}
	}
	if n == 0 {
		return
	}

	// Interactions are counted serially so steps never depend on the
	// worker schedule.
	for _, id := range ids {
		if nw.msgs[id].kind == kindRequest {
			nw.steps++
		}
	}

	if cap(nw.order) < n {
		nw.order = make([]int32, n)
	}
	order := nw.order[:n]
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := nw.msgs[ids[order[i]]].dst, nw.msgs[ids[order[j]]].dst
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})

	// Group boundaries: starts[g] is the first slot of recipient
	// group g in order.
	starts := []int{0}
	for i := 1; i < n; i++ {
		if nw.msgs[ids[order[i]]].dst != nw.msgs[ids[order[i-1]]].dst {
			starts = append(starts, i)
		}
	}
	starts = append(starts, n)
	groups := len(starts) - 1

	workers := nw.workers
	if workers > groups {
		workers = groups
	}
	if workers <= 1 || n < 64 {
		nw.deliverSlots(ids, order, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := starts[w*groups/workers], starts[(w+1)*groups/workers]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			nw.deliverSlots(ids, order, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// deliverSlots applies the deliveries of order[lo:hi] — whole
// recipient groups, in per-recipient queue order.
func (nw *Network[S, P]) deliverSlots(ids []int64, order []int32, lo, hi int) {
	for _, slot := range order[lo:hi] {
		m := nw.msgs[ids[slot]]
		if m.kind == kindRequest {
			u := m.payload
			nw.proto.Transition(&u, &nw.states[m.dst])
			nw.replies[slot] = pendingReply[S]{ok: true, src: m.dst, dst: m.src, payload: u}
		} else {
			nw.states[m.dst] = m.payload
		}
	}
}

// Run executes k rounds.
func (nw *Network[S, P]) Run(k int64) {
	for i := int64(0); i < k; i++ {
		nw.Round()
	}
}

// RunUntil executes rounds until stop holds over the configuration
// (polled once per round — stops are round-granular, never exact),
// returning ErrBudgetExhausted once maxSteps interactions were
// delivered, or once maxSteps *rounds* have executed — the backstop
// that keeps regimes delivering (almost) nothing, e.g. Drop = 1, from
// spinning forever. On a replayed network the trace length is a
// further bound.
func (nw *Network[S, P]) RunUntil(stop func([]S) bool, maxSteps int64) (int64, error) {
	if stop(nw.states) {
		return nw.steps, nil
	}
	for nw.steps < maxSteps && nw.round < maxSteps {
		if nw.replay != nil && nw.round >= int64(len(nw.replay.Rounds)) {
			return nw.steps, ErrBudgetExhausted
		}
		nw.Round()
		if stop(nw.states) {
			return nw.steps, nil
		}
	}
	return nw.steps, ErrBudgetExhausted
}

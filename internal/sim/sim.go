// Package sim implements the population-protocol execution model used
// throughout this repository.
//
// Model (paper §III): a population of n agents, each holding a state from
// a protocol-specific state space. Time proceeds in discrete steps; in
// every step an ordered pair (initiator, responder) of distinct agents is
// chosen uniformly at random and both agents update their states
// according to a common deterministic transition function.
//
// All protocol randomness is part of the agent state (the synthetic
// coin), exactly as in the paper, so a run is a pure function of
// (initial configuration, scheduler seed).
//
// The engine is built for throughput: the Runner is generic over the
// concrete protocol type, so transitions dispatch without an interface
// call in the hot loop, and the scheduler consumes agent pairs from a
// rng.PairBatch, which amortizes random-number generation across
// batches of 512 interactions.
package sim

import (
	"errors"
	"fmt"

	"ssrank/internal/rng"
	"ssrank/internal/sim/slab"
)

// Protocol is a population protocol over state type S.
//
// Transition applies a single interaction, mutating the initiator u and
// responder v in place. Implementations must be deterministic: any
// randomness a protocol needs must live in S (e.g. a synthetic coin).
type Protocol[S any] interface {
	Transition(u, v *S)
}

// ErrBudgetExhausted is returned by RunUntil when the stop condition did
// not hold within the interaction budget.
var ErrBudgetExhausted = errors.New("sim: interaction budget exhausted before stop condition held")

// Runner executes a protocol over a concrete population. It is generic
// over both the state type S and the concrete protocol type P, so the
// per-interaction Transition call is devirtualized: sim.New infers P
// from its argument and call sites keep writing sim.New[S](p, ...).
//
// The zero value is not usable; construct with New. Runner is not safe
// for concurrent use.
// The Runner deliberately does not retain the underlying *rng.RNG:
// the PairBatch draws ahead of consumption, so any other consumer of
// the same generator would interleave with prefetched pairs and break
// the deterministic pair stream.
type Runner[S any, P Protocol[S]] struct {
	proto  P
	states []S
	pairs  *rng.PairBatch
	steps  int64
}

// New returns a Runner over the given initial configuration. The states
// slice is owned by the Runner afterwards and must not be mutated by the
// caller (it may be relocated into a cache-line-aligned slab — read it
// back via States). It panics if fewer than two agents are supplied,
// since the pairwise interaction model is undefined below n = 2.
func New[S any, P Protocol[S]](p P, states []S, seed uint64) *Runner[S, P] {
	if len(states) < 2 {
		panic(fmt.Sprintf("sim: population needs at least 2 agents, got %d", len(states)))
	}
	return &Runner[S, P]{proto: p, states: slab.Align(states), pairs: rng.NewPairBatch(rng.New(seed), len(states))}
}

// N returns the population size.
func (r *Runner[S, P]) N() int { return len(r.states) }

// Steps returns the number of interactions executed so far.
func (r *Runner[S, P]) Steps() int64 { return r.steps }

// States returns the live configuration. The caller must treat it as
// read-only; use Snapshot for a mutable copy.
func (r *Runner[S, P]) States() []S { return r.states }

// Snapshot returns a copy of the current configuration.
func (r *Runner[S, P]) Snapshot() []S {
	out := make([]S, len(r.states))
	copy(out, r.states)
	return out
}

// SetState overwrites the state of agent i. It is intended for fault
// injection and adversarial initialization in experiments and tests.
func (r *Runner[S, P]) SetState(i int, s S) { r.states[i] = s }

// Step executes exactly one interaction.
func (r *Runner[S, P]) Step() {
	a, b := r.pairs.Next()
	r.proto.Transition(&r.states[a], &r.states[b])
	r.steps++
}

// Run executes k interactions.
func (r *Runner[S, P]) Run(k int64) {
	states := r.states
	for k > 0 {
		as, bs := r.pairs.Window()
		if int64(len(as)) > k {
			as, bs = as[:k], bs[:k]
		}
		for i, a := range as {
			r.proto.Transition(&states[a], &states[bs[i]])
		}
		r.pairs.Advance(len(as))
		r.steps += int64(len(as))
		k -= int64(len(as))
	}
}

// RunUntil executes interactions until stop returns true, polling the
// condition every checkEvery interactions (values < 1 poll every n
// interactions). It returns the number of interactions executed at the
// first poll where the condition held. If the condition does not hold
// within maxSteps interactions it stops and returns ErrBudgetExhausted.
//
// The condition is also checked once before the first interaction, so a
// configuration that already satisfies stop returns immediately.
//
// Conditions that can be maintained incrementally should instead be
// expressed as a Condition and run through RunUntilCond, which stops
// exactly at the first satisfying interaction.
func (r *Runner[S, P]) RunUntil(stop func(states []S) bool, checkEvery, maxSteps int64) (int64, error) {
	if checkEvery < 1 {
		checkEvery = int64(len(r.states))
	}
	if stop(r.states) {
		return r.steps, nil
	}
	for r.steps < maxSteps {
		chunk := checkEvery
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		if stop(r.states) {
			return r.steps, nil
		}
	}
	return r.steps, ErrBudgetExhausted
}

// RunUntilCond executes interactions until the incrementally
// maintained condition reports Done, or maxSteps interactions have
// been executed (ErrBudgetExhausted). Unlike RunUntil it evaluates the
// condition after every interaction in O(1) amortized time, so it
// stops exactly at the first interaction after which the condition
// holds — no poll-cadence rounding.
//
// The condition is initialized from the current configuration and
// checked once before the first interaction.
func (r *Runner[S, P]) RunUntilCond(cond Condition[S], maxSteps int64) (int64, error) {
	cond.Init(r.states)
	if cond.Done() {
		return r.steps, nil
	}
	states := r.states
	for r.steps < maxSteps {
		as, bs := r.pairs.Window()
		if remaining := maxSteps - r.steps; int64(len(as)) > remaining {
			as, bs = as[:remaining], bs[:remaining]
		}
		for i, a := range as {
			b := bs[i]
			r.proto.Transition(&states[a], &states[b])
			cond.Update(int(a), states)
			cond.Update(int(b), states)
			if cond.Done() {
				r.pairs.Advance(i + 1)
				r.steps += int64(i + 1)
				return r.steps, nil
			}
		}
		r.pairs.Advance(len(as))
		r.steps += int64(len(as))
	}
	return r.steps, ErrBudgetExhausted
}

// RunPairs executes an explicit schedule of ordered (initiator,
// responder) pairs instead of drawing them uniformly. Self-stabilizing
// protocols are analyzed under the uniform scheduler, but their
// *closure* property must hold under every schedule — which is what
// explicit schedules let tests check. It panics on an out-of-range or
// degenerate pair.
func (r *Runner[S, P]) RunPairs(pairs [][2]int) {
	n := len(r.states)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a == b || a < 0 || b < 0 || a >= n || b >= n {
			panic(fmt.Sprintf("sim: invalid scheduled pair (%d, %d) for n=%d", a, b, n))
		}
		r.proto.Transition(&r.states[a], &r.states[b])
		r.steps++
	}
}

// AllOrderedPairs returns every ordered pair of distinct indices below
// n — the exhaustive one-round schedule used by closure tests.
func AllOrderedPairs(n int) [][2]int {
	out := make([][2]int, 0, n*(n-1))
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// Observe executes interactions until stop returns true or maxSteps is
// reached, invoking obs every `every` interactions (and once at step 0,
// and once at the final step). It is the engine behind the paper's
// time-series figures. A nil stop runs to maxSteps.
func (r *Runner[S, P]) Observe(obs func(steps int64, states []S), every, maxSteps int64, stop func(states []S) bool) int64 {
	if every < 1 {
		every = int64(len(r.states))
	}
	obs(r.steps, r.states)
	for r.steps < maxSteps {
		chunk := every
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		obs(r.steps, r.states)
		if stop != nil && stop(r.states) {
			break
		}
	}
	return r.steps
}

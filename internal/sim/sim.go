// Package sim implements the population-protocol execution model used
// throughout this repository.
//
// Model (paper §III): a population of n agents, each holding a state from
// a protocol-specific state space. Time proceeds in discrete steps; in
// every step an ordered pair (initiator, responder) of distinct agents is
// chosen uniformly at random and both agents update their states
// according to a common deterministic transition function.
//
// All protocol randomness is part of the agent state (the synthetic
// coin), exactly as in the paper, so a run is a pure function of
// (initial configuration, scheduler seed).
package sim

import (
	"errors"
	"fmt"

	"ssrank/internal/rng"
)

// Protocol is a population protocol over state type S.
//
// Transition applies a single interaction, mutating the initiator u and
// responder v in place. Implementations must be deterministic: any
// randomness a protocol needs must live in S (e.g. a synthetic coin).
type Protocol[S any] interface {
	Transition(u, v *S)
}

// ErrBudgetExhausted is returned by RunUntil when the stop condition did
// not hold within the interaction budget.
var ErrBudgetExhausted = errors.New("sim: interaction budget exhausted before stop condition held")

// Runner executes a protocol over a concrete population.
//
// The zero value is not usable; construct with New. Runner is not safe
// for concurrent use.
type Runner[S any] struct {
	proto  Protocol[S]
	states []S
	rng    *rng.RNG
	steps  int64
}

// New returns a Runner over the given initial configuration. The states
// slice is owned by the Runner afterwards and must not be mutated by the
// caller. It panics if fewer than two agents are supplied, since the
// pairwise interaction model is undefined below n = 2.
func New[S any](p Protocol[S], states []S, seed uint64) *Runner[S] {
	if len(states) < 2 {
		panic(fmt.Sprintf("sim: population needs at least 2 agents, got %d", len(states)))
	}
	return &Runner[S]{proto: p, states: states, rng: rng.New(seed)}
}

// N returns the population size.
func (r *Runner[S]) N() int { return len(r.states) }

// Steps returns the number of interactions executed so far.
func (r *Runner[S]) Steps() int64 { return r.steps }

// States returns the live configuration. The caller must treat it as
// read-only; use Snapshot for a mutable copy.
func (r *Runner[S]) States() []S { return r.states }

// Snapshot returns a copy of the current configuration.
func (r *Runner[S]) Snapshot() []S {
	out := make([]S, len(r.states))
	copy(out, r.states)
	return out
}

// SetState overwrites the state of agent i. It is intended for fault
// injection and adversarial initialization in experiments and tests.
func (r *Runner[S]) SetState(i int, s S) { r.states[i] = s }

// Step executes exactly one interaction.
func (r *Runner[S]) Step() {
	a, b := r.rng.Pair(len(r.states))
	r.proto.Transition(&r.states[a], &r.states[b])
	r.steps++
}

// Run executes k interactions.
func (r *Runner[S]) Run(k int64) {
	n := len(r.states)
	for i := int64(0); i < k; i++ {
		a, b := r.rng.Pair(n)
		r.proto.Transition(&r.states[a], &r.states[b])
	}
	r.steps += k
}

// RunUntil executes interactions until stop returns true, polling the
// condition every checkEvery interactions (values < 1 poll every n
// interactions). It returns the number of interactions executed at the
// first poll where the condition held. If the condition does not hold
// within maxSteps interactions it stops and returns ErrBudgetExhausted.
//
// The condition is also checked once before the first interaction, so a
// configuration that already satisfies stop returns immediately.
func (r *Runner[S]) RunUntil(stop func(states []S) bool, checkEvery, maxSteps int64) (int64, error) {
	if checkEvery < 1 {
		checkEvery = int64(len(r.states))
	}
	if stop(r.states) {
		return r.steps, nil
	}
	for r.steps < maxSteps {
		chunk := checkEvery
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		if stop(r.states) {
			return r.steps, nil
		}
	}
	return r.steps, ErrBudgetExhausted
}

// RunPairs executes an explicit schedule of ordered (initiator,
// responder) pairs instead of drawing them uniformly. Self-stabilizing
// protocols are analyzed under the uniform scheduler, but their
// *closure* property must hold under every schedule — which is what
// explicit schedules let tests check. It panics on an out-of-range or
// degenerate pair.
func (r *Runner[S]) RunPairs(pairs [][2]int) {
	n := len(r.states)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a == b || a < 0 || b < 0 || a >= n || b >= n {
			panic(fmt.Sprintf("sim: invalid scheduled pair (%d, %d) for n=%d", a, b, n))
		}
		r.proto.Transition(&r.states[a], &r.states[b])
		r.steps++
	}
}

// AllOrderedPairs returns every ordered pair of distinct indices below
// n — the exhaustive one-round schedule used by closure tests.
func AllOrderedPairs(n int) [][2]int {
	out := make([][2]int, 0, n*(n-1))
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}

// Observe executes interactions until stop returns true or maxSteps is
// reached, invoking obs every `every` interactions (and once at step 0,
// and once at the final step). It is the engine behind the paper's
// time-series figures. A nil stop runs to maxSteps.
func (r *Runner[S]) Observe(obs func(steps int64, states []S), every, maxSteps int64, stop func(states []S) bool) int64 {
	if every < 1 {
		every = int64(len(r.states))
	}
	obs(r.steps, r.states)
	for r.steps < maxSteps {
		chunk := every
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		obs(r.steps, r.states)
		if stop != nil && stop(r.states) {
			break
		}
	}
	return r.steps
}

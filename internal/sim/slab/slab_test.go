package slab

import "testing"

type s16 struct{ a, b int64 }
type s12 struct {
	a int64
	b int32
}
type s1 struct{ a byte }

func TestNewAligned(t *testing.T) {
	for i := 0; i < 64; i++ {
		if s := New[s16](100); !Aligned(s) || len(s) != 100 || cap(s) != 100 {
			t.Fatalf("New[s16] iteration %d: aligned=%v len=%d cap=%d", i, Aligned(s), len(s), cap(s))
		}
		if s := New[s1](7); !Aligned(s) || len(s) != 7 {
			t.Fatalf("New[s1] iteration %d: aligned=%v len=%d", i, Aligned(s), len(s))
		}
	}
	if s := New[s16](0); len(s) != 0 {
		t.Fatalf("New(0) returned len %d", len(s))
	}
}

func TestAlignPreservesContents(t *testing.T) {
	// Slice into an allocation at an element offset so the input is
	// misaligned with high probability across iterations; Align must
	// return equal contents either way, aligned whenever it relocates.
	for i := 0; i < 64; i++ {
		backing := make([]s12, 33)
		for j := range backing {
			backing[j] = s12{a: int64(j), b: int32(i)}
		}
		in := backing[1:]
		out := Align(in)
		if len(out) != len(in) {
			t.Fatalf("Align changed length: %d -> %d", len(in), len(out))
		}
		for j := range out {
			if out[j] != in[j] {
				t.Fatalf("Align changed element %d: %+v -> %+v", j, in[j], out[j])
			}
		}
		if &out[0] != &in[0] && !Aligned(out) {
			t.Fatalf("Align relocated to an unaligned slab")
		}
	}
	if got := Align[s16](nil); len(got) != 0 {
		t.Fatalf("Align(nil) returned len %d", len(got))
	}
}

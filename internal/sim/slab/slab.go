// Package slab provides cache-line-aligned backing arrays for agent
// state — the allocation layer shared by the serial and sharded
// population engines.
//
// Both engines' hot loops stream transitions over a contiguous []S
// ("the slab") under uniform random access. Whether element 0 sits on
// a cache-line boundary decides how agent records straddle lines:
// an aligned slab puts ⌈size·n/64⌉ lines under the working set, an
// unaligned one adds a straddling line per boundary-crossing record
// and — in the sharded engine — lets the first agents of shard s+1
// share a line with the last agents of shard s, turning the
// shard-disjointness guarantee into false sharing at slab seams. Go's
// allocator hands out page-aligned blocks for large slices, so big
// populations are usually aligned by luck; this package makes it a
// property instead of an accident, and fixes the small-n case.
//
// Alignment never affects a trajectory — engines copy element values,
// not addresses — so Align may relocate freely: determinism contracts
// ("pure function of (seed, S)") are preserved by construction.
package slab

import "unsafe"

// LineBytes is the cache-line size the slab layer aligns to: 64 bytes
// on every amd64/arm64 part this repository targets.
const LineBytes = 64

// New returns a length-n, capacity-n slice of S whose first element
// sits on a cache-line boundary whenever element-granular padding can
// reach one (element sizes that divide or are multiples of LineBytes;
// other sizes get the allocator's natural alignment — best effort,
// never an error).
func New[S any](n int) []S {
	var zero S
	sz := int(unsafe.Sizeof(zero))
	if n == 0 || sz == 0 {
		return make([]S, n)
	}
	pad := (LineBytes + sz - 1) / sz
	buf := make([]S, n+pad)
	for off := 0; off <= pad; off++ {
		if uintptr(unsafe.Pointer(&buf[off]))%LineBytes == 0 {
			return buf[off : off+n : off+n]
		}
	}
	return buf[:n:n]
}

// Aligned reports whether the slice's first element sits on a
// cache-line boundary. Empty slices are trivially aligned.
func Aligned[S any](s []S) bool {
	if len(s) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&s[0]))%LineBytes == 0
}

// Align returns an aligned slab holding the same elements: the slice
// itself when already aligned, otherwise a copy into a fresh aligned
// allocation. Engines that own their state slice call this once at
// construction, so the caller's slice identity is only broken when the
// original allocation was misaligned — and the engine's documented
// ownership of the slice makes that invisible.
func Align[S any](s []S) []S {
	if Aligned(s) {
		return s
	}
	ns := New[S](len(s))
	copy(ns, s)
	return ns
}

package sim

import (
	"errors"
	"testing"
)

// TransitionT gives the toy ranking protocol the TouchReporter
// capability: the projection is the state value itself (intRank).
func (p assign) TransitionT(u, v *int) (uTouched, vTouched bool) {
	if *u == 0 {
		*u = *v%p.n + 1
		return true, false
	} else if *u == *v {
		*v = *u%p.n + 1
		return false, true
	}
	return false, false
}

// cycler increments the initiator modulo m on every interaction — a
// protocol whose validity is transient (a permutation is destroyed by
// the very next increment), exercising exact first-hit detection under
// permanently dense touching.
type cycler struct{ m int }

func (p cycler) Transition(u, v *int) { *u = (*u + 1) % p.m }

func (p cycler) TransitionT(u, v *int) (uTouched, vTouched bool) {
	*u = (*u + 1) % p.m
	return true, false
}

// never touches nothing and never satisfies any rank condition.
type never struct{}

func (never) Transition(u, v *int)                            {}
func (never) TransitionT(u, v *int) (uTouched, vTouched bool) { return false, false }

// hitTime replays a run one interaction at a time and returns the true
// hitting time of valid.
func hitTime(t *testing.T, mk func() *Runner[int, assign], valid func([]int) bool, max int64) int64 {
	t.Helper()
	r := mk()
	var steps int64
	for !valid(r.States()) {
		r.Step()
		steps++
		if steps > max {
			t.Fatal("replay did not converge")
		}
	}
	return steps
}

func TestRunUntilCondTExactHit(t *testing.T) {
	// The touch-aware path must return exactly the per-interaction
	// hitting time, across seeds (different collision patterns per
	// window) and both toy protocols.
	const n = 16
	for seed := uint64(1); seed <= 12; seed++ {
		mk := func() *Runner[int, assign] { return New[int](assign{n}, make([]int, n), seed) }
		manual := hitTime(t, mk, permValid, 1_000_000)

		r := mk()
		steps, err := RunUntilCondT(r, NewRankCond(0, intRank), 1_000_000)
		if err != nil {
			t.Fatalf("seed %d: did not converge: %v", seed, err)
		}
		if steps != manual {
			t.Fatalf("seed %d: RunUntilCondT stopped at %d, true hitting time %d", seed, steps, manual)
		}
		// A valid ranking is silent for this protocol, so even though
		// the engine may have applied the remainder of the hit's
		// sub-batch, the configuration must be the hitting-time one.
		if !permValid(r.States()) {
			t.Fatalf("seed %d: final states not valid: %v", seed, r.States())
		}
	}
}

func TestRunUntilCondTTransientHit(t *testing.T) {
	// cycler's validity is destroyed by the next interaction, so a stop
	// path that only inspected the condition at batch boundaries would
	// overshoot. Every interaction touches, which also forces a
	// sub-batch split at every repeated initiator.
	const n = 3
	for seed := uint64(1); seed <= 8; seed++ {
		replay := New[int](cycler{n + 2}, make([]int, n), seed)
		var manual int64
		for !permValid(replay.States()) {
			replay.Step()
			manual++
			if manual > 1_000_000 {
				t.Fatal("replay did not converge")
			}
		}

		r := New[int](cycler{n + 2}, make([]int, n), seed)
		steps, err := RunUntilCondT(r, NewRankCond(0, intRank), 1_000_000)
		if err != nil {
			t.Fatalf("seed %d: did not converge: %v", seed, err)
		}
		if steps != manual {
			t.Fatalf("seed %d: RunUntilCondT stopped at %d, true hitting time %d", seed, steps, manual)
		}
	}
}

func TestRunUntilCondTMatchesRunUntilCond(t *testing.T) {
	// Same condition, same protocol, same seed: the touch-aware and the
	// per-interaction paths must report the same hitting time.
	const n = 32
	for seed := uint64(1); seed <= 6; seed++ {
		a := New[int](assign{n}, make([]int, n), seed)
		sa, err := a.RunUntilCond(NewRankCond(0, intRank), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		b := New[int](assign{n}, make([]int, n), seed)
		sb, err := RunUntilCondT(b, NewRankCond(0, intRank), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("seed %d: RunUntilCond %d vs RunUntilCondT %d", seed, sa, sb)
		}
	}
}

func TestRunUntilCondTImmediate(t *testing.T) {
	states := []int{2, 1, 3}
	r := New[int](assign{3}, states, 1)
	steps, err := RunUntilCondT(r, NewRankCond(0, intRank), 100)
	if err != nil || steps != 0 {
		t.Fatalf("already-valid start: steps=%d err=%v", steps, err)
	}
}

func TestRunUntilCondTBudget(t *testing.T) {
	r := New[int](never{}, make([]int, 4), 1)
	cond := NewRankCond(0, func(s *int) int { return 0 })
	steps, err := RunUntilCondT(r, cond, 777)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if steps != 777 || r.Steps() != 777 {
		t.Fatalf("steps = %d, Steps() = %d, want exactly the budget", steps, r.Steps())
	}
}

package sim

import (
	"runtime"
	"sync"

	"ssrank/internal/rng"
)

// TrialResult records the outcome of one independent simulation run.
type TrialResult struct {
	// Steps is the number of interactions the run took (or the budget if
	// it did not converge).
	Steps int64
	// Converged reports whether the stop condition held in budget.
	Converged bool
	// Aux carries an optional protocol-specific scalar (e.g. number of
	// resets observed) so experiments do not need custom result types.
	Aux float64
}

// Trials runs `trials` independent simulations, each driven by its own
// deterministic RNG derived from seed, and returns the results in trial
// order. Runs execute in parallel across GOMAXPROCS goroutines; results
// are nevertheless deterministic because each trial's generator depends
// only on (seed, trial index).
func Trials(trials int, seed uint64, run func(trial int, r *rng.RNG) TrialResult) []TrialResult {
	results := make([]TrialResult, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// Derive a per-trial generator from (seed, i) only.
				results[i] = run(i, rng.New(seed^(0x9e3779b97f4a7c15*uint64(i+1))))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// StepsOf extracts the Steps field of each result, in order.
func StepsOf(rs []TrialResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.Steps)
	}
	return out
}

// AllConverged reports whether every trial converged.
func AllConverged(rs []TrialResult) bool {
	for _, r := range rs {
		if !r.Converged {
			return false
		}
	}
	return true
}

// ConvergedFraction returns the fraction of trials that converged.
func ConvergedFraction(rs []TrialResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	c := 0
	for _, r := range rs {
		if r.Converged {
			c++
		}
	}
	return float64(c) / float64(len(rs))
}

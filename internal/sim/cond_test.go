package sim

import (
	"errors"
	"testing"

	"ssrank/internal/rng"
)

// assign is a toy ranking protocol over int states: the initiator
// claims the smallest rank not obviously taken by copying v's view.
// It is only here to drive the condition tracker; correctness of the
// tracker is checked against the brute-force permutation scan.
type assign struct{ n int }

func (p assign) Transition(u, v *int) {
	if *u == 0 {
		*u = *v%p.n + 1
	} else if *u == *v {
		*v = *u%p.n + 1
	}
}

func permValid(states []int) bool {
	n := len(states)
	seen := make([]bool, n+1)
	for _, s := range states {
		if s < 1 || s > n || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

func intRank(s *int) int { return *s }

func TestRankCondMatchesBruteForce(t *testing.T) {
	// Random rank churn: after every mutation the tracker must agree
	// with the O(n) permutation scan, including transient duplicate
	// and out-of-range ranks.
	const n = 32
	states := make([]int, n)
	c := NewRankCond(0, intRank)
	c.Init(states)
	r := rng.New(11)
	for step := 0; step < 20000; step++ {
		i := r.Intn(n)
		states[i] = r.Intn(n+4) - 2 // includes 0, negatives, > n
		c.Update(i, states)
		if got, want := c.Done(), permValid(states); got != want {
			t.Fatalf("step %d: Done() = %v, brute force = %v (states %v)", step, got, want, states)
		}
	}
	// Drive into the valid configuration and confirm Done flips.
	for i := range states {
		states[i] = i + 1
		c.Update(i, states)
	}
	if !c.Done() {
		t.Fatal("Done() false on a complete permutation")
	}
}

func TestRankCondRelaxedRange(t *testing.T) {
	// m > n: all agents decided with distinct ranks in [1, m].
	states := []int{5, 1, 9}
	c := NewRankCond(10, intRank)
	c.Init(states)
	if !c.Done() {
		t.Fatal("distinct in-range ranks not accepted for m=10")
	}
	states[0] = 9 // duplicate
	c.Update(0, states)
	if c.Done() {
		t.Fatal("duplicate rank accepted")
	}
	states[0] = 11 // out of range = undecided
	c.Update(0, states)
	if c.Done() {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestRankCondReuseAcrossInit(t *testing.T) {
	c := NewRankCond(0, intRank)
	c.Init([]int{2, 1})
	if !c.Done() {
		t.Fatal("first Init: valid permutation rejected")
	}
	c.Init(make([]int, 4))
	if c.Done() {
		t.Fatal("second Init: stale state leaked through reuse")
	}
	c.Init([]int{1, 2, 3})
	if !c.Done() {
		t.Fatal("third Init (shrunk): valid permutation rejected")
	}
}

func TestRunUntilCondStopsExactly(t *testing.T) {
	// RunUntilCond must stop at the first satisfying interaction, not
	// at a poll boundary: replay the run step by step and find the
	// true hitting time, then compare.
	const n = 16
	run := func() int64 {
		r := New[int](assign{n}, make([]int, n), 5)
		steps, err := r.RunUntilCond(NewRankCond(0, intRank), 1_000_000)
		if err != nil {
			t.Fatalf("did not converge: %v", err)
		}
		return steps
	}
	exact := run()

	replay := New[int](assign{n}, make([]int, n), 5)
	var manual int64
	for !permValid(replay.States()) {
		replay.Step()
		manual++
		if manual > 1_000_000 {
			t.Fatal("replay did not converge")
		}
	}
	if exact != manual {
		t.Fatalf("RunUntilCond stopped at %d, true hitting time %d", exact, manual)
	}
}

func TestRunUntilCondImmediate(t *testing.T) {
	states := []int{2, 1, 3}
	r := New[int](assign{3}, states, 1)
	steps, err := r.RunUntilCond(NewRankCond(0, intRank), 100)
	if err != nil || steps != 0 {
		t.Fatalf("already-valid start: steps=%d err=%v", steps, err)
	}
}

func TestRunUntilCondBudget(t *testing.T) {
	// A protocol that never ranks anyone exhausts the budget exactly.
	r := New[int](counter{}, make([]int, 4), 1)
	cond := NewRankCond(0, func(s *int) int { return 0 })
	steps, err := r.RunUntilCond(cond, 777)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if steps != 777 {
		t.Fatalf("steps = %d, want exactly the budget", steps)
	}
}

package sim

// Condition is a stop condition the engine can maintain incrementally.
// Init is called once with the full configuration; after every
// interaction Update is invoked for each of the two touched agents;
// Done reports whether the condition currently holds. Update and Done
// must run in O(1) (amortized) so RunUntilCond can afford to evaluate
// the condition after every single interaction instead of rescanning
// the population on a poll cadence.
type Condition[S any] interface {
	Init(states []S)
	Update(i int, states []S)
	Done() bool
}

// RankCond is the incremental form of the repository's permutation
// validity checks: given a per-agent rank extractor (0 = unranked), it
// tracks whether every agent holds a rank and all held ranks are
// distinct — for rank space [1, n] that is exactly "the ranks form a
// permutation of 1..n" (stable.Valid, core.Valid, cai.Valid,
// aware.Valid). A larger rank space m > n expresses the relaxed-range
// variant: every agent decided, all ranks distinct in [1, m].
//
// The zero value is not usable; construct with NewRankCond. A RankCond
// may be reused across runs — Init resets it.
type RankCond[S any] struct {
	rank     func(*S) int
	m        int     // rank-space size; ranks outside [1, m] count as unranked
	cur      []int32 // cached rank per agent
	mult     []int32 // multiplicity per rank value
	assigned int     // agents whose rank lies in [1, m]
	dups     int     // rank values held by more than one agent
}

// NewRankCond returns a RankCond over rank space [1, m] (m ≤ 0 means
// "population size", resolved at Init). rank must return an agent's
// current rank, or any value outside [1, m] when the agent is unranked.
func NewRankCond[S any](m int, rank func(*S) int) *RankCond[S] {
	return &RankCond[S]{rank: rank, m: m}
}

// Init (re)builds the tracker from the full configuration.
func (c *RankCond[S]) Init(states []S) {
	n := len(states)
	m := c.m
	if m <= 0 {
		m = n
	}
	if cap(c.cur) < n {
		c.cur = make([]int32, n)
	}
	c.cur = c.cur[:n]
	if cap(c.mult) < m+1 {
		c.mult = make([]int32, m+1)
	}
	c.mult = c.mult[:m+1]
	for i := range c.mult {
		c.mult[i] = 0
	}
	c.assigned, c.dups = 0, 0
	for i := range states {
		rk := c.rank(&states[i])
		if rk < 1 || rk > m {
			rk = 0
		}
		c.cur[i] = int32(rk)
		c.add(rk)
	}
}

func (c *RankCond[S]) add(rk int) {
	if rk == 0 {
		return
	}
	c.assigned++
	c.mult[rk]++
	if c.mult[rk] == 2 {
		c.dups++
	}
}

func (c *RankCond[S]) remove(rk int) {
	if rk == 0 {
		return
	}
	c.assigned--
	c.mult[rk]--
	if c.mult[rk] == 1 {
		c.dups--
	}
}

// Update refreshes agent i's cached rank.
func (c *RankCond[S]) Update(i int, states []S) {
	rk := c.rank(&states[i])
	if rk < 1 || rk >= len(c.mult) {
		rk = 0
	}
	if old := int(c.cur[i]); old != rk {
		c.remove(old)
		c.add(rk)
		c.cur[i] = int32(rk)
	}
}

// Done reports whether every agent holds a distinct rank in [1, m].
func (c *RankCond[S]) Done() bool {
	return c.assigned == len(c.cur) && c.dups == 0
}

package sim

import (
	"errors"
	"testing"
)

// counter is a trivial protocol: both agents increment on interaction.
type counter struct{}

func (counter) Transition(u, v *int) { *u++; *v++ }

// adopt is a one-way epidemic over booleans: the responder adopts the
// initiator's true value.
type adopt struct{}

func (adopt) Transition(u, v *bool) {
	if *u {
		*v = true
	}
}

func TestStepCountsInteractions(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	r.Step()
	r.Run(9)
	if r.Steps() != 10 {
		t.Fatalf("Steps() = %d, want 10", r.Steps())
	}
	sum := 0
	for _, v := range r.States() {
		sum += v
	}
	if sum != 20 {
		t.Fatalf("total increments = %d, want 20 (two per interaction)", sum)
	}
}

func TestNewPanicsOnTinyPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 1 agent did not panic")
		}
	}()
	New[int](counter{}, make([]int, 1), 1)
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		r := New[int](counter{}, make([]int, 8), 42)
		r.Run(1000)
		return r.Snapshot()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	snap := r.Snapshot()
	r.Run(100)
	for _, v := range snap {
		if v != 0 {
			t.Fatal("snapshot mutated by subsequent run")
		}
	}
}

func TestRunUntilImmediate(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	steps, err := r.RunUntil(func([]int) bool { return true }, 0, 100)
	if err != nil || steps != 0 {
		t.Fatalf("RunUntil on satisfied condition: steps=%d err=%v", steps, err)
	}
}

func TestRunUntilBudget(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	steps, err := r.RunUntil(func([]int) bool { return false }, 7, 100)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if steps != 100 {
		t.Fatalf("steps = %d, want exactly the budget 100", steps)
	}
}

func TestRunUntilEpidemic(t *testing.T) {
	states := make([]bool, 64)
	states[0] = true
	r := New[bool](adopt{}, states, 3)
	all := func(ss []bool) bool {
		for _, s := range ss {
			if !s {
				return false
			}
		}
		return true
	}
	steps, err := r.RunUntil(all, 0, 1_000_000)
	if err != nil {
		t.Fatalf("epidemic did not complete: %v", err)
	}
	if steps == 0 {
		t.Fatal("epidemic completed in zero steps")
	}
}

func TestObserveCadence(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	var at []int64
	r.Observe(func(steps int64, _ []int) { at = append(at, steps) }, 10, 35, nil)
	want := []int64{0, 10, 20, 30, 35}
	if len(at) != len(want) {
		t.Fatalf("observations at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("observations at %v, want %v", at, want)
		}
	}
}

func TestObserveStops(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	steps := r.Observe(func(int64, []int) {}, 5, 1000, func(ss []int) bool {
		return ss[0]+ss[1]+ss[2]+ss[3] >= 20
	})
	if steps >= 1000 {
		t.Fatalf("Observe ran to budget (%d) despite stop condition", steps)
	}
}

func TestSetState(t *testing.T) {
	r := New[int](counter{}, make([]int, 4), 1)
	r.SetState(2, 99)
	if r.States()[2] != 99 {
		t.Fatal("SetState did not apply")
	}
}

func BenchmarkEngineStep(b *testing.B) {
	r := New[int](counter{}, make([]int, 1024), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

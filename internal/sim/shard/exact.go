package shard

import "ssrank/internal/sim"

// This file implements exact stopping for the sharded engine: the
// touch-reporting machinery of the serial engine (sim.RunUntilCondT)
// extended across batch barriers.
//
// While tracking is enabled, every unit of a batch — each shard's
// intra pairs, each cross class — applies its interactions through the
// protocol's TransitionT and records the touched ones (the ones that
// moved a condition-relevant projection) into a private per-unit
// slice, together with the interaction's canonical batch position and
// both agents' post-interaction states. At the batch barrier the
// records are folded, merged in canonical order, into the descriptor's
// incremental stop tracker, identifying the exact first interaction of
// the batch after which the condition held.
//
// The fold replays against a persistent shadow configuration rather
// than the live states: a recorded state is written into the shadow
// before the tracker's Update reads it. The shadow is
// projection-faithful at every prefix of the canonical order — an
// agent's projection only changes at its touches, all of which are
// recorded, so between touches the shadow holds exactly the
// projection the live trajectory held at that point. The live array
// cannot serve here: by barrier time it already holds end-of-batch
// states, and conflicting touches of one agent within a batch would
// make mid-batch tracker reads see the future. Condition trackers read
// only the updated agent's state (the Condition contract), so a
// shadow whose *other* components lag is indistinguishable from the
// live mid-batch configuration.
//
// Soundness of the canonical order itself is DESIGN.md §3: a batch of
// uniformly sampled pairs may be applied in the canonical order (intra
// shards in shard order, then cross classes in tournament-round order)
// without changing the law of the process, and the sharded trajectory
// is *defined* as that canonical sequence. The hitting time reported
// here is the exact hitting time of that trajectory — batch-granular
// detection, within-batch exact replay — and, like every sharded
// quantity, a pure function of (seed, shard count) at any worker
// count: records are written by the unit that owns them, offsets are
// assigned before dispatch, and the fold runs after the barrier.
//
// The fold path is shared with the distributed runtime: Folder holds
// the shadow and replays record slices, and RunExactBatches
// (exchange.go) drives any BarrierExchange — the in-process Runner or
// a wire-backed coordinator — through the identical batch/fold loop.

// TouchRec is one touched interaction of a batch: its canonical batch
// position, which agents to fold (mask bit 1 = initiator, bit 2 =
// responder), and both agents' states just after the interaction — the
// values the shadow replay rewinds to. Records cross process
// boundaries in the distributed runtime, so the fields are exported;
// the canonical wire encoding lives in internal/dist.
type TouchRec[S any] struct {
	Pos    int32
	Mask   uint8
	A, B   int32
	SA, SB S
}

// newTouchRec packs one touched interaction.
func newTouchRec[S any](pos int32, ut, vt bool, a, b int32, sa, sb S) TouchRec[S] {
	var m uint8
	if ut {
		m = 1
	}
	if vt {
		m |= 2
	}
	return TouchRec[S]{Pos: pos, Mask: m, A: a, B: b, SA: sa, SB: sb}
}

// Folder replays touched-interaction records against a persistent
// projection-faithful shadow configuration, feeding an incremental
// condition tracker. One Folder serves one exact-stopping run: Reset
// synchronizes the shadow with the run's current configuration, then
// Fold consumes each batch's record slices in canonical order.
type Folder[S any] struct {
	shadow []S
}

// NewFolder returns a Folder for a population of n agents.
func NewFolder[S any](n int) *Folder[S] {
	return &Folder[S]{shadow: make([]S, n)}
}

// Reset synchronizes the shadow with the given configuration; call it
// once before the first batch of an exact-stopping run.
func (f *Folder[S]) Reset(states []S) {
	copy(f.shadow, states)
}

// Fold replays one record slice into the condition tracker via the
// shadow. It returns the batch position of the first interaction after
// which the condition held, or -1. Callers fold a batch's slices in
// canonical unit order and stop consuming tracker updates after the
// first hit (later slices of the batch still carry valid positions,
// but the hitting time is the first).
func (f *Folder[S]) Fold(cond sim.Condition[S], recs []TouchRec[S]) int64 {
	for i := range recs {
		t := &recs[i]
		// Rewind both agents to their at-touch states before the
		// tracker reads them; the untouched partner's write is a
		// projection no-op that merely keeps the shadow current.
		f.shadow[t.A] = t.SA
		f.shadow[t.B] = t.SB
		if t.Mask&1 != 0 {
			cond.Update(int(t.A), f.shadow)
		}
		if t.Mask&2 != 0 {
			cond.Update(int(t.B), f.shadow)
		}
		if cond.Done() {
			return int64(t.Pos)
		}
	}
	return -1
}

// ensureTracking allocates the per-unit recording scratch once per
// Runner; later exact runs reuse it.
func (r *Runner[S, P]) ensureTracking() {
	if r.intraRecs == nil {
		n, c := len(r.shards), len(r.classes)
		r.intraOff = make([]int32, n)
		r.crossOff = make([]int32, c)
		r.intraRecs = make([][]TouchRec[S], n)
		r.crossRecs = make([][]TouchRec[S], c)
	}
}

// ExecBatch implements BarrierExchange in-process: the batch executes
// on the Runner's own workers, and each unit's record slice is emitted
// (then recycled) in canonical unit order — intra shards in shard
// order, then cross units in tournament-round order.
func (r *Runner[S, P]) ExecBatch(b int, track bool, emit func(recs []TouchRec[S])) error {
	if track {
		r.ensureTracking()
		r.tracking = true
	}
	r.runBatch(b)
	r.tracking = false
	if !track {
		return nil
	}
	for s := range r.intraRecs {
		emit(r.intraRecs[s])
		r.intraRecs[s] = r.intraRecs[s][:0]
	}
	for _, round := range r.rounds {
		for _, c := range round {
			emit(r.crossRecs[c])
			r.crossRecs[c] = r.crossRecs[c][:0]
		}
	}
	return nil
}

// RunUntilExact executes interactions until the incrementally
// maintained condition reports Done, or maxSteps interactions have
// been executed (sim.ErrBudgetExhausted) — the sharded counterpart of
// sim.RunUntilCondT. The condition is initialized from the current
// configuration and checked once before the first interaction.
//
// The returned step count is the exact hitting time of the sharded
// trajectory: batches run at the engine's native barrier period
// (independent of any poll cadence), and the barrier fold replays the
// batch's touched interactions in canonical application order to pin
// the first satisfying interaction within the batch. Transient
// conditions are handled exactly: a condition that holds mid-batch and
// breaks again before the barrier is still detected by the fold, which
// a polled validity scan would sail through.
//
// Because the hit's batch has been fully applied when the fold detects
// Done, Steps() (and the pair streams) can sit up to one batch past
// the returned value; for silent stop conditions the trailing
// interactions are no-ops, so the final configuration is the one at
// the hitting time. The result is byte-identical at any worker count.
func (r *Runner[S, P]) RunUntilExact(cond sim.Condition[S], maxSteps int64) (int64, error) {
	cond.Init(r.states)
	if cond.Done() {
		return r.steps, nil
	}
	if r.folder == nil {
		r.folder = NewFolder[S](len(r.states))
	}
	r.folder.Reset(r.states)
	stop := r.startWorkers()
	defer stop()
	_, hit, err := RunExactBatches[S](r, r.folder, cond, r.steps, maxSteps, r.batch)
	if err != nil {
		return r.steps, err
	}
	if hit < 0 {
		return r.steps, sim.ErrBudgetExhausted
	}
	return hit, nil
}

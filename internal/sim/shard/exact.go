package shard

import "ssrank/internal/sim"

// This file implements exact stopping for the sharded engine: the
// touch-reporting machinery of the serial engine (sim.RunUntilCondT)
// extended across batch barriers.
//
// While tracking is enabled, every unit of a batch — each shard's
// intra pairs, each cross class — applies its interactions through the
// protocol's TransitionT and records the touched ones (the ones that
// moved a condition-relevant projection) into a private per-unit
// slice, together with the interaction's canonical batch position and
// both agents' post-interaction states. At the batch barrier the
// coordinator folds those records, merged in canonical order, into the
// descriptor's incremental stop tracker, identifying the exact
// first interaction of the batch after which the condition held.
//
// The fold replays against a persistent shadow configuration rather
// than the live states: a recorded state is written into the shadow
// before the tracker's Update reads it. The shadow is
// projection-faithful at every prefix of the canonical order — an
// agent's projection only changes at its touches, all of which are
// recorded, so between touches the shadow holds exactly the
// projection the live trajectory held at that point. The live array
// cannot serve here: by barrier time it already holds end-of-batch
// states, and conflicting touches of one agent within a batch would
// make mid-batch tracker reads see the future. Condition trackers read
// only the updated agent's state (the Condition contract), so a
// shadow whose *other* components lag is indistinguishable from the
// live mid-batch configuration.
//
// Soundness of the canonical order itself is DESIGN.md §3: a batch of
// uniformly sampled pairs may be applied in the canonical order (intra
// shards in shard order, then cross classes in tournament-round order)
// without changing the law of the process, and the sharded trajectory
// is *defined* as that canonical sequence. The hitting time reported
// here is the exact hitting time of that trajectory — batch-granular
// detection, within-batch exact replay — and, like every sharded
// quantity, a pure function of (seed, shard count) at any worker
// count: records are written by the unit that owns them, offsets are
// assigned before dispatch, and the fold runs on the coordinator after
// the barrier.

// touchRec is one touched interaction of the current batch: its
// canonical position, which agents to fold (mask bit 1 = initiator,
// bit 2 = responder), and both agents' states just after the
// interaction — the values the shadow replay rewinds to.
type touchRec[S any] struct {
	pos    int32
	mask   uint8
	a, b   int32
	sa, sb S
}

// newTouchRec packs one touched interaction.
func newTouchRec[S any](pos int32, ut, vt bool, a, b int32, sa, sb S) touchRec[S] {
	var m uint8
	if ut {
		m = 1
	}
	if vt {
		m |= 2
	}
	return touchRec[S]{pos: pos, mask: m, a: a, b: b, sa: sa, sb: sb}
}

// enableTracking switches the batch appliers to recording mode and
// synchronizes the shadow with the live configuration. Scratch is
// allocated once per Runner and reused by later exact runs.
func (r *Runner[S, P]) enableTracking() {
	if r.shadow == nil {
		n, c := len(r.shards), len(r.classes)
		r.intraOff = make([]int32, n)
		r.crossOff = make([]int32, c)
		r.intraRecs = make([][]touchRec[S], n)
		r.crossRecs = make([][]touchRec[S], c)
		r.shadow = make([]S, len(r.states))
	}
	copy(r.shadow, r.states)
	r.tracking = true
}

// fold replays the batch's touched interactions, merged in canonical
// order, into the condition tracker via the shadow configuration. It
// returns the batch-relative position of the first interaction after
// which the condition held, or -1 — and always clears every record
// slice, including units that had no work this batch (their records
// would otherwise leak into the next fold).
func (r *Runner[S, P]) fold(cond sim.Condition[S]) int64 {
	hit := int64(-1)
	apply := func(recs []touchRec[S]) {
		if hit >= 0 {
			return
		}
		for _, t := range recs {
			// Rewind both agents to their at-touch states before the
			// tracker reads them; the untouched partner's write is a
			// projection no-op that merely keeps the shadow current.
			r.shadow[t.a] = t.sa
			r.shadow[t.b] = t.sb
			if t.mask&1 != 0 {
				cond.Update(int(t.a), r.shadow)
			}
			if t.mask&2 != 0 {
				cond.Update(int(t.b), r.shadow)
			}
			if cond.Done() {
				hit = int64(t.pos)
				return
			}
		}
	}
	for s := range r.intraRecs {
		apply(r.intraRecs[s])
		r.intraRecs[s] = r.intraRecs[s][:0]
	}
	for _, round := range r.rounds {
		for _, c := range round {
			apply(r.crossRecs[c])
			r.crossRecs[c] = r.crossRecs[c][:0]
		}
	}
	return hit
}

// RunUntilExact executes interactions until the incrementally
// maintained condition reports Done, or maxSteps interactions have
// been executed (sim.ErrBudgetExhausted) — the sharded counterpart of
// sim.RunUntilCondT. The condition is initialized from the current
// configuration and checked once before the first interaction.
//
// The returned step count is the exact hitting time of the sharded
// trajectory: batches run at the engine's native barrier period
// (independent of any poll cadence), and the barrier fold replays the
// batch's touched interactions in canonical application order to pin
// the first satisfying interaction within the batch. Transient
// conditions are handled exactly: a condition that holds mid-batch and
// breaks again before the barrier is still detected by the fold, which
// a polled validity scan would sail through.
//
// Because the hit's batch has been fully applied when the fold detects
// Done, Steps() (and the pair streams) can sit up to one batch past
// the returned value; for silent stop conditions the trailing
// interactions are no-ops, so the final configuration is the one at
// the hitting time. The result is byte-identical at any worker count.
func (r *Runner[S, P]) RunUntilExact(cond sim.Condition[S], maxSteps int64) (int64, error) {
	cond.Init(r.states)
	if cond.Done() {
		return r.steps, nil
	}
	r.enableTracking()
	defer func() { r.tracking = false }()
	stop := r.startWorkers()
	defer stop()
	for r.steps < maxSteps {
		b := int64(r.batch)
		if remaining := maxSteps - r.steps; b > remaining {
			b = remaining
		}
		before := r.steps
		r.runBatch(int(b))
		if hit := r.fold(cond); hit >= 0 {
			return before + hit + 1, nil
		}
	}
	return r.steps, sim.ErrBudgetExhausted
}

package shard

import (
	"fmt"

	"ssrank/internal/rng"
)

// EngineState is the exportable scheduler position of a sharded
// Runner: the step counter, the master class-label stream, every
// shard's private pair stream, and every cross class's private
// endpoint stream. Restoring it onto a Runner built with the same
// (population, seed, shard count) resumes the trajectory exactly —
// all nondeterminism of the sharded schedule lives in these streams
// (DESIGN.md §3), so no batch scratch needs to survive a checkpoint:
// batches never span a Run call boundary, and the per-batch class
// counts are a pure function of the master stream position.
//
// Note the sharded trajectory depends on where batch barriers fall
// (see the package comment): a resumed run reproduces an uninterrupted
// run byte-for-byte only if the calls that preceded the checkpoint cut
// batches at the same boundaries the uninterrupted call sequence
// would. Checkpointing at a multiple of BatchPeriod(n) preserves the
// native barrier schedule of RunUntilExact.
type EngineState struct {
	// Steps is the number of interactions executed when the state was
	// captured.
	Steps int64
	// Master is the coordinator's class-label stream position — a bare
	// xoshiro state, since classification consumes one raw draw per
	// slot (no pair prefetch buffer to account for).
	Master [4]uint64
	// Shards holds each shard's private intra-pair stream position, in
	// shard order.
	Shards []rng.PairBatchState
	// Classes holds each cross class's private endpoint stream
	// position, in compact class order ((s asc, t asc) over s < t).
	// Cross endpoints are drawn unbuffered, so a bare xoshiro state
	// captures the position completely.
	Classes [][4]uint64
}

// EngineState captures the Runner's scheduler position.
func (r *Runner[S, P]) EngineState() EngineState {
	st := EngineState{
		Steps:   r.steps,
		Master:  r.master.State(),
		Shards:  make([]rng.PairBatchState, len(r.shards)),
		Classes: make([][4]uint64, len(r.classes)),
	}
	for s := range r.shards {
		st.Shards[s] = r.shards[s].pb.State()
	}
	for c := range r.classes {
		st.Classes[c] = r.classes[c].g.State()
	}
	return st
}

// SetEngineState restores a position captured by EngineState on a
// Runner with the same population size and shard count. The caller is
// responsible for having restored the matching configuration.
func (r *Runner[S, P]) SetEngineState(st EngineState) error {
	if len(st.Shards) != len(r.shards) {
		return fmt.Errorf("shard: engine state has %d shard streams, runner has %d shards", len(st.Shards), len(r.shards))
	}
	if len(st.Classes) != len(r.classes) {
		return fmt.Errorf("shard: engine state has %d class streams, runner has %d cross classes", len(st.Classes), len(r.classes))
	}
	if err := r.master.SetState(st.Master); err != nil {
		return fmt.Errorf("shard: master stream: %w", err)
	}
	for s := range r.shards {
		if err := r.shards[s].pb.SetState(st.Shards[s]); err != nil {
			return fmt.Errorf("shard: shard %d stream: %w", s, err)
		}
	}
	for c := range r.classes {
		if err := r.classes[c].g.SetState(st.Classes[c]); err != nil {
			return fmt.Errorf("shard: class %d stream: %w", c, err)
		}
	}
	r.steps = st.Steps
	return nil
}

// BatchPeriod returns the native barrier period the Runner uses for a
// population of n agents: n/2 clamped to [minBatch, maxBatch]. It is
// exported so checkpointing layers can align their cut points with the
// batch schedule — a sharded run checkpointed at a multiple of
// BatchPeriod(n) and resumed continues on exactly the barrier schedule
// an uninterrupted RunUntilExact would have used.
func BatchPeriod(n int) int {
	b := n / 2
	if b < minBatch {
		b = minBatch
	}
	if b > maxBatch {
		b = maxBatch
	}
	return b
}

package shard

import "testing"

func TestAutoShards(t *testing.T) {
	for _, tc := range []struct {
		n, procs, want int
	}{
		{1000, 8, 1},        // small n: serial no matter the cores
		{16383, 64, 1},      // just below the threshold
		{16384, 1, 1},       // single core: nothing to parallelize
		{16384, 8, 4},       // slab floor caps below the core count
		{100_000, 8, 8},     // one shard per core
		{100_000, 64, 24},   // slab floor: 100000/4096
		{1_000_000, 16, 16}, // cores are the binding constraint again
	} {
		if got := AutoShards(tc.n, tc.procs); got != tc.want {
			t.Errorf("AutoShards(%d, %d) = %d, want %d", tc.n, tc.procs, got, tc.want)
		}
	}
	if got := AutoShards(100_000, 0); got < 1 {
		t.Errorf("AutoShards with derived procs returned %d", got)
	}
}

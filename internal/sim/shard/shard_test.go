package shard

import (
	"math"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"ssrank/internal/epidemic"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// TestTournamentSchedule pins the combinatorial contract of the cross
// rounds: every unordered shard pair appears in exactly one round, and
// no shard appears twice within a round (the property that makes a
// round's classes safe to run concurrently).
func TestTournamentSchedule(t *testing.T) {
	for S := 2; S <= 9; S++ {
		seen := map[int]int{}
		for _, round := range tournament(S) {
			used := map[int]bool{}
			for _, c := range round {
				s, u := c/S, c%S
				if s >= u {
					t.Fatalf("S=%d: class %d is not canonical (s=%d, t=%d)", S, c, s, u)
				}
				if used[s] || used[u] {
					t.Fatalf("S=%d: shard reused within a round: %v", S, round)
				}
				used[s], used[u] = true, true
				seen[c]++
			}
		}
		for s := 0; s < S; s++ {
			for u := s + 1; u < S; u++ {
				if seen[s*S+u] != 1 {
					t.Fatalf("S=%d: class (%d,%d) scheduled %d times", S, s, u, seen[s*S+u])
				}
			}
		}
	}
}

// TestShardPartition checks the floor partition against its branch-free
// inverse for a grid of populations and shard counts: contiguous
// ranges, every shard ≥ 2 agents, and shardOf agreeing with the ranges.
func TestShardPartition(t *testing.T) {
	for _, n := range []int{4, 5, 7, 64, 100, 1000, 1001} {
		for _, S := range []int{1, 2, 3, 4, 7, 16, n} {
			p := stable.New(n, stable.DefaultParams())
			r := New[stable.State](p, p.InitialStates(), 1, S, 1)
			lo := 0
			for s, sh := range r.shards {
				if sh.lo != lo {
					t.Fatalf("n=%d S=%d: shard %d starts at %d, want %d", n, S, s, sh.lo, lo)
				}
				if sh.hi-sh.lo < 2 {
					t.Fatalf("n=%d S=%d: shard %d has %d agents", n, S, s, sh.hi-sh.lo)
				}
				for i := sh.lo; i < sh.hi; i++ {
					if got := r.shardOf(i); got != s {
						t.Fatalf("n=%d S=%d: shardOf(%d)=%d, want %d", n, S, i, got, s)
					}
				}
				lo = sh.hi
			}
			if lo != n {
				t.Fatalf("n=%d S=%d: shards cover [0,%d), want [0,%d)", n, S, lo, n)
			}
		}
	}
}

// jitterProto wraps a protocol with a data-dependent spin — an
// adversarial completion schedule for the phase workers (transition
// cost varies with the states it touches, so shards finish their phase
// work in wildly different, scheduling-dependent orders). It must not
// change any trajectory: the wrapped Transition is called exactly once
// per pair.
type jitterProto struct {
	inner *stable.Protocol
	sink  atomic.Int64
}

func (j *jitterProto) Transition(u, v *stable.State) {
	spin := (int(u.Rank)%13)*37 + (int(v.Phase)%5)*11
	x := 0
	for i := 0; i < spin; i++ {
		x += i
	}
	j.sink.Add(int64(x & 1)) // defeat dead-code elimination
	j.inner.Transition(u, v)
}

func (j *jitterProto) TransitionT(u, v *stable.State) (bool, bool) {
	spin := (int(u.Rank)%13)*37 + (int(v.Phase)%5)*11
	x := 0
	for i := 0; i < spin; i++ {
		x += i
	}
	j.sink.Add(int64(x & 1))
	return j.inner.TransitionT(u, v)
}

// TestWorkerCountInvariance is the headline determinism contract: for
// a fixed (seed, S) the trajectory is byte-identical at every worker
// count, including under the adversarial jitter schedule. Checked over
// S ∈ {1, 4} × workers ∈ {1, 8} (plus an odd shard count, which
// exercises the bye rounds of the tournament).
func TestWorkerCountInvariance(t *testing.T) {
	const (
		n     = 512
		seed  = 0xd15c0
		steps = 200_000
	)
	for _, S := range []int{1, 3, 4} {
		run := func(workers int, jitter bool) ([]stable.State, int64, int64) {
			p := stable.New(n, stable.DefaultParams())
			if jitter {
				r := New[stable.State](&jitterProto{inner: p}, p.WorstCaseInit(), seed, S, workers)
				r.Run(steps)
				return r.States(), r.Steps(), p.Resets()
			}
			r := New[stable.State](p, p.WorstCaseInit(), seed, S, workers)
			r.Run(steps)
			return r.States(), r.Steps(), p.Resets()
		}
		refStates, refSteps, refResets := run(1, false)
		if refSteps != steps {
			t.Fatalf("S=%d: executed %d steps, want %d", S, refSteps, steps)
		}
		for _, workers := range []int{1, 8} {
			for _, jitter := range []bool{false, true} {
				states, _, resets := run(workers, jitter)
				if !reflect.DeepEqual(states, refStates) {
					t.Fatalf("S=%d workers=%d jitter=%t: states differ from the 1-worker reference", S, workers, jitter)
				}
				if resets != refResets {
					t.Fatalf("S=%d workers=%d jitter=%t: resets=%d, want %d", S, workers, jitter, resets, refResets)
				}
			}
		}
	}
}

// TestShardCountChangesTrajectory documents that the determinism
// contract is per (seed, S): different shard counts consume different
// stream decompositions, so their trajectories differ (they agree only
// in law). A silent pass here would mean the shard streams are unused.
func TestShardCountChangesTrajectory(t *testing.T) {
	const n, seed, steps = 256, 7, 50_000
	run := func(S int) []stable.State {
		p := stable.New(n, stable.DefaultParams())
		r := New[stable.State](p, p.InitialStates(), seed, S, 1)
		r.Run(steps)
		return r.States()
	}
	if reflect.DeepEqual(run(2), run(4)) {
		t.Fatal("trajectories at S=2 and S=4 coincide; shard streams appear unused")
	}
}

// countProto counts every ordered (initiator, responder) agent pair it
// is asked to apply, via per-agent identities stored in the state and
// a shared atomic matrix — the instrument for the uniform-marginal
// law test.
type countProto struct {
	n      int
	counts []atomic.Int64
}

type countState struct{ id int32 }

func (c *countProto) Transition(u, v *countState) {
	c.counts[int(u.id)*c.n+int(v.id)].Add(1)
}

// TransitionT reports no touches: identities never change, so there is
// no condition-relevant projection to move.
func (c *countProto) TransitionT(u, v *countState) (bool, bool) {
	c.Transition(u, v)
	return false, false
}

// TestUniformPairLaw checks the sharded scheduler's per-slot law: each
// ordered pair of distinct agents must be hit with equal frequency,
// across intra and cross slots alike (the intra re-draw conditioning
// argument made executable). 6σ tolerance on a fixed seed keeps the
// test deterministic and non-flaky.
func TestUniformPairLaw(t *testing.T) {
	const (
		n       = 16
		S       = 4
		perPair = 3000
	)
	k := int64(n * (n - 1) * perPair)
	p := &countProto{n: n, counts: make([]atomic.Int64, n*n)}
	states := make([]countState, n)
	for i := range states {
		states[i].id = int32(i)
	}
	r := New[countState](p, states, 99, S, 2)
	r.Run(k)

	sigma := math.Sqrt(perPair)
	tol := int64(6 * sigma)
	var total int64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			got := p.counts[a*n+b].Load()
			total += got
			if a == b {
				if got != 0 {
					t.Fatalf("self pair (%d,%d) hit %d times", a, b, got)
				}
				continue
			}
			if got < perPair-tol || got > perPair+tol {
				t.Errorf("pair (%d,%d): %d hits, want %d ± %d", a, b, got, perPair, tol)
			}
		}
	}
	if total != k {
		t.Fatalf("applied %d interactions, want %d", total, k)
	}
}

// TestRunUntilSemantics pins the sim.Runner-compatible contract:
// immediate stop, poll-cadence stopping, and budget exhaustion.
func TestRunUntilSemantics(t *testing.T) {
	p := stable.New(64, stable.DefaultParams())
	r := New[stable.State](p, p.InitialStates(), 5, 4, 2)

	steps, err := r.RunUntil(func([]stable.State) bool { return true }, 0, 1000)
	if err != nil || steps != 0 {
		t.Fatalf("pre-satisfied stop: steps=%d err=%v", steps, err)
	}

	steps, err = r.RunUntil(func([]stable.State) bool { return false }, 100, 1234)
	if err != sim.ErrBudgetExhausted {
		t.Fatalf("expected ErrBudgetExhausted, got %v", err)
	}
	if steps != 1234 {
		t.Fatalf("budget run executed %d steps, want 1234", steps)
	}
}

// TestObserveCadence verifies Observe fires at the same step sequence
// as sim.Runner.Observe for a matching cadence and budget.
func TestObserveCadence(t *testing.T) {
	const n, every, maxSteps = 64, 100, 1050
	observe := func(run func(obs func(int64, []stable.State))) []int64 {
		var at []int64
		run(func(steps int64, _ []stable.State) { at = append(at, steps) })
		return at
	}
	ps, pu := stable.New(n, stable.DefaultParams()), stable.New(n, stable.DefaultParams())
	sharded := observe(func(obs func(int64, []stable.State)) {
		New[stable.State](ps, ps.InitialStates(), 5, 4, 1).Observe(obs, every, maxSteps, nil)
	})
	serial := observe(func(obs func(int64, []stable.State)) {
		sim.New[stable.State](pu, pu.InitialStates(), 5).Observe(obs, every, maxSteps, nil)
	})
	if !reflect.DeepEqual(sharded, serial) {
		t.Fatalf("observation cadence differs: sharded %v vs serial %v", sharded, serial)
	}
}

// TestRunUntilExactWorkerInvariance extends the headline determinism
// contract to exact stopping: for a fixed (seed, S) the reported
// hitting time and the final configuration are byte-identical at every
// worker count, including under the adversarial jitter schedule
// (records are written by the unit that owns them; the fold runs on
// the coordinator).
func TestRunUntilExactWorkerInvariance(t *testing.T) {
	const (
		n    = 256
		seed = 0xe4ac7
	)
	budget := stable.Describe().Budget(n)
	for _, S := range []int{3, 4} {
		run := func(workers int, jitter bool) (int64, []stable.State) {
			p := stable.New(n, stable.DefaultParams())
			cond := sim.DescCond(stable.Describe(), p)
			var r *Runner[stable.State, sim.TouchReporter[stable.State]]
			if jitter {
				r = New[stable.State, sim.TouchReporter[stable.State]](&jitterProto{inner: p}, p.WorstCaseInit(), seed, S, workers)
			} else {
				r = New[stable.State, sim.TouchReporter[stable.State]](p, p.WorstCaseInit(), seed, S, workers)
			}
			hit, err := r.RunUntilExact(cond, budget)
			if err != nil {
				t.Fatalf("S=%d workers=%d jitter=%t: %v", S, workers, jitter, err)
			}
			return hit, r.States()
		}
		refHit, refStates := run(1, false)
		if refHit < 2 {
			t.Fatalf("S=%d: worst-case init hit at %d; the invariance check is vacuous", S, refHit)
		}
		for _, workers := range []int{2, 8} {
			for _, jitter := range []bool{false, true} {
				hit, states := run(workers, jitter)
				if hit != refHit {
					t.Fatalf("S=%d workers=%d jitter=%t: hit %d, want %d", S, workers, jitter, hit, refHit)
				}
				if !reflect.DeepEqual(states, refStates) {
					t.Fatalf("S=%d workers=%d jitter=%t: final states differ from the 1-worker reference", S, workers, jitter)
				}
			}
		}
	}
}

// TestRunUntilExactBatchGroundTruth checks the fold's hitting time
// against an independent replay: a twin runner with the same
// (seed, S) stepped one native batch at a time. The stop condition
// is silent, so the full-scan Valid predicate must be false at every
// barrier before the reported hit and true at the first barrier at or
// past it, the hit must lie within one batch of that barrier, and the
// twin's configuration there must equal the exact runner's.
func TestRunUntilExactBatchGroundTruth(t *testing.T) {
	const (
		n    = 300
		seed = 11
		S    = 4
	)
	budget := stable.Describe().Budget(n)
	p := stable.New(n, stable.DefaultParams())
	r := New[stable.State](p, p.WorstCaseInit(), seed, S, 2)
	hit, err := r.RunUntilExact(sim.DescCond(stable.Describe(), p), budget)
	if err != nil {
		t.Fatal(err)
	}

	p2 := stable.New(n, stable.DefaultParams())
	tw := New[stable.State](p2, p2.WorstCaseInit(), seed, S, 1)
	batch := int64(tw.batch)
	for tw.Steps() < hit {
		if stable.Valid(tw.States()) {
			t.Fatalf("condition already held at barrier %d, before the reported hit %d", tw.Steps(), hit)
		}
		tw.Run(batch)
	}
	if !stable.Valid(tw.States()) {
		t.Fatalf("condition does not hold at barrier %d, the first at or past the reported hit %d", tw.Steps(), hit)
	}
	if tw.Steps()-hit >= batch {
		t.Fatalf("hit %d is more than one batch before its barrier %d", hit, tw.Steps())
	}
	if !reflect.DeepEqual(tw.States(), r.States()) {
		t.Fatal("twin replay and exact runner disagree on the final configuration")
	}
}

// neverCond never holds — the budget-exhaustion probe.
type neverCond struct{}

func (neverCond) Init([]stable.State)        {}
func (neverCond) Update(int, []stable.State) {}
func (neverCond) Done() bool                 { return false }

// alwaysCond holds from the start — the pre-satisfied probe.
type alwaysCond struct{}

func (alwaysCond) Init([]stable.State)        {}
func (alwaysCond) Update(int, []stable.State) {}
func (alwaysCond) Done() bool                 { return true }

// TestRunUntilExactSemantics pins the contract edges: a pre-satisfied
// condition stops before the first interaction, and budget exhaustion
// executes exactly maxSteps interactions (the final batch is truncated
// to the remaining budget) and reports sim.ErrBudgetExhausted.
func TestRunUntilExactSemantics(t *testing.T) {
	p := stable.New(64, stable.DefaultParams())
	r := New[stable.State](p, p.InitialStates(), 5, 4, 2)

	steps, err := r.RunUntilExact(alwaysCond{}, 1000)
	if err != nil || steps != 0 || r.Steps() != 0 {
		t.Fatalf("pre-satisfied stop: steps=%d runner=%d err=%v", steps, r.Steps(), err)
	}

	steps, err = r.RunUntilExact(neverCond{}, 1234)
	if err != sim.ErrBudgetExhausted {
		t.Fatalf("expected ErrBudgetExhausted, got %v", err)
	}
	if steps != 1234 || r.Steps() != 1234 {
		t.Fatalf("budget run executed %d steps (runner %d), want 1234", steps, r.Steps())
	}
}

// TestRunUntilExactSeedDeterminism pins that the exact run is a pure
// function of (seed, S): same seed ⇒ identical hit and configuration,
// different seed ⇒ a different trajectory.
func TestRunUntilExactSeedDeterminism(t *testing.T) {
	const n, S = 200, 4
	run := func(seed uint64) (int64, []stable.State) {
		p := stable.New(n, stable.DefaultParams())
		r := New[stable.State](p, p.WorstCaseInit(), seed, S, 2)
		hit, err := r.RunUntilExact(sim.DescCond(stable.Describe(), p), stable.Describe().Budget(n))
		if err != nil {
			t.Fatal(err)
		}
		return hit, r.States()
	}
	h1, s1 := run(5)
	h2, s2 := run(5)
	if h1 != h2 || !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed produced different exact runs: %d vs %d", h1, h2)
	}
	h3, s3 := run(6)
	if h1 == h3 && reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced an identical trajectory")
	}
}

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic
// D = sup |F̂₁ − F̂₂|.
func ksStatistic(a, b []float64) float64 {
	x, y := append([]float64(nil), a...), append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			i++
		} else {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(x)) - float64(j)/float64(len(y))); diff > d {
			d = diff
		}
	}
	return d
}

// TestStatisticalEquivalence compares stabilization-time distributions
// between the sharded and unsharded engines at n = 10³ on the one-way
// epidemic (its absorbing time is this repo's cheapest stabilization
// statistic at that scale). The engines follow different trajectories
// by construction, so the check is distributional: a two-sample KS
// test at α = 0.001 plus a 3-SE overlap check on the means. Seeds are
// fixed, so the test is deterministic — it guards against law-level
// bugs (mis-weighted intra/cross split, biased shard re-draws), not
// noise.
func TestStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional comparison runs a few hundred epidemics")
	}
	const (
		n      = 1000
		trials = 120
		poll   = n / 4
	)
	budget := int64(100 * n * int(math.Log2(n)))
	completion := func(trial int, sharded bool) float64 {
		seed := uint64(0xeb1d + trial)
		states := epidemic.InitialStates(n, n)
		if sharded {
			r := New[epidemic.State](epidemic.Protocol{}, states, seed, 4, 2)
			steps, err := r.RunUntil(epidemic.Done, poll, budget)
			if err != nil {
				t.Fatalf("sharded trial %d never completed", trial)
			}
			return float64(steps)
		}
		r := sim.New[epidemic.State](epidemic.Protocol{}, states, seed)
		steps, err := r.RunUntil(epidemic.Done, poll, budget)
		if err != nil {
			t.Fatalf("serial trial %d never completed", trial)
		}
		return float64(steps)
	}

	var serial, sharded []float64
	for i := 0; i < trials; i++ {
		serial = append(serial, completion(i, false))
		sharded = append(sharded, completion(i, true))
	}

	// KS critical value c(α)·sqrt(2/m) with c(0.001) ≈ 1.95, m = 120.
	d := ksStatistic(serial, sharded)
	if crit := 1.95 * math.Sqrt(2.0/trials); d > crit {
		t.Errorf("KS statistic %.4f exceeds the α=0.001 critical value %.4f", d, crit)
	}

	m1, ci1 := stats.MeanCI95(serial)
	m2, ci2 := stats.MeanCI95(sharded)
	// 3-SE limit, expressed through the CI95 half-widths (= 1.96·SE).
	if diff, lim := math.Abs(m1-m2), 3/1.96*math.Hypot(ci1, ci2); diff > lim {
		t.Errorf("mean completion differs by %.1f interactions (serial %.1f vs sharded %.1f), beyond the 3-SE limit %.1f",
			diff, m1, m2, lim)
	}
}

// Package shard implements intra-run parallelism for the population
// engine: one simulation run partitioned across S shards, each owning a
// contiguous range of agents, its own slab of the state array, and its
// own rng.Jump-derived pair stream.
//
// The uniform pairwise scheduler admits an exchangeable-batch
// formulation: a batch of B sampled pairs may be applied in a
// deterministic canonical order without changing the per-slot law of
// the process (each slot remains an independent uniform ordered pair of
// distinct agents; only the relative application order of the rare
// agent-sharing pairs inside one batch is canonicalized — see
// DESIGN.md §3 for the argument and the O(B²/n) collision accounting).
// The runner exploits that freedom per batch:
//
//  1. The coordinator draws B pairs from the master rng.PairBatch and
//     classifies each as intra-shard (both endpoints in one shard) or
//     cross-shard. For an intra slot only the shard identity is kept —
//     the shard re-draws the concrete pair from its own stream, which
//     is exact: conditioned on landing in shard s, a uniform ordered
//     pair of distinct agents is a uniform ordered pair of distinct
//     agents of shard s.
//  2. Intra phase: every shard applies its intra pairs concurrently,
//     one worker per shard, drawing from its own PairBatch in slot
//     order. Shards touch disjoint slabs, so results cannot depend on
//     worker scheduling.
//  3. Barrier, then cross reconciliation: cross pairs are grouped by
//     unordered shard pair ("class") and the classes are played in
//     tournament rounds — within a round no shard appears in two
//     classes, so the round's classes run concurrently, each applying
//     its pairs in sampled order on one worker.
//
// Every step of that schedule is a pure function of (seed, shard
// count): which pairs the master emits, how they classify, what each
// shard stream yields, and the class/round grouping. Worker goroutines
// only ever execute units that touch disjoint memory, so for a fixed
// (seed, S) the trajectory is byte-identical at any worker count — the
// repo's determinism invariant extended from replication
// (internal/sim/replicate) down into a single run.
//
// The protocol's Transition must be safe for concurrent invocation on
// disjoint state pairs: it may read immutable protocol parameters
// freely but must synchronize any shared mutable instrumentation
// (stable.Protocol and aware.Protocol use atomic reset counters).
//
// Unlike sim.Runner, the trajectory additionally depends on where
// batch barriers fall: Run(k) flushes a partial batch at its end so
// the caller may inspect states, which makes the poll cadence of
// RunUntil / Observe part of the trajectory definition. Determinism
// guarantees are therefore stated for a fixed call sequence — which is
// how the experiment generators drive the engine. RunUntilExact always
// runs full batches, so its barrier placement (and hence its
// trajectory) is a pure function of (seed, S, budget) — no cadence
// enters the definition.
package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

// maxBatch bounds the pairs classified per barrier period: large
// enough to amortize barrier synchronization over tens of microseconds
// of transition work, small enough that the canonical-reorder window
// stays negligible against the Θ(n² log n) timescales under
// measurement.
const maxBatch = 16384

// minBatch keeps tiny populations from paying a barrier every handful
// of interactions.
const minBatch = 512

// autoMinN is the population size below which AutoShards stays serial:
// the classification and barrier overhead only pays for itself once a
// single trajectory dominates wall clock (DESIGN.md §3.2 — at n ≤ 10⁴
// the serial engine typically wins outright).
const autoMinN = 32768

// autoSlab is the minimum per-shard slab AutoShards maintains, so
// barrier synchronization stays amortized over meaningful per-shard
// work.
const autoSlab = 8192

// Auto is the shard-count sentinel meaning "derive the count from the
// population size and the core count" (see AutoShards). The facade and
// experiment layers re-export it (ssrank.AutoShards, expt.AutoShards).
const Auto = -1

// ParseShards parses a CLI -shards value: a non-negative shard count,
// or "auto" for the Auto sentinel. Shared by both CLIs so the flag's
// syntax and error wording cannot drift between them.
func ParseShards(s string) (int, error) {
	if strings.EqualFold(s, "auto") {
		return Auto, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("-shards must be a non-negative count or 'auto' (got %q)", s)
	}
	return v, nil
}

// AutoShards picks a shard count for a population of n agents on a
// machine with procs available cores (procs < 1 reads
// runtime.GOMAXPROCS(0)): serial below autoMinN agents or on a single
// core, otherwise one shard per core capped so every shard keeps a
// slab of at least autoSlab agents. It is the resolution behind the
// "-shards auto" CLI setting and expt.AutoShards; callers that get 1
// back should use the serial engine directly (a one-shard sharded
// runner still pays classification overhead).
func AutoShards(n, procs int) int {
	if procs < 1 {
		procs = runtime.GOMAXPROCS(0)
	}
	if n < autoMinN || procs < 2 {
		return 1
	}
	s := procs
	if lim := n / autoSlab; s > lim {
		s = lim
	}
	if s < 2 {
		return 1
	}
	return s
}

// Runner executes a protocol over a population partitioned into
// shards. Construct with New; the zero value is not usable. The
// methods mirror sim.Runner and, like it, must not be called
// concurrently — parallelism lives *inside* a call (workers are
// spawned per Run and joined before it returns, so an idle Runner
// holds no goroutines).
type Runner[S any, P sim.TouchReporter[S]] struct {
	proto   P
	states  []S
	master  *rng.PairBatch
	shards  []shardMeta
	workers int
	batch   int
	steps   int64

	// Per-batch scratch, reused across batches.
	intraCount []int     // pairs to apply per shard this batch
	cross      [][]int32 // per class id s*S+t (s<t): flattened (a, b) pairs in sampled order
	rounds     [][]int   // tournament schedule: class ids playable concurrently
	tasks      chan task
	wg         sync.WaitGroup

	// Exact-stop tracking scratch (exact.go), allocated on the first
	// RunUntilExact. While tracking is set, applyIntra/applyCross record
	// every touched interaction with its canonical batch position so the
	// coordinator can fold the batch into the stop tracker at the
	// barrier. Each unit (shard or cross class) writes only its own
	// record slice, so recording is race-free without synchronization.
	tracking  bool
	intraOff  []int32 // canonical batch offset of shard s's intra pairs
	crossOff  []int32 // canonical batch offset of class c's pairs
	intraRecs [][]touchRec[S]
	crossRecs [][]touchRec[S]
	shadow    []S // projection-faithful replay configuration
}

// shardMeta is one shard: its index range [lo, hi) in the population
// array and its private pair stream over local indices [0, hi-lo).
type shardMeta struct {
	lo, hi int
	pb     *rng.PairBatch
}

// task is one unit of deterministic work inside a phase: either a
// shard's intra pairs or a class's cross pairs.
type task struct {
	cross bool
	idx   int
}

// New returns a sharded Runner over the given initial configuration
// with the requested shard count and worker count. The states slice is
// owned by the Runner afterwards. It panics if fewer than two agents
// are supplied. The shard count is clamped to [1, n/2] (every shard
// needs ≥ 2 agents for intra-shard pairs); workers < 1 means one per
// CPU, and more workers than shards are never useful, so the count is
// clamped to the shard count. The trajectory depends on (seed, clamped
// shard count) only — never on workers.
func New[S any, P sim.TouchReporter[S]](p P, states []S, seed uint64, shards, workers int) *Runner[S, P] {
	n := len(states)
	if n < 2 {
		panic(fmt.Sprintf("shard: population needs at least 2 agents, got %d", n))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n/2 {
		shards = n / 2
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}

	r := &Runner[S, P]{
		proto:      p,
		states:     states,
		master:     rng.NewPairBatch(rng.New(seed), n),
		workers:    workers,
		intraCount: make([]int, shards),
		cross:      make([][]int32, shards*shards),
		rounds:     tournament(shards),
	}

	// Shard streams: the master owns stream block 0 of the seed (its
	// first 2¹²⁸ draws); shard s owns block s+1, reached by jumping a
	// fresh generator s+1 times. Blocks are guaranteed disjoint, so no
	// draw is ever shared between the master and a shard or between
	// two shards. Shard s covers [⌊s·n/S⌋, ⌊(s+1)·n/S⌋) — the floor
	// partition inverted branch-free by shardOf.
	base := rng.New(seed)
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		base.Jump()
		r.shards = append(r.shards, shardMeta{lo: lo, hi: hi, pb: rng.NewPairBatch(base.Clone(), hi-lo)})
	}

	r.batch = BatchPeriod(n)
	return r
}

// N returns the population size.
func (r *Runner[S, P]) N() int { return len(r.states) }

// Shards returns the effective (clamped) shard count.
func (r *Runner[S, P]) Shards() int { return len(r.shards) }

// Steps returns the number of interactions executed so far.
func (r *Runner[S, P]) Steps() int64 { return r.steps }

// States returns the live configuration; treat it as read-only.
func (r *Runner[S, P]) States() []S { return r.states }

// Snapshot returns a copy of the current configuration.
func (r *Runner[S, P]) Snapshot() []S {
	out := make([]S, len(r.states))
	copy(out, r.states)
	return out
}

// startWorkers spawns the per-call worker pool (none for a single
// worker) and returns the function that retires it. Phase barriers
// guarantee no task is in flight at retirement, so closing the channel
// suffices; an idle Runner holds no goroutines.
func (r *Runner[S, P]) startWorkers() (stop func()) {
	if r.workers <= 1 {
		return func() {}
	}
	r.tasks = make(chan task, len(r.shards))
	for w := 0; w < r.workers; w++ {
		go r.worker(r.tasks)
	}
	return func() { close(r.tasks); r.tasks = nil }
}

// Run executes k interactions in barrier-synchronized batches. The
// final batch is truncated to k, so all k interactions have been
// applied when Run returns.
func (r *Runner[S, P]) Run(k int64) {
	if k <= 0 {
		return
	}
	stop := r.startWorkers()
	defer stop()
	for k > 0 {
		b := int64(r.batch)
		if b > k {
			b = k
		}
		r.runBatch(int(b))
		k -= b
	}
}

// worker executes phase tasks. Every task touches memory disjoint from
// every other task of its phase, so execution order is free.
func (r *Runner[S, P]) worker(tasks <-chan task) {
	for t := range tasks {
		if t.cross {
			r.applyCross(t.idx)
		} else {
			r.applyIntra(t.idx)
		}
		r.wg.Done()
	}
}

// runBatch classifies b master pairs and plays the batch's canonical
// schedule: intra phase, barrier, cross rounds.
func (r *Runner[S, P]) runBatch(b int) {
	nshards := len(r.shards)
	for done := 0; done < b; {
		as, bs := r.master.Window()
		m := b - done
		if m > len(as) {
			m = len(as)
		}
		for i := 0; i < m; i++ {
			sa, sb := r.shardOf(int(as[i])), r.shardOf(int(bs[i]))
			if sa == sb {
				r.intraCount[sa]++
			} else {
				if sa > sb {
					sa, sb = sb, sa
				}
				c := sa*nshards + sb
				r.cross[c] = append(r.cross[c], as[i], bs[i])
			}
		}
		r.master.Advance(m)
		done += m
	}

	// In tracking mode, assign every unit its canonical offset within
	// the batch before any work is dispatched: intra shards first in
	// shard order, then cross classes in round order — exactly the
	// canonical application order of DESIGN.md §3. A recorded touch at
	// index i of a unit then carries the globally increasing position
	// offset+i, letting the barrier fold replay the batch's touches as
	// one totally ordered interaction sequence.
	if r.tracking {
		off := int32(0)
		for s := 0; s < nshards; s++ {
			r.intraOff[s] = off
			off += int32(r.intraCount[s])
		}
		for _, round := range r.rounds {
			for _, c := range round {
				r.crossOff[c] = off
				off += int32(len(r.cross[c]) / 2)
			}
		}
	}

	// Intra phase: one task per shard with work.
	if r.workers == 1 {
		for s := 0; s < nshards; s++ {
			if r.intraCount[s] > 0 {
				r.applyIntra(s)
			}
		}
	} else {
		for s := 0; s < nshards; s++ {
			if r.intraCount[s] > 0 {
				r.wg.Add(1)
				r.tasks <- task{idx: s}
			}
		}
		r.wg.Wait() // batch barrier
	}

	// Cross reconciliation in tournament rounds: classes of one round
	// touch disjoint shard pairs, so they run concurrently; pairs
	// within a class apply in sampled order.
	for _, round := range r.rounds {
		if r.workers == 1 {
			for _, c := range round {
				if len(r.cross[c]) > 0 {
					r.applyCross(c)
				}
			}
			continue
		}
		for _, c := range round {
			if len(r.cross[c]) > 0 {
				r.wg.Add(1)
				r.tasks <- task{cross: true, idx: c}
			}
		}
		r.wg.Wait()
	}

	for s := range r.intraCount {
		r.intraCount[s] = 0
	}
	for c := range r.cross {
		r.cross[c] = r.cross[c][:0]
	}
	r.steps += int64(b)
}

// applyIntra applies shard s's intra pairs for this batch, drawing
// them from the shard's own stream in slot order. In tracking mode it
// additionally records every touched interaction into the shard's
// private record slice — no other unit writes it, so recording needs
// no synchronization.
func (r *Runner[S, P]) applyIntra(s int) {
	sh := &r.shards[s]
	slab := r.states[sh.lo:sh.hi]
	if !r.tracking {
		for cnt := r.intraCount[s]; cnt > 0; {
			as, bs := sh.pb.Window()
			m := cnt
			if m > len(as) {
				m = len(as)
			}
			for i := 0; i < m; i++ {
				r.proto.Transition(&slab[as[i]], &slab[bs[i]])
			}
			sh.pb.Advance(m)
			cnt -= m
		}
		return
	}
	recs := r.intraRecs[s][:0]
	lo, pos := int32(sh.lo), r.intraOff[s]
	for cnt := r.intraCount[s]; cnt > 0; {
		as, bs := sh.pb.Window()
		m := cnt
		if m > len(as) {
			m = len(as)
		}
		for i := 0; i < m; i++ {
			a, b := as[i], bs[i]
			ut, vt := r.proto.TransitionT(&slab[a], &slab[b])
			if ut || vt {
				recs = append(recs, newTouchRec(pos, ut, vt, lo+a, lo+b, slab[a], slab[b]))
			}
			pos++
		}
		sh.pb.Advance(m)
		cnt -= m
	}
	r.intraRecs[s] = recs
}

// applyCross applies class c's cross pairs in sampled order, recording
// touched interactions into the class's private record slice when
// tracking (see applyIntra).
func (r *Runner[S, P]) applyCross(c int) {
	ps := r.cross[c]
	if !r.tracking {
		for i := 0; i < len(ps); i += 2 {
			r.proto.Transition(&r.states[ps[i]], &r.states[ps[i+1]])
		}
		return
	}
	recs := r.crossRecs[c][:0]
	pos := r.crossOff[c]
	for i := 0; i < len(ps); i += 2 {
		a, b := ps[i], ps[i+1]
		ut, vt := r.proto.TransitionT(&r.states[a], &r.states[b])
		if ut || vt {
			recs = append(recs, newTouchRec(pos, ut, vt, a, b, r.states[a], r.states[b]))
		}
		pos++
	}
	r.crossRecs[c] = recs
}

// shardOf inverts the floor partition: agent i of n belongs to shard
// ⌊((i+1)·S − 1)/n⌋, branch-free (one multiply and one division on
// the classification hot path, with no data-dependent branches to
// mispredict on uniformly random indices).
func (r *Runner[S, P]) shardOf(i int) int {
	return ((i+1)*len(r.shards) - 1) / len(r.states)
}

// RunUntil executes interactions until stop returns true, polling the
// condition every checkEvery interactions (values < 1 poll every n
// interactions), exactly as sim.Runner.RunUntil. It returns the number
// of interactions executed at the first poll where the condition held.
// If the condition does not hold within maxSteps interactions it stops
// and returns sim.ErrBudgetExhausted. Callers measuring hitting times
// should use RunUntilExact, which stops exactly instead of at the poll
// cadence.
func (r *Runner[S, P]) RunUntil(stop func(states []S) bool, checkEvery, maxSteps int64) (int64, error) {
	if checkEvery < 1 {
		checkEvery = int64(len(r.states))
	}
	if stop(r.states) {
		return r.steps, nil
	}
	for r.steps < maxSteps {
		chunk := checkEvery
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		if stop(r.states) {
			return r.steps, nil
		}
	}
	return r.steps, sim.ErrBudgetExhausted
}

// Observe executes interactions until stop returns true or maxSteps is
// reached, invoking obs every `every` interactions (and once at step 0,
// and once at the final step), exactly as sim.Runner.Observe. A nil
// stop runs to maxSteps.
func (r *Runner[S, P]) Observe(obs func(steps int64, states []S), every, maxSteps int64, stop func(states []S) bool) int64 {
	if every < 1 {
		every = int64(len(r.states))
	}
	obs(r.steps, r.states)
	for r.steps < maxSteps {
		chunk := every
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		obs(r.steps, r.states)
		if stop != nil && stop(r.states) {
			break
		}
	}
	return r.steps
}

// tournament returns a round-robin schedule over the unordered shard
// pairs of S shards (class id s*S+t, s < t): every class appears in
// exactly one round, and within a round no shard appears twice, so a
// round's classes may execute concurrently. The circle method yields
// S−1 rounds for even S and S rounds for odd S (one shard sits out per
// round).
func tournament(S int) [][]int {
	if S < 2 {
		return nil
	}
	m := S
	if m%2 == 1 {
		m++ // phantom "bye" participant
	}
	rounds := make([][]int, 0, m-1)
	for r := 0; r < m-1; r++ {
		var round []int
		for i := 0; i < m/2; i++ {
			a := (r + i) % (m - 1)
			b := m - 1 // the fixed participant
			if i > 0 {
				b = (r - i + m - 1) % (m - 1)
			}
			if a >= S || b >= S {
				continue // bye
			}
			if a > b {
				a, b = b, a
			}
			round = append(round, a*S+b)
		}
		if len(round) > 0 {
			rounds = append(rounds, round)
		}
	}
	return rounds
}

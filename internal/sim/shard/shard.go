// Package shard implements intra-run parallelism for the population
// engine: one simulation run partitioned across S shards, each owning a
// contiguous range of agents, its own slab of the state array, and its
// own rng.Jump-derived stream.
//
// The uniform pairwise scheduler admits an exchangeable-batch
// formulation: a batch of B sampled pairs may be applied in a
// deterministic canonical order without changing the per-slot law of
// the process (each slot remains an independent uniform ordered pair of
// distinct agents; only the relative application order of the rare
// agent-sharing pairs inside one batch is canonicalized — see
// DESIGN.md §3 for the argument and the O(B²/n) collision accounting).
// The runner exploits that freedom per batch:
//
//  1. The coordinator draws ONE multinomial sample over the shard-pair
//     classes — S intra classes (both endpoints in shard s) plus
//     S(S−1) *directional* cross classes (initiator in s, responder in
//     t, s ≠ t) — from an integer-exact alias table weighted by
//     ordered-pair counts (n_s(n_s−1) intra, n_s·n_t per direction).
//     Only the per-class *counts* are published: no concrete pair is
//     ever drawn or stored by the coordinator, so the serial work per
//     slot is one 64-bit draw and a counter increment, and the
//     per-batch cross-pair lists of the earlier design are gone
//     entirely. Sampling directions as classes also means orientation
//     never costs a draw downstream.
//  2. Intra phase: every shard applies its count's worth of pairs
//     concurrently, one worker per shard, drawing concrete endpoint
//     pairs from its own stream. Conditioned on landing in shard s, a
//     uniform ordered pair of distinct agents is a uniform ordered
//     pair of distinct agents of shard s, so the local draw is exact.
//     Shards touch disjoint slabs, so results cannot depend on worker
//     scheduling.
//  3. Barrier, then cross reconciliation: the two directional classes
//     of an unordered shard pair {s, t} execute as one unit, and the
//     units are played in tournament rounds — within a round no shard
//     appears in two units, so a round's units run concurrently. Each
//     unit draws its endpoint indices from its own rng.Jump-derived
//     stream in register-resident batches (rng.Uniform.FillInto):
//     conditioned on a directional class, a uniform ordered cross pair
//     is exactly two uniform slab indices.
//
// Every step of that schedule is a pure function of (seed, shard
// count): the class counts the master emits, what each shard and class
// stream yields, and the class/round grouping. Worker goroutines only
// ever execute units that touch disjoint memory, so for a fixed
// (seed, S) the trajectory is byte-identical at any worker count — the
// repo's determinism invariant extended from replication
// (internal/sim/replicate) down into a single run.
//
// The protocol's Transition must be safe for concurrent invocation on
// disjoint state pairs: it may read immutable protocol parameters
// freely but must synchronize any shared mutable instrumentation
// (stable.Protocol and aware.Protocol use atomic reset counters).
//
// Unlike sim.Runner, the trajectory additionally depends on where
// batch barriers fall: Run(k) flushes a partial batch at its end so
// the caller may inspect states, which makes the poll cadence of
// RunUntil / Observe part of the trajectory definition. Determinism
// guarantees are therefore stated for a fixed call sequence — which is
// how the experiment generators drive the engine. RunUntilExact always
// runs full batches, so its barrier placement (and hence its
// trajectory) is a pure function of (seed, S, budget) — no cadence
// enters the definition.
package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/slab"
)

// maxBatch bounds the pairs classified per barrier period: large
// enough to amortize barrier synchronization over tens of microseconds
// of transition work, small enough that the canonical-reorder window
// stays negligible against the Θ(n² log n) timescales under
// measurement.
const maxBatch = 16384

// minBatch keeps tiny populations from paying a barrier every handful
// of interactions.
const minBatch = 512

// autoMinN is the population size below which AutoShards stays serial.
// Re-derived for the alias-table coordinator (DESIGN.md §3.2): the
// serial overhead of the sharded engine at S = 4 is ~35% at n = 16384
// on the recording machine — already recovered by a second core — so
// the old 32768 floor (set when classification alone cost ~60%) halves.
const autoMinN = 16384

// autoSlab is the minimum per-shard slab AutoShards maintains, so
// barrier synchronization stays amortized over meaningful per-shard
// work. Re-derived alongside autoMinN: with counts-only publication
// the barrier period, not the slab, is the binding overhead, and
// 4096-agent slabs keep the measured per-batch coordinator share
// under 10% at the minimum population.
const autoSlab = 4096

// Auto is the shard-count sentinel meaning "derive the count from the
// population size and the core count" (see AutoShards). The facade and
// experiment layers re-export it (ssrank.AutoShards, expt.AutoShards).
const Auto = -1

// ParseShards parses a CLI -shards value: a non-negative shard count,
// or "auto" for the Auto sentinel. Shared by both CLIs so the flag's
// syntax and error wording cannot drift between them.
func ParseShards(s string) (int, error) {
	if strings.EqualFold(s, "auto") {
		return Auto, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("-shards must be a non-negative count or 'auto' (got %q)", s)
	}
	return v, nil
}

// AutoShards picks a shard count for a population of n agents on a
// machine with procs available cores (procs < 1 reads
// runtime.GOMAXPROCS(0)): serial below autoMinN agents or on a single
// core, otherwise one shard per core capped so every shard keeps a
// slab of at least autoSlab agents. It is the resolution behind the
// "-shards auto" CLI setting and expt.AutoShards; callers that get 1
// back should use the serial engine directly (a one-shard sharded
// runner still pays classification overhead).
func AutoShards(n, procs int) int {
	if procs < 1 {
		procs = runtime.GOMAXPROCS(0)
	}
	if n < autoMinN || procs < 2 {
		return 1
	}
	s := procs
	if lim := n / autoSlab; s > lim {
		s = lim
	}
	if s < 2 {
		return 1
	}
	return s
}

// Runner executes a protocol over a population partitioned into
// shards. Construct with New; the zero value is not usable. The
// methods mirror sim.Runner and, like it, must not be called
// concurrently — parallelism lives *inside* a call (workers are
// spawned per Run and joined before it returns, so an idle Runner
// holds no goroutines).
type Runner[S any, P sim.TouchReporter[S]] struct {
	proto   P
	states  []S
	master  *rng.RNG        // class-label stream: block 0 of the seed
	alias   *rng.AliasTable // over the S intra + S(S−1)/2 cross classes
	shards  []shardMeta
	classes []classMeta
	workers int
	batch   int
	steps   int64

	// counts is the published per-batch multinomial over the S + 2C
	// directional classes (C = S(S−1)/2 unordered cross units): entry
	// s < S is shard s's intra count, entry S+c is unit c's
	// forward count (initiator in the lower shard), entry S+C+c its
	// reverse count.
	counts  []int32
	rounds  [][]int      // tournament schedule: unit ids playable concurrently
	scratch crossScratch // endpoint-fill buffers for the single-worker path
	tasks   chan task
	wg      sync.WaitGroup

	// Exact-stop tracking scratch (exact.go), allocated on the first
	// RunUntilExact. While tracking is set, applyIntra/applyCross record
	// every touched interaction with its canonical batch position so the
	// barrier fold can replay the batch into the stop tracker. Each unit
	// (shard or cross class) writes only its own record slice, so
	// recording is race-free without synchronization.
	tracking  bool
	intraOff  []int32 // canonical batch offset of shard s's intra pairs
	crossOff  []int32 // canonical batch offset of class c's pairs
	intraRecs [][]TouchRec[S]
	crossRecs [][]TouchRec[S]
	folder    *Folder[S] // shadow replay state for in-process exact runs

	// Modified-agent collection (units.go), armed by BeginBatch for
	// distributed workers: while collect is set, the tracked appliers
	// additionally append every endpoint index a unit draws to the
	// unit's private dirty slice — the worker's per-phase delta frames.
	// Touch records alone cannot serve: a transition may mutate state
	// without moving any condition-relevant projection.
	collect    bool
	dirtyIntra [][]int32
	dirtyCross [][]int32
}

// shardMeta is one shard: its index range [lo, hi) in the population
// array and its private pair stream over local indices [0, hi-lo).
type shardMeta struct {
	lo, hi int
	pb     *rng.PairBatch
}

// classMeta is one cross unit — the unordered shard pair {s, t},
// s < t, covering both directional classes: the two slab origins,
// precomputed index samplers over each slab, and the unit's private
// endpoint stream. A cross pair is drawn entirely locally: one index
// per slab, orientation already decided by the class multinomial.
type classMeta struct {
	s, t     int
	los, lot int32
	us, ut   rng.Uniform
	g        *rng.RNG
}

// crossChunk is the endpoint-fill granularity of a cross unit: indices
// are drawn crossChunk pairs at a time with the generator state in
// registers (rng.Uniform.FillInto), mirroring the intra path's
// PairBatch prefetch.
const crossChunk = 512

// crossScratch is one worker's endpoint-fill buffers. Workers own
// their scratch (the single-worker path owns one on the Runner), so
// units may share buffers without synchronization.
type crossScratch struct {
	as, bs [crossChunk]int32
}

// task is one unit of deterministic work inside a phase: either a
// shard's intra pairs or a class's cross pairs.
type task struct {
	cross bool
	idx   int
}

// assignOffsets gives every unit its canonical offset within the
// current batch before any work is dispatched: intra shards first in
// shard order, then cross classes in round order — exactly the
// canonical application order of DESIGN.md §3. A recorded touch at
// index i of a unit then carries the globally increasing position
// offset+i, letting the barrier fold replay the batch's touches as one
// totally ordered interaction sequence.
func (r *Runner[S, P]) assignOffsets() {
	nshards, nclasses := len(r.shards), len(r.classes)
	off := int32(0)
	for s := 0; s < nshards; s++ {
		r.intraOff[s] = off
		off += r.counts[s]
	}
	for _, round := range r.rounds {
		for _, c := range round {
			r.crossOff[c] = off
			off += r.counts[nshards+c] + r.counts[nshards+nclasses+c]
		}
	}
}

// classIndex maps the unordered shard pair (s, t), s < t, to its
// compact class id: pairs enumerate in (s asc, t asc) order, which is
// also the stream-block and record-slice order.
func classIndex(s, t, S int) int {
	return s*(2*S-s-1)/2 + (t - s - 1)
}

// New returns a sharded Runner over the given initial configuration
// with the requested shard count and worker count. The states slice is
// owned by the Runner afterwards (and may be relocated into a
// cache-line-aligned slab — read it back via States). It panics if
// fewer than two agents are supplied. The shard count is clamped to
// [1, n/2] (every shard needs ≥ 2 agents for intra-shard pairs);
// workers < 1 means one per CPU, and more workers than shards are
// never useful, so the count is clamped to the shard count. The
// trajectory depends on (seed, clamped shard count) only — never on
// workers.
func New[S any, P sim.TouchReporter[S]](p P, states []S, seed uint64, shards, workers int) *Runner[S, P] {
	n := len(states)
	if n < 2 {
		panic(fmt.Sprintf("shard: population needs at least 2 agents, got %d", n))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n/2 {
		shards = n / 2
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}

	nclasses := shards * (shards - 1) / 2
	r := &Runner[S, P]{
		proto:   p,
		states:  slab.Align(states),
		master:  rng.New(seed),
		workers: workers,
		counts:  make([]int32, shards+2*nclasses),
		classes: make([]classMeta, 0, nclasses),
	}

	// Stream blocks: the master owns block 0 of the seed (its first
	// 2¹²⁸ draws); shard s owns block s+1; cross class c owns block
	// S+1+c, classes enumerated in (s asc, t asc) order. Blocks are
	// reached by jumping a fresh generator and are guaranteed disjoint,
	// so no draw is ever shared between any two units. Shard s covers
	// [⌊s·n/S⌋, ⌊(s+1)·n/S⌋) — the floor partition inverted branch-free
	// by shardOf.
	base := rng.New(seed)
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		base.Jump()
		r.shards = append(r.shards, shardMeta{lo: lo, hi: hi, pb: rng.NewPairBatch(base.Clone(), hi-lo)})
	}
	for s := 0; s < shards; s++ {
		for t := s + 1; t < shards; t++ {
			base.Jump()
			ss, st := &r.shards[s], &r.shards[t]
			r.classes = append(r.classes, classMeta{
				s: s, t: t,
				los: int32(ss.lo), lot: int32(st.lo),
				us: rng.NewUniform(ss.hi - ss.lo), ut: rng.NewUniform(st.hi - st.lo),
				g: base.Clone(),
			})
		}
	}

	// The classification alias table, weighted by ordered-pair counts:
	// shard s owns n_s(n_s−1) intra pairs, each directional class of
	// unit {s, t} owns n_s·n_t, summing to n(n−1). Weights are ≤ n², so
	// the table's integer-exact construction holds to n ≈ 10⁹ (see
	// rng.NewAliasTable).
	weights := make([]uint64, shards+2*nclasses)
	for s := range r.shards {
		ns := uint64(r.shards[s].hi - r.shards[s].lo)
		weights[s] = ns * (ns - 1)
	}
	for c := range r.classes {
		cl := &r.classes[c]
		w := uint64(cl.us.N()) * uint64(cl.ut.N())
		weights[shards+c] = w
		weights[shards+nclasses+c] = w
	}
	r.alias = rng.NewAliasTable(weights)

	// Tournament rounds over the compact class ids.
	for _, round := range tournament(shards) {
		ids := make([]int, len(round))
		for i, c := range round {
			ids[i] = classIndex(c/shards, c%shards, shards)
		}
		r.rounds = append(r.rounds, ids)
	}

	r.batch = BatchPeriod(n)
	return r
}

// N returns the population size.
func (r *Runner[S, P]) N() int { return len(r.states) }

// Shards returns the effective (clamped) shard count.
func (r *Runner[S, P]) Shards() int { return len(r.shards) }

// Steps returns the number of interactions executed so far.
func (r *Runner[S, P]) Steps() int64 { return r.steps }

// States returns the live configuration; treat it as read-only.
func (r *Runner[S, P]) States() []S { return r.states }

// Snapshot returns a copy of the current configuration.
func (r *Runner[S, P]) Snapshot() []S {
	out := make([]S, len(r.states))
	copy(out, r.states)
	return out
}

// startWorkers spawns the per-call worker pool (none for a single
// worker) and returns the function that retires it. Phase barriers
// guarantee no task is in flight at retirement, so closing the channel
// suffices; an idle Runner holds no goroutines.
func (r *Runner[S, P]) startWorkers() (stop func()) {
	if r.workers <= 1 {
		return func() {}
	}
	r.tasks = make(chan task, len(r.shards))
	for w := 0; w < r.workers; w++ {
		go r.worker(r.tasks)
	}
	return func() { close(r.tasks); r.tasks = nil }
}

// Run executes k interactions in barrier-synchronized batches. The
// final batch is truncated to k, so all k interactions have been
// applied when Run returns.
func (r *Runner[S, P]) Run(k int64) {
	if k <= 0 {
		return
	}
	stop := r.startWorkers()
	defer stop()
	for k > 0 {
		b := int64(r.batch)
		if b > k {
			b = k
		}
		r.runBatch(int(b))
		k -= b
	}
}

// worker executes phase tasks with its own endpoint-fill scratch.
// Every task touches memory disjoint from every other task of its
// phase, so execution order is free.
func (r *Runner[S, P]) worker(tasks <-chan task) {
	var scratch crossScratch
	for t := range tasks {
		if t.cross {
			r.applyCross(t.idx, &scratch)
		} else {
			r.applyIntra(t.idx)
		}
		r.wg.Done()
	}
}

// runBatch draws the batch's class-count multinomial and plays the
// canonical schedule: intra phase, barrier, cross rounds. The
// coordinator's serial work is the CountsInto histogram (one draw per
// slot) plus O(S²) count publication — no per-pair lists, no endpoint
// draws; workers start the instant the counts land.
func (r *Runner[S, P]) runBatch(b int) {
	nshards := len(r.shards)
	nclasses := len(r.classes)
	r.ClassifyBatch(b)
	if r.tracking {
		r.assignOffsets()
	}

	// Intra phase: one task per shard with work.
	if r.workers == 1 {
		for s := 0; s < nshards; s++ {
			if r.counts[s] > 0 {
				r.applyIntra(s)
			}
		}
	} else {
		for s := 0; s < nshards; s++ {
			if r.counts[s] > 0 {
				r.wg.Add(1)
				r.tasks <- task{idx: s}
			}
		}
		r.wg.Wait() // batch barrier
	}

	// Cross reconciliation in tournament rounds: units of one round
	// touch disjoint shard pairs, so they run concurrently; pairs
	// within a unit apply in the unit stream's draw order, forward
	// direction before reverse.
	for _, round := range r.rounds {
		if r.workers == 1 {
			for _, c := range round {
				if r.counts[nshards+c]+r.counts[nshards+nclasses+c] > 0 {
					r.applyCross(c, &r.scratch)
				}
			}
			continue
		}
		for _, c := range round {
			if r.counts[nshards+c]+r.counts[nshards+nclasses+c] > 0 {
				r.wg.Add(1)
				r.tasks <- task{cross: true, idx: c}
			}
		}
		r.wg.Wait()
	}

	r.steps += int64(b)
}

// applyIntra applies shard s's intra pairs for this batch, drawing
// them from the shard's own stream in slot order. In tracking mode it
// additionally records every touched interaction into the shard's
// private record slice — no other unit writes it, so recording needs
// no synchronization.
func (r *Runner[S, P]) applyIntra(s int) {
	sh := &r.shards[s]
	slab := r.states[sh.lo:sh.hi]
	if !r.tracking {
		for cnt := int(r.counts[s]); cnt > 0; {
			as, bs := sh.pb.Window()
			m := cnt
			if m > len(as) {
				m = len(as)
			}
			for i := 0; i < m; i++ {
				r.proto.Transition(&slab[as[i]], &slab[bs[i]])
			}
			sh.pb.Advance(m)
			cnt -= m
		}
		return
	}
	recs := r.intraRecs[s][:0]
	var dirty []int32
	if r.collect {
		dirty = r.dirtyIntra[s][:0]
	}
	lo, pos := int32(sh.lo), r.intraOff[s]
	for cnt := int(r.counts[s]); cnt > 0; {
		as, bs := sh.pb.Window()
		m := cnt
		if m > len(as) {
			m = len(as)
		}
		for i := 0; i < m; i++ {
			a, b := as[i], bs[i]
			ut, vt := r.proto.TransitionT(&slab[a], &slab[b])
			if ut || vt {
				recs = append(recs, newTouchRec(pos, ut, vt, lo+a, lo+b, slab[a], slab[b]))
			}
			pos++
		}
		if r.collect {
			for i := 0; i < m; i++ {
				dirty = append(dirty, lo+as[i], lo+bs[i])
			}
		}
		sh.pb.Advance(m)
		cnt -= m
	}
	r.intraRecs[s] = recs
	if r.collect {
		r.dirtyIntra[s] = dirty
	}
}

// applyCross applies unit c's cross pairs for this batch — forward
// direction (initiator in the lower shard) first, then reverse — in
// chunks of crossChunk: the s-side indices of a chunk are filled from
// the unit's stream with generator state in registers, then the t-side
// indices, then the chunk's transitions apply in slot order.
// Conditioned on a directional class, two uniform slab indices are
// exactly a uniform ordered cross pair, so no orientation draw is
// needed. In tracking mode it records touched interactions into the
// unit's private record slice (see applyIntra); forward pairs precede
// reverse pairs in the canonical order.
func (r *Runner[S, P]) applyCross(c int, scratch *crossScratch) {
	cl := &r.classes[c]
	fwd := int(r.counts[len(r.shards)+c])
	rev := int(r.counts[len(r.shards)+len(r.classes)+c])
	if !r.tracking {
		r.crossDir(cl, fwd, false, scratch)
		r.crossDir(cl, rev, true, scratch)
		return
	}
	recs := r.crossRecs[c][:0]
	var dirty []int32
	if r.collect {
		dirty = r.dirtyCross[c][:0]
	}
	pos := r.crossOff[c]
	recs, dirty, pos = r.crossDirT(cl, fwd, false, scratch, recs, dirty, pos)
	recs, dirty, _ = r.crossDirT(cl, rev, true, scratch, recs, dirty, pos)
	r.crossRecs[c] = recs
	if r.collect {
		r.dirtyCross[c] = dirty
	}
}

// crossDir applies cnt pairs of one directional class of unit cl:
// initiator in shard s when reverse is false, in shard t when true.
func (r *Runner[S, P]) crossDir(cl *classMeta, cnt int, reverse bool, scratch *crossScratch) {
	for cnt > 0 {
		m := cnt
		if m > crossChunk {
			m = crossChunk
		}
		as, bs := scratch.as[:m], scratch.bs[:m]
		cl.us.FillInto(cl.g, as)
		cl.ut.FillInto(cl.g, bs)
		if reverse {
			for i := 0; i < m; i++ {
				r.proto.Transition(&r.states[cl.lot+bs[i]], &r.states[cl.los+as[i]])
			}
		} else {
			for i := 0; i < m; i++ {
				r.proto.Transition(&r.states[cl.los+as[i]], &r.states[cl.lot+bs[i]])
			}
		}
		cnt -= m
	}
}

// crossDirT is crossDir in tracking mode: same draws, same application
// order, every touched interaction recorded with its canonical batch
// position.
func (r *Runner[S, P]) crossDirT(cl *classMeta, cnt int, reverse bool, scratch *crossScratch, recs []TouchRec[S], dirty []int32, pos int32) ([]TouchRec[S], []int32, int32) {
	for cnt > 0 {
		m := cnt
		if m > crossChunk {
			m = crossChunk
		}
		as, bs := scratch.as[:m], scratch.bs[:m]
		cl.us.FillInto(cl.g, as)
		cl.ut.FillInto(cl.g, bs)
		for i := 0; i < m; i++ {
			a, b := cl.los+as[i], cl.lot+bs[i]
			if reverse {
				a, b = b, a
			}
			ut, vt := r.proto.TransitionT(&r.states[a], &r.states[b])
			if ut || vt {
				recs = append(recs, newTouchRec(pos, ut, vt, a, b, r.states[a], r.states[b]))
			}
			pos++
		}
		if r.collect {
			for i := 0; i < m; i++ {
				dirty = append(dirty, cl.los+as[i], cl.lot+bs[i])
			}
		}
		cnt -= m
	}
	return recs, dirty, pos
}

// shardOf inverts the floor partition: agent i of n belongs to shard
// ⌊((i+1)·S − 1)/n⌋. No longer on any hot path (classification draws
// classes, not agents), it remains the partition's executable
// specification and the anchor of the partition tests.
func (r *Runner[S, P]) shardOf(i int) int {
	return ((i+1)*len(r.shards) - 1) / len(r.states)
}

// RunUntil executes interactions until stop returns true, polling the
// condition every checkEvery interactions (values < 1 poll every n
// interactions), exactly as sim.Runner.RunUntil. It returns the number
// of interactions executed at the first poll where the condition held.
// If the condition does not hold within maxSteps interactions it stops
// and returns sim.ErrBudgetExhausted. Callers measuring hitting times
// should use RunUntilExact, which stops exactly instead of at the poll
// cadence.
func (r *Runner[S, P]) RunUntil(stop func(states []S) bool, checkEvery, maxSteps int64) (int64, error) {
	if checkEvery < 1 {
		checkEvery = int64(len(r.states))
	}
	if stop(r.states) {
		return r.steps, nil
	}
	for r.steps < maxSteps {
		chunk := checkEvery
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		if stop(r.states) {
			return r.steps, nil
		}
	}
	return r.steps, sim.ErrBudgetExhausted
}

// Observe executes interactions until stop returns true or maxSteps is
// reached, invoking obs every `every` interactions (and once at step 0,
// and once at the final step), exactly as sim.Runner.Observe. A nil
// stop runs to maxSteps.
func (r *Runner[S, P]) Observe(obs func(steps int64, states []S), every, maxSteps int64, stop func(states []S) bool) int64 {
	if every < 1 {
		every = int64(len(r.states))
	}
	obs(r.steps, r.states)
	for r.steps < maxSteps {
		chunk := every
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		r.Run(chunk)
		obs(r.steps, r.states)
		if stop != nil && stop(r.states) {
			break
		}
	}
	return r.steps
}

// tournament returns a round-robin schedule over the unordered shard
// pairs of S shards (sparse id s*S+t, s < t — New converts to compact
// class ids): every class appears in exactly one round, and within a
// round no shard appears twice, so a round's classes may execute
// concurrently. The circle method yields S−1 rounds for even S and S
// rounds for odd S (one shard sits out per round).
func tournament(S int) [][]int {
	if S < 2 {
		return nil
	}
	m := S
	if m%2 == 1 {
		m++ // phantom "bye" participant
	}
	rounds := make([][]int, 0, m-1)
	for r := 0; r < m-1; r++ {
		var round []int
		for i := 0; i < m/2; i++ {
			a := (r + i) % (m - 1)
			b := m - 1 // the fixed participant
			if i > 0 {
				b = (r - i + m - 1) % (m - 1)
			}
			if a >= S || b >= S {
				continue // bye
			}
			if a > b {
				a, b = b, a
			}
			round = append(round, a*S+b)
		}
		if len(round) > 0 {
			rounds = append(rounds, round)
		}
	}
	return rounds
}

package shard

import "ssrank/internal/sim"

// BarrierExchange is the engine-side contract of the exact-stopping
// driver: execute one batch of b interactions and, when track is set,
// emit every unit's touched-interaction records at the batch barrier
// in canonical unit order — intra shards in shard order, then cross
// units in tournament-round order (zero-work units emit their empty
// slice). The in-process Runner implements it by executing the batch
// on its own workers; the distributed coordinator (internal/dist)
// implements it by broadcasting the batch's class counts to worker
// processes and gathering their record frames at the wire barrier.
// Emitted slices are only valid during the emit call.
type BarrierExchange[S any] interface {
	ExecBatch(b int, track bool, emit func(recs []TouchRec[S])) error
}

// RunExactBatches drives a BarrierExchange until the condition's fold
// reports a hit or the interaction budget is exhausted — the one
// exact-stopping loop shared by the in-process sharded engine and the
// distributed runtime, so "Result.Exact survives distribution" is a
// property of this function, not of two parallel implementations. It
// executes full batches of the given period (the final batch truncated
// to the budget), folds each batch's emitted records through f, and
// returns the final step count together with the exact hitting time
// (-1 when the budget ran out first). steps is the caller's current
// interaction count; the condition must already be initialized against
// the current configuration and not yet satisfied, and f must have
// been Reset against it.
func RunExactBatches[S any](x BarrierExchange[S], f *Folder[S], cond sim.Condition[S], steps, maxSteps int64, batch int) (finalSteps, hitStep int64, err error) {
	for steps < maxSteps {
		b := int64(batch)
		if remaining := maxSteps - steps; b > remaining {
			b = remaining
		}
		hit := int64(-1)
		err := x.ExecBatch(int(b), true, func(recs []TouchRec[S]) {
			if hit < 0 {
				hit = f.Fold(cond, recs)
			}
		})
		if err != nil {
			return steps, -1, err
		}
		steps += b
		if hit >= 0 {
			return steps, steps - b + hit + 1, nil
		}
	}
	return steps, -1, nil
}

package shard

import (
	"fmt"

	"ssrank/internal/rng"
)

// This file is the unit-level execution API of the Runner, consumed by
// the distributed runtime (internal/dist). A distributed batch splits
// the Runner's roles across processes: the coordinator classifies the
// batch (ClassifyBatch) and folds the barrier, while each worker —
// holding a full Runner as a population mirror — executes only the
// units it owns (BeginBatch, ExecIntra/ExecCross, FinishBatch) and
// reports its touch records, modified agents, and stream positions.
// In-process callers never need these; Run/RunUntilExact drive whole
// batches.

// ClassifyBatch draws one batch's class-count multinomial from the
// master stream — the coordinator side of a distributed batch, exactly
// the draw an in-process batch performs. The returned slice is the
// Runner's internal counts buffer, valid until the next
// classification; its layout is the counts field layout
// ([S intra][C forward][C reverse]).
func (r *Runner[S, P]) ClassifyBatch(b int) []int32 {
	for i := range r.counts {
		r.counts[i] = 0
	}
	r.alias.CountsInto(r.master, b, r.counts)
	return r.counts
}

// BeginBatch installs externally published class counts (the layout
// ClassifyBatch returns) and arms per-unit recording: touch records
// when track is set, modified-agent collection when collect is set.
// Canonical batch offsets are assigned exactly as an in-process batch
// would assign them, and every unit's record and dirty slice is
// cleared so stale units cannot leak into this batch's barrier. The
// caller then executes its units via ExecIntra/ExecCross and retires
// the batch with FinishBatch.
func (r *Runner[S, P]) BeginBatch(counts []int32, track, collect bool) error {
	if len(counts) != len(r.counts) {
		return fmt.Errorf("shard: batch counts have %d classes, runner has %d", len(counts), len(r.counts))
	}
	copy(r.counts, counts)
	if track {
		r.ensureTracking()
		for i := range r.intraRecs {
			r.intraRecs[i] = r.intraRecs[i][:0]
		}
		for i := range r.crossRecs {
			r.crossRecs[i] = r.crossRecs[i][:0]
		}
	}
	if collect {
		if r.dirtyIntra == nil {
			r.dirtyIntra = make([][]int32, len(r.shards))
			r.dirtyCross = make([][]int32, len(r.classes))
		}
		for i := range r.dirtyIntra {
			r.dirtyIntra[i] = r.dirtyIntra[i][:0]
		}
		for i := range r.dirtyCross {
			r.dirtyCross[i] = r.dirtyCross[i][:0]
		}
	}
	r.tracking = track
	r.collect = collect
	if track {
		r.assignOffsets()
	}
	return nil
}

// ExecIntra executes shard s's intra pairs for the current externally
// driven batch (a no-op at count zero). Units run on the caller's
// goroutine: a distributed worker's parallelism is process-level, so
// its in-process execution is serial.
func (r *Runner[S, P]) ExecIntra(s int) {
	if r.counts[s] > 0 {
		r.applyIntra(s)
	}
}

// ExecCross executes cross unit c's pairs (both directions, forward
// before reverse) for the current externally driven batch.
func (r *Runner[S, P]) ExecCross(c int) {
	if r.counts[len(r.shards)+c]+r.counts[len(r.shards)+len(r.classes)+c] > 0 {
		r.applyCross(c, &r.scratch)
	}
}

// FinishBatch retires one externally driven batch: commits its step
// count and disarms recording.
func (r *Runner[S, P]) FinishBatch(b int) {
	r.steps += int64(b)
	r.tracking = false
	r.collect = false
}

// IntraRecs returns shard s's touch records for the current batch,
// valid until the next BeginBatch (canonical positions already
// assigned).
func (r *Runner[S, P]) IntraRecs(s int) []TouchRec[S] { return r.intraRecs[s] }

// CrossRecs returns cross unit c's touch records for the current
// batch, valid until the next BeginBatch.
func (r *Runner[S, P]) CrossRecs(c int) []TouchRec[S] { return r.crossRecs[c] }

// DirtyIntra returns the population indices shard s's intra pairs
// touched this batch, in application order, possibly with duplicates.
// Valid until the next BeginBatch; requires collect mode.
func (r *Runner[S, P]) DirtyIntra(s int) []int32 { return r.dirtyIntra[s] }

// DirtyCross returns the population indices cross unit c's pairs
// touched this batch (see DirtyIntra).
func (r *Runner[S, P]) DirtyCross(c int) []int32 { return r.dirtyCross[c] }

// NumCrossUnits returns the number of cross units C = S(S−1)/2.
func (r *Runner[S, P]) NumCrossUnits() int { return len(r.classes) }

// CrossUnitShards returns the unordered shard pair {s, t}, s < t, of
// cross unit c.
func (r *Runner[S, P]) CrossUnitShards(c int) (s, t int) {
	cl := &r.classes[c]
	return cl.s, cl.t
}

// ShardRange returns shard s's population index range [lo, hi).
func (r *Runner[S, P]) ShardRange(s int) (lo, hi int) {
	sh := &r.shards[s]
	return sh.lo, sh.hi
}

// RoundSchedule returns the tournament schedule: rounds of compact
// cross-unit ids, every unit in exactly one round, no shard twice
// within a round. A pure function of the shard count — identical on
// every process of a distributed run. Treat as read-only.
func (r *Runner[S, P]) RoundSchedule() [][]int { return r.rounds }

// ShardStream returns shard s's private pair-stream position —
// a distributed worker reports its owned streams at every barrier so
// the coordinator's committed engine state stays current.
func (r *Runner[S, P]) ShardStream(s int) rng.PairBatchState { return r.shards[s].pb.State() }

// ClassStream returns cross unit c's private endpoint-stream position.
func (r *Runner[S, P]) ClassStream(c int) [4]uint64 { return r.classes[c].g.State() }

package sim

// TouchReporter is the optional protocol capability behind cheap exact
// stopping: TransitionT applies one interaction with semantics
// identical to Transition and additionally reports which of the two
// agents' *condition-relevant projection* changed — the quantity the
// protocol's incremental stop tracker watches (the rank for the
// ranking protocols, the owned interval for the relaxed-range
// baseline, the leader bit for loose leader election).
//
// The report must be sound: an agent whose projection changed must be
// reported as touched. Implementations in this repository are exact
// (touched ⇔ projection changed) because exactness is what makes
// RunUntilCondT cheap — near convergence almost no interaction moves
// the projection, so almost no interaction pays a tracker call. The
// projection each protocol reports on is documented at its TransitionT,
// and a property test checks the report against a recomputation of the
// projection on every step of random and adversarial schedules.
//
// The interface is structural on purpose: protocol packages implement
// TransitionT without importing sim, preserving the layering rule that
// protocols depend only on rng.
type TouchReporter[S any] interface {
	Protocol[S]
	TransitionT(u, v *S) (uTouched, vTouched bool)
}

// touchRec is one touched interaction of the current collision-free
// sub-batch: its window-relative slot and which agents to fold.
type touchRec struct {
	slot int32
	mask uint8 // 1 = initiator touched, 2 = responder touched
}

// condEngine is the reusable core of the touch-aware serial loops
// (RunUntilCondT, ObserveCondT): the collision scratch and the
// sub-batch fold over an already-initialized condition. It persists
// across run calls, so an observation loop pays the marks allocation
// once, not per window.
type condEngine[S any, P TouchReporter[S]] struct {
	r    *Runner[S, P]
	cond Condition[S]
	// marks is the collision scratch: marks[a] == epoch while agent a
	// has a recorded-but-unfolded touch in the current sub-batch.
	marks   []uint32
	epoch   uint32
	pending []touchRec
	// touched reports whether any interaction since the last reset
	// moved a tracked projection — the signal ObserveCondT uses to
	// skip probe work on quiescent windows.
	touched bool
}

func newCondEngine[S any, P TouchReporter[S]](r *Runner[S, P], cond Condition[S]) *condEngine[S, P] {
	return &condEngine[S, P]{r: r, cond: cond, marks: make([]uint32, len(r.states)), epoch: 1}
}

// fold replays the recorded touched slots of the current sub-batch in
// application order. It returns the window-relative slot of the first
// interaction after which the condition held, or -1.
func (e *condEngine[S, P]) fold(as, bs []int32) int32 {
	states := e.r.states
	for _, t := range e.pending {
		if t.mask&1 != 0 {
			e.cond.Update(int(as[t.slot]), states)
		}
		if t.mask&2 != 0 {
			e.cond.Update(int(bs[t.slot]), states)
		}
		if e.cond.Done() {
			return t.slot
		}
	}
	return -1
}

// run executes up to k further interactions, stopping early at the
// exact hitting time of the condition. It returns the exact hitting
// step, or -1 if the condition did not hold within the k interactions.
//
// The engine applies each PairBatch window as a sequence of
// collision-free sub-batches. A pre-scan is unnecessary: the split
// point is discovered on the fly, and only collisions on *touched*
// agents force a boundary — an untouched interaction cannot move the
// tracked projection, so deferring its (empty) tracker work is always
// safe. Within a sub-batch, transitions run in a tight loop while
// touched slots are recorded; at the sub-batch boundary the recorded
// slots are folded into the tracker in application order with a Done
// check after each. Conflict-freedom makes the fold an exact replay:
// no later interaction of the sub-batch has moved a recorded agent's
// projection, so the tracker sees exactly the per-interaction
// trajectory and the first satisfying interaction is identified
// exactly.
func (e *condEngine[S, P]) run(k int64) int64 {
	r := e.r
	states := r.states
	end := r.steps + k
	for r.steps < end {
		as, bs := r.pairs.Window()
		if remaining := end - r.steps; int64(len(as)) > remaining {
			as, bs = as[:remaining], bs[:remaining]
		}
		e.pending = e.pending[:0]
		np := 0
		for i, a := range as {
			b := bs[i]
			if np != 0 && (e.marks[a] == e.epoch || e.marks[b] == e.epoch) {
				// Collision with a touched agent: close the sub-batch
				// before interaction i sees (or perturbs) a recorded
				// projection.
				if hit := e.fold(as, bs); hit >= 0 {
					exact := r.steps + int64(hit) + 1
					r.pairs.Advance(i)
					r.steps += int64(i)
					return exact
				}
				e.epoch++
				e.pending = e.pending[:0]
				np = 0
			}
			ut, vt := r.proto.TransitionT(&states[a], &states[b])
			if ut || vt {
				var m uint8
				if ut {
					e.marks[a] = e.epoch
					m = 1
				}
				if vt {
					e.marks[b] = e.epoch
					m |= 2
				}
				e.pending = append(e.pending, touchRec{slot: int32(i), mask: m})
				np++
				e.touched = true
			}
		}
		hit := e.fold(as, bs)
		exact := r.steps + int64(hit) + 1
		e.epoch++
		r.pairs.Advance(len(as))
		r.steps += int64(len(as))
		if hit >= 0 {
			return exact
		}
	}
	return -1
}

// RunUntilCondT executes interactions until the incrementally
// maintained condition reports Done, or maxSteps interactions have been
// executed (ErrBudgetExhausted). It is the touch-aware form of
// Runner.RunUntilCond: the protocol's TransitionT reports which agents
// changed condition-relevant state, and only those interactions pay
// tracker calls — unchanged interactions, the overwhelming majority
// near convergence, run at plain Run-loop speed (see condEngine.run for
// the collision-free sub-batch machinery).
//
// The returned step count is the exact hitting time. Because
// transitions of the hit's sub-batch may already have been applied
// when the fold detects Done, Steps() (and the pair stream) can sit up
// to one sub-batch past the returned value; for the silent stop
// conditions this engine targets (a valid ranking is a silent
// configuration) those trailing interactions are no-ops, so the final
// configuration is the one at the hitting time.
func RunUntilCondT[S any, P TouchReporter[S]](r *Runner[S, P], cond Condition[S], maxSteps int64) (int64, error) {
	cond.Init(r.states)
	if cond.Done() {
		return r.steps, nil
	}
	if k := maxSteps - r.steps; k > 0 {
		if hit := newCondEngine(r, cond).run(k); hit >= 0 {
			return hit, nil
		}
	}
	return r.steps, ErrBudgetExhausted
}

// ObserveCondT is the touch-aware observation loop: it executes
// interactions until the incrementally maintained condition reports
// Done — stopping at the exact hitting time, like RunUntilCondT — or
// maxSteps is reached, invoking obs every `every` interactions (< 1 =
// every n), plus once at the start and once at the final step. Windows
// in which no interaction moved a tracked projection are skipped
// entirely (except the first and final observation): every probe over
// the tracked projection would resample the values it saw last window,
// so a quiescent window pays neither the probe nor a validity scan. It
// reports the final step count and whether the condition was reached.
//
// As with RunUntilCondT, the configuration passed to the final obs call
// can sit up to one collision-free sub-batch past the reported hitting
// step; for silent stop conditions the trailing interactions are
// no-ops.
func ObserveCondT[S any, P TouchReporter[S]](r *Runner[S, P], cond Condition[S], obs func(steps int64, states []S), every, maxSteps int64) (int64, bool) {
	if every < 1 {
		every = int64(len(r.states))
	}
	cond.Init(r.states)
	obs(r.steps, r.states)
	if cond.Done() {
		return r.steps, true
	}
	e := newCondEngine(r, cond)
	for r.steps < maxSteps {
		chunk := every
		if remaining := maxSteps - r.steps; chunk > remaining {
			chunk = remaining
		}
		e.touched = false
		if hit := e.run(chunk); hit >= 0 {
			obs(hit, r.states)
			return hit, true
		}
		if e.touched || r.steps >= maxSteps {
			obs(r.steps, r.states)
		}
	}
	return r.steps, false
}

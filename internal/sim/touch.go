package sim

// TouchReporter is the optional protocol capability behind cheap exact
// stopping: TransitionT applies one interaction with semantics
// identical to Transition and additionally reports which of the two
// agents' *condition-relevant projection* changed — the quantity the
// protocol's incremental stop tracker watches (the rank for the
// ranking protocols, the owned interval for the relaxed-range
// baseline, the leader bit for loose leader election).
//
// The report must be sound: an agent whose projection changed must be
// reported as touched. Implementations in this repository are exact
// (touched ⇔ projection changed) because exactness is what makes
// RunUntilCondT cheap — near convergence almost no interaction moves
// the projection, so almost no interaction pays a tracker call. The
// projection each protocol reports on is documented at its TransitionT,
// and a property test checks the report against a recomputation of the
// projection on every step of random and adversarial schedules.
//
// The interface is structural on purpose: protocol packages implement
// TransitionT without importing sim, preserving the layering rule that
// protocols depend only on rng.
type TouchReporter[S any] interface {
	Protocol[S]
	TransitionT(u, v *S) (uTouched, vTouched bool)
}

// touchRec is one touched interaction of the current collision-free
// sub-batch: its window-relative slot and which agents to fold.
type touchRec struct {
	slot int32
	mask uint8 // 1 = initiator touched, 2 = responder touched
}

// RunUntilCondT executes interactions until the incrementally
// maintained condition reports Done, or maxSteps interactions have been
// executed (ErrBudgetExhausted). It is the touch-aware form of
// Runner.RunUntilCond: the protocol's TransitionT reports which agents
// changed condition-relevant state, and only those interactions pay
// tracker calls — unchanged interactions, the overwhelming majority
// near convergence, run at plain Run-loop speed.
//
// The engine applies each PairBatch window as a sequence of
// collision-free sub-batches. A pre-scan is unnecessary: the split
// point is discovered on the fly, and only collisions on *touched*
// agents force a boundary — an untouched interaction cannot move the
// tracked projection, so deferring its (empty) tracker work is always
// safe. Within a sub-batch, transitions run in a tight loop while
// touched slots are recorded; at the sub-batch boundary the recorded
// slots are folded into the tracker in application order with a Done
// check after each. Conflict-freedom makes the fold an exact replay:
// no later interaction of the sub-batch has moved a recorded agent's
// projection, so the tracker sees exactly the per-interaction
// trajectory and the first satisfying interaction is identified
// exactly.
//
// The returned step count is that exact hitting time. Because
// transitions of the hit's sub-batch may already have been applied
// when the fold detects Done, Steps() (and the pair stream) can sit up
// to one sub-batch past the returned value; for the silent stop
// conditions this engine targets (a valid ranking is a silent
// configuration) those trailing interactions are no-ops, so the final
// configuration is the one at the hitting time.
func RunUntilCondT[S any, P TouchReporter[S]](r *Runner[S, P], cond Condition[S], maxSteps int64) (int64, error) {
	cond.Init(r.states)
	if cond.Done() {
		return r.steps, nil
	}
	states := r.states
	// marks is the collision scratch: marks[a] == epoch while agent a
	// has a recorded-but-unfolded touch in the current sub-batch.
	marks := make([]uint32, len(states))
	epoch := uint32(1)
	var pending []touchRec

	// fold replays the recorded touched slots of the current sub-batch
	// in application order. It returns the window-relative slot of the
	// first interaction after which the condition held, or -1.
	fold := func(as, bs []int32) int32 {
		for _, t := range pending {
			if t.mask&1 != 0 {
				cond.Update(int(as[t.slot]), states)
			}
			if t.mask&2 != 0 {
				cond.Update(int(bs[t.slot]), states)
			}
			if cond.Done() {
				return t.slot
			}
		}
		return -1
	}

	for r.steps < maxSteps {
		as, bs := r.pairs.Window()
		if remaining := maxSteps - r.steps; int64(len(as)) > remaining {
			as, bs = as[:remaining], bs[:remaining]
		}
		pending = pending[:0]
		np := 0
		for i, a := range as {
			b := bs[i]
			if np != 0 && (marks[a] == epoch || marks[b] == epoch) {
				// Collision with a touched agent: close the sub-batch
				// before interaction i sees (or perturbs) a recorded
				// projection.
				if hit := fold(as, bs); hit >= 0 {
					exact := r.steps + int64(hit) + 1
					r.pairs.Advance(i)
					r.steps += int64(i)
					return exact, nil
				}
				epoch++
				pending = pending[:0]
				np = 0
			}
			ut, vt := r.proto.TransitionT(&states[a], &states[b])
			if ut || vt {
				var m uint8
				if ut {
					marks[a] = epoch
					m = 1
				}
				if vt {
					marks[b] = epoch
					m |= 2
				}
				pending = append(pending, touchRec{slot: int32(i), mask: m})
				np++
			}
		}
		hit := fold(as, bs)
		exact := r.steps + int64(hit) + 1
		epoch++
		r.pairs.Advance(len(as))
		r.steps += int64(len(as))
		if hit >= 0 {
			return exact, nil
		}
	}
	return r.steps, ErrBudgetExhausted
}

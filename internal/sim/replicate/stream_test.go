package replicate

import (
	"sync/atomic"
	"testing"
	"time"

	"ssrank/internal/rng"
)

// adversarialDelay makes earlier trials finish later: trial 0 is the
// slowest, the last trial returns almost immediately. Any commit-order
// bug (committing in completion order instead of trial order) surfaces
// under this schedule.
func adversarialDelay(trial, trials int) {
	time.Sleep(time.Duration(trials-trial) * time.Millisecond)
}

func TestStreamMatchesReplicate(t *testing.T) {
	run := func(trial int, seed uint64) [2]uint64 {
		return [2]uint64{uint64(trial), rng.New(seed).Uint64()}
	}
	want := Replicate(1, 48, 11, run)
	for _, workers := range []int{1, 4, 16} {
		got := ReplicateStream(Stream[[2]uint64]{Workers: workers, Trials: 48, Root: 11}, run)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d trial %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamCommitsInTrialOrder(t *testing.T) {
	const trials = 24
	var order []int
	got := ReplicateStream(Stream[int]{
		Workers: 8,
		Trials:  trials,
		Root:    3,
		OnCommit: func(c Commit[int]) {
			order = append(order, c.Trial)
			if c.Committed != c.Trial+1 {
				t.Errorf("commit %d reports Committed=%d", c.Trial, c.Committed)
			}
		},
	}, func(trial int, seed uint64) int {
		adversarialDelay(trial, trials)
		return trial * trial
	})
	if len(order) != trials {
		t.Fatalf("%d commits, want %d", len(order), trials)
	}
	for i, tr := range order {
		if tr != i {
			t.Fatalf("commit order %v: position %d holds trial %d", order, i, tr)
		}
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestStreamEarlyAbortPrefix pins the early-abort hook contract: a
// Stop firing at commit k freezes the output at exactly the first k+1
// trials, at every worker count, even when in-flight later trials have
// already completed.
func TestStreamEarlyAbortPrefix(t *testing.T) {
	const trials, stopAt = 40, 9
	for _, workers := range []int{1, 4, 16} {
		var commits atomic.Int32
		got := ReplicateStream(Stream[uint64]{
			Workers:  workers,
			Trials:   trials,
			Root:     5,
			OnCommit: func(Commit[uint64]) { commits.Add(1) },
			Stop:     func(c Commit[uint64]) bool { return c.Trial >= stopAt },
		}, func(trial int, seed uint64) uint64 {
			adversarialDelay(trial, trials)
			return seed
		})
		if len(got) != stopAt+1 {
			t.Fatalf("workers=%d: committed %d trials, want %d", workers, len(got), stopAt+1)
		}
		if int(commits.Load()) != stopAt+1 {
			t.Fatalf("workers=%d: OnCommit ran %d times after stop", workers, commits.Load())
		}
		for i := range got {
			if got[i] != Seed(5, i) {
				t.Fatalf("workers=%d: result[%d] corrupted", workers, i)
			}
		}
	}
}

// streamStat is the per-trial statistic of the invariance test: a
// deterministic function of the trial seed alone, noisy enough that
// the precision rule stops well after MinTrials but well before the
// ceiling.
func streamStat(seed uint64) float64 {
	return 100 + 100*(rng.New(seed).Float64()-0.5)
}

// TestStreamPrecisionWorkerInvariance is the determinism regression
// test of the CI-adaptive stopping rule: with Precision stopping, the
// committed result prefix must be bit-identical at 1, 4, and 16
// workers — including under an adversarial completion schedule where
// every later trial finishes before its predecessors. The stop
// decision is a pure function of the committed prefix, so neither the
// stop point nor any committed value may move with the worker count.
func TestStreamPrecisionWorkerInvariance(t *testing.T) {
	const trials = 96
	runFor := func(delay bool) func(int, uint64) float64 {
		return func(trial int, seed uint64) float64 {
			if delay {
				adversarialDelay(trial, trials)
			}
			return streamStat(seed)
		}
	}
	type outcome struct {
		prefix []float64
	}
	results := map[int]outcome{}
	for _, workers := range []int{1, 4, 16} {
		got := ReplicateStream(Stream[float64]{
			Workers: workers,
			Trials:  trials,
			Root:    0x5eed,
			Stop: StopFunc(Precision{Rel: 0.1}, func(v float64) (float64, bool) {
				return v, true
			}),
		}, runFor(workers > 1))
		results[workers] = outcome{got}
	}
	base := results[1].prefix
	if len(base) < DefaultMinTrials || len(base) >= trials {
		t.Fatalf("stop point %d not strictly inside (%d, %d): test statistic mistuned",
			len(base), DefaultMinTrials, trials)
	}
	for _, workers := range []int{4, 16} {
		got := results[workers].prefix
		if len(got) != len(base) {
			t.Fatalf("workers=%d stopped at %d trials, workers=1 at %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: committed result %d differs bitwise", workers, i)
			}
		}
	}
}

func TestStopFuncExcludesFailedTrials(t *testing.T) {
	// Failed trials (ok=false) must not feed the CI: with every trial
	// failed the rule can never fire and the stream runs to its
	// ceiling.
	stop := StopFunc(Precision{Rel: 0.5}, func(int) (float64, bool) { return 0, false })
	got := ReplicateStream(Stream[int]{Workers: 4, Trials: 32, Root: 1, Stop: stop},
		func(trial int, _ uint64) int { return trial })
	if len(got) != 32 {
		t.Fatalf("stream with all-failed statistic stopped at %d/32", len(got))
	}
	// A zero-spread sample is not trusted at MinTrials — "constant so
	// far" may be a rare-event indicator — but stops at 2·MinTrials.
	stop = StopFunc(Precision{Rel: 0.01, MinTrials: 5}, func(int) (float64, bool) { return 7, true })
	got = ReplicateStream(Stream[int]{Workers: 1, Trials: 32, Root: 1, Stop: stop},
		func(trial int, _ uint64) int { return trial })
	if len(got) != 10 {
		t.Fatalf("constant statistic stopped at %d, want 2·MinTrials=10", len(got))
	}
}

// TestPrecisionMetNeedsSamplesNotCommits pins the guard against
// failed-trial-diluted prefixes: MinTrials counts accumulated
// statistic values, so a long committed prefix whose trials mostly
// failed must not stop on a two-point CI.
func TestPrecisionMetNeedsSamplesNotCommits(t *testing.T) {
	// 20 committed trials, but only trials 0 and 1 converged, with
	// nearly equal statistics — a tiny two-point CI.
	stop := StopFunc(Precision{Rel: 0.05}, func(trial int) (float64, bool) {
		return 100 + float64(trial), trial < 2
	})
	got := ReplicateStream(Stream[int]{Workers: 1, Trials: 20, Root: 1, Stop: stop},
		func(trial int, _ uint64) int { return trial })
	if len(got) != 20 {
		t.Fatalf("stream stopped at %d/20 on a two-sample CI", len(got))
	}
}

func TestStreamZeroTrials(t *testing.T) {
	if got := ReplicateStream(Stream[int]{Workers: 4, Trials: 0, Root: 1},
		func(int, uint64) int { return 1 }); got != nil {
		t.Fatalf("0-trial stream = %v, want nil", got)
	}
}

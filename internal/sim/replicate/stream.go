package replicate

import (
	"math"
	"sync"
	"sync/atomic"

	"ssrank/internal/stats"
)

// Commit describes one trial result as it is committed, in trial-index
// order, to the stream's output prefix.
type Commit[R any] struct {
	// Trial is the index of the committed trial.
	Trial int
	// Committed is the number of trials committed so far, including
	// this one (== Trial+1: commits happen in index order with no gaps).
	Committed int
	// Result is the trial's result.
	Result R
}

// Stream configures ReplicateStream.
type Stream[R any] struct {
	// Workers bounds the worker pool (< 1 = one per CPU).
	Workers int
	// Trials is the trial ceiling: the stream never commits more than
	// this many trials, and commits exactly this many unless Stop
	// aborts earlier.
	Trials int
	// Root is the experiment root seed; trial i runs with
	// Seed(Root, i), exactly as Replicate.
	Root uint64
	// OnCommit, when non-nil, observes every commit in trial-index
	// order — the progress hook. It runs on the caller's goroutine.
	OnCommit func(c Commit[R])
	// Stop, when non-nil, is the early-abort hook: it is consulted
	// after each commit (after OnCommit) and a true return freezes the
	// output at the current committed prefix. Because commits are
	// delivered in trial order regardless of which worker finished
	// first, any decision computed from the sequence of commits is a
	// pure function of the committed prefix — and therefore identical
	// at every worker count. Trials that were already in flight past
	// the stop point complete but their results are discarded.
	Stop func(c Commit[R]) bool
}

// ReplicateStream runs up to s.Trials independent trials of run and
// returns the committed prefix of results in trial order. It is the
// streaming variant of Replicate: results flow through an ordered
// commit pipeline (buffered until every earlier trial has committed),
// so callbacks see them in trial-index order even when a fast later
// trial finishes before a slow earlier one. With a nil Stop it returns
// exactly Replicate's output; with a Stop hook it may return a shorter
// prefix, still bit-identical at any worker count.
func ReplicateStream[R any](s Stream[R], run func(trial int, seed uint64) R) []R {
	trials := s.Trials
	if trials <= 0 {
		return nil
	}
	workers := Workers(s.Workers, trials)

	commit := func(results []R, c Commit[R]) (stop bool) {
		results[c.Trial] = c.Result
		if s.OnCommit != nil {
			s.OnCommit(c)
		}
		return s.Stop != nil && s.Stop(c)
	}

	if workers == 1 {
		results := make([]R, trials)
		for i := 0; i < trials; i++ {
			c := Commit[R]{Trial: i, Committed: i + 1, Result: run(i, Seed(s.Root, i))}
			if commit(results, c) {
				return results[:i+1]
			}
		}
		return results
	}

	// Parallel path. Workers claim trial indices from an atomic
	// counter and speculate ahead of the commit frontier; `horizon`
	// only throttles that speculation after a stop — it never affects
	// which results are committed, so it is free to race.
	var (
		next    atomic.Int64
		horizon atomic.Int64
		wg      sync.WaitGroup
	)
	horizon.Store(int64(trials))
	type item struct {
		trial int
		r     R
	}
	ch := make(chan item, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials || int64(i) >= horizon.Load() {
					return
				}
				ch <- item{i, run(i, Seed(s.Root, i))}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	// Commit pipeline, on the caller's goroutine: buffer out-of-order
	// arrivals, commit in trial-index order, and after a stop keep
	// draining the channel (discarding) so workers never block.
	results := make([]R, trials)
	pending := make(map[int]R)
	committed := 0
	stopped := false
	for it := range ch {
		if stopped {
			continue
		}
		pending[it.trial] = it.r
		for {
			r, ok := pending[committed]
			if !ok {
				break
			}
			delete(pending, committed)
			c := Commit[R]{Trial: committed, Committed: committed + 1, Result: r}
			committed++
			if commit(results, c) {
				stopped = true
				horizon.Store(int64(committed))
				break
			}
		}
	}
	return results[:committed]
}

// Precision is a sequential stopping policy: stop replicating once the
// 95% confidence interval of a per-trial statistic is tight enough,
// relative to its running mean.
type Precision struct {
	// Rel is the target relative half-width: stop once
	// ci95_half ≤ Rel·|mean|. Must be > 0.
	Rel float64
	// MinTrials is the minimum number of committed trials before the
	// rule may fire (default 8): early CIs computed from two or three
	// trials are too noisy to trust as stopping evidence.
	MinTrials int
}

// DefaultMinTrials is the pilot prefix Precision insists on before its
// sequential CI is allowed to stop a stream.
const DefaultMinTrials = 8

// Met reports whether the policy is satisfied by the statistic values
// folded into acc from a committed prefix. It exists separately from
// StopFunc so callers that already maintain a Running accumulator
// (e.g. for progress reporting) can share it with the stop rule.
//
// MinTrials is enforced on acc.N() — accumulated statistic samples,
// not committed trials — so a prefix whose trials mostly failed
// (ok=false, excluded from the CI) cannot stop on a two-point
// interval. A zero-spread sample needs 2·MinTrials values before it
// stops: "constant so far" is not proof of a constant statistic (an
// indicator whose rate is small looks constant for a long time), and
// by the rule of three, 2·MinTrials straight identical Bernoulli
// outcomes at least bound the opposite-outcome rate near 3/(2·MinTrials)
// — while a genuinely deterministic statistic only pays the few extra
// trials once.
func (p Precision) Met(acc *stats.Running) bool {
	minTrials := p.MinTrials
	if minTrials <= 0 {
		minTrials = DefaultMinTrials
	}
	if acc.N() < minTrials {
		return false
	}
	rel := acc.RelCI95()
	if rel == 0 {
		return acc.N() >= 2*minTrials
	}
	return !math.IsInf(rel, 1) && rel <= p.Rel
}

// StopFunc builds a Stream.Stop hook implementing the policy for a
// caller-chosen statistic. stat maps a trial result to its statistic
// value; a false ok excludes the trial from the CI (e.g. a trial that
// exhausted its budget has no convergence time) without stopping the
// stream. The hook folds committed values into a Welford accumulator,
// so the decision depends only on the committed prefix — the
// determinism contract of ReplicateStream.
func StopFunc[R any](p Precision, stat func(R) (float64, bool)) func(Commit[R]) bool {
	var acc stats.Running
	return func(c Commit[R]) bool {
		if v, ok := stat(c.Result); ok {
			acc.Add(v)
		}
		return p.Met(&acc)
	}
}

// Package replicate is the deterministic parallel replication engine:
// it fans independent simulation trials out over a worker pool while
// keeping every result a pure function of (experiment seed, trial
// index). Per-trial seeds are derived from the experiment seed by a
// splitmix64 finalizer — never from a shared stream consumed in
// scheduling order — so the result slice is bit-identical whether the
// trials run on one worker or on runtime.NumCPU() of them.
//
// The paper's protocols cost Θ(n² log n)–Θ(n³) interactions per run
// and every figure averages dozens of replications; this package is
// what turns those sweeps from serial minutes into parallel seconds
// without sacrificing reproducibility.
package replicate

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Seed derives the seed of trial `trial` from the experiment root
// seed. The derivation depends only on (root, trial), uses the
// splitmix64 finalizer for full avalanche, and is stable across
// releases — recorded experiment outputs stay reproducible.
func Seed(root uint64, trial int) uint64 {
	z := root + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seeds returns the per-trial seeds Replicate would hand out.
func Seeds(root uint64, trials int) []uint64 {
	out := make([]uint64, trials)
	for i := range out {
		out[i] = Seed(root, i)
	}
	return out
}

// Workers resolves a worker-count request: values < 1 mean "one per
// CPU", and the count is clamped to the number of trials.
func Workers(requested, trials int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > trials {
		w = trials
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Replicate runs `trials` independent trials of run and returns their
// results in trial order. run receives the trial index and the trial's
// deterministic seed (Seed(root, trial)) and must derive ALL of its
// randomness from that seed for the engine's determinism guarantee to
// hold. Trials execute on `workers` goroutines (< 1 = one per CPU);
// the returned slice does not depend on the worker count or on
// scheduling order.
func Replicate[R any](workers, trials int, root uint64, run func(trial int, seed uint64) R) []R {
	if trials <= 0 {
		return nil
	}
	results := make([]R, trials)
	workers = Workers(workers, trials)
	if workers == 1 {
		for i := range results {
			results[i] = run(i, Seed(root, i))
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				results[i] = run(i, Seed(root, i))
			}
		}()
	}
	wg.Wait()
	return results
}

package replicate

import (
	"runtime"
	"sync/atomic"
	"testing"

	"ssrank/internal/rng"
)

func TestSeedDependsOnlyOnRootAndTrial(t *testing.T) {
	a, b := Seed(42, 7), Seed(42, 7)
	if a != b {
		t.Fatalf("Seed not deterministic: %d != %d", a, b)
	}
	if Seed(42, 7) == Seed(42, 8) || Seed(42, 7) == Seed(43, 7) {
		t.Fatal("distinct (root, trial) pairs collided")
	}
}

func TestSeedsMatchesSeed(t *testing.T) {
	seeds := Seeds(99, 16)
	for i, s := range seeds {
		if s != Seed(99, i) {
			t.Fatalf("Seeds[%d] = %d, want %d", i, s, Seed(99, i))
		}
	}
}

func TestSeedAvalanche(t *testing.T) {
	// Adjacent trials must not produce near-identical seeds: over 64
	// consecutive trials every seed must be distinct and the low bits
	// must not be constant.
	seen := map[uint64]bool{}
	var orLow uint64
	for i := 0; i < 64; i++ {
		s := Seed(5, i)
		if seen[s] {
			t.Fatalf("duplicate seed at trial %d", i)
		}
		seen[s] = true
		orLow |= s & 0xff
	}
	if orLow != 0xff {
		t.Fatalf("low seed bits not well mixed: OR = %#x", orLow)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want clamp to trials", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Fatalf("Workers(-1, 0) = %d, want 1", got)
	}
}

func TestReplicateOrderAndDeterminism(t *testing.T) {
	run := func(trial int, seed uint64) [2]uint64 {
		return [2]uint64{uint64(trial), rng.New(seed).Uint64()}
	}
	serial := Replicate(1, 64, 7, run)
	parallel := Replicate(8, 64, 7, run) // forced pool: interleaves even on one core
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d differs: serial %v parallel %v", i, serial[i], parallel[i])
		}
		if serial[i][0] != uint64(i) {
			t.Fatalf("trial %d result out of order: %v", i, serial[i])
		}
	}
}

func TestReplicateRunsEveryTrialOnce(t *testing.T) {
	var calls [40]atomic.Int32
	Replicate(4, 40, 1, func(trial int, _ uint64) struct{} {
		calls[trial].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("trial %d ran %d times", i, c)
		}
	}
}

func TestReplicateEmpty(t *testing.T) {
	if got := Replicate(4, 0, 1, func(int, uint64) int { return 1 }); got != nil {
		t.Fatalf("Replicate with 0 trials = %v, want nil", got)
	}
}

func BenchmarkReplicateOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Replicate(0, 64, uint64(i), func(trial int, seed uint64) uint64 { return seed })
	}
}

package sim

import "ssrank/internal/proto"

// DescCond builds the engine stop condition a descriptor prescribes
// for protocol instance p: the protocol-specific tracker when the
// descriptor overrides one (Cond), else the permutation tracker over
// the descriptor's rank projection and rank space — the incremental
// form of the descriptor's Valid predicate either way. proto.Condition
// and Condition have identical method sets, so the override converts
// implicitly.
func DescCond[S any, P any](d proto.Descriptor[S, P], p P) Condition[S] {
	if d.Cond != nil {
		return d.Cond(p)
	}
	m := 0
	if d.Space != nil {
		m = d.Space(p)
	}
	return NewRankCond(m, d.Rank)
}

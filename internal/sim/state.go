package sim

import "ssrank/internal/rng"

// EngineState is the exportable scheduler position of a serial Runner:
// the step counter and the pair-stream position. Together with a
// serialized configuration (the protocol packages' MarshalState) it
// reconstructs a Runner mid-run — the restored Runner executes exactly
// the interactions the captured one would have executed next, so a
// checkpointed run resumes byte-identically.
type EngineState struct {
	// Steps is the number of interactions executed when the state was
	// captured.
	Steps int64
	// Pairs is the scheduler's pair-stream position.
	Pairs rng.PairBatchState
}

// EngineState captures the Runner's scheduler position.
func (r *Runner[S, P]) EngineState() EngineState {
	return EngineState{Steps: r.steps, Pairs: r.pairs.State()}
}

// SetEngineState restores a position captured by EngineState on a
// Runner over the same population size. The caller is responsible for
// having restored the matching configuration (the states slice passed
// to New); the engine cannot verify that pairing.
func (r *Runner[S, P]) SetEngineState(st EngineState) error {
	if err := r.pairs.SetState(st.Pairs); err != nil {
		return err
	}
	r.steps = st.Steps
	return nil
}

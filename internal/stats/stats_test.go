package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almostEqual(v, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-input conventions violated")
	}
	// Min/Max return NaN on empty input: 0 is a plausible extremum and
	// silently corrupts summaries of empty result sets.
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatalf("empty Min/Max = %v/%v, want NaN", Min(nil), Max(nil))
	}
	if s := Summarize(nil); !math.IsNaN(s.Min) || !math.IsNaN(s.Max) || s.N != 0 {
		t.Fatalf("Summarize(nil) = %+v, want NaN extrema", s)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-sample variance != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min=%v Max=%v", Min(xs), Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); !almostEqual(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation on even-length input.
	if got := Median([]float64{1, 2, 3, 10}); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Median = %v, want 2.5", got)
	}
	// Input must not be mutated (Quantile sorts a copy).
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMeanCI95(t *testing.T) {
	m, hw := MeanCI95([]float64{10, 10, 10, 10})
	if m != 10 || hw != 0 {
		t.Fatalf("constant sample CI: mean=%v hw=%v", m, hw)
	}
	_, hw = MeanCI95([]float64{0, 20, 0, 20})
	if hw <= 0 {
		t.Fatalf("noisy sample half-width = %v, want > 0", hw)
	}
	if _, hw := MeanCI95([]float64{1}); hw != 0 {
		t.Fatal("single sample must have zero half-width")
	}
}

func TestLogLogSlopeExact(t *testing.T) {
	// y = 5·x³ exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * x * x * x
	}
	if b := LogLogSlope(xs, ys); !almostEqual(b, 3, 1e-9) {
		t.Fatalf("slope = %v, want 3", b)
	}
}

func TestLogLogSlopeProperty(t *testing.T) {
	// For y = c·x^b with random positive c, b, the fit recovers b.
	f := func(rawB int8, rawC uint8) bool {
		b := float64(rawB%50) / 10 // -4.9..4.9
		c := 0.5 + float64(rawC)/64
		xs := []float64{2, 3, 5, 9, 17, 33}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c * math.Pow(x, b)
		}
		return almostEqual(LogLogSlope(xs, ys), b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LogLogSlope([]float64{1}, []float64{1}) },
		func() { LogLogSlope([]float64{1, 2}, []float64{1}) },
		func() { LogLogSlope([]float64{1, -2}, []float64{1, 2}) },
		func() { LogLogSlope([]float64{3, 3}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

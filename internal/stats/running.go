package stats

import "math"

// Running accumulates mean and variance online with Welford's
// algorithm: one pass, O(1) memory, numerically stable (the naive
// sum-of-squares form cancels catastrophically when the mean dwarfs
// the spread, which is exactly the regime of interaction counts in the
// 10⁶–10¹⁰ range). It is the accumulator behind the streaming
// replication engine's sequential confidence intervals: each committed
// trial is Add-ed once, and the stop rule reads Mean/CI95Half from the
// committed prefix only.
//
// The zero value is an empty accumulator, ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (NaN when empty — an empty stream has
// no mean, and 0 would silently corrupt downstream summaries).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations, matching Variance on slices).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// CI95Half returns the half-width of the 95% normal-approximation
// confidence interval of the mean, 1.96·s/√n (0 for fewer than two
// observations, matching MeanCI95).
func (r *Running) CI95Half() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// RelCI95 returns the 95% half-width relative to the magnitude of the
// mean, the quantity a precision-targeted stopping rule thresholds.
// Degenerate cases: 0 when the sample is constant (any target is met),
// +Inf when the mean is 0 but the spread is not (a relative target is
// meaningless, so it is never met).
func (r *Running) RelCI95() float64 {
	hw := r.CI95Half()
	if hw == 0 {
		return 0
	}
	if r.mean == 0 {
		return math.Inf(1)
	}
	return hw / math.Abs(r.mean)
}

// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, quantiles, normal-approximation
// confidence intervals and log-log regression for growth-exponent
// estimation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum. Empty input returns NaN: an empty result
// set has no extrema, and the old convention of returning 0 silently
// corrupted summaries (a sweep where every trial failed looked like
// one whose fastest trial took 0 interactions). Callers that want a
// sentinel must check len or math.IsNaN explicitly.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (NaN for empty input, for the same reason
// as Min).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It panics on q outside [0,1]
// and returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0, 1]", q))
	}
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N           int
	Mean        float64
	StdDev      float64
	Min         float64
	Q25, Median float64
	Q75         float64
	Max         float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Q25:    Quantile(xs, 0.25),
		Median: Median(xs),
		Q75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}

// MeanCI95 returns the mean together with the half-width of its 95%
// normal-approximation confidence interval.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	m := Mean(xs)
	if len(xs) < 2 {
		return m, 0
	}
	return m, 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// LogLogSlope fits log y = a + b·log x by least squares and returns the
// slope b — the empirical growth exponent of y in x. It panics when
// fewer than two points are given or any coordinate is non-positive.
func LogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LogLogSlope needs at least two (x, y) pairs of equal length")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("stats: LogLogSlope needs positive data, got (%v, %v)", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	mx, my := Mean(lx), Mean(ly)
	num, den := 0.0, 0.0
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		panic("stats: LogLogSlope with constant x")
	}
	return num / den
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
)

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Fatalf("empty accumulator: N=%d Mean=%v, want 0/NaN", r.N(), r.Mean())
	}
	if r.Variance() != 0 || r.CI95Half() != 0 || r.RelCI95() != 0 {
		t.Fatal("empty accumulator must have zero spread")
	}
	r.Add(3)
	if r.N() != 1 || r.Mean() != 3 || r.Variance() != 0 || r.CI95Half() != 0 {
		t.Fatalf("single observation: N=%d Mean=%v Var=%v", r.N(), r.Mean(), r.Variance())
	}
}

// TestRunningMatchesTwoPass is the Welford-vs-two-pass agreement
// contract: the online accumulator must reproduce the slice-based
// Mean/Variance/MeanCI95 on the same data.
func TestRunningMatchesTwoPass(t *testing.T) {
	check := func(xs []float64) {
		t.Helper()
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		if m := Mean(xs); !almostEqual(r.Mean(), m, 1e-9*(1+math.Abs(m))) {
			t.Fatalf("mean: running %v, two-pass %v on %v", r.Mean(), m, xs)
		}
		if v := Variance(xs); !almostEqual(r.Variance(), v, 1e-9*(1+v)) {
			t.Fatalf("variance: running %v, two-pass %v on %v", r.Variance(), v, xs)
		}
		if _, hw := MeanCI95(xs); !almostEqual(r.CI95Half(), hw, 1e-9*(1+hw)) {
			t.Fatalf("ci95: running %v, two-pass %v on %v", r.CI95Half(), hw, xs)
		}
	}
	check([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	check([]float64{1})
	check([]float64{-3, 3})
	// The regime the two-pass form exists for: huge mean, tiny spread.
	check([]float64{1e9 + 1, 1e9 + 2, 1e9 + 3, 1e9 + 4})

	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		m, v := Mean(xs), Variance(xs)
		return almostEqual(r.Mean(), m, 1e-8*(1+math.Abs(m))) &&
			almostEqual(r.Variance(), v, 1e-8*(1+v))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelCI95Degenerate(t *testing.T) {
	var c Running
	c.Add(5)
	c.Add(5)
	c.Add(5)
	if got := c.RelCI95(); got != 0 {
		t.Fatalf("constant sample RelCI95 = %v, want 0", got)
	}
	var z Running
	z.Add(-1)
	z.Add(1)
	if got := z.RelCI95(); !math.IsInf(got, 1) {
		t.Fatalf("zero-mean noisy RelCI95 = %v, want +Inf", got)
	}
	var n Running
	n.Add(9)
	n.Add(11)
	want := n.CI95Half() / 10
	if got := n.RelCI95(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("RelCI95 = %v, want %v", got, want)
	}
}

// TestCICoverage is the statistical contract of the 95%
// normal-approximation interval: over many fixed-seed samples from
// known distributions, the interval must cover the true mean close to
// 95% of the time. The tolerance band is wide enough for the CLT
// approximation error of skewed distributions at n=40 but tight enough
// to catch a wrong critical value or a wrong √n scaling (a 90% or 99%
// interval lands far outside it).
func TestCICoverage(t *testing.T) {
	const (
		reps       = 2000
		sampleSize = 40
	)
	dists := []struct {
		name     string
		trueMean float64
		draw     func(r *rng.RNG) float64
	}{
		{"uniform(0,1)", 0.5, func(r *rng.RNG) float64 { return r.Float64() }},
		{"exponential(1)", 1, func(r *rng.RNG) float64 {
			return -math.Log(1 - r.Float64())
		}},
		// Irwin–Hall(12): sum of 12 uniforms, near-Gaussian, mean 6.
		{"irwin-hall(12)", 6, func(r *rng.RNG) float64 {
			s := 0.0
			for i := 0; i < 12; i++ {
				s += r.Float64()
			}
			return s
		}},
	}
	for di, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rng.New(0xc0ffee ^ uint64(di)<<16)
			covered := 0
			for rep := 0; rep < reps; rep++ {
				var acc Running
				for i := 0; i < sampleSize; i++ {
					acc.Add(d.draw(r))
				}
				if math.Abs(acc.Mean()-d.trueMean) <= acc.CI95Half() {
					covered++
				}
			}
			rate := float64(covered) / reps
			if rate < 0.91 || rate > 0.98 {
				t.Fatalf("95%% CI covered the true mean in %.1f%% of %d samples, want ≈95%%",
					100*rate, reps)
			}
		})
	}
}

// Package interval implements a safe and silent ranking protocol that
// assigns ranks from the relaxed range [1, (1+ε)·n], in the spirit of
// the fast protocol of Gąsieniec, Jansson, Levcopoulos and Lingas
// (OPODIS'21) that the paper's related-work section discusses.
//
// The protocol realizes the time-vs-range trade-off those authors prove
// a lower bound for: assigning ranks from [1, n+r] costs at least
// n(n−1)/(2(r+1)) interactions in expectation, while with slack
// ε = Ω(1) ranking completes in O(n·log n/ε) interactions — quadratically
// faster than any exact-range protocol. Experiment E7 sweeps ε and
// compares the measured cost to the lower-bound curve.
//
// Mechanism: identifier space [1, m] with m = ⌈(1+ε)n⌉ rounded up to a
// power of two of capacity ≥ m. Every agent starts owning the full
// interval; when two agents owning the *same* interval of length ≥ 2
// meet, they split it in half; when an agent's interval strictly
// contains its partner's, it moves to the half avoiding the partner;
// when two agents own the same singleton, the responder restarts its
// descent from the root. Once all intervals
// are pairwise disjoint the configuration is silent and each agent's
// rank is the left endpoint of its interval. The protocol is not
// self-stabilizing (it is the paper's foil, not its subject).
package interval

import "fmt"

// State is the agent's owned identifier interval [Lo, Hi]; its
// (tentative, ultimately final) rank is Lo.
type State struct {
	Lo, Hi int32
}

// Protocol is the interval-splitting protocol.
type Protocol struct {
	n int
	m int32 // identifier-space size: power of two ≥ ⌈(1+ε)n⌉
}

// New builds the protocol for n ≥ 2 agents and slack ε ≥ 0. The
// identifier space is the smallest power of two ≥ max(n, ⌈(1+ε)n⌉), so
// the effective range may exceed (1+ε)n by up to 2× (intervals are
// binary-tree nodes; the census reports the effective m).
func New(n int, epsilon float64) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("interval: n must be >= 2, got %d", n))
	}
	if epsilon < 0 {
		panic(fmt.Sprintf("interval: epsilon must be >= 0, got %v", epsilon))
	}
	want := int32(float64(n) * (1 + epsilon))
	if want < int32(n) {
		want = int32(n)
	}
	m := int32(1)
	for m < want {
		m <<= 1
	}
	return &Protocol{n: n, m: m}
}

// N returns the population size.
func (p *Protocol) N() int { return p.n }

// M returns the effective identifier-space size.
func (p *Protocol) M() int32 { return p.m }

// InitialStates returns the start configuration: every agent owns the
// full interval [1, m].
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = State{Lo: 1, Hi: p.m}
	}
	return states
}

// Transition applies the split/evade rules.
func (p *Protocol) Transition(u, v *State) {
	p.TransitionT(u, v)
}

// TransitionT applies one interaction and reports which agents' owned
// interval (the projection the disjointness tracker watches) changed —
// the TouchReporter capability behind the engine's touch-aware exact
// stopping. Every rule that fires moves at least one interval, so the
// report falls straight out of the rule dispatch: a split moves both
// endpoints, a singleton restart and an evasion move exactly one
// agent, and disjoint pairs (all of them, once the configuration is
// silent) report nothing.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	switch {
	case u.Lo == v.Lo && u.Hi == v.Hi:
		if u.Hi > u.Lo {
			// Equal intervals of length ≥ 2 split in half.
			mid := u.Lo + (u.Hi-u.Lo)/2
			u.Hi = mid
			v.Lo = mid + 1
			return true, true
		}
		// Equal singletons: the responder restarts from the root
		// and is re-placed by the split/evade rules on later
		// meetings (a fresh descent, steered away from occupied
		// blocks). A merely local escape cannot leave a fully
		// occupied subtree, and without any escape the pair is a
		// dead end whenever the identifier space is tight.
		v.Lo, v.Hi = 1, p.m
		return false, true
	case u.Lo <= v.Lo && v.Hi <= u.Hi:
		// u strictly contains v: u evades into the half avoiding v.
		u.evade(v)
		return true, false
	case v.Lo <= u.Lo && u.Hi <= v.Hi:
		v.evade(u)
		return false, true
	}
	return false, false
}

// evade moves s to the half of its interval that does not contain the
// (strictly smaller) interval o.
func (s *State) evade(o *State) {
	mid := s.Lo + (s.Hi-s.Lo)/2
	if o.Hi <= mid {
		s.Lo = mid + 1
	} else {
		s.Hi = mid
	}
}

// Valid reports whether all intervals are pairwise disjoint — the
// silent configurations, in which the Lo endpoints are distinct ranks
// in [1, m].
func Valid(states []State) bool {
	// Sort by Lo via a small insertion copy; populations are modest and
	// validity checks are amortized by the engine.
	byLo := make([]State, len(states))
	copy(byLo, states)
	for i := 1; i < len(byLo); i++ {
		for j := i; j > 0 && byLo[j].Lo < byLo[j-1].Lo; j-- {
			byLo[j], byLo[j-1] = byLo[j-1], byLo[j]
		}
	}
	for i := 1; i < len(byLo); i++ {
		if byLo[i].Lo <= byLo[i-1].Hi {
			return false
		}
	}
	return true
}

// Ranks extracts the rank (Lo endpoint) of every agent.
func Ranks(states []State) []int32 {
	out := make([]int32, len(states))
	for i := range states {
		out[i] = states[i].Lo
	}
	return out
}

// CheckInvariant verifies that every interval is a well-formed binary
// tree node of the identifier space.
func (p *Protocol) CheckInvariant(states []State) error {
	for i := range states {
		s := &states[i]
		if s.Lo < 1 || s.Hi > p.m || s.Lo > s.Hi {
			return fmt.Errorf("agent %d: malformed interval [%d, %d]", i, s.Lo, s.Hi)
		}
		length := s.Hi - s.Lo + 1
		if length&(length-1) != 0 {
			return fmt.Errorf("agent %d: interval [%d, %d] is not a power-of-two block", i, s.Lo, s.Hi)
		}
		if (s.Lo-1)%length != 0 {
			return fmt.Errorf("agent %d: interval [%d, %d] is not aligned", i, s.Lo, s.Hi)
		}
	}
	return nil
}

// LowerBound returns the Gąsieniec et al. lower bound on the expected
// number of interactions for any safe+silent protocol assigning ranks
// from [1, n+r]: n(n−1)/(2(r+1)).
func LowerBound(n, r int) float64 {
	return float64(n) * float64(n-1) / (2 * float64(r+1))
}

package interval

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// Describe returns the protocol's descriptor for range slack ε: the
// relaxed-range protocol is not self-stabilizing (fresh start only),
// its ranks live in [1, m] with m the effective identifier-space size
// (Space), and its stop tracker is the interval-disjointness condition
// rather than the default permutation tracker — distinct Lo endpoints
// alone would not certify silence.
func Describe(epsilon float64) proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name:  "interval",
		Inits: []string{"fresh"},
		New:   func(n int) *Protocol { return New(n, epsilon) },
		Init: func(p *Protocol, init string, _ *rng.RNG) []State {
			if init == "fresh" {
				return p.InitialStates()
			}
			return nil
		},
		Valid: Valid,
		Rank:  func(s *State) int { return int(s.Lo) },
		Space: func(p *Protocol) int { return int(p.M()) },
		Cond: func(p *Protocol) proto.Condition[State] {
			return NewDisjointCond(p.M())
		},
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Budget:         proto.BudgetN2(5000),
	}
}

package interval

import (
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	cases := []struct {
		n    int
		eps  float64
		want int32
	}{
		{8, 0, 8},
		{8, 0.5, 16},
		{100, 0, 128},
		{100, 1.0, 256},
		{2, 0, 2},
	}
	for _, tc := range cases {
		if got := New(tc.n, tc.eps).M(); got != tc.want {
			t.Errorf("New(%d, %v).M() = %d, want %d", tc.n, tc.eps, got, tc.want)
		}
	}
}

func TestEqualIntervalsSplit(t *testing.T) {
	p := New(4, 0)
	u := State{Lo: 1, Hi: 8}
	v := State{Lo: 1, Hi: 8}
	p.Transition(&u, &v)
	if u != (State{Lo: 1, Hi: 4}) || v != (State{Lo: 5, Hi: 8}) {
		t.Fatalf("split gave %v, %v", u, v)
	}
}

func TestContainmentEvades(t *testing.T) {
	p := New(4, 0)
	// v sits in u's left half: u must evade right.
	u := State{Lo: 1, Hi: 8}
	v := State{Lo: 1, Hi: 2}
	p.Transition(&u, &v)
	if u != (State{Lo: 5, Hi: 8}) || v != (State{Lo: 1, Hi: 2}) {
		t.Fatalf("evade gave %v, %v", u, v)
	}

	// v in u's right half: u evades left; roles swapped.
	u = State{Lo: 7, Hi: 8}
	w := State{Lo: 1, Hi: 8}
	p.Transition(&u, &w)
	if w != (State{Lo: 1, Hi: 4}) || u != (State{Lo: 7, Hi: 8}) {
		t.Fatalf("responder evade gave %v, %v", u, w)
	}
}

func TestDisjointIntervalsSilent(t *testing.T) {
	p := New(4, 0)
	u := State{Lo: 1, Hi: 2}
	v := State{Lo: 3, Hi: 4}
	p.Transition(&u, &v)
	if u != (State{Lo: 1, Hi: 2}) || v != (State{Lo: 3, Hi: 4}) {
		t.Fatalf("disjoint intervals changed: %v, %v", u, v)
	}
}

func TestEqualSingletonsRestart(t *testing.T) {
	p := New(4, 0)
	u := State{Lo: 3, Hi: 3}
	v := State{Lo: 3, Hi: 3}
	p.Transition(&u, &v)
	if u != (State{Lo: 3, Hi: 3}) {
		t.Fatalf("initiator moved: %v", u)
	}
	if v != (State{Lo: 1, Hi: 4}) {
		t.Fatalf("responder restarted at %v, want the root [1, 4]", v)
	}

	// Climbing at the root is a no-op.
	p2 := New(2, 0)
	a := State{Lo: 1, Hi: 2}
	b := State{Lo: 1, Hi: 2}
	p2.Transition(&a, &b)
	if a != (State{Lo: 1, Hi: 1}) || b != (State{Lo: 2, Hi: 2}) {
		t.Fatalf("root pair split wrong: %v, %v", a, b)
	}
}

func TestRanksDistinctAfterStabilization(t *testing.T) {
	for _, n := range []int{2, 8, 32, 100} {
		p := New(n, 1.0)
		r := sim.New[State](p, p.InitialStates(), uint64(n))
		if _, err := r.RunUntil(Valid, 0, int64(10000*n)); err != nil {
			t.Fatalf("n=%d: not stabilized", n)
		}
		seen := map[int32]bool{}
		for _, rk := range Ranks(r.States()) {
			if rk < 1 || rk > p.M() || seen[rk] {
				t.Fatalf("n=%d: bad rank %d", n, rk)
			}
			seen[rk] = true
		}
		if err := p.CheckInvariant(r.States()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInvariantPreservedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(60)
		p := New(n, 0.5)
		run := sim.New[State](p, p.InitialStates(), seed)
		for i := 0; i < 40; i++ {
			run.Run(int64(n))
			if err := p.CheckInvariant(run.States()); err != nil {
				t.Logf("n=%d: %v", n, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSlackSpeedsRanking(t *testing.T) {
	// The trade-off: larger identifier space, faster ranking. Compare
	// mean stabilization time at ε=0 (tight, when n is a power of two)
	// vs ε=3.
	if testing.Short() {
		t.Skip("trade-off measurement is slow")
	}
	// n = 100: power-of-two rounding gives m = 128 at ε = 0 (28% real
	// slack) and m = 512 at ε = 3.
	const n = 100
	mean := func(eps float64) float64 {
		var sum int64
		const trials = 10
		ok := 0
		for seed := uint64(1); seed <= trials; seed++ {
			p := New(n, eps)
			r := sim.New[State](p, p.InitialStates(), seed)
			steps, err := r.RunUntil(Valid, 0, int64(2000*n*n))
			if err != nil {
				continue
			}
			sum += steps
			ok++
		}
		if ok == 0 {
			t.Fatalf("eps=%v: no trial stabilized", eps)
		}
		return float64(sum) / float64(ok)
	}
	tight, loose := mean(0), mean(3)
	if loose >= tight {
		t.Fatalf("slack did not speed ranking: eps=0 took %.0f, eps=3 took %.0f", tight, loose)
	}
}

func TestZeroSlackConverges(t *testing.T) {
	// With m = n exactly (n a power of two, ε = 0) the protocol must
	// produce an exact permutation of the leaves; the singleton-climb
	// escape makes this reachable, at the cost of the Ω(n²) lower
	// bound for r = 0.
	const n = 32
	for seed := uint64(1); seed <= 5; seed++ {
		p := New(n, 0)
		r := sim.New[State](p, p.InitialStates(), seed)
		if _, err := r.RunUntil(Valid, 0, int64(5000*n*n)); err != nil {
			t.Fatalf("seed %d: zero-slack run did not converge", seed)
		}
		if err := p.CheckInvariant(r.States()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLowerBound(t *testing.T) {
	// r = 0 (exact range): n(n−1)/2.
	if got, want := LowerBound(100, 0), 4950.0; got != want {
		t.Fatalf("LowerBound(100, 0) = %v, want %v", got, want)
	}
	// Larger slack, smaller bound.
	if LowerBound(100, 100) >= LowerBound(100, 10) {
		t.Fatal("lower bound not decreasing in r")
	}
}

func TestValid(t *testing.T) {
	if !Valid([]State{{1, 2}, {3, 4}, {5, 8}}) {
		t.Fatal("disjoint intervals declared invalid")
	}
	if Valid([]State{{1, 4}, {3, 4}}) {
		t.Fatal("overlapping intervals declared valid")
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, 0) },
		func() { New(8, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

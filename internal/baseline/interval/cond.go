package interval

// DisjointCond tracks pairwise disjointness of the owned intervals
// incrementally — the stop condition of the relaxed-range protocol
// (Valid) in the engine's Condition form, so experiment sweeps can
// stop exactly at the first silent configuration instead of polling
// the O(n log n) scan.
//
// Every legal interval is a node of the perfect binary tree over
// [1, m] (m a power of two), so two intervals overlap exactly when one
// is an ancestor-or-equal of the other. The tracker stores, per tree
// node in heap order, the number of agents owning exactly that node
// (cnt) and the number owning a strict descendant (desc), and
// maintains the total number of overlapping unordered agent pairs:
// inserting an interval at node x adds cnt over x's strict ancestors
// (they contain x), plus cnt[x] (equal), plus desc[x] (contained in
// x). The configuration is disjoint exactly when that running count is
// zero. An update walks one root path — O(log m) — and updates only
// run on interactions that actually moved an interval, which the
// protocol's TransitionT reports.
//
// The type satisfies the engine's Condition[State] interface
// structurally (this package does not import the engine, preserving
// the protocols-depend-only-on-rng layering). The zero value is not
// usable; construct with NewDisjointCond. A DisjointCond may be reused
// across runs — Init resets it.
type DisjointCond struct {
	m         int32   // identifier-space size (power of two)
	nodes     []int32 // cached tree node per agent; 0 = malformed interval
	cnt       []int32 // agents owning exactly this node
	desc      []int32 // agents owning a strict descendant of this node
	overlaps  int64   // overlapping unordered agent pairs
	malformed int     // agents whose interval is not a tree node
}

// NewDisjointCond returns a tracker for the identifier space [1, m];
// m must match the protocol's effective space (Protocol.M).
func NewDisjointCond(m int32) *DisjointCond {
	if m < 1 || m&(m-1) != 0 {
		panic("interval: DisjointCond needs a power-of-two identifier space")
	}
	return &DisjointCond{m: m, cnt: make([]int32, 2*m), desc: make([]int32, 2*m)}
}

// nodeOf maps an interval to its tree node in heap order (root 1,
// leaves m..2m−1), or 0 when the interval is not an aligned
// power-of-two block of [1, m].
func (c *DisjointCond) nodeOf(s *State) int32 {
	length := s.Hi - s.Lo + 1
	if s.Lo < 1 || s.Hi > c.m || length < 1 ||
		length&(length-1) != 0 || (s.Lo-1)%length != 0 {
		return 0
	}
	return c.m/length + (s.Lo-1)/length
}

// Init (re)builds the tracker from the full configuration.
func (c *DisjointCond) Init(states []State) {
	if cap(c.nodes) < len(states) {
		c.nodes = make([]int32, len(states))
	}
	c.nodes = c.nodes[:len(states)]
	for i := range c.cnt {
		c.cnt[i], c.desc[i] = 0, 0
	}
	c.overlaps, c.malformed = 0, 0
	for i := range states {
		x := c.nodeOf(&states[i])
		c.nodes[i] = x
		c.add(x)
	}
}

func (c *DisjointCond) add(x int32) {
	if x == 0 {
		c.malformed++
		return
	}
	o := int64(c.cnt[x]) + int64(c.desc[x])
	for a := x >> 1; a >= 1; a >>= 1 {
		o += int64(c.cnt[a])
	}
	c.overlaps += o
	c.cnt[x]++
	for a := x >> 1; a >= 1; a >>= 1 {
		c.desc[a]++
	}
}

func (c *DisjointCond) remove(x int32) {
	if x == 0 {
		c.malformed--
		return
	}
	c.cnt[x]--
	for a := x >> 1; a >= 1; a >>= 1 {
		c.desc[a]--
	}
	o := int64(c.cnt[x]) + int64(c.desc[x])
	for a := x >> 1; a >= 1; a >>= 1 {
		o += int64(c.cnt[a])
	}
	c.overlaps -= o
}

// Update refreshes agent i's cached interval.
func (c *DisjointCond) Update(i int, states []State) {
	x := c.nodeOf(&states[i])
	if x != c.nodes[i] {
		c.remove(c.nodes[i])
		c.add(x)
		c.nodes[i] = x
	}
}

// Done reports whether all intervals are pairwise disjoint (every
// malformed interval counts as overlapping).
func (c *DisjointCond) Done() bool {
	return c.overlaps == 0 && c.malformed == 0
}

// Package cai implements the classic n-state silent self-stabilizing
// ranking (and hence leader-election) protocol of Cai, Izumi and Wada
// (Theory Comput. Syst. 2012), the minimal-state baseline the paper
// compares against (§II): n states, O(n³) interactions w.h.p.
//
// Each agent holds a label in {1..n}. When two agents with equal labels
// meet, the responder advances its label cyclically. Configurations
// whose labels form a permutation are silent; from any configuration,
// collisions push the multiset of labels toward a permutation.
//
// The protocol demonstrates the other end of the trade-off the paper
// occupies: zero overhead states, but a Θ(n)-factor slower
// stabilization than StableRanking's O(n² log n).
package cai

import (
	"fmt"

	"ssrank/internal/rng"
)

// State is an agent's label in [1, n].
type State int32

// Protocol is the collision-bump protocol for a fixed population size.
type Protocol struct {
	n int32
}

// New returns the protocol for n ≥ 2 agents.
func New(n int) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("cai: n must be >= 2, got %d", n))
	}
	return &Protocol{n: int32(n)}
}

// N returns the population size.
func (p *Protocol) N() int { return int(p.n) }

// Transition bumps the responder's label cyclically on collision.
func (p *Protocol) Transition(u, v *State) {
	p.TransitionT(u, v)
}

// TransitionT applies one interaction and reports which agents' label
// (the rank projection: the whole state) changed — the TouchReporter
// capability behind the engine's touch-aware exact stopping. Only a
// collision moves the responder; the initiator never changes.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	if *u == *v {
		*v = *v%State(p.n) + 1
		return false, true
	}
	return false, false
}

// InitialStates returns the canonical adversarial start: every agent
// holding label 1. Any []State with values in [1, n] is a legal start.
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = 1
	}
	return states
}

// RandomState draws a uniformly random label from [1, n] — the
// fault-injection primitive and the per-agent step of RandomConfig.
func (p *Protocol) RandomState(r *rng.RNG) State {
	return State(1 + r.Intn(int(p.n)))
}

// RandomConfig draws an arbitrary configuration uniformly from the
// state space — the adversary of the self-stabilization claim, and
// the protocol's "random" init. Labels are drawn agent by agent in
// index order, so the configuration is a pure function of r's stream.
func (p *Protocol) RandomConfig(r *rng.RNG) []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.RandomState(r)
	}
	return states
}

// RankOf returns the agent's label — the extractor behind the
// engine's incremental validity condition (labels outside [1, n] are
// treated as unranked by the tracker).
func RankOf(s *State) int { return int(*s) }

// Valid reports whether the labels form a permutation of 1..n.
func Valid(states []State) bool {
	seen := make([]bool, len(states)+1)
	for _, s := range states {
		if s < 1 || int(s) > len(states) || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// CheckInvariant verifies all labels are within [1, n].
func (p *Protocol) CheckInvariant(states []State) error {
	for i, s := range states {
		if s < 1 || s > State(p.n) {
			return fmt.Errorf("agent %d: label %d outside [1, %d]", i, s, p.n)
		}
	}
	return nil
}

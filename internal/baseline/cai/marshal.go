package cai

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// EncodeAgent appends one agent's label — the per-agent unit of
// MarshalState's slab section, shared with the distributed wire layer
// (proto.Descriptor.EncodeAgent).
func EncodeAgent(p *Protocol, s *State, w *ckpt.Writer) {
	w.Varint(int64(*s))
}

// DecodeAgent decodes one agent written by EncodeAgent; errors stick
// in r.
func DecodeAgent(p *Protocol, r *ckpt.Reader) State {
	return State(r.Int())
}

// MarshalState appends the agent slab — one label per agent — to w.
// The protocol is immutable, so the slab is the whole mutable run
// state (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		EncodeAgent(p, &states[i], w)
	}
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.N())
	if r.Err() == nil && n != p.N() {
		return nil, fmt.Errorf("cai: checkpoint holds %d agents, protocol expects %d", n, p.N())
	}
	states := make([]State, n)
	for i := range states {
		states[i] = DecodeAgent(p, r)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cai: %w", err)
	}
	return states, nil
}

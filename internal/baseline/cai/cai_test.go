package cai

import (
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func TestCollisionBumpsResponderOnly(t *testing.T) {
	p := New(8)
	u, v := State(3), State(3)
	p.Transition(&u, &v)
	if u != 3 || v != 4 {
		t.Fatalf("after collision: (%d, %d), want (3, 4)", u, v)
	}
}

func TestWrapAround(t *testing.T) {
	p := New(8)
	u, v := State(8), State(8)
	p.Transition(&u, &v)
	if v != 1 {
		t.Fatalf("label 8 bumped to %d, want wrap to 1", v)
	}
}

func TestDistinctLabelsSilent(t *testing.T) {
	p := New(8)
	u, v := State(2), State(5)
	p.Transition(&u, &v)
	if u != 2 || v != 5 {
		t.Fatalf("distinct labels changed: (%d, %d)", u, v)
	}
}

func TestStabilizesFromAllOnes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		p := New(n)
		r := sim.New[State](p, p.InitialStates(), uint64(n))
		budget := int64(200 * float64(n) * float64(n) * float64(n))
		if _, err := r.RunUntil(Valid, 0, budget); err != nil {
			t.Fatalf("n=%d: not a permutation within %d interactions", n, budget)
		}
	}
}

func TestStabilizesFromRandomLabels(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		p := New(n)
		states := make([]State, n)
		for i := range states {
			states[i] = State(1 + r.Intn(n))
		}
		run := sim.New[State](p, states, seed^0xfeed)
		_, err := run.RunUntil(Valid, 0, int64(500*n*n*n))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClosure(t *testing.T) {
	// A permutation never changes.
	const n = 16
	p := New(n)
	states := make([]State, n)
	for i := range states {
		states[i] = State(i + 1)
	}
	r := sim.New[State](p, states, 3)
	r.Run(int64(10 * n * n))
	if !Valid(r.States()) {
		t.Fatal("permutation destroyed")
	}
	for i, s := range r.States() {
		if s != State(i+1) {
			t.Fatalf("agent %d changed: %d", i, s)
		}
	}
}

func TestCubicGrowth(t *testing.T) {
	// The defining contrast with StableRanking: stabilization grows
	// like n³, so time/n² must grow roughly linearly in n.
	if testing.Short() {
		t.Skip("growth check is slow")
	}
	avgNorm := func(n int) float64 {
		var sum float64
		const trials = 3
		for seed := uint64(1); seed <= trials; seed++ {
			p := New(n)
			r := sim.New[State](p, p.InitialStates(), seed)
			steps, err := r.RunUntil(Valid, 0, int64(500*n*n*n))
			if err != nil {
				t.Fatalf("n=%d did not stabilize", n)
			}
			sum += float64(steps) / (float64(n) * float64(n))
		}
		return sum / trials
	}
	small, large := avgNorm(16), avgNorm(128)
	if large < 2*small {
		t.Fatalf("time/n² went from %.1f (n=16) to %.1f (n=128); expected clear superquadratic growth", small, large)
	}
}

func TestInvariantAndValidity(t *testing.T) {
	p := New(4)
	if err := p.CheckInvariant([]State{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariant([]State{0, 2, 3, 4}); err == nil {
		t.Fatal("label 0 accepted")
	}
	if Valid([]State{1, 1, 2, 3}) {
		t.Fatal("duplicate labels declared valid")
	}
	if !Valid([]State{4, 2, 3, 1}) {
		t.Fatal("permutation declared invalid")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

func BenchmarkTransition(b *testing.B) {
	p := New(1024)
	r := sim.New[State](p, p.InitialStates(), 1)
	b.ResetTimer()
	r.Run(int64(b.N))
}

package cai

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// Describe returns the protocol's descriptor: n-state self-stabilizing
// ranking, so every configuration with labels in [1, n] is legal and
// the "random" init draws one uniformly via RandomConfig.
func Describe() proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name:            "cai",
		Inits:           []string{"fresh", "random"},
		SelfStabilizing: true,
		New:             New,
		Init: func(p *Protocol, init string, r *rng.RNG) []State {
			switch init {
			case "fresh":
				return p.InitialStates()
			case "random":
				return p.RandomConfig(r)
			}
			return nil
		},
		Valid:          Valid,
		Rank:           RankOf,
		RandomState:    (*Protocol).RandomState,
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Budget:         proto.BudgetN3(2000),
	}
}

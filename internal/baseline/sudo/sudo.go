// Package sudo implements a loosely-stabilizing leader-election
// protocol in the style of Sudo et al. (TCS 2012, DISC'21), the third
// related-work family the paper's §II discusses.
//
// Loose stabilization trades permanence for speed: from *any* initial
// configuration the population converges to exactly one leader well
// below the Ω(n² log n) any silent protocol needs (Burman et al.) —
// this simplified variant measures at Θ(n²), duel-dominated, while
// Sudo et al.'s full constructions reach O(n log n) — but the
// configuration is not stable: the unique leader only persists for a
// long (tunable, exponential-in-the-constant) holding time, after
// which spurious leaders can reappear. The paper's StableRanking is
// the opposite corner: silent and permanent, at Θ(n² log n).
// Experiment E18 measures both corners.
//
// Mechanism: every agent carries a timeout. Leaders refresh their own
// timeout to T_max = ⌈TimeoutFactor·log₂ n⌉ on every interaction;
// non-leaders propagate freshness by adopting max(own, partner) − 1.
// An agent whose timeout drains to 0 concludes the leader is gone and
// promotes itself. Two leaders meeting demote the responder.
package sudo

import (
	"fmt"
	"math"

	"ssrank/internal/leaderelect"
)

// State is the per-agent state: a leader bit and a timeout in
// [0, TMax].
type State struct {
	Leader  bool
	Timeout int32
}

// Protocol is the loosely-stabilizing leader-election protocol.
type Protocol struct {
	n    int
	tMax int32
}

// New builds the protocol for n ≥ 2 agents. timeoutFactor scales
// T_max = ⌈timeoutFactor·log₂ n⌉; larger values lengthen the holding
// time (roughly exponentially) and slow convergence linearly.
func New(n int, timeoutFactor float64) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("sudo: n must be >= 2, got %d", n))
	}
	if timeoutFactor <= 0 {
		panic(fmt.Sprintf("sudo: timeoutFactor must be positive, got %v", timeoutFactor))
	}
	t := int32(math.Ceil(timeoutFactor * float64(leaderelect.CeilLog2(n))))
	if t < 2 {
		t = 2
	}
	return &Protocol{n: n, tMax: t}
}

// N returns the population size.
func (p *Protocol) N() int { return p.n }

// TMax returns the timeout ceiling.
func (p *Protocol) TMax() int32 { return p.tMax }

// Transition applies one interaction.
func (p *Protocol) Transition(u, v *State) {
	p.TransitionT(u, v)
}

// TransitionT applies one interaction and reports which agents' leader
// bit (the projection the unique-leader tracker watches) changed — the
// TouchReporter capability behind the engine's touch-aware exact
// stopping. Timeout churn is deliberately not a touch: it never moves
// the leader count, so the epidemic steady state (the overwhelming
// majority of interactions) reports nothing.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	switch {
	case u.Leader && v.Leader:
		// Duel: the responder yields.
		v.Leader = false
		u.Timeout = p.tMax
		v.Timeout = p.tMax
		return false, true
	case u.Leader || v.Leader:
		// A leader refreshes both timeouts.
		u.Timeout = p.tMax
		v.Timeout = p.tMax
		return false, false
	default:
		// Freshness epidemic with decay.
		m := u.Timeout
		if v.Timeout > m {
			m = v.Timeout
		}
		m--
		if m < 0 {
			m = 0
		}
		u.Timeout, v.Timeout = m, m
		// A drained timeout promotes the responder (one promotion per
		// interaction keeps duels rare).
		if m == 0 {
			v.Leader = true
			u.Timeout, v.Timeout = p.tMax, p.tMax
			return false, true
		}
		return false, false
	}
}

// InitialStates returns the adversarial no-leader, drained start.
func (p *Protocol) InitialStates() []State {
	return make([]State, p.n)
}

// AllLeaders returns the opposite adversarial start: everyone a
// leader.
func (p *Protocol) AllLeaders() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = State{Leader: true, Timeout: p.tMax}
	}
	return states
}

// Leaders counts the current leaders.
func Leaders(states []State) int {
	c := 0
	for i := range states {
		if states[i].Leader {
			c++
		}
	}
	return c
}

// UniqueLeader reports whether exactly one leader exists.
func UniqueLeader(states []State) bool { return Leaders(states) == 1 }

// CheckInvariant verifies all timeouts are within [0, TMax].
func (p *Protocol) CheckInvariant(states []State) error {
	for i := range states {
		if states[i].Timeout < 0 || states[i].Timeout > p.tMax {
			return fmt.Errorf("agent %d: timeout %d outside [0, %d]", i, states[i].Timeout, p.tMax)
		}
	}
	return nil
}

package sudo

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// EncodeAgent appends one agent's leader bit and timeout — the
// per-agent unit of MarshalState's slab section, shared with the
// distributed wire layer (proto.Descriptor.EncodeAgent).
func EncodeAgent(p *Protocol, s *State, w *ckpt.Writer) {
	w.Bool(s.Leader)
	w.Varint(int64(s.Timeout))
}

// DecodeAgent decodes one agent written by EncodeAgent; errors stick
// in r.
func DecodeAgent(p *Protocol, r *ckpt.Reader) State {
	var s State
	s.Leader = r.Bool()
	s.Timeout = int32(r.Int())
	return s
}

// MarshalState appends the agent slab — leader bit and timeout per
// agent — to w. The protocol is immutable, so the slab is the whole
// mutable run state (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		EncodeAgent(p, &states[i], w)
	}
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.n)
	if r.Err() == nil && n != p.n {
		return nil, fmt.Errorf("sudo: checkpoint holds %d agents, protocol expects %d", n, p.n)
	}
	states := make([]State, n)
	for i := range states {
		states[i] = DecodeAgent(p, r)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sudo: %w", err)
	}
	return states, nil
}

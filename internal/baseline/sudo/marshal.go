package sudo

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// MarshalState appends the agent slab — leader bit and timeout per
// agent — to w. The protocol is immutable, so the slab is the whole
// mutable run state (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		w.Bool(states[i].Leader)
		w.Varint(int64(states[i].Timeout))
	}
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.n)
	if r.Err() == nil && n != p.n {
		return nil, fmt.Errorf("sudo: checkpoint holds %d agents, protocol expects %d", n, p.n)
	}
	states := make([]State, n)
	for i := range states {
		states[i].Leader = r.Bool()
		states[i].Timeout = int32(r.Int())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sudo: %w", err)
	}
	return states, nil
}

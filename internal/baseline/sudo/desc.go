package sudo

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// DefaultTimeoutFactor is the timeout scaling the descriptor binds:
// large enough that the holding time dwarfs the convergence time at
// every population size the experiments touch (E18 measures both).
const DefaultTimeoutFactor = 8

// Describe returns the protocol's descriptor for the given timeout
// factor. Loose stabilization is convergence without silence: the
// "rank" projection is the leader bit (1 = leader, 0 = everyone
// else), validity is the unique-leader predicate, and the stop
// tracker is the incremental leader count — uniqueness is transient,
// which is exactly why the exact tracker (not a polled scan) defines
// the hitting time here.
func Describe(timeoutFactor float64) proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name: "loose",
		// The two adversarial corners: drained no-leader, and
		// everyone-a-leader ("worst-case").
		Inits:           []string{"fresh", "worst-case"},
		SelfStabilizing: true,
		New:             func(n int) *Protocol { return New(n, timeoutFactor) },
		Init: func(p *Protocol, init string, _ *rng.RNG) []State {
			switch init {
			case "fresh":
				return p.InitialStates()
			case "worst-case":
				return p.AllLeaders()
			}
			return nil
		},
		Valid: UniqueLeader,
		// Uniqueness is transient — the protocol's defining property —
		// so only the exact tracker defines the hitting time; polled
		// engines must not be used to measure it.
		TransientStop: true,
		Rank: func(s *State) int {
			if s.Leader {
				return 1
			}
			return 0
		},
		Cond: func(p *Protocol) proto.Condition[State] {
			return NewLeaderCond()
		},
		RandomState: func(p *Protocol, r *rng.RNG) State {
			return State{Leader: r.Bool(), Timeout: int32(r.Intn(int(p.TMax()) + 1))}
		},
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Budget:         proto.BudgetN2(5000),
	}
}

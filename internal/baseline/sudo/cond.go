package sudo

// LeaderCond tracks the number of leaders incrementally — the
// UniqueLeader stop condition in the engine's Condition form, so the
// loose-stabilization sweeps can measure the exact first interaction
// at which a unique leader exists instead of rounding to a poll
// cadence. Uniqueness is transient for this protocol (that is its
// point), which is precisely why exact hitting times need a tracker:
// a polled scan can sail straight through a short uniqueness window.
//
// The type satisfies the engine's Condition[State] interface
// structurally (this package does not import the engine). The zero
// value is usable; Init resets it for reuse across runs.
type LeaderCond struct {
	leader  []bool
	leaders int
}

// NewLeaderCond returns an empty tracker.
func NewLeaderCond() *LeaderCond { return &LeaderCond{} }

// Init (re)builds the tracker from the full configuration.
func (c *LeaderCond) Init(states []State) {
	if cap(c.leader) < len(states) {
		c.leader = make([]bool, len(states))
	}
	c.leader = c.leader[:len(states)]
	c.leaders = 0
	for i := range states {
		c.leader[i] = states[i].Leader
		if states[i].Leader {
			c.leaders++
		}
	}
}

// Update refreshes agent i's cached leader bit.
func (c *LeaderCond) Update(i int, states []State) {
	if l := states[i].Leader; l != c.leader[i] {
		c.leader[i] = l
		if l {
			c.leaders++
		} else {
			c.leaders--
		}
	}
}

// Done reports whether exactly one leader exists.
func (c *LeaderCond) Done() bool { return c.leaders == 1 }

package sudo

import (
	"testing"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func TestConvergesFromNoLeader(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		p := New(n, 8)
		r := sim.New[State](p, p.InitialStates(), uint64(n))
		steps, err := r.RunUntil(UniqueLeader, 0, int64(200*n*17))
		if err != nil {
			t.Fatalf("n=%d: no unique leader (have %d)", n, Leaders(r.States()))
		}
		if steps <= 0 {
			t.Fatal("zero steps")
		}
	}
}

func TestConvergesFromAllLeaders(t *testing.T) {
	const n = 64
	p := New(n, 8)
	r := sim.New[State](p, p.AllLeaders(), 3)
	// Duels need direct meetings: budget O(n² log n).
	if _, err := r.RunUntil(UniqueLeader, 0, int64(200*n*n)); err != nil {
		t.Fatalf("still %d leaders", Leaders(r.States()))
	}
}

func TestConvergesFromRandomConfigs(t *testing.T) {
	const n = 64
	p := New(n, 8)
	rr := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		states := make([]State, n)
		for i := range states {
			states[i] = State{Leader: rr.Bool(), Timeout: int32(rr.Intn(int(p.TMax()) + 1))}
		}
		r := sim.New[State](p, states, rr.Uint64())
		if _, err := r.RunUntil(UniqueLeader, 0, int64(500*n*n)); err != nil {
			t.Fatalf("trial %d: %d leaders", trial, Leaders(r.States()))
		}
	}
}

func TestHoldingTime(t *testing.T) {
	// Loose stabilization: a unique leader persists for a long time.
	// With factor 8 the leader must comfortably survive 200·n·log n
	// further interactions.
	const n = 128
	p := New(n, 8)
	r := sim.New[State](p, p.InitialStates(), 5)
	if _, err := r.RunUntil(UniqueLeader, 0, int64(200*n*17)); err != nil {
		t.Fatal("did not converge")
	}
	for i := 0; i < 200; i++ {
		r.Run(int64(n) * 8)
		if !UniqueLeader(r.States()) {
			t.Fatalf("leadership lost after %d interactions", r.Steps())
		}
	}
}

func TestNotSilent(t *testing.T) {
	// The defining contrast with the paper's protocol: even with a
	// unique leader, states keep changing (timeouts churn) — the
	// protocol is NOT silent, which is how it evades the Ω(n² log n)
	// lower bound for silent protocols.
	const n = 32
	p := New(n, 8)
	r := sim.New[State](p, p.InitialStates(), 9)
	if _, err := r.RunUntil(UniqueLeader, 0, int64(200*n*17)); err != nil {
		t.Fatal("did not converge")
	}
	before := r.Snapshot()
	r.Run(int64(10 * n))
	changed := false
	for i, s := range r.States() {
		if s != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("configuration froze; loosely-stabilizing LE must keep churning")
	}
}

func TestTransitionRules(t *testing.T) {
	p := New(16, 2) // TMax = 8
	// Duel.
	u, v := State{Leader: true, Timeout: 3}, State{Leader: true, Timeout: 5}
	p.Transition(&u, &v)
	if !u.Leader || v.Leader || u.Timeout != 8 || v.Timeout != 8 {
		t.Fatalf("duel gave %+v, %+v", u, v)
	}
	// Refresh by leader in either role.
	u, v = State{Leader: true, Timeout: 2}, State{Timeout: 1}
	p.Transition(&u, &v)
	if u.Timeout != 8 || v.Timeout != 8 {
		t.Fatalf("leader refresh gave %+v, %+v", u, v)
	}
	// Decaying epidemic.
	u, v = State{Timeout: 6}, State{Timeout: 2}
	p.Transition(&u, &v)
	if u.Timeout != 5 || v.Timeout != 5 {
		t.Fatalf("decay gave %+v, %+v", u, v)
	}
	// Drain promotes the responder.
	u, v = State{Timeout: 1}, State{Timeout: 1}
	p.Transition(&u, &v)
	if !v.Leader || u.Leader || v.Timeout != 8 {
		t.Fatalf("promotion gave %+v, %+v", u, v)
	}
}

func TestInvariantPreserved(t *testing.T) {
	const n = 64
	p := New(n, 4)
	r := sim.New[State](p, p.InitialStates(), 11)
	for i := 0; i < 200; i++ {
		r.Run(int64(n))
		if err := p.CheckInvariant(r.States()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, 4) },
		func() { New(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

package aware

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// MarshalState appends the protocol's full mutable run state to w: the
// agent slab field-by-field in agent order, then the reset counter.
// Field order is the schema (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		s := &states[i]
		w.Uvarint(uint64(s.Mode))
		w.Uvarint(uint64(s.Coin))
		w.Varint(int64(s.Rank))
		w.Varint(int64(s.Next))
		w.Varint(int64(s.Alive))
		w.Varint(int64(s.ResetCount))
		w.Varint(int64(s.DelayCount))
		w.Varint(int64(s.LECount))
		w.Varint(int64(s.CoinCount))
		w.Bool(s.LeaderDone)
		w.Bool(s.IsLeader)
	}
	w.Varint(p.resets.Load())
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size, restoring the reset counter into p.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.n)
	if r.Err() == nil && n != p.n {
		return nil, fmt.Errorf("aware: checkpoint holds %d agents, protocol expects %d", n, p.n)
	}
	states := make([]State, n)
	for i := range states {
		s := &states[i]
		s.Mode = Mode(r.Uvarint())
		s.Coin = uint8(r.Uvarint())
		s.Rank = int32(r.Int())
		s.Next = int32(r.Int())
		s.Alive = int32(r.Int())
		s.ResetCount = int32(r.Int())
		s.DelayCount = int32(r.Int())
		s.LECount = int32(r.Int())
		s.CoinCount = int32(r.Int())
		s.LeaderDone = r.Bool()
		s.IsLeader = r.Bool()
	}
	p.resets.Store(r.Varint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aware: %w", err)
	}
	return states, nil
}

package aware

import (
	"fmt"

	"ssrank/internal/ckpt"
)

// EncodeAgent appends one agent's state field-by-field — the per-agent
// unit of MarshalState's slab section, shared with the distributed
// wire layer so the two encodings cannot drift
// (proto.Descriptor.EncodeAgent).
func EncodeAgent(p *Protocol, s *State, w *ckpt.Writer) {
	w.Uvarint(uint64(s.Mode))
	w.Uvarint(uint64(s.Coin))
	w.Varint(int64(s.Rank))
	w.Varint(int64(s.Next))
	w.Varint(int64(s.Alive))
	w.Varint(int64(s.ResetCount))
	w.Varint(int64(s.DelayCount))
	w.Varint(int64(s.LECount))
	w.Varint(int64(s.CoinCount))
	w.Bool(s.LeaderDone)
	w.Bool(s.IsLeader)
}

// DecodeAgent decodes one agent written by EncodeAgent; errors stick
// in r.
func DecodeAgent(p *Protocol, r *ckpt.Reader) State {
	var s State
	s.Mode = Mode(r.Uvarint())
	s.Coin = uint8(r.Uvarint())
	s.Rank = int32(r.Int())
	s.Next = int32(r.Int())
	s.Alive = int32(r.Int())
	s.ResetCount = int32(r.Int())
	s.DelayCount = int32(r.Int())
	s.LECount = int32(r.Int())
	s.CoinCount = int32(r.Int())
	s.LeaderDone = r.Bool()
	s.IsLeader = r.Bool()
	return s
}

// Instr captures the reset counter as a one-element vector; vectors
// over disjoint interaction sets sum element-wise
// (proto.Descriptor.Instr).
func Instr(p *Protocol) []int64 {
	return []int64{p.resets.Load()}
}

// SetInstr restores a vector captured by Instr.
func SetInstr(p *Protocol, v []int64) {
	if len(v) > 0 {
		p.resets.Store(v[0])
	}
}

// MarshalState appends the protocol's full mutable run state to w: the
// agent slab field-by-field in agent order (EncodeAgent per agent),
// then the reset counter. Field order is the schema
// (proto.Descriptor.MarshalState).
func MarshalState(p *Protocol, states []State, w *ckpt.Writer) {
	w.Uvarint(uint64(len(states)))
	for i := range states {
		EncodeAgent(p, &states[i], w)
	}
	w.Varint(p.resets.Load())
}

// UnmarshalState decodes a slab written by MarshalState for the same
// population size, restoring the reset counter into p.
func UnmarshalState(p *Protocol, r *ckpt.Reader) ([]State, error) {
	n := r.Count(p.n)
	if r.Err() == nil && n != p.n {
		return nil, fmt.Errorf("aware: checkpoint holds %d agents, protocol expects %d", n, p.n)
	}
	states := make([]State, n)
	for i := range states {
		states[i] = DecodeAgent(p, r)
	}
	p.resets.Store(r.Varint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("aware: %w", err)
	}
	return states, nil
}

package aware

import (
	"math"
	"testing"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func budget(n int, c float64) int64 {
	return int64(c * float64(n) * float64(n) * math.Log2(float64(n)))
}

func mustStabilize(t *testing.T, p *Protocol, states []State, seed uint64) int64 {
	t.Helper()
	r := sim.New[State](p, states, seed)
	steps, err := r.RunUntil(Valid, 0, budget(p.N(), 2000))
	if err != nil {
		t.Fatalf("n=%d seed=%d: not stabilized (ranked=%d resets=%d)",
			p.N(), seed, RankedCount(r.States()), p.Resets())
	}
	return steps
}

func TestStabilizesFromFreshStart(t *testing.T) {
	for _, n := range []int{4, 16, 64, 128} {
		for seed := uint64(1); seed <= 3; seed++ {
			p := New(n, DefaultParams())
			mustStabilize(t, p, p.InitialStates(), seed)
		}
	}
}

func TestStabilizesFromAdversarialConfigs(t *testing.T) {
	const n = 64
	p := New(n, DefaultParams())

	// All agents claim rank 1.
	states := make([]State, n)
	for i := range states {
		states[i] = Ranked(1)
	}
	mustStabilize(t, New(n, DefaultParams()), states, 2)

	// Two leaders with inconsistent counters.
	states = p.InitialStates()
	states[0] = State{Mode: ModeLeader, Coin: 0, Next: 5, Alive: p.LMax()}
	states[1] = State{Mode: ModeLeader, Coin: 1, Next: 9, Alive: p.LMax()}
	mustStabilize(t, New(n, DefaultParams()), states, 3)

	// Random ranks with holes and duplicates plus a stale leader.
	r := rng.New(77)
	states = make([]State, n)
	for i := range states {
		states[i] = Ranked(int32(1 + r.Intn(n)))
	}
	states[n-1] = State{Mode: ModeLeader, Coin: 0, Next: int32(2 + r.Intn(n-1)), Alive: p.LMax()}
	mustStabilize(t, New(n, DefaultParams()), states, 4)
}

func TestLeaderAssignsSequentially(t *testing.T) {
	p := New(8, DefaultParams())
	leader := State{Mode: ModeLeader, Coin: 0, Next: 2, Alive: p.LMax()}
	for want := int32(2); want <= 8; want++ {
		blank := State{Mode: ModeBlank, Coin: 1, Alive: p.LMax()}
		p.Transition(&leader, &blank)
		if blank.Mode != ModeRanked || blank.Rank != want {
			t.Fatalf("assignment %d: %+v", want, blank)
		}
	}
	if leader != Ranked(1) {
		t.Fatalf("leader after final assignment: %+v, want rank(1)", leader)
	}
}

func TestLeaderRefreshesOnTails(t *testing.T) {
	p := New(8, DefaultParams())
	leader := State{Mode: ModeLeader, Coin: 0, Next: 2, Alive: p.LMax()}
	blank := State{Mode: ModeBlank, Coin: 0, Alive: 2}
	p.Transition(&leader, &blank)
	if blank.Mode != ModeBlank || blank.Alive != p.LMax() {
		t.Fatalf("tails blank: %+v, want refreshed blank", blank)
	}
	if leader.Next != 2 {
		t.Fatalf("leader advanced on tails: %+v", leader)
	}
}

func TestErrorDetectionRules(t *testing.T) {
	cases := []struct {
		name string
		u, v State
	}{
		{"duplicate ranks", Ranked(5), Ranked(5)},
		{"two leaders", State{Mode: ModeLeader, Next: 2, Alive: 9}, State{Mode: ModeLeader, Next: 3, Alive: 9}},
		{"leader meets unassigned rank", State{Mode: ModeLeader, Next: 4, Alive: 9}, Ranked(7)},
		{"leader meets rank one", State{Mode: ModeLeader, Next: 4, Alive: 9}, Ranked(1)},
		{"ranked initiator meets leader claiming it", Ranked(7), State{Mode: ModeLeader, Next: 4, Alive: 9}},
	}
	for _, tc := range cases {
		p := New(8, DefaultParams())
		u, v := tc.u, tc.v
		p.Transition(&u, &v)
		if p.Resets() != 1 {
			t.Errorf("%s: resets = %d, want 1", tc.name, p.Resets())
		}
	}

	// Consistent leader/rank pairs do not reset.
	p := New(8, DefaultParams())
	u := State{Mode: ModeLeader, Next: 6, Alive: 9}
	v := Ranked(4)
	p.Transition(&u, &v)
	if p.Resets() != 0 {
		t.Fatal("consistent pair triggered a reset")
	}
}

func TestQuadraticLogGrowthNotCubic(t *testing.T) {
	// aware matches StableRanking's O(n² log n): normalized time must
	// stay bounded as n grows.
	if testing.Short() {
		t.Skip("growth check is slow")
	}
	norm := func(n int) float64 {
		p := New(n, DefaultParams())
		steps := mustStabilize(t, p, p.InitialStates(), 1)
		return float64(steps) / (float64(n) * float64(n) * math.Log2(float64(n)))
	}
	small, large := norm(32), norm(256)
	if large > 10*small+10 {
		t.Fatalf("normalized time grew from %.2f to %.2f; not O(n² log n)", small, large)
	}
}

func TestClosure(t *testing.T) {
	const n = 16
	p := New(n, DefaultParams())
	states := make([]State, n)
	for i := range states {
		states[i] = Ranked(int32(i + 1))
	}
	r := sim.New[State](p, states, 5)
	r.Run(int64(20 * n * n))
	for i, s := range r.States() {
		if s != Ranked(int32(i+1)) {
			t.Fatalf("agent %d changed in legal config: %+v", i, s)
		}
	}
	if p.Resets() != 0 {
		t.Fatalf("%d resets in legal config", p.Resets())
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, DefaultParams()) },
		func() { New(8, Params{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStabilizesFromRandomConfigs(t *testing.T) {
	// Self-stabilization over the full declared state space.
	const n = 64
	for seed := uint64(1); seed <= 8; seed++ {
		p := New(n, DefaultParams())
		states := p.RandomConfig(rng.New(seed * 31))
		if err := p.CheckInvariant(states); err != nil {
			t.Fatalf("seed %d: random config invalid: %v", seed, err)
		}
		mustStabilize(t, p, states, seed)
	}
}

func TestInvariantPreservedUnderTransitions(t *testing.T) {
	const n = 64
	p := New(n, DefaultParams())
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		u, v := p.RandomState(r), p.RandomState(r)
		p.Transition(&u, &v)
		if err := p.CheckInvariant([]State{u, v}); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

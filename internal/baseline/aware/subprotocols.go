package aware

// propagateReset is the same reset epidemic as stable's (§V-A),
// specialized to this package's State.
func (p *Protocol) propagateReset(u, v *State) {
	uProp := u.Mode == ModeReset && u.ResetCount > 0
	vProp := v.Mode == ModeReset && v.ResetCount > 0
	uDorm := u.Mode == ModeReset && u.ResetCount == 0
	vDorm := v.Mode == ModeReset && v.ResetCount == 0

	switch {
	case uProp && vProp:
		m := u.ResetCount
		if v.ResetCount > m {
			m = v.ResetCount
		}
		m--
		u.ResetCount, v.ResetCount = m, m
	case uProp:
		u.ResetCount--
		if vDorm {
			v.DelayCount--
		} else {
			coin := uint8(0)
			if v.HasCoin() {
				coin = v.Coin
			}
			*v = State{Mode: ModeReset, Coin: coin, ResetCount: u.ResetCount, DelayCount: p.dMax}
		}
	case vProp:
		v.ResetCount--
		if uDorm {
			u.DelayCount--
		} else {
			coin := uint8(0)
			if u.HasCoin() {
				coin = u.Coin
			}
			*u = State{Mode: ModeReset, Coin: coin, ResetCount: v.ResetCount, DelayCount: p.dMax}
		}
	default:
		if uDorm {
			u.DelayCount--
		}
		if vDorm {
			v.DelayCount--
		}
	}

	p.awaken(u)
	p.awaken(v)
}

func (p *Protocol) awaken(s *State) {
	if s.Mode == ModeReset && s.ResetCount <= 0 && s.DelayCount <= 0 {
		*s = p.LEInitial(s.Coin)
	}
}

// fastLE is the lottery leader election of Protocol 5; the winner
// becomes the aware leader with Next = 2 instead of a waiting agent.
func (p *Protocol) fastLE(u, v *State) {
	u.LECount--
	if u.LECount <= 0 {
		p.TriggerReset(u)
		return
	}
	if !u.LeaderDone {
		if v.Coin == 0 {
			u.LeaderDone = true
			u.CoinCount = 0 // single done state per LECount value
		} else {
			u.CoinCount--
			if u.CoinCount <= 0 {
				u.CoinCount = 0
				u.IsLeader = true
				u.LeaderDone = true
			}
		}
	}
	if u.IsLeader && u.LECount >= p.leBudget/2 {
		*u = State{Mode: ModeLeader, Coin: u.Coin, Next: 2, Alive: p.lMax}
	}
}

// Valid reports whether the configuration is a permutation of 1..n.
func Valid(states []State) bool {
	seen := make([]bool, len(states)+1)
	for i := range states {
		s := &states[i]
		if s.Mode != ModeRanked || s.Rank < 1 || int(s.Rank) > len(states) || seen[s.Rank] {
			return false
		}
		seen[s.Rank] = true
	}
	return true
}

// RankOf returns the agent's rank, or 0 while unranked — the extractor
// behind the engine's incremental validity condition.
func RankOf(s *State) int {
	if s.Mode != ModeRanked {
		return 0
	}
	return int(s.Rank)
}

// RankedCount returns the number of ranked agents.
func RankedCount(states []State) int {
	c := 0
	for i := range states {
		if states[i].Mode == ModeRanked {
			c++
		}
	}
	return c
}

package aware

import (
	"ssrank/internal/proto"
	"ssrank/internal/rng"
)

// Describe returns the protocol's descriptor. The aware-leader
// baseline is self-stabilizing, so alongside the fresh start it
// accepts a uniformly random configuration (RandomConfig — the
// adversary of its stabilization claim) and supports fault injection.
func Describe() proto.Descriptor[State, *Protocol] {
	return proto.Descriptor[State, *Protocol]{
		Name:            "aware",
		Inits:           []string{"fresh", "random"},
		SelfStabilizing: true,
		New:             func(n int) *Protocol { return New(n, DefaultParams()) },
		Init: func(p *Protocol, init string, r *rng.RNG) []State {
			switch init {
			case "fresh":
				return p.InitialStates()
			case "random":
				return p.RandomConfig(r)
			}
			return nil
		},
		Valid:          Valid,
		Rank:           RankOf,
		Resets:         (*Protocol).Resets,
		RandomState:    (*Protocol).RandomState,
		MarshalState:   MarshalState,
		UnmarshalState: UnmarshalState,
		EncodeAgent:    EncodeAgent,
		DecodeAgent:    DecodeAgent,
		Instr:          Instr,
		SetInstr:       SetInstr,
		Budget:         proto.BudgetN2LogN(3000),
	}
}

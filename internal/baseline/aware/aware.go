// Package aware implements a self-stabilizing ranking protocol with an
// *aware* leader, in the style of the O(n)-state silent protocol of
// Burman et al. (PODC'21) that the paper's introduction contrasts with.
//
// The leader here stores the next rank to assign — precisely the design
// the paper's protocol goes to great lengths to avoid, because a leader
// state (1, next) costs n extra states: the protocol uses n + Ω(n)
// states in total, against StableRanking's n + O(log² n). Running time
// remains O(n² log n), so the two protocols differ exactly in the
// dimension the paper optimizes (overhead states), which is what the
// state-census experiment E3 measures.
//
// Structure mirrors StableRanking: the same PropagateReset epidemic and
// the same lottery-style leader election, but the main protocol is the
// trivial one — the aware leader implicitly holds rank 1 and hands out
// ranks 2..n in order; no phases, no waiting, no unaware leader.
package aware

import (
	"fmt"
	"math"
	"sync/atomic"

	"ssrank/internal/leaderelect"
)

// Mode identifies the subprotocol an agent currently executes.
type Mode uint8

const (
	// ModeRanked is a ranked agent (rank only — no coin, no counter).
	ModeRanked Mode = iota + 1
	// ModeLeader is the aware leader: implicitly rank 1, stores the
	// next rank to assign in [2, n+1] — the Ω(n) overhead.
	ModeLeader
	// ModeBlank is an unranked agent awaiting a rank.
	ModeBlank
	// ModeReset is a PropagateReset agent (propagating or dormant).
	ModeReset
	// ModeLE is a lottery leader-election agent.
	ModeLE
)

// State is the per-agent state.
type State struct {
	Mode Mode
	Coin uint8 // synthetic coin; all modes except ModeRanked

	Rank int32 // ModeRanked
	Next int32 // ModeLeader: next rank to assign, in [2, n+1]

	Alive int32 // ModeBlank and ModeLeader: liveness counter

	ResetCount int32 // ModeReset
	DelayCount int32 // ModeReset

	LECount    int32 // ModeLE
	CoinCount  int32 // ModeLE
	LeaderDone bool  // ModeLE
	IsLeader   bool  // ModeLE
}

// Ranked returns a ranked-agent state.
func Ranked(rank int32) State { return State{Mode: ModeRanked, Rank: rank} }

// HasCoin reports whether the state carries a synthetic coin.
func (s *State) HasCoin() bool { return s.Mode != ModeRanked }

// isUnranked reports whether the agent is a main-protocol agent without
// a final rank (blank or the leader).
func (s *State) isUnranked() bool { return s.Mode == ModeBlank || s.Mode == ModeLeader }

// isMain reports whether the agent executes the main protocol.
func (s *State) isMain() bool {
	return s.Mode == ModeRanked || s.Mode == ModeBlank || s.Mode == ModeLeader
}

// Protocol is the aware-leader ranking protocol. Like stable.Protocol
// it counts the resets it triggers through an atomic counter, so
// Transition is safe to invoke concurrently on disjoint state pairs;
// still construct one instance per trial so counts stay per-run.
type Protocol struct {
	n        int
	lMax     int32
	leBudget int32
	rMax     int32
	dMax     int32
	coinInit int32

	resets atomic.Int64
}

// Params are the tunable constants; see stable.Params for their roles.
type Params struct {
	CLive          float64
	RMaxFactor     float64
	DMaxFactor     float64
	LEBudgetFactor float64
}

// DefaultParams match the constants used for StableRanking so that
// comparisons isolate the protocol design, not the tuning.
func DefaultParams() Params {
	return Params{CLive: 4, RMaxFactor: 4, DMaxFactor: 4, LEBudgetFactor: 8}
}

// New builds the protocol for n ≥ 2 agents.
func New(n int, params Params) *Protocol {
	if n < 2 {
		panic(fmt.Sprintf("aware: n must be >= 2, got %d", n))
	}
	if params.CLive <= 0 || params.RMaxFactor <= 0 || params.DMaxFactor <= 0 || params.LEBudgetFactor <= 0 {
		panic(fmt.Sprintf("aware: all parameter factors must be positive: %+v", params))
	}
	lg := float64(leaderelect.CeilLog2(n))
	ceil := func(f float64) int32 {
		v := int32(math.Ceil(f))
		if v < 1 {
			v = 1
		}
		return v
	}
	return &Protocol{
		n:        n,
		lMax:     ceil(params.CLive * lg),
		leBudget: ceil(params.LEBudgetFactor * lg),
		rMax:     ceil(params.RMaxFactor * lg),
		dMax:     ceil(params.DMaxFactor * lg),
		coinInit: ceil(lg),
	}
}

// N returns the population size.
func (p *Protocol) N() int { return p.n }

// LMax returns the liveness cap.
func (p *Protocol) LMax() int32 { return p.lMax }

// Resets returns the number of resets triggered by this instance.
func (p *Protocol) Resets() int64 { return p.resets.Load() }

// LEInitial returns the leader-election start state with the given
// coin.
func (p *Protocol) LEInitial(coin uint8) State {
	return State{Mode: ModeLE, Coin: coin, LECount: p.leBudget, CoinCount: p.coinInit}
}

// InitialStates returns the canonical fresh start (all leader-electing).
func (p *Protocol) InitialStates() []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.LEInitial(uint8(i & 1))
	}
	return states
}

// TriggerReset puts s into the triggered PropagateReset state.
func (p *Protocol) TriggerReset(s *State) {
	coin := uint8(0)
	if s.HasCoin() {
		coin = s.Coin
	}
	*s = State{Mode: ModeReset, Coin: coin, ResetCount: p.rMax, DelayCount: p.dMax}
	p.resets.Add(1)
}

// Transition is the dispatcher, structured like stable's Protocol 3.
func (p *Protocol) Transition(u, v *State) {
	switch {
	case u.Mode == ModeReset || v.Mode == ModeReset:
		p.propagateReset(u, v)
	case u.Mode == ModeLE && v.Mode == ModeLE:
		p.fastLE(u, v)
	case u.Mode == ModeLE && v.isMain():
		*u = State{Mode: ModeBlank, Coin: u.Coin, Alive: p.lMax}
	case v.Mode == ModeLE && u.isMain():
		*v = State{Mode: ModeBlank, Coin: v.Coin, Alive: p.lMax}
	case u.isMain() && v.isMain():
		p.rank(u, v)
	}
	if v.HasCoin() {
		v.Coin ^= 1
	}
}

// TransitionT applies one interaction exactly like Transition and
// reports which agents' rank projection (RankOf) changed — the
// TouchReporter capability behind the engine's touch-aware exact
// stopping.
func (p *Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	ru, rv := RankOf(u), RankOf(v)
	p.Transition(u, v)
	return RankOf(u) != ru, RankOf(v) != rv
}

// rank is the aware-leader main protocol.
func (p *Protocol) rank(u, v *State) {
	n := int32(p.n)

	// Error detection: duplicate ranks, two leaders, or a leader that
	// meets a rank it has not assigned yet (its own implicit rank 1, or
	// any rank ≥ next).
	switch {
	case u.Mode == ModeRanked && v.Mode == ModeRanked && u.Rank == v.Rank,
		u.Mode == ModeLeader && v.Mode == ModeLeader:
		p.TriggerReset(u)
		return
	case u.Mode == ModeLeader && v.Mode == ModeRanked && (v.Rank >= u.Next || v.Rank == 1),
		v.Mode == ModeLeader && u.Mode == ModeRanked && (u.Rank >= v.Next || u.Rank == 1):
		p.TriggerReset(u)
		return
	}

	// Liveness: identical scheme to Ranking+ — unranked pairs adopt
	// max−1; agents ranked n−1 or n drain the responder.
	if u.isUnranked() && v.isUnranked() {
		m := u.Alive
		if v.Alive > m {
			m = v.Alive
		}
		m--
		if m <= 0 {
			// Both witnesses reset: aliveCount = 0 lies outside the
			// declared state space (same resolution as Ranking+, see
			// DESIGN.md note 4).
			p.TriggerReset(u)
			p.TriggerReset(v)
			return
		}
		u.Alive, v.Alive = m, m
	}
	if u.Mode == ModeRanked && u.Rank >= n-1 && v.isUnranked() {
		if v.Alive <= 1 {
			p.TriggerReset(u)
			p.TriggerReset(v)
			return
		}
		v.Alive--
	}

	// Assignment: the aware leader hands out ranks to blank responders
	// on heads, refreshes their liveness on tails.
	if u.Mode == ModeLeader && v.Mode == ModeBlank {
		if v.Coin == 0 {
			v.Alive = p.lMax
			return
		}
		*v = Ranked(u.Next)
		u.Next++
		if u.Next > n {
			// All ranks assigned; the leader takes its implicit rank 1
			// and the protocol becomes silent.
			*u = Ranked(1)
		}
	}
}

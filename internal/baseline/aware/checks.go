package aware

import (
	"fmt"

	"ssrank/internal/rng"
)

// CheckInvariant verifies that every agent's variables lie inside the
// declared state space.
func (p *Protocol) CheckInvariant(states []State) error {
	n := int32(p.n)
	for i := range states {
		s := &states[i]
		if s.HasCoin() && s.Coin > 1 {
			return fmt.Errorf("agent %d: coin %d not a bit", i, s.Coin)
		}
		switch s.Mode {
		case ModeRanked:
			if s.Rank < 1 || s.Rank > n {
				return fmt.Errorf("agent %d: rank %d outside [1, %d]", i, s.Rank, n)
			}
		case ModeLeader:
			if s.Next < 2 || s.Next > n {
				return fmt.Errorf("agent %d: leader next %d outside [2, %d]", i, s.Next, n)
			}
			if s.Alive < 1 || s.Alive > p.lMax {
				return fmt.Errorf("agent %d: leader alive %d outside [1, %d]", i, s.Alive, p.lMax)
			}
		case ModeBlank:
			if s.Alive < 1 || s.Alive > p.lMax {
				return fmt.Errorf("agent %d: blank alive %d outside [1, %d]", i, s.Alive, p.lMax)
			}
		case ModeReset:
			if s.ResetCount < 0 || s.ResetCount > p.rMax || s.DelayCount < 0 || s.DelayCount > p.dMax {
				return fmt.Errorf("agent %d: reset counters (%d, %d) out of range", i, s.ResetCount, s.DelayCount)
			}
			if s.ResetCount == 0 && s.DelayCount == 0 {
				return fmt.Errorf("agent %d: reset agent with both counters zero", i)
			}
		case ModeLE:
			if s.LECount < 1 || s.LECount > p.leBudget {
				return fmt.Errorf("agent %d: LECount %d outside [1, %d]", i, s.LECount, p.leBudget)
			}
			if s.CoinCount < 0 || s.CoinCount > p.coinInit {
				return fmt.Errorf("agent %d: coinCount %d outside [0, %d]", i, s.CoinCount, p.coinInit)
			}
		default:
			return fmt.Errorf("agent %d: invalid mode %d", i, s.Mode)
		}
	}
	return nil
}

// RandomState draws a uniformly random state from the declared state
// space (the self-stabilization adversary for this baseline).
func (p *Protocol) RandomState(r *rng.RNG) State {
	coin := uint8(r.Intn(2))
	switch Mode(1 + r.Intn(5)) {
	case ModeRanked:
		return Ranked(int32(1 + r.Intn(p.n)))
	case ModeLeader:
		return State{
			Mode:  ModeLeader,
			Coin:  coin,
			Next:  int32(2 + r.Intn(p.n-1)),
			Alive: int32(1 + r.Intn(int(p.lMax))),
		}
	case ModeBlank:
		return State{Mode: ModeBlank, Coin: coin, Alive: int32(1 + r.Intn(int(p.lMax)))}
	case ModeReset:
		for {
			rc, dc := int32(r.Intn(int(p.rMax)+1)), int32(r.Intn(int(p.dMax)+1))
			if rc != 0 || dc != 0 {
				return State{Mode: ModeReset, Coin: coin, ResetCount: rc, DelayCount: dc}
			}
		}
	default:
		done := r.Bool()
		return State{
			Mode:       ModeLE,
			Coin:       coin,
			LECount:    int32(1 + r.Intn(int(p.leBudget))),
			CoinCount:  int32(r.Intn(int(p.coinInit) + 1)),
			LeaderDone: done,
			IsLeader:   done && r.Bool(),
		}
	}
}

// RandomConfig draws an arbitrary configuration.
func (p *Protocol) RandomConfig(r *rng.RNG) []State {
	states := make([]State, p.n)
	for i := range states {
		states[i] = p.RandomState(r)
	}
	return states
}

package epidemic

import (
	"testing"
	"testing/quick"

	"ssrank/internal/rng"
	"ssrank/internal/sim"
)

func TestInitialStates(t *testing.T) {
	states := InitialStates(10, 4)
	if !states[0].Member || !states[0].Infected {
		t.Fatalf("agent 0: %+v", states[0])
	}
	members, infected := 0, 0
	for _, s := range states {
		if s.Member {
			members++
		}
		if s.Infected {
			infected++
		}
	}
	if members != 4 || infected != 1 {
		t.Fatalf("members=%d infected=%d", members, infected)
	}
}

func TestInitialStatesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { InitialStates(5, 0) },
		func() { InitialStates(5, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTransitionOneWay(t *testing.T) {
	p := Protocol{}
	inf := State{Member: true, Infected: true}
	sus := State{Member: true}
	out := State{}

	u, v := inf, sus
	p.Transition(&u, &v)
	if !v.Infected {
		t.Fatal("responder not infected by infected initiator")
	}

	// One-way: infected responder does not infect the initiator.
	u, v = sus, inf
	p.Transition(&u, &v)
	if u.Infected {
		t.Fatal("initiator infected by responder (epidemic must be one-way)")
	}

	// Non-members neither transmit nor receive.
	u, v = inf, out
	p.Transition(&u, &v)
	if v.Infected {
		t.Fatal("non-member infected")
	}
}

func TestEpidemicCompletesViaEngine(t *testing.T) {
	const n, m = 128, 50
	r := sim.New[State](Protocol{}, InitialStates(n, m), 3)
	steps, err := r.RunUntil(Done, 0, 10_000_000)
	if err != nil {
		t.Fatalf("epidemic incomplete: %d infected of %d", InfectedCount(r.States()), m)
	}
	if steps <= 0 {
		t.Fatal("zero steps")
	}
}

func TestCompletionTimeWithinLemma14Bound(t *testing.T) {
	// Lemma 14 with γ = 1: violation probability ≤ 2/n per trial.
	const n = 256
	const gamma = 1.0
	for _, m := range []int{2, 16, 64, 256} {
		r := rng.New(uint64(m))
		bound := Bound(n, m, gamma)
		violations := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			if float64(CompletionTime(n, m, r)) > bound {
				violations++
			}
		}
		if violations > 1 {
			t.Fatalf("m=%d: %d/%d trials exceeded the Lemma 14 bound %.0f", m, violations, trials, bound)
		}
	}
}

func TestCompletionTimeScalesInverselyWithM(t *testing.T) {
	// Restricting an epidemic to a small subset slows it by ≈ n/m — the
	// reason waiting phases lengthen as ranking progresses (§IV-A).
	const n = 512
	r := rng.New(7)
	avg := func(m int) float64 {
		var sum int64
		const trials = 10
		for i := 0; i < trials; i++ {
			sum += CompletionTime(n, m, r)
		}
		return float64(sum) / trials
	}
	full, eighth := avg(n), avg(n/8)
	if eighth < 2*full {
		t.Fatalf("OWE(n, n/8) = %.0f not meaningfully slower than OWE(n, n) = %.0f", eighth, full)
	}
}

func TestBoundEdgeCases(t *testing.T) {
	if b := Bound(100, 1, 1); b != 0 {
		t.Fatalf("Bound(m=1) = %v, want 0", b)
	}
	if b := Bound(100, 50, 1); b <= 0 {
		t.Fatalf("Bound = %v, want positive", b)
	}
}

func TestInfectedNeverDecreasesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(100)
		m := 2 + r.Intn(n-1)
		states := InitialStates(n, m)
		run := sim.New[State](Protocol{}, states, seed)
		prev := 1
		for i := 0; i < 50; i++ {
			run.Run(int64(n))
			cur := InfectedCount(run.States())
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package epidemic implements one-way epidemics, the information-
// spreading primitive underlying both the start-of-ranking broadcast
// (Protocol 1 lines 7–9) and the phase-transition broadcast (Protocol 2
// lines 12–14) of the paper.
//
// In a one-way epidemic over a subset of m "susceptible" agents inside a
// population of n, an interaction infects the responder whenever the
// initiator is infected. Lemma 14 bounds the completion time OWE(n, m):
//
//	Pr[ X > 3·n²/m · (log m + 2γ·log n) ] ≤ 2n^{-γ}.
//
// The package provides the protocol itself (for simulation and tests)
// and the analytic bound (for experiment E13).
package epidemic

import (
	"math"

	"ssrank/internal/rng"
)

// State is the per-agent epidemic state.
type State struct {
	// Member reports whether the agent belongs to the m-subset over
	// which the epidemic spreads; non-members never change state and
	// never transmit.
	Member bool
	// Infected reports whether the agent has received the epidemic.
	Infected bool
}

// Protocol is the one-way epidemic population protocol.
type Protocol struct{}

// Transition infects the responder if the initiator is infected and
// both belong to the spreading subset.
func (Protocol) Transition(u, v *State) {
	if u.Member && v.Member && u.Infected {
		v.Infected = true
	}
}

// TransitionT applies Transition and reports which agent's infection
// bit — the projection the epidemic's stop condition watches — changed.
// Only a previously uninfected responder can change, exactly when the
// infection crosses.
func (Protocol) TransitionT(u, v *State) (uTouched, vTouched bool) {
	if u.Member && v.Member && u.Infected && !v.Infected {
		v.Infected = true
		return false, true
	}
	return false, false
}

// InitialStates returns a population of n agents of which the first m
// are members and exactly one member (index 0) is infected. It panics
// if the parameters are out of range.
func InitialStates(n, m int) []State {
	if m < 1 || m > n {
		panic("epidemic: need 1 <= m <= n")
	}
	states := make([]State, n)
	for i := 0; i < m; i++ {
		states[i].Member = true
	}
	states[0].Infected = true
	return states
}

// Done reports whether every member is infected.
func Done(states []State) bool {
	for i := range states {
		if states[i].Member && !states[i].Infected {
			return false
		}
	}
	return true
}

// InfectedCount returns the number of infected members.
func InfectedCount(states []State) int {
	c := 0
	for i := range states {
		if states[i].Infected {
			c++
		}
	}
	return c
}

// Bound returns the Lemma 14 upper bound 3·n²/m·(log m + 2γ·log n) on
// the completion time of OWE(n, m). Logarithms are natural, matching
// the tail-bound derivations in Appendix A.
func Bound(n, m int, gamma float64) float64 {
	if m < 2 {
		// A single member is trivially done; return 0 to keep callers
		// total.
		return 0
	}
	return 3 * float64(n) * float64(n) / float64(m) *
		(math.Log(float64(m)) + 2*gamma*math.Log(float64(n)))
}

// CompletionTime simulates one epidemic over m members in a population
// of n and returns the number of interactions until every member is
// infected. It uses direct pair sampling rather than the generic engine
// for speed in tight experiment loops.
func CompletionTime(n, m int, r *rng.RNG) int64 {
	states := InitialStates(n, m)
	remaining := m - 1
	var steps int64
	for remaining > 0 {
		a, b := r.Pair(n)
		steps++
		u, v := &states[a], &states[b]
		if u.Member && v.Member && u.Infected && !v.Infected {
			v.Infected = true
			remaining--
		}
	}
	return steps
}

// Package ckpt provides the binary codec shared by every layer of the
// checkpoint format: varint-framed primitives in the style of msgnet's
// Trace encoding, behind an appending Writer and a sticky-error Reader.
//
// The encoding is canonical — equal values encode to equal bytes — so
// checkpoint byte-identity is meaningful: the golden-fixture test and
// the result cache both rely on one logical state having exactly one
// encoding. Field order is the serialization schema; there are no tags
// and no self-description. Evolving a format therefore means bumping
// its version byte, never reordering fields under an existing version.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends primitives to a growing buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer. The Writer retains ownership; the
// caller must copy if it keeps writing afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends b verbatim (magic strings, pre-encoded sections).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Uvarint appends v in unsigned varint encoding.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends v in zigzag varint encoding.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// U64 appends v as a fixed-width little-endian 64-bit word — used for
// generator states, where varint framing would obscure the fixed
// 256-bit layout.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// F64 appends the IEEE-754 bit pattern of v, preserving it exactly
// (NaN payloads and signed zeros included).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends v as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends v length-prefixed.
func (w *Writer) String(v string) {
	w.Uvarint(uint64(len(v)))
	w.buf = append(w.buf, v...)
}

// Reader decodes a buffer written by Writer. Decoding errors stick:
// after the first malformed read every subsequent read returns zero
// values, so decode sequences can run unguarded and check Err once.
type Reader struct {
	data []byte
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) }

// Close verifies the buffer was consumed exactly and returns the first
// error of the whole decode (sticky error first, trailing bytes
// otherwise).
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("ckpt: %d trailing bytes after decode", len(r.data))
	}
	return nil
}

// fail records the first error.
func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: truncated or malformed %s", what)
	}
}

// Expect consumes len(magic) bytes and verifies they equal magic.
func (r *Reader) Expect(magic []byte) {
	if r.err != nil {
		return
	}
	if len(r.data) < len(magic) || string(r.data[:len(magic)]) != string(magic) {
		r.fail(fmt.Sprintf("header (want %q)", magic))
		return
	}
	r.data = r.data[len(magic):]
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

// Varint decodes a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

// U64 decodes a fixed-width little-endian 64-bit word.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

// F64 decodes an IEEE-754 bit pattern written by Writer.F64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool decodes one byte as a boolean, rejecting values other than 0
// and 1 (canonical encodings have exactly one representation).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.data) < 1 || r.data[0] > 1 {
		r.fail("bool")
		return false
	}
	v := r.data[0] == 1
	r.data = r.data[1:]
	return v
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.data)) < n {
		r.fail("string")
		return ""
	}
	v := string(r.data[:n])
	r.data = r.data[n:]
	return v
}

// Int decodes a zigzag varint and narrows it to int, failing on
// overflow so corrupted counts cannot wrap into plausible values.
func (r *Reader) Int() int {
	v := r.Varint()
	if r.err == nil && (v > math.MaxInt || v < math.MinInt) {
		r.fail("int (out of range)")
		return 0
	}
	return int(v)
}

// Count decodes an unsigned varint as a length/count, enforcing the
// given upper bound so a corrupted length cannot drive allocation.
func (r *Reader) Count(max int) int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(max) {
		r.fail(fmt.Sprintf("count (%d exceeds bound %d)", v, max))
		return 0
	}
	return int(v)
}

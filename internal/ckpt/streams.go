package ckpt

import (
	"math"

	"ssrank/internal/rng"
)

// Stream-state sections shared by every layer that serializes engine
// position: the facade checkpoint format (engine section of an "sscp"
// blob), and the distributed runtime's wire frames, whose Assign
// payload is a per-shard-group sub-blob of exactly these sections. The
// layouts here were originally private to the facade; they are part of
// the frozen sscp v1 encoding, so they must never change shape — a new
// layout means a new function, not an edit.

// WritePairState appends a pair-stream position: n uvarint, 4×u64
// source state, consumed uvarint, filled bool.
func WritePairState(w *Writer, st rng.PairBatchState) {
	w.Uvarint(uint64(st.N))
	for _, word := range st.Src {
		w.U64(word)
	}
	w.Uvarint(uint64(st.Consumed))
	w.Bool(st.Filled)
}

// ReadPairState decodes a stream position written by WritePairState.
// Errors stick in r; rng.PairBatch.SetState validates the decoded
// values against the live sampler.
func ReadPairState(r *Reader) rng.PairBatchState {
	var st rng.PairBatchState
	st.N = r.Count(math.MaxInt32)
	for i := range st.Src {
		st.Src[i] = r.U64()
	}
	st.Consumed = r.Count(math.MaxInt32)
	st.Filled = r.Bool()
	return st
}

// WriteRNGState appends a bare xoshiro256** state — the full position
// of an unbuffered stream (the sharded master and cross-class
// streams).
func WriteRNGState(w *Writer, st [4]uint64) {
	for _, word := range st {
		w.U64(word)
	}
}

// ReadRNGState decodes a state written by WriteRNGState. Errors stick
// in r; rng.RNG.SetState rejects the invalid all-zero state.
func ReadRNGState(r *Reader) [4]uint64 {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	return st
}

package expt

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure CSVs under testdata/")

// TestGoldenFigureCSV pins the E1 and E6 quick-scale CSVs at the
// default seed as golden files: any engine, seed-derivation, budget,
// or migration change that perturbs experiment output fails tier-1
// tests here instead of silently shifting published numbers. After an
// *intentional* output change, regenerate with
//
//	go test ./internal/expt/ -run TestGoldenFigureCSV -update
//
// and review the CSV diff like code. E1 is the single pinned
// worst-case trajectory (seeded directly by Options.Seed), E6 a
// multi-protocol replication sweep with pilot-derived budgets —
// between them they cover both seeding paths and the adaptive-budget
// derivation.
func TestGoldenFigureCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	shards4 := func(gen func(Options) Figure) func(Options) Figure {
		return func(o Options) Figure {
			o.Shards = 4
			return gen(o)
		}
	}
	for _, tc := range []struct {
		golden string
		gen    func(Options) Figure
	}{
		{"e1_quick.golden.csv", Figure2},
		{"e6_quick.golden.csv", BaselineComparison},
		// The sharded counterpart pins the largest-n quick CSV that
		// runs through internal/sim/shard (E2, the Fig. 3 scaling
		// sweep): any change to batch classification, shard-stream
		// derivation, or cross reconciliation order fails here instead
		// of silently shifting sharded experiment output.
		{"e2_quick_shards4.golden.csv", shards4(Figure3)},
		// The message-network counterpart pins the E19 fault-regime
		// grid: any change to the msgnet round structure, fault-fate
		// stream, scheduler graphs, or rendezvous bookkeeping shifts
		// rounds/steps and fails here instead of silently rewriting
		// the fault-tolerance findings.
		{"e19_quick.golden.csv", MsgNetFaultRegimes},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			t.Parallel()
			got := tc.gen(QuickOptions()).CSV()
			path := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s: CSV drifted from the golden file.\n--- want\n%s\n--- got\n%s\nIf the change is intentional, regenerate with -update and review the diff.",
					tc.golden, want, got)
			}
		})
	}
}

// Package expt defines the experiment harness: one generator per paper
// figure and per measurable claim (the E1..E14 index of DESIGN.md §3).
// Each generator returns a Figure carrying machine-readable rows (CSV)
// and a terminal rendering (ASCII chart or table), plus notes comparing
// the measurement against what the paper predicts.
//
// All experiments are deterministic functions of Options.Seed: trial
// replications run through the parallel engine in
// internal/sim/replicate, whose per-trial seeds depend only on (seed,
// trial index), so the produced figures are bit-identical at any
// worker count.
package expt

import (
	"fmt"
	"math"

	"ssrank/internal/plot"
	"ssrank/internal/sim/replicate"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks population ranges and trial counts to keep a full
	// harness run in the seconds range (used by benchmarks and smoke
	// runs). The full-scale settings reproduce the paper's ranges.
	Quick bool
	// Workers bounds the replication worker pool: < 1 means one worker
	// per CPU, 1 forces serial execution. Results do not depend on it.
	Workers int
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 0x5eed} }

// QuickOptions returns the scaled-down configuration.
func QuickOptions() Options { return Options{Seed: 0x5eed, Quick: true} }

// Figure is the result of one experiment.
type Figure struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Header and Rows are the machine-readable result table.
	Header []string
	Rows   [][]string
	// ASCII is a terminal rendering (chart or table).
	ASCII string
	// Notes record findings and the paper-vs-measured comparison.
	Notes []string
}

// CSV renders the figure's data as CSV.
func (f Figure) CSV() string { return plot.CSV(f.Header, f.Rows) }

// String renders the figure for the terminal.
func (f Figure) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", f.ID, f.Title, f.ASCII)
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// All runs every experiment in index order.
func All(opts Options) []Figure {
	return []Figure{
		Figure2(opts),
		Figure3(opts),
		CensusTable(opts),
		Theorem1Shape(opts),
		Theorem2Shape(opts),
		BaselineComparison(opts),
		TradeoffEpsilon(opts),
		AblationCWait(opts),
		CoinBalance(opts),
		FaultRecovery(opts),
		LEShape(opts),
		FastLESuccess(opts),
		EpidemicTail(opts),
		DeadConfigReset(opts),
		AblationResetWave(opts),
		AblationLEBudget(opts),
		PhaseStructure(opts),
		LooseVsSilent(opts),
	}
}

// Registry maps experiment IDs to their generators, for the CLI.
var Registry = map[string]func(Options) Figure{
	"E1":  Figure2,
	"E2":  Figure3,
	"E3":  CensusTable,
	"E4":  Theorem1Shape,
	"E5":  Theorem2Shape,
	"E6":  BaselineComparison,
	"E7":  TradeoffEpsilon,
	"E8":  AblationCWait,
	"E9":  CoinBalance,
	"E10": FaultRecovery,
	"E11": LEShape,
	"E12": FastLESuccess,
	"E13": EpidemicTail,
	"E14": DeadConfigReset,
	"E15": AblationResetWave,
	"E16": AblationLEBudget,
	"E17": PhaseStructure,
	"E18": LooseVsSilent,
}

// runTrials fans one generator's replication loop out over the
// parallel engine. salt decorrelates the several loops of one
// experiment from each other; every trial's randomness must derive
// from the seed passed to run, which depends only on (Options.Seed,
// salt, trial) — never on scheduling order.
func runTrials[R any](o Options, salt uint64, trials int, run func(trial int, seed uint64) R) []R {
	return replicate.Replicate(o.Workers, trials, o.Seed^salt, run)
}

// stepsResult is the common per-trial outcome of a stabilization run.
type stepsResult struct {
	steps float64
	ok    bool
}

// budget returns c·n²·log₂ n.
func budget(n int, c float64) int64 {
	return int64(c * float64(n) * float64(n) * math.Log2(float64(n)))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f4 formats a float with four significant digits.
func f4(v float64) string { return fmt.Sprintf("%.4g", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Package expt defines the experiment harness: one generator per paper
// figure and per measurable claim (the E1..E14 index of DESIGN.md §4).
// Each generator returns a Figure carrying machine-readable rows (CSV)
// and a terminal rendering (ASCII chart or table), plus notes comparing
// the measurement against what the paper predicts.
//
// All experiments are deterministic functions of Options.Seed: trial
// replications run through the parallel engine in
// internal/sim/replicate, whose per-trial seeds depend only on (seed,
// trial index), so the produced figures are bit-identical at any
// worker count.
package expt

import (
	"fmt"
	"math"

	"ssrank/internal/plot"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/replicate"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stats"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks population ranges and trial counts to keep a full
	// harness run in the seconds range (used by benchmarks and smoke
	// runs). The full-scale settings reproduce the paper's ranges.
	Quick bool
	// Workers bounds the replication worker pool: < 1 means one worker
	// per CPU, 1 forces serial execution. Results do not depend on it.
	// With Shards > 1 the same setting bounds the intra-run shard
	// workers of the generators that adopt the sharded engine.
	Workers int
	// Shards, when > 1, runs the trials of the sharded-engine adopters
	// (E1, E2, and the descriptor-driven stabilization generators
	// E4-E7 and E18) on the
	// internal/sim/shard runner with this shard count. Output depends
	// on (Seed, Shards) but never on Workers; Shards ≤ 1 keeps the
	// serial engine and its pinned golden outputs. Sharding pays off
	// when single trials dominate (large n, few replications): within
	// a wide replication loop the trial pool is already using the
	// cores. The sentinel AutoShards (-1) derives the count per
	// population size from n and the core count (shard.AutoShards),
	// staying serial below the size where sharding pays; note that the
	// resolved count — and hence the output — then depends on the
	// machine's GOMAXPROCS, so pinned comparisons should pass an
	// explicit count.
	Shards int
	// Precision, when > 0, enables CI-adaptive stopping: each
	// replication loop that designates a statistic stops as soon as
	// the 95% CI half-width of that statistic falls below
	// Precision·|mean| (never before replicate.DefaultMinTrials
	// commits, never after the loop's trial ceiling). The stop
	// decision is a pure function of the committed trial prefix, so
	// results stay bit-identical at any Workers setting.
	Precision float64
	// MaxTrials, when > 0, overrides every replication loop's trial
	// ceiling — raise it to give Precision room beyond the small
	// fixed defaults, or lower it for smoke runs. Structural fan-outs
	// (one slot per n, or the single pinned E1 trajectory) are not
	// affected.
	MaxTrials int
	// Progress, when non-nil, receives one event per committed trial
	// of every replication loop, in trial order, on the generator's
	// goroutine. Reporting is observational: it must not (and cannot)
	// influence results.
	Progress func(Progress)
}

// Progress is one committed-trial event of a replication loop.
type Progress struct {
	// Label identifies the loop, e.g. "E4 n=256".
	Label string
	// Trial is the committed trial index; Committed = Trial+1 trials
	// are done of at most Max.
	Trial     int
	Committed int
	Max       int
	// Mean and CI95 track the loop statistic over the committed
	// prefix (Mean is NaN for loops without a statistic).
	Mean float64
	CI95 float64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 0x5eed} }

// QuickOptions returns the scaled-down configuration.
func QuickOptions() Options { return Options{Seed: 0x5eed, Quick: true} }

// Figure is the result of one experiment.
type Figure struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Header and Rows are the machine-readable result table.
	Header []string
	Rows   [][]string
	// ASCII is a terminal rendering (chart or table).
	ASCII string
	// Notes record findings and the paper-vs-measured comparison.
	Notes []string
}

// CSV renders the figure's data as CSV.
func (f Figure) CSV() string { return plot.CSV(f.Header, f.Rows) }

// String renders the figure for the terminal.
func (f Figure) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", f.ID, f.Title, f.ASCII)
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// All runs every experiment in index order.
func All(opts Options) []Figure {
	return []Figure{
		Figure2(opts),
		Figure3(opts),
		CensusTable(opts),
		Theorem1Shape(opts),
		Theorem2Shape(opts),
		BaselineComparison(opts),
		TradeoffEpsilon(opts),
		AblationCWait(opts),
		CoinBalance(opts),
		FaultRecovery(opts),
		LEShape(opts),
		FastLESuccess(opts),
		EpidemicTail(opts),
		DeadConfigReset(opts),
		AblationResetWave(opts),
		AblationLEBudget(opts),
		PhaseStructure(opts),
		LooseVsSilent(opts),
		MsgNetFaultRegimes(opts),
	}
}

// Registry maps experiment IDs to their generators, for the CLI.
var Registry = map[string]func(Options) Figure{
	"E1":  Figure2,
	"E2":  Figure3,
	"E3":  CensusTable,
	"E4":  Theorem1Shape,
	"E5":  Theorem2Shape,
	"E6":  BaselineComparison,
	"E7":  TradeoffEpsilon,
	"E8":  AblationCWait,
	"E9":  CoinBalance,
	"E10": FaultRecovery,
	"E11": LEShape,
	"E12": FastLESuccess,
	"E13": EpidemicTail,
	"E14": DeadConfigReset,
	"E15": AblationResetWave,
	"E16": AblationLEBudget,
	"E17": PhaseStructure,
	"E18": LooseVsSilent,
	"E19": MsgNetFaultRegimes,
}

// runTrials fans a fixed work list out over the streaming engine —
// the structural variant (one slot per population size, or E1's single
// pinned trajectory) where the trial count is part of the experiment's
// shape. It streams and reports progress but ignores Precision and
// MaxTrials: stopping a structural fan-out early would drop work
// items, not replications. salt decorrelates the several loops of one
// experiment from each other; every trial's randomness must derive
// from the seed passed to run, which depends only on (Options.Seed,
// salt, trial) — never on scheduling order.
func runTrials[R any](o Options, label string, salt uint64, trials int, run func(trial int, seed uint64) R) []R {
	return streamTrials(o, label, salt, trials, nil, run)
}

// runTrialsStat is the replication-loop variant: trials are
// exchangeable repetitions and stat designates the loop's primary
// statistic (ok=false excludes a trial, e.g. one that exhausted its
// budget). It honors Options.MaxTrials as the ceiling and
// Options.Precision for CI-adaptive stopping, returning the committed
// prefix.
func runTrialsStat[R any](o Options, label string, salt uint64, trials int, stat func(R) (float64, bool), run func(trial int, seed uint64) R) []R {
	if o.MaxTrials > 0 {
		trials = o.MaxTrials
	}
	return streamTrials(o, label, salt, trials, stat, run)
}

// streamTrials drives one loop through replicate.ReplicateStream,
// sharing a single Welford accumulator between the progress reports
// and the precision stop rule so both read the same committed prefix.
func streamTrials[R any](o Options, label string, salt uint64, trials int, stat func(R) (float64, bool), run func(trial int, seed uint64) R) []R {
	s := replicate.Stream[R]{Workers: o.Workers, Trials: trials, Root: o.Seed ^ salt}
	var acc stats.Running
	if stat != nil || o.Progress != nil {
		s.OnCommit = func(c replicate.Commit[R]) {
			if stat != nil {
				if v, ok := stat(c.Result); ok {
					acc.Add(v)
				}
			}
			if o.Progress != nil {
				o.Progress(Progress{
					Label: label, Trial: c.Trial, Committed: c.Committed, Max: trials,
					Mean: acc.Mean(), CI95: acc.CI95Half(),
				})
			}
		}
	}
	if o.Precision > 0 && stat != nil {
		policy := replicate.Precision{Rel: o.Precision}
		s.Stop = func(c replicate.Commit[R]) bool {
			return policy.Met(&acc)
		}
	}
	return replicate.ReplicateStream(s, run)
}

// AutoShards is the Options.Shards sentinel that derives the shard
// count from the population size and the core count (shard.AutoShards)
// instead of fixing it.
const AutoShards = shard.Auto

// shardsFor resolves the effective shard count for one trial's
// population size.
func (o Options) shardsFor(n int) int {
	if o.Shards == AutoShards {
		return shard.AutoShards(n, 0)
	}
	return o.Shards
}

// runner is the single-trial engine surface the generators drive.
// All calls except RunUntilExact are chunk-level (poll cadence ≥ n
// interactions), so the interface indirection never sits on a
// per-interaction path; RunUntilExact dispatches once to the engine's
// touch-aware loop, which devirtualizes the per-interaction work.
type runner[S any] interface {
	Run(k int64)
	RunUntil(stop func(states []S) bool, checkEvery, maxSteps int64) (int64, error)
	// RunUntilExact stops a stabilization run at the exact hitting
	// time of the stop condition, via the incremental tracker and the
	// protocol's touch reporting: sim.RunUntilCondT on the serial
	// engine, the barrier fold of shard.Runner.RunUntilExact on the
	// sharded engine. Both handle transient conditions (loose LE's
	// uniqueness window) that a polled scan could sail through.
	RunUntilExact(cond sim.Condition[S], maxSteps int64) (int64, error)
	Observe(obs func(steps int64, states []S), every, maxSteps int64, stop func(states []S) bool) int64
	States() []S
	Steps() int64
}

// exactSerial adapts sim.Runner to the runner surface, routing
// RunUntilExact through the touch-aware exact-stop path.
type exactSerial[S any, P sim.TouchReporter[S]] struct{ *sim.Runner[S, P] }

func (r exactSerial[S, P]) RunUntilExact(cond sim.Condition[S], maxSteps int64) (int64, error) {
	return sim.RunUntilCondT(r.Runner, cond, maxSteps)
}

// exactShard adapts shard.Runner; its own RunUntilExact already has
// the runner signature, so the adapter only exists for symmetry and
// doc purposes (the sharded engine folds per-shard touch records into
// the tracker at each batch barrier — see internal/sim/shard/exact.go).
type exactShard[S any, P sim.TouchReporter[S]] struct{ *shard.Runner[S, P] }

// newRunner returns the engine one trial runs on: the sharded runner
// when the options resolve to more than one shard for this population,
// else the serial sim.Runner. workers bounds the shard worker pool;
// single-trajectory generators pass o.Workers (intra-run parallelism
// is the only parallelism they have), while replicated loops pass 1 —
// their trial pool already owns the cores, and nesting o.Workers shard
// workers inside o.Workers trial workers would only oversubscribe.
// Trajectories depend on (seed, resolved shard count) only, never on
// workers, so figures stay byte-identical either way.
func newRunner[S any, P sim.TouchReporter[S]](o Options, workers int, p P, states []S, seed uint64) runner[S] {
	if s := o.shardsFor(len(states)); s > 1 {
		return exactShard[S, P]{shard.New[S](p, states, seed, s, workers)}
	}
	return exactSerial[S, P]{sim.New[S](p, states, seed)}
}

// descRunner constructs one trial — protocol instance, named initial
// configuration, engine — from a protocol descriptor (internal/proto):
// the same table the public facade dispatches through, so the harness
// and the facade cannot drift apart on what a protocol is. salt
// decorrelates the init randomness (random inits) from the scheduler
// seed; inits that take no randomness ignore it.
func descRunner[S any, P sim.TouchReporter[S]](o Options, workers int, d proto.Descriptor[S, P], n int, init string, salt, seed uint64) (P, runner[S]) {
	p := d.New(n)
	states := d.Init(p, init, rng.New(seed^salt))
	if states == nil {
		panic(fmt.Sprintf("expt: protocol %q does not register init %q", d.Name, init))
	}
	return p, newRunner[S](o, workers, p, states, seed)
}

// descStabilize runs one descriptor trial to its stop condition —
// at the exact hitting time on either engine (see
// runner.RunUntilExact) — returning the stop step, convergence,
// and the protocol's reset count (0 without reset instrumentation).
// It is the whole per-trial body of the stabilization sweeps; the
// descriptor supplies constructor, init, tracker and validity that
// each generator previously tabulated for itself.
func descStabilize[S any, P sim.TouchReporter[S]](o Options, d proto.Descriptor[S, P], n int, init string, salt, seed uint64, cap int64) (int64, bool, int64) {
	p, r := descRunner(o, 1, d, n, init, salt, seed)
	steps, err := r.RunUntilExact(sim.DescCond(d, p), cap)
	var resets int64
	if d.Resets != nil {
		resets = d.Resets(p)
	}
	return steps, err == nil, resets
}

// statSteps designates a stabilization loop's interaction count as its
// statistic, excluding trials that never converged.
func statSteps(t stepsResult) (float64, bool) { return t.steps, t.ok }

// statIdent designates the trial result itself as the statistic.
func statIdent(v float64) (float64, bool) { return v, true }

// stepsResult is the common per-trial outcome of a stabilization run.
type stepsResult struct {
	steps float64
	ok    bool
}

// budget returns c·n²·log₂ n.
func budget(n int, c float64) int64 {
	return int64(c * float64(n) * float64(n) * math.Log2(float64(n)))
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f4 formats a float with four significant digits.
func f4(v float64) string { return fmt.Sprintf("%.4g", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

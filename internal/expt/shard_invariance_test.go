package expt

import "testing"

// TestShardWorkerCountInvariance is the figure-level determinism
// contract of the sharded engine, and the CI lock on the acceptance
// criterion "figures -e E1 -shards 4 is byte-identical at 1 vs 8
// workers": for a fixed (seed, shard count) an adopting generator must
// produce identical CSVs at every worker setting. E1 covers the
// single-trajectory Observe path, E2 the replicated RunUntil/Observe
// sweep (shard workers nested inside the trial pool), E4 the
// pilot-budget derivation through the sharded engine.
func TestShardWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, tc := range []struct {
		id  string
		gen func(Options) Figure
	}{
		{"E1", Figure2},
		{"E2", Figure3},
		{"E4", Theorem1Shape},
	} {
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			serial := QuickOptions()
			serial.Shards = 4
			serial.Workers = 1
			pool := QuickOptions()
			pool.Shards = 4
			pool.Workers = 8

			a := tc.gen(serial)
			b := tc.gen(pool)
			if a.CSV() != b.CSV() {
				t.Fatalf("%s: CSV differs between 1 and 8 workers at 4 shards", tc.id)
			}
			if len(a.Rows) == 0 {
				t.Fatalf("%s: no rows produced", tc.id)
			}
		})
	}
}

// TestShardCountIsPartOfTheSeed pins the other half of the contract:
// the sharded trajectory is a *different* (equally lawful) realization
// than the serial engine's, so CSVs legitimately depend on the shard
// count. If this ever starts passing identical output, the -shards
// flag has silently stopped reaching the engine.
func TestShardCountIsPartOfTheSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	sharded := QuickOptions()
	sharded.Shards = 4
	if Figure2(QuickOptions()).CSV() == Figure2(sharded).CSV() {
		t.Fatal("E1 CSV identical with and without -shards 4: sharding is not reaching the engine")
	}
}

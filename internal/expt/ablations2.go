package expt

import (
	"fmt"
	"math"

	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// AblationResetWave (E15) sweeps PropagateReset's two constants — the
// hop budget R_max and the dormancy D_max (both ×log₂ n) — and
// measures how reliably a single triggered agent resets the *whole*
// population before anyone restarts, plus the end-to-end cost. Too
// small an R_max lets the wave die out with survivors; too small a
// D_max wakes early agents while stale computation is still around;
// both surface as extra resets rather than failures (self-stabilization
// absorbs mis-tuning), which is exactly what the sweep shows.
func AblationResetWave(opts Options) Figure {
	n := 256
	trials := 12
	if opts.Quick {
		n = 64
		trials = 5
	}
	factors := []float64{0.5, 1, 2, 4, 8}

	fig := Figure{
		ID:    "E15",
		Title: fmt.Sprintf("Ablation — PropagateReset constants (n=%d): wave coverage and total cost", n),
		Header: []string{"factor(Rmax=Dmax)", "full_coverage_rate", "median_wave_over_nlogn",
			"median_stabilize_norm", "mean_resets"},
	}
	coverage := plot.Series{Name: "full-coverage rate"}
	costLine := plot.Series{Name: "median stabilization norm / 20"}

	for _, f := range factors {
		params := stable.DefaultParams()
		params.RMaxFactor = f
		params.DMaxFactor = f

		type trialR struct {
			covered      bool
			wave         float64
			stabilized   bool
			norm, resets float64
		}
		covered := 0
		var waves, norms, resets []float64
		res := runTrialsStat(opts, fmt.Sprintf("E15 factor=%.2g", f), uint64(f*1000)^0xe15, trials,
			func(t trialR) (float64, bool) { return t.norm, t.stabilized },
			func(_ int, seed uint64) trialR {
				var out trialR
				// Phase 1: wave coverage. Trigger one agent of a fully
				// ranked (legal) population and watch whether every agent
				// leaves the main protocol before any returns to it.
				p := stable.New(n, params)
				states := make([]stable.State, n)
				for i := range states {
					states[i] = stable.Ranked(int32(i + 1))
				}
				p.TriggerReset(&states[0])
				r := sim.New[stable.State](p, states, seed)
				fullyOut := func(ss []stable.State) bool {
					for i := range ss {
						if ss[i].IsMain() {
							return false
						}
					}
					return true
				}
				waveBudget := int64(200 * float64(n) * math.Log2(float64(n)) * (f + 1))
				if steps, err := r.RunUntil(fullyOut, 0, waveBudget); err == nil {
					out.covered = true
					out.wave = float64(steps) / (float64(n) * math.Log2(float64(n)))
				}

				// Phase 2: end-to-end stabilization cost with these
				// constants, from the worst-case start.
				p2 := stable.New(n, params)
				r2 := sim.New[stable.State](p2, p2.WorstCaseInit(), seed^0x9e15)
				if s2, err := r2.RunUntil(stable.Valid, 0, budget(n, 5000)); err == nil {
					out.stabilized = true
					out.norm = float64(s2) / (float64(n) * float64(n) * math.Log2(float64(n)))
					out.resets = float64(p2.Resets())
				}
				return out
			})
		for _, t := range res {
			if t.covered {
				covered++
				waves = append(waves, t.wave)
			}
			if t.stabilized {
				norms = append(norms, t.norm)
				resets = append(resets, t.resets)
			}
		}
		covRate := float64(covered) / float64(len(res))
		medNorm := stats.Median(norms)
		fig.Rows = append(fig.Rows, []string{
			f2(f), f2(covRate), f4(stats.Median(waves)), f4(medNorm), f2(stats.Mean(resets)),
		})
		coverage.X = append(coverage.X, f)
		coverage.Y = append(coverage.Y, covRate)
		costLine.X = append(costLine.X, f)
		costLine.Y = append(costLine.Y, medNorm/20)
	}
	fig.ASCII = plot.Lines("reset-wave ablation (x = Rmax/Dmax factor)", 72, 12, coverage, costLine)
	fig.Notes = append(fig.Notes,
		"Burman et al.'s analysis wants R_max = 60·ln n; the sweep shows where cheaper constants start leaking (coverage < 1) and that the protocol still stabilizes — mis-tuning costs resets, not correctness")
	return fig
}

// AblationLEBudget (E16) sweeps FastLeaderElection's interaction
// budget. This is the constant the implementation had to split from
// L_max (EXPERIMENTS.md finding 2): budgets near c_live·log n race the
// start-of-ranking epidemic and multiply spurious le-expired resets.
func AblationLEBudget(opts Options) Figure {
	n := 256
	trials := 12
	if opts.Quick {
		n = 64
		trials = 5
	}
	factors := []float64{2, 4, 8, 16, 32}

	fig := Figure{
		ID:     "E16",
		Title:  fmt.Sprintf("Ablation — FastLeaderElection budget factor (n=%d)", n),
		Header: []string{"budget_factor", "mean_le_expired_resets", "mean_total_resets", "median_stabilize_norm"},
	}
	leLine := plot.Series{Name: "mean le-expired resets"}
	normLine := plot.Series{Name: "median stabilization norm"}
	for _, f := range factors {
		params := stable.DefaultParams()
		params.LEBudgetFactor = f
		type trialR struct {
			stepsResult
			leResets, resets float64
		}
		var leResets, total, norms []float64
		for _, t := range runTrialsStat(opts, fmt.Sprintf("E16 factor=%.2g", f), uint64(f*100)^0xe16, trials,
			func(t trialR) (float64, bool) { return t.steps, t.ok },
			func(_ int, seed uint64) trialR {
				p := stable.New(n, params)
				r := sim.New[stable.State](p, p.InitialStates(), seed)
				s, err := r.RunUntil(stable.Valid, 0, budget(n, 5000))
				return trialR{stepsResult{float64(s), err == nil},
					float64(p.ResetsFor(stable.ReasonLEExpired)), float64(p.Resets())}
			}) {
			if t.ok {
				norms = append(norms, t.steps/(float64(n)*float64(n)*math.Log2(float64(n))))
				leResets = append(leResets, t.leResets)
				total = append(total, t.resets)
			}
		}
		fig.Rows = append(fig.Rows, []string{
			f2(f), f2(stats.Mean(leResets)), f2(stats.Mean(total)), f4(stats.Median(norms)),
		})
		leLine.X = append(leLine.X, f)
		leLine.Y = append(leLine.Y, stats.Mean(leResets))
		normLine.X = append(normLine.X, f)
		normLine.Y = append(normLine.Y, stats.Median(norms))
	}
	fig.ASCII = plot.Lines("LE budget ablation (x = budget factor)", 72, 12, leLine, normLine)
	fig.Notes = append(fig.Notes,
		"small budgets churn on le-expired resets (the race against the conversion epidemic); very large budgets slow the no-leader retry path — the default 8 sits in the flat valley")
	return fig
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/plot"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// fig3Fractions are the ranked fractions whose hitting times Fig. 3
// reports.
var fig3Fractions = []struct {
	name string
	num  int
	den  int
}{
	{"1/2", 1, 2},
	{"3/4", 3, 4},
	{"7/8", 7, 8},
	{"15/16", 15, 16},
}

// fig3HittingTimes runs one trial from the Fig. 3 initialization and
// returns, per fraction, the interactions/n² at which it was first
// reached (-1 when not reached within the budget).
func fig3HittingTimes(opts Options, n int, seed uint64) []float64 {
	p := stable.New(n, stable.DefaultParams())
	r := newRunner[stable.State](opts, 1, p, p.Fig3Init(), seed)
	times := make([]float64, len(fig3Fractions))
	for i := range times {
		times[i] = -1
	}
	next := 0
	r.Observe(func(steps int64, states []stable.State) {
		ranked := stable.RankedCount(states)
		for next < len(fig3Fractions) {
			fr := fig3Fractions[next]
			if ranked*fr.den < n*fr.num {
				break
			}
			times[next] = float64(steps) / float64(n) / float64(n)
			next++
		}
	}, int64(n), budget(n, 100), func([]stable.State) bool {
		return next >= len(fig3Fractions)
	})
	return times
}

// Figure3 reproduces the paper's Fig. 3: the number of interactions
// (normalized by n²) needed until a constant fraction of agents is
// ranked, starting from one unaware leader with rank 1 and everyone
// else in a leader-election state, across n = 2⁷..2¹³.
//
// The paper runs 100 simulations per n; on a single-core budget the
// trial count scales down with n (EXPERIMENTS.md records the counts).
// The claim under test is the *shape*: constant fractions are ranked
// after Θ(n²) interactions — the normalized curves are flat in n and
// increase only mildly in the fraction (coupon-collector behaviour) —
// while full ranking needs Θ(n² log n).
func Figure3(opts Options) Figure {
	ns := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	trialsFor := func(n int) int {
		switch {
		case n <= 512:
			return 48
		case n <= 1024:
			return 24
		case n <= 2048:
			return 12
		case n <= 4096:
			return 6
		default:
			return 3
		}
	}
	if opts.Quick {
		ns = []int{128, 256, 512}
		trialsFor = func(int) int { return 6 }
	}

	fig := Figure{
		ID:     "E2",
		Title:  "Fig. 3 — interactions/n² to rank constant fractions of agents",
		Header: []string{"n", "fraction", "trials", "mean_over_n2", "ci95_half", "median_over_n2"},
	}

	series := make([]plot.Series, len(fig3Fractions))
	for i, fr := range fig3Fractions {
		series[i].Name = fr.name
	}

	for _, n := range ns {
		trials := trialsFor(n)
		hit := make([][]float64, len(fig3Fractions))
		// The precision statistic is the slowest fraction's hitting
		// time (15/16): it dominates the row's variance, so a CI tight
		// there is tight everywhere.
		for _, times := range runTrialsStat(opts, fmt.Sprintf("E2 n=%d", n), uint64(n), trials,
			func(times []float64) (float64, bool) {
				last := times[len(times)-1]
				return last, last >= 0
			},
			func(_ int, seed uint64) []float64 {
				return fig3HittingTimes(opts, n, seed)
			}) {
			for i, v := range times {
				if v >= 0 {
					hit[i] = append(hit[i], v)
				}
			}
		}
		for i, fr := range fig3Fractions {
			if len(hit[i]) == 0 {
				fig.Notes = append(fig.Notes, fmt.Sprintf("n=%d fraction %s: no trial reached the fraction in budget", n, fr.name))
				continue
			}
			mean, ci := stats.MeanCI95(hit[i])
			fig.Rows = append(fig.Rows, []string{
				itoa(n), fr.name, itoa(len(hit[i])), f2(mean), f2(ci), f2(stats.Median(hit[i])),
			})
			series[i].X = append(series[i].X, math.Log2(float64(n)))
			series[i].Y = append(series[i].Y, mean)
		}
	}

	fig.ASCII = plot.Lines("interactions/n² to reach ranked fraction (x = log₂ n)", 72, 16, series...)
	fig.Notes = append(fig.Notes,
		"paper's Fig. 3: flat-in-n normalized curves between ≈1 n² (1/2) and ≈10 n² (15/16); the shape criterion is flatness in n and ordering in the fraction")
	return fig
}

package expt

import (
	"fmt"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/baseline/sudo"
	"ssrank/internal/core"
	"ssrank/internal/proto"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/sim/shard"
	"ssrank/internal/stable"
)

// touchSchedules builds the pair schedules the touch property test
// drives every protocol through: a uniform random schedule plus
// adversarial ones that maximize agent reuse (the collision patterns
// the engine's sub-batch splitting must survive) and coverage.
func touchSchedules(n int, seed uint64) map[string][][2]int {
	r := rng.New(seed)
	random := make([][2]int, 6000)
	for i := range random {
		a, b := r.Pair(n)
		random[i] = [2]int{a, b}
	}
	repeat := make([][2]int, 2000)
	pingpong := make([][2]int, 2000)
	ring := make([][2]int, 4000)
	star := make([][2]int, 4000)
	for i := range repeat {
		repeat[i] = [2]int{0, 1}
		pingpong[i] = [2]int{i % 2, 1 - i%2}
	}
	for i := range ring {
		ring[i] = [2]int{i % n, (i + 1) % n}
	}
	for i := range star {
		star[i] = [2]int{0, 1 + i%(n-1)}
		if i%2 == 1 {
			star[i] = [2]int{star[i][1], 0}
		}
	}
	return map[string][][2]int{
		"random":    random,
		"repeat":    repeat,
		"ping-pong": pingpong,
		"ring":      ring,
		"star":      star,
		"all-pairs": sim.AllOrderedPairs(n),
	}
}

// checkTouchAndTracker is the property under test, for one protocol:
// along every schedule, (1) TransitionT's touch report must equal a
// recomputation of the tracked projection before vs after the
// interaction, and (2) feeding exactly the reported touches into the
// protocol's incremental tracker must keep Done() equal to the
// brute-force full-rescan predicate after every single step.
func checkTouchAndTracker[S any, K comparable, P sim.TouchReporter[S]](
	t *testing.T, p P, init func() []S, proj func(*S) K,
	cond sim.Condition[S], valid func([]S) bool,
) {
	t.Helper()
	for name, sched := range touchSchedules(len(init()), 0xbeef) {
		t.Run(name, func(t *testing.T) {
			states := init()
			cond.Init(states)
			if got, want := cond.Done(), valid(states); got != want {
				t.Fatalf("after Init: Done() = %v, full rescan = %v", got, want)
			}
			for step, pr := range sched {
				a, b := pr[0], pr[1]
				pa, pb := proj(&states[a]), proj(&states[b])
				ut, vt := p.TransitionT(&states[a], &states[b])
				if want := proj(&states[a]) != pa; ut != want {
					t.Fatalf("step %d (%d,%d): initiator touch reported %v, projection changed %v", step, a, b, ut, want)
				}
				if want := proj(&states[b]) != pb; vt != want {
					t.Fatalf("step %d (%d,%d): responder touch reported %v, projection changed %v", step, a, b, vt, want)
				}
				if ut {
					cond.Update(a, states)
				}
				if vt {
					cond.Update(b, states)
				}
				if got, want := cond.Done(), valid(states); got != want {
					t.Fatalf("step %d (%d,%d): Done() = %v, full rescan = %v", step, a, b, got, want)
				}
			}
		})
	}
}

// TestTouchReportingMatchesRescan checks, for every protocol with the
// TouchReporter capability, that touched-agent reporting and the
// incremental trackers agree with a full rescan after each step of
// random and adversarial schedules — the contract the exact-stopping
// engine path (sim.RunUntilCondT) is built on.
func TestTouchReportingMatchesRescan(t *testing.T) {
	const n = 24

	t.Run("stable", func(t *testing.T) {
		p := stable.New(n, stable.DefaultParams())
		for idx, init := range [][]stable.State{
			p.InitialStates(), p.WorstCaseInit(), p.RandomConfig(rng.New(0x7a5)),
		} {
			t.Run(fmt.Sprintf("init%d", idx), func(t *testing.T) {
				states := init
				checkTouchAndTracker(t, p,
					func() []stable.State { return append([]stable.State(nil), states...) },
					stable.RankOf, sim.NewRankCond(0, stable.RankOf), stable.Valid)
			})
		}
	})
	t.Run("core", func(t *testing.T) {
		p := core.New(n, core.DefaultParams())
		checkTouchAndTracker(t, p,
			func() []core.State { return p.InitialStates() },
			core.RankOf, sim.NewRankCond(0, core.RankOf), core.Valid)
	})
	t.Run("cai", func(t *testing.T) {
		p := cai.New(n)
		r := rng.New(0xca1)
		random := make([]cai.State, n)
		for i := range random {
			random[i] = cai.State(1 + r.Intn(n))
		}
		for idx, init := range [][]cai.State{p.InitialStates(), random} {
			t.Run(fmt.Sprintf("init%d", idx), func(t *testing.T) {
				states := init
				checkTouchAndTracker(t, p,
					func() []cai.State { return append([]cai.State(nil), states...) },
					cai.RankOf, sim.NewRankCond(0, cai.RankOf), cai.Valid)
			})
		}
	})
	t.Run("aware", func(t *testing.T) {
		p := aware.New(n, aware.DefaultParams())
		for idx, init := range [][]aware.State{
			p.InitialStates(), p.RandomConfig(rng.New(0xa3a)),
		} {
			t.Run(fmt.Sprintf("init%d", idx), func(t *testing.T) {
				states := init
				checkTouchAndTracker(t, p,
					func() []aware.State { return append([]aware.State(nil), states...) },
					aware.RankOf, sim.NewRankCond(0, aware.RankOf), aware.Valid)
			})
		}
	})
	t.Run("interval", func(t *testing.T) {
		for _, eps := range []float64{0, 1} {
			t.Run(fmt.Sprintf("eps=%v", eps), func(t *testing.T) {
				p := interval.New(n, eps)
				checkTouchAndTracker(t, p,
					func() []interval.State { return p.InitialStates() },
					func(s *interval.State) interval.State { return *s },
					interval.NewDisjointCond(p.M()), interval.Valid)
			})
		}
	})
	t.Run("sudo", func(t *testing.T) {
		p := sudo.New(n, 2)
		for idx, init := range [][]sudo.State{p.InitialStates(), p.AllLeaders()} {
			t.Run(fmt.Sprintf("init%d", idx), func(t *testing.T) {
				states := init
				checkTouchAndTracker(t, p,
					func() []sudo.State { return append([]sudo.State(nil), states...) },
					func(s *sudo.State) bool { return s.Leader },
					sudo.NewLeaderCond(), sudo.UniqueLeader)
			})
		}
	})
}

// rescanCond wraps an incremental tracker and cross-checks it against
// a brute-force full rescan of the states slice it is fed, at every
// Done() call. Both engines consult Done() exactly once per
// interaction — after all of the interaction's Updates — so the check
// runs at interaction boundaries, where tracker and configuration must
// agree (between the two Updates of a both-touched interaction they
// legitimately differ). Inside the sharded barrier fold the slice fed
// to Update is the shadow configuration, which is projection-faithful
// at every canonical prefix — so the rescan is exactly the predicate
// the tracker claims to maintain incrementally. (The same wrapper
// would be UNSOUND on the serial engine: there Update reads the live
// array, which at fold time is already past the current sub-batch.)
type rescanCond[S any] struct {
	t      *testing.T
	inner  sim.Condition[S]
	valid  func([]S) bool
	states []S
	calls  int
}

func (c *rescanCond[S]) Init(states []S) {
	c.inner.Init(states)
	c.states = states
}

func (c *rescanCond[S]) Update(i int, states []S) {
	c.calls++
	c.inner.Update(i, states)
	c.states = states
}

func (c *rescanCond[S]) Done() bool {
	got := c.inner.Done()
	if want := c.valid(c.states); got != want {
		c.t.Fatalf("after update %d: tracker Done() = %v, full rescan of the shadow = %v", c.calls, got, want)
	}
	return got
}

// TestShardedFoldMatchesRescan drives the sharded barrier fold with a
// rescanning tracker at several shard counts (including an odd one,
// which exercises the tournament's bye rounds): every per-shard
// tracker delta folded at a barrier must leave the incremental state
// equal to a full rescan of the shadow configuration. Stable checks
// the silent path, interval the whole-state projection, and sudo the
// transient path (uniqueness can break again within the same batch).
func TestShardedFoldMatchesRescan(t *testing.T) {
	const n = 64
	for _, S := range []int{2, 4, 7} {
		S := S
		t.Run(fmt.Sprintf("S=%d", S), func(t *testing.T) {
			t.Run("stable", func(t *testing.T) {
				p := stable.New(n, stable.DefaultParams())
				d := stable.Describe()
				cond := &rescanCond[stable.State]{t: t, inner: sim.DescCond(d, p), valid: stable.Valid}
				r := shard.New[stable.State](p, p.WorstCaseInit(), 9, S, 2)
				hit, err := r.RunUntilExact(cond, d.Budget(n))
				if err != nil {
					t.Fatal(err)
				}
				if cond.calls == 0 {
					t.Fatal("tracker never updated; the run recorded no touches")
				}
				if hit < 1 || !stable.Valid(r.States()) {
					t.Fatalf("silent run stopped at %d without a valid final ranking", hit)
				}
			})
			t.Run("interval", func(t *testing.T) {
				p := interval.New(n, 1)
				cond := &rescanCond[interval.State]{t: t, inner: interval.NewDisjointCond(p.M()), valid: interval.Valid}
				r := shard.New[interval.State](p, p.InitialStates(), 9, S, 2)
				hit, err := r.RunUntilExact(cond, proto.BudgetN2LogN(3000)(n))
				if err != nil {
					t.Fatal(err)
				}
				if cond.calls == 0 {
					t.Fatal("tracker never updated; the run recorded no touches")
				}
				if hit < 1 || !interval.Valid(r.States()) {
					t.Fatalf("silent run stopped at %d without disjoint intervals", hit)
				}
			})
			t.Run("sudo", func(t *testing.T) {
				p := sudo.New(n, 2)
				cond := &rescanCond[sudo.State]{t: t, inner: sudo.NewLeaderCond(), valid: sudo.UniqueLeader}
				r := shard.New[sudo.State](p, p.AllLeaders(), 9, S, 2)
				// Transient condition: the final configuration may postdate
				// the hitting time, so only the hit itself is asserted.
				hit, err := r.RunUntilExact(cond, proto.BudgetN2(5000)(n))
				if err != nil {
					t.Fatal(err)
				}
				if cond.calls == 0 {
					t.Fatal("tracker never updated; the run recorded no touches")
				}
				if hit < 1 {
					t.Fatalf("everyone-a-leader init reported hit %d", hit)
				}
			})
		})
	}
}

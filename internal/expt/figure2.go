package expt

import (
	"fmt"

	"ssrank/internal/plot"
	"ssrank/internal/stable"
)

// Figure2 reproduces the paper's Fig. 2: the number of ranked agents
// (and the mean phase counter of unranked agents) as a function of
// interactions/n², starting from the worst-case initialization — 255 of
// 256 agents pre-ranked with ranks 2..256 and one phase agent with
// maximal liveness counter. The protocol must first detect that the
// configuration is dead (Θ(n² log n) interactions through the liveness
// counter), reset, and then re-rank everyone.
func Figure2(opts Options) Figure {
	n := 256
	maxUnits := 150.0 // x-axis budget in units of n² (paper stabilizes near 60)
	if opts.Quick {
		n = 64
		maxUnits = 400 // small n: the reset lottery has higher variance
	}

	type point struct {
		units  float64
		ranked int
		phase  float64
		resets int64
	}
	type fig2run struct {
		pts          []point
		stabilizedAt float64
		resets       int64
		breakdown    map[string]int64
	}
	// A single trajectory, seeded directly by the experiment seed (the
	// engine's per-trial derivation would re-seed the one figure the
	// paper pins to a specific worst-case run); the replication engine
	// still hosts it so every generator shares one execution path.
	// With opts.Shards > 1 the trajectory runs on the sharded engine —
	// the single-trial figure where intra-run parallelism is the only
	// parallelism there is.
	res := runTrials(opts, "E1", 0, 1, func(int, uint64) fig2run {
		p := stable.New(n, stable.DefaultParams())
		r := newRunner[stable.State](opts, opts.Workers, p, p.WorstCaseInit(), opts.Seed)
		out := fig2run{stabilizedAt: -1}
		sample := int64(n) * int64(n) / 4
		maxSteps := int64(maxUnits * float64(n) * float64(n))
		r.Observe(func(steps int64, states []stable.State) {
			u := float64(steps) / float64(n) / float64(n)
			out.pts = append(out.pts, point{u, stable.RankedCount(states), stable.MeanPhase(states), p.Resets()})
			if out.stabilizedAt < 0 && stable.Valid(states) {
				out.stabilizedAt = u
			}
		}, sample, maxSteps, func(states []stable.State) bool {
			return stable.Valid(states)
		})
		out.resets = p.Resets()
		out.breakdown = p.ResetBreakdown()
		return out
	})[0]
	pts, stabilizedAt := res.pts, res.stabilizedAt

	fig := Figure{
		ID:     "E1",
		Title:  fmt.Sprintf("Fig. 2 — recovery from worst-case initialization (n=%d)", n),
		Header: []string{"interactions_over_n2", "ranked_agents", "mean_phase_unranked", "resets_so_far"},
	}
	ranked := plot.Series{Name: "ranked agents"}
	phase := plot.Series{Name: fmt.Sprintf("mean phase x%d", n/10)}
	for _, pt := range pts {
		fig.Rows = append(fig.Rows, []string{f2(pt.units), itoa(pt.ranked), f2(pt.phase), fmt.Sprintf("%d", pt.resets)})
		ranked.X = append(ranked.X, pt.units)
		ranked.Y = append(ranked.Y, float64(pt.ranked))
		phase.X = append(phase.X, pt.units)
		phase.Y = append(phase.Y, pt.phase*float64(n)/10) // scale onto the ranked axis, as the paper's twin axis does
	}
	fig.ASCII = plot.Lines(fig.Title, 72, 18, ranked, phase)

	if stabilizedAt >= 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"stabilized at %.1f n² interactions with %d resets (paper shows ≈60 n² for n=256; same reset-then-re-rank shape)",
			stabilizedAt, res.resets))
	} else {
		fig.Notes = append(fig.Notes, fmt.Sprintf("NOT stabilized within %.0f n²; resets=%v", maxUnits, res.breakdown))
	}
	firstReset := -1.0
	for _, pt := range pts {
		if pt.resets > 0 {
			firstReset = pt.units
			break
		}
	}
	if firstReset >= 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"first reset detected by ≈%.1f n² (dead-configuration detection via the liveness counter, Θ(n² log n))", firstReset))
	}
	return fig
}

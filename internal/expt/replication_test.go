package expt

import (
	"runtime"
	"testing"
)

// TestWorkerCountInvariance is the determinism contract of the
// replication engine at the figure level: for a fixed seed, a
// generator must produce identical rows (hence byte-identical CSV) on
// one worker and on a full worker pool. E1 is a single pinned
// trajectory, E6 a multi-protocol trial sweep, E10 the fault-recovery
// sweep with in-trial corruption RNG — together they cover every
// seed-derivation pattern the generators use.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, tc := range []struct {
		id  string
		gen func(Options) Figure
	}{
		{"E1", Figure2},
		{"E6", BaselineComparison},
		{"E10", FaultRecovery},
	} {
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			serial := QuickOptions()
			serial.Workers = 1
			pool := QuickOptions()
			// At least 4 workers even on a single-core runner: the
			// goroutines then interleave, which is exactly the
			// scheduling nondeterminism the engine must be immune to.
			pool.Workers = runtime.NumCPU()
			if pool.Workers < 4 {
				pool.Workers = 4
			}

			a := tc.gen(serial)
			b := tc.gen(pool)
			if a.CSV() != b.CSV() {
				t.Fatalf("%s: CSV differs between 1 worker and %d workers", tc.id, pool.Workers)
			}
			if len(a.Rows) == 0 {
				t.Fatalf("%s: no rows produced", tc.id)
			}
		})
	}
}

// TestPrecisionWorkerCountInvariance is the figure-level determinism
// contract of CI-adaptive stopping: with -precision the stop decision
// is a pure function of the committed trial prefix, so a generator
// must still produce byte-identical CSVs at 1, 4, and 16 workers —
// and the precision run must actually stop early (fewer trials than
// the raised ceiling), or the test would be vacuous.
func TestPrecisionWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, tc := range []struct {
		id  string
		gen func(Options) Figure
	}{
		{"E1", Figure2},
		{"E2", Figure3},
		{"E13", EpidemicTail},
	} {
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			base := QuickOptions()
			base.Precision = 0.1
			base.MaxTrials = 64

			var figs []Figure
			for _, workers := range []int{1, 4, 16} {
				o := base
				o.Workers = workers
				figs = append(figs, tc.gen(o))
			}
			for i, f := range figs[1:] {
				if f.CSV() != figs[0].CSV() {
					t.Fatalf("%s: CSV differs between 1 worker and %d workers under -precision",
						tc.id, []int{4, 16}[i])
				}
			}
			if len(figs[0].Rows) == 0 {
				t.Fatalf("%s: no rows produced", tc.id)
			}
		})
	}
}

// TestPrecisionStopsEarly pins that the adaptive rule buys something:
// with a loose target and a raised ceiling, E13 (identity statistic,
// well-behaved distribution) must commit fewer trials than the
// ceiling. The trial count sits in the CSV's "trials" column, so
// comparing two ceilings at a fixed target exposes whether the stop
// fired.
func TestPrecisionStopsEarly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	capped := QuickOptions()
	capped.Precision = 0.25
	capped.MaxTrials = 200
	uncapped := QuickOptions()
	uncapped.MaxTrials = 200

	a := EpidemicTail(capped)
	b := EpidemicTail(uncapped)
	if a.CSV() == b.CSV() {
		t.Fatal("precision run matches the fixed-ceiling run: the stop rule never fired")
	}
}

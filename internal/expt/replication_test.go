package expt

import (
	"runtime"
	"testing"
)

// TestWorkerCountInvariance is the determinism contract of the
// replication engine at the figure level: for a fixed seed, a
// generator must produce identical rows (hence byte-identical CSV) on
// one worker and on a full worker pool. E1 is a single pinned
// trajectory, E6 a multi-protocol trial sweep, E10 the fault-recovery
// sweep with in-trial corruption RNG — together they cover every
// seed-derivation pattern the generators use.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, tc := range []struct {
		id  string
		gen func(Options) Figure
	}{
		{"E1", Figure2},
		{"E6", BaselineComparison},
		{"E10", FaultRecovery},
	} {
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			serial := QuickOptions()
			serial.Workers = 1
			pool := QuickOptions()
			// At least 4 workers even on a single-core runner: the
			// goroutines then interleave, which is exactly the
			// scheduling nondeterminism the engine must be immune to.
			pool.Workers = runtime.NumCPU()
			if pool.Workers < 4 {
				pool.Workers = 4
			}

			a := tc.gen(serial)
			b := tc.gen(pool)
			if a.CSV() != b.CSV() {
				t.Fatalf("%s: CSV differs between 1 worker and %d workers", tc.id, pool.Workers)
			}
			if len(a.Rows) == 0 {
				t.Fatalf("%s: no rows produced", tc.id)
			}
		})
	}
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/coin"
	"ssrank/internal/core"
	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// AblationCWait (E8) probes the constant the analysis leans on hardest:
// c_wait, the length of the leader's waiting period relative to log n
// (Lemma 6 requires c_wait ≥ 24 + 48γ; the paper's simulations get
// away with 2). For the non-self-stabilizing protocol a too-small
// c_wait makes the leader re-enter with rank 1 before all phase agents
// advanced, producing duplicate ranks the protocol can never repair —
// measured as the silent-but-invalid rate. For StableRanking the same
// error is detected and repaired, costing resets instead.
func AblationCWait(opts Options) Figure {
	n := 128
	trials := 30
	if opts.Quick {
		n = 64
		trials = 10
	}
	cwaits := []float64{0.25, 0.5, 1, 2, 4}

	fig := Figure{
		ID:    "E8",
		Title: fmt.Sprintf("Ablation — c_wait (n=%d): failure without self-stabilization, resets with it", n),
		Header: []string{"c_wait", "core_invalid_rate", "core_median_norm",
			"stable_mean_resets", "stable_median_norm"},
	}
	coreFail := plot.Series{Name: "core silent-invalid rate"}
	stResets := plot.Series{Name: "stable mean resets / 10"}

	for _, cw := range cwaits {
		norm := float64(n) * float64(n) * math.Log2(float64(n))

		// Non-self-stabilizing protocol: count silent-but-invalid
		// outcomes. The statistic is the failure indicator — the rate
		// is the quantity the ablation plots, so precision stopping
		// targets it directly.
		invalid := 0
		var coreNorms []float64
		coreRes := runTrialsStat(opts, fmt.Sprintf("E8 core c_wait=%.2g", cw), uint64(cw*100)^0x8, trials,
			func(t stepsResult) (float64, bool) {
				if t.ok {
					return 0, true
				}
				return 1, true
			},
			func(_ int, seed uint64) stepsResult {
				p := core.New(n, core.Params{CWait: cw})
				r := sim.New[core.State](p, p.InitialStates(), seed)
				stop := func(ss []core.State) bool { return core.Silent(ss) }
				if _, err := r.RunUntil(stop, 0, budget(n, 300)); err != nil {
					return stepsResult{0, false} // never went silent: also a failure
				}
				return stepsResult{float64(r.Steps()), core.Valid(r.States())}
			})
		for _, t := range coreRes {
			if t.ok {
				coreNorms = append(coreNorms, t.steps/norm)
			} else {
				invalid++
			}
		}

		// Self-stabilizing protocol: always converges; count resets.
		type trialR struct {
			stepsResult
			resets float64
		}
		var stNorms, stRe []float64
		for _, t := range runTrialsStat(opts, fmt.Sprintf("E8 stable c_wait=%.2g", cw), uint64(cw*100)^0x8a5, trials/2,
			func(t trialR) (float64, bool) { return t.steps, t.ok },
			func(_ int, seed uint64) trialR {
				params := stable.DefaultParams()
				params.CWait = cw
				p := stable.New(n, params)
				r := sim.New[stable.State](p, p.InitialStates(), seed)
				_, err := r.RunUntil(stable.Valid, 0, budget(n, 5000))
				return trialR{stepsResult{float64(r.Steps()), err == nil}, float64(p.Resets())}
			}) {
			if !t.ok {
				continue
			}
			stNorms = append(stNorms, t.steps/norm)
			stRe = append(stRe, t.resets)
		}

		invalidRate := float64(invalid) / float64(len(coreRes))
		fig.Rows = append(fig.Rows, []string{
			f2(cw), f2(invalidRate), f4(stats.Median(coreNorms)),
			f2(stats.Mean(stRe)), f4(stats.Median(stNorms)),
		})
		coreFail.X = append(coreFail.X, cw)
		coreFail.Y = append(coreFail.Y, invalidRate)
		stResets.X = append(stResets.X, cw)
		stResets.Y = append(stResets.Y, stats.Mean(stRe)/10)
	}
	fig.ASCII = plot.Lines("c_wait ablation", 72, 14, coreFail, stResets)
	fig.Notes = append(fig.Notes,
		"expected: core's invalid rate falls toward 0 as c_wait grows (Lemma 6's union bound), while stable absorbs small c_wait as extra resets — the operational meaning of self-stabilization")
	return fig
}

// CoinBalance (E9) measures the synthetic coin's imbalance after the
// Lemma 28 warm-up, from the adversarial all-tails start, against both
// the paper's C_LE bound n/(4 log₂ n) and the Ehrenfest-stationary
// scale √n.
func CoinBalance(opts Options) Figure {
	ns := []int{256, 1024, 4096, 16384, 65536}
	trials := 20
	if opts.Quick {
		ns = []int{256, 1024}
		trials = 8
	}
	fig := Figure{
		ID:     "E9",
		Title:  "Lemma 28 — synthetic-coin imbalance after warm-up (all-tails start)",
		Header: []string{"n", "trials", "mean_imbalance", "p95_imbalance", "paper_bound", "sqrt_n"},
	}
	meanLine := plot.Series{Name: "mean imbalance"}
	paperLine := plot.Series{Name: "paper bound n/(4 log n)"}
	sqrtLine := plot.Series{Name: "sqrt(n)"}
	for _, n := range ns {
		imb := runTrialsStat(opts, fmt.Sprintf("E9 n=%d", n), uint64(9*n), trials, statIdent,
			func(_ int, seed uint64) float64 {
				p := coin.NewPopulation(coin.AllZero(n), seed)
				p.Step(4 * coin.WarmupInteractions(n))
				return float64(p.Imbalance())
			})
		pb := coin.BalanceBound(n)
		fig.Rows = append(fig.Rows, []string{
			itoa(n), itoa(len(imb)), f2(stats.Mean(imb)), f2(stats.Quantile(imb, 0.95)), f2(pb), f2(math.Sqrt(float64(n))),
		})
		lg := math.Log2(float64(n))
		meanLine.X = append(meanLine.X, lg)
		meanLine.Y = append(meanLine.Y, stats.Mean(imb))
		paperLine.X = append(paperLine.X, lg)
		paperLine.Y = append(paperLine.Y, pb)
		sqrtLine.X = append(sqrtLine.X, lg)
		sqrtLine.Y = append(sqrtLine.Y, math.Sqrt(float64(n)))
	}
	fig.ASCII = plot.Lines("imbalance vs bounds (x = log₂ n)", 72, 14, meanLine, paperLine, sqrtLine)
	fig.Notes = append(fig.Notes,
		"finding: the toggle process is an Ehrenfest urn — stationary imbalance Θ(√n), so the paper's n/(4 log n) bound is asymptotic and only dominates √n for n ≳ 2¹⁵; the warm-up claim (imbalance collapses from n to the stationary scale) holds at every n")
	return fig
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/core"
	"ssrank/internal/leaderelect"
	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// Theorem1Shape (E4) checks Theorem 1's running-time claim: the
// non-self-stabilizing SpaceEfficientRanking stabilizes in O(n² log n)
// interactions w.h.p., so interactions/(n² log₂ n) must be flat in n.
func Theorem1Shape(opts Options) Figure {
	ns := []int{64, 128, 256, 512, 1024}
	trials := 10
	if opts.Quick {
		ns = []int{64, 128, 256}
		trials = 4
	}
	fig := Figure{
		ID:     "E4",
		Title:  "Theorem 1 — SpaceEfficientRanking stabilization / (n² log₂ n)",
		Header: []string{"n", "trials", "converged", "mean_norm", "ci95_half", "median_norm"},
	}
	line := plot.Series{Name: "normalized stabilization"}
	var meds []float64
	for _, n := range ns {
		label := fmt.Sprintf("E4 n=%d", n)
		runOnce := func(seed uint64, cap int64) (int64, bool) {
			steps, ok, _ := descStabilize(opts, core.Describe(), n, "fresh", 0, seed, cap)
			return steps, ok
		}
		bud := pilotBudget(opts, label, uint64(3*n), budget(n, 200), runOnce)
		var norms []float64
		converged := 0
		res := runTrialsStat(opts, label, uint64(3*n), trials, statSteps, func(_ int, seed uint64) stepsResult {
			steps, ok := runOnce(seed, bud)
			return stepsResult{float64(steps), ok}
		})
		for _, t := range res {
			if !t.ok {
				continue // w.h.p. caveat: occasional LE failures
			}
			converged++
			norms = append(norms, t.steps/(float64(n)*float64(n)*math.Log2(float64(n))))
		}
		mean, ci := stats.MeanCI95(norms)
		med := stats.Median(norms)
		meds = append(meds, med)
		fig.Rows = append(fig.Rows, []string{itoa(n), itoa(len(res)), itoa(converged), f4(mean), f4(ci), f4(med)})
		line.X = append(line.X, math.Log2(float64(n)))
		line.Y = append(line.Y, med)
	}
	fig.ASCII = plot.Lines("Theorem 1 shape (x = log₂ n, y = median interactions/(n² log₂ n))", 72, 12, line)
	if len(meds) >= 2 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"normalized median drifts %.3g -> %.3g across the n range; Theorem 1 predicts O(1) drift", meds[0], meds[len(meds)-1]))
	}
	return fig
}

// Theorem2Shape (E5) checks Theorem 2: StableRanking stabilizes from
// arbitrary configurations in O(n² log n) interactions w.h.p. Three
// adversarial start families are measured.
func Theorem2Shape(opts Options) Figure {
	ns := []int{64, 128, 256, 512}
	trials := 8
	if opts.Quick {
		ns = []int{64, 128}
		trials = 4
	}
	// Display name ↦ the init the descriptor registers under it.
	inits := []struct {
		name string
		init string
	}{
		{"fresh", "fresh"},
		{"worst-case", "worst-case"},
		{"uniform-random", "random"},
	}

	fig := Figure{
		ID:     "E5",
		Title:  "Theorem 2 — StableRanking stabilization / (n² log₂ n) from adversarial starts",
		Header: []string{"init", "n", "trials", "median_norm", "mean_resets"},
	}
	series := make([]plot.Series, len(inits))
	for i := range inits {
		series[i].Name = inits[i].name
	}
	for _, n := range ns {
		for ii, init := range inits {
			type trialR struct {
				stepsResult
				resets float64
			}
			label := fmt.Sprintf("E5 %s n=%d", init.name, n)
			runOnce := func(seed uint64, cap int64) (int64, bool, int64) {
				return descStabilize(opts, stable.Describe(), n, init.init, 0x1417, seed, cap)
			}
			bud := pilotBudget(opts, label, uint64(n*(ii+1)), budget(n, 3000),
				func(seed uint64, cap int64) (int64, bool) {
					steps, ok, _ := runOnce(seed, cap)
					return steps, ok
				})
			var norms, resets []float64
			for _, t := range runTrialsStat(opts, label, uint64(n*(ii+1)), trials,
				func(t trialR) (float64, bool) { return t.steps, t.ok },
				func(_ int, seed uint64) trialR {
					steps, ok, re := runOnce(seed, bud)
					return trialR{stepsResult{float64(steps), ok}, float64(re)}
				}) {
				if !t.ok {
					continue
				}
				norms = append(norms, t.steps/(float64(n)*float64(n)*math.Log2(float64(n))))
				resets = append(resets, t.resets)
			}
			med := stats.Median(norms)
			fig.Rows = append(fig.Rows, []string{init.name, itoa(n), itoa(len(norms)), f4(med), f2(stats.Mean(resets))})
			series[ii].X = append(series[ii].X, math.Log2(float64(n)))
			series[ii].Y = append(series[ii].Y, med)
		}
	}
	fig.ASCII = plot.Lines("Theorem 2 shape (x = log₂ n, y = median interactions/(n² log₂ n))", 72, 14, series...)
	fig.Notes = append(fig.Notes,
		"Theorem 2 predicts flat normalized curves for every start family; the reset lottery (constant per-attempt LE success, Lemma 32) adds variance but no growth")
	return fig
}

// LEShape (E11) measures the leader-election substrate against the
// Lemma 15 interface: unique leader within O(n log² n) interactions
// w.h.p.
func LEShape(opts Options) Figure {
	ns := []int{64, 128, 256, 512, 1024}
	trials := 20
	if opts.Quick {
		ns = []int{64, 128, 256}
		trials = 8
	}
	fig := Figure{
		ID:     "E11",
		Title:  "Lemma 15 — leaderelect substrate: time to unique leader / (n log₂² n)",
		Header: []string{"n", "trials", "unique_leader_rate", "median_norm"},
	}
	line := plot.Series{Name: "median normalized election time"}
	for _, n := range ns {
		lg := math.Log2(float64(n))
		var norms []float64
		unique := 0
		res := runTrialsStat(opts, fmt.Sprintf("E11 n=%d", n), uint64(11*n), trials, statSteps,
			func(_ int, seed uint64) stepsResult {
				p := leaderelect.New(n)
				r := sim.New[leaderelect.State](p, p.InitialStates(), seed)
				steps, err := r.RunUntil(leaderelect.UniqueLeaderElected, 0, int64(400*float64(n)*lg*lg))
				return stepsResult{float64(steps), err == nil}
			})
		for _, t := range res {
			if !t.ok {
				continue
			}
			unique++
			norms = append(norms, t.steps/(float64(n)*lg*lg))
		}
		fig.Rows = append(fig.Rows, []string{itoa(n), itoa(len(res)), f2(float64(unique) / float64(len(res))), f4(stats.Median(norms))})
		line.X = append(line.X, lg)
		line.Y = append(line.Y, stats.Median(norms))
	}
	fig.ASCII = plot.Lines("Lemma 15 shape (x = log₂ n)", 72, 12, line)
	fig.Notes = append(fig.Notes,
		"the substituted substrate meets the interface statistically: near-1 unique-leader rate and flat normalized time (DESIGN.md substitution note)")
	return fig
}

// FastLESuccess (E12) measures FastLeaderElection's one-shot
// probability of electing exactly one leader against Lemma 30's bound
// 1/(8e) ≈ 0.046.
func FastLESuccess(opts Options) Figure {
	ns := []int{64, 256, 1024}
	trials := 300
	if opts.Quick {
		ns = []int{64, 256}
		trials = 60
	}
	fig := Figure{
		ID:     "E12",
		Title:  "Lemma 30 — FastLeaderElection one-shot unique-winner probability",
		Header: []string{"n", "trials", "unique_rate", "zero_rate", "multi_rate", "lemma30_bound"},
	}
	bound := 1 / (8 * math.E)
	for _, n := range ns {
		uniqueC, zeroC, multiC := 0, 0, 0
		// The statistic is the unique-winner indicator: the precision
		// rule then targets the success probability the lemma bounds.
		res := runTrialsStat(opts, fmt.Sprintf("E12 n=%d", n), uint64(12*n), trials,
			func(leaders int) (float64, bool) {
				if leaders == 1 {
					return 1, true
				}
				return 0, true
			},
			func(_ int, seed uint64) int {
				return oneShotFastLE(n, seed)
			})
		for _, leaders := range res {
			switch {
			case leaders == 1:
				uniqueC++
			case leaders == 0:
				zeroC++
			default:
				multiC++
			}
		}
		fig.Rows = append(fig.Rows, []string{
			itoa(n), itoa(len(res)),
			f2(float64(uniqueC) / float64(len(res))),
			f2(float64(zeroC) / float64(len(res))),
			f2(float64(multiC) / float64(len(res))),
			f4(bound),
		})
	}
	fig.ASCII = plot.Table(fig.Header, fig.Rows)
	fig.Notes = append(fig.Notes,
		"Lemma 30 guarantees ≥ 1/(8e) ≈ 0.046; the measured unique rate is typically ≈ 1/e ≈ 0.37 (the bound is loose)")
	return fig
}

// oneShotFastLE runs FastLeaderElection until every agent has decided
// and returns the number of elected leaders (agents that transitioned
// to the waiting state or hold isLeader).
func oneShotFastLE(n int, seed uint64) int {
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), seed)
	decided := func(ss []stable.State) bool {
		for i := range ss {
			if ss[i].Mode == stable.ModeLE && !ss[i].LeaderDone {
				return false
			}
		}
		return true
	}
	if _, err := r.RunUntil(decided, 0, int64(100*n*17)); err != nil {
		return -1
	}
	leaders := 0
	for _, s := range r.States() {
		if s.Mode == stable.ModeWait ||
			(s.Mode == stable.ModeLE && s.IsLeader) ||
			(s.Mode == stable.ModeRanked && s.Rank == 1) {
			// A winner is waiting, still flagged, or already took its
			// rank-1 seat.
			leaders++
		}
	}
	return leaders
}

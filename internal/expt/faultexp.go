package expt

import (
	"fmt"
	"math"

	"ssrank/internal/faults"
	"ssrank/internal/plot"
	"ssrank/internal/rng"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// FaultRecovery (E10) is the self-stabilization experiment the theorem
// promises but the paper's evaluation only samples (Fig. 2 is one
// worst-case instance): corrupt k agents of a stabilized population
// with uniformly random states and measure the re-stabilization time.
func FaultRecovery(opts Options) Figure {
	n := 256
	trials := 10
	if opts.Quick {
		n = 64
		trials = 4
	}
	ks := []int{1, n / 16, n / 4, n}

	fig := Figure{
		ID:     "E10",
		Title:  fmt.Sprintf("Self-stabilization — recovery after corrupting k of %d agents", n),
		Header: []string{"k", "trials", "recovered", "median_recovery_over_n2logn", "mean_resets"},
	}
	line := plot.Series{Name: "median normalized recovery"}

	for _, k := range ks {
		type trialR struct {
			recovered bool
			norm      float64
			resets    float64
			hasResets bool
		}
		var norms, resets []float64
		recovered := 0
		res := runTrialsStat(opts, fmt.Sprintf("E10 k=%d", k), uint64(10*k+n), trials,
			func(t trialR) (float64, bool) { return t.norm, t.recovered },
			func(_ int, seed uint64) trialR {
				p := stable.New(n, stable.DefaultParams())
				r := sim.New[stable.State](p, p.InitialStates(), seed)
				if _, err := r.RunUntil(stable.Valid, 0, budget(n, 3000)); err != nil {
					return trialR{}
				}
				start := r.Steps()
				faults.Corrupt(r.States(), k, rng.New(seed^0xfa017), p.RandomState)
				if stable.Valid(r.States()) {
					// The corruption happened to preserve the permutation
					// (possible for tiny k); recovery time is zero.
					return trialR{recovered: true}
				}
				if _, err := r.RunUntil(stable.Valid, 0, start+budget(n, 3000)); err != nil {
					return trialR{}
				}
				return trialR{
					recovered: true,
					norm:      float64(r.Steps()-start) / (float64(n) * float64(n) * math.Log2(float64(n))),
					resets:    float64(p.Resets()),
					hasResets: true,
				}
			})
		for _, t := range res {
			if !t.recovered {
				continue
			}
			recovered++
			norms = append(norms, t.norm)
			if t.hasResets {
				resets = append(resets, t.resets)
			}
		}
		fig.Rows = append(fig.Rows, []string{
			itoa(k), itoa(len(res)), itoa(recovered), f4(stats.Median(norms)), f2(stats.Mean(resets)),
		})
		line.X = append(line.X, float64(k))
		line.Y = append(line.Y, stats.Median(norms))
	}
	fig.ASCII = plot.Lines("median recovery / (n² log₂ n) vs corrupted agents k", 72, 12, line)
	fig.Notes = append(fig.Notes,
		"Theorem 2 promises O(n² log n) recovery regardless of k; even k=1 can force a full reset (duplicate rank), so the curve is expected to be roughly flat in k")
	return fig
}

// DeadConfigReset (E14) measures the detection machinery of §V-C /
// Lemmas 24–26: from each family of dead configurations (no productive
// pairs), how long until the protocol triggers its first reset, and
// until full stabilization.
func DeadConfigReset(opts Options) Figure {
	n := 128
	trials := 10
	if opts.Quick {
		n = 64
		trials = 4
	}
	configs := []struct {
		name string
		make func(p *stable.Protocol) []stable.State
	}{
		{"duplicate-ranks (L24)", func(p *stable.Protocol) []stable.State { return p.DuplicateRanksInit() }},
		{"single-unranked (L25)", func(p *stable.Protocol) []stable.State { return p.SingleUnrankedInit() }},
		{"many-unranked (L26)", func(p *stable.Protocol) []stable.State { return p.ManyUnrankedInit(n / 4) }},
	}

	fig := Figure{
		ID:     "E14",
		Title:  fmt.Sprintf("Lemmas 24–26 — dead-configuration detection (n=%d)", n),
		Header: []string{"config", "trials", "median_detect_over_n2logn", "median_stabilize_over_n2logn", "dominant_reason"},
	}
	for ci, cfg := range configs {
		type trialR struct {
			detected  bool
			detect    float64
			breakdown map[string]int64
			total     float64
			hasTotal  bool
		}
		var detect, total []float64
		reasons := map[string]int64{}
		e14res := runTrialsStat(opts, fmt.Sprintf("E14 %s", cfg.name), uint64(14*n)^uint64(ci)<<8, trials,
			func(t trialR) (float64, bool) { return t.detect, t.detected },
			func(_ int, seed uint64) trialR {
				p := stable.New(n, stable.DefaultParams())
				r := sim.New[stable.State](p, cfg.make(p), seed)
				steps, err := r.RunUntil(func([]stable.State) bool { return p.Resets() > 0 }, 0, budget(n, 3000))
				if err != nil {
					return trialR{}
				}
				norm := float64(n) * float64(n) * math.Log2(float64(n))
				out := trialR{detected: true, detect: float64(steps) / norm, breakdown: p.ResetBreakdown()}
				if _, err := r.RunUntil(stable.Valid, 0, steps+budget(n, 3000)); err == nil {
					out.total, out.hasTotal = float64(r.Steps())/norm, true
				}
				return out
			})
		for _, t := range e14res {
			if !t.detected {
				continue
			}
			detect = append(detect, t.detect)
			for reason, c := range t.breakdown {
				reasons[reason] += c
			}
			if t.hasTotal {
				total = append(total, t.total)
			}
		}
		dominant, best := "-", int64(0)
		for reason, c := range reasons {
			if c > best {
				dominant, best = reason, c
			}
		}
		fig.Rows = append(fig.Rows, []string{
			cfg.name, itoa(len(e14res)), f4(stats.Median(detect)), f4(stats.Median(total)), dominant,
		})
	}
	fig.ASCII = plot.Table(fig.Header, fig.Rows)
	fig.Notes = append(fig.Notes,
		"Lemmas 24–26 bound detection by O(n² log n) w.h.p. for all three families; duplicate ranks detect via direct meetings (fast), the unranked families via the liveness counter (the Θ(n² log n) term)")
	return fig
}

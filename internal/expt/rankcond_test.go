package expt

import (
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/core"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

// TestRankCondMatchesValid wires each protocol's RankOf extractor into
// the engine's incremental condition and checks it against the
// protocol's own Valid predicate: RunUntilCond must stop at a
// configuration Valid accepts, and the condition must agree with Valid
// at every sampled point along a real run. This is the equivalence the
// RankOf doc comments promise.
func TestRankCondMatchesValid(t *testing.T) {
	const n = 32

	t.Run("stable", func(t *testing.T) {
		p := stable.New(n, stable.DefaultParams())
		r := sim.New[stable.State](p, p.InitialStates(), 3)
		cond := sim.NewRankCond(0, stable.RankOf)
		checkAgainstValid(t, r, cond, stable.Valid, budget(n, 3000))
	})
	t.Run("core", func(t *testing.T) {
		p := core.New(n, core.DefaultParams())
		r := sim.New[core.State](p, p.InitialStates(), 5)
		cond := sim.NewRankCond(0, core.RankOf)
		checkAgainstValid(t, r, cond, core.Valid, budget(n, 200))
	})
	t.Run("cai", func(t *testing.T) {
		p := cai.New(n)
		r := sim.New[cai.State](p, p.InitialStates(), 7)
		cond := sim.NewRankCond(0, cai.RankOf)
		checkAgainstValid(t, r, cond, cai.Valid, int64(2000*n*n*n))
	})
	t.Run("aware", func(t *testing.T) {
		p := aware.New(n, aware.DefaultParams())
		r := sim.New[aware.State](p, p.InitialStates(), 9)
		cond := sim.NewRankCond(0, aware.RankOf)
		checkAgainstValid(t, r, cond, aware.Valid, budget(n, 3000))
	})
}

// checkAgainstValid alternates short RunUntilCond slices with direct
// Valid evaluations: after every slice the incremental verdict must
// match the brute-force predicate, and the run must end accepted by
// both.
func checkAgainstValid[S any, P sim.Protocol[S]](t *testing.T, r *sim.Runner[S, P], cond sim.Condition[S], valid func([]S) bool, maxSteps int64) {
	t.Helper()
	for r.Steps() < maxSteps {
		chunk := r.Steps() + 500
		if chunk > maxSteps {
			chunk = maxSteps
		}
		_, err := r.RunUntilCond(cond, chunk)
		if got, want := err == nil, valid(r.States()); got != want {
			t.Fatalf("after %d interactions: RunUntilCond stopped=%v but Valid=%v", r.Steps(), got, want)
		}
		if err == nil {
			return // converged, and Valid agrees
		}
	}
	t.Fatalf("did not converge within %d interactions", maxSteps)
}

package expt

// Pilot-trial adaptive budgets. Every stabilization sweep used to cap
// its trials at a hard-coded c·n²·log n (or c·n³) constant chosen to
// be safe for the slowest configuration ever observed — which makes a
// *failing* trial catastrophically expensive: a cai run at n=256 that
// never converges burns its entire 2000·n³ ≈ 3.4·10¹⁰-interaction
// budget. A short pilot bounds that downside: run a couple of trials
// under the hard ceiling, take the slowest observed convergence, pad
// it with generous headroom, and cap the real sweep there. Converging
// trials are unaffected (they stop at convergence either way); only
// the cost of failures shrinks, from the hard ceiling to
// headroom × (observed convergence time).
//
// Determinism: pilot seeds derive from (Options.Seed, salt, pilot
// index) through the same replicate.Seed path as sweep trials (under a
// distinct salt, so pilots never reuse sweep seeds), and pilots run
// through the same streaming engine — the derived budget is a pure
// function of Options.Seed and is bit-identical at any worker count.

const (
	// pilotTrials is the pilot size. Two is enough: the budget wants a
	// coarse scale estimate, not a tail quantile — headroom covers the
	// spread.
	pilotTrials = 2
	// pilotHeadroom pads the slowest pilot convergence. Stabilization
	// times concentrate around their mean w.h.p. (the paper's Θ-bounds
	// come with exponential tails), but the reset lottery of the
	// self-stabilizing protocol has a constant per-attempt success
	// rate, so a generous 16× absorbs runs that lose several attempts.
	pilotHeadroom = 16
	// pilotSalt decorrelates pilot seeds from sweep seeds sharing the
	// same loop salt.
	pilotSalt = 0x9110a7
)

// pilotOutcome is one pilot trial's report: interactions consumed and
// whether the run converged under the ceiling.
type pilotOutcome struct {
	steps int64
	ok    bool
}

// pilotBudget derives a sweep's interaction budget from a short pilot.
// run executes one trial with the given seed under cap and reports the
// interactions consumed and whether it converged. The result is
// headroom × the slowest converging pilot, clamped to the hard ceiling;
// when no pilot converges (or the padding overflows) the ceiling
// stands — adaptivity only ever tightens the cap, never loosens it, so
// a mis-estimating pilot can cost sweep trials their convergence but
// can never exceed the old hard-coded budget.
func pilotBudget(o Options, label string, salt uint64, ceiling int64, run func(seed uint64, cap int64) (int64, bool)) int64 {
	worst := int64(-1)
	for _, p := range runTrials(o, label+" pilot", salt^pilotSalt, pilotTrials, func(_ int, seed uint64) pilotOutcome {
		steps, ok := run(seed, ceiling)
		return pilotOutcome{steps, ok}
	}) {
		if p.ok && p.steps > worst {
			worst = p.steps
		}
	}
	if worst < 0 {
		return ceiling
	}
	derived := worst * pilotHeadroom
	if derived <= 0 || derived > ceiling {
		return ceiling
	}
	return derived
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/baseline/sudo"
	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// LooseVsSilent (E18) measures the related-work trade-off of §II
// between loosely-stabilizing leader election (Sudo et al.) and the
// paper's silent, ranking-based leader election:
//
//   - convergence: loose LE reaches a unique leader far faster than
//     any silent protocol, evading the Ω(n² log n) lower bound by
//     never becoming silent (this simplified variant pays Θ(n²) for
//     duel elimination; Sudo et al.'s full constructions reach
//     O(n log n));
//   - permanence: the silent protocol holds the leader forever (it is
//     a stable configuration), while loose LE only holds w.h.p. for a
//     holding time tuned by its timeout factor.
func LooseVsSilent(opts Options) Figure {
	ns := []int{64, 128, 256, 512}
	trials := 10
	holdBudgetFactor := 2000.0 // interactions (×n·log n) we probe the holding time for
	if opts.Quick {
		ns = []int{64, 128}
		trials = 4
		holdBudgetFactor = 200
	}

	fig := Figure{
		ID:    "E18",
		Title: "Loose vs silent leader election — convergence and holding time",
		Header: []string{"n", "loose_median_conv_over_n2", "loose_survived_hold_budget",
			"silent_median_conv_over_n2logn", "speedup"},
	}
	looseLine := plot.Series{Name: "loose conv / n²"}
	silentLine := plot.Series{Name: "silent conv / (n² log n)"}

	for _, n := range ns {
		lg := math.Log2(float64(n))

		// Loosely-stabilizing: convergence from the drained no-leader
		// start, then probe the holding time.
		type looseR struct {
			stepsResult
			held bool
		}
		var convs []float64
		survived := 0
		for _, t := range runTrialsStat(opts, fmt.Sprintf("E18 loose n=%d", n), uint64(18*n), trials,
			func(t looseR) (float64, bool) { return t.steps, t.ok },
			func(_ int, seed uint64) looseR {
				d := sudo.Describe(sudo.DefaultTimeoutFactor)
				p, r := descRunner(opts, 1, d, n, "fresh", 0, seed)
				// Exact stopping matters doubly here: uniqueness is
				// transient for loose LE, so a polled scan can sail
				// through a short uniqueness window entirely.
				steps, err := r.RunUntilExact(sim.DescCond(d, p), int64(1000*float64(n)*lg))
				if err != nil {
					return looseR{}
				}
				out := looseR{stepsResult{float64(steps), true}, true}
				// Holding probe: does the unique leader survive the budget?
				// The engine may sit up to one sub-batch (serial) or one
				// batch (sharded) past the hitting time — uniqueness is
				// not a silent condition — so check the probe's start state
				// first: if uniqueness already broke in that window, the
				// hold failed immediately.
				if !sudo.UniqueLeader(r.States()) {
					out.held = false
					return out
				}
				probe := int64(holdBudgetFactor * float64(n) * lg / 100)
				for i := 0; i < 100; i++ {
					r.Run(probe)
					if !sudo.UniqueLeader(r.States()) {
						out.held = false
						break
					}
				}
				return out
			}) {
			if !t.ok {
				continue
			}
			convs = append(convs, t.steps/(float64(n)*float64(n)))
			if t.held {
				survived++
			}
		}

		// Silent (the paper's protocol): convergence to a valid ranking
		// = permanent leader.
		silentLabel := fmt.Sprintf("E18 silent n=%d", n)
		silentOnce := func(seed uint64, cap int64) (int64, bool) {
			steps, ok, _ := descStabilize(opts, stable.Describe(), n, "fresh", 0, seed, cap)
			return steps, ok
		}
		silentBud := pilotBudget(opts, silentLabel, uint64(18*n)^0x511e47, budget(n, 3000), silentOnce)
		var silentConvs []float64
		for _, t := range runTrialsStat(opts, silentLabel, uint64(18*n)^0x511e47, trials/2+1, statSteps,
			func(_ int, seed uint64) stepsResult {
				steps, ok := silentOnce(seed, silentBud)
				return stepsResult{float64(steps), ok}
			}) {
			if t.ok {
				silentConvs = append(silentConvs, t.steps/(float64(n)*float64(n)*lg))
			}
		}

		speedup := stats.Median(silentConvs) * lg / stats.Median(convs)
		fig.Rows = append(fig.Rows, []string{
			itoa(n),
			f4(stats.Median(convs)),
			fmt.Sprintf("%d/%d", survived, len(convs)),
			f4(stats.Median(silentConvs)),
			f2(speedup),
		})
		looseLine.X = append(looseLine.X, lg)
		looseLine.Y = append(looseLine.Y, stats.Median(convs))
		silentLine.X = append(silentLine.X, lg)
		silentLine.Y = append(silentLine.Y, stats.Median(silentConvs))
	}
	fig.ASCII = plot.Lines("normalized convergence (x = log₂ n); note the different normalizations", 72, 12, looseLine, silentLine)
	fig.Notes = append(fig.Notes,
		"loose LE converges in Θ(n²) here (duel-dominated; the literature's optimal variants reach O(n log n)) — already a ×(const·log n) absolute speedup over the silent protocol — but keeps churning and only holds the leader w.h.p.; the paper's protocol converges slower and then never changes again (closure tests + model checker)")
	return fig
}

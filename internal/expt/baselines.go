package expt

import (
	"fmt"
	"math"

	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/plot"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// BaselineComparison (E6) compares stabilization times of the
// related-work baselines against StableRanking:
//
//   - cai: n states, Θ(n³) expected — the space-minimal extreme;
//   - stable: n + O(log² n) states, Θ(n² log n) — the paper;
//
// and fits log-log growth exponents, reproducing the related-work
// table of §II in measured form ("who wins, by what factor, where the
// crossover falls").
func BaselineComparison(opts Options) Figure {
	ns := []int{16, 32, 64, 128, 256}
	trials := 6
	if opts.Quick {
		ns = []int{16, 32, 64}
		trials = 3
	}
	fig := Figure{
		ID:     "E6",
		Title:  "Related work — stabilization interactions: cai (n states) vs StableRanking",
		Header: []string{"protocol", "n", "trials", "median_interactions", "median_over_n2logn"},
	}

	caiLine := plot.Series{Name: "cai (Θ(n³))"}
	stableLine := plot.Series{Name: "stable (Θ(n² log n))"}
	var caiX, caiY, stX, stY []float64

	for _, n := range ns {
		lg := math.Log2(float64(n))

		// cai is where the pilot budget earns its keep: the hard
		// ceiling is 2000·n³ interactions, so a single non-converging
		// trial at n=256 would cost more than the whole sweep.
		caiLabel := fmt.Sprintf("E6 cai n=%d", n)
		caiOnce := func(seed uint64, cap int64) (int64, bool) {
			steps, ok, _ := descStabilize(opts, cai.Describe(), n, "fresh", 0, seed, cap)
			return steps, ok
		}
		caiBud := pilotBudget(opts, caiLabel, uint64(61*n)^0xca1,
			int64(2000)*int64(n)*int64(n)*int64(n), caiOnce)
		var caiTimes []float64
		for _, t := range runTrialsStat(opts, caiLabel, uint64(61*n)^0xca1, trials, statSteps,
			func(_ int, seed uint64) stepsResult {
				steps, ok := caiOnce(seed, caiBud)
				return stepsResult{float64(steps), ok}
			}) {
			if t.ok {
				caiTimes = append(caiTimes, t.steps)
			}
		}
		med := stats.Median(caiTimes)
		fig.Rows = append(fig.Rows, []string{"cai", itoa(n), itoa(len(caiTimes)), f4(med), f4(med / (float64(n) * float64(n) * lg))})
		caiLine.X = append(caiLine.X, lg)
		caiLine.Y = append(caiLine.Y, math.Log2(med))
		caiX = append(caiX, float64(n))
		caiY = append(caiY, med)

		stLabel := fmt.Sprintf("E6 stable n=%d", n)
		stOnce := func(seed uint64, cap int64) (int64, bool) {
			steps, ok, _ := descStabilize(opts, stable.Describe(), n, "fresh", 0, seed, cap)
			return steps, ok
		}
		stBud := pilotBudget(opts, stLabel, uint64(61*n)^0x57ab1e, budget(n, 3000), stOnce)
		var stTimes []float64
		for _, t := range runTrialsStat(opts, stLabel, uint64(61*n)^0x57ab1e, trials, statSteps,
			func(_ int, seed uint64) stepsResult {
				steps, ok := stOnce(seed, stBud)
				return stepsResult{float64(steps), ok}
			}) {
			if t.ok {
				stTimes = append(stTimes, t.steps)
			}
		}
		med = stats.Median(stTimes)
		fig.Rows = append(fig.Rows, []string{"stable", itoa(n), itoa(len(stTimes)), f4(med), f4(med / (float64(n) * float64(n) * lg))})
		stableLine.X = append(stableLine.X, lg)
		stableLine.Y = append(stableLine.Y, math.Log2(med))
		stX = append(stX, float64(n))
		stY = append(stY, med)
	}

	fig.ASCII = plot.Lines("log₂ median interactions (x = log₂ n)", 72, 14, caiLine, stableLine)
	if len(caiX) >= 2 && len(stX) >= 2 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"log-log growth exponents: cai %.2f (theory 3), stable %.2f (theory 2 + log factor)",
			stats.LogLogSlope(caiX, caiY), stats.LogLogSlope(stX, stY)))
		last := len(caiY) - 1
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"at n=%d the paper's protocol is ×%.1f faster than the n-state baseline; the gap widens linearly in n",
			int(caiX[last]), caiY[last]/stY[len(stY)-1]))
	}
	return fig
}

// TradeoffEpsilon (E7) measures the time-vs-range trade-off of the
// relaxed-range protocol (Gąsieniec et al.): interactions to a silent
// valid ranking over the range [1, (1+ε)n] versus their lower bound
// n(n−1)/(2(r+1)), r = effective slack.
func TradeoffEpsilon(opts Options) Figure {
	n := 256
	trials := 10
	if opts.Quick {
		n = 100
		trials = 5
	}
	// ε = 0 with n a power of two gives a genuinely tight identifier
	// space (m = n); the power-of-two rounding makes every ε in (0, 1]
	// equivalent at n = 256 (m = 512), so the sweep covers the distinct
	// effective spaces {n, 2n, 4n, 8n}.
	epsilons := []float64{0, 0.25, 2, 4}

	fig := Figure{
		ID:     "E7",
		Title:  fmt.Sprintf("Trade-off — interval protocol, interactions vs ε (n=%d)", n),
		Header: []string{"epsilon", "effective_m", "trials", "median_interactions", "lower_bound"},
	}
	measured := plot.Series{Name: "measured median"}
	bound := plot.Series{Name: "lower bound n(n-1)/(2(r+1))"}
	for _, eps := range epsilons {
		p := interval.New(n, eps)
		label := fmt.Sprintf("E7 eps=%.2f", eps)
		runOnce := func(seed uint64, cap int64) (int64, bool) {
			steps, ok, _ := descStabilize(opts, interval.Describe(eps), n, "fresh", 0, seed, cap)
			return steps, ok
		}
		bud := pilotBudget(opts, label, uint64(eps*1000)^uint64(n), int64(5000)*int64(n)*int64(n), runOnce)
		var times []float64
		for _, t := range runTrialsStat(opts, label, uint64(eps*1000)^uint64(n), trials, statSteps,
			func(_ int, seed uint64) stepsResult {
				steps, ok := runOnce(seed, bud)
				return stepsResult{float64(steps), ok}
			}) {
			if t.ok {
				times = append(times, t.steps)
			}
		}
		slack := int(p.M()) - n
		lb := interval.LowerBound(n, slack)
		med := stats.Median(times)
		fig.Rows = append(fig.Rows, []string{f2(eps), itoa(int(p.M())), itoa(len(times)), f4(med), f4(lb)})
		measured.X = append(measured.X, eps)
		measured.Y = append(measured.Y, math.Log2(med))
		bound.X = append(bound.X, eps)
		bound.Y = append(bound.Y, math.Log2(lb))
	}
	fig.ASCII = plot.Lines("log₂ interactions vs ε", 72, 14, measured, bound)
	fig.Notes = append(fig.Notes,
		"the measured curve must sit above the lower bound everywhere, and the tight range (ε=0, r=0, lower bound n(n−1)/2) must be far slower than any slack — the axis of the trade-off StableRanking refuses (it pays Θ(n² log n) time to keep the exact range)")
	fig.Notes = append(fig.Notes,
		"our simplified splitter does not attain Gąsieniec et al.'s O(n log n/ε) upper bound (descents rendezvous within subtrees), so beyond ≈2n of slack the curve flattens; the qualitative ordering tight ≫ slack is what carries the comparison")
	return fig
}

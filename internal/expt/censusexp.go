package expt

import (
	"fmt"
	"math"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/census"
	"ssrank/internal/core"
	"ssrank/internal/plot"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

// CensusTable (E3) reproduces the paper's space claims as a table:
// declared state-space sizes (and overheads beyond the n ranks) of
// every protocol in the repository, plus the empirically observed
// distinct-state counts for the paper's protocol. This is the measured
// form of the §I comparison — "exponentially fewer overhead states
// than Burman et al.'s n + Ω(n)".
func CensusTable(opts Options) Figure {
	ns := []int{64, 256, 1024, 4096}
	if opts.Quick {
		ns = []int{64, 256}
	}
	fig := Figure{
		ID:    "E3",
		Title: "State-space census — total states and overhead beyond the n ranks",
		Header: []string{"n", "stable_total", "stable_overhead", "aware_overhead",
			"cai_overhead", "interval_total(eps=1)", "core_paper_accounted", "stable_observed"},
	}
	// The observed-state runs are the only expensive part of the
	// census; fan them out across the ns. Each keeps the experiment
	// seed (the observation is pinned to one reference run per n).
	observedFor := runTrials(opts, "E3 observed-states", 0xce4545, len(ns), func(i int, _ uint64) int {
		if ns[i] > 512 {
			return -1
		}
		return observedStableStates(ns[i], opts.Seed)
	})
	for i, n := range ns {
		sp := stable.New(n, stable.DefaultParams())
		ap := aware.New(n, aware.DefaultParams())
		cp := cai.New(n)
		ip := interval.New(n, 1.0)
		_, corePaper := census.DeclaredCore(core.New(n, core.DefaultParams()))

		observed := "-"
		if observedFor[i] >= 0 {
			observed = itoa(observedFor[i])
		}
		fig.Rows = append(fig.Rows, []string{
			itoa(n),
			itoa(census.DeclaredStable(sp)),
			itoa(census.OverheadStable(sp)),
			itoa(census.DeclaredAware(ap) - n),
			itoa(census.DeclaredCai(cp) - n),
			itoa(census.DeclaredInterval(ip)),
			itoa(corePaper),
			observed,
		})
	}
	fig.ASCII = plot.Table(fig.Header, fig.Rows)
	last := ns[len(ns)-1]
	sOv := census.OverheadStable(stable.New(last, stable.DefaultParams()))
	aOv := census.DeclaredAware(aware.New(last, aware.DefaultParams())) - last
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"at n=%d: stable overhead %d = %.0f·log₂²n vs aware overhead %d = %.1f·n — the paper's exponential improvement in overhead states",
		last, sOv, float64(sOv)/sq(math.Log2(float64(last))), aOv, float64(aOv)/float64(last)))
	fig.Notes = append(fig.Notes,
		"cai's overhead is 0 (the absolute minimum) at the cost of Θ(n³) time (E6); interval buys O(n log n/ε) time with a relaxed range")
	return fig
}

func sq(x float64) float64 { return x * x }

// observedStableStates runs StableRanking to stabilization and counts
// the distinct states visited.
func observedStableStates(n int, seed uint64) int {
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), seed)
	tr := census.NewTracker[stable.State]()
	tr.Observe(r.States())
	max := budget(n, 3000)
	for r.Steps() < max && !stable.Valid(r.States()) {
		r.Run(int64(n))
		tr.Observe(r.States())
	}
	return tr.Count()
}

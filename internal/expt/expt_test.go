package expt

import (
	"strings"
	"testing"
)

// TestAllQuickExperimentsProduceData runs every experiment at quick
// scale and checks structural health: rows present, CSV well-formed,
// ASCII non-empty, determinism across runs.
func TestAllQuickExperimentsProduceData(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	opts := QuickOptions()
	figs := All(opts)
	if len(figs) != len(Registry) {
		t.Fatalf("All returned %d figures, registry has %d", len(figs), len(Registry))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if seen[f.ID] {
			t.Fatalf("duplicate figure ID %s", f.ID)
		}
		seen[f.ID] = true
		if len(f.Rows) == 0 {
			t.Errorf("%s: no data rows", f.ID)
		}
		for _, row := range f.Rows {
			if len(row) != len(f.Header) {
				t.Errorf("%s: row width %d != header width %d", f.ID, len(row), len(f.Header))
			}
		}
		if !strings.Contains(f.CSV(), ",") {
			t.Errorf("%s: CSV looks empty", f.ID)
		}
		if f.ASCII == "" {
			t.Errorf("%s: no ASCII rendering", f.ID)
		}
		if f.String() == "" {
			t.Errorf("%s: no String rendering", f.ID)
		}
	}
}

func TestRegistryHasAllExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"} {
		if Registry[id] == nil {
			t.Errorf("registry missing %s", id)
		}
	}
}

func TestFigure2Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a := Figure2(QuickOptions())
	b := Figure2(QuickOptions())
	if a.CSV() != b.CSV() {
		t.Fatal("Figure2 not deterministic for a fixed seed")
	}
}

func TestFigure2ShowsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	f := Figure2(QuickOptions())
	// The run must end stabilized and have at least one reset (the
	// worst-case init is dead until the liveness counter fires).
	joined := strings.Join(f.Notes, "\n")
	if strings.Contains(joined, "NOT stabilized") {
		t.Fatalf("figure 2 run did not stabilize: %v", f.Notes)
	}
	if !strings.Contains(joined, "first reset") {
		t.Fatalf("figure 2 run shows no reset: %v", f.Notes)
	}
}

func TestFig3HittingTimesOrdered(t *testing.T) {
	times := fig3HittingTimes(QuickOptions(), 128, 7)
	prev := 0.0
	for i, v := range times {
		if v < 0 {
			t.Fatalf("fraction %d not reached", i)
		}
		if v < prev {
			t.Fatalf("hitting times not monotone: %v", times)
		}
		prev = v
	}
}

func TestOneShotFastLECounts(t *testing.T) {
	// Across seeds the outcome must take values in {0, 1, 2+} and be
	// frequently 1.
	ones, total := 0, 40
	for seed := 0; seed < total; seed++ {
		l := oneShotFastLE(128, uint64(seed))
		if l < 0 {
			t.Fatalf("seed %d: did not decide", seed)
		}
		if l == 1 {
			ones++
		}
	}
	if ones < total/10 {
		t.Fatalf("unique-leader outcomes: %d/%d, implausibly low", ones, total)
	}
}

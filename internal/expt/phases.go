package expt

import (
	"fmt"

	"ssrank/internal/core"
	"ssrank/internal/plot"
	"ssrank/internal/stats"
)

// PhaseStructure (E17) opens the hood on Lemmas 6 and 7: it segments
// SpaceEfficientRanking runs into the alternating waiting/ranking
// windows of Definition 5 and compares each phase's measured duration
// against the closed-form expectations the proofs use —
// NegBin(⌈c_wait log n⌉, (f_k−1)/(n(n−1))) for waiting windows and a
// sum of geometrics for ranking windows. Matching means the
// implementation realizes the exact stochastic process the analysis
// reasons about, not merely the same asymptotics.
func PhaseStructure(opts Options) Figure {
	n := 512
	trials := 8
	if opts.Quick {
		n = 128
		trials = 4
	}

	p := core.New(n, core.DefaultParams())
	kMax := p.Phases().KMax()

	type trialR struct {
		windows []core.Window
		ok      bool
	}
	// measured[kind][k] collects durations per phase index. Each trial
	// tracks a private protocol instance so windows segment in
	// parallel.
	waitDur := make(map[int32][]float64)
	rankDur := make(map[int32][]float64)
	converged := 0
	// The statistic is the convergence indicator: phase-duration rows
	// need converged runs, so the precision rule targets their rate.
	for _, t := range runTrialsStat(opts, fmt.Sprintf("E17 n=%d", n), uint64(17*n), trials,
		func(t trialR) (float64, bool) {
			if t.ok {
				return 1, true
			}
			return 0, true
		},
		func(_ int, seed uint64) trialR {
			windows, ok := core.TrackWindows(core.New(n, core.DefaultParams()), seed, int64(n), budget(n, 200))
			return trialR{windows, ok}
		}) {
		if !t.ok {
			continue
		}
		converged++
		for _, w := range t.windows {
			if w.Phase > kMax {
				continue
			}
			switch w.Kind {
			case core.WindowWaiting:
				waitDur[w.Phase] = append(waitDur[w.Phase], float64(w.Duration()))
			case core.WindowRanking:
				rankDur[w.Phase] = append(rankDur[w.Phase], float64(w.Duration()))
			}
		}
	}

	fig := Figure{
		ID:    "E17",
		Title: fmt.Sprintf("Lemmas 6–7 — measured vs predicted phase durations (n=%d, %d/%d runs)", n, converged, trials),
		Header: []string{"phase_k", "wait_measured_mean", "wait_predicted_mean", "wait_ratio",
			"rank_measured_mean", "rank_predicted_mean", "rank_ratio"},
	}
	waitRatio := plot.Series{Name: "wait measured/predicted"}
	rankRatio := plot.Series{Name: "rank measured/predicted"}
	for k := int32(1); k <= kMax; k++ {
		wm := stats.Mean(waitDur[k])
		rm := stats.Mean(rankDur[k])
		wp := p.PredictedWaitMean(k)
		rp := p.PredictedRankMean(k)
		wr, rr := wm/wp, rm/rp
		fig.Rows = append(fig.Rows, []string{
			itoa(int(k)), f4(wm), f4(wp), f2(wr), f4(rm), f4(rp), f2(rr),
		})
		if len(waitDur[k]) > 0 {
			waitRatio.X = append(waitRatio.X, float64(k))
			waitRatio.Y = append(waitRatio.Y, wr)
		}
		if len(rankDur[k]) > 0 {
			rankRatio.X = append(rankRatio.X, float64(k))
			rankRatio.Y = append(rankRatio.Y, rr)
		}
	}
	fig.ASCII = plot.Lines("measured/predicted duration per phase k (1 = exact match)", 72, 12, waitRatio, rankRatio)
	fig.Notes = append(fig.Notes,
		"ratios ≈ 1 mean the run realizes the exact NegBin/geometric-sum processes inside Lemmas 6–7; phase 1's waiting window runs long when the start-of-ranking epidemic is still converting leader-electing agents (the C_SR caveat of Lemma 3)")
	fig.Notes = append(fig.Notes,
		"waiting windows grow like 2^k·n·log n (the epidemic is confined to ever-fewer unranked agents) while ranking windows stay ≈ 2n² — the 'successive phases take increasingly longer' effect visible in Fig. 2")
	return fig
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/epidemic"
	"ssrank/internal/plot"
	"ssrank/internal/rng"
	"ssrank/internal/stats"
)

// EpidemicTail (E13) measures one-way epidemic completion times
// OWE(n, m) against the Lemma 14 tail bound
// 3·n²/m·(log m + 2γ log n), the primitive underlying the paper's
// phase-transition broadcasts. The waiting phases of Ranking lengthen
// as ranking progresses precisely because the epidemic is restricted
// to the shrinking subset of unranked agents (m ≈ n·2^{-k}).
func EpidemicTail(opts Options) Figure {
	n := 512
	trials := 60
	if opts.Quick {
		n = 128
		trials = 20
	}
	ms := []int{2, n / 64, n / 16, n / 4, n / 2, n}

	fig := Figure{
		ID:     "E13",
		Title:  "Lemma 14 — one-way epidemic OWE(n, m) completion vs tail bound (γ=1)",
		Header: []string{"m", "trials", "mean", "p99", "bound_gamma1", "violations"},
	}
	meanLine := plot.Series{Name: "mean completion"}
	boundLine := plot.Series{Name: "Lemma 14 bound"}
	for _, m := range ms {
		if m < 2 {
			continue
		}
		bound := epidemic.Bound(n, m, 1)
		violations := 0
		times := runTrialsStat(opts, fmt.Sprintf("E13 m=%d", m), uint64(13*m), trials, statIdent,
			func(_ int, seed uint64) float64 {
				return float64(epidemic.CompletionTime(n, m, rng.New(seed)))
			})
		for _, t := range times {
			if t > bound {
				violations++
			}
		}
		fig.Rows = append(fig.Rows, []string{
			itoa(m), itoa(len(times)), f4(stats.Mean(times)), f4(stats.Quantile(times, 0.99)), f4(bound), itoa(violations),
		})
		meanLine.X = append(meanLine.X, math.Log2(float64(m)))
		meanLine.Y = append(meanLine.Y, math.Log2(stats.Mean(times)))
		boundLine.X = append(boundLine.X, math.Log2(float64(m)))
		boundLine.Y = append(boundLine.Y, math.Log2(bound))
	}
	fig.ASCII = plot.Lines("log₂ completion time vs log₂ m (restricting the epidemic slows it by n/m)", 72, 14, meanLine, boundLine)
	fig.Notes = append(fig.Notes,
		"Lemma 14 permits ≤ 2/n violation probability per trial at γ=1; the bound must upper-envelope the p99 at every m")
	return fig
}

package expt

import (
	"fmt"
	"math"

	"ssrank/internal/plot"
	"ssrank/internal/rng"
	"ssrank/internal/sim/msgnet"
	"ssrank/internal/stable"
	"ssrank/internal/stats"
)

// msgnetInitSalt decorrelates the message-network trials' init
// randomness from the scheduler/fault streams (cf. the facade's
// initSeedSalt; a different constant, so E19 trials and facade runs
// with the same seed stay independent draws).
const msgnetInitSalt = 0x6e6574

// MsgNetFaultRegimes (E19) measures what the paper's model abstracts
// away: how the flagship protocol's stabilization degrades when the
// uniform atomic-interaction scheduler is replaced by a round-based
// message network with an adversarial channel. The grid crosses
// contact graphs (complete/uniform vs a sparse expander) with fault
// regimes (drops, duplicates, delays, and a lossy composite), running
// every cell through internal/sim/msgnet under a common budget.
//
// Two findings are pinned here. First, faults degrade gracefully on
// the complete graph: delays are a pure slowdown (stale requests are
// deferred, not applied), while drops and duplicates cost a
// multiplicative factor in rounds. Second — the headline — the
// protocol needs the complete contact graph: rank conflicts are
// resolved only when the conflicting agents meet directly, so on the
// sparse expander no regime converges at all (convergence column 0),
// not even fault-free.
func MsgNetFaultRegimes(opts Options) Figure {
	n := 64
	trials := 4
	if opts.Quick {
		n = 24
		trials = 2
	}
	// One budget for every cell, a few times the worst observed
	// convergence of the lossy composite; the sparse cells spend it
	// fully — that non-convergence is the measurement.
	cap := budget(n, 150)
	norm := float64(n) * float64(n) * math.Log2(float64(n))

	graphs := []string{msgnet.Uniform, msgnet.Expander}
	regimes := []struct {
		name string
		f    msgnet.Faults
	}{
		{"none", msgnet.Faults{}},
		{"drop5", msgnet.Faults{Drop: 0.05}},
		{"dup5", msgnet.Faults{Dup: 0.05}},
		{"delay4", msgnet.Faults{DelayMax: 4}},
		{"lossy", msgnet.Faults{Drop: 0.02, Dup: 0.02, DelayMax: 2, Reorder: 0.5}},
	}

	fig := Figure{
		ID:    "E19",
		Title: fmt.Sprintf("Message-network fault regimes — stabilization across communication models (n=%d)", n),
		Header: []string{
			"graph", "regime", "trials", "converged",
			"median_rounds", "median_steps_over_n2logn", "slowdown_vs_none",
		},
	}

	d := stable.Describe()
	for gi, graph := range graphs {
		baseline := math.NaN() // median rounds of this graph's fault-free cell
		for ri, regime := range regimes {
			type trialR struct {
				converged bool
				rounds    float64
				steps     float64
			}
			salt := uint64(0xe19)<<16 ^ uint64(gi)<<8 ^ uint64(ri)
			res := runTrialsStat(opts, fmt.Sprintf("E19 %s/%s", graph, regime.name), salt, trials,
				func(t trialR) (float64, bool) { return t.rounds, t.converged },
				func(_ int, seed uint64) trialR {
					p := d.New(n)
					sched, err := msgnet.NewScheduler(graph, n, 0, seed)
					if err != nil {
						panic(err)
					}
					nw := msgnet.New[stable.State](p, d.Init(p, d.Inits[0], rng.New(seed^msgnetInitSalt)), msgnet.Config{
						Sched:  sched,
						Faults: regime.f,
						// The trial pool owns the cores; deliveries
						// stay serial (the trajectory is identical
						// either way).
						Workers: 1,
						Seed:    seed,
					})
					steps, rerr := nw.RunUntil(d.Valid, cap)
					return trialR{
						converged: rerr == nil,
						rounds:    float64(nw.Rounds()),
						steps:     float64(steps),
					}
				})
			var rounds, steps []float64
			converged := 0
			for _, t := range res {
				if !t.converged {
					continue
				}
				converged++
				rounds = append(rounds, t.rounds)
				steps = append(steps, t.steps/norm)
			}
			medRounds, medSteps, slowdown := "-", "-", "-"
			if converged > 0 {
				m := stats.Median(rounds)
				medRounds, medSteps = f4(m), f4(stats.Median(steps))
				if regime.name == "none" {
					baseline = m
				} else if !math.IsNaN(baseline) {
					slowdown = f2(m / baseline)
				}
			}
			fig.Rows = append(fig.Rows, []string{
				graph, regime.name, itoa(len(res)), itoa(converged), medRounds, medSteps, slowdown,
			})
		}
	}
	fig.ASCII = plot.Table(fig.Header, fig.Rows)
	fig.Notes = append(fig.Notes,
		"uniform (complete) graph: every regime converges — delays are a near-pure slowdown, drops/duplicates cost a multiplicative factor in rounds",
		"sparse expander: zero convergence in every regime, fault-free included — rank conflicts are resolved only by direct meetings, so the paper's protocols require the complete contact graph",
		"interaction counts (steps) count delivered requests and are comparable between message-network cells only, not with the in-place engines")
	return fig
}

// Package prof backs the -cpuprofile/-memprofile flags of the CLIs:
// one call to arm the profiles after flag parsing, one deferred call to
// flush them after the measured work. Keeping the sequencing here means
// both binaries profile identically — the DESIGN.md speedup curves cite
// one-line invocations of either CLI, and the profiles they produce
// must be comparable.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start arms profiling: an empty path disables the corresponding
// profile, so Start("", "") is a no-op pair. With a cpuPath, CPU
// profiling begins immediately. The returned stop function must be
// called exactly once after the measured work: it finishes the CPU
// profile and, with a memPath, runs a GC and writes the allocation
// profile (pprof "allocs" — both in-use and cumulative allocation data)
// so the snapshot reflects live state rather than collector timing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}

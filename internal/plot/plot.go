// Package plot renders small ASCII charts and aligned tables for the
// experiment harness: the paper's figures are regenerated as CSV for
// external tooling plus an ASCII rendering for terminal inspection.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Lines renders the series into a width×height character grid with
// axis labels. Series are overlaid; later series win collisions.
func Lines(title string, width, height int, series ...Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			grid[row][cx] = m
		}
	}

	yLabelTop := fmt.Sprintf("%.4g", maxY)
	yLabelBot := fmt.Sprintf("%.4g", minY)
	pad := len(yLabelTop)
	if len(yLabelBot) > pad {
		pad = len(yLabelBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Table renders rows with right-aligned columns under a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header line.
// Cells containing commas or quotes are quoted.
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

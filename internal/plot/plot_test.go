package plot

import (
	"strings"
	"testing"
)

func TestLinesRendersMarkersAndLabels(t *testing.T) {
	out := Lines("test chart", 40, 10,
		Series{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		Series{Name: "flat", X: []float64{0, 3}, Y: []float64{1, 1}},
	)
	for _, want := range []string{"test chart", "*", "+", "linear", "flat", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("empty", 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %s", out)
	}
}

func TestLinesDegenerateRanges(t *testing.T) {
	// Single point: min == max on both axes must not divide by zero.
	out := Lines("point", 30, 6, Series{Name: "p", X: []float64{5}, Y: []float64{7}})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}

func TestLinesClampsTinyDimensions(t *testing.T) {
	out := Lines("tiny", 1, 1, Series{Name: "p", X: []float64{0, 1}, Y: []float64{0, 1}})
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatalf("tiny chart did not clamp:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer", "23456"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"x,y", `q"u`}})
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

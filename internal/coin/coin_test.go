package coin

import (
	"testing"
	"testing/quick"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		coins []uint8
		want  int
	}{
		{nil, 0},
		{[]uint8{1, 1, 1, 1}, 4},
		{[]uint8{0, 0, 0, 0}, 4},
		{[]uint8{0, 1, 0, 1}, 0},
		{[]uint8{1, 1, 0}, 1},
	}
	for _, tc := range cases {
		if got := Imbalance(tc.coins); got != tc.want {
			t.Errorf("Imbalance(%v) = %d, want %d", tc.coins, got, tc.want)
		}
	}
}

func TestBalanceBound(t *testing.T) {
	if b := BalanceBound(2); b != 1 {
		t.Fatalf("BalanceBound(2) = %v, want clamp 1", b)
	}
	// n = 256: 256/(4·8) = 8.
	if b := BalanceBound(256); b != 8 {
		t.Fatalf("BalanceBound(256) = %v, want 8", b)
	}
}

func TestWarmupInteractionsMonotone(t *testing.T) {
	prev := int64(0)
	for _, n := range []int{2, 8, 64, 512, 4096} {
		w := WarmupInteractions(n)
		if w < prev {
			t.Fatalf("warm-up not monotone at n=%d: %d < %d", n, w, prev)
		}
		if w < int64(n)/2 {
			t.Fatalf("warm-up %d suspiciously small for n=%d", w, n)
		}
		prev = w
	}
}

func TestAlternatingBalanced(t *testing.T) {
	if d := Imbalance(Alternating(100)); d != 0 {
		t.Fatalf("alternating imbalance = %d", d)
	}
	if d := Imbalance(AllZero(64)); d != 64 {
		t.Fatalf("all-zero imbalance = %d", d)
	}
}

func TestWarmupBalancesAdversarialStart(t *testing.T) {
	// Lemma 28 (experiment E9 in miniature): from the all-tails start,
	// the warm-up drives the imbalance from n down to its stationary
	// scale. The process is an Ehrenfest urn, so the stationary
	// imbalance is Θ(√n) — the paper's n/(4 log n) bound is asymptotic
	// and only dominates √n for n ≳ 2¹⁵ (recorded in EXPERIMENTS.md,
	// E9). We check the statistically sound property: imbalance well
	// below 5√n after warm-up, from an initial imbalance of n.
	const n = 1024
	violations := 0
	const trials = 10
	for seed := uint64(1); seed <= trials; seed++ {
		p := NewPopulation(AllZero(n), seed)
		p.Step(4 * WarmupInteractions(n)) // comfortably past warm-up
		if float64(p.Imbalance()) > 160 { // 5·√1024
			violations++
		}
	}
	if violations > 1 {
		t.Fatalf("%d/%d trials exceeded 5√n after warm-up", violations, trials)
	}
}

func TestPopulationStepCount(t *testing.T) {
	p := NewPopulation(Alternating(16), 1)
	p.Step(100)
	if p.Steps() != 100 {
		t.Fatalf("Steps() = %d", p.Steps())
	}
}

func TestPopulationCopiesInput(t *testing.T) {
	src := AllZero(8)
	p := NewPopulation(src, 1)
	p.Step(50)
	for _, c := range src {
		if c != 0 {
			t.Fatal("NewPopulation did not copy its input")
		}
	}
}

func TestImbalanceParityInvariant(t *testing.T) {
	// Each interaction toggles exactly one coin, so the parity of the
	// number of heads flips each step; imbalance parity is therefore
	// determined by (initial heads + steps) mod 2.
	f := func(seed uint64, steps uint16) bool {
		n := 16
		p := NewPopulation(Alternating(n), seed)
		p.Step(int64(steps))
		heads := 0
		for _, c := range p.Coins() {
			heads += int(c)
		}
		return heads%2 == (8+int(steps))%2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

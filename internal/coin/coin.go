// Package coin provides analysis helpers for the synthetic coin used by
// StableRanking and FastLeaderElection (cf. Alistarh et al., SODA'17).
//
// The synthetic coin is a single bit per agent, toggled every time the
// agent is activated as a responder. Reading the partner's bit
// approximates a fair coin flip once the population has "warmed up":
// Lemma 28 states that after n·log(4·log n)/2 interactions the number
// of zeros lies in (1 ± 1/(4·log n))·n/2 w.h.p. — the balance condition
// the leader-election configurations C_LE require (Definition 29).
package coin

import (
	"math"

	"ssrank/internal/rng"
)

// Imbalance returns |#heads − #tails| over the given coin bits.
func Imbalance(coins []uint8) int {
	heads := 0
	for _, c := range coins {
		if c == 1 {
			heads++
		}
	}
	tails := len(coins) - heads
	d := heads - tails
	if d < 0 {
		d = -d
	}
	return d
}

// BalanceBound returns the C_LE balance requirement n/(4·log₂ n)
// (Definition 29). For n ≤ 2 the bound degenerates; it is clamped to 1.
func BalanceBound(n int) float64 {
	if n <= 2 {
		return 1
	}
	return float64(n) / (4 * math.Log2(float64(n)))
}

// WarmupInteractions returns the Lemma 28 warm-up horizon
// n·log(4·log n)/2 (natural logarithms), after which the balance bound
// holds w.h.p. For tiny n the expression is clamped to n.
func WarmupInteractions(n int) int64 {
	if n < 3 {
		return int64(n)
	}
	v := float64(n) * math.Log(4*math.Log(float64(n))) / 2
	if v < float64(n) {
		v = float64(n)
	}
	return int64(math.Ceil(v))
}

// Population simulates a population of bare synthetic coins: in each
// interaction the responder's coin toggles. It exists to study the
// coin in isolation (experiment E9).
type Population struct {
	coins []uint8
	rng   *rng.RNG
	steps int64
}

// NewPopulation returns a coin population with the given initial bits
// (copied).
func NewPopulation(coins []uint8, seed uint64) *Population {
	c := make([]uint8, len(coins))
	copy(c, coins)
	return &Population{coins: c, rng: rng.New(seed)}
}

// AllZero returns an adversarial all-tails initialization of size n.
func AllZero(n int) []uint8 { return make([]uint8, n) }

// Alternating returns the balanced index-parity initialization.
func Alternating(n int) []uint8 {
	c := make([]uint8, n)
	for i := range c {
		c[i] = uint8(i & 1)
	}
	return c
}

// Step performs k interactions (responder toggles).
func (p *Population) Step(k int64) {
	n := len(p.coins)
	for i := int64(0); i < k; i++ {
		_, b := p.rng.Pair(n)
		p.coins[b] ^= 1
	}
	p.steps += k
}

// Steps returns the number of interactions simulated.
func (p *Population) Steps() int64 { return p.steps }

// Coins returns the live coin bits (read-only).
func (p *Population) Coins() []uint8 { return p.coins }

// Imbalance returns the current |#heads − #tails|.
func (p *Population) Imbalance() int { return Imbalance(p.coins) }

package proto

import (
	"math"
	"testing"
)

type fakeState struct{ rank int }

func fakeDesc() Descriptor[fakeState, struct{}] {
	return Descriptor[fakeState, struct{}]{
		Name:  "fake",
		Inits: []string{"fresh", "random"},
		Rank:  func(s *fakeState) int { return s.rank },
	}
}

func TestDescriptorProjections(t *testing.T) {
	d := fakeDesc()
	states := []fakeState{{rank: 2}, {rank: 0}, {rank: 1}}
	if got := d.Ranks(states); got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("Ranks = %v", got)
	}
	if got := d.RankedCount(states); got != 2 {
		t.Fatalf("RankedCount = %d", got)
	}
	if got := d.LeaderOf(states); got != 2 {
		t.Fatalf("LeaderOf = %d, want the rank-1 agent", got)
	}
	if got := d.LeaderOf(states[:2]); got != -1 {
		t.Fatalf("LeaderOf without a rank-1 agent = %d, want -1", got)
	}
	d.Leader = func([]fakeState) int { return 7 }
	if got := d.LeaderOf(states); got != 7 {
		t.Fatalf("Leader override ignored: %d", got)
	}
	if !d.Supports("fresh") || !d.Supports("random") || d.Supports("nope") {
		t.Fatal("Supports inconsistent with the init table")
	}
}

func TestClampBudget(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1e6, 1_000_000},
		{9.3e18, math.MaxInt64},        // just past MaxInt64
		{math.MaxInt64, math.MaxInt64}, // float64(MaxInt64) rounds to 2⁶³
		{math.Inf(1), math.MaxInt64},
	}
	for _, c := range cases {
		if got := ClampBudget(c.in); got != c.want {
			t.Fatalf("ClampBudget(%g) = %d, want %d", c.in, got, c.want)
		}
	}
	// The largest exactly-representable value below 2⁶³ must pass
	// through unclamped.
	below := math.Nextafter(math.MaxInt64, 0)
	if got := ClampBudget(below); got == math.MaxInt64 || got <= 0 {
		t.Fatalf("ClampBudget just below 2⁶³ = %d", got)
	}
	// Budget shapes stay positive and saturate instead of wrapping.
	if got := BudgetN3(2000)(2_000_000); got != math.MaxInt64 {
		t.Fatalf("BudgetN3(2000) at n=2×10⁶ = %d, want saturation", got)
	}
	if got := BudgetN2LogN(3000)(64); got != int64(3000*64*64*6) {
		t.Fatalf("BudgetN2LogN(3000) at n=64 = %d", got)
	}
	if got := BudgetN2(5000)(100); got != 5000*100*100 {
		t.Fatalf("BudgetN2(5000) at n=100 = %d", got)
	}
}

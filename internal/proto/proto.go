// Package proto defines the protocol descriptor: one value per
// protocol that bundles everything the engine-facing layers (the
// public facade, the experiment harness, the CLIs) need to construct,
// initialize, run, stop, and read out a protocol — constructor,
// supported initial configurations, validity predicate, incremental
// stop tracker, rank/leader projections, instrumentation hooks, and
// the default interaction budget.
//
// Each protocol package constructs its own Descriptor (in its desc.go)
// so the knowledge of "what this protocol provides" lives next to the
// protocol instead of being re-tabulated in every consumer; before the
// descriptor existed, the facade, the experiment generators and the
// CLIs each carried a parallel per-protocol dispatch table.
//
// The package is deliberately engine-free: it depends only on rng, and
// Condition mirrors the engine's incremental stop-condition interface
// structurally (identical method sets convert implicitly), preserving
// the layering rule that protocol packages never import the engine.
package proto

import (
	"math"

	"ssrank/internal/ckpt"
	"ssrank/internal/rng"
)

// Condition is the incremental stop condition contract, mirrored from
// the engine (sim.Condition) structurally: Init is called once with
// the full configuration, Update after every interaction for each
// touched agent, and Done reports whether the condition holds. Update
// and Done must run in O(1) amortized.
type Condition[S any] interface {
	Init(states []S)
	Update(i int, states []S)
	Done() bool
}

// Descriptor describes one protocol to the engine-facing layers. S is
// the agent state type, P the concrete protocol type.
//
// Required fields: Name, Inits, New, Init, Valid, Budget, and a stop
// tracker — either Rank (the default permutation tracker is built from
// it) or Cond. Everything else is optional instrumentation.
type Descriptor[S any, P any] struct {
	// Name is the protocol's selector string (matches the public
	// facade's Protocol constant).
	Name string

	// Inits lists the supported initial-configuration names; the
	// first entry is the default.
	Inits []string

	// SelfStabilizing reports whether the protocol converges from
	// arbitrary configurations (and hence supports fault injection).
	SelfStabilizing bool

	// New constructs the protocol for n agents. Per-protocol
	// parameters (ε, timeout factors, tunables) are bound by the
	// descriptor's constructor, so New is uniform across protocols.
	New func(n int) P

	// Init builds the named initial configuration. r is a source of
	// initialization randomness (used by "random" inits; derived from
	// the run seed under a fixed salt so runs stay deterministic).
	// Unsupported names return nil.
	Init func(p P, init string, r *rng.RNG) []S

	// Valid is the protocol's stop predicate over full configurations
	// — the polled fallback for engines that cannot maintain the
	// incremental tracker (the sharded runner).
	Valid func(states []S) bool

	// TransientStop marks a stop condition that is not absorbing: it
	// can hold at one interaction and break at the next (loose
	// leader election's uniqueness). A polled scan can sail straight
	// through such a window, so engines that only evaluate Valid at a
	// cadence (the sharded runner) must not be used to measure the
	// hitting time — consumers fall back to the serial exact path.
	TransientStop bool

	// Rank extracts an agent's rank projection (0 = unranked). It
	// feeds the default permutation stop tracker and the Result rank
	// extraction.
	Rank func(s *S) int

	// Space returns the rank-space size m for the permutation tracker
	// (0 = population size). The relaxed-range protocol reports its
	// effective identifier-space size here.
	Space func(p P) int

	// Cond overrides the default permutation tracker with a
	// protocol-specific incremental stop condition equivalent to
	// Valid (the relaxed-range disjointness tracker, the loose
	// leader-count tracker).
	Cond func(p P) Condition[S]

	// Leader returns the index of the elected leader, -1 if none.
	// When nil, the rank-1 agent is the leader (the paper's output
	// function).
	Leader func(states []S) int

	// Resets returns the protocol's self-healing reset count
	// (self-stabilizing protocols only).
	Resets func(p P) int64

	// ResetBreakdown classifies the resets by cause.
	ResetBreakdown func(p P) map[string]int64

	// RandomState draws one uniformly random state from the
	// protocol's state space — the fault-injection primitive. Nil for
	// protocols whose analysis does not survive corruption.
	RandomState func(p P, r *rng.RNG) S

	// Probes lists named scalar projections over full configurations —
	// protocol-specific observables (StableRanking's mean phase
	// counter) that observation layers sample alongside the generic
	// rank projections. Names must be unique within a descriptor.
	Probes []Probe[S, P]

	// Budget returns the default interaction budget for n agents:
	// several times the expected stabilization time, computed in
	// float64 and clamped (ClampBudget) so large n cannot overflow.
	Budget func(n int) int64

	// MarshalState appends the protocol's full mutable run state — the
	// agent state slab plus any protocol-level counters (reset
	// instrumentation) — to w, in the explicit field-by-field style of
	// the repo's other binary formats (msgnet.Trace): canonical bytes,
	// no self-description, field order fixed per checkpoint version.
	// Together with UnmarshalState it makes a run checkpointable; both
	// or neither must be set.
	MarshalState func(p P, states []S, w *ckpt.Writer)

	// UnmarshalState decodes a slab written by MarshalState for the
	// same protocol parameters, restoring protocol-level counters into
	// p and returning the reconstructed configuration. It must reject
	// (via the Reader's sticky error or its own) payloads whose shape
	// does not match p — a checkpoint is external input.
	UnmarshalState func(p P, r *ckpt.Reader) ([]S, error)

	// EncodeAgent appends one agent state's canonical encoding —
	// exactly the bytes MarshalState writes for that agent within its
	// slab section, so the per-agent and whole-slab encodings cannot
	// drift. Wire layers (internal/dist) ship individual agents with
	// it: delta frames, migration sub-blobs. Set together with
	// DecodeAgent; protocols without them cannot run distributed.
	EncodeAgent func(p P, s *S, w *ckpt.Writer)

	// DecodeAgent decodes one agent state written by EncodeAgent.
	// Errors stick in the Reader (the repo's unguarded-decode style).
	DecodeAgent func(p P, r *ckpt.Reader) S

	// Instr captures the protocol's mutable run instrumentation (reset
	// counters) as a flat vector; SetInstr restores one. The contract
	// that makes distribution work: vectors accumulated over disjoint
	// interaction sets sum element-wise, so counters that increment on
	// whichever process executed the interaction reconcile by
	// summation — workers report absolute vectors at each barrier and
	// the coordinator folds the committed totals into the Result. Nil
	// for protocols whose only mutable state is the agent slab; set
	// both or neither, and protocols registering Resets must register
	// these too or distributed Results would drop their counters.
	Instr func(p P) []int64

	// SetInstr restores an instrumentation vector captured by Instr.
	SetInstr func(p P, v []int64)
}

// Probe is one named scalar projection over full configurations (see
// Descriptor.Probes). Fn must not mutate the configuration; it may
// read protocol parameters through p.
type Probe[S any, P any] struct {
	// Name labels the probe (a snapshot map key, a CSV column).
	Name string
	// Fn computes the scalar.
	Fn func(p P, states []S) float64
}

// Supports reports whether the named init is in the descriptor's init
// table.
func (d *Descriptor[S, P]) Supports(init string) bool {
	for _, name := range d.Inits {
		if name == init {
			return true
		}
	}
	return false
}

// Ranks extracts every agent's rank via the descriptor's projection.
func (d *Descriptor[S, P]) Ranks(states []S) []int {
	out := make([]int, len(states))
	for i := range states {
		out[i] = d.Rank(&states[i])
	}
	return out
}

// RankedCount returns the number of agents holding a rank.
func (d *Descriptor[S, P]) RankedCount(states []S) int {
	c := 0
	for i := range states {
		if d.Rank(&states[i]) != 0 {
			c++
		}
	}
	return c
}

// LeaderOf resolves the elected leader: the descriptor's Leader hook,
// or the first rank-1 agent (-1 if none).
func (d *Descriptor[S, P]) LeaderOf(states []S) int {
	if d.Leader != nil {
		return d.Leader(states)
	}
	for i := range states {
		if d.Rank(&states[i]) == 1 {
			return i
		}
	}
	return -1
}

// ClampBudget converts a budget computed in float64 to int64,
// saturating at MaxInt64. Budgets are products like 2000·n³ that
// overflow int64 arithmetic around n ≈ 1.7×10⁶; computing the product
// in float64 and clamping keeps the budget a usable "effectively
// unbounded" cap at any population size.
func ClampBudget(v float64) int64 {
	// float64(MaxInt64) rounds up to 2⁶³ exactly, so v ≥ that bound is
	// precisely the range where int64(v) would overflow.
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	if v < 0 {
		return 0
	}
	return int64(v)
}

// BudgetN2LogN returns n ↦ c·n²·log₂ n clamped — the default-budget
// shape of the Θ(n² log n) protocols.
func BudgetN2LogN(c float64) func(n int) int64 {
	return func(n int) int64 {
		f := float64(n)
		return ClampBudget(c * f * f * math.Log2(f))
	}
}

// BudgetN2 returns n ↦ c·n² clamped.
func BudgetN2(c float64) func(n int) int64 {
	return func(n int) int64 {
		f := float64(n)
		return ClampBudget(c * f * f)
	}
}

// BudgetN3 returns n ↦ c·n³ clamped.
func BudgetN3(c float64) func(n int) int64 {
	return func(n int) int64 {
		f := float64(n)
		return ClampBudget(c * f * f * f)
	}
}

// Package census counts protocol states, reproducing the paper's
// central space claim (experiment E3): StableRanking needs only
// n + O(log² n) states where the aware-leader design needs n + Ω(n) —
// an exponential improvement in overhead states (§I).
//
// Two notions of size are reported per protocol:
//
//   - Declared: the exact cardinality of the state space the protocol's
//     invariant admits (the |Q| of the paper's theorems, computed from
//     the protocol's parameters).
//   - Observed: the number of *distinct* states actually visited by a
//     simulation run, collected with a Tracker. Observed ≤ Declared,
//     and the n-dependence of both exhibits the theorem.
package census

import (
	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/stable"
)

// Tracker collects the distinct states visited by a run. Install its
// Observe method as a sim.Runner observer (or call it manually each
// probe).
type Tracker[S comparable] struct {
	seen map[S]struct{}
}

// NewTracker returns an empty tracker.
func NewTracker[S comparable]() *Tracker[S] {
	return &Tracker[S]{seen: make(map[S]struct{})}
}

// Observe folds the configuration's states into the tracker.
func (t *Tracker[S]) Observe(states []S) {
	for _, s := range states {
		t.seen[s] = struct{}{}
	}
}

// Count returns the number of distinct states seen so far.
func (t *Tracker[S]) Count() int { return len(t.seen) }

// DeclaredStable returns the exact size of StableRanking's declared
// state space (Protocol 3's Q):
//
//	ranks: n
//	coin × PropagateReset: 2·((Rmax+1)·(Dmax+1) − 1)   (not both zero)
//	coin × FastLE: 2·LEBudget·(CoinInit+1+2)           (counting states
//	       while undecided, plus done-loser and done-leader flags)
//	coin × Ranking+ unranked: 2·LMax·(WaitInit + KMax)
//
// Everything except the ranks is O(log² n).
func DeclaredStable(p *stable.Protocol) int {
	n := p.N()
	reset := int(p.RMax()+1)*int(p.DMax()+1) - 1
	le := int(p.LEBudget()) * (int(p.CoinInit()) + 1 + 2)
	main := int(p.LMax()) * (int(p.WaitInit()) + int(p.Phases().KMax()))
	return n + 2*(reset+le+main)
}

// OverheadStable returns DeclaredStable − n, the paper's "overhead
// states".
func OverheadStable(p *stable.Protocol) int { return DeclaredStable(p) - p.N() }

// DeclaredCore returns the size of SpaceEfficientRanking's declared
// state space (§IV-A): n ranks + waitCount values + phase values +
// 2·|Q_LE|. |Q_LE| is the as-implemented leader-election substrate
// size; the paper's substrate [30] would contribute O(log log n)
// instead (see DESIGN.md substitutions).
func DeclaredCore(p *core.Protocol) (total, paperAccounted int) {
	n := p.N()
	le := p.LE()
	// Implementation Q_LE: contender-in-lottery (level values) +
	// contender-collecting (level × remaining bits × partial sig) +
	// armed/followers dominated by (maxLevel × maxSig) tracking, and
	// the done counter multiplies everything. Computing the exact
	// reachable set is uninstructive; we report the dominating product.
	lvl := le.LevelCap() + 1
	sig := 1 << le.SigLen()
	done := int(le.DoneInit())
	implQLE := lvl * sig * done / 4 // coarse reachable-set estimate
	total = n + int(p.WaitInit()) + int(p.Phases().KMax()) + 2*implQLE
	// Paper accounting (Theorem 1): n + ⌈c_wait log n⌉ + ⌈log n⌉ +
	// 2·|Q_LE| with |Q_LE| = O(log log n); we charge a small constant 4.
	paperAccounted = n + int(p.WaitInit()) + int(p.Phases().KMax()) + 2*4
	return total, paperAccounted
}

// DeclaredAware returns the size of the aware-leader baseline's state
// space: n ranks + (n−1) leader states (Next ∈ [2, n]) × liveness +
// O(log² n) for the shared subprotocols. The leader's counter is the
// n + Ω(n) overhead the paper's design eliminates.
func DeclaredAware(p *aware.Protocol) int {
	n := p.N()
	leader := (n - 1) * int(p.LMax()) * 2 // Next × Alive × coin
	blank := 2 * int(p.LMax())
	// Reset and LE subprotocol sizes match stable's parameters.
	sp := stable.New(n, stable.DefaultParams())
	reset := int(sp.RMax()+1)*int(sp.DMax()+1) - 1
	le := int(sp.LEBudget()) * (int(sp.CoinInit()) + 1 + 2)
	return n + leader + blank + 2*(reset+le)
}

// DeclaredCai returns n: the baseline with zero overhead states.
func DeclaredCai(p *cai.Protocol) int { return p.N() }

// DeclaredInterval returns the number of binary-tree blocks of the
// identifier space, 2m−1 — the (2+ε)n-style state count of the
// relaxed-range protocol.
func DeclaredInterval(p *interval.Protocol) int { return 2*int(p.M()) - 1 }

package census

import (
	"math"
	"testing"

	"ssrank/internal/baseline/aware"
	"ssrank/internal/baseline/cai"
	"ssrank/internal/baseline/interval"
	"ssrank/internal/core"
	"ssrank/internal/sim"
	"ssrank/internal/stable"
)

func TestTracker(t *testing.T) {
	tr := NewTracker[int]()
	tr.Observe([]int{1, 2, 2, 3})
	tr.Observe([]int{3, 4})
	if tr.Count() != 4 {
		t.Fatalf("Count = %d, want 4", tr.Count())
	}
}

func TestDeclaredStableIsPolylogOverhead(t *testing.T) {
	// Theorem 2: overhead = O(log² n). The ratio overhead/log²n must
	// stay within a constant band across three orders of magnitude of
	// n (the band's value, ≈80, comes from the default parameter
	// factors), and overhead/n must vanish.
	var ratios []float64
	for _, n := range []int{64, 256, 1024, 4096, 16384, 1 << 20} {
		p := stable.New(n, stable.DefaultParams())
		overhead := float64(OverheadStable(p))
		lg := math.Log2(float64(n))
		ratios = append(ratios, overhead/(lg*lg))
		// o(n): with the default constants (≈80·log²n) the crossover
		// against 0.1·n lies near n = 2¹⁷; check well past it.
		if n >= 1<<20 && overhead/float64(n) > 0.1 {
			t.Fatalf("n=%d: overhead %v is not o(n)", n, overhead)
		}
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi > 2*lo {
		t.Fatalf("overhead/log²n ratio drifts from %.1f to %.1f; not Θ(log² n)", lo, hi)
	}
}

func TestDeclaredAwareIsLinearOverhead(t *testing.T) {
	// The contrast class: overhead = Ω(n).
	for _, n := range []int{64, 256, 1024} {
		p := aware.New(n, aware.DefaultParams())
		overhead := DeclaredAware(p) - n
		if overhead < n {
			t.Fatalf("n=%d: aware overhead %d < n; baseline lost its Ω(n) character", n, overhead)
		}
	}
}

func TestExponentialOverheadImprovement(t *testing.T) {
	// The paper's headline comparison (§I): the stable protocol's
	// overhead is exponentially smaller than the aware baseline's.
	const n = 4096
	so := OverheadStable(stable.New(n, stable.DefaultParams()))
	ao := DeclaredAware(aware.New(n, aware.DefaultParams())) - n
	if float64(ao)/float64(so) < 8 {
		t.Fatalf("aware/stable overhead ratio %d/%d too small", ao, so)
	}
	// log₂(aware overhead) should be ≈ log n vs log(stable overhead)
	// ≈ 2 log log n: check the gap grows with n.
	const n2 = 64
	so2 := OverheadStable(stable.New(n2, stable.DefaultParams()))
	ao2 := DeclaredAware(aware.New(n2, aware.DefaultParams())) - n2
	if float64(ao)/float64(so) <= float64(ao2)/float64(so2) {
		t.Fatalf("overhead gap does not grow with n: %d/%d vs %d/%d", ao, so, ao2, so2)
	}
}

func TestDeclaredCai(t *testing.T) {
	if got := DeclaredCai(cai.New(77)); got != 77 {
		t.Fatalf("DeclaredCai = %d, want 77", got)
	}
}

func TestDeclaredInterval(t *testing.T) {
	p := interval.New(100, 1.0) // m = 256
	if got := DeclaredInterval(p); got != 511 {
		t.Fatalf("DeclaredInterval = %d, want 511", got)
	}
}

func TestDeclaredCorePaperAccounting(t *testing.T) {
	p := core.New(256, core.DefaultParams())
	total, paper := DeclaredCore(p)
	// Paper accounting: 256 + 16 + 8 + 8 = 288 = n + Θ(log n).
	if paper != 288 {
		t.Fatalf("paper-accounted size = %d, want 288", paper)
	}
	if total <= paper {
		t.Fatalf("implementation size %d should exceed paper accounting %d (substituted LE substrate)", total, paper)
	}
}

func TestObservedStableWithinDeclared(t *testing.T) {
	// The empirical census: run to stabilization tracking every state
	// visited; the distinct count must stay within the declared space
	// and well below n + n (i.e. exhibit sublinear overhead).
	const n = 256
	p := stable.New(n, stable.DefaultParams())
	r := sim.New[stable.State](p, p.InitialStates(), 3)
	tr := NewTracker[stable.State]()
	tr.Observe(r.States())
	budget := int64(2000 * float64(n) * float64(n) * math.Log2(float64(n)))
	for r.Steps() < budget && !stable.Valid(r.States()) {
		r.Run(int64(n))
		tr.Observe(r.States())
	}
	if !stable.Valid(r.States()) {
		t.Fatal("run did not stabilize")
	}
	declared := DeclaredStable(p)
	if tr.Count() > declared {
		t.Fatalf("observed %d states exceeds declared %d", tr.Count(), declared)
	}
}

func TestObservedOverheadScalesPolylog(t *testing.T) {
	// Empirical version of Theorem 2's space claim: the observed
	// overhead (distinct states beyond the n ranks) must grow far
	// slower than n — quadrupling n should much less than quadruple it.
	if testing.Short() {
		t.Skip("census runs are slow")
	}
	observe := func(n int) int {
		p := stable.New(n, stable.DefaultParams())
		r := sim.New[stable.State](p, p.InitialStates(), 9)
		tr := NewTracker[stable.State]()
		tr.Observe(r.States())
		budget := int64(2000 * float64(n) * float64(n) * math.Log2(float64(n)))
		for r.Steps() < budget && !stable.Valid(r.States()) {
			r.Run(int64(n))
			tr.Observe(r.States())
		}
		if !stable.Valid(r.States()) {
			t.Fatalf("n=%d: run did not stabilize", n)
		}
		overhead := tr.Count() - n
		if overhead < 0 {
			overhead = 0
		}
		return overhead
	}
	small, large := observe(128), observe(512)
	if small == 0 {
		small = 1
	}
	if float64(large)/float64(small) > 3 {
		t.Fatalf("observed overhead grew %d -> %d (×%.1f) for n ×4; not polylog",
			small, large, float64(large)/float64(small))
	}
}

func TestObservedCaiExactlyN(t *testing.T) {
	const n = 64
	p := cai.New(n)
	r := sim.New[cai.State](p, p.InitialStates(), 5)
	tr := NewTracker[cai.State]()
	for i := 0; i < 20000; i++ {
		r.Run(int64(n))
		tr.Observe(r.States())
		if cai.Valid(r.States()) {
			break
		}
	}
	if tr.Count() > n {
		t.Fatalf("cai visited %d distinct states, declared space is %d", tr.Count(), n)
	}
}

// Package jobs turns the facade's checkpointable simulations into a
// concurrent job service: a bounded worker pool draining a FIFO queue
// of submitted Configs, with ordered per-job event streams (the
// Replicate OnCommit shape: every subscriber sees the same events in
// the same order), checkpoint-based preemption when the queue backs
// up, and a content-addressed result cache.
//
// Everything the service layers on top of the facade follows from
// determinism: a run is a pure function of its canonical Config, so a
// preempted job can be checkpointed and resumed (even on another
// worker) without changing its result, and a completed result can be
// served to every later submission of the same canonical Config
// without re-execution. The cache key is the stable hash of exactly
// the fields the trajectory depends on — see Key.
package jobs

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ssrank"
	"ssrank/internal/sim/shard"
)

// State is a job's lifecycle phase.
type State string

const (
	// Queued jobs wait in the FIFO queue (fresh or preempted).
	Queued State = "queued"
	// Running jobs hold a worker.
	Running State = "running"
	// Done jobs completed; Result is set. A done job may have been
	// served from the cache without executing (EventCached).
	Done State = "done"
	// Failed jobs hit an error (invalid config or a run that exhausted
	// its interaction budget without converging); Err is set.
	Failed State = "failed"
)

// Event types, in the order a job can emit them.
const (
	EventQueued    = "queued"    // entered the FIFO queue
	EventStarted   = "started"   // claimed by a worker
	EventProgress  = "progress"  // completed a slice; Steps is current
	EventPreempted = "preempted" // checkpointed and requeued
	EventCached    = "cached"    // served from the result cache
	EventDone      = "done"      // completed; Result is attached
	EventFailed    = "failed"    // errored; Err is attached
)

// Event is one entry of a job's ordered event log.
type Event struct {
	// Seq is the event's position in the job's log, from 0 up.
	Seq int `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Steps is the job's interaction count when the event fired.
	Steps int64 `json:"steps,omitempty"`
	// Result is attached to EventDone.
	Result *ssrank.Result `json:"result,omitempty"`
	// Err is attached to EventFailed.
	Err string `json:"error,omitempty"`
}

// Job is one submitted run. All fields are immutable after Submit;
// the mutable lifecycle is read through Status and Events.
type Job struct {
	// ID names the job (sequential, unique per Manager).
	ID string
	// Config is the canonical configuration the job executes
	// (ssrank.Config.Normalized of the submitted one).
	Config ssrank.Config
	// Key is the job's cache key (Key of the submitted Config).
	Key string

	m *Manager

	// Guarded by m.mu: jobs are few and their state transitions are
	// cheap, so one manager-wide lock keeps queue, cache and event
	// ordering trivially consistent.
	state  State
	steps  int64
	ckpt   []byte
	result *ssrank.Result
	err    error
	events []Event
	subs   map[chan struct{}]struct{}
}

// Status returns the job's current lifecycle phase, its interaction
// count, its Result (Done only) and its error (Failed only).
func (j *Job) Status() (State, int64, *ssrank.Result, error) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return j.state, j.steps, j.result, j.err
}

// EventsSince returns the log entries with Seq >= from. The log is
// append-only and events are never dropped, so a reader that remembers
// the next sequence number it expects can always catch up exactly —
// the pull half of the streaming interface (Watch is the push half).
func (j *Job) EventsSince(from int) []Event {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[from:]...)
}

// Watch returns a channel that receives a (coalesced) signal whenever
// the job appends events and is closed once the job reaches a terminal
// state. A streaming reader loops: drain EventsSince(next), block on
// the channel, repeat; after the channel closes, one final
// EventsSince drains the tail. Notifications coalesce but the log
// loses nothing, so a reader slower than the run still sees every
// event in order. cancel stops watching (safe after close).
func (j *Job) Watch() (notify <-chan struct{}, cancel func()) {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	ch := make(chan struct{}, 1)
	if j.state == Done || j.state == Failed {
		close(ch)
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	return ch, func() {
		j.m.mu.Lock()
		defer j.m.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// emit appends an event to the job's log and nudges the watchers.
// Callers hold m.mu. Terminal events close every subscription.
func (j *Job) emit(typ string, mut func(*Event)) {
	ev := Event{Seq: len(j.events), Type: typ, Steps: j.steps}
	if mut != nil {
		mut(&ev)
	}
	j.events = append(j.events, ev)
	terminal := typ == EventDone || typ == EventFailed
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // already nudged; the reader will catch up from the log
		}
		if terminal {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// cacheEntry is a completed run: the deterministic outcome of one
// canonical Config.
type cacheEntry struct {
	result *ssrank.Result
	err    error
}

// lruEntry is a cacheEntry on the recency list; the map indexes the
// list elements so hit, insert and evict are all O(1).
type lruEntry struct {
	key string
	e   cacheEntry
}

// spillEntry is the on-disk form of a cacheEntry: plain JSON, one file
// per key under the cache directory. Errors survive as their message —
// the only terminal errors worth caching are deterministic outcomes
// (budget exhaustion), which the jobs layer represents as flat strings
// anyway.
type spillEntry struct {
	Result *ssrank.Result `json:"result,omitempty"`
	Err    string         `json:"error,omitempty"`
}

// DistRunner executes one run on a distributed worker fleet (see
// ssrank.RunDistributed; cmd/ssrankd's worker pool implements this).
// ok = false means the fleet declined — no live workers, a config the
// distributed engine does not cover, or an infrastructure failure —
// and the manager falls back to in-process execution; determinism
// makes the substitution invisible in the Result. A non-nil error is
// reserved for deterministic outcomes (budget exhaustion, with the
// partial Result attached). onBatch receives committed interaction
// totals at batch barriers for progress reporting.
type DistRunner interface {
	Run(cfg ssrank.Config, onBatch func(steps int64)) (ssrank.Result, bool, error)
}

// Config configures a Manager.
type Config struct {
	// Workers is the worker-pool size; < 1 means 1.
	Workers int
	// SliceInteractions is how many interactions a job may run per
	// scheduling slice before the manager considers preempting it
	// (only when other jobs are queued). < 1 picks a default. Sharded
	// jobs round the slice up to a multiple of their engine's batch
	// period, keeping checkpoint cuts barrier-aligned so preemption
	// never changes the trajectory.
	SliceInteractions int64
	// CacheMax caps the in-memory result cache (entries); the least
	// recently used entry is evicted past the cap. < 1 picks a
	// default (256). Evicted entries remain servable from CacheDir
	// when one is configured.
	CacheMax int
	// CacheDir, when set, persists every completed result as a JSON
	// spill file named by the job's cache key. Overflow from the
	// in-memory cache and results from earlier manager lifetimes are
	// served from disk (and promoted back into memory) on the next
	// submission of the same canonical Config — the cache survives
	// restarts.
	CacheDir string
	// Dist, when set, routes eligible jobs (canonical Config.Workers
	// > 1, fresh — not resumed from a preemption checkpoint) to the
	// distributed fleet. Distributed jobs run to completion without
	// preemption.
	Dist DistRunner
}

// defaultCacheMax bounds the in-memory cache when Config.CacheMax is
// unset: big enough for any test or interactive workload, small
// enough that parameter sweeps cannot grow the heap without bound.
const defaultCacheMax = 256

// defaultSlice is the default scheduling slice: large enough that
// small jobs finish in one slice, small enough that a backed-up queue
// gets service promptly.
const defaultSlice = 1 << 18

// Manager owns the queue, the worker pool and the result cache.
type Manager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	jobs     map[string]*Job
	cache    map[string]*list.Element // key -> *lruEntry element on lru
	lru      *list.List               // front = most recently used
	cacheMax int
	cacheDir string
	dist     DistRunner
	slice    int64
	nextID   int
	closed   bool
	wg       sync.WaitGroup
	started  int64 // executions begun (not cache hits); tests read this
}

// NewManager starts a Manager with cfg.Workers workers.
func NewManager(cfg Config) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.SliceInteractions < 1 {
		cfg.SliceInteractions = defaultSlice
	}
	if cfg.CacheMax < 1 {
		cfg.CacheMax = defaultCacheMax
	}
	if cfg.CacheDir != "" {
		os.MkdirAll(cfg.CacheDir, 0o755)
	}
	m := &Manager{
		jobs:     make(map[string]*Job),
		cache:    make(map[string]*list.Element),
		lru:      list.New(),
		cacheMax: cfg.CacheMax,
		cacheDir: cfg.CacheDir,
		dist:     cfg.Dist,
		slice:    cfg.SliceInteractions,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.worker()
	}
	return m
}

// Close stops the workers. Running jobs are checkpointed back into the
// queue (state Queued) rather than aborted; queued work is left
// pending. Close blocks until every worker has exited.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Submit validates and canonicalizes cfg, then either serves the job
// from the result cache (identical canonical Config already completed
// — the job is returned in state Done without executing anything) or
// appends it to the FIFO queue.
func (m *Manager) Submit(cfg ssrank.Config) (*Job, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	key, err := Key(norm)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("jobs: manager is closed")
	}
	j := &Job{
		ID:     fmt.Sprintf("job-%d", m.nextID),
		Config: norm,
		Key:    key,
		m:      m,
		state:  Queued,
		subs:   make(map[chan struct{}]struct{}),
	}
	m.nextID++
	m.jobs[j.ID] = j
	j.emit(EventQueued, nil)
	if hit, ok := m.cacheGet(key); ok {
		m.finish(j, hit.result, hit.err, true)
		return j, nil
	}
	m.queue = append(m.queue, j)
	m.cond.Signal()
	return j, nil
}

// cacheGet looks a key up in the in-memory cache, falling back to the
// disk spill (promoting a disk hit back into memory). Callers hold
// m.mu.
func (m *Manager) cacheGet(key string) (cacheEntry, bool) {
	if el, ok := m.cache[key]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*lruEntry).e, true
	}
	if m.cacheDir == "" {
		return cacheEntry{}, false
	}
	e, ok := m.readSpill(key)
	if !ok {
		return cacheEntry{}, false
	}
	m.cachePut(key, e)
	return e, true
}

// cachePut inserts (or refreshes) an entry and evicts past the cap,
// least recently used first. Eviction only drops the in-memory copy:
// with a cache directory configured every completed entry was already
// spilled write-through, so evicted results stay servable from disk.
// Callers hold m.mu.
func (m *Manager) cachePut(key string, e cacheEntry) {
	if el, ok := m.cache[key]; ok {
		el.Value.(*lruEntry).e = e
		m.lru.MoveToFront(el)
	} else {
		m.cache[key] = m.lru.PushFront(&lruEntry{key: key, e: e})
	}
	for m.lru.Len() > m.cacheMax {
		el := m.lru.Back()
		m.lru.Remove(el)
		delete(m.cache, el.Value.(*lruEntry).key)
	}
}

// writeSpill persists an entry under the cache directory, named by its
// key (hex SHA-256 — filesystem-safe by construction). Best effort: a
// full disk degrades the cache, not the job. The write goes to a temp
// file first so a crash never leaves a torn spill a later manager
// would try to parse.
func (m *Manager) writeSpill(key string, e cacheEntry) {
	se := spillEntry{Result: e.result}
	if e.err != nil {
		se.Err = e.err.Error()
	}
	data, err := json.Marshal(se)
	if err != nil {
		return
	}
	tmp := filepath.Join(m.cacheDir, key+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	os.Rename(tmp, filepath.Join(m.cacheDir, key+".json"))
}

// readSpill loads a spilled entry; unreadable or unparsable files are
// treated as misses (the job just re-executes).
func (m *Manager) readSpill(key string) (cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(m.cacheDir, key+".json"))
	if err != nil {
		return cacheEntry{}, false
	}
	var se spillEntry
	if json.Unmarshal(data, &se) != nil {
		return cacheEntry{}, false
	}
	e := cacheEntry{result: se.Result}
	if se.Err != "" {
		e.err = errors.New(se.Err)
	}
	return e, true
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every job submitted to this manager, in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for i := 0; i < m.nextID; i++ {
		if j, ok := m.jobs[fmt.Sprintf("job-%d", i)]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Started reports how many job executions (first slices, not resumes
// or cache hits) the manager has begun — the observable the cache
// tests assert on.
func (m *Manager) Started() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.started
}

// finish records a terminal state, populates the cache, and emits the
// terminal event. Callers hold m.mu. cached marks results served from
// the cache rather than computed.
func (m *Manager) finish(j *Job, res *ssrank.Result, err error, cached bool) {
	j.result, j.err = res, err
	if res != nil {
		j.steps = res.Interactions
	}
	if !cached {
		e := cacheEntry{result: res, err: err}
		m.cachePut(j.Key, e)
		if m.cacheDir != "" {
			m.writeSpill(j.Key, e)
		}
	} else {
		j.emit(EventCached, nil)
	}
	if err != nil {
		j.state = Failed
		j.emit(EventFailed, func(e *Event) { e.Err = err.Error() })
		return
	}
	j.state = Done
	j.emit(EventDone, func(e *Event) { e.Result = res })
}

// worker drains the queue: claim the head job, run it for one slice,
// then either finish it, or — when other jobs are waiting — checkpoint
// and requeue it so the queue drains round-robin instead of
// head-of-line blocking behind a long run.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		j.state = Running
		resume := j.ckpt
		j.ckpt = nil
		if resume == nil {
			m.started++
		}
		j.emit(EventStarted, nil)
		m.mu.Unlock()

		m.run(j, resume)
	}
}

// sliceFor rounds the manager's scheduling slice up to the engine's
// batch period for sharded configs: checkpoint cuts then always land
// on batch barriers, so a preempted sharded run resumes on exactly the
// barrier schedule an uninterrupted run would have used (the facade's
// split-run guarantee needs aligned cuts; see ssrank.Checkpoint).
func (m *Manager) sliceFor(cfg ssrank.Config) int64 {
	if cfg.Shards <= 1 {
		return m.slice
	}
	period := int64(shard.BatchPeriod(cfg.N))
	return (m.slice + period - 1) / period * period
}

// runDist offers j to the distributed fleet. A false return means the
// fleet declined and the caller should execute in-process; true means
// the job reached a terminal state. Progress events are throttled to
// the manager's slice cadence so a distributed run streams the same
// granularity an in-process run would, while j.steps tracks every
// barrier for Status readers.
func (m *Manager) runDist(j *Job) bool {
	slice := m.sliceFor(j.Config)
	var last int64
	res, ok, err := m.dist.Run(j.Config, func(steps int64) {
		m.mu.Lock()
		j.steps = steps
		if steps-last >= slice {
			last = steps
			j.emit(EventProgress, nil)
		}
		m.mu.Unlock()
	})
	if !ok {
		return false
	}
	if err != nil && !errors.Is(err, ssrank.ErrNotConverged) {
		// Defensive: infrastructure failures are not deterministic
		// outcomes and must not be cached — fall back in-process.
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("jobs: %s did not converge within %d interactions", j.Config.Protocol, j.Config.MaxInteractions)
		m.finish(j, &res, err, false) // partial outcome, as in-process
		return true
	}
	m.finish(j, &res, nil, false)
	return true
}

// run executes one scheduling slice of j (resuming from a checkpoint
// if one was taken) and routes the outcome: done, failed, preempted,
// or — when the queue is empty and the manager open — immediately
// another slice.
func (m *Manager) run(j *Job, resume []byte) {
	if resume == nil && m.dist != nil && j.Config.Workers > 1 && m.runDist(j) {
		return
	}
	var (
		sim *ssrank.Simulation
		err error
	)
	if resume != nil {
		sim, err = ssrank.ResumeSimulation(j.Config, resume)
	} else {
		sim, err = ssrank.NewSimulation(j.Config)
	}
	if err != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.finish(j, nil, err, false)
		return
	}
	slice := m.sliceFor(j.Config)
	budget := j.Config.MaxInteractions
	for {
		target := sim.Interactions() + slice
		if target > budget || target < 0 { // < 0: overflow near MaxInt64
			target = budget
		}
		stable := sim.RunUntilStable(target)
		m.mu.Lock()
		j.steps = sim.Interactions()
		switch {
		case stable:
			res := sim.Result()
			m.finish(j, &res, nil, false)
			m.mu.Unlock()
			return
		case sim.Interactions() >= budget:
			res := sim.Result()
			err := fmt.Errorf("jobs: %s did not converge within %d interactions", j.Config.Protocol, budget)
			j.result = &res // partial outcome, for debugging
			m.finish(j, j.result, err, false)
			m.mu.Unlock()
			return
		case m.closed || len(m.queue) > 0:
			// Queue backed up (or shutting down): checkpoint, requeue.
			data, cerr := sim.Checkpoint()
			if cerr != nil {
				m.finish(j, nil, cerr, false)
				m.mu.Unlock()
				return
			}
			j.ckpt = data
			j.state = Queued
			j.emit(EventPreempted, nil)
			m.queue = append(m.queue, j)
			m.cond.Signal()
			m.mu.Unlock()
			return
		default:
			j.emit(EventProgress, nil)
			m.mu.Unlock()
		}
	}
}

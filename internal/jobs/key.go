package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"ssrank"
	"ssrank/internal/ckpt"
)

// keyMagic versions the cache-key derivation. Bump it whenever the
// encoded field set or order changes: a key must never collide across
// derivations, and stale disk caches (if a deployment adds one) must
// invalidate rather than alias.
const keyMagic = "sskey1"

// Key returns the content address of a run: the hex SHA-256 of the
// canonical binary encoding of every Config field the trajectory
// depends on — descriptor name, init, population size, seed, ε (IEEE
// bit pattern), interaction budget, resolved shard count, scheduler
// and fault model. The execution-only knobs — ShardWorkers and
// Workers — are deliberately excluded: thread and worker-process
// counts trade wall clock for hardware without touching the
// trajectory, so runs differing only there share one cache slot (and
// a distributed run can serve a later in-process submission, and vice
// versa). Two Configs get equal keys exactly when ssrank guarantees
// them byte-identical Results.
//
// The encoding reuses the checkpoint codec (ckpt) so canonicality —
// one logical config, one byte string — is inherited rather than
// re-argued.
func Key(cfg ssrank.Config) (string, error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	var w ckpt.Writer
	w.Raw([]byte(keyMagic))
	w.String(string(norm.Protocol))
	w.String(string(norm.Init))
	w.Uvarint(uint64(norm.N))
	w.U64(norm.Seed)
	w.U64(math.Float64bits(norm.Epsilon))
	w.Varint(norm.MaxInteractions)
	w.Uvarint(uint64(norm.Shards))
	w.String(string(norm.Scheduler))
	w.U64(math.Float64bits(norm.Faults.DropProb))
	w.U64(math.Float64bits(norm.Faults.DupProb))
	w.Varint(int64(norm.Faults.DelayMax))
	w.U64(math.Float64bits(norm.Faults.ReorderProb))
	sum := sha256.Sum256(w.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

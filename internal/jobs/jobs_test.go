package jobs

import (
	"reflect"
	"testing"
	"time"

	"ssrank"
)

// wait blocks until j reaches a terminal state, failing the test on
// timeout, and returns the terminal outcome.
func wait(t *testing.T, j *Job) (State, *ssrank.Result, error) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _, res, err := j.Status()
		if st == Done || st == Failed {
			return st, res, err
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", j.ID, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// eventTypes extracts the type sequence of a job's event log.
func eventTypes(j *Job) []string {
	log := j.EventsSince(0)
	out := make([]string, len(log))
	for i, ev := range log {
		out[i] = ev.Type
	}
	return out
}

// TestJobMatchesRun pins the service's ground truth: a job's result —
// even one computed across preemption cycles — is byte-identical to a
// direct ssrank.Run of the same Config, serially and sharded.
func TestJobMatchesRun(t *testing.T) {
	for _, shards := range []int{1, 4} {
		// A tiny slice forces many preempt/resume cycles even on a
		// short run whenever another job is queued.
		m := NewManager(Config{Workers: 1, SliceInteractions: 4096})
		cfgA := ssrank.Config{N: 64, Seed: 3, Shards: shards}
		cfgB := ssrank.Config{N: 64, Seed: 4, Shards: shards}
		a, err := m.Submit(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Submit(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		stA, resA, errA := wait(t, a)
		stB, resB, _ := wait(t, b)
		if stA != Done || stB != Done {
			t.Fatalf("shards=%d: states %s/%s (%v)", shards, stA, stB, errA)
		}
		wantA, err := ssrank.Run(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := ssrank.Run(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*resA, wantA) {
			t.Fatalf("shards=%d: job A diverged from Run:\njob %+v\nrun %+v", shards, *resA, wantA)
		}
		if !reflect.DeepEqual(*resB, wantB) {
			t.Fatalf("shards=%d: job B diverged from Run:\njob %+v\nrun %+v", shards, *resB, wantB)
		}
		m.Close()
	}
}

// TestCacheHitSkipsExecution re-submits an identical Config and
// requires the second job to be served from the cache: done
// immediately, carrying the identical Result, with no second
// execution started — including when only ShardWorkers differs, since
// the worker count is not part of the trajectory.
func TestCacheHitSkipsExecution(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	cfg := ssrank.Config{N: 64, Seed: 7}
	first, err := m.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, res1, _ := wait(t, first)

	again := cfg
	again.ShardWorkers = 3
	second, err := m.Submit(again)
	if err != nil {
		t.Fatal(err)
	}
	st, _, res2, _ := second.Status()
	if st != Done {
		t.Fatalf("re-submit state %s, want immediate %s", st, Done)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("cached result diverged:\nfirst  %+v\nsecond %+v", res1, res2)
	}
	if got := eventTypes(second); !reflect.DeepEqual(got, []string{EventQueued, EventCached, EventDone}) {
		t.Fatalf("cached job events %v", got)
	}
	if n := m.Started(); n != 1 {
		t.Fatalf("%d executions started, want 1 (cache must not re-execute)", n)
	}
}

// TestPreemptionRoundRobin submits a long job then a short one on a
// single worker with a small slice: the long job must be preempted
// (checkpointed and requeued) so the short job completes first, and
// the long job must still finish with the exact Run result afterwards.
func TestPreemptionRoundRobin(t *testing.T) {
	m := NewManager(Config{Workers: 1, SliceInteractions: 2048})
	defer m.Close()
	long, err := m.Submit(ssrank.Config{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := m.Submit(ssrank.Config{N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, res, err := wait(t, short); st != Done {
		t.Fatalf("short job: %s %v %v", st, res, err)
	}
	if st, _, _, _ := long.Status(); st == Done || st == Failed {
		t.Fatal("long job finished before the short one despite a single worker")
	}
	_, resLong, _ := wait(t, long)
	preempted := false
	for _, typ := range eventTypes(long) {
		if typ == EventPreempted {
			preempted = true
		}
	}
	if !preempted {
		t.Fatal("long job was never preempted")
	}
	want, err := ssrank.Run(ssrank.Config{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*resLong, want) {
		t.Fatalf("preempted job diverged from Run:\njob %+v\nrun %+v", *resLong, want)
	}
}

// TestEventStreamOrdered follows a job through the Watch/EventsSince
// streaming interface and requires a gapless, ordered sequence ending
// in a terminal event — even though the producer appends events far
// faster than the reader drains (notifications coalesce, the log
// loses nothing).
func TestEventStreamOrdered(t *testing.T) {
	m := NewManager(Config{Workers: 1, SliceInteractions: 2048})
	defer m.Close()
	j, err := m.Submit(ssrank.Config{N: 96, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	notify, cancel := j.Watch()
	defer cancel()
	next, last := 0, ""
	drain := func() {
		for _, ev := range j.EventsSince(next) {
			if ev.Seq != next {
				t.Fatalf("event gap: %d, expected %d", ev.Seq, next)
			}
			next = ev.Seq + 1
			last = ev.Type
		}
	}
	for range notify {
		drain()
	}
	drain() // the tail appended between the last signal and the close
	if last != EventDone && last != EventFailed {
		t.Fatalf("stream ended on %q, want a terminal event", last)
	}
}

// TestSubmitRejectsInvalid propagates facade validation: an
// unregistered protocol fails at Submit, not at run time.
func TestSubmitRejectsInvalid(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Submit(ssrank.Config{N: 64, Protocol: "nope"}); err == nil {
		t.Fatal("invalid protocol accepted")
	}
	if _, err := m.Submit(ssrank.Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
}

// TestKeyStability pins the cache-key semantics: keys are stable
// across calls, invariant under ShardWorkers and under
// normalization-equivalent spellings, and sensitive to every
// trajectory-relevant field.
func TestKeyStability(t *testing.T) {
	base := ssrank.Config{N: 64, Seed: 3}
	k1, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(base)
	if k1 != k2 {
		t.Fatal("key is not deterministic")
	}
	spelled := ssrank.Config{N: 64, Seed: 3, Protocol: ssrank.StableRanking, Init: "fresh", Epsilon: 1, Shards: 1, ShardWorkers: 9}
	if k3, _ := Key(spelled); k3 != k1 {
		t.Fatal("normalization-equivalent configs got different keys")
	}
	for name, variant := range map[string]ssrank.Config{
		"seed":     {N: 64, Seed: 4},
		"n":        {N: 65, Seed: 3},
		"protocol": {N: 64, Seed: 3, Protocol: ssrank.Cai},
		"shards":   {N: 64, Seed: 3, Shards: 4},
		"budget":   {N: 64, Seed: 3, MaxInteractions: 5},
		"faults":   {N: 64, Seed: 3, Faults: ssrank.Faults{DropProb: 0.5}},
	} {
		kv, err := Key(variant)
		if err != nil {
			t.Fatal(err)
		}
		if kv == k1 {
			t.Fatalf("%s variant collided with the base key", name)
		}
	}
}

package jobs

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssrank"
)

// wait blocks until j reaches a terminal state, failing the test on
// timeout, and returns the terminal outcome.
func wait(t *testing.T, j *Job) (State, *ssrank.Result, error) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _, res, err := j.Status()
		if st == Done || st == Failed {
			return st, res, err
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", j.ID, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// eventTypes extracts the type sequence of a job's event log.
func eventTypes(j *Job) []string {
	log := j.EventsSince(0)
	out := make([]string, len(log))
	for i, ev := range log {
		out[i] = ev.Type
	}
	return out
}

// TestJobMatchesRun pins the service's ground truth: a job's result —
// even one computed across preemption cycles — is byte-identical to a
// direct ssrank.Run of the same Config, serially and sharded.
func TestJobMatchesRun(t *testing.T) {
	for _, shards := range []int{1, 4} {
		// A tiny slice forces many preempt/resume cycles even on a
		// short run whenever another job is queued.
		m := NewManager(Config{Workers: 1, SliceInteractions: 4096})
		cfgA := ssrank.Config{N: 64, Seed: 3, Shards: shards}
		cfgB := ssrank.Config{N: 64, Seed: 4, Shards: shards}
		a, err := m.Submit(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Submit(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		stA, resA, errA := wait(t, a)
		stB, resB, _ := wait(t, b)
		if stA != Done || stB != Done {
			t.Fatalf("shards=%d: states %s/%s (%v)", shards, stA, stB, errA)
		}
		wantA, err := ssrank.Run(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := ssrank.Run(cfgB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*resA, wantA) {
			t.Fatalf("shards=%d: job A diverged from Run:\njob %+v\nrun %+v", shards, *resA, wantA)
		}
		if !reflect.DeepEqual(*resB, wantB) {
			t.Fatalf("shards=%d: job B diverged from Run:\njob %+v\nrun %+v", shards, *resB, wantB)
		}
		m.Close()
	}
}

// TestCacheHitSkipsExecution re-submits an identical Config and
// requires the second job to be served from the cache: done
// immediately, carrying the identical Result, with no second
// execution started — including when only ShardWorkers differs, since
// the worker count is not part of the trajectory.
func TestCacheHitSkipsExecution(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	cfg := ssrank.Config{N: 64, Seed: 7}
	first, err := m.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, res1, _ := wait(t, first)

	again := cfg
	again.ShardWorkers = 3
	second, err := m.Submit(again)
	if err != nil {
		t.Fatal(err)
	}
	st, _, res2, _ := second.Status()
	if st != Done {
		t.Fatalf("re-submit state %s, want immediate %s", st, Done)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("cached result diverged:\nfirst  %+v\nsecond %+v", res1, res2)
	}
	if got := eventTypes(second); !reflect.DeepEqual(got, []string{EventQueued, EventCached, EventDone}) {
		t.Fatalf("cached job events %v", got)
	}
	if n := m.Started(); n != 1 {
		t.Fatalf("%d executions started, want 1 (cache must not re-execute)", n)
	}
}

// TestPreemptionRoundRobin submits a long job then a short one on a
// single worker with a small slice: the long job must be preempted
// (checkpointed and requeued) so the short job completes first, and
// the long job must still finish with the exact Run result afterwards.
func TestPreemptionRoundRobin(t *testing.T) {
	m := NewManager(Config{Workers: 1, SliceInteractions: 2048})
	defer m.Close()
	long, err := m.Submit(ssrank.Config{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := m.Submit(ssrank.Config{N: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, res, err := wait(t, short); st != Done {
		t.Fatalf("short job: %s %v %v", st, res, err)
	}
	if st, _, _, _ := long.Status(); st == Done || st == Failed {
		t.Fatal("long job finished before the short one despite a single worker")
	}
	_, resLong, _ := wait(t, long)
	preempted := false
	for _, typ := range eventTypes(long) {
		if typ == EventPreempted {
			preempted = true
		}
	}
	if !preempted {
		t.Fatal("long job was never preempted")
	}
	want, err := ssrank.Run(ssrank.Config{N: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*resLong, want) {
		t.Fatalf("preempted job diverged from Run:\njob %+v\nrun %+v", *resLong, want)
	}
}

// TestEventStreamOrdered follows a job through the Watch/EventsSince
// streaming interface and requires a gapless, ordered sequence ending
// in a terminal event — even though the producer appends events far
// faster than the reader drains (notifications coalesce, the log
// loses nothing).
func TestEventStreamOrdered(t *testing.T) {
	m := NewManager(Config{Workers: 1, SliceInteractions: 2048})
	defer m.Close()
	j, err := m.Submit(ssrank.Config{N: 96, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	notify, cancel := j.Watch()
	defer cancel()
	next, last := 0, ""
	drain := func() {
		for _, ev := range j.EventsSince(next) {
			if ev.Seq != next {
				t.Fatalf("event gap: %d, expected %d", ev.Seq, next)
			}
			next = ev.Seq + 1
			last = ev.Type
		}
	}
	for range notify {
		drain()
	}
	drain() // the tail appended between the last signal and the close
	if last != EventDone && last != EventFailed {
		t.Fatalf("stream ended on %q, want a terminal event", last)
	}
}

// TestSubmitRejectsInvalid propagates facade validation: an
// unregistered protocol fails at Submit, not at run time.
func TestSubmitRejectsInvalid(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	if _, err := m.Submit(ssrank.Config{N: 64, Protocol: "nope"}); err == nil {
		t.Fatal("invalid protocol accepted")
	}
	if _, err := m.Submit(ssrank.Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
}

// TestKeyStability pins the cache-key semantics: keys are stable
// across calls, invariant under ShardWorkers and under
// normalization-equivalent spellings, and sensitive to every
// trajectory-relevant field.
func TestKeyStability(t *testing.T) {
	base := ssrank.Config{N: 64, Seed: 3}
	k1, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(base)
	if k1 != k2 {
		t.Fatal("key is not deterministic")
	}
	spelled := ssrank.Config{N: 64, Seed: 3, Protocol: ssrank.StableRanking, Init: "fresh", Epsilon: 1, Shards: 1, ShardWorkers: 9}
	if k3, _ := Key(spelled); k3 != k1 {
		t.Fatal("normalization-equivalent configs got different keys")
	}
	for name, variant := range map[string]ssrank.Config{
		"seed":     {N: 64, Seed: 4},
		"n":        {N: 65, Seed: 3},
		"protocol": {N: 64, Seed: 3, Protocol: ssrank.Cai},
		"shards":   {N: 64, Seed: 3, Shards: 4},
		"budget":   {N: 64, Seed: 3, MaxInteractions: 5},
		"faults":   {N: 64, Seed: 3, Faults: ssrank.Faults{DropProb: 0.5}},
	} {
		kv, err := Key(variant)
		if err != nil {
			t.Fatal(err)
		}
		if kv == k1 {
			t.Fatalf("%s variant collided with the base key", name)
		}
	}
}

// TestCacheSpillSurvivesRestart completes a job under a cache
// directory, tears the manager down, and re-submits the identical
// Config to a fresh manager over the same directory: the result must
// be served from disk without starting an execution.
func TestCacheSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := ssrank.Config{N: 64, Seed: 11, Shards: 2}
	m := NewManager(Config{Workers: 1, CacheDir: dir})
	j, err := m.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, res1, _ := wait(t, j)
	m.Close()

	m2 := NewManager(Config{Workers: 1, CacheDir: dir})
	defer m2.Close()
	j2, err := m2.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, _, res2, _ := j2.Status()
	if st != Done {
		t.Fatalf("restarted-manager submit state %s, want immediate %s", st, Done)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("spilled result diverged:\nfirst  %+v\nsecond %+v", res1, res2)
	}
	if n := m2.Started(); n != 0 {
		t.Fatalf("%d executions started after restart, want 0 (disk cache must serve)", n)
	}
}

// TestCacheLRUEviction pins the memory cap: with CacheMax 1 and no
// spill directory, a second distinct result evicts the first, so
// re-submitting the first config re-executes. With a spill directory,
// the evicted entry is still served from disk.
func TestCacheLRUEviction(t *testing.T) {
	cfgA := ssrank.Config{N: 48, Seed: 1}
	cfgB := ssrank.Config{N: 48, Seed: 2}
	m := NewManager(Config{Workers: 1, CacheMax: 1})
	wait(t, mustSubmit(t, m, cfgA))
	wait(t, mustSubmit(t, m, cfgB)) // evicts A
	wait(t, mustSubmit(t, m, cfgA)) // miss: must re-execute
	if n := m.Started(); n != 3 {
		t.Fatalf("%d executions started, want 3 (LRU must have evicted)", n)
	}
	m.Close()

	m2 := NewManager(Config{Workers: 1, CacheMax: 1, CacheDir: t.TempDir()})
	defer m2.Close()
	wait(t, mustSubmit(t, m2, cfgA))
	wait(t, mustSubmit(t, m2, cfgB)) // evicts A from memory, not disk
	j := mustSubmit(t, m2, cfgA)
	if st, _, _, _ := j.Status(); st != Done {
		t.Fatalf("evicted-entry submit state %s, want immediate %s via disk", st, Done)
	}
	if n := m2.Started(); n != 2 {
		t.Fatalf("%d executions started, want 2 (disk must absorb the eviction)", n)
	}
}

func mustSubmit(t *testing.T, m *Manager, cfg ssrank.Config) *Job {
	t.Helper()
	j, err := m.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// testDist is a DistRunner backed by real in-process worker loops over
// loopback TCP — the production RunDistributed path end to end. It
// declines serial configs, counting the runs it accepts.
type testDist struct {
	runs int64
}

func (d *testDist) Run(cfg ssrank.Config, onBatch func(int64)) (ssrank.Result, bool, error) {
	if cfg.Shards < 2 {
		return ssrank.Result{}, false, nil
	}
	atomic.AddInt64(&d.runs, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ssrank.Result{}, false, nil
	}
	defer ln.Close()
	var conns []net.Conn
	var wg sync.WaitGroup
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	}()
	for i := 0; i < 2; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return ssrank.Result{}, false, nil
		}
		cc, err := ln.Accept()
		if err != nil {
			wc.Close()
			return ssrank.Result{}, false, nil
		}
		conns = append(conns, cc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ssrank.ServeWorker(wc)
			wc.Close()
		}()
	}
	res, err := ssrank.RunDistributed(cfg, ssrank.DistRun{Workers: conns, OnBatch: onBatch})
	if err != nil && !errors.Is(err, ssrank.ErrNotConverged) {
		return ssrank.Result{}, false, nil
	}
	return res, true, err
}

// TestDistJobMatchesInProcess routes a Workers>1 job through a real
// distributed fleet and requires the identical Result an in-process
// run produces, progress events on the stream, and one shared cache
// slot across execution paths (a later Workers=0 submission is a
// cache hit).
func TestDistJobMatchesInProcess(t *testing.T) {
	d := &testDist{}
	m := NewManager(Config{Workers: 1, SliceInteractions: 1, Dist: d})
	defer m.Close()
	cfg := ssrank.Config{N: 64, Seed: 5, Shards: 4, Workers: 2}
	j := mustSubmit(t, m, cfg)
	st, res, err := wait(t, j)
	if st != Done {
		t.Fatalf("dist job: %s %v", st, err)
	}
	if atomic.LoadInt64(&d.runs) != 1 {
		t.Fatalf("dist runner ran %d times, want 1", d.runs)
	}
	want, err := ssrank.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, want) {
		t.Fatalf("distributed job diverged from Run:\njob %+v\nrun %+v", *res, want)
	}
	progress := false
	for _, typ := range eventTypes(j) {
		if typ == EventProgress {
			progress = true
		}
	}
	if !progress {
		t.Fatal("distributed job emitted no progress events")
	}

	// Workers is execution-only: the in-process spelling of the same
	// run shares the cache slot the distributed run filled.
	serial := cfg
	serial.Workers = 0
	j2 := mustSubmit(t, m, serial)
	if st, _, _, _ := j2.Status(); st != Done {
		t.Fatalf("cross-path re-submit state %s, want immediate %s", st, Done)
	}
	if atomic.LoadInt64(&d.runs) != 1 {
		t.Fatalf("dist runner ran %d times, want 1 (cache must serve)", d.runs)
	}
}

// TestDistFallback pins the decline path: a fleet that refuses every
// run must be invisible — the job executes in-process and matches Run.
type declineDist struct{}

func (declineDist) Run(ssrank.Config, func(int64)) (ssrank.Result, bool, error) {
	return ssrank.Result{}, false, nil
}

func TestDistFallback(t *testing.T) {
	m := NewManager(Config{Workers: 1, Dist: declineDist{}})
	defer m.Close()
	cfg := ssrank.Config{N: 48, Seed: 6, Shards: 2, Workers: 4}
	st, res, err := wait(t, mustSubmit(t, m, cfg))
	if st != Done {
		t.Fatalf("fallback job: %s %v", st, err)
	}
	want, err := ssrank.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, want) {
		t.Fatalf("fallback job diverged from Run:\njob %+v\nrun %+v", *res, want)
	}
}

// TestDistBudgetExhausted checks a distributed budget failure lands
// exactly like an in-process one: state Failed, the jobs-layer
// message, the partial Result attached.
func TestDistBudgetExhausted(t *testing.T) {
	d := &testDist{}
	m := NewManager(Config{Workers: 1, Dist: d})
	defer m.Close()
	cfg := ssrank.Config{N: 40, Seed: 3, Shards: 4, Workers: 2, MaxInteractions: 2048}
	st, res, err := wait(t, mustSubmit(t, m, cfg))
	if st != Failed {
		t.Fatalf("state %s, want %s", st, Failed)
	}
	if want := "jobs: stable did not converge within 2048 interactions"; err == nil || err.Error() != want {
		t.Fatalf("err %v, want %q", err, want)
	}
	if res == nil || res.Interactions != 2048 {
		t.Fatalf("partial result %+v, want 2048 interactions", res)
	}
}

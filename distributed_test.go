package ssrank

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// startWorkers launches p in-process worker loops over real localhost
// TCP (the production transport; synchronous pipes would deadlock the
// streamed frame protocol) and returns the coordinator-side
// connections. Workers that exit with an error report it through errc.
func startWorkers(t *testing.T, p int) ([]net.Conn, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	errc := make(chan error, p)
	var wg sync.WaitGroup
	conns := make([]net.Conn, p)
	for i := 0; i < p; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		cc, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		conns[i] = cc
		wg.Add(1)
		go func() {
			defer wg.Done()
			errc <- ServeWorker(wc)
			wc.Close()
		}()
	}
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	})
	return conns, errc
}

// TestRunDistributedMatchesSharded locks the tentpole determinism
// guarantee: a distributed run is byte-identical to the in-process
// sharded engine at the same (seed, shards) for every worker count —
// the trajectory is a function of the schedule, not of placement.
func TestRunDistributedMatchesSharded(t *testing.T) {
	for _, tc := range []struct {
		proto  Protocol
		n      int
		shards int
	}{
		{StableRanking, 48, 4},
		{Cai, 40, 5},
		{Interval, 64, 4},
		{Loose, 32, 4},
	} {
		cfg := Config{N: tc.n, Protocol: tc.proto, Seed: 7, Shards: tc.shards}
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: in-process run: %v", tc.proto, err)
		}
		if !want.Exact {
			t.Fatalf("%s: in-process run not exact", tc.proto)
		}
		for _, p := range []int{1, 2, 4} {
			conns, _ := startWorkers(t, p)
			got, err := RunDistributed(cfg, DistRun{Workers: conns})
			if err != nil {
				t.Fatalf("%s P=%d: %v", tc.proto, p, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s P=%d: distributed result differs from in-process sharded run\n got: %+v\nwant: %+v",
					tc.proto, p, got, want)
			}
		}
	}
}

// TestRunDistributedBudgetExhausted checks the budget path mirrors Run:
// ErrNotConverged wrapped, partial Result identical to in-process.
func TestRunDistributedBudgetExhausted(t *testing.T) {
	cfg := Config{N: 40, Protocol: StableRanking, Seed: 3, Shards: 4, MaxInteractions: 2048}
	want, werr := Run(cfg)
	if !errors.Is(werr, ErrNotConverged) {
		t.Fatalf("in-process err = %v, want ErrNotConverged", werr)
	}
	conns, _ := startWorkers(t, 2)
	got, gerr := RunDistributed(cfg, DistRun{Workers: conns})
	if !errors.Is(gerr, ErrNotConverged) {
		t.Fatalf("distributed err = %v, want ErrNotConverged", gerr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("budget-exhausted distributed result differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRunDistributedPooledConnections reuses one worker set across
// consecutive runs: Stop re-greets, so a second coordinator finds a
// fresh handshake on each pooled connection.
func TestRunDistributedPooledConnections(t *testing.T) {
	conns, _ := startWorkers(t, 2)
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := Config{N: 36, Protocol: StableRanking, Seed: seed, Shards: 3}
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := RunDistributed(cfg, DistRun{Workers: conns})
		if err != nil {
			t.Fatalf("seed %d distributed: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: pooled-connection run differs", seed)
		}
	}
}

// TestRunDistributedValidation checks the rejection paths.
func TestRunDistributedValidation(t *testing.T) {
	if _, err := RunDistributed(Config{N: 32, Seed: 1, Shards: 2}, DistRun{}); err == nil {
		t.Error("no workers: want error")
	}
	conns, _ := startWorkers(t, 1)
	if _, err := RunDistributed(Config{N: 32, Seed: 1}, DistRun{Workers: conns}); err == nil {
		t.Error("serial config: want error")
	}
	if _, err := RunDistributed(Config{N: 32, Seed: 1, Shards: 2, Scheduler: SchedulerUniform}, DistRun{Workers: conns}); err == nil {
		t.Error("message-network config: want error")
	}
}

// TestRunDistributedProgress checks OnBatch reports monotone committed
// interaction counts ending at the hitting step's batch.
func TestRunDistributedProgress(t *testing.T) {
	conns, _ := startWorkers(t, 2)
	var steps []int64
	cfg := Config{N: 40, Protocol: StableRanking, Seed: 11, Shards: 4}
	if _, err := RunDistributed(cfg, DistRun{Workers: conns, OnBatch: func(s int64) { steps = append(steps, s) }}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(steps) == 0 {
		t.Fatal("no batch progress reported")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatalf("progress not monotone: %v", steps)
		}
	}
}

// TestWorkersExecutionOnly checks the Workers knob is invisible to the
// canonical form modulo itself and cleared from Result.Config.
func TestWorkersExecutionOnly(t *testing.T) {
	res, err := Run(Config{N: 32, Seed: 5, Shards: 2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Workers != 0 {
		t.Errorf("Result.Config.Workers = %d, want 0", res.Config.Workers)
	}
	base, err := Run(Config{N: 32, Seed: 5, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, base) {
		t.Error("Workers changed an in-process Result")
	}
}

// killConn injects a worker crash at a precise wire position: the
// killAt-th write on the worker side sends only half its frame before
// the connection dies — mid-frame, so the coordinator sees a torn
// barrier or phase report, the worst-case death for recovery to mask.
type killConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	killAt int
}

func (k *killConn) Write(b []byte) (int, error) {
	k.mu.Lock()
	k.writes++
	w := k.writes
	k.mu.Unlock()
	if w == k.killAt {
		k.Conn.Write(b[:len(b)/2])
		k.Conn.Close()
		return len(b) / 2, errors.New("injected worker crash")
	}
	if w > k.killAt {
		return 0, errors.New("injected worker crash")
	}
	return k.Conn.Write(b)
}

// startKillableWorkers is startWorkers with one worker (index 0)
// crashing at the given write number.
func startKillableWorkers(t *testing.T, p, killAt int) []net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var wg sync.WaitGroup
	conns := make([]net.Conn, p)
	for i := 0; i < p; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		cc, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
		conns[i] = cc
		if i == 0 {
			wc = &killConn{Conn: wc, killAt: killAt}
		}
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			ServeWorker(c) // the killed worker exits with the injected error
			c.Close()
		}(wc)
	}
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	})
	return conns
}

// TestDistRecoveryMidBatch crashes a worker halfway through a frame
// write — mid-phase and mid-barrier — and checks the recovered run
// reproduces the undisturbed in-process Result byte for byte. Write
// numbers: #1 is the greeting; a batch at S shards spans phases+1
// writes (phases = 1 intra + rounds), so #3 tears a phase report and
// #(phases+2) tears the first batch's barrier frame.
func TestDistRecoveryMidBatch(t *testing.T) {
	for _, tc := range []struct {
		proto  Protocol
		n      int
		shards int
		killAt int
		label  string
	}{
		{StableRanking, 48, 4, 3, "mid-phase"},
		{StableRanking, 48, 4, 6, "mid-barrier"},  // S=4: 3 rounds, 4 phases, barrier = write 6
		{StableRanking, 56, 7, 10, "mid-barrier"}, // S=7: 7 rounds, 8 phases, barrier = write 10
		{Interval, 64, 4, 3, "mid-phase"},
		{Interval, 64, 4, 6, "mid-barrier"},
		{Interval, 70, 7, 10, "mid-barrier"},
	} {
		cfg := Config{N: tc.n, Protocol: tc.proto, Seed: 9, Shards: tc.shards}
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s S=%d: in-process: %v", tc.proto, tc.shards, err)
		}
		conns := startKillableWorkers(t, 3, tc.killAt)
		got, err := RunDistributed(cfg, DistRun{Workers: conns, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s S=%d %s: %v", tc.proto, tc.shards, tc.label, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s S=%d %s: recovered result differs from undisturbed run", tc.proto, tc.shards, tc.label)
		}
	}
}

// TestDistRecoveryMidRun kills a worker between batch barriers (the
// coordinator finds the connection dead at the next broadcast) and
// checks the migrated run still reproduces the undisturbed Result.
func TestDistRecoveryMidRun(t *testing.T) {
	for _, proto := range []Protocol{StableRanking, Interval} {
		for _, shards := range []int{4, 7} {
			cfg := Config{N: 64, Protocol: proto, Seed: 21, Shards: shards}
			want, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s S=%d: in-process: %v", proto, shards, err)
			}
			conns, _ := startWorkers(t, 3)
			batches := 0
			got, err := RunDistributed(cfg, DistRun{
				Workers: conns,
				Timeout: 5 * time.Second,
				OnBatch: func(int64) {
					batches++
					if batches == 2 {
						conns[1].Close() // dead peer, noticed at the next broadcast
					}
				},
			})
			if err != nil {
				t.Fatalf("%s S=%d: %v", proto, shards, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s S=%d: post-migration result differs from undisturbed run", proto, shards)
			}
		}
	}
}

// TestDistAllWorkersLost checks the unrecoverable path: every worker
// dead yields an infrastructure error, not a bogus Result.
func TestDistAllWorkersLost(t *testing.T) {
	conns := startKillableWorkers(t, 1, 3)
	_, err := RunDistributed(Config{N: 48, Seed: 1, Shards: 4}, DistRun{Workers: conns, Timeout: 2 * time.Second})
	if err == nil || errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want infrastructure error", err)
	}
}

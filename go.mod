module ssrank

go 1.24
